// Command verification-manager is the paper's central component as a
// standalone process. It has two phases:
//
//	verification-manager -init -state-dir ./state
//
// generates the VM's long-term key, the certificate authority and the
// controller's server certificate, publishing the trust material into the
// state directory (the out-of-band trust establishment).
//
//	verification-manager -state-dir ./state -hosts host-a -enroll fw-1@host-a
//
// runs the workflow: registers hosts from their published HostInfo,
// learns the golden IML baseline, attests every host (steps 1–2 of
// Figure 1) and enrolls the requested VNFs (steps 3–5). The enrolled
// certificate is then validated for controller client authentication
// (step 6 is driven by the VNF process on the host; see
// examples/quickstart for the in-process end-to-end run).
package main

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/host"
	"vnfguard/internal/ias"
	"vnfguard/internal/obs"
	"vnfguard/internal/pki"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/statedir"
	"vnfguard/internal/translog"
	"vnfguard/internal/verifier"
)

func main() {
	initPhase := flag.Bool("init", false, "generate and publish trust material, then exit")
	stateDir := flag.String("state-dir", "./state", "shared state directory")
	hosts := flag.String("hosts", "", "comma-separated host names to register")
	enroll := flag.String("enroll", "", "comma-separated vnf@host enrollments")
	learn := flag.Bool("learn", true, "learn the current IML as golden before appraising")
	requireTPM := flag.Bool("require-tpm", false, "appraisal policy demands TPM-rooted IML")
	subKey := flag.String("subscription-key", "vnfguard-subscription", "IAS API key")
	sealLog := flag.Bool("seal-log", false, "anchor the durable log's tree head in an enclave-sealed monotonic counter")
	logCheckpointEvery := flag.Uint64("log-checkpoint-every", 0, "write an anchor-verified recovery checkpoint (and compact cold WAL segments into archives) every N committed log entries (0 disables)")
	logShards := flag.Int("log-shards", 0, "per-host WAL shard count for the durable log (>1 gives each enrolled host its own segment stream and batches verdicts through the merging sequencer)")
	nvFile := flag.String("sgx-nv", "sgx-nv-vm.json", "platform NV file for -seal-log (models fuses+flash; keep it OUTSIDE the state dir)")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for shared material")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:0", "telemetry listen address (/metrics, /debug/vars, /debug/pprof); empty disables. The endpoint is unauthenticated — keep it loopback-bound.")
	flag.Parse()

	if _, err := obs.Start(*metricsAddr, log.Printf); err != nil {
		log.Fatal(err)
	}
	dir, err := statedir.Open(*stateDir)
	if err != nil {
		log.Fatal(err)
	}
	if *initPhase {
		runInit(dir)
		return
	}
	runWorkflow(dir, *hosts, *enroll, *learn, *requireTPM, *subKey, *sealLog, *nvFile, *logShards, *logCheckpointEvery, *wait)
}

// runInit publishes the deployment's trust anchors.
func runInit(dir *statedir.Dir) {
	vmKeyPEM, err := statedir.GenerateKeyPEM()
	if err != nil {
		log.Fatal(err)
	}
	vmKey, err := statedir.ParseKeyPEM(vmKeyPEM)
	if err != nil {
		log.Fatal(err)
	}
	vmPubPEM, err := statedir.MarshalPubPEM(&vmKey.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	vendorPEM, err := statedir.GenerateKeyPEM()
	if err != nil {
		log.Fatal(err)
	}
	ca, err := pki.NewCA("verification-manager CA", 10*365*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	caKeyPEM, err := ca.KeyPEM()
	if err != nil {
		log.Fatal(err)
	}
	ctrlKey, err := pki.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	ctrlCert, err := ca.IssueServerCert("controller", []string{"controller"}, nil, &ctrlKey.PublicKey, 10*365*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	ctrlKeyPEM, err := statedir.MarshalKeyPEM(ctrlKey)
	if err != nil {
		log.Fatal(err)
	}
	for name, data := range map[string][]byte{
		statedir.FileVMKey:          vmKeyPEM,
		statedir.FileVMPub:          vmPubPEM,
		statedir.FileVendorKey:      vendorPEM,
		statedir.FileCACert:         ca.CertPEM(),
		statedir.FileCAKey:          caKeyPEM,
		statedir.FileControllerCert: pki.EncodeCertPEM(ctrlCert),
		statedir.FileControllerKey:  ctrlKeyPEM,
	} {
		if err := dir.Write(name, data); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("init complete: VM key, CA and controller certificate published to %s", dir.Path(""))
}

// hostInfo mirrors the record container-host publishes.
type hostInfo struct {
	Name          string `json:"name"`
	AgentURL      string `json:"agent_url"`
	AttestationMR string `json:"attestation_mrenclave"`
	AIKPubDER     string `json:"aik_pub_der"`
}

func runWorkflow(dir *statedir.Dir, hostList, enrollList string, learn, requireTPM bool, subKey string, sealLog bool, nvFile string, logShards int, logCheckpointEvery uint64, wait time.Duration) {
	model := simtime.DefaultCosts()

	vmKeyPEM, err := dir.WaitFor(statedir.FileVMKey, wait)
	if err != nil {
		log.Fatalf("run `verification-manager -init` first: %v", err)
	}
	vmKey, err := statedir.ParseKeyPEM(vmKeyPEM)
	if err != nil {
		log.Fatal(err)
	}
	vendorPEM, err := dir.WaitFor(statedir.FileVendorKey, wait)
	if err != nil {
		log.Fatal(err)
	}
	vendor, err := statedir.ParseKeyPEM(vendorPEM)
	if err != nil {
		log.Fatal(err)
	}
	caCertPEM, err := dir.WaitFor(statedir.FileCACert, wait)
	if err != nil {
		log.Fatal(err)
	}
	caKeyPEM, err := dir.WaitFor(statedir.FileCAKey, wait)
	if err != nil {
		log.Fatal(err)
	}
	ca, err := pki.LoadCA(caCertPEM, caKeyPEM)
	if err != nil {
		log.Fatal(err)
	}

	iasURL, err := dir.ReadString(statedir.FileIASURL)
	if err != nil {
		if _, err = dir.WaitFor(statedir.FileIASURL, wait); err != nil {
			log.Fatalf("waiting for IAS (start ias-server): %v", err)
		}
		iasURL, _ = dir.ReadString(statedir.FileIASURL)
	}
	iasCert, err := dir.WaitFor(statedir.FileIASCert, wait)
	if err != nil {
		log.Fatal(err)
	}
	iasClient, err := ias.NewClient(iasURL, subKey, iasCert, model)
	if err != nil {
		log.Fatal(err)
	}

	policy := verifier.DefaultPolicy()
	policy.RequireTPM = requireTPM
	// The transparency log lives in the statedir, so the audit history —
	// and the rollback guarantee recovery enforces over it — survives VM
	// restarts. A rolled-back or tampered statedir refuses to open here.
	// With -seal-log it additionally refuses (ErrSealedRollback) a
	// statedir rewound *consistently*, because the newest head is pinned
	// by a monotonic counter in the platform NV file — which models
	// hardware and therefore must not live inside the rewindable
	// statedir.
	var sealPlatform *sgx.Platform
	if sealLog {
		var err error
		sealPlatform, err = translog.OpenSealedPlatform(dir, "verification-manager", nvFile, model)
		if err != nil {
			log.Fatal(err)
		}
	}
	vm, err := verifier.New(verifier.Config{
		Name: "verification-manager", Key: vmKey, SPID: sgx.SPID{0x42},
		IAS: iasClient, Policy: policy, CA: ca,
		LogDir:   dir.Path(statedir.DirVMLog),
		LogStore: translog.StoreConfig{Shards: logShards, CheckpointEvery: logCheckpointEvery},
		SealLog:  sealPlatform,
	})
	if err != nil {
		log.Fatal(err)
	}
	if sealLog {
		log.Printf("sealed-head anchor active: tree head pinned by enclave-sealed monotonic counter (NV: %s)", nvFile)
	}
	// Report the effective stream count: a store pinned its layout at
	// creation, so a mismatched -log-shards keeps the original streams.
	if n := vm.TransparencyLog().StoreShards(); n > 1 {
		if n != logShards {
			log.Printf("per-host sharded audit log active: %d WAL streams (pinned at store creation; -log-shards %d ignored)", n, logShards)
		} else {
			log.Printf("per-host sharded audit log active: %d WAL streams, verdicts batched through the merging sequencer", n)
		}
	}
	log.Printf("durable transparency log open: %d entries recovered from %s",
		vm.TransparencyLog().Size(), dir.Path(statedir.DirVMLog))
	credMR, err := enclaveapp.ExpectedCredentialMeasurement(vendor, vm.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	vm.PinCredentialMeasurement(credMR)

	if hostList == "" {
		log.Fatal("no -hosts given")
	}
	for _, name := range strings.Split(hostList, ",") {
		name = strings.TrimSpace(name)
		raw, err := dir.WaitFor(statedir.HostInfoFile(name), wait)
		if err != nil {
			log.Fatalf("waiting for host %s (start container-host): %v", name, err)
		}
		var info hostInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			log.Fatal(err)
		}
		mr, err := parseMeasurement(info.AttestationMR)
		if err != nil {
			log.Fatal(err)
		}
		vm.PinAttestationMeasurement(mr)
		var aik *ecdsa.PublicKey
		if info.AIKPubDER != "" {
			der, err := base64.StdEncoding.DecodeString(info.AIKPubDER)
			if err != nil {
				log.Fatal(err)
			}
			pubAny, err := x509.ParsePKIXPublicKey(der)
			if err != nil {
				log.Fatal(err)
			}
			pub, ok := pubAny.(*ecdsa.PublicKey)
			if !ok {
				log.Fatalf("host %s AIK type %T unsupported", name, pubAny)
			}
			aik = pub
		}
		vm.RegisterHost(name, host.NewClient(info.AgentURL), aik)
		if shard, ok := vm.LogShard(name); ok {
			log.Printf("registered host %s at %s (audit entries -> log shard %d)", name, info.AgentURL, shard)
		} else {
			log.Printf("registered host %s at %s", name, info.AgentURL)
		}

		if learn {
			if err := vm.LearnHostGolden(name); err != nil {
				log.Fatal(err)
			}
			log.Printf("learned golden IML for %s", name)
		}
		app, err := vm.AttestHost(name)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("host %s: trusted=%v quote=%s IML=%d entries tpm=%v",
			name, app.Trusted, app.QuoteStatus, app.IMLEntries, app.TPMVerified)
		if !app.Trusted {
			for _, f := range app.Findings {
				log.Printf("  finding: %s", f)
			}
			log.Fatal("aborting: host not trusted")
		}
	}

	for _, pair := range strings.Split(enrollList, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		vnfName, hostName, ok := strings.Cut(pair, "@")
		if !ok {
			log.Fatalf("malformed -enroll entry %q (want vnf@host)", pair)
		}
		enr, err := vm.EnrollVNF(hostName, vnfName)
		if err != nil {
			log.Fatalf("enrolling %s: %v", pair, err)
		}
		if err := vm.CA().VerifyClient(enr.Cert); err != nil {
			log.Fatalf("enrolled certificate failed verification: %v", err)
		}
		pb, err := vm.CredentialProof(enr.Serial)
		if err != nil {
			log.Fatalf("enrolled credential missing from transparency log: %v", err)
		}
		if err := pb.Verify(vm.CA().Certificate().PublicKey.(*ecdsa.PublicKey)); err != nil {
			log.Fatalf("credential inclusion proof failed: %v", err)
		}
		log.Printf("enrolled %s on %s: certificate serial %s (client-auth verified; logged at index %d of %d)",
			enr.VNF, enr.Host, enr.Serial, pb.Index, pb.STH.Size)
	}

	// Mirror the audit trail to the deployment's public log server when
	// one is running, so auditors and controllers in other processes can
	// fetch proofs without reaching into the VM. Both logs are durable
	// now, so only the suffix the server has not yet seen is sent.
	if err := vm.FlushLog(); err != nil {
		log.Printf("flushing transparency log: %v", err)
	}
	if logURL, err := dir.ReadString(statedir.FileLogURL); err == nil {
		l := vm.TransparencyLog()
		client := translog.NewClient(logURL, nil)
		// fresh, when set, is the server's signed head covering everything
		// mirrored: the head worth pushing to the witness set. It must be
		// the *server's* head — the VM's own log is signed by the same CA
		// key, so publishing a VM head the server has not caught up to yet
		// would read as a server rollback to the witnesses.
		var fresh *translog.SignedTreeHead
		sth, err := client.STH()
		if err != nil {
			// Without the server's size the safe suffix is unknown;
			// falling back to 0 would duplicate the whole history in the
			// server's durable log. Skip this run and let the next one
			// mirror the accumulated suffix.
			log.Printf("log server at %s unreachable (%v) — not mirroring this run", logURL, err)
		} else if from := sth.Size; from > l.Size() {
			log.Printf("log server at %s holds %d entries, VM only %d — not mirroring", logURL, from, l.Size())
		} else if entries := l.Entries(from, l.Size()-from); len(entries) > 0 {
			newSTH, err := client.AppendSTH(entries)
			switch {
			case errors.Is(err, translog.ErrAppendRejected):
				// 400: resending this suffix can never succeed — say so
				// instead of retrying it into the same wall forever.
				log.Printf("log server rejected mirrored entries as invalid (not retryable): %v", err)
			case errors.Is(err, translog.ErrLogUnavailable):
				log.Printf("log server store unavailable — will mirror the suffix next run: %v", err)
			case err != nil:
				log.Printf("mirroring audit entries to %s: %v", logURL, err)
			default:
				log.Printf("mirrored %d new audit entries (from index %d) to log server %s", len(entries), from, logURL)
				fresh = &newSTH
			}
		} else {
			fresh = &sth
		}
		if fresh != nil {
			publishHeadToWitnesses(dir, ca.Certificate().PublicKey.(*ecdsa.PublicKey), *fresh)
		}
		// In a partitioned deployment the operators' question is not just
		// "did the witnesses see the head" but "did a quorum co-sign it":
		// report where the quorum artifact stands against what we mirrored.
		if pcfg, perr := translog.LoadPartitionConfig(dir); perr == nil {
			ch, cerr := client.Cosigned()
			switch {
			case errors.Is(cerr, translog.ErrQuorumNotReached):
				log.Printf("quorum status: no %d-of-%d co-signed head yet (witnesses still auditing their shards)", pcfg.Quorum, len(pcfg.Witnesses))
			case cerr != nil:
				log.Printf("quorum status unavailable: %v", cerr)
			default:
				log.Printf("quorum status: head at size %d carries %d co-signature(s) (quorum %d-of-%d)",
					ch.STH.Size, len(ch.Signatures), pcfg.Quorum, len(pcfg.Witnesses))
			}
		}
	}
	if err := vm.Close(); err != nil {
		log.Printf("closing transparency log: %v", err)
	}

	if url, err := dir.ReadString(statedir.FileControllerURL); err == nil {
		log.Printf("controller at %s trusts the CA; enrolled VNFs can now push flows (step 6)", url)
	}
	log.Print("workflow complete")
}

// publishHeadToWitnesses pushes a fresh signed tree head to every
// gossiping witness that published its URL into the state directory, so
// the witness set anchors on the newest committed history immediately —
// not at its next poll. A witness that answers with a conviction (two
// irreconcilable signed heads) is surfaced loudly: that is the rollback
// alarm the gossip network exists to raise.
func publishHeadToWitnesses(dir *statedir.Dir, pub *ecdsa.PublicKey, head translog.SignedTreeHead) {
	entries, err := dir.Match(statedir.WitnessURLPattern)
	if err != nil || len(entries) == 0 {
		return
	}
	for _, entry := range entries {
		url, err := dir.ReadString(entry)
		if err != nil {
			continue
		}
		peerHead, seen, err := translog.NewClient(url, pub).ExchangeGossip("verification-manager", head, true)
		var ce *translog.ConflictError
		switch {
		case errors.As(err, &ce):
			evidence, _ := json.MarshalIndent(ce, "", "  ")
			log.Printf("AUDIT FAILURE reported by witness at %s: %v\nevidence:\n%s", url, ce, evidence)
		case err != nil:
			log.Printf("publishing head to witness at %s: %v", url, err)
		case seen:
			log.Printf("published head (size %d) to witness at %s (witness holds size %d)", head.Size, url, peerHead.Size)
		default:
			log.Printf("published head (size %d) to witness at %s", head.Size, url)
		}
	}
}

func parseMeasurement(hexStr string) (sgx.Measurement, error) {
	var mr sgx.Measurement
	raw, err := hex.DecodeString(hexStr)
	if err != nil || len(raw) != 32 {
		return mr, fmt.Errorf("bad measurement %q", hexStr)
	}
	copy(mr[:], raw)
	return mr, nil
}
