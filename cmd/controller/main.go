// Command controller runs the Floodlight-like SDN controller as a
// standalone process. It waits for the Verification Manager's init phase
// to publish its server certificate (issued by the VM's CA, so enrolled
// VNFs can authenticate the controller) and serves the north-bound REST
// API in the selected security mode over a demo forwarding plane.
//
//	controller -addr 127.0.0.1:8080 -state-dir ./state -mode trusted-https
package main

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"log"
	"time"

	"vnfguard/internal/controller"
	"vnfguard/internal/netsim"
	"vnfguard/internal/obs"
	"vnfguard/internal/pki"
	"vnfguard/internal/statedir"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	stateDir := flag.String("state-dir", "./state", "shared state directory")
	modeName := flag.String("mode", "trusted-https", "security mode: http, https, trusted-https")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for VM init material")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:0", "telemetry listen address (/metrics, /debug/vars, /debug/pprof); empty disables. The endpoint is unauthenticated — keep it loopback-bound.")
	flag.Parse()

	if _, err := obs.Start(*metricsAddr, log.Printf); err != nil {
		log.Fatal(err)
	}

	var mode controller.SecurityMode
	switch *modeName {
	case "http":
		mode = controller.ModeHTTP
	case "https":
		mode = controller.ModeHTTPS
	case "trusted-https":
		mode = controller.ModeTrustedHTTPS
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}

	dir, err := statedir.Open(*stateDir)
	if err != nil {
		log.Fatal(err)
	}

	// Demo forwarding plane: one switch, an external client and a server.
	network := netsim.NewNetwork()
	if _, err := network.AddSwitch("00:00:01"); err != nil {
		log.Fatal(err)
	}
	if err := network.AttachHost("ext-client", "00:00:01", 1); err != nil {
		log.Fatal(err)
	}
	if err := network.AttachHost("svc-server", "00:00:01", 2); err != nil {
		log.Fatal(err)
	}
	ctrl := controller.New("lightpath", network)

	cfg := controller.ServerConfig{Mode: mode}
	if mode != controller.ModeHTTP {
		certPEM, err := dir.WaitFor(statedir.FileControllerCert, *wait)
		if err != nil {
			log.Fatalf("waiting for controller certificate (run `verification-manager -init` first): %v", err)
		}
		keyPEM, err := dir.WaitFor(statedir.FileControllerKey, *wait)
		if err != nil {
			log.Fatal(err)
		}
		cert, err := tls.X509KeyPair(certPEM, keyPEM)
		if err != nil {
			log.Fatalf("loading controller keypair: %v", err)
		}
		cfg.Cert = cert
	}
	if mode == controller.ModeTrustedHTTPS {
		caPEM, err := dir.WaitFor(statedir.FileCACert, *wait)
		if err != nil {
			log.Fatal(err)
		}
		ca, err := pki.ParseCertPEM(caPEM)
		if err != nil {
			log.Fatal(err)
		}
		pool := x509.NewCertPool()
		pool.AddCert(ca)
		cfg.Trust = controller.TrustCA
		cfg.ClientCAs = pool
	}

	srv, err := controller.Serve(ctrl, cfg, *addr)
	if err != nil {
		log.Fatal(err)
	}
	if err := dir.Write(statedir.FileControllerURL, []byte(srv.URL())); err != nil {
		log.Fatal(err)
	}
	log.Printf("controller listening on %s (%s)", srv.URL(), mode)
	select {}
}
