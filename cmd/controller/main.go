// Command controller runs the Floodlight-like SDN controller as a
// standalone process. It waits for the Verification Manager's init phase
// to publish its server certificate (issued by the VM's CA, so enrolled
// VNFs can authenticate the controller) and serves the north-bound REST
// API in the selected security mode over a demo forwarding plane.
//
//	controller -addr 127.0.0.1:8080 -state-dir ./state -mode trusted-https
package main

import (
	"crypto/ecdsa"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"flag"
	"log"
	"os"
	"time"

	"vnfguard/internal/controller"
	"vnfguard/internal/netsim"
	"vnfguard/internal/obs"
	"vnfguard/internal/pki"
	"vnfguard/internal/statedir"
	"vnfguard/internal/translog"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	stateDir := flag.String("state-dir", "./state", "shared state directory")
	modeName := flag.String("mode", "trusted-https", "security mode: http, https, trusted-https")
	logURL := flag.String("log-url", "", "transparency-log server URL for trusted-https credential checks (default: the URL published in the state dir; \"off\" disables the log check)")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for VM init material")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:0", "telemetry listen address (/metrics, /debug/vars, /debug/pprof); empty disables. The endpoint is unauthenticated — keep it loopback-bound.")
	flag.Parse()

	if _, err := obs.Start(*metricsAddr, log.Printf); err != nil {
		log.Fatal(err)
	}

	var mode controller.SecurityMode
	switch *modeName {
	case "http":
		mode = controller.ModeHTTP
	case "https":
		mode = controller.ModeHTTPS
	case "trusted-https":
		mode = controller.ModeTrustedHTTPS
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}

	dir, err := statedir.Open(*stateDir)
	if err != nil {
		log.Fatal(err)
	}

	// Demo forwarding plane: one switch, an external client and a server.
	network := netsim.NewNetwork()
	if _, err := network.AddSwitch("00:00:01"); err != nil {
		log.Fatal(err)
	}
	if err := network.AttachHost("ext-client", "00:00:01", 1); err != nil {
		log.Fatal(err)
	}
	if err := network.AttachHost("svc-server", "00:00:01", 2); err != nil {
		log.Fatal(err)
	}
	ctrl := controller.New("lightpath", network)

	cfg := controller.ServerConfig{Mode: mode}
	if mode != controller.ModeHTTP {
		certPEM, err := dir.WaitFor(statedir.FileControllerCert, *wait)
		if err != nil {
			log.Fatalf("waiting for controller certificate (run `verification-manager -init` first): %v", err)
		}
		keyPEM, err := dir.WaitFor(statedir.FileControllerKey, *wait)
		if err != nil {
			log.Fatal(err)
		}
		cert, err := tls.X509KeyPair(certPEM, keyPEM)
		if err != nil {
			log.Fatalf("loading controller keypair: %v", err)
		}
		cfg.Cert = cert
	}
	if mode == controller.ModeTrustedHTTPS {
		caPEM, err := dir.WaitFor(statedir.FileCACert, *wait)
		if err != nil {
			log.Fatal(err)
		}
		ca, err := pki.ParseCertPEM(caPEM)
		if err != nil {
			log.Fatal(err)
		}
		pool := x509.NewCertPool()
		pool.AddCert(ca)
		cfg.Trust = controller.TrustCA
		cfg.ClientCAs = pool

		// Trusted mode also demands logged evidence: every client
		// credential must be provably in the VM's transparency log (and
		// not revoked there). Proofs are assembled client-side from
		// cached immutable tiles — a handshake burst costs the log
		// server cacheable tile reads, not per-handshake audit-path
		// computation.
		if *logURL != "off" {
			url := *logURL
			if url == "" {
				if raw, err := dir.WaitFor(statedir.FileLogURL, *wait); err == nil {
					url = string(raw)
				} else {
					log.Printf("no transparency-log URL published (%v); serving without the credential log check (set -log-url to require it)", err)
				}
			}
			if url != "" {
				caPub, ok := ca.PublicKey.(*ecdsa.PublicKey)
				if !ok {
					log.Fatalf("CA key type %T unsupported for log verification", ca.PublicKey)
				}
				client := translog.NewClient(url, caPub)
				source := translog.NewTileProofSource(client, 0)
				// A deployment with a pinned witness partition raises the
				// bar: a credential proof must chain not just to a
				// log-signed head but to one that ≥Q partitioned witnesses
				// audited their shard slices against and co-signed.
				if pcfg, perr := translog.LoadPartitionConfig(dir); perr == nil {
					roster, rerr := translog.WaitForWitnessRoster(dir, pcfg.Quorum, pcfg.Witnesses, *wait)
					if rerr != nil {
						log.Fatalf("pinned witness partition but no roster keys: %v", rerr)
					}
					cfg.CredentialLog = translog.NewQuorumCredentialChecker(caPub, roster, source, source, client.Cosigned)
					log.Printf("credential log check active: tile-assembled proofs from %s, quorum %d-of-%d co-signed heads required",
						url, pcfg.Quorum, len(pcfg.Witnesses))
				} else if !errors.Is(perr, os.ErrNotExist) {
					log.Fatal(perr)
				} else {
					cfg.CredentialLog = translog.NewCredentialChecker(caPub, source)
					log.Printf("credential log check active: tile-assembled proofs from %s", url)
				}
			}
		}
	}

	srv, err := controller.Serve(ctrl, cfg, *addr)
	if err != nil {
		log.Fatal(err)
	}
	if err := dir.Write(statedir.FileControllerURL, []byte(srv.URL())); err != nil {
		log.Fatal(err)
	}
	log.Printf("controller listening on %s (%s)", srv.URL(), mode)
	select {}
}
