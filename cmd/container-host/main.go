// Command container-host runs one SGX/IMA container host with its agent
// exposed over HTTP. It provisions its platform into the shared EPID
// group, deploys the requested VNF containers, and publishes its agent
// URL, attestation-enclave measurement and (optional) TPM AIK so the
// Verification Manager can register it.
//
//	container-host -name host-a -state-dir ./state -vnfs fw-1:firewall,ids-1:monitor -tpm
package main

import (
	"encoding/base64"
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"crypto/x509"

	"vnfguard/internal/core"
	"vnfguard/internal/epid"
	"vnfguard/internal/host"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/statedir"
)

// HostInfo is the record a host publishes into the state directory.
type HostInfo struct {
	Name          string `json:"name"`
	AgentURL      string `json:"agent_url"`
	AttestationMR string `json:"attestation_mrenclave"`
	AIKPubDER     string `json:"aik_pub_der,omitempty"` // base64
	VNFs          string `json:"vnfs"`
}

func main() {
	name := flag.String("name", "host-a", "host name")
	addr := flag.String("addr", "127.0.0.1:0", "agent listen address")
	stateDir := flag.String("state-dir", "./state", "shared state directory")
	vnfs := flag.String("vnfs", "fw-1:firewall", "comma-separated name:kind VNF list")
	enableTPM := flag.Bool("tpm", false, "equip the host with a TPM")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for shared material")
	flag.Parse()

	dir, err := statedir.Open(*stateDir)
	if err != nil {
		log.Fatal(err)
	}
	issuerRaw, err := dir.WaitFor(statedir.FileIssuer, *wait)
	if err != nil {
		log.Fatalf("waiting for EPID issuer (start ias-server first): %v", err)
	}
	issuer, err := epid.ImportIssuer(issuerRaw)
	if err != nil {
		log.Fatal(err)
	}
	vendorPEM, err := dir.WaitFor(statedir.FileVendorKey, *wait)
	if err != nil {
		log.Fatalf("waiting for vendor key (run `verification-manager -init`): %v", err)
	}
	vendor, err := statedir.ParseKeyPEM(vendorPEM)
	if err != nil {
		log.Fatal(err)
	}
	vmPubPEM, err := dir.WaitFor(statedir.FileVMPub, *wait)
	if err != nil {
		log.Fatal(err)
	}
	vmPub, err := statedir.ParsePubPEM(vmPubPEM)
	if err != nil {
		log.Fatal(err)
	}

	h, err := host.New(host.Config{
		Name: *name, Issuer: issuer, Model: simtime.DefaultCosts(),
		VendorKey: vendor, VMPub: vmPub, SPID: sgx.SPID{0x42},
		EnableTPM: *enableTPM,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Deploy the requested VNF containers.
	for _, spec := range strings.Split(*vnfs, ",") {
		vnfName, kind, ok := strings.Cut(strings.TrimSpace(spec), ":")
		if !ok {
			log.Fatalf("malformed -vnfs entry %q (want name:kind)", spec)
		}
		if _, err := h.RunContainer(core.StandardImage(kind), vnfName); err != nil {
			log.Fatalf("deploying %s: %v", vnfName, err)
		}
		log.Printf("deployed %s (%s), credential enclave launched", vnfName, kind)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	info := HostInfo{
		Name:          *name,
		AgentURL:      "http://" + ln.Addr().String(),
		AttestationMR: h.AttestationEnclaveIdentity().MRENCLAVE.String(),
		VNFs:          *vnfs,
	}
	if h.HasTPM() {
		der, err := x509.MarshalPKIXPublicKey(h.TPM().AIKPublic())
		if err != nil {
			log.Fatal(err)
		}
		info.AIKPubDER = base64.StdEncoding.EncodeToString(der)
	}
	raw, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := dir.Write(statedir.HostInfoFile(*name), raw); err != nil {
		log.Fatal(err)
	}
	log.Printf("host agent %s listening on %s (tpm=%v)", *name, info.AgentURL, h.HasTPM())
	log.Fatal(http.Serve(ln, h.Handler()))
}
