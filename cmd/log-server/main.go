// Command log-server runs the attestation transparency log as a
// standalone service, and doubles as the auditor that watches one.
//
// Serve mode hosts the Merkle log over HTTP. Tree heads are signed with
// the deployment CA key published by `verification-manager -init`, so
// every signed head chains to the same trust anchor the controller
// already holds:
//
//	log-server -state-dir ./state -addr 127.0.0.1:8879
//
// The Verification Manager (or any producer) appends entries via
// POST /translog/v1/append; controllers and VNFs fetch tree heads,
// entries, inclusion proofs and consistency proofs from the read
// endpoints. The server publishes its URL into the state directory.
//
// Monitor mode is the other side of the audit: a gossiping witness. It
// polls the log's signed tree heads, verifies that every new head is a
// consistency-proven extension of the last one, persists its
// last-accepted head in the state directory (a witness restart is not
// amnesia), and exchanges heads with peer witnesses over the gossip
// endpoints — so a local rollback of the log's statedir (WAL segments
// and persisted head rewound together, which the log's own recovery
// cannot see) is convicted by whoever remembers the newer head:
//
//	log-server -monitor -state-dir ./state -name w0 -interval 2s
//	log-server -monitor -state-dir ./state -name w1 -peers http://127.0.0.1:9001
//
// Without -peers, witnesses discover each other through the gossip URLs
// they publish into the shared state directory.
package main

import (
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vnfguard/internal/obs"
	"vnfguard/internal/pki"
	"vnfguard/internal/statedir"
	"vnfguard/internal/translog"
)

func main() {
	stateDir := flag.String("state-dir", "./state", "shared state directory")
	addr := flag.String("addr", "127.0.0.1:0", "listen address (serve mode)")
	monitor := flag.Bool("monitor", false, "audit a running log server instead of serving")
	logURL := flag.String("url", "", "log server URL (monitor mode; default: read from state dir)")
	interval := flag.Duration("interval", 2*time.Second, "poll/gossip exchange interval, jittered ±20% (monitor mode)")
	name := flag.String("name", "witness", "witness name (monitor mode): keys the persisted head and published gossip URL")
	gossipAddr := flag.String("gossip-addr", "127.0.0.1:0", "gossip listen address (monitor mode)")
	peers := flag.String("peers", "", "comma-separated peer witness gossip URLs (monitor mode; default: discover via state dir)")
	seal := flag.Bool("seal", false, "anchor the served log's tree head in an enclave-sealed monotonic counter (serve mode)")
	shards := flag.Int("shards", 0, "per-host WAL shard count for the served log (serve mode; >1 splits the WAL into per-host segment streams; fixed at store creation)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "write an anchor-verified recovery checkpoint (and compact cold WAL segments into archives) every N committed entries (serve mode; 0 disables)")
	quorum := flag.Int("quorum", 0, "per-shard witness quorum Q (serve mode; >0 partitions the witness audit plane and serves quorum co-signed heads; requires -witnesses)")
	witnessShards := flag.Int("witness-shards", 0, "audit-plane shard stream count (serve mode; default: the store shard count, or 1 for an unsharded store; must match the store shard count when both are set)")
	witnessNames := flag.String("witnesses", "", "comma-separated witness names forming the co-signing roster (serve mode with -quorum; startup waits for each to publish its key)")
	nvFile := flag.String("sgx-nv", "sgx-nv-log-server.json", "platform NV file for -seal (models fuses+flash; keep it OUTSIDE the state dir)")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for shared material")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:0", "telemetry listen address (/metrics, /debug/vars, /debug/pprof); empty disables. The endpoint is unauthenticated — keep it loopback-bound.")
	flag.Parse()

	if _, err := obs.Start(*metricsAddr, log.Printf); err != nil {
		log.Fatal(err)
	}
	dir, err := statedir.Open(*stateDir)
	if err != nil {
		log.Fatal(err)
	}
	if *monitor {
		runMonitor(dir, *logURL, *name, *gossipAddr, *peers, *interval, *wait)
		return
	}
	runServe(dir, *addr, *seal, *nvFile, *shards, *checkpointEvery, *quorum, *witnessShards, *witnessNames, *wait)
}

// caPublicKey loads the deployment's log verification key from the
// published CA certificate.
func caPublicKey(dir *statedir.Dir, wait time.Duration) *ecdsa.PublicKey {
	caCertPEM, err := dir.WaitFor(statedir.FileCACert, wait)
	if err != nil {
		log.Fatalf("run `verification-manager -init` first: %v", err)
	}
	cert, err := pki.ParseCertPEM(caCertPEM)
	if err != nil {
		log.Fatal(err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		log.Fatalf("CA key type %T unsupported", cert.PublicKey)
	}
	return pub
}

func runServe(dir *statedir.Dir, addr string, seal bool, nvFile string, shards int, checkpointEvery uint64, quorum, witnessShards int, witnessNames string, wait time.Duration) {
	caCertPEM, err := dir.WaitFor(statedir.FileCACert, wait)
	if err != nil {
		log.Fatalf("run `verification-manager -init` first: %v", err)
	}
	caKeyPEM, err := dir.WaitFor(statedir.FileCAKey, wait)
	if err != nil {
		log.Fatal(err)
	}
	ca, err := pki.LoadCA(caCertPEM, caKeyPEM)
	if err != nil {
		log.Fatal(err)
	}
	// The served log is durable: entries and signed tree heads live in a
	// WAL under the state directory, so a server restart resumes exactly
	// where it stopped instead of presenting auditors with an empty tree
	// (which a witness would — correctly — flag as a rollback). If the
	// on-disk state was rolled back or tampered with, this open refuses
	// to start; do not delete the store to "fix" it, that is the signal.
	// With -seal the refusal extends to a *consistent* rewind: the
	// newest head is pinned by an enclave-sealed monotonic counter in
	// the platform NV file (which models hardware — keep it outside the
	// state directory an attacker could rewind). No Close on shutdown:
	// the process only exits via log.Fatal, and every committed batch is
	// already fsynced — recovery picks up from the durable state exactly
	// as a crash would.
	// With -shards the WAL splits into per-host segment streams (the
	// appenders stamp each record with its global index), letting a fleet
	// of producers land in parallel streams while every cycle still
	// commits one signed tree head. The layout is fixed when the store is
	// first created; reopening an existing store keeps its layout.
	cfg := translog.StoreConfig{Shards: shards, CheckpointEvery: checkpointEvery}
	if seal {
		caKey, err := statedir.ParseKeyPEM(caKeyPEM)
		if err != nil {
			log.Fatal(err)
		}
		p, err := translog.OpenSealedPlatform(dir, "log-server", nvFile, nil)
		if err != nil {
			log.Fatal(err)
		}
		anchor, err := translog.NewSealedHeadAnchor(p, caKey,
			filepath.Join(dir.Path(statedir.DirServerLog), translog.SealedHeadFileName),
			&caKey.PublicKey)
		if err != nil {
			log.Fatalf("launching sealed-head anchor: %v", err)
		}
		cfg.Anchors = append(cfg.Anchors, anchor)
		log.Printf("sealed-head anchor active: tree head pinned by enclave-sealed monotonic counter (NV: %s)", nvFile)
	}
	l, err := translog.OpenDurableLog(ca.Signer(), dir.Path(statedir.DirServerLog), cfg)
	if err != nil {
		log.Fatal(err)
	}
	// With -quorum the audit plane is partitioned: shard streams are
	// served so each witness reads only its assigned slice, the partition
	// shape is pinned into the state directory (every witness derives the
	// identical deterministic assignment from it), and a co-signature
	// collector turns ≥Q witness signatures over a head into the quorum
	// artifact relying parties fetch from /translog/v1/cosigned. The
	// collector runs beside the log, never under its commit lock.
	var cosigns *translog.CosignCollector
	if quorum > 0 {
		roster := strings.Split(witnessNames, ",")
		for i := range roster {
			roster[i] = strings.TrimSpace(roster[i])
		}
		roster = slicesNonEmpty(roster)
		if len(roster) == 0 {
			log.Fatal("-quorum requires -witnesses naming the co-signing roster")
		}
		streamShards := witnessShards
		if streamShards == 0 {
			streamShards = max(l.StoreShards(), 1)
		}
		if err := l.EnableShardStreams(streamShards); err != nil {
			log.Fatal(err)
		}
		pcfg := translog.PartitionConfig{Shards: streamShards, Quorum: quorum, Witnesses: roster}
		if err := translog.SavePartitionConfig(dir, pcfg); err != nil {
			log.Fatal(err)
		}
		keys, err := translog.WaitForWitnessRoster(dir, quorum, roster, wait)
		if err != nil {
			log.Fatalf("start the partitioned witnesses (log-server -monitor) first: %v", err)
		}
		pub, ok := ca.Signer().Public().(*ecdsa.PublicKey)
		if !ok {
			log.Fatalf("CA key type %T unsupported for co-signing", ca.Signer().Public())
		}
		cosigns = translog.NewCosignCollector(pub, keys)
		log.Printf("partitioned audit plane active: %d shard streams, quorum %d of %d witnesses", streamShards, quorum, len(roster))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	if err := dir.Write(statedir.FileLogURL, []byte(url)); err != nil {
		log.Fatal(err)
	}
	sth := l.STH()
	if shards > 1 {
		log.Printf("per-host sharded WAL active: %d segment streams under one Merkle tree", shards)
	}
	log.Printf("transparency log serving at %s (tree size %d, recovered from %s)",
		url, sth.Size, dir.Path(statedir.DirServerLog))
	handler := http.Handler(translog.Handler(l))
	if cosigns != nil {
		mux := http.NewServeMux()
		ch := translog.CosignHandler(cosigns)
		mux.Handle("/translog/v1/cosign", ch)
		mux.Handle("/translog/v1/cosigned", ch)
		mux.Handle("/", handler)
		handler = mux
	}
	log.Fatal((&http.Server{Handler: handler}).Serve(ln))
}

// slicesNonEmpty drops empty strings from a slice in place.
func slicesNonEmpty(in []string) []string {
	out := in[:0]
	for _, s := range in {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

func runMonitor(dir *statedir.Dir, url, name, gossipAddr, peersFlag string, interval, wait time.Duration) {
	// Publish this witness's co-signing identity before anything blocks:
	// a quorum-mode log server waits for the whole roster's public keys
	// before it publishes its URL, and we wait for that URL below — so
	// announcing the key first is what lets the two startup orders
	// (witnesses-then-server, server-then-witnesses) both converge.
	cosignKey, err := translog.OpenWitnessKey(dir, name)
	if err != nil {
		log.Fatalf("opening co-signing key: %v", err)
	}
	if url == "" {
		raw, err := dir.WaitFor(statedir.FileLogURL, wait)
		if err != nil {
			log.Fatalf("no -url and no published log URL (start log-server): %v", err)
		}
		url = string(raw)
	}
	pub := caPublicKey(dir, wait)
	client := translog.NewClient(url, pub)
	// The witness's last-accepted head lives in the state directory: a
	// restart resumes from remembered history instead of re-anchoring at
	// whatever the log serves next — the amnesia a rollback attack needs.
	witness, err := translog.OpenWitnessState(dir, name, pub)
	if err != nil {
		log.Fatalf("restoring witness state: %v", err)
	}
	if last, seen := witness.Last(); seen {
		log.Printf("witness %q restored persisted head: size=%d root=%x…", name, last.Size, last.RootHash[:8])
	}
	pool := translog.NewGossipPool(name, witness, client)
	// Assemble consistency proofs from cached immutable tiles instead of
	// hitting the server's per-request proof endpoint every advance — a
	// witness fleet's polling load becomes cacheable tile fetches.
	pool.UseTileProofs(0)

	// A deployment with a pinned witness partition runs this witness in
	// partitioned mode: audit only the assigned shard streams, gossip the
	// audit marks, and co-sign heads whose assigned slice checked out. The
	// log server writes the partition file before publishing its URL, so
	// having the URL means the pin (when there is one) is readable.
	if pcfg, err := translog.LoadPartitionConfig(dir); err == nil {
		part, perr := pcfg.Partition()
		if perr != nil {
			log.Fatal(perr)
		}
		if len(part.AssignedShards(name)) > 0 {
			if perr := pool.EnablePartition(part, cosignKey, dir); perr != nil {
				log.Fatal(perr)
			}
			log.Printf("partitioned witness %q: auditing shards %v of %d (quorum %d of %d)",
				name, part.AssignedShards(name), part.Shards(), part.Quorum(), len(part.Names()))
		} else {
			log.Printf("witness %q is outside the pinned partition roster %v; running unpartitioned", name, part.Names())
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		log.Fatal(err)
	}

	// Serve our side of the gossip protocol and publish where to find it.
	ln, err := net.Listen("tcp", gossipAddr)
	if err != nil {
		log.Fatal(err)
	}
	gossipURL := "http://" + ln.Addr().String()
	if err := dir.Write(statedir.WitnessURLFile(name), []byte(gossipURL)); err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Fatal((&http.Server{Handler: translog.GossipHandler(pool)}).Serve(ln))
	}()

	// Peer set: explicit -peers, or the gossip URLs other witnesses have
	// published into the state directory. Discovery re-runs every round
	// and rebuilds the set wholesale, so a peer that restarted onto a new
	// port replaces its dead URL instead of haunting every exchange.
	current := map[string]bool{}
	refreshPeers := func() int {
		var urls []string
		if peersFlag != "" {
			urls = strings.Split(peersFlag, ",")
		} else {
			names, err := dir.Match(statedir.WitnessURLPattern)
			if err != nil {
				log.Printf("discovering peers: %v", err)
				return len(current)
			}
			for _, entry := range names {
				if u, err := dir.ReadString(entry); err == nil {
					urls = append(urls, u)
				}
			}
		}
		next := map[string]bool{}
		clients := make([]*translog.Client, 0, len(urls))
		for _, u := range urls {
			u = strings.TrimSpace(u)
			if u == "" || u == gossipURL || next[u] { // never gossip with ourselves
				continue
			}
			next[u] = true
			clients = append(clients, translog.NewClient(u, pub))
			if !current[u] {
				log.Printf("gossiping with peer witness at %s", u)
			}
		}
		for u := range current {
			if !next[u] {
				log.Printf("dropping departed peer witness at %s", u)
			}
		}
		current = next
		pool.SetPeers(clients)
		return len(clients)
	}
	peerCount := refreshPeers()

	log.Printf("witness %q monitoring %s (gossip at %s, %d peer(s), exchange every %s jittered)",
		name, url, gossipURL, peerCount, interval)
	stop := make(chan struct{}) // the process only exits via log.Fatal
	pool.Loop(interval, stop, func(err error) {
		// A conviction — from our own poll, a corroborated peer claim, or
		// a head a peer pushed at our endpoint — is the witness's reason
		// to exist: report loudly with the evidence and exit non-zero so
		// operators page on it.
		if ce := pool.Conflict(); ce != nil {
			fatalConflict(name, ce)
		}
		var ce *translog.ConflictError
		if errors.As(err, &ce) {
			fatalConflict(name, ce)
		}
		// The heartbeat always prints the held head, so a flaky peer
		// cannot silence the liveness signal operators watch for.
		last, seen := witness.Last()
		switch {
		case err != nil && seen:
			log.Printf("tree head held: size=%d root=%x… peers=%d (exchange degraded: %v)",
				last.Size, last.RootHash[:8], peerCount, err)
		case err != nil:
			log.Printf("exchange degraded (no head anchored yet): %v", err)
		default:
			log.Printf("tree head ok: size=%d root=%x… peers=%d", last.Size, last.RootHash[:8], peerCount)
		}
		peerCount = refreshPeers()
	})
}

// fatalConflict reports a conviction with its self-certifying evidence:
// the two log-signed heads no append-only history can contain.
func fatalConflict(name string, ce *translog.ConflictError) {
	evidence, err := json.MarshalIndent(ce, "", "  ")
	if err != nil {
		evidence = []byte(ce.Error())
	}
	log.Printf("evidence (two irreconcilable signed heads):\n%s", evidence)
	log.Fatalf("AUDIT FAILURE (witness %q): %v", name, ce)
}
