// Command log-server runs the attestation transparency log as a
// standalone service, and doubles as the auditor that watches one.
//
// Serve mode hosts the Merkle log over HTTP. Tree heads are signed with
// the deployment CA key published by `verification-manager -init`, so
// every signed head chains to the same trust anchor the controller
// already holds:
//
//	log-server -state-dir ./state -addr 127.0.0.1:8879
//
// The Verification Manager (or any producer) appends entries via
// POST /translog/v1/append; controllers and VNFs fetch tree heads,
// entries, inclusion proofs and consistency proofs from the read
// endpoints. The server publishes its URL into the state directory.
//
// Monitor mode is the other side of the audit: it polls the log's signed
// tree heads and verifies that every new head is a consistency-proven
// extension of the last one, detecting split views and rollbacks:
//
//	log-server -monitor -state-dir ./state -interval 2s
package main

import (
	"crypto/ecdsa"
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"vnfguard/internal/pki"
	"vnfguard/internal/statedir"
	"vnfguard/internal/translog"
)

func main() {
	stateDir := flag.String("state-dir", "./state", "shared state directory")
	addr := flag.String("addr", "127.0.0.1:0", "listen address (serve mode)")
	monitor := flag.Bool("monitor", false, "audit a running log server instead of serving")
	logURL := flag.String("url", "", "log server URL (monitor mode; default: read from state dir)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval (monitor mode)")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for shared material")
	flag.Parse()

	dir, err := statedir.Open(*stateDir)
	if err != nil {
		log.Fatal(err)
	}
	if *monitor {
		runMonitor(dir, *logURL, *interval, *wait)
		return
	}
	runServe(dir, *addr, *wait)
}

// caPublicKey loads the deployment's log verification key from the
// published CA certificate.
func caPublicKey(dir *statedir.Dir, wait time.Duration) *ecdsa.PublicKey {
	caCertPEM, err := dir.WaitFor(statedir.FileCACert, wait)
	if err != nil {
		log.Fatalf("run `verification-manager -init` first: %v", err)
	}
	cert, err := pki.ParseCertPEM(caCertPEM)
	if err != nil {
		log.Fatal(err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		log.Fatalf("CA key type %T unsupported", cert.PublicKey)
	}
	return pub
}

func runServe(dir *statedir.Dir, addr string, wait time.Duration) {
	caCertPEM, err := dir.WaitFor(statedir.FileCACert, wait)
	if err != nil {
		log.Fatalf("run `verification-manager -init` first: %v", err)
	}
	caKeyPEM, err := dir.WaitFor(statedir.FileCAKey, wait)
	if err != nil {
		log.Fatal(err)
	}
	ca, err := pki.LoadCA(caCertPEM, caKeyPEM)
	if err != nil {
		log.Fatal(err)
	}
	// The served log is durable: entries and signed tree heads live in a
	// WAL under the state directory, so a server restart resumes exactly
	// where it stopped instead of presenting auditors with an empty tree
	// (which a witness would — correctly — flag as a rollback). If the
	// on-disk state was rolled back or tampered with, this open refuses
	// to start; do not delete the store to "fix" it, that is the signal.
	// No Close on shutdown: the process only exits via log.Fatal, and
	// every committed batch is already fsynced — recovery picks up from
	// the durable state exactly as a crash would.
	l, err := translog.OpenDurableLog(ca.Signer(), dir.Path(statedir.DirServerLog), translog.StoreConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	if err := dir.Write(statedir.FileLogURL, []byte(url)); err != nil {
		log.Fatal(err)
	}
	sth := l.STH()
	log.Printf("transparency log serving at %s (tree size %d, recovered from %s)",
		url, sth.Size, dir.Path(statedir.DirServerLog))
	log.Fatal((&http.Server{Handler: translog.Handler(l)}).Serve(ln))
}

func runMonitor(dir *statedir.Dir, url string, interval, wait time.Duration) {
	if url == "" {
		raw, err := dir.WaitFor(statedir.FileLogURL, wait)
		if err != nil {
			log.Fatalf("no -url and no published log URL (start log-server): %v", err)
		}
		url = string(raw)
	}
	pub := caPublicKey(dir, wait)
	client := translog.NewClient(url, pub)
	witness := translog.NewWitness(pub)
	log.Printf("monitoring %s (poll every %s)", url, interval)
	for {
		sth, err := client.STH()
		if err != nil {
			log.Printf("fetch: %v", err)
			time.Sleep(interval)
			continue
		}
		if err := witness.Advance(sth, client.ConsistencyProof); err != nil {
			// A consistency failure is the monitor's reason to exist:
			// report loudly and exit non-zero so operators page on it.
			log.Fatalf("AUDIT FAILURE: %v", err)
		}
		last, _ := witness.Last()
		log.Printf("tree head ok: size=%d root=%x…", last.Size, last.RootHash[:8])
		time.Sleep(interval)
	}
}
