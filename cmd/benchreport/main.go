// Command benchreport regenerates every experiment in EXPERIMENTS.md
// (E1–E15): it assembles deployments per DESIGN.md §4, runs the
// workloads, and prints one table per experiment. Pass -markdown to emit
// GitHub-flavored tables for pasting into EXPERIMENTS.md.
//
// Usage:
//
//	benchreport [-runs N] [-markdown] [-experiments E1,E4,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"crypto/ecdsa"
	"crypto/tls"
	"path/filepath"

	"vnfguard/internal/epid"
	"vnfguard/internal/sgx"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/ias"
	"vnfguard/internal/ima"
	"vnfguard/internal/metrics"
	"vnfguard/internal/obs"
	"vnfguard/internal/pki"
	"vnfguard/internal/simtime"
	"vnfguard/internal/translog"
	"vnfguard/internal/vnf"
)

var (
	runs     = flag.Int("runs", 5, "iterations per measured point")
	markdown = flag.Bool("markdown", false, "emit markdown tables")
	selected = flag.String("experiments", "", "comma-separated experiment ids (default: all)")
	jsonDir  = flag.String("json-dir", "", "directory for machine-readable BENCH_<id>.json artifacts (empty disables)")
)

type experiment struct {
	id   string
	desc string
	run  func(runs int) (*metrics.Table, error)
}

func main() {
	flag.Parse()
	experiments := []experiment{
		{"E1", "Figure 1 six-step workflow", runE1},
		{"E2", "Use case 1: VNF integrity attestation", runE2},
		{"E3", "Use case 2: VNF enrollment", runE3},
		{"E4", "Floodlight REST security modes", runE4},
		{"E5", "In-enclave TLS placement", runE5},
		{"E6", "Host attestation vs IML size", runE6},
		{"E7", "TPM-rooted IMA (future work §4)", runE7},
		{"E8", "Enrollment scaling", runE8},
		{"E9", "Revocation", runE9},
		{"E10", "SGX substrate primitives", runE10},
		{"E11", "Transparency log appends (batched vs unbatched)", runE11},
		{"E12", "Credential inclusion-proof verification", runE12},
		{"E13", "Durable log appends and crash recovery", runE13},
		{"E14", "Witness gossip exchange and head verification", runE14},
		{"E15", "Enclave-sealed monotonic head (commit overhead + recovery)", runE15},
		{"E16", "Per-host sharded appender scaling (1/4/16 hosts)", runE16},
		{"E17", "Telemetry overhead on the sharded append path (+ live /metrics scrape)", runE17},
		{"E18", "Checkpointed recovery vs full WAL replay (10^4..10^6 entries)", runE18},
		{"E19", "Tile-based proof serving vs the per-request proof endpoint (10^6 entries)", runE19},
		{"E20", "Partitioned witness audit cost vs fleet size (16/64/256 hosts)", runE20},
	}
	want := map[string]bool{}
	if *selected != "" {
		for _, id := range strings.Split(*selected, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		table, err := e.run(*runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.String())
		}
		if *jsonDir != "" {
			data := table.Data()
			art := metrics.BenchArtifact{
				Name: e.id, Description: e.desc, Table: &data, UnixTime: time.Now().Unix(),
			}
			if err := metrics.WriteBenchJSON(*jsonDir, art); err != nil {
				fmt.Fprintf(os.Stderr, "%s artifact: %v\n", e.id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

// trusted returns a ready deployment with a firewall VNF and golden IML.
func trusted(opts core.Options) (*core.Deployment, error) {
	if opts.Model == nil {
		opts.Model = simtime.DefaultCosts()
	}
	d, err := core.NewDeployment(opts)
	if err != nil {
		return nil, err
	}
	if err := d.DeployVNF(0, "fw-0", "firewall"); err != nil {
		return nil, err
	}
	if err := d.LearnGolden(); err != nil {
		return nil, err
	}
	return d, nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond)) }

func runE1(runs int) (*metrics.Table, error) {
	d, err := trusted(core.Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		TLSMode: enclaveapp.TLSFullSession,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	stepHists := map[int]*metrics.Histogram{}
	for i := 1; i <= 6; i++ {
		stepHists[i] = metrics.NewHistogram(fmt.Sprintf("step-%d", i))
	}
	total := metrics.NewHistogram("total")
	names := map[int]string{}
	for i := 0; i < runs; i++ {
		name := fmt.Sprintf("fw-e1-%d", i)
		if err := d.DeployVNF(0, name, "firewall"); err != nil {
			return nil, err
		}
		if err := d.LearnGolden(); err != nil {
			return nil, err
		}
		res, err := d.RunWorkflow(0, []vnf.VNF{core.StandardFirewall(name)})
		if err != nil {
			return nil, err
		}
		for _, s := range res.Steps {
			stepHists[s.Number].Observe(s.Duration)
			names[s.Number] = s.Name
		}
		total.Observe(res.Total)
		if err := d.VM.RevokeVNF(name); err != nil {
			return nil, err
		}
	}
	t := metrics.NewTable("E1 — Figure 1 workflow, per-step latency (n="+fmt.Sprint(runs)+")",
		"step", "name", "mean", "p95")
	for i := 1; i <= 6; i++ {
		s := stepHists[i].Summarize()
		t.AddRow(i, names[i], ms(s.Mean), ms(s.P95))
	}
	s := total.Summarize()
	t.AddRow("-", "end-to-end total", ms(s.Mean), ms(s.P95))
	return t, nil
}

func runE2(runs int) (*metrics.Table, error) {
	t := metrics.NewTable("E2 — use case 1: VNF integrity attestation (n="+fmt.Sprint(runs)+")",
		"scenario", "outcome", "mean latency")

	// Genuine enclave.
	d, err := trusted(core.Options{})
	if err != nil {
		return nil, err
	}
	h := metrics.NewHistogram("ok")
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := d.VM.AttestVNF(d.HostName(0), "fw-0"); err != nil {
			return nil, err
		}
		h.Observe(time.Since(start))
	}
	t.AddRow("genuine enclave", "ACCEPTED (OK)", ms(h.Summarize().Mean))
	d.Close()

	// Revoked platform key.
	d2, err := trusted(core.Options{})
	if err != nil {
		return nil, err
	}
	d2.IAS.RevokePlatformKey(d2.Hosts[0].Platform().EPIDMember().PseudonymSecret())
	_, err = d2.VM.AttestVNF(d2.HostName(0), "fw-0")
	outcome := "REJECTED"
	if err != nil && strings.Contains(err.Error(), string(ias.StatusKeyRevoked)) {
		outcome = "REJECTED (KEY_REVOKED)"
	} else if err == nil {
		outcome = "ACCEPTED (!!)"
	}
	t.AddRow("revoked platform key", outcome, "-")
	d2.Close()

	// Tampered host (measurement mismatch blocks at host appraisal).
	d3, err := trusted(core.Options{})
	if err != nil {
		return nil, err
	}
	d3.Hosts[0].TamperBinary("fw-0", "/usr/bin/firewall", []byte("backdoored"))
	app, err := d3.VM.AttestHost(d3.HostName(0))
	if err != nil {
		return nil, err
	}
	if app.Trusted {
		t.AddRow("tampered VNF binary", "ACCEPTED (!!)", "-")
	} else {
		t.AddRow("tampered VNF binary", "REJECTED (IMA mismatch)", "-")
	}
	d3.Close()
	return t, nil
}

func runE3(runs int) (*metrics.Table, error) {
	t := metrics.NewTable("E3 — use case 2: VNF enrollment (n="+fmt.Sprint(runs)+")",
		"scenario", "outcome", "mean latency")
	for _, mode := range []enclaveapp.ProvisionMode{enclaveapp.ModeVMGenerated, enclaveapp.ModeCSR} {
		d, err := trusted(core.Options{Provision: mode})
		if err != nil {
			return nil, err
		}
		if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
			return nil, err
		}
		h := metrics.NewHistogram(string(mode))
		for i := 0; i < runs; i++ {
			name := fmt.Sprintf("fw-e3-%d", i)
			if err := d.DeployVNF(0, name, "firewall"); err != nil {
				return nil, err
			}
			if err := d.LearnGolden(); err != nil {
				return nil, err
			}
			if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := d.VM.EnrollVNF(d.HostName(0), name); err != nil {
				return nil, err
			}
			h.Observe(time.Since(start))
		}
		t.AddRow("enroll ("+string(mode)+")", "PROVISIONED", ms(h.Summarize().Mean))
		d.Close()
	}
	// Negative: enrollment refused on an unattested host.
	d, err := trusted(core.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-0"); err != nil {
		t.AddRow("enroll without host attestation", "REFUSED", "-")
	} else {
		t.AddRow("enroll without host attestation", "ALLOWED (!!)", "-")
	}
	// Negative: no credentials → controller rejects (trusted mode).
	d2, err := trusted(core.Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	if err != nil {
		return nil, err
	}
	client := controller.NewClient(d2.ControllerURL(), nil)
	if _, err := client.Health(); err != nil {
		t.AddRow("controller access without credentials", "TLS REJECTED", "-")
	} else {
		t.AddRow("controller access without credentials", "ALLOWED (!!)", "-")
	}
	d.Close()
	d2.Close()
	return t, nil
}

func runE4(runs int) (*metrics.Table, error) {
	if runs < 20 {
		runs = 20
	}
	type variant struct {
		name  string
		mode  controller.SecurityMode
		trust controller.TrustModel
	}
	variants := []variant{
		{"http", controller.ModeHTTP, controller.TrustCA},
		{"https", controller.ModeHTTPS, controller.TrustCA},
		{"trusted-https (CA)", controller.ModeTrustedHTTPS, controller.TrustCA},
		{"trusted-https (keystore)", controller.ModeTrustedHTTPS, controller.TrustKeystore},
	}
	t := metrics.NewTable("E4 — REST latency per security mode (n="+fmt.Sprint(runs)+")",
		"mode", "per-connection p50", "per-connection p95", "keep-alive p50")
	for _, v := range variants {
		d, err := trusted(core.Options{
			Mode: v.mode, Trust: v.trust, Model: simtime.ZeroCosts(),
		})
		if err != nil {
			return nil, err
		}
		if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
			return nil, err
		}
		enr, err := d.VM.EnrollVNF(d.HostName(0), "fw-0")
		if err != nil {
			return nil, err
		}
		if v.trust == controller.TrustKeystore {
			d.Server.PinCertificate(enr.Cert)
		}
		ce, err := d.Hosts[0].CredentialEnclave("fw-0")
		if err != nil {
			return nil, err
		}
		mk := func() *controller.Client {
			if v.mode == controller.ModeHTTP {
				return controller.NewClient(d.ControllerURL(), nil)
			}
			cfg, err := ce.ClientTLSConfig(core.ServerName)
			if err != nil {
				panic(err)
			}
			return controller.NewClient(d.ControllerURL(), cfg)
		}
		perConn := metrics.NewHistogram("per-conn")
		for i := 0; i < runs; i++ {
			c := mk()
			perConn.Time(func() {
				if _, err := c.Summary(); err != nil {
					panic(err)
				}
			})
			c.CloseIdle()
		}
		keep := metrics.NewHistogram("keep-alive")
		c := mk()
		for i := 0; i < runs; i++ {
			keep.Time(func() {
				if _, err := c.Summary(); err != nil {
					panic(err)
				}
			})
		}
		c.CloseIdle()
		pc, ka := perConn.Summarize(), keep.Summarize()
		t.AddRow(v.name, ms(pc.P50), ms(pc.P95), ms(ka.P50))
		d.Close()
	}
	return t, nil
}

func runE5(runs int) (*metrics.Table, error) {
	d, err := trusted(core.Options{})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		return nil, err
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-0"); err != nil {
		return nil, err
	}
	ce, err := d.Hosts[0].CredentialEnclave("fw-0")
	if err != nil {
		return nil, err
	}
	ca := d.VM.CA()

	// Echo server.
	serverKey, err := pki.GenerateKey()
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.IssueServerCert(core.ServerName, []string{core.ServerName}, []net.IP{net.IPv4(127, 0, 0, 1)}, &serverKey.PublicKey, time.Hour)
	if err != nil {
		return nil, err
	}
	srvCfg := &tls.Config{
		MinVersion:   tls.VersionTLS12,
		Certificates: []tls.Certificate{{Certificate: [][]byte{serverCert.Raw}, PrivateKey: serverKey}},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    ca.Pool(),
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", srvCfg)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { defer c.Close(); io.Copy(c, c) }(conn)
		}
	}()
	addr := ln.Addr().String()

	nativeKey, err := pki.GenerateKey()
	if err != nil {
		return nil, err
	}
	csr, err := pki.CreateCSR("native", nativeKey)
	if err != nil {
		return nil, err
	}
	nativeCert, err := ca.SignClientCSR(csr, time.Hour)
	if err != nil {
		return nil, err
	}
	nativeCfg := &tls.Config{
		MinVersion: tls.VersionTLS12, RootCAs: ca.Pool(), ServerName: core.ServerName,
		Certificates: []tls.Certificate{{Certificate: [][]byte{nativeCert.Raw}, PrivateKey: nativeKey}},
	}
	keyCfg, err := ce.ClientTLSConfig(core.ServerName)
	if err != nil {
		return nil, err
	}
	dialers := []struct {
		name string
		dial func() (net.Conn, error)
	}{
		{"native (no enclave)", func() (net.Conn, error) { return tls.Dial("tcp", addr, nativeCfg) }},
		{"key-in-enclave", func() (net.Conn, error) { return tls.Dial("tcp", addr, keyCfg) }},
		{"full-session-in-enclave", func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return ce.DialTLS(raw, core.ServerName)
		}},
	}
	t := metrics.NewTable("E5 — TLS placement (n="+fmt.Sprint(runs)+")",
		"placement", "handshake mean", "64KiB echo mean", "1KiB echo mean")
	for _, dl := range dialers {
		hs := metrics.NewHistogram("hs")
		for i := 0; i < runs; i++ {
			start := time.Now()
			conn, err := dl.dial()
			if err != nil {
				return nil, err
			}
			hs.Observe(time.Since(start))
			conn.Close()
		}
		conn, err := dl.dial()
		if err != nil {
			return nil, err
		}
		xferMeans := map[int]time.Duration{}
		for _, size := range []int{64 << 10, 1 << 10} {
			payload := make([]byte, size)
			buf := make([]byte, size)
			xfer := metrics.NewHistogram("xfer")
			for i := 0; i < runs; i++ {
				start := time.Now()
				if _, err := conn.Write(payload); err != nil {
					return nil, err
				}
				if _, err := io.ReadFull(conn, buf); err != nil {
					return nil, err
				}
				xfer.Observe(time.Since(start))
			}
			xferMeans[size] = xfer.Summarize().Mean
		}
		conn.Close()
		t.AddRow(dl.name, ms(hs.Summarize().Mean), ms(xferMeans[64<<10]), ms(xferMeans[1<<10]))
	}
	return t, nil
}

func runE6(runs int) (*metrics.Table, error) {
	t := metrics.NewTable("E6 — host attestation vs IML size (n="+fmt.Sprint(runs)+")",
		"IML entries", "evidence (step 1) mean", "appraisal (step 2) mean", "total mean")
	for _, entries := range []int{10, 100, 1000} {
		d, err := trusted(core.Options{})
		if err != nil {
			return nil, err
		}
		for i := 0; i < entries; i++ {
			d.Hosts[0].IMA().HandleEvent(ima.Event{
				Path: fmt.Sprintf("/usr/lib/mod-%04d.so", i),
				Hook: ima.HookBprmCheck, Mask: ima.MayExec, UID: 0,
			}, []byte(fmt.Sprintf("module %d", i)))
		}
		if err := d.LearnGolden(); err != nil {
			return nil, err
		}
		evidence := metrics.NewHistogram("evidence")
		appraisal := metrics.NewHistogram("appraisal")
		total := metrics.NewHistogram("total")
		d.VM.SetTracer(func(phase string, dur time.Duration) {
			switch phase {
			case "host-evidence":
				evidence.Observe(dur)
			case "host-appraisal":
				appraisal.Observe(dur)
			}
		})
		for i := 0; i < runs; i++ {
			start := time.Now()
			app, err := d.VM.AttestHost(d.HostName(0))
			if err != nil {
				return nil, err
			}
			if !app.Trusted {
				return nil, fmt.Errorf("E6: untrusted: %v", app.Findings)
			}
			total.Observe(time.Since(start))
		}
		t.AddRow(entries, ms(evidence.Summarize().Mean), ms(appraisal.Summarize().Mean), ms(total.Summarize().Mean))
		d.Close()
	}
	return t, nil
}

func runE7(runs int) (*metrics.Table, error) {
	t := metrics.NewTable("E7 — TPM-rooted IMA (n="+fmt.Sprint(runs)+")",
		"configuration", "attest mean", "IML-rewrite detected")
	for _, tpmOn := range []bool{false, true} {
		d, err := trusted(core.Options{EnableTPM: tpmOn, RequireTPM: tpmOn})
		if err != nil {
			return nil, err
		}
		h := metrics.NewHistogram("attest")
		for i := 0; i < runs; i++ {
			h.Time(func() {
				if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
					panic(err)
				}
			})
		}
		// Tamper test: run malware, then rewrite the software IML back to
		// the pre-tamper state.
		pre, _ := d.Hosts[0].IMA().Snapshot()
		d.Hosts[0].TamperBinary("fw-0", "/usr/bin/firewall", []byte("malware"))
		forged, err := ima.ParseList(pre)
		if err != nil {
			return nil, err
		}
		d.Hosts[0].IMA().TamperList(forged)
		app, err := d.VM.AttestHost(d.HostName(0))
		if err != nil {
			return nil, err
		}
		detected := "NO (paper §4 gap)"
		if !app.Trusted {
			detected = "YES"
		}
		name := "software IML"
		if tpmOn {
			name = "TPM-rooted IML"
		}
		t.AddRow(name, ms(h.Summarize().Mean), detected)
		d.Close()
	}
	return t, nil
}

func runE8(runs int) (*metrics.Table, error) {
	t := metrics.NewTable("E8 — enrollment scaling (n="+fmt.Sprint(runs)+")",
		"VNFs", "total mean", "per-VNF mean", "enrollments/s")
	for _, n := range []int{1, 4, 16} {
		d, err := trusted(core.Options{})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := d.DeployVNF(0, fmt.Sprintf("fw-s%d", i), "firewall"); err != nil {
				return nil, err
			}
		}
		if err := d.LearnGolden(); err != nil {
			return nil, err
		}
		h := metrics.NewHistogram("batch")
		for r := 0; r < runs; r++ {
			if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
				return nil, err
			}
			start := time.Now()
			for i := 0; i < n; i++ {
				if _, err := d.VM.EnrollVNF(d.HostName(0), fmt.Sprintf("fw-s%d", i)); err != nil {
					return nil, err
				}
			}
			h.Observe(time.Since(start))
			for i := 0; i < n; i++ {
				if err := d.VM.RevokeVNF(fmt.Sprintf("fw-s%d", i)); err != nil {
					return nil, err
				}
			}
		}
		mean := h.Summarize().Mean
		perVNF := mean / time.Duration(n)
		rate := float64(n) / mean.Seconds()
		t.AddRow(n, ms(mean), ms(perVNF), fmt.Sprintf("%.2f", rate))
		d.Close()
	}
	return t, nil
}

func runE9(runs int) (*metrics.Table, error) {
	d, err := trusted(core.Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		return nil, err
	}
	h := metrics.NewHistogram("revoke")
	for i := 0; i < runs; i++ {
		name := fmt.Sprintf("fw-e9-%d", i)
		if err := d.DeployVNF(0, name, "firewall"); err != nil {
			return nil, err
		}
		if err := d.LearnGolden(); err != nil {
			return nil, err
		}
		if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
			return nil, err
		}
		if _, err := d.VM.EnrollVNF(d.HostName(0), name); err != nil {
			return nil, err
		}
		h.Time(func() {
			if err := d.VM.RevokeVNF(name); err != nil {
				panic(err)
			}
		})
	}
	t := metrics.NewTable("E9 — revocation (n="+fmt.Sprint(runs)+")",
		"operation", "outcome", "mean latency")
	t.AddRow("revoke (CRL + enclave wipe)", "OK", ms(h.Summarize().Mean))

	// Post-revocation access check.
	if err := d.DeployVNF(0, "fw-e9-final", "firewall"); err != nil {
		return nil, err
	}
	if err := d.LearnGolden(); err != nil {
		return nil, err
	}
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		return nil, err
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-e9-final"); err != nil {
		return nil, err
	}
	ce, err := d.Hosts[0].CredentialEnclave("fw-e9-final")
	if err != nil {
		return nil, err
	}
	cfg, err := ce.ClientTLSConfig(core.ServerName)
	if err != nil {
		return nil, err
	}
	if err := d.VM.RevokeVNF("fw-e9-final"); err != nil {
		return nil, err
	}
	client := controller.NewClient(d.ControllerURL(), cfg)
	if _, err := client.Health(); err != nil {
		t.AddRow("controller session after revocation", "TLS REJECTED", "-")
	} else {
		t.AddRow("controller session after revocation", "ALLOWED (!!)", "-")
	}
	return t, nil
}

func runE10(runs int) (*metrics.Table, error) {
	if runs < 10 {
		runs = 10
	}
	d, err := trusted(core.Options{EnableTPM: true})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		return nil, err
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-0"); err != nil {
		return nil, err
	}
	ce, err := d.Hosts[0].CredentialEnclave("fw-0")
	if err != nil {
		return nil, err
	}
	signer, err := ce.Signer()
	if err != nil {
		return nil, err
	}
	model := simtime.DefaultCosts()
	t := metrics.NewTable("E10 — SGX substrate primitives (n="+fmt.Sprint(runs)+")",
		"primitive", "modeled cost", "measured mean")
	measure := func(name string, modeled time.Duration, fn func()) {
		h := metrics.NewHistogram(name)
		for i := 0; i < runs; i++ {
			h.Time(fn)
		}
		t.AddRow(name, modeled.String(), ms(h.Summarize().Mean))
	}
	digest := make([]byte, 32)
	measure("ECALL (sign)", model.Cost(simtime.OpECall), func() {
		if _, err := signer.Sign(nil, digest, nil); err != nil {
			panic(err)
		}
	})
	measure("ECALL (hmac)", model.Cost(simtime.OpECall), func() {
		if _, err := ce.HMAC([]byte("x")); err != nil {
			panic(err)
		}
	})
	measure("host evidence (EREPORT+quote)", model.Cost(simtime.OpQuote), func() {
		if _, err := d.Hosts[0].Attest([]byte("n"), false); err != nil {
			panic(err)
		}
	})
	measure("TPM quote", model.Cost(simtime.OpTPMQuote), func() {
		if _, err := d.Hosts[0].TPM().Quote([]byte("n"), []int{10}); err != nil {
			panic(err)
		}
	})
	return t, nil
}

// runE11 measures the transparency log's write path: per-entry commit
// latency unbatched (one tree-head signature per entry) against the
// batched appender (signature amortised over the batch).
func runE11(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	mkEntry := func(i int) translog.Entry {
		return translog.Entry{
			Type: translog.EntryAttestOK, Timestamp: int64(i),
			Actor: fmt.Sprintf("fw-%d", i), Host: "host-0", Detail: "OK",
		}
	}
	const perRun = 2048

	unbatched, err := translog.NewLog(ca.Signer())
	if err != nil {
		return nil, err
	}
	hu := metrics.NewHistogram("unbatched")
	for r := 0; r < runs; r++ {
		hu.Time(func() {
			for i := 0; i < perRun; i++ {
				if _, err := unbatched.Append(mkEntry(i)); err != nil {
					panic(err)
				}
			}
		})
	}

	batched, err := translog.NewLog(ca.Signer())
	if err != nil {
		return nil, err
	}
	app := translog.NewAppender(batched, translog.AppenderConfig{MaxBatch: 256})
	defer app.Close()
	hb := metrics.NewHistogram("batched")
	for r := 0; r < runs; r++ {
		hb.Time(func() {
			for i := 0; i < perRun; i++ {
				if err := app.Append(mkEntry(i)); err != nil {
					panic(err)
				}
			}
			if err := app.Flush(); err != nil {
				panic(err)
			}
		})
	}

	perEntry := func(mean time.Duration) string {
		return fmt.Sprintf("%.2f µs", float64(mean)/float64(perRun)/float64(time.Microsecond))
	}
	uMean, bMean := hu.Summarize().Mean, hb.Summarize().Mean
	t := metrics.NewTable("E11 — transparency log appends (n="+fmt.Sprint(runs)+", "+fmt.Sprint(perRun)+" entries/run)",
		"variant", "per-entry latency", "speedup")
	t.AddRow("unbatched (sign per entry)", perEntry(uMean), "1.0×")
	t.AddRow("batched appender (256/batch)", perEntry(bMean),
		fmt.Sprintf("%.1f×", float64(uMean)/float64(bMean)))
	return t, nil
}

// runE12 measures the relying-party read path: proof generation plus full
// verification per credential lookup against a populated log.
func runE12(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	pub := ca.Certificate().PublicKey.(*ecdsa.PublicKey)
	t := metrics.NewTable("E12 — inclusion proof verify (n="+fmt.Sprint(runs)+")",
		"log size", "lookup+prove+verify", "proof length")
	for _, population := range []int{256, 4096, 65536} {
		l, err := translog.NewLog(ca.Signer())
		if err != nil {
			return nil, err
		}
		batch := make([]translog.Entry, population)
		for i := range batch {
			batch[i] = translog.Entry{
				Type: translog.EntryEnroll, Timestamp: int64(i),
				Actor: fmt.Sprintf("fw-%d", i), Serial: fmt.Sprint(i),
			}
		}
		if _, err := l.AppendBatch(batch); err != nil {
			return nil, err
		}
		h := metrics.NewHistogram("verify")
		var proofLen int
		for i := 0; i < runs*64; i++ {
			serial := fmt.Sprint(i % population)
			h.Time(func() {
				pb, err := l.ProveSerial(serial)
				if err != nil {
					panic(err)
				}
				if err := pb.Verify(pub); err != nil {
					panic(err)
				}
				proofLen = len(pb.Proof)
			})
		}
		t.AddRow(fmt.Sprint(population), fmt.Sprintf("%.1f µs", float64(h.Summarize().Mean)/float64(time.Microsecond)), fmt.Sprintf("%d hashes", proofLen))
	}
	return t, nil
}

// runE13 measures what statedir durability costs the audit write path —
// batched appends over the WAL (records + one fsync + one atomic
// tree-head replacement per batch) against the in-memory appender — and
// how long crash recovery (replay + verify against the persisted signed
// head) takes as the log grows.
func runE13(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	mkEntry := func(i int) translog.Entry {
		return translog.Entry{
			Type: translog.EntryAttestOK, Timestamp: int64(i),
			Actor: fmt.Sprintf("fw-%d", i), Host: "host-0", Detail: "OK",
		}
	}
	const perRun = 2048

	appendAll := func(l *translog.Log) error {
		app := translog.NewAppender(l, translog.AppenderConfig{MaxBatch: 256})
		defer app.Close()
		for i := 0; i < perRun; i++ {
			if err := app.Append(mkEntry(i)); err != nil {
				return err
			}
		}
		return app.Flush()
	}

	mem, err := translog.NewLog(ca.Signer())
	if err != nil {
		return nil, err
	}
	hm := metrics.NewHistogram("in-memory")
	for r := 0; r < runs; r++ {
		hm.Time(func() {
			if err := appendAll(mem); err != nil {
				panic(err)
			}
		})
	}

	durDir, err := os.MkdirTemp("", "benchreport-translog-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(durDir)
	dur, err := translog.OpenDurableLog(ca.Signer(), durDir, translog.StoreConfig{})
	if err != nil {
		return nil, err
	}
	hd := metrics.NewHistogram("durable")
	for r := 0; r < runs; r++ {
		hd.Time(func() {
			if err := appendAll(dur); err != nil {
				panic(err)
			}
		})
	}
	if err := dur.Close(); err != nil {
		return nil, err
	}

	hr := metrics.NewHistogram("recovery")
	var recovered uint64
	for r := 0; r < runs; r++ {
		hr.Time(func() {
			re, err := translog.OpenDurableLog(ca.Signer(), durDir, translog.StoreConfig{})
			if err != nil {
				panic(err)
			}
			recovered = re.Size()
			if err := re.Close(); err != nil {
				panic(err)
			}
		})
	}

	perEntry := func(mean time.Duration) string {
		return fmt.Sprintf("%.2f µs", float64(mean)/float64(perRun)/float64(time.Microsecond))
	}
	mMean, dMean := hm.Summarize().Mean, hd.Summarize().Mean
	t := metrics.NewTable("E13 — durable log appends + recovery (n="+fmt.Sprint(runs)+", "+fmt.Sprint(perRun)+" entries/run)",
		"variant", "per-entry latency", "vs in-memory")
	t.AddRow("in-memory appender (256/batch)", perEntry(mMean), "1.0×")
	t.AddRow("durable WAL appender (256/batch)", perEntry(dMean),
		fmt.Sprintf("%.1f×", float64(dMean)/float64(mMean)))
	t.AddRow(fmt.Sprintf("crash recovery (%d entries)", recovered),
		fmt.Sprintf("%.1f ms total", float64(hr.Summarize().Mean)/float64(time.Millisecond)), "-")
	return t, nil
}

// runE14 measures the witness gossip protocol: the ECDSA verification
// every received head costs, and a full exchange round — served-head
// poll plus an HTTP head swap with each peer — at growing peer counts.
// The per-peer column is the marginal cost of widening the witness set.
func runE14(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	pub := ca.Certificate().PublicKey.(*ecdsa.PublicKey)
	l, err := translog.NewLog(ca.Signer())
	if err != nil {
		return nil, err
	}
	batch := make([]translog.Entry, 1024)
	for i := range batch {
		batch[i] = translog.Entry{
			Type: translog.EntryAttestOK, Timestamp: int64(i),
			Actor: fmt.Sprintf("fw-%d", i), Host: "host-0", Detail: "OK",
		}
	}
	if _, err := l.AppendBatch(batch); err != nil {
		return nil, err
	}
	logLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer logLn.Close()
	go http.Serve(logLn, translog.Handler(l))
	logURL := "http://" + logLn.Addr().String()

	t := metrics.NewTable("E14 — witness gossip exchange (n="+fmt.Sprint(runs)+")",
		"operation", "latency", "per peer")
	hv := metrics.NewHistogram("head-verify")
	sth := l.STH()
	for i := 0; i < runs*64; i++ {
		hv.Time(func() {
			if err := sth.Verify(pub); err != nil {
				panic(err)
			}
		})
	}
	t.AddRow("signed-head verification",
		fmt.Sprintf("%.1f µs", float64(hv.Summarize().Mean)/float64(time.Microsecond)), "-")

	for _, peers := range []int{1, 4, 8} {
		pool := translog.NewGossipPool("bench", translog.NewWitness(pub), translog.NewClient(logURL, pub))
		closers := make([]net.Listener, 0, peers)
		for i := 0; i < peers; i++ {
			peerPool := translog.NewGossipPool(fmt.Sprintf("peer-%d", i),
				translog.NewWitness(pub), translog.NewClient(logURL, pub))
			if err := peerPool.Exchange(); err != nil {
				return nil, err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			closers = append(closers, ln)
			go http.Serve(ln, translog.GossipHandler(peerPool))
			pool.AddPeer(translog.NewClient("http://"+ln.Addr().String(), pub))
		}
		h := metrics.NewHistogram("exchange")
		for r := 0; r < runs*8; r++ {
			h.Time(func() {
				if err := pool.Exchange(); err != nil {
					panic(err)
				}
			})
		}
		for _, ln := range closers {
			ln.Close()
		}
		if pool.Conflict() != nil {
			return nil, fmt.Errorf("honest gossip convicted: %v", pool.Conflict())
		}
		mean := h.Summarize().Mean
		t.AddRow(fmt.Sprintf("exchange round (%d peers)", peers),
			fmt.Sprintf("%.2f ms", float64(mean)/float64(time.Millisecond)),
			fmt.Sprintf("%.1f µs", float64(mean)/float64(peers)/float64(time.Microsecond)))
	}
	return t, nil
}

// runE15 measures the enclave-sealed monotonic head: what sealing every
// committed head (ECall + counter read + AEAD seal per batch, one
// atomic blob replacement, one counter bump) adds to the durable
// batched append path, and what the extra unseal + counter check adds
// to recovery. Budget: sealed appends must stay within 2.0x of the
// plain durable appender — the anchor work is per batch, so the
// appender amortises it like the fsync and the head signature.
func runE15(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	pub := ca.Certificate().PublicKey.(*ecdsa.PublicKey)
	vendor, err := pki.GenerateKey()
	if err != nil {
		return nil, err
	}
	issuer, err := epid.NewIssuer(0xE15)
	if err != nil {
		return nil, err
	}
	platform, err := sgx.NewPlatform("bench-machine", issuer, simtime.DefaultCosts())
	if err != nil {
		return nil, err
	}
	mkEntry := func(i int) translog.Entry {
		return translog.Entry{
			Type: translog.EntryAttestOK, Timestamp: int64(i),
			Actor: fmt.Sprintf("fw-%d", i), Host: "host-0", Detail: "OK",
		}
	}
	const perRun = 2048
	appendAll := func(l *translog.Log) error {
		app := translog.NewAppender(l, translog.AppenderConfig{MaxBatch: 256})
		defer app.Close()
		for i := 0; i < perRun; i++ {
			if err := app.Append(mkEntry(i)); err != nil {
				return err
			}
		}
		return app.Flush()
	}
	mkAnchor := func(dir string) []translog.TrustAnchor {
		a, err := translog.NewSealedHeadAnchor(platform, vendor,
			filepath.Join(dir, translog.SealedHeadFileName), pub)
		if err != nil {
			panic(err)
		}
		return []translog.TrustAnchor{a}
	}

	durDir, err := os.MkdirTemp("", "benchreport-e15-durable-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(durDir)
	dur, err := translog.OpenDurableLog(ca.Signer(), durDir, translog.StoreConfig{})
	if err != nil {
		return nil, err
	}
	hd := metrics.NewHistogram("durable")
	for r := 0; r < runs; r++ {
		hd.Time(func() {
			if err := appendAll(dur); err != nil {
				panic(err)
			}
		})
	}
	if err := dur.Close(); err != nil {
		return nil, err
	}

	sealDir, err := os.MkdirTemp("", "benchreport-e15-sealed-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sealDir)
	sealed, err := translog.OpenDurableLog(ca.Signer(), sealDir, translog.StoreConfig{Anchors: mkAnchor(sealDir)})
	if err != nil {
		return nil, err
	}
	hs := metrics.NewHistogram("sealed")
	for r := 0; r < runs; r++ {
		hs.Time(func() {
			if err := appendAll(sealed); err != nil {
				panic(err)
			}
		})
	}
	if err := sealed.Close(); err != nil {
		return nil, err
	}

	hr := metrics.NewHistogram("sealed-recovery")
	var recovered uint64
	for r := 0; r < runs; r++ {
		hr.Time(func() {
			re, err := translog.OpenDurableLog(ca.Signer(), sealDir, translog.StoreConfig{Anchors: mkAnchor(sealDir)})
			if err != nil {
				panic(err)
			}
			recovered = re.Size()
			if err := re.Close(); err != nil {
				panic(err)
			}
		})
	}

	perEntry := func(mean time.Duration) string {
		return fmt.Sprintf("%.2f µs", float64(mean)/float64(perRun)/float64(time.Microsecond))
	}
	dMean, sMean := hd.Summarize().Mean, hs.Summarize().Mean
	ratio := float64(sMean) / float64(dMean)
	verdict := "within ≤2.0× budget"
	if ratio > 2.0 {
		verdict = "OVER ≤2.0× budget"
	}
	t := metrics.NewTable("E15 — enclave-sealed monotonic head (n="+fmt.Sprint(runs)+", "+fmt.Sprint(perRun)+" entries/run)",
		"variant", "per-entry latency", "vs durable")
	t.AddRow("durable WAL appender (256/batch)", perEntry(dMean), "1.0×")
	t.AddRow("sealed WAL appender (256/batch)", perEntry(sMean),
		fmt.Sprintf("%.2f× (%s)", ratio, verdict))
	t.AddRow(fmt.Sprintf("sealed recovery (%d entries)", recovered),
		fmt.Sprintf("%.1f ms total", float64(hr.Summarize().Mean)/float64(time.Millisecond)), "-")
	return t, nil
}

// runE16 measures the per-host sharded appender against the single
// batched appender as the producing host count grows, over durable
// stores in both cases. The single appender serialises every host
// behind one mutex and one ≤256-entry commit pipeline (per batch: one
// hash pass, one tree-head signature, one fsync stream, one
// persisted-head replacement); the sharded appender buffers per host
// and its merging sequencer commits up to hosts×1024 entries as ONE
// merged Merkle batch per cycle — one signature, one head, one anchor
// bump — fanning the records out to per-host WAL segment streams whose
// fsyncs overlap. Targets: ≥3.0x aggregate throughput at 16 hosts, and
// a sharded per-entry durable cost within 1.5x of the E13 single-
// producer durable appender.
func runE16(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	var actors, hostNames [64]string
	for i := range actors {
		actors[i] = fmt.Sprintf("fw-%d", i)
		hostNames[i] = fmt.Sprintf("host-%d", i)
	}
	const perRun = 1 << 16
	produce := func(ap translog.EntryAppender, hosts int) error {
		var wg sync.WaitGroup
		errs := make([]error, hosts)
		for h := 0; h < hosts; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				host := hostNames[h]
				for i := h; i < perRun; i += hosts {
					e := translog.Entry{
						Type: translog.EntryAttestOK, Timestamp: int64(1700000000000 + i),
						Actor: actors[i%64], Host: host, Detail: "OK",
					}
					if err := ap.Append(e); err != nil {
						errs[h] = err
						return
					}
				}
			}(h)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return ap.Flush()
	}
	measure := func(hosts int, sharded bool) (time.Duration, error) {
		dir, err := os.MkdirTemp("", "benchreport-e16-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		cfg := translog.StoreConfig{}
		if sharded {
			cfg.Shards = 16
		}
		l, err := translog.OpenDurableLog(ca.Signer(), dir, cfg)
		if err != nil {
			return 0, err
		}
		defer l.Close()
		var ap translog.EntryAppender
		if sharded {
			ap = translog.NewShardedAppender(l, translog.ShardedAppenderConfig{})
		} else {
			ap = translog.NewAppender(l, translog.AppenderConfig{})
		}
		// One untimed warm-up run: the first pass grows buffers, arenas
		// and tree levels that steady state recycles.
		if err := produce(ap, hosts); err != nil {
			return 0, err
		}
		h := metrics.NewHistogram("append")
		for r := 0; r < runs; r++ {
			var perr error
			h.Time(func() { perr = produce(ap, hosts) })
			if perr != nil {
				return 0, perr
			}
		}
		if err := ap.Close(); err != nil {
			return 0, err
		}
		if want := uint64(perRun) * uint64(runs+1); l.Size() != want {
			return 0, fmt.Errorf("E16: committed %d of %d entries", l.Size(), want)
		}
		return h.Summarize().Mean, nil
	}

	// The E13 baseline for the per-entry budget: the single durable
	// appender with one producer.
	e13Mean, err := measure(1, false)
	if err != nil {
		return nil, err
	}
	perEntry := func(mean time.Duration) float64 {
		return float64(mean) / float64(perRun) / float64(time.Microsecond)
	}
	throughput := func(mean time.Duration) float64 {
		return float64(perRun) / (float64(mean) / float64(time.Second)) / 1e6
	}

	t := metrics.NewTable("E16 — per-host sharded appender scaling (n="+fmt.Sprint(runs)+", "+fmt.Sprint(perRun)+" entries/run, durable WAL)",
		"hosts × appender", "per-entry latency", "throughput", "speedup")
	t.AddRow("1 × single (E13 baseline)", fmt.Sprintf("%.2f µs", perEntry(e13Mean)),
		fmt.Sprintf("%.2f M entries/s", throughput(e13Mean)), "1.0×")
	var final string
	for _, hosts := range []int{1, 4, 16} {
		single := e13Mean
		if hosts != 1 {
			if single, err = measure(hosts, false); err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d × single", hosts), fmt.Sprintf("%.2f µs", perEntry(single)),
				fmt.Sprintf("%.2f M entries/s", throughput(single)), "-")
		}
		sharded, err := measure(hosts, true)
		if err != nil {
			return nil, err
		}
		speedup := float64(single) / float64(sharded)
		row := fmt.Sprintf("%.2f× vs single", speedup)
		if hosts == 16 {
			verdict := "meets ≥3.0x target"
			if speedup < 3.0 {
				verdict = "UNDER ≥3.0x target"
			}
			costRatio := perEntry(sharded) / perEntry(e13Mean)
			costVerdict := "within ≤1.5x E13 budget"
			if costRatio > 1.5 {
				costVerdict = "OVER ≤1.5x E13 budget"
			}
			row = fmt.Sprintf("%.2f× (%s)", speedup, verdict)
			final = fmt.Sprintf("%.2f× E13 per-entry durable cost (%s)", costRatio, costVerdict)
		}
		t.AddRow(fmt.Sprintf("%d × sharded-16", hosts), fmt.Sprintf("%.2f µs", perEntry(sharded)),
			fmt.Sprintf("%.2f M entries/s", throughput(sharded)), row)
	}
	t.AddRow("sharded-16 @ 16 hosts vs E13", final, "-", "-")
	return t, nil
}

// runE17 measures what the telemetry layer costs the hottest path (the
// E16 16-host sharded run) — instrumented vs registry-disabled — and
// scrapes the live /metrics endpoint mid-workload to prove every
// sequencer phase histogram is present while the log commits. The
// acceptance bar is instrumented throughput within 5% of
// uninstrumented.
func runE17(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	var actors, hostNames [64]string
	for i := range actors {
		actors[i] = fmt.Sprintf("fw-%d", i)
		hostNames[i] = fmt.Sprintf("host-%d", i)
	}
	const perRun = 1 << 16
	const hosts = 16
	produce := func(ap translog.EntryAppender) error {
		var wg sync.WaitGroup
		errs := make([]error, hosts)
		for h := 0; h < hosts; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				host := hostNames[h]
				for i := h; i < perRun; i += hosts {
					e := translog.Entry{
						Type: translog.EntryAttestOK, Timestamp: int64(1700000000000 + i),
						Actor: actors[i%64], Host: host, Detail: "OK",
					}
					if err := ap.Append(e); err != nil {
						errs[h] = err
						return
					}
				}
			}(h)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return ap.Flush()
	}
	// Telemetry endpoint for the mid-workload scrape.
	ln, err := obs.Default().Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	metricsURL := "http://" + ln.Addr().String() + "/metrics"
	var scraped string
	measure := func(enabled bool) (time.Duration, error) {
		obs.Default().SetEnabled(enabled)
		defer obs.Default().SetEnabled(true)
		dir, err := os.MkdirTemp("", "benchreport-e17-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		l, err := translog.OpenDurableLog(ca.Signer(), dir, translog.StoreConfig{Shards: 16})
		if err != nil {
			return 0, err
		}
		defer l.Close()
		ap := translog.NewShardedAppender(l, translog.ShardedAppenderConfig{})
		if err := produce(ap); err != nil { // warm-up
			return 0, err
		}
		h := metrics.NewHistogram("append")
		for r := 0; r < runs; r++ {
			var perr error
			h.Time(func() { perr = produce(ap) })
			if perr != nil {
				return 0, perr
			}
			if enabled && r == 0 {
				// Scrape mid-workload: the appender is live, cycles are
				// committing, and every phase series must already be there.
				resp, err := http.Get(metricsURL)
				if err != nil {
					return 0, fmt.Errorf("E17: scraping %s: %w", metricsURL, err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return 0, err
				}
				scraped = string(body)
			}
		}
		if err := ap.Close(); err != nil {
			return 0, err
		}
		return h.Summarize().Mean, nil
	}

	off, err := measure(false)
	if err != nil {
		return nil, err
	}
	on, err := measure(true)
	if err != nil {
		return nil, err
	}
	phases := []string{"gather", "marshal", "merkle", "sign", "wal_sync", "anchor_commit"}
	for _, phase := range phases {
		series := fmt.Sprintf(`translog_cycle_phase_seconds_count{phase=%q}`, phase)
		if !strings.Contains(scraped, series) {
			return nil, fmt.Errorf("E17: mid-workload /metrics scrape is missing %s", series)
		}
	}

	perEntry := func(mean time.Duration) float64 {
		return float64(mean) / float64(perRun) / float64(time.Microsecond)
	}
	throughput := func(mean time.Duration) float64 {
		return float64(perRun) / (float64(mean) / float64(time.Second)) / 1e6
	}
	overhead := (float64(on) - float64(off)) / float64(off) * 100
	verdict := "within ≤5% budget"
	if overhead > 5.0 {
		verdict = "OVER ≤5% budget"
	}
	t := metrics.NewTable("E17 — telemetry overhead (n="+fmt.Sprint(runs)+", "+fmt.Sprint(perRun)+" entries/run, sharded-16 @ 16 hosts, durable WAL)",
		"variant", "per-entry latency", "throughput", "verdict")
	t.AddRow("uninstrumented (registry disabled)", fmt.Sprintf("%.2f µs", perEntry(off)),
		fmt.Sprintf("%.2f M entries/s", throughput(off)), "baseline")
	t.AddRow("instrumented (full telemetry)", fmt.Sprintf("%.2f µs", perEntry(on)),
		fmt.Sprintf("%.2f M entries/s", throughput(on)), fmt.Sprintf("%+.2f%% (%s)", overhead, verdict))
	t.AddRow("mid-workload /metrics scrape", fmt.Sprintf("%d phase series", len(phases)),
		"all present", "ok")
	return t, nil
}

// runE18 measures what the anchor-verified checkpoint buys the restart
// path across three orders of magnitude of log population: a full
// replay reopens every record ever written (linear in history), while a
// checkpointed reopen seeds the tree from the frozen subtree hashes and
// replays only the short WAL suffix past the checkpoint, so it must
// stay flat — within 2x of the smallest population — as the log grows.
func runE18(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	mkEntry := func(i int) translog.Entry {
		return translog.Entry{
			Type: translog.EntryAttestOK, Timestamp: int64(i),
			Actor: fmt.Sprintf("fw-%d", i), Host: "host-0", Detail: "OK",
		}
	}
	const suffix = 256
	const chunk = 8192

	build := func(size int, checkpointed bool) (string, error) {
		dir, err := os.MkdirTemp("", "benchreport-ckpt-")
		if err != nil {
			return "", err
		}
		l, err := translog.OpenDurableLog(ca.Signer(), dir, translog.StoreConfig{NoSync: true})
		if err != nil {
			return "", err
		}
		for at := 0; at < size-suffix; at += chunk {
			n := chunk
			if at+n > size-suffix {
				n = size - suffix - at
			}
			batch := make([]translog.Entry, n)
			for i := range batch {
				batch[i] = mkEntry(at + i)
			}
			if _, err := l.AppendBatch(batch); err != nil {
				return "", err
			}
		}
		if checkpointed {
			if err := l.Checkpoint(); err != nil {
				return "", err
			}
		}
		tail := make([]translog.Entry, suffix)
		for i := range tail {
			tail[i] = mkEntry(size - suffix + i)
		}
		if _, err := l.AppendBatch(tail); err != nil {
			return "", err
		}
		return dir, l.Close()
	}

	sizes := []int{10_000, 100_000, 1_000_000}
	type point struct {
		full, ckpt time.Duration
	}
	points := make([]point, len(sizes))
	for si, size := range sizes {
		for _, checkpointed := range []bool{false, true} {
			dir, err := build(size, checkpointed)
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			h := metrics.NewHistogram("open")
			for r := 0; r < runs; r++ {
				h.Time(func() {
					re, err := translog.OpenDurableLog(ca.Signer(), dir, translog.StoreConfig{NoSync: true})
					if err != nil {
						panic(err)
					}
					if re.Size() != uint64(size) {
						panic("short recovery")
					}
					if err := re.Close(); err != nil {
						panic(err)
					}
				})
			}
			if checkpointed {
				points[si].ckpt = h.Summarize().Mean
			} else {
				points[si].full = h.Summarize().Mean
			}
		}
	}

	inMs := func(d time.Duration) string {
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	}
	smallest := points[0].ckpt
	t := metrics.NewTable("E18 — checkpointed recovery vs full replay (n="+fmt.Sprint(runs)+", "+fmt.Sprint(suffix)+"-entry suffix)",
		"population", "full replay", "checkpointed open", "speedup", "verdict")
	for si, size := range sizes {
		verdict := "flat (≤2x smallest)"
		if points[si].ckpt > 2*smallest {
			verdict = "NOT FLAT (>2x smallest)"
		}
		t.AddRow(fmt.Sprint(size), inMs(points[si].full), inMs(points[si].ckpt),
			fmt.Sprintf("%.1f×", float64(points[si].full)/float64(points[si].ckpt)), verdict)
	}
	return t, nil
}

// runE19 measures tile-based proof serving at the scale the design is
// for: a 10^6-entry log served over HTTP, and an auditor that needs
// inclusion proofs for a recurring working set of credentials. The
// baseline asks the per-request InclusionProof endpoint (one round trip
// per proof, the server walks its tree each time). The tile modes
// assemble the same proofs client-side from content-addressed tiles:
// cold thrashes a tiny LRU (every proof re-fetches its tiles), warm
// holds the working set's tiles pre-expanded, so a proof costs a few
// array reads and zero HTTP. Every proof is verified against the tree
// root in all modes. The acceptance verdict: warm tile assembly must
// beat the endpoint by ≥10x.
func runE19(runs int) (*metrics.Table, error) {
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	l, err := translog.NewLog(ca.Signer())
	if err != nil {
		return nil, err
	}
	const population = 1_000_000
	const chunk = 8192
	leaves := make([]translog.Hash, 0, population)
	for at := 0; at < population; at += chunk {
		n := chunk
		if at+n > population {
			n = population - at
		}
		batch := make([]translog.Entry, n)
		for i := range batch {
			batch[i] = translog.Entry{
				Type: translog.EntryAttestOK, Timestamp: int64(at + i),
				Actor: fmt.Sprintf("fw-%d", at+i), Host: "host-0", Detail: "OK",
			}
			leaves = append(leaves, translog.LeafHash(batch[i].Marshal()))
		}
		if _, err := l.AppendBatch(batch); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go http.Serve(ln, translog.Handler(l))
	url := "http://" + ln.Addr().String()
	sth := l.STH()

	// The auditor's working set: a fixed cycle of indices spread across
	// the whole tree, so the warm mode can cover it up front.
	const workingSet = 2048
	const proofsPerRun = 3000
	index := func(i int) uint64 { return uint64((i%workingSet)*7919) % population }
	prove := func(i int, proofs func(index, size uint64) ([]translog.Hash, error)) error {
		idx := index(i)
		proof, err := proofs(idx, population)
		if err != nil {
			return err
		}
		return translog.VerifyInclusion(leaves[idx], idx, population, proof, sth.RootHash)
	}

	type mode struct {
		name  string
		setup func() (func(index, size uint64) ([]translog.Hash, error), *translog.TileAssembler, error)
	}
	modes := []mode{
		{"endpoint", func() (func(index, size uint64) ([]translog.Hash, error), *translog.TileAssembler, error) {
			return translog.NewClient(url, nil).InclusionProof, nil, nil
		}},
		{"tile-cold", func() (func(index, size uint64) ([]translog.Hash, error), *translog.TileAssembler, error) {
			asm := translog.NewTileAssembler(translog.NewClient(url, nil), 4)
			return asm.InclusionProof, asm, nil
		}},
		{"tile-warm", func() (func(index, size uint64) ([]translog.Hash, error), *translog.TileAssembler, error) {
			asm := translog.NewTileAssembler(translog.NewClient(url, nil), 16384)
			for i := 0; i < workingSet; i++ { // pull the whole working set in
				if err := prove(i, asm.InclusionProof); err != nil {
					return nil, nil, err
				}
			}
			return asm.InclusionProof, asm, nil
		}},
	}

	type result struct {
		mean     time.Duration
		hitRatio string
	}
	results := make([]result, len(modes))
	for mi, m := range modes {
		proofs, asm, err := m.setup()
		if err != nil {
			return nil, err
		}
		h := metrics.NewHistogram(m.name)
		for r := 0; r < runs; r++ {
			for i := 0; i < proofsPerRun; i++ {
				i := i
				var perr error
				h.Time(func() { perr = prove(r*proofsPerRun+i, proofs) })
				if perr != nil {
					return nil, fmt.Errorf("%s: %w", m.name, perr)
				}
			}
		}
		results[mi] = result{mean: h.Summarize().Mean, hitRatio: "n/a"}
		if asm != nil {
			hits, misses := asm.Stats()
			results[mi].hitRatio = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
		}
	}

	baseline := results[0].mean
	t := metrics.NewTable(fmt.Sprintf("E19 — tile-based proof serving at 10^6 entries (n=%d, %d proofs/run, %d-index working set)",
		runs, proofsPerRun, workingSet),
		"mode", "mean/proof", "proofs/sec", "tile cache hits", "vs endpoint", "verdict")
	for mi, m := range modes {
		r := results[mi]
		speedup := float64(baseline) / float64(r.mean)
		verdict := ""
		if m.name == "tile-warm" {
			verdict = ">=10x (pass)"
			if speedup < 10 {
				verdict = "BELOW 10x"
			}
		}
		t.AddRow(m.name,
			fmt.Sprintf("%.1f µs", float64(r.mean)/float64(time.Microsecond)),
			fmt.Sprintf("%.0f", float64(time.Second)/float64(r.mean)),
			r.hitRatio,
			fmt.Sprintf("%.1f×", speedup),
			verdict)
	}
	return t, nil
}

// runE20 measures the partitioned audit plane's scaling claim: as the
// fleet grows 16 -> 64 -> 256 hosts (shards scale with hosts, the
// witness set scales with the fleet, the quorum stays fixed at 3), one
// witness's full audit pass over its assigned slice must stay flat —
// within 1.5x of the 16-host cost — while a full-fleet witness with
// every shard assigned grows linearly. That flatness is what lets the
// deployment add hosts without adding per-witness verification burden.
func runE20(runs int) (*metrics.Table, error) {
	const perHost = 16
	const quorum = 3
	const passesPerRun = 8
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		return nil, err
	}
	pub, ok := ca.Signer().Public().(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("CA signer is not ECDSA")
	}

	fleets := []int{16, 64, 256}
	type point struct {
		hosts                 int
		assigned              int
		perWitness, fullFleet time.Duration
	}
	points := make([]point, 0, len(fleets))
	for _, hosts := range fleets {
		shards := hosts
		names := make([]string, hosts/2)
		for i := range names {
			names[i] = fmt.Sprintf("w%03d", i)
		}
		part, err := translog.NewWitnessPartition(shards, names, quorum)
		if err != nil {
			return nil, err
		}
		l, err := translog.NewLog(ca.Signer())
		if err != nil {
			return nil, err
		}
		if err := l.EnableShardStreams(shards); err != nil {
			return nil, err
		}
		batch := make([]translog.Entry, 0, hosts*perHost)
		for h := 0; h < hosts; h++ {
			for i := 0; i < perHost; i++ {
				batch = append(batch, translog.Entry{
					Type: translog.EntryAttestOK, Timestamp: int64(len(batch)),
					Actor: fmt.Sprintf("fw-%d", len(batch)),
					Host:  fmt.Sprintf("host-%d", h), Detail: "OK",
				})
			}
		}
		if _, err := l.AppendBatch(batch); err != nil {
			return nil, err
		}
		sth := l.STH()
		fetch := func(a, n uint64) ([]translog.Hash, error) { return l.ConsistencyProof(a, n) }
		audit := func(assigned []int) error {
			w := translog.NewWitness(pub)
			w.SetAssignedShards(shards, assigned)
			if err := w.Advance(sth, fetch); err != nil {
				return err
			}
			return w.AuditShards(sth, l, 0)
		}
		all := make([]int, shards)
		for i := range all {
			all[i] = i
		}
		measure := func(assigned []int, label string) (time.Duration, error) {
			h := metrics.NewHistogram(label)
			for r := 0; r < runs; r++ {
				for i := 0; i < passesPerRun; i++ {
					var aerr error
					h.Time(func() { aerr = audit(assigned) })
					if aerr != nil {
						return 0, fmt.Errorf("%s at %d hosts: %w", label, hosts, aerr)
					}
				}
			}
			return h.Summarize().Mean, nil
		}
		slice := part.AssignedShards(names[0])
		pw, err := measure(slice, "per-witness")
		if err != nil {
			return nil, err
		}
		ff, err := measure(all, "full-fleet")
		if err != nil {
			return nil, err
		}
		points = append(points, point{hosts: hosts, assigned: len(slice), perWitness: pw, fullFleet: ff})
	}

	base := points[0]
	t := metrics.NewTable(fmt.Sprintf(
		"E20 — partitioned witness audit vs fleet size (n=%d, %d passes/run, %d entries/host, Q=%d, witnesses=hosts/2)",
		runs, passesPerRun, perHost, quorum),
		"hosts", "assigned shards", "per-witness pass", "vs 16 hosts", "full-fleet pass", "vs 16 hosts", "verdict")
	for _, p := range points {
		growth := float64(p.perWitness) / float64(base.perWitness)
		verdict := ""
		if p.hosts == fleets[len(fleets)-1] {
			verdict = "flat <=1.5x (pass)"
			if growth > 1.5 {
				verdict = "NOT FLAT"
			}
		}
		t.AddRow(fmt.Sprint(p.hosts),
			fmt.Sprint(p.assigned),
			fmt.Sprintf("%.2f ms", float64(p.perWitness)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f×", growth),
			fmt.Sprintf("%.2f ms", float64(p.fullFleet)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f×", float64(p.fullFleet)/float64(base.fullFleet)),
			verdict)
	}
	return t, nil
}
