package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverExitCodes runs the driver over the fixture modules under
// testdata/ and pins the exit-code contract: 0 clean, 1 findings, 2
// load or type-check failure.
func TestDriverExitCodes(t *testing.T) {
	cases := []struct {
		fixture    string
		wantExit   int
		wantStdout string // substring of stdout, "" for none expected
		wantStderr string // substring of stderr, "" for none expected
	}{
		{"fixture-clean", 0, "", ""},
		{"fixture-dirty", 1, "atomicwrite", "finding(s)"},
		{"fixture-broken", 2, "", "undefinedIdentifier"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(&stdout, &stderr, []string{"-dir", filepath.Join("testdata", tc.fixture), "./..."})
			if got != tc.wantExit {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", got, tc.wantExit, stdout.String(), stderr.String())
			}
			if tc.wantStdout == "" && stdout.Len() > 0 {
				t.Errorf("unexpected stdout:\n%s", stdout.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestDirtyFindingFormat pins the file:line: rule: message output shape.
func TestDirtyFindingFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run(&stdout, &stderr, []string{"-dir", filepath.Join("testdata", "fixture-dirty"), "./..."}); got != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", got, stderr.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !strings.Contains(line, "main.go:") || !strings.Contains(line, ": atomicwrite: ") {
			t.Errorf("finding line %q does not match file:line: rule: message", line)
		}
	}
}

// TestRuleSelection pins -rules filtering and the unknown-rule error.
func TestRuleSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Only goroutinetest selected: the dirty fixture's atomicwrite
	// findings must not appear.
	if got := run(&stdout, &stderr, []string{"-rules", "goroutinetest", "-dir", filepath.Join("testdata", "fixture-dirty"), "./..."}); got != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", got, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if got := run(&stdout, &stderr, []string{"-rules", "nosuchrule", "./..."}); got != 2 {
		t.Fatalf("unknown rule: exit %d, want 2", got)
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr missing unknown-rule error: %s", stderr.String())
	}
}

// TestListRules pins -list output to the full suite.
func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run(&stdout, &stderr, []string{"-list"}); got != 0 {
		t.Fatalf("exit %d, want 0", got)
	}
	for _, rule := range []string{"atomicwrite", "errtaxonomy", "lockscope", "obshandle", "goroutinetest", "unusedexport"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, stdout.String())
		}
	}
}
