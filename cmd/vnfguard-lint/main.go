// Command vnfguard-lint runs the project-invariant analyzer suite
// (internal/lint) over the packages matching its arguments (default
// ./...): the durable-write discipline, the state-error taxonomy, lock
// scope on read paths, pre-resolved telemetry handles, goroutine
// discipline in tests, and the dead-export sweep.
//
// Findings print as `file:line: rule: message`. A finding is suppressed
// with a written justification on the same line or the line above:
//
//	//lint:allow <rule> <reason>
//
// Exit codes: 0 no findings, 1 findings, 2 the packages failed to load
// or type-check. CI runs this before the test jobs, so an invariant
// violation fails fast.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vnfguard/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("vnfguard-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	dir := fs.String("dir", ".", "directory to resolve packages from (module root)")
	list := fs.Bool("list", false, "list the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		for _, g := range lint.GlobalAnalyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", g.Name, g.Doc)
		}
		return 0
	}

	analyzers, globals, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "vnfguard-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "vnfguard-lint:", err)
		return 2
	}

	findings := lint.RunAnalyzers(units, analyzers, globals)
	wd, _ := os.Getwd()
	for _, f := range findings {
		f.Pos.Filename = relPath(wd, f.Pos.Filename)
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vnfguard-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectRules filters the suites by the -rules flag.
func selectRules(spec string) ([]*lint.Analyzer, []*lint.GlobalAnalyzer, error) {
	if spec == "" {
		return lint.Analyzers, lint.GlobalAnalyzers, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var as []*lint.Analyzer
	var gs []*lint.GlobalAnalyzer
	for _, a := range lint.Analyzers {
		if want[a.Name] {
			as = append(as, a)
			delete(want, a.Name)
		}
	}
	for _, g := range lint.GlobalAnalyzers {
		if want[g.Name] {
			gs = append(gs, g)
			delete(want, g.Name)
		}
	}
	for name := range want {
		return nil, nil, fmt.Errorf("unknown rule %q (use -list)", name)
	}
	return as, gs, nil
}

// relPath shortens absolute finding paths relative to the working
// directory when possible.
func relPath(wd, path string) string {
	if wd == "" || !filepath.IsAbs(path) {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
