module fixturebroken

go 1.24
