// Package main is the broken driver fixture: it does not type-check,
// so vnfguard-lint must report a load error and exit 2.
package main

func main() {
	undefinedIdentifier()
}
