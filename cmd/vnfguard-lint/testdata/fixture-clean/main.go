// Package main is the clean driver fixture: nothing for any rule to
// flag, so vnfguard-lint must exit 0.
package main

import "fmt"

func main() {
	fmt.Println("clean")
}
