// Package main is the dirty driver fixture: a bare os.Rename and a raw
// os.WriteFile, so vnfguard-lint must report findings and exit 1.
package main

import "os"

func main() {
	_ = os.WriteFile("state.tmp", []byte("x"), 0o600)
	_ = os.Rename("state.tmp", "state")
}
