// Command ias-server runs the simulated Intel Attestation Service as a
// standalone HTTP service. It owns the EPID group: on first start it
// creates the issuer and persists it to the state directory so container
// hosts can provision platforms into the group (the manufacture-time flow;
// see DESIGN.md §2).
//
//	ias-server -addr 127.0.0.1:7014 -state-dir ./state
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"

	"vnfguard/internal/epid"
	"vnfguard/internal/ias"
	"vnfguard/internal/statedir"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	stateDir := flag.String("state-dir", "./state", "shared state directory")
	subKey := flag.String("subscription-key", "vnfguard-subscription", "accepted API key")
	gid := flag.Uint("gid", 1000, "EPID group id (first start only)")
	flag.Parse()

	dir, err := statedir.Open(*stateDir)
	if err != nil {
		log.Fatal(err)
	}

	var issuer *epid.Issuer
	if raw, err := dir.Read(statedir.FileIssuer); err == nil {
		issuer, err = epid.ImportIssuer(raw)
		if err != nil {
			log.Fatalf("loading issuer: %v", err)
		}
		log.Printf("loaded EPID issuer (gid %d)", issuer.GroupID())
	} else if errors.Is(err, os.ErrNotExist) {
		issuer, err = epid.NewIssuer(epid.GroupID(*gid))
		if err != nil {
			log.Fatal(err)
		}
		raw, err := issuer.Export()
		if err != nil {
			log.Fatal(err)
		}
		if err := dir.Write(statedir.FileIssuer, raw); err != nil {
			log.Fatal(err)
		}
		log.Printf("created EPID issuer (gid %d)", issuer.GroupID())
	} else {
		log.Fatal(err)
	}

	svc, err := ias.NewService(issuer.GroupPublicKey())
	if err != nil {
		log.Fatal(err)
	}
	svc.AddSubscriptionKey(*subKey)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	if err := dir.Write(statedir.FileIASURL, []byte(url)); err != nil {
		log.Fatal(err)
	}
	if err := dir.Write(statedir.FileIASCert, svc.SigningCertPEM()); err != nil {
		log.Fatal(err)
	}
	log.Printf("attestation service listening on %s", url)
	log.Fatal(http.Serve(ln, svc.Handler()))
}
