// Package vnfguard's root benchmark suite regenerates every experiment in
// EXPERIMENTS.md (E1–E10). Each benchmark maps to one experiment row; see
// DESIGN.md §4 for the experiment index. Benchmarks run under the default
// literature-derived cost model (simtime.DefaultCosts) so that modeled
// hardware costs — EPID quote generation, IAS WAN round trips, enclave
// transitions, TPM quotes — shape the results as they would on a real
// deployment.
package vnfguard

import (
	"crypto/ecdsa"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/epid"
	"vnfguard/internal/ima"
	"vnfguard/internal/metrics"
	"vnfguard/internal/obs"
	"vnfguard/internal/pki"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/translog"
	"vnfguard/internal/vnf"
)

// benchModel returns the cost model under which the E-series runs.
func benchModel() *simtime.CostModel { return simtime.DefaultCosts() }

// newBenchDeployment builds a deployment with one deployed firewall VNF
// and a learned golden baseline.
func newBenchDeployment(b *testing.B, opts core.Options) *core.Deployment {
	b.Helper()
	if opts.Model == nil {
		opts.Model = benchModel()
	}
	d, err := core.NewDeployment(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	if err := d.DeployVNF(0, "fw-0", "firewall"); err != nil {
		b.Fatal(err)
	}
	if err := d.LearnGolden(); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkE1_WorkflowEndToEnd measures the full Figure-1 workflow: host
// attestation (steps 1–2), VNF enclave attestation and provisioning
// (steps 3–5), and the first authenticated controller session (step 6).
func BenchmarkE1_WorkflowEndToEnd(b *testing.B) {
	d := newBenchDeployment(b, core.Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		TLSMode: enclaveapp.TLSFullSession,
	})
	env := core.DefaultEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("fw-e1-%d", i)
		b.StopTimer()
		if err := d.DeployVNF(0, name, "firewall"); err != nil {
			b.Fatal(err)
		}
		if err := d.LearnGolden(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
			b.Fatal(err)
		}
		if _, err := d.VM.EnrollVNF(d.HostName(0), name); err != nil {
			b.Fatal(err)
		}
		ce, err := d.Hosts[0].CredentialEnclave(name)
		if err != nil {
			b.Fatal(err)
		}
		inst, err := vnf.NewInstance(core.StandardFirewall(name), ce, d.ControllerURL(), core.ServerName, env, enclaveapp.TLSFullSession)
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Activate(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := inst.Deactivate(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkE2_VNFAttestation measures use case 1 — the integrity
// attestation of a VNF credential enclave: the RA key exchange including
// quote generation and IAS validation (steps 3–4), without provisioning.
func BenchmarkE2_VNFAttestation(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quote, err := d.VM.AttestVNF(d.HostName(0), "fw-0")
		if err != nil {
			b.Fatal(err)
		}
		if quote == nil {
			b.Fatal("no quote")
		}
	}
}

// BenchmarkE3_Enrollment measures use case 2 — enrolling an attested VNF:
// RA exchange plus credential generation and provisioning (steps 3–5).
func BenchmarkE3_Enrollment(b *testing.B) {
	for _, mode := range []enclaveapp.ProvisionMode{enclaveapp.ModeVMGenerated, enclaveapp.ModeCSR} {
		b.Run(string(mode), func(b *testing.B) {
			d := newBenchDeployment(b, core.Options{Provision: mode})
			if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("fw-e3-%d", i)
				b.StopTimer()
				if err := d.DeployVNF(0, name, "firewall"); err != nil {
					b.Fatal(err)
				}
				if err := d.LearnGolden(); err != nil {
					b.Fatal(err)
				}
				if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := d.VM.EnrollVNF(d.HostName(0), name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4_SecurityModes measures north-bound REST latency across
// Floodlight's three security modes, per-connection (handshake included)
// and with keep-alive.
func BenchmarkE4_SecurityModes(b *testing.B) {
	type variant struct {
		name  string
		mode  controller.SecurityMode
		trust controller.TrustModel
	}
	variants := []variant{
		{"http", controller.ModeHTTP, controller.TrustCA},
		{"https", controller.ModeHTTPS, controller.TrustCA},
		{"trusted-https-ca", controller.ModeTrustedHTTPS, controller.TrustCA},
		{"trusted-https-keystore", controller.ModeTrustedHTTPS, controller.TrustKeystore},
	}
	for _, v := range variants {
		d := newBenchDeployment(b, core.Options{
			Mode: v.mode, Trust: v.trust, TLSMode: enclaveapp.TLSKeyInEnclave,
			Model: simtime.ZeroCosts(), // isolate transport cost
		})
		if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
			b.Fatal(err)
		}
		enr, err := d.VM.EnrollVNF(d.HostName(0), "fw-0")
		if err != nil {
			b.Fatal(err)
		}
		if v.trust == controller.TrustKeystore {
			d.Server.PinCertificate(enr.Cert)
		}
		ce, err := d.Hosts[0].CredentialEnclave("fw-0")
		if err != nil {
			b.Fatal(err)
		}
		mkClient := func() *controller.Client {
			if v.mode == controller.ModeHTTP {
				return controller.NewClient(d.ControllerURL(), nil)
			}
			cfg, err := ce.ClientTLSConfig(core.ServerName)
			if err != nil {
				b.Fatal(err)
			}
			return controller.NewClient(d.ControllerURL(), cfg)
		}
		b.Run(v.name+"/per-connection", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				client := mkClient()
				if _, err := client.Summary(); err != nil {
					b.Fatal(err)
				}
				client.CloseIdle()
			}
		})
		b.Run(v.name+"/keep-alive", func(b *testing.B) {
			client := mkClient()
			defer client.CloseIdle()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Summary(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_EnclaveTLS measures the paper's deferred question: the
// performance impact of TLS placement. Native (no enclave) vs private
// key in enclave vs full session in enclave, for handshakes and bulk
// transfer.
func BenchmarkE5_EnclaveTLS(b *testing.B) {
	model := benchModel()
	d := newBenchDeployment(b, core.Options{Model: model})
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		b.Fatal(err)
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-0"); err != nil {
		b.Fatal(err)
	}
	ce, err := d.Hosts[0].CredentialEnclave("fw-0")
	if err != nil {
		b.Fatal(err)
	}

	// Mutual-TLS echo server trusting the VM CA.
	addr, stop := startEchoTLS(b, d.VM.CA())
	defer stop()

	// Native baseline: key held in untrusted memory.
	nativeKey, err := pki.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	csr, err := pki.CreateCSR("native", nativeKey)
	if err != nil {
		b.Fatal(err)
	}
	nativeCert, err := d.VM.CA().SignClientCSR(csr, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	nativeCfg := &tls.Config{
		MinVersion: tls.VersionTLS12, RootCAs: d.VM.CA().Pool(), ServerName: core.ServerName,
		Certificates: []tls.Certificate{{Certificate: [][]byte{nativeCert.Raw}, PrivateKey: nativeKey}},
	}
	keyCfg, err := ce.ClientTLSConfig(core.ServerName)
	if err != nil {
		b.Fatal(err)
	}

	dialers := map[string]func() (net.Conn, error){
		"native": func() (net.Conn, error) { return tls.Dial("tcp", addr, nativeCfg) },
		"key-in-enclave": func() (net.Conn, error) {
			return tls.Dial("tcp", addr, keyCfg)
		},
		"full-session-in-enclave": func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return ce.DialTLS(raw, core.ServerName)
		},
	}
	for _, name := range []string{"native", "key-in-enclave", "full-session-in-enclave"} {
		dial := dialers[name]
		b.Run("handshake/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conn, err := dial()
				if err != nil {
					b.Fatal(err)
				}
				conn.Close()
			}
		})
		for _, size := range []int{1 << 10, 64 << 10} {
			payload := make([]byte, size)
			b.Run(fmt.Sprintf("transfer-%dKiB/%s", size>>10, name), func(b *testing.B) {
				conn, err := dial()
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				buf := make([]byte, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := conn.Write(payload); err != nil {
						b.Fatal(err)
					}
					if _, err := io.ReadFull(conn, buf); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// startEchoTLS runs a mutual-TLS echo server for E5.
func startEchoTLS(b *testing.B, ca *pki.CA) (addr string, stop func()) {
	b.Helper()
	key, err := pki.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	cert, err := ca.IssueServerCert(core.ServerName, []string{core.ServerName}, []net.IP{net.IPv4(127, 0, 0, 1)}, &key.PublicKey, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	cfg := &tls.Config{
		MinVersion:   tls.VersionTLS12,
		Certificates: []tls.Certificate{{Certificate: [][]byte{cert.Raw}, PrivateKey: key}},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    ca.Pool(),
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// BenchmarkE6_HostAttestation measures steps 1–2 as the IML grows: the
// quote and IAS round trip dominate; appraisal is linear but cheap.
func BenchmarkE6_HostAttestation(b *testing.B) {
	for _, entries := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("iml-%d", entries), func(b *testing.B) {
			d := newBenchDeployment(b, core.Options{})
			for i := 0; i < entries; i++ {
				d.Hosts[0].IMA().HandleEvent(ima.Event{
					Path: fmt.Sprintf("/usr/lib/mod-%04d.so", i),
					Hook: ima.HookBprmCheck, Mask: ima.MayExec, UID: 0,
				}, []byte(fmt.Sprintf("module %d", i)))
			}
			if err := d.LearnGolden(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				app, err := d.VM.AttestHost(d.HostName(0))
				if err != nil {
					b.Fatal(err)
				}
				if !app.Trusted {
					b.Fatalf("untrusted: %v", app.Findings)
				}
			}
		})
	}
}

// BenchmarkE7_TPMRootedIMA compares software-only attestation with the
// §4 TPM-rooted extension (a large constant cost buys tamper evidence).
func BenchmarkE7_TPMRootedIMA(b *testing.B) {
	for _, tpmOn := range []bool{false, true} {
		name := "software-iml"
		if tpmOn {
			name = "tpm-rooted-iml"
		}
		b.Run(name, func(b *testing.B) {
			d := newBenchDeployment(b, core.Options{EnableTPM: tpmOn, RequireTPM: tpmOn})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				app, err := d.VM.AttestHost(d.HostName(0))
				if err != nil {
					b.Fatal(err)
				}
				if !app.Trusted {
					b.Fatalf("untrusted: %v", app.Findings)
				}
			}
		})
	}
}

// BenchmarkE8_Scaling measures enrollment of N VNFs on one host (the
// multi-VNF deployment Figure 1 depicts).
func BenchmarkE8_Scaling(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("vnfs-%d", n), func(b *testing.B) {
			d := newBenchDeployment(b, core.Options{})
			for i := 0; i < n; i++ {
				if err := d.DeployVNF(0, fmt.Sprintf("fw-s%d", i), "firewall"); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.LearnGolden(); err != nil {
				b.Fatal(err)
			}
			if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					if _, err := d.VM.EnrollVNF(d.HostName(0), fmt.Sprintf("fw-s%d", j)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for j := 0; j < n; j++ {
					if err := d.VM.RevokeVNF(fmt.Sprintf("fw-s%d", j)); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE9_Revocation measures the enroll+revoke credential cycle.
// Revocation alone is microseconds (CRL update + one sealed record; see
// cmd/benchreport E9 for its isolated latency); timing the full cycle
// keeps the benchmark's iteration count proportionate to its setup cost.
func BenchmarkE9_Revocation(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("fw-e9-%d", i)
		b.StopTimer()
		if err := d.DeployVNF(0, name, "firewall"); err != nil {
			b.Fatal(err)
		}
		if err := d.LearnGolden(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := d.VM.EnrollVNF(d.HostName(0), name); err != nil {
			b.Fatal(err)
		}
		if err := d.VM.RevokeVNF(name); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLogEntry builds a representative hot-path audit entry (attestation
// verdicts carry no credential serial; issuance entries do, but those are
// not the batched path).
func benchLogEntry(i int) translog.Entry {
	return translog.Entry{
		Type:      translog.EntryAttestOK,
		Timestamp: int64(1700000000000 + i),
		Actor:     fmt.Sprintf("fw-%d", i),
		Host:      "host-0",
		Detail:    "OK",
	}
}

// BenchmarkE11TranslogAppend measures the transparency log's write path
// under the E-series cost model deployment: every committed batch costs
// one Merkle root recomputation plus one ECDSA tree-head signature, so
// the batched appender amortises the signature across the batch. The
// unbatched variant commits (and signs) per entry — the comparison is
// the justification for the batched design on the hot attestation path.
func BenchmarkE11TranslogAppend(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	b.Run("unbatched", func(b *testing.B) {
		l, err := translog.NewLog(signer)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append(benchLogEntry(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched-256", func(b *testing.B) {
		l, err := translog.NewLog(signer)
		if err != nil {
			b.Fatal(err)
		}
		a := translog.NewAppender(l, translog.AppenderConfig{MaxBatch: 256})
		defer a.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Append(benchLogEntry(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := a.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := l.Size(); got != uint64(b.N) {
			b.Fatalf("committed %d of %d entries", got, b.N)
		}
	})
}

// BenchmarkE13TranslogDurableAppend measures what durability costs the
// hot audit path: the batched appender over the statedir-backed WAL
// (every committed batch = record writes + one segment fsync + one
// atomic tree-head replacement) against the same appender on the
// in-memory log. Batching amortises the fsync exactly like it amortises
// the tree-head signature, so the per-entry cost must stay within 5x of
// the in-memory appender.
func BenchmarkE13TranslogDurableAppend(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	run := func(b *testing.B, l *translog.Log) {
		a := translog.NewAppender(l, translog.AppenderConfig{MaxBatch: 256})
		defer a.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Append(benchLogEntry(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := a.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := l.Size(); got != uint64(b.N) {
			b.Fatalf("committed %d of %d entries", got, b.N)
		}
	}
	b.Run("in-memory-batched-256", func(b *testing.B) {
		l, err := translog.NewLog(signer)
		if err != nil {
			b.Fatal(err)
		}
		run(b, l)
	})
	b.Run("durable-batched-256", func(b *testing.B) {
		l, err := translog.OpenDurableLog(signer, b.TempDir(), translog.StoreConfig{})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		run(b, l)
	})
}

// BenchmarkE13TranslogRecovery measures the restart path: reopening (replay
// + torn-tail scan + tree rebuild + root-vs-head verification) a durable
// log of the given size.
func BenchmarkE13TranslogRecovery(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	for _, population := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("entries-%d", population), func(b *testing.B) {
			dir := b.TempDir()
			l, err := translog.OpenDurableLog(signer, dir, translog.StoreConfig{})
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]translog.Entry, population)
			for i := range batch {
				batch[i] = benchLogEntry(i)
			}
			if _, err := l.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := translog.OpenDurableLog(signer, dir, translog.StoreConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if re.Size() != uint64(population) {
					b.Fatal("short recovery")
				}
				if err := re.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE18CheckpointedRecovery measures what the anchor-verified
// checkpoint buys the restart path: reopening a durable log that
// checkpointed near its head (replay = the short WAL suffix past the
// checkpoint, tree seeded from the frozen subtree hashes) against
// reopening the same population with no checkpoint (replay = every
// record ever written). The checkpointed open must stay flat as the
// population grows while the full replay grows linearly.
func BenchmarkE18CheckpointedRecovery(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	const suffix = 256
	build := func(b *testing.B, population int, checkpointed bool) string {
		dir := b.TempDir()
		l, err := translog.OpenDurableLog(signer, dir, translog.StoreConfig{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		batch := make([]translog.Entry, population-suffix)
		for i := range batch {
			batch[i] = benchLogEntry(i)
		}
		if _, err := l.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
		if checkpointed {
			if err := l.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		tail := make([]translog.Entry, suffix)
		for i := range tail {
			tail[i] = benchLogEntry(population - suffix + i)
		}
		if _, err := l.AppendBatch(tail); err != nil {
			b.Fatal(err)
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, population := range []int{1 << 10, 1 << 14} {
		for _, mode := range []string{"full-replay", "checkpointed"} {
			b.Run(fmt.Sprintf("%s-entries-%d", mode, population), func(b *testing.B) {
				dir := build(b, population, mode == "checkpointed")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					re, err := translog.OpenDurableLog(signer, dir, translog.StoreConfig{NoSync: true})
					if err != nil {
						b.Fatal(err)
					}
					if re.Size() != uint64(population) {
						b.Fatal("short recovery")
					}
					if err := re.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE12InclusionVerify measures the relying-party read path: an
// inclusion-proof generation plus full cryptographic verification
// (tree-head signature + audit path) per credential check, against a log
// pre-populated with 4096 entries — the controller's per-handshake cost
// in log-gated trusted mode.
func BenchmarkE12InclusionVerify(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	pub := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)
	l, err := translog.NewLog(signer)
	if err != nil {
		b.Fatal(err)
	}
	const population = 4096
	batch := make([]translog.Entry, population)
	for i := range batch {
		e := benchLogEntry(i)
		e.Type = translog.EntryEnroll
		batch[i] = e
	}
	if _, err := l.AppendBatch(batch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb, err := l.ProveSerial(fmt.Sprintf("%d", i%population))
		if err != nil {
			b.Fatal(err)
		}
		if err := pb.Verify(pub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE19TileProofServing compares the two ways an auditor gets an
// inclusion proof out of the log server: the per-request proof endpoint
// (one HTTP round trip per proof, the server walks its tree every
// time), and client-side assembly from content-addressed tiles — cold
// (a too-small LRU, every proof re-fetches tiles over HTTP) and warm
// (the working set's tiles cached and pre-expanded, so a proof is a
// handful of in-memory array reads and zero HTTP). Every proof is
// verified against the tree root in all modes, so the comparison is
// end-to-end useful work. The full 10^6-entry run with the ≥10x verdict
// lives in cmd/benchreport (E19).
func BenchmarkE19TileProofServing(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	l, err := translog.NewLog(signer)
	if err != nil {
		b.Fatal(err)
	}
	const population = 1 << 16
	batch := make([]translog.Entry, population)
	for i := range batch {
		batch[i] = benchLogEntry(i)
	}
	if _, err := l.AppendBatch(batch); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, translog.Handler(l))
	url := "http://" + ln.Addr().String()
	sth := l.STH()

	// The auditors' working set: 512 indices spread across the whole
	// tree (a fixed period, so the warm run can cover it up front).
	prove := func(b *testing.B, i int, proofs func(index, size uint64) ([]translog.Hash, error)) {
		b.Helper()
		index := uint64((i%512)*7919) % population
		proof, err := proofs(index, population)
		if err != nil {
			b.Fatal(err)
		}
		leaf := translog.LeafHash(batch[index].Marshal())
		if err := translog.VerifyInclusion(leaf, index, population, proof, sth.RootHash); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("endpoint", func(b *testing.B) {
		c := translog.NewClient(url, nil)
		for i := 0; i < b.N; i++ {
			prove(b, i, c.InclusionProof)
		}
	})
	b.Run("tile-cold", func(b *testing.B) {
		asm := translog.NewTileAssembler(translog.NewClient(url, nil), 2)
		for i := 0; i < b.N; i++ {
			prove(b, i, asm.InclusionProof)
		}
	})
	b.Run("tile-warm", func(b *testing.B) {
		asm := translog.NewTileAssembler(translog.NewClient(url, nil), 1024)
		for i := 0; i < 512; i++ { // pull the whole working set in
			prove(b, i, asm.InclusionProof)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prove(b, i, asm.InclusionProof)
		}
	})
}

// BenchmarkE14GossipExchange measures the witness gossip protocol: the
// per-head signature verification that bounds how a witness scales with
// peers, and a full exchange round — served-head poll plus a head swap
// (HTTP POST, merge, response verify) with each peer — at growing peer
// counts. All witnesses share one honest log, so every round is the
// steady-state no-conflict path.
func BenchmarkE14GossipExchange(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	pub := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)
	l, err := translog.NewLog(signer)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]translog.Entry, 1024)
	for i := range batch {
		batch[i] = benchLogEntry(i)
	}
	if _, err := l.AppendBatch(batch); err != nil {
		b.Fatal(err)
	}
	logLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer logLn.Close()
	go http.Serve(logLn, translog.Handler(l))
	logURL := "http://" + logLn.Addr().String()

	b.Run("head-verify", func(b *testing.B) {
		sth := l.STH()
		for i := 0; i < b.N; i++ {
			if err := sth.Verify(pub); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, peers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("exchange-%dpeers", peers), func(b *testing.B) {
			pool := translog.NewGossipPool("bench", translog.NewWitness(pub), translog.NewClient(logURL, pub))
			for i := 0; i < peers; i++ {
				peer := translog.NewGossipPool(fmt.Sprintf("peer-%d", i),
					translog.NewWitness(pub), translog.NewClient(logURL, pub))
				if err := peer.Exchange(); err != nil {
					b.Fatal(err)
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer ln.Close()
				go http.Serve(ln, translog.GossipHandler(peer))
				pool.AddPeer(translog.NewClient("http://"+ln.Addr().String(), pub))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.Exchange(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if pool.Conflict() != nil {
				b.Fatalf("honest gossip convicted: %v", pool.Conflict())
			}
		})
	}
}

// e15Platform builds the SGX platform the sealed-head anchor runs on
// for the E15 benchmarks, under the E-series cost model (so the modeled
// counter-bump and seal charges shape the result).
func e15Platform(b *testing.B) *sgx.Platform {
	b.Helper()
	issuer, err := epid.NewIssuer(0xE15)
	if err != nil {
		b.Fatal(err)
	}
	p, err := sgx.NewPlatform("bench-machine", issuer, benchModel())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// e15Anchor launches a sealed-head anchor for a store directory.
func e15Anchor(b *testing.B, p *sgx.Platform, vendor *ecdsa.PrivateKey, dir string, pub *ecdsa.PublicKey) *translog.SealedHeadAnchor {
	b.Helper()
	a, err := translog.NewSealedHeadAnchor(p, vendor, filepath.Join(dir, translog.SealedHeadFileName), pub)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkE15SealedCommit measures what the enclave-sealed monotonic
// head costs the hot audit path: the batched appender over the durable
// WAL with the sealed anchor in the commit chain (per committed batch:
// one ECall + counter read + seal, one atomic blob replacement, one
// counter bump) against the same appender on the plain durable log.
// Budget: the sealed per-entry cost must stay within 2x of the plain
// durable append — the anchor work is per batch, so batching amortises
// it exactly like the fsync and the head signature.
func BenchmarkE15SealedCommit(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	pub := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)
	vendor, err := pki.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, l *translog.Log) {
		a := translog.NewAppender(l, translog.AppenderConfig{MaxBatch: 256})
		defer a.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Append(benchLogEntry(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := a.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := l.Size(); got != uint64(b.N) {
			b.Fatalf("committed %d of %d entries", got, b.N)
		}
	}
	b.Run("durable-batched-256", func(b *testing.B) {
		l, err := translog.OpenDurableLog(signer, b.TempDir(), translog.StoreConfig{})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		run(b, l)
	})
	b.Run("sealed-batched-256", func(b *testing.B) {
		// A fresh platform per invocation: each b.N re-run gets a fresh
		// "machine" whose counter starts in step with the fresh store.
		platform := e15Platform(b)
		dir := b.TempDir()
		l, err := translog.OpenDurableLog(signer, dir, translog.StoreConfig{
			Anchors: []translog.TrustAnchor{e15Anchor(b, platform, vendor, dir, pub)},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		run(b, l)
	})
}

// BenchmarkE15SealedRecovery measures the restart path with the sealed
// anchor: replay + plain head verification plus one unseal, one counter
// read and the size/root comparison against the sealed head.
func BenchmarkE15SealedRecovery(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	pub := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)
	vendor, err := pki.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	for _, population := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("entries-%d", population), func(b *testing.B) {
			platform := e15Platform(b)
			dir := b.TempDir()
			l, err := translog.OpenDurableLog(signer, dir, translog.StoreConfig{
				Anchors: []translog.TrustAnchor{e15Anchor(b, platform, vendor, dir, pub)},
			})
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]translog.Entry, population)
			for i := range batch {
				batch[i] = benchLogEntry(i)
			}
			if _, err := l.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := translog.OpenDurableLog(signer, dir, translog.StoreConfig{
					Anchors: []translog.TrustAnchor{e15Anchor(b, platform, vendor, dir, pub)},
				})
				if err != nil {
					b.Fatal(err)
				}
				if re.Size() != uint64(population) {
					b.Fatal("short recovery")
				}
				if err := re.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE16ShardedAppend measures the per-host sharded appender
// against the single batched appender as the producing host count grows
// (1/4/16 hosts hammering concurrently, durable WAL underneath in both
// cases). The single appender funnels every host through one mutex and
// one ≤256-entry commit pipeline — per batch: one serial hash pass, one
// tree-head signature, one fsync, one anchor bump. The sharded appender
// buffers per host, prepares its merged cycles on every core, commits
// up to hosts×256 entries under ONE signature/head/anchor bump, and
// fans the records out to per-host WAL streams whose fsyncs overlap.
// Targets: ≥3x aggregate throughput at 16 hosts vs the single appender,
// and a per-entry durable cost within 1.5x of E13's single-producer
// durable appender.
func BenchmarkE16ShardedAppend(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	// Interned label tables: the benchmark measures the log, not the
	// per-entry fmt.Sprintf a naive harness would pay.
	var actors, hostNames [64]string
	for i := range actors {
		actors[i] = fmt.Sprintf("fw-%d", i)
		hostNames[i] = fmt.Sprintf("host-%d", i)
	}
	run := func(b *testing.B, l *translog.Log, ap translog.EntryAppender, hosts int) {
		var wg sync.WaitGroup
		b.ResetTimer()
		for h := 0; h < hosts; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				host := hostNames[h]
				for i := h; i < b.N; i += hosts {
					e := translog.Entry{
						Type: translog.EntryAttestOK, Timestamp: int64(1700000000000 + i),
						Actor: actors[i%64], Host: host, Detail: "OK",
					}
					if err := ap.Append(e); err != nil {
						b.Error(err)
						return
					}
				}
			}(h)
		}
		wg.Wait()
		if err := ap.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := l.Size(); got != uint64(b.N) {
			b.Fatalf("committed %d of %d entries", got, b.N)
		}
		if err := ap.Close(); err != nil {
			b.Fatal(err)
		}
	}
	for _, hosts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("hosts-%d/single-appender", hosts), func(b *testing.B) {
			l, err := translog.OpenDurableLog(signer, b.TempDir(), translog.StoreConfig{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			run(b, l, translog.NewAppender(l, translog.AppenderConfig{}), hosts)
		})
		b.Run(fmt.Sprintf("hosts-%d/sharded-16", hosts), func(b *testing.B) {
			l, err := translog.OpenDurableLog(signer, b.TempDir(), translog.StoreConfig{Shards: 16})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			run(b, l, translog.NewShardedAppender(l, translog.ShardedAppenderConfig{}), hosts)
		})
	}
}

// BenchmarkE17TelemetryOverhead measures what the PR-6 instrumentation
// costs the hottest path in the repo: the 16-host sharded append run
// from E16, once with the telemetry registry live (every counter,
// gauge and phase histogram recording) and once with it disabled (each
// instrument op short-circuits on one atomic load). The acceptance bar
// is instrumented throughput within 5% of uninstrumented. With
// BENCH_JSON_DIR set, the comparison lands in BENCH_E17.json.
func BenchmarkE17TelemetryOverhead(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	signer := d.VM.CA().Signer()
	var actors, hostNames [64]string
	for i := range actors {
		actors[i] = fmt.Sprintf("fw-%d", i)
		hostNames[i] = fmt.Sprintf("host-%d", i)
	}
	const hosts = 16
	run := func(b *testing.B, enabled bool) (ops int64, elapsed time.Duration) {
		obs.Default().SetEnabled(enabled)
		defer obs.Default().SetEnabled(true)
		l, err := translog.OpenDurableLog(signer, b.TempDir(), translog.StoreConfig{Shards: 16})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		ap := translog.NewShardedAppender(l, translog.ShardedAppenderConfig{})
		var wg sync.WaitGroup
		b.ResetTimer()
		start := time.Now()
		for h := 0; h < hosts; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				host := hostNames[h]
				for i := h; i < b.N; i += hosts {
					e := translog.Entry{
						Type: translog.EntryAttestOK, Timestamp: int64(1700000000000 + i),
						Actor: actors[i%64], Host: host, Detail: "OK",
					}
					if err := ap.Append(e); err != nil {
						b.Error(err)
						return
					}
				}
			}(h)
		}
		wg.Wait()
		if err := ap.Flush(); err != nil {
			b.Fatal(err)
		}
		elapsed = time.Since(start)
		b.StopTimer()
		if got := l.Size(); got != uint64(b.N) {
			b.Fatalf("committed %d of %d entries", got, b.N)
		}
		if err := ap.Close(); err != nil {
			b.Fatal(err)
		}
		return int64(b.N), elapsed
	}
	var res [2]struct {
		ops     int64
		elapsed time.Duration
	}
	b.Run("uninstrumented", func(b *testing.B) { res[0].ops, res[0].elapsed = run(b, false) })
	b.Run("instrumented", func(b *testing.B) { res[1].ops, res[1].elapsed = run(b, true) })
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" && res[0].ops > 0 && res[1].ops > 0 {
		off := float64(res[0].elapsed.Nanoseconds()) / float64(res[0].ops)
		on := float64(res[1].elapsed.Nanoseconds()) / float64(res[1].ops)
		art := metrics.BenchArtifact{
			Name:        "E17",
			Description: "telemetry overhead on the 16-host sharded append path",
			Ops:         res[1].ops,
			NsPerOp:     on,
			Table: &metrics.TableData{
				Title:   "E17: telemetry overhead (sharded append, 16 hosts)",
				Headers: []string{"variant", "ns/op"},
				Rows: [][]string{
					{"uninstrumented", fmt.Sprintf("%.0f", off)},
					{"instrumented", fmt.Sprintf("%.0f", on)},
					{"overhead", fmt.Sprintf("%.2f%%", (on-off)/off*100)},
				},
			},
			UnixTime: time.Now().Unix(),
		}
		if err := metrics.WriteBenchJSON(dir, art); err != nil {
			b.Error(err)
		}
	}
}

// BenchmarkE10_SGXPrimitives isolates the substrate's modeled costs (the
// cost-model ablation: each primitive under the default model).
func BenchmarkE10_SGXPrimitives(b *testing.B) {
	d := newBenchDeployment(b, core.Options{})
	ce, err := d.Hosts[0].CredentialEnclave("fw-0")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		b.Fatal(err)
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-0"); err != nil {
		b.Fatal(err)
	}
	b.Run("ecall-sign", func(b *testing.B) {
		signer, err := ce.Signer()
		if err != nil {
			b.Fatal(err)
		}
		digest := make([]byte, 32)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := signer.Sign(nil, digest, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ecall-hmac", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ce.HMAC([]byte("heartbeat")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-evidence-quote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Hosts[0].Attest([]byte("bench-nonce"), false); err != nil {
				b.Fatal(err)
			}
		}
	})
	if d.Hosts[0].HasTPM() {
		b.Run("tpm-quote", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Hosts[0].TPM().Quote([]byte("n"), []int{10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE20PartitionedWitnessAudit measures the economics the
// partitioned audit plane exists for: the cost of one witness's full
// audit pass (head adoption plus per-shard stream verification of its
// assigned slice) as the fleet grows 16 -> 64 -> 256 hosts. The witness
// set scales with the fleet while the quorum stays fixed, so each
// witness's assigned slice — and therefore its per-pass cost — should
// stay flat, while a full-fleet witness (every shard assigned, the
// pre-partition deployment model) grows linearly. The scaling verdict
// with the <=1.5x flatness bound lives in cmd/benchreport (E20).
func BenchmarkE20PartitionedWitnessAudit(b *testing.B) {
	const perHost = 16
	const quorum = 3
	ca, err := pki.NewCA("bench CA", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	pub, ok := ca.Signer().Public().(*ecdsa.PublicKey)
	if !ok {
		b.Fatal("CA signer is not ECDSA")
	}
	for _, hosts := range []int{16, 64, 256} {
		shards := hosts
		names := make([]string, hosts/2)
		for i := range names {
			names[i] = fmt.Sprintf("w%03d", i)
		}
		part, err := translog.NewWitnessPartition(shards, names, quorum)
		if err != nil {
			b.Fatal(err)
		}
		l, err := translog.NewLog(ca.Signer())
		if err != nil {
			b.Fatal(err)
		}
		if err := l.EnableShardStreams(shards); err != nil {
			b.Fatal(err)
		}
		batch := make([]translog.Entry, 0, hosts*perHost)
		for h := 0; h < hosts; h++ {
			for i := 0; i < perHost; i++ {
				batch = append(batch, translog.Entry{
					Type: translog.EntryAttestOK, Timestamp: int64(len(batch)),
					Actor: fmt.Sprintf("fw-%d", len(batch)),
					Host:  fmt.Sprintf("host-%d", h), Detail: "OK",
				})
			}
		}
		if _, err := l.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
		sth := l.STH()
		fetch := func(a, n uint64) ([]translog.Hash, error) { return l.ConsistencyProof(a, n) }
		audit := func(assigned []int) error {
			w := translog.NewWitness(pub)
			w.SetAssignedShards(shards, assigned)
			if err := w.Advance(sth, fetch); err != nil {
				return err
			}
			return w.AuditShards(sth, l, 0)
		}
		all := make([]int, shards)
		for i := range all {
			all[i] = i
		}
		b.Run(fmt.Sprintf("hosts=%d/per-witness", hosts), func(b *testing.B) {
			assigned := part.AssignedShards(names[0])
			for i := 0; i < b.N; i++ {
				if err := audit(assigned); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("hosts=%d/full-fleet", hosts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := audit(all); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
