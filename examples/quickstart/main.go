// Quickstart: assemble the full deployment of the paper's Figure 1 in one
// process and run the six-step credential workflow for a firewall VNF —
// host attestation, IAS verification, enclave attestation, credential
// provisioning, and an authenticated flow push from inside the enclave.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/netsim"
	"vnfguard/internal/simtime"
	"vnfguard/internal/vnf"
)

func main() {
	fmt.Println("vnfguard quickstart — Safeguarding VNF Credentials with (simulated) Intel SGX")
	fmt.Println()

	// 1. Assemble the deployment: EPID group + IAS, one SGX/IMA container
	//    host, the Verification Manager with its CA, and a Floodlight-like
	//    controller in trusted-HTTPS mode over a one-switch fabric.
	d, err := core.NewDeployment(core.Options{
		Model:   simtime.DefaultCosts(), // realistic SGX/IAS/WAN costs
		Mode:    controller.ModeTrustedHTTPS,
		Trust:   controller.TrustCA,
		TLSMode: enclaveapp.TLSFullSession, // the paper's implementation
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	fmt.Printf("controller listening (trusted HTTPS): %s\n", d.ControllerURL())

	// 2. Deploy the firewall VNF container; its execution is measured by
	//    IMA, and a credential enclave (TEE 1 in Figure 1) is launched.
	if err := d.DeployVNF(0, "fw-1", "firewall"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed container vnf-firewall:1.0 as fw-1 (execution measured by IMA)")

	// 3. Record the known-good measurement baseline.
	if err := d.LearnGolden(); err != nil {
		log.Fatal(err)
	}

	// 4. Run the six-step workflow.
	res, err := d.RunWorkflow(0, []vnf.VNF{core.StandardFirewall("fw-1")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure-1 workflow trace:")
	fmt.Print(res.String())

	// 5. Show the effect on the forwarding plane: the firewall the VNF
	//    pushed over its enclave-authenticated session allows HTTPS to
	//    the service subnet and drops SSH.
	https := netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.1.5"), IPDst: netip.MustParseAddr("10.0.0.10"),
		Proto: netsim.ProtoTCP, DstPort: 443, Payload: []byte("GET /"),
	}
	del, err := d.Network.Inject("00:00:01", 1, https)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npacket %v: delivered=%v host=%s\n", https, del.Delivered, del.Host)
	ssh := https
	ssh.DstPort = 22
	del, err = d.Network.Inject("00:00:01", 1, ssh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packet %v: dropped=%v\n", ssh, del.Dropped)

	for _, e := range d.VM.Enrollments() {
		fmt.Printf("\nenrolled: %s on %s, certificate serial %s (CN=%s), enclave %s...\n",
			e.VNF, e.Host, e.Serial, e.CommonName, e.EnclaveMeasurement.String()[:16])
	}
	fmt.Println("\nquickstart complete: credentials never left the enclave.")
}
