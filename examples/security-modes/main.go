// Security modes: reproduces the paper's §3 discussion of Floodlight's
// three REST security modes and the keystore-vs-CA trust problem. For
// each mode it shows who can reach the controller, then demonstrates why
// the paper provisions a CA instead of per-certificate keystore entries.
//
//	go run ./examples/security-modes
package main

import (
	"fmt"
	"log"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/simtime"
)

func outcome(err error) string {
	if err != nil {
		return "REJECTED"
	}
	return "accepted"
}

func main() {
	fmt.Println("Floodlight's three security modes (paper §3)")
	modes := []struct {
		mode  controller.SecurityMode
		trust controller.TrustModel
		label string
	}{
		{controller.ModeHTTP, controller.TrustCA, "non-secure (plain HTTP)"},
		{controller.ModeHTTPS, controller.TrustCA, "HTTPS (server auth only)"},
		{controller.ModeTrustedHTTPS, controller.TrustCA, "trusted HTTPS (client auth, CA trust)"},
		{controller.ModeTrustedHTTPS, controller.TrustKeystore, "trusted HTTPS (client auth, keystore)"},
	}
	for _, m := range modes {
		fmt.Printf("\n== %s ==\n", m.label)
		d, err := core.NewDeployment(core.Options{
			Mode: m.mode, Trust: m.trust, Model: simtime.ZeroCosts(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := d.DeployVNF(0, "fw-1", "firewall"); err != nil {
			log.Fatal(err)
		}
		if err := d.LearnGolden(); err != nil {
			log.Fatal(err)
		}
		if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
			log.Fatal(err)
		}
		enr, err := d.VM.EnrollVNF(d.HostName(0), "fw-1")
		if err != nil {
			log.Fatal(err)
		}
		ce, err := d.Hosts[0].CredentialEnclave("fw-1")
		if err != nil {
			log.Fatal(err)
		}

		// Anonymous client (no certificate).
		anon := controller.NewClient(d.ControllerURL(), nil)
		_, anonErr := anon.Health()
		fmt.Printf("  anonymous client:            %s\n", outcome(anonErr))

		// Enrolled VNF with enclave credentials.
		var vnfErr error
		if m.mode == controller.ModeHTTP {
			_, vnfErr = anon.Health()
		} else {
			cfg, err := ce.ClientTLSConfig(core.ServerName)
			if err != nil {
				log.Fatal(err)
			}
			_, vnfErr = controller.NewClient(d.ControllerURL(), cfg).Health()
		}
		fmt.Printf("  enrolled VNF (CA-signed):    %s\n", outcome(vnfErr))

		if m.trust == controller.TrustKeystore && m.mode == controller.ModeTrustedHTTPS {
			// The paper's point: a CA-signed certificate is NOT enough in
			// keystore mode — the operator must pin every new certificate.
			fmt.Println("  -> keystore mode rejected the valid CA-signed certificate;")
			d.Server.PinCertificate(enr.Cert)
			cfg, err := ce.ClientTLSConfig(core.ServerName)
			if err != nil {
				log.Fatal(err)
			}
			_, afterPin := controller.NewClient(d.ControllerURL(), cfg).Health()
			fmt.Printf("  after manual keystore update: %s\n", outcome(afterPin))
			fmt.Println("  -> the paper's fix: provision one CA, validate signatures (O(1) trust updates).")
		}
		_ = enclaveapp.TLSKeyInEnclave
		d.Close()
	}
}
