// Inline VNF chain: enrolls a service chain — monitor (IDS tap), firewall
// and load balancer — on one attested host. All three program the network
// through their own enclave-held credentials; packet traces show the
// combined policy in effect.
//
//	go run ./examples/inline-vnf-chain
package main

import (
	"fmt"
	"log"
	"net/netip"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/netsim"
	"vnfguard/internal/simtime"
	"vnfguard/internal/vnf"
)

func main() {
	fmt.Println("inline VNF chain: monitor + firewall + load balancer, all enclave-credentialed")
	d, err := core.NewDeployment(core.Options{
		Model: simtime.DefaultCosts(), // realistic SGX/IAS/WAN costs
		Mode:  controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		TLSMode: enclaveapp.TLSFullSession,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Two backend ports for the load balancer.
	if err := d.Network.AttachHost("backend-a", "00:00:01", 3); err != nil {
		log.Fatal(err)
	}
	if err := d.Network.AttachHost("backend-b", "00:00:01", 4); err != nil {
		log.Fatal(err)
	}

	chain := []vnf.VNF{
		&vnf.Monitor{InstanceName: "ids-1", WatchPorts: []uint16{23}},
		&vnf.Firewall{InstanceName: "fw-1", Rules: []vnf.FWRule{
			{Allow: true, Proto: "tcp", DstPort: 80, Dst: netip.MustParsePrefix("10.0.0.0/24")},
			{Allow: true, Proto: "tcp", DstPort: 443, Dst: netip.MustParsePrefix("10.0.0.0/24")},
		}},
		&vnf.LoadBalancer{InstanceName: "lb-1",
			VIP: netip.MustParsePrefix("10.0.0.100/32"), Service: 80,
			Backends: []vnf.Backend{
				{Clients: netip.MustParsePrefix("192.168.0.0/17"), Port: 3},
				{Clients: netip.MustParsePrefix("192.168.128.0/17"), Port: 4},
			},
		},
	}
	kinds := map[string]string{"ids-1": "monitor", "fw-1": "firewall", "lb-1": "loadbalancer"}
	for name, kind := range kinds {
		if err := d.DeployVNF(0, name, kind); err != nil {
			log.Fatal(err)
		}
	}
	if err := d.LearnGolden(); err != nil {
		log.Fatal(err)
	}

	res, err := d.RunWorkflow(0, chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworkflow trace (3 VNFs enrolled):")
	fmt.Print(res.String())

	inject := func(label string, pkt netsim.Packet) {
		del, err := d.Network.Inject("00:00:01", 1, pkt)
		if err != nil {
			log.Fatal(err)
		}
		status := "dropped"
		if del.Delivered {
			status = "delivered to " + del.Host
		}
		if del.PuntedToController {
			status += " (+punted to controller)"
		}
		fmt.Printf("  %-34s %s\n", label, status)
		for _, hop := range del.Path {
			fmt.Printf("      %s in:%d -> %s\n", hop.DPID, hop.InPort, hop.Action)
		}
	}
	fmt.Println("\npacket traces:")
	inject("HTTP to VIP from 192.168.1.9", netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.1.9"), IPDst: netip.MustParseAddr("10.0.0.100"),
		Proto: netsim.ProtoTCP, DstPort: 80, Payload: []byte("GET /"),
	})
	inject("HTTP to VIP from 192.168.200.9", netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.200.9"), IPDst: netip.MustParseAddr("10.0.0.100"),
		Proto: netsim.ProtoTCP, DstPort: 80, Payload: []byte("GET /"),
	})
	inject("HTTPS direct to 10.0.0.10", netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.1.9"), IPDst: netip.MustParseAddr("10.0.0.10"),
		Proto: netsim.ProtoTCP, DstPort: 443, Payload: []byte("hello"),
	})
	inject("telnet probe (watched by IDS)", netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.1.9"), IPDst: netip.MustParseAddr("10.0.0.10"),
		Proto: netsim.ProtoTCP, DstPort: 23, Payload: []byte("root"),
	})
	inject("SSH (no allow rule)", netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.1.9"), IPDst: netip.MustParseAddr("10.0.0.10"),
		Proto: netsim.ProtoTCP, DstPort: 22, Payload: []byte("ssh"),
	})

	fmt.Printf("\ncontroller packet-ins (IDS punts): %d\n", d.Ctrl.PacketIns())
	fmt.Printf("static flows installed: %d\n", d.Ctrl.Summary().StaticFlows)
}
