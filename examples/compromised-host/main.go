// Compromised host: walks the threat scenarios the paper's architecture
// defends against, showing each one failing closed — plus the §4 gap
// (software-IML rewrite) and its TPM-rooted fix.
//
//	go run ./examples/compromised-host
package main

import (
	"fmt"
	"log"

	"vnfguard/internal/core"
	"vnfguard/internal/ima"
)

func scenario(title string) { fmt.Printf("\n== %s ==\n", title) }

func main() {
	fmt.Println("compromised-host scenarios: every attack fails closed")

	// --- Scenario 1: VNF binary tampered after the golden run. ---
	scenario("1. tampered VNF binary")
	d, err := core.NewDeployment(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.DeployVNF(0, "fw-1", "firewall"); err != nil {
		log.Fatal(err)
	}
	if err := d.LearnGolden(); err != nil {
		log.Fatal(err)
	}
	d.Hosts[0].TamperBinary("fw-1", "/usr/bin/firewall", []byte("firewall with backdoor"))
	app, err := d.VM.AttestHost(d.HostName(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appraisal trusted=%v\n", app.Trusted)
	for _, f := range app.Findings {
		fmt.Printf("  finding: %s\n", f)
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-1"); err != nil {
		fmt.Printf("enrollment refused: %v\n", err)
	}
	d.Close()

	// --- Scenario 2: platform EPID key leaked and revoked. ---
	scenario("2. revoked platform (leaked EPID key)")
	d2, err := core.NewDeployment(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := d2.DeployVNF(0, "fw-1", "firewall"); err != nil {
		log.Fatal(err)
	}
	if err := d2.LearnGolden(); err != nil {
		log.Fatal(err)
	}
	d2.IAS.RevokePlatformKey(d2.Hosts[0].Platform().EPIDMember().PseudonymSecret())
	app2, err := d2.VM.AttestHost(d2.HostName(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appraisal trusted=%v quote status=%s\n", app2.Trusted, app2.QuoteStatus)
	d2.Close()

	// --- Scenario 3: software-IML rewrite — the §4 gap. ---
	scenario("3. root rewrites the IML (software-only attestation)")
	d3, err := core.NewDeployment(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := d3.DeployVNF(0, "fw-1", "firewall"); err != nil {
		log.Fatal(err)
	}
	if err := d3.LearnGolden(); err != nil {
		log.Fatal(err)
	}
	pre, _ := d3.Hosts[0].IMA().Snapshot()
	d3.Hosts[0].TamperBinary("fw-1", "/usr/bin/firewall", []byte("malware"))
	forged, err := ima.ParseList(pre) // adversary restores the pre-malware log
	if err != nil {
		log.Fatal(err)
	}
	d3.Hosts[0].IMA().TamperList(forged)
	app3, err := d3.VM.AttestHost(d3.HostName(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appraisal trusted=%v  <-- the paper's §4 limitation: undetected\n", app3.Trusted)
	d3.Close()

	// --- Scenario 4: the same rewrite under TPM-rooted IMA. ---
	scenario("4. the same rewrite with a TPM root of trust (§4 future work)")
	d4, err := core.NewDeployment(core.Options{EnableTPM: true, RequireTPM: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := d4.DeployVNF(0, "fw-1", "firewall"); err != nil {
		log.Fatal(err)
	}
	if err := d4.LearnGolden(); err != nil {
		log.Fatal(err)
	}
	pre4, _ := d4.Hosts[0].IMA().Snapshot()
	d4.Hosts[0].TamperBinary("fw-1", "/usr/bin/firewall", []byte("malware"))
	forged4, err := ima.ParseList(pre4)
	if err != nil {
		log.Fatal(err)
	}
	d4.Hosts[0].IMA().TamperList(forged4)
	app4, err := d4.VM.AttestHost(d4.HostName(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appraisal trusted=%v\n", app4.Trusted)
	for _, f := range app4.Findings {
		fmt.Printf("  finding: %s\n", f)
	}
	d4.Close()

	fmt.Println("\nconclusion: attestation blocks tampered software and revoked platforms;")
	fmt.Println("the TPM extension closes the log-rewrite gap the paper leaves as future work.")
}
