// Attested enrollment over real sockets: the IAS and the container host's
// agent run as HTTP services (as they would in a deployment), and the
// Verification Manager drives both paper use cases remotely — UC1
// (integrity attestation of a VNF) and UC2 (enrollment with credential
// provisioning).
//
//	go run ./examples/attested-enrollment
package main

import (
	"fmt"
	"log"
	"strings"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/vnf"
)

func main() {
	fmt.Println("attested enrollment over HTTP transports (IAS + host agent as services)")
	d, err := core.NewDeployment(core.Options{
		Mode:           controller.ModeTrustedHTTPS,
		Trust:          controller.TrustCA,
		TLSMode:        enclaveapp.TLSKeyInEnclave,
		Provision:      enclaveapp.ModeCSR, // hardening mode: key born in enclave
		HTTPTransports: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	if err := d.DeployVNF(0, "ids-1", "monitor"); err != nil {
		log.Fatal(err)
	}
	if err := d.LearnGolden(); err != nil {
		log.Fatal(err)
	}

	// Steps 1–2: attest the host (quote travels VM → agent → VM, then VM
	// → IAS over HTTP).
	app, err := d.VM.AttestHost(d.HostName(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[UC1 prerequisite] host %s appraisal: trusted=%v quote=%s IML entries=%d\n",
		app.Host, app.Trusted, app.QuoteStatus, app.IMLEntries)

	// UC1: integrity attestation of the VNF credential enclave.
	quote, err := d.VM.AttestVNF(d.HostName(0), "ids-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[UC1] VNF enclave attested: MRENCLAVE=%s... ISVSVN=%d\n",
		quote.Body.MRENCLAVE.String()[:16], quote.Body.ISVSVN)

	// UC2: enrollment — attestation + CSR + CA signature + provisioning.
	enr, err := d.VM.EnrollVNF(d.HostName(0), "ids-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[UC2] enrolled %s: certificate serial %s signed by %q\n",
		enr.VNF, enr.Serial, strings.TrimSpace(enr.Cert.Issuer.CommonName))

	// The enrolled monitor programs the network through its enclave
	// credentials.
	ce, err := d.Hosts[0].CredentialEnclave("ids-1")
	if err != nil {
		log.Fatal(err)
	}
	ids := &vnf.Monitor{InstanceName: "ids-1", WatchPorts: []uint16{23, 2323}}
	inst, err := vnf.NewInstance(ids, ce, d.ControllerURL(), core.ServerName, core.DefaultEnv(), enclaveapp.TLSKeyInEnclave)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.Activate(); err != nil {
		log.Fatal(err)
	}
	flows := d.Ctrl.FlowsOn("00:00:01")
	fmt.Printf("[UC2] %d monitor flows pushed, authenticated as %q\n", len(flows), flows[0].PushedBy)

	// The VNF heartbeats with the VM-provisioned HMAC key.
	mac, err := ce.HMAC([]byte("ids-1 alive"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[UC2] heartbeat MAC verifies at VM: %v\n",
		d.VM.VerifyVNFMAC("ids-1", []byte("ids-1 alive"), mac))
	fmt.Printf("\nIAS served %d verification reports over HTTP\n", d.IAS.Reports())
}
