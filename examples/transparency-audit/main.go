// Transparency audit: the Verification Manager is the deployment's trust
// oracle — this walkthrough shows how the attestation transparency log
// removes the need to take its word. It enrolls VNFs, then audits every
// decision from the outside: signed tree heads, inclusion proofs for
// credentials, consistency proofs across log growth, rejection of a
// CA-signed-but-unlogged certificate, mid-session revocation, a witness
// catching a split-view (forked-history) log, a VM kill-and-restart: the
// log is durable, so proofs issued before the restart still verify
// against post-restart tree heads — while a rolled-back statedir refuses
// to open at all. Then the attack local durability cannot see: a
// *consistent* rollback (WAL segments and persisted signed head
// rewound together) that reopens cleanly, goes unnoticed by a lone
// amnesiac witness, and is convicted by a gossiping witness set holding
// the two irreconcilable signed heads as evidence. The finale upgrades
// the attacker once more — rewinding the witness state too, total
// amnesia — and the enclave-sealed monotonic tree head still convicts,
// because its counter lives in platform hardware, not on any disk. The
// closing acts flip the dependency around: an auditor caches the log's
// content-addressed Merkle tiles while the server is up, the server is
// stopped outright, and fresh inclusion proofs still assemble and
// verify offline from the cache alone — and a fleet-scale audit plane
// partitions eight witnesses over eight shard streams so each verifies
// only its slice, quorum co-signs the head, and still convicts a
// single-shard rewind from a shard cursor alone.
//
//	go run ./examples/transparency-audit
package main

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/epid"
	"vnfguard/internal/obs"
	"vnfguard/internal/pki"
	"vnfguard/internal/sgx"
	"vnfguard/internal/statedir"
	"vnfguard/internal/translog"
	"vnfguard/internal/vnf"
)

func main() {
	fmt.Println("vnfguard transparency audit — verifiable evidence for every trust decision")
	fmt.Println()

	// The telemetry endpoint every binary in the repo exposes via
	// -metrics-addr: the walkthrough scrapes it mid-act like an operator's
	// Prometheus would, and asserts the series the acts should move.
	metricsLn, err := obs.Default().Serve("127.0.0.1:0")
	check(err)
	defer metricsLn.Close()
	metricsURL := "http://" + metricsLn.Addr().String() + "/metrics"

	// The VM's log is durable: WAL segments plus a persisted signed tree
	// head under this directory, which act 5 reopens after a "crash".
	logDir, err := os.MkdirTemp("", "vnfguard-translog-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)

	d, err := core.NewDeployment(core.Options{
		Mode:    controller.ModeTrustedHTTPS,
		Trust:   controller.TrustCA,
		TLSMode: enclaveapp.TLSKeyInEnclave,
		LogDir:  logDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	tlog := d.VM.TransparencyLog()
	logKey := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)

	// An auditor starts witnessing before anything happens: the genesis
	// tree head commits to the empty log.
	witness := translog.NewWitness(logKey)
	fetch := func(first, second uint64) ([]translog.Hash, error) {
		return tlog.ConsistencyProof(first, second)
	}
	genesis := tlog.STH()
	check(witness.Advance(genesis, fetch))
	fmt.Printf("witness anchored at genesis head (size %d)\n", genesis.Size)

	// Run the paper's workflow for two firewalls. Every attestation
	// verdict, enrollment and provisioning is committed to the log.
	for _, name := range []string{"fw-1", "fw-2"} {
		if err := d.DeployVNF(0, name, "firewall"); err != nil {
			log.Fatal(err)
		}
	}
	check(d.LearnGolden())
	if _, err := d.RunWorkflow(0, []vnf.VNF{core.StandardFirewall("fw-1"), core.StandardFirewall("fw-2")}); err != nil {
		log.Fatal(err)
	}
	check(d.VM.FlushLog())
	sth := tlog.STH()
	check(witness.Advance(sth, fetch))
	fmt.Printf("workflow logged: tree grew %d → %d entries, consistency proven\n", genesis.Size, sth.Size)
	for i, e := range tlog.Entries(0, tlog.Size()) {
		fmt.Printf("  [%d] %-12s actor=%-8s serial=%-4s %s\n", i, e.Type, e.Actor, e.Serial, e.Detail)
	}

	// Mid-act scrape: the workflow's verdicts are committed, so the
	// append and anchor series must already be moving.
	appendedMid := scrapeValue(metricsURL, "translog_appended_entries_total")
	anchorsMid := scrapeValue(metricsURL, `translog_anchor_commit_seconds_count{anchor="statedir-sth"}`)
	if appendedMid <= 0 || anchorsMid <= 0 {
		log.Fatalf("mid-act /metrics scrape: appended=%v anchor commits=%v, want both > 0", appendedMid, anchorsMid)
	}
	fmt.Printf("mid-act /metrics scrape: %.0f entries appended, %.0f statedir-sth anchor commits observed ✓\n\n", appendedMid, anchorsMid)

	// 1. Inclusion proof: anyone holding the CA certificate can verify a
	//    credential was issued by the logged workflow.
	enr, err := d.VM.Enrollment("fw-1")
	check(err)
	pb, err := d.VM.CredentialProof(enr.Serial)
	check(err)
	check(pb.Verify(logKey))
	fmt.Printf("credential %s: inclusion proven at index %d under signed head (size %d, %d-hash path)\n",
		enr.Serial, pb.Index, pb.STH.Size, len(pb.Proof))

	// 2. The controller demands that proof: a certificate minted straight
	//    from the CA key — bypassing attestation, and so the log — is
	//    rejected in trusted mode.
	rogueKey, err := pki.GenerateKey()
	check(err)
	csr, err := pki.CreateCSR("fw-rogue", rogueKey)
	check(err)
	rogueCert, err := d.VM.CA().SignClientCSR(csr, time.Hour)
	check(err)
	rogueCfg := &tls.Config{
		MinVersion: tls.VersionTLS12, RootCAs: d.VM.CA().Pool(), ServerName: core.ServerName,
		Certificates: []tls.Certificate{{Certificate: [][]byte{rogueCert.Raw}, PrivateKey: rogueKey}},
	}
	if _, err := controller.NewClient(d.ControllerURL(), rogueCfg).Summary(); err != nil {
		fmt.Println("rogue CA-signed certificate (never logged): controller rejected it ✓")
	} else {
		log.Fatal("rogue certificate accepted — transparency gate failed")
	}

	// 3. Mid-session revocation: an enrolled VNF with a live keep-alive
	//    session loses access the moment the VM revokes it.
	ce, err := d.Hosts[0].CredentialEnclave("fw-2")
	check(err)
	cfg, err := ce.ClientTLSConfig(core.ServerName)
	check(err)
	client := controller.NewClient(d.ControllerURL(), cfg)
	defer client.CloseIdle()
	if _, err := client.Summary(); err != nil {
		log.Fatal(err)
	}
	check(d.VM.RevokeVNF("fw-2"))
	if _, err := client.Summary(); err != nil {
		fmt.Println("fw-2 revoked: live session cut off on the next request ✓")
	} else {
		log.Fatal("revoked VNF kept its session")
	}
	check(witness.Advance(tlog.STH(), fetch))
	fmt.Printf("revocation logged and head advanced consistently (size %d)\n\n", tlog.STH().Size)

	// 4. Split view: a forked log signed by the same (stolen) CA key
	//    cannot fool a witness that has seen the honest history.
	forked, err := translog.NewLog(d.VM.CA().Signer())
	check(err)
	for i := 0; i < int(tlog.Size())+3; i++ {
		if _, err := forked.Append(translog.Entry{
			Type: translog.EntryEnroll, Timestamp: int64(i), Actor: "ghost", Serial: fmt.Sprint(9000 + i),
		}); err != nil {
			log.Fatal(err)
		}
	}
	forkedFetch := func(first, second uint64) ([]translog.Hash, error) {
		return forked.ConsistencyProof(first, second)
	}
	if err := witness.Advance(forked.STH(), forkedFetch); err != nil {
		fmt.Printf("forked log presented: witness rejected it ✓ (%v)\n", err)
	} else {
		log.Fatal("witness accepted a forked history")
	}
	fmt.Println()

	// 5. Kill and restart: the VM dies, then its durable log is reopened
	//    from the same statedir. Recovery replays the WAL, rebuilds the
	//    tree, and verifies the recomputed root against the persisted
	//    signed head — so a restart is provably a continuation, not the
	//    silent history wipe an in-memory log would suffer (which a
	//    witness could not tell apart from a rollback attack).
	preSTH := tlog.STH()
	check(d.VM.Close()) // the "kill": appender flushed, WAL tail fsynced
	reopened, err := translog.OpenDurableLog(d.VM.CA().Signer(), logDir, translog.StoreConfig{})
	check(err)
	defer reopened.Close()
	fmt.Printf("VM restarted: %d entries recovered, root verified against persisted signed head\n", reopened.Size())

	// The proof issued before the restart verifies untouched, and the
	// recovered log re-proves the same credential at the same index.
	check(pb.Verify(logKey))
	pb2, err := reopened.ProveSerial(enr.Serial)
	check(err)
	check(pb2.Verify(logKey))
	fmt.Printf("credential %s: pre-restart proof still verifies; re-proven at index %d post-restart ✓\n",
		enr.Serial, pb2.Index)

	// The witness that watched the pre-crash log accepts the recovered
	// head and every head after it: the restart is consistency-proven.
	reopenedFetch := func(first, second uint64) ([]translog.Hash, error) {
		return reopened.ConsistencyProof(first, second)
	}
	check(witness.Advance(reopened.STH(), reopenedFetch))
	if _, err := reopened.Append(translog.Entry{
		Type: translog.EntryAttestOK, Timestamp: time.Now().UnixMilli(), Actor: "host-0", Detail: "post-restart appraisal",
	}); err != nil {
		log.Fatal(err)
	}
	check(witness.Advance(reopened.STH(), reopenedFetch))
	fmt.Printf("witness followed the restart: head %d → %d consistency-proven across the crash ✓\n",
		preSTH.Size, reopened.STH().Size)

	// 6. Rollback refusal: restore an "older snapshot" by deleting the
	//    newest WAL segment. The open recomputes the root, sees fewer
	//    entries than the persisted signed head covers, and refuses —
	//    the witness's rollback detection, enforced locally at startup.
	check(reopened.Close())
	segs, err := filepath.Glob(filepath.Join(logDir, "seg-*.wal"))
	check(err)
	sort.Strings(segs)
	check(os.Remove(segs[len(segs)-1]))
	if _, err := translog.OpenDurableLog(d.VM.CA().Signer(), logDir, translog.StoreConfig{}); err != nil {
		fmt.Printf("rolled-back statedir: open refused ✓ (%v)\n", err)
	} else {
		log.Fatal("rolled-back statedir opened cleanly")
	}

	// 7. The attack act 6 cannot catch: rewind segments *and* the signed
	//    head together to an earlier committed state. The statedir is
	//    self-consistent, so the open succeeds — locally nothing is
	//    wrong. Only witnesses that remember (or gossip) the newer
	//    signed head can convict, which is why they persist their heads
	//    and form a gossip network.
	fmt.Println()
	fmt.Println("--- multi-witness gossip: catching a consistent local rollback ---")
	runGossipAct(d.VM.CA().Signer(), logKey)

	// 8. Total amnesia: the attack act 7 cannot catch. Rewind the log's
	//    statedir AND every witness's persisted state together — every
	//    byte of filesystem memory agrees with the rewritten history.
	//    Only a memory off the filesystem survives: the enclave-sealed
	//    monotonic counter in platform NV convicts at open.
	fmt.Println()
	fmt.Println("--- sealed monotonic head: catching a TOTAL-amnesia rollback ---")
	runSealedAct(d.VM.CA().Signer(), logKey)

	// 9. Multi-VM scale: a fleet of hosts appends through the per-host
	//    sharded appender — each host its own buffer and WAL stream, the
	//    merging sequencer committing one tree head per cycle — and
	//    recovery interleaves the streams back into the exact global
	//    history a single-stream log would hold.
	fmt.Println()
	fmt.Println("--- per-host shards: one merged tree head for a fleet of hosts ---")
	runShardedAct(d.VM.CA().Signer(), logKey)

	// 10. Tile-based proof serving: an auditor caches the log's
	//     content-addressed Merkle tiles while the server is up, then the
	//     server goes away entirely — and fresh inclusion proofs still
	//     assemble and verify offline, from the cache alone. Tiles carry
	//     no authority: the proofs they fold into are checked against the
	//     signed head, so caching them costs no trust.
	fmt.Println()
	fmt.Println("--- tile-based proofs: auditing from cache after the server is gone ---")
	runTileAct(d.VM.CA().Signer(), logKey)

	// 11. The audit plane at fleet scale: every act so far had each
	//     witness verify the whole log. Here the witness set is
	//     partitioned — 8 witnesses, 8 shard streams, each witness
	//     auditing 3 — heads only count once a quorum of witnesses
	//     co-signs them, and a rewind of a single host's shard stream is
	//     convicted by an assigned witness's audit cursor alone, while a
	//     witness NOT assigned that shard stays clean (ignorance is not
	//     evidence).
	fmt.Println()
	fmt.Println("--- partitioned witnesses: 8 auditors, 3 shards each, quorum co-signed heads ---")
	runPartitionAct(d.VM.CA().Signer(), logKey)

	// Final scrape: the acts between the scrapes appended more entries,
	// committed more anchors and ran gossip rounds — the series must have
	// increased, exactly what an operator's alerting would watch.
	body := scrape(metricsURL)
	appendedEnd := seriesValue(body, "translog_appended_entries_total")
	anchorsEnd := seriesValue(body, `translog_anchor_commit_seconds_count{anchor="statedir-sth"}`)
	gossipEnd := seriesValue(body, "translog_gossip_exchanges_total")
	cosignEnd := seriesValue(body, "translog_cosign_signatures_total")
	if appendedEnd <= appendedMid || anchorsEnd <= anchorsMid || gossipEnd <= 0 || cosignEnd <= 0 {
		log.Fatalf("final /metrics scrape did not advance: appended %v→%v anchors %v→%v gossip=%v cosign=%v",
			appendedMid, appendedEnd, anchorsMid, anchorsEnd, gossipEnd, cosignEnd)
	}
	fmt.Println()
	fmt.Printf("final /metrics scrape: appended %.0f→%.0f, anchor commits %.0f→%.0f, %.0f gossip exchanges, %.0f co-signatures — all increasing ✓\n",
		appendedMid, appendedEnd, anchorsMid, anchorsEnd, gossipEnd, cosignEnd)
	if path := os.Getenv("METRICS_SNAPSHOT"); path != "" {
		//lint:allow atomicwrite diagnostic snapshot for the operator, regenerated every run; losing it in a crash costs nothing
		check(os.WriteFile(path, []byte(body), 0o644))
		fmt.Printf("metrics snapshot written to %s\n", path)
	}

	fmt.Println()
	fmt.Println("audit complete: every verdict provable, nothing taken on faith — not even across restarts")
}

// scrape fetches the full Prometheus exposition.
func scrape(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	return string(body)
}

// seriesValue extracts one series' current value from an exposition.
func seriesValue(body, series string) float64 {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		check(err)
		return v
	}
	return -1
}

// scrapeValue is scrape + seriesValue in one request.
func scrapeValue(url, series string) float64 {
	return seriesValue(scrape(url), series)
}

// servedLog lets the "restarted" (rolled-back) log come back at the same
// address, exactly as a rebooted log server would.
type servedLog struct {
	mu  sync.Mutex
	log *translog.Log
}

func (s *servedLog) swap(l *translog.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = l
}

func (s *servedLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	l := s.log
	s.mu.Unlock()
	translog.Handler(l).ServeHTTP(w, r)
}

func runGossipAct(signer crypto.Signer, logKey *ecdsa.PublicKey) {
	// The VM's durable log, in its own statedir.
	vmDir, err := os.MkdirTemp("", "vnfguard-gossip-log-")
	check(err)
	defer os.RemoveAll(vmDir)
	vmLog, err := translog.OpenDurableLog(signer, vmDir, translog.StoreConfig{})
	check(err)
	appendAudit := func(l *translog.Log, from, to int) {
		var batch []translog.Entry
		for i := from; i < to; i++ {
			batch = append(batch, translog.Entry{
				Type: translog.EntryAttestOK, Timestamp: time.Now().UnixMilli(),
				Actor: fmt.Sprintf("host-%d", i), Detail: "appraisal OK",
			})
		}
		_, err := l.AppendBatch(batch)
		check(err)
	}
	appendAudit(vmLog, 0, 5)
	// The attacker's snapshot: a consistent committed state at size 5.
	snap, err := snapshotFiles(vmDir)
	check(err)

	served := &servedLog{log: vmLog}
	logLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer logLn.Close()
	go http.Serve(logLn, served)
	logURL := "http://" + logLn.Addr().String()

	// Three witnesses: persisted heads (their own statedirs), gossip
	// endpoints, full-mesh peers — what `log-server -monitor -name wN`
	// runs in production.
	names := []string{"w0", "w1", "w2"}
	pools := make([]*translog.GossipPool, len(names))
	dirs := make([]*statedir.Dir, len(names))
	urls := make([]string, len(names))
	for i, name := range names {
		wd, err := os.MkdirTemp("", "vnfguard-witness-")
		check(err)
		defer os.RemoveAll(wd)
		dirs[i], err = statedir.Open(wd)
		check(err)
		w, err := translog.OpenWitnessState(dirs[i], name, logKey)
		check(err)
		pools[i] = translog.NewGossipPool(name, w, translog.NewClient(logURL, logKey))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		defer ln.Close()
		go http.Serve(ln, translog.GossipHandler(pools[i]))
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range pools {
		for j := range pools {
			if i != j {
				pools[i].AddPeer(translog.NewClient(urls[j], logKey))
			}
		}
	}
	for _, p := range pools {
		check(p.Exchange())
	}
	// The log keeps growing; the witness set follows to size 8.
	appendAudit(vmLog, 5, 8)
	grown := vmLog.STH()
	for _, p := range pools {
		check(p.Exchange())
	}
	fmt.Printf("3 witnesses gossiping, all anchored at size %d (heads persisted per witness)\n", grown.Size)

	// The rewind: restore the old snapshot — segments AND signed head
	// together — and "restart" the log server from it.
	check(vmLog.Close())
	check(restoreFiles(vmDir, snap))
	rolled, err := translog.OpenDurableLog(signer, vmDir, translog.StoreConfig{})
	if err != nil {
		log.Fatalf("consistent rollback was refused locally — act 7 exists because it cannot be: %v", err)
	}
	defer rolled.Close()
	served.swap(rolled)
	fmt.Printf("statedir rewound to size %d and restarted: recovery verified it cleanly — locally undetectable\n", rolled.Size())

	// Control: a lone witness with no memory and no peers anchors on the
	// rewritten history without a murmur. This is the gap peers close.
	lone := translog.NewGossipPool("lone", translog.NewWitness(logKey), translog.NewClient(logURL, logKey))
	check(lone.Exchange())
	if lone.Conflict() == nil {
		fmt.Println("zero-peer amnesiac witness: rollback UNDETECTED (as the attacker intended)")
	}

	// A witness restarted from its persisted statedir remembers size 8
	// and convicts the log the moment it polls.
	rw, err := translog.OpenWitnessState(dirs[0], names[0], logKey)
	check(err)
	restarted := translog.NewGossipPool(names[0], rw, translog.NewClient(logURL, logKey))
	err = restarted.Exchange()
	var ce *translog.ConflictError
	if !errors.As(err, &ce) || !errors.Is(err, translog.ErrRollback) {
		log.Fatalf("restarted witness failed to convict the rollback: %v", err)
	}
	fmt.Printf("restarted witness %s (persisted head): ROLLBACK convicted ✓\n", names[0])
	fmt.Printf("  evidence: remembered signed head size=%d root=%x… vs served signed head size=%d root=%x…\n",
		ce.Have.Size, ce.Have.RootHash[:6], ce.Got.Size, ce.Got.RootHash[:6])
	check(ce.Verify(logKey))
	fmt.Println("  both heads verify under the CA key: the conviction is portable, no trust in the witness needed ✓")

	// And gossip covers even a witness that lost its state: the amnesiac
	// re-anchored at size 5, but the moment a remembering peer pushes its
	// size-8 head over gossip, the amnesiac convicts the log it watches
	// — and the HTTP 409 carries the evidence back to the pushing peer.
	amnesiacW := translog.NewWitness(logKey)
	amnesiac := translog.NewGossipPool("amnesiac", amnesiacW, translog.NewClient(logURL, logKey))
	amnLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer amnLn.Close()
	go http.Serve(amnLn, translog.GossipHandler(amnesiac))
	check(amnesiac.Exchange()) // re-anchors at the rewritten size 5

	w1, err := translog.OpenWitnessState(dirs[1], names[1], logKey) // remembers size 8
	check(err)
	pusher := translog.NewGossipPool(names[1], w1, translog.NewClient(logURL, logKey))
	pusher.AddPeer(translog.NewClient("http://"+amnLn.Addr().String(), logKey))
	pushErr := pusher.Exchange()
	if !errors.Is(pushErr, translog.ErrRollback) {
		log.Fatalf("gossiped head failed to convict: %v", pushErr)
	}
	// The amnesiac convicted first-hand the moment the peer's size-8
	// head arrived (the log it watches serves less than a head the log
	// itself signed); the pusher convicted on its own poll. Neither took
	// the other's word: peer claims are corroborated, never adopted.
	if amnesiac.Conflict() == nil || pusher.Conflict() == nil {
		log.Fatal("conviction not latched on both sides of the gossip exchange")
	}
	fmt.Printf("amnesiac witness + gossiped peer head (size %d): ROLLBACK convicted on both ends ✓ (%d peers make one witness's amnesia irrelevant)\n",
		grown.Size, len(names)-1)
}

// runSealedAct demonstrates the last trust-anchor layer. The attacker
// of act 7 upgrades: this time the snapshot-restore covers the log's
// statedir AND the witness's persisted head, so no surviving file
// remembers the newer history — gossip has nothing to gossip. The
// sealed anchor still convicts, because each committed head was sealed
// by an enclave into a blob stamped with a monotonic counter that lives
// in platform NV (hardware), and the restored blob's stamp is behind
// the counter.
func runSealedAct(signer crypto.Signer, logKey *ecdsa.PublicKey) {
	vendor, err := pki.GenerateKey()
	check(err)
	issuer, err := epid.NewIssuer(0x5EA1)
	check(err)
	platform, err := sgx.NewPlatform("vm-machine", issuer, nil)
	check(err)

	logDir, err := os.MkdirTemp("", "vnfguard-sealed-log-")
	check(err)
	defer os.RemoveAll(logDir)
	witnessRoot, err := os.MkdirTemp("", "vnfguard-sealed-witness-")
	check(err)
	defer os.RemoveAll(witnessRoot)
	witnessDir, err := statedir.Open(witnessRoot)
	check(err)

	// The anchor chain under the VM's log: a co-located witness head
	// (act 7's defence) plus the sealed monotonic counter.
	anchors := func() []translog.TrustAnchor {
		sealed, err := translog.NewSealedHeadAnchor(platform, vendor,
			filepath.Join(logDir, translog.SealedHeadFileName), logKey)
		check(err)
		return []translog.TrustAnchor{
			translog.NewWitnessAnchor(witnessDir, "w0", logKey),
			sealed,
		}
	}
	vmLog, err := translog.OpenDurableLog(signer, logDir, translog.StoreConfig{Anchors: anchors()})
	check(err)
	appendEntries := func(l *translog.Log, from, to int) {
		var batch []translog.Entry
		for i := from; i < to; i++ {
			batch = append(batch, translog.Entry{
				Type: translog.EntryAttestOK, Timestamp: time.Now().UnixMilli(),
				Actor: fmt.Sprintf("host-%d", i), Detail: "appraisal OK",
			})
		}
		_, err := l.AppendBatch(batch)
		check(err)
	}
	appendEntries(vmLog, 0, 5)
	// The attacker's snapshot: log statedir AND witness statedir, all
	// self-consistent at size 5 (sealed blob included).
	snapLog, err := snapshotFiles(logDir)
	check(err)
	snapWitness, err := snapshotFiles(witnessRoot)
	check(err)
	appendEntries(vmLog, 5, 8)
	fmt.Printf("log grown to %d entries; every commit sealed under the monotonic counter\n", vmLog.Size())
	check(vmLog.Close())

	// Total amnesia: every file that remembered size 8 is rewound.
	check(restoreFiles(logDir, snapLog))
	check(restoreFiles(witnessRoot, snapWitness))

	// Control: without the sealed anchor the rewind is invisible — the
	// plain head check passes and the rewound witness agrees with the
	// rewritten history.
	blind, err := translog.OpenDurableLog(signer, logDir, translog.StoreConfig{
		Anchors: []translog.TrustAnchor{translog.NewWitnessAnchor(witnessDir, "w0", logKey)},
	})
	if err != nil {
		log.Fatalf("total-amnesia rewind should fool every filesystem memory: %v", err)
	}
	fmt.Printf("statedir + witness state rewound to size %d: disk-rooted anchors see nothing wrong\n", blind.Size())
	check(blind.Close())

	// With the sealed anchor, the open is refused: the counter in
	// platform NV outlived the rewind.
	_, err = translog.OpenDurableLog(signer, logDir, translog.StoreConfig{Anchors: anchors()})
	if !errors.Is(err, translog.ErrSealedRollback) {
		log.Fatalf("sealed anchor failed to convict the total-amnesia rewind: %v", err)
	}
	fmt.Printf("sealed-counter anchor: TOTAL-AMNESIA ROLLBACK refused at open ✓\n  %v\n", err)
	fmt.Println("  no witness, no surviving file needed: the monotonic counter is the memory the attacker cannot rewind ✓")
}

// runShardedAct is the multi-VM scaling act. Eight hosts' agents append
// attestation verdicts concurrently through the ShardedAppender: each
// host's entries buffer behind that host's own lock and land in that
// host's own WAL segment stream (seg-h<shard>-*.wal, records stamped
// with their global index), while the merging sequencer commits every
// cycle as ONE Merkle batch — one tree-head signature and one anchor
// bump no matter how many hosts were ready. A restart then interleaves
// the streams back into the global order, reproducing the exact root a
// single-stream log over the same entries computes; deleting one host's
// newest stream segment is still refused as a rollback of the whole log.
func runShardedAct(signer crypto.Signer, logKey *ecdsa.PublicKey) {
	dir, err := os.MkdirTemp("", "vnfguard-sharded-log-")
	check(err)
	defer os.RemoveAll(dir)
	cfg := translog.StoreConfig{Shards: 8, SegmentMaxBytes: 4096}
	l, err := translog.OpenDurableLog(signer, dir, cfg)
	check(err)

	sa := translog.NewShardedAppender(l, translog.ShardedAppenderConfig{MaxBatch: 128})
	const hosts, perHost = 8, 200
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			host := fmt.Sprintf("host-%d", h)
			for i := 0; i < perHost; i++ {
				check(sa.Append(translog.Entry{
					Type: translog.EntryAttestOK, Timestamp: time.Now().UnixMilli(),
					Actor: fmt.Sprintf("fw-%d-%d", h, i), Host: host, Detail: "appraisal OK",
				}))
			}
		}(h)
	}
	wg.Wait()
	check(sa.Close())
	grown := l.STH()
	root, err := l.RootAt(l.Size())
	check(err)
	entries := l.Entries(0, l.Size())
	check(l.Close())
	streams, err := filepath.Glob(filepath.Join(dir, "seg-h*.wal"))
	check(err)
	fmt.Printf("%d hosts × %d verdicts appended concurrently: %d entries across %d per-host stream files, one signed head (size %d)\n",
		hosts, perHost, len(entries), len(streams), grown.Size)

	// Restart: the interleaved replay reproduces the exact single-stream
	// history — same root a plain log computes over the same sequence.
	re, err := translog.OpenDurableLog(signer, dir, cfg)
	check(err)
	reRoot, err := re.RootAt(re.Size())
	check(err)
	ref, err := translog.NewLog(signer)
	check(err)
	_, err = ref.AppendBatch(entries)
	check(err)
	refRoot, err := ref.RootAt(uint64(len(entries)))
	check(err)
	if reRoot != root || reRoot != refRoot {
		log.Fatal("interleaved recovery diverged from the single-stream history")
	}
	check(re.Close())
	fmt.Printf("restart interleaved %d streams back into the global order: root identical to a single-stream log ✓\n", len(streams))

	// Per-host history is still globally protected: rewinding ONE host's
	// stream refuses the whole log at open.
	sort.Strings(streams)
	check(os.Remove(streams[len(streams)-1]))
	if _, err := translog.OpenDurableLog(signer, dir, cfg); errors.Is(err, translog.ErrStateRollback) {
		fmt.Printf("one host's stream rewound: open refused ✓ (%v)\n", err)
	} else {
		log.Fatalf("single-stream rewind not convicted: %v", err)
	}
}

func snapshotFiles(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	snap := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		snap[e.Name()] = data
	}
	return snap, nil
}

func restoreFiles(dir string, snap map[string][]byte) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	for name, data := range snap {
		//lint:allow atomicwrite crash-simulation harness deliberately restoring raw bytes; durability is the scenario under test, not a property of the harness
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// runTileAct is the offline-auditor act. While the log server is up, an
// auditor pulls the tree's content-addressed tiles through the tile
// endpoint (each response immutable and cacheable forever) and checks
// the signed head's root against them. Then the server is stopped — not
// paused, the listener is closed — and the auditor keeps producing
// fresh inclusion proofs for entries it never asked the server about,
// assembling them from the cached tiles alone and verifying each
// against the signed head it captured while online.
func runTileAct(signer crypto.Signer, logKey *ecdsa.PublicKey) {
	l, err := translog.NewLog(signer)
	check(err)
	const population = 600
	batch := make([]translog.Entry, population)
	for i := range batch {
		batch[i] = translog.Entry{
			Type: translog.EntryEnroll, Timestamp: time.Now().UnixMilli(),
			Actor: fmt.Sprintf("fw-%d", i), Host: "host-0",
			Serial: strconv.Itoa(500000 + i), Detail: "OK",
		}
	}
	_, err = l.AppendBatch(batch)
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: translog.Handler(l)}
	go srv.Serve(ln)
	client := translog.NewClient("http://"+ln.Addr().String(), logKey)

	// Online: capture the signed head and pull the tiles it commits to.
	// RootAt walks every tile the tree has, so this is the auditor's
	// cache warm-up and its strongest check in one: the recomputed root
	// must equal what the log signed.
	asm := translog.NewTileAssembler(client, 0)
	sth, err := client.STH()
	check(err)
	root, err := asm.RootAt(sth.Size)
	check(err)
	if root != sth.RootHash {
		log.Fatal("tile-recomputed root disagrees with the signed head")
	}
	entries, err := client.Entries(0, sth.Size)
	check(err)
	// One proof per level-0 tile pulls in every tile the head's proofs
	// can touch — the root walk above only needed the upper levels.
	for _, index := range []uint64{0, 300, 595} {
		_, err := asm.InclusionProof(index, sth.Size)
		check(err)
	}
	fmt.Printf("online: %d entries, signed head (size %d) recomputed from tiles, tile set cached ✓\n", len(entries), sth.Size)

	// The server goes away for good: listener closed AND every live
	// connection torn down, so not even a pooled keep-alive survives.
	check(srv.Close())
	if _, err := client.STH(); err == nil {
		log.Fatal("server still answering after Close — the offline claim would be vacuous")
	}
	fmt.Println("log server STOPPED (listener and connections closed, head endpoint unreachable)")

	// Offline: fresh proofs for entries across the whole tree, assembled
	// from the cache, verified against the captured head.
	for _, index := range []uint64{0, 255, 256, population/2 + 1, population - 1} {
		proof, err := asm.InclusionProof(index, sth.Size)
		check(err)
		leaf := translog.LeafHash(entries[index].Marshal())
		check(translog.VerifyInclusion(leaf, index, sth.Size, proof, sth.RootHash))
	}
	hits, misses := asm.Stats()
	fmt.Printf("offline: 5 fresh inclusion proofs assembled from cached tiles and verified (%d tile hits, %d fetches, all while online) ✓\n", hits, misses)
	fmt.Println("  the cache carries no trust: a wrong tile can only fail verification, never forge a proof ✓")
}

// runPartitionAct scales the audit plane to the fleet. The write plane
// already shards (act 9); here the witness set shards to match: a
// pinned partition assigns each of 8 witnesses 3 of the 8 host shard
// streams (every shard covered by a quorum of 3), each witness audits
// only its slice entry-by-entry against the served head, and heads only
// become trustworthy once ≥3 roster witnesses co-sign them. The attack
// act: a rewind that erases one host's recent entries — and the
// conviction comes from a witness whose ONLY surviving memory is its
// shard audit cursor, while a witness not assigned that shard exchanges
// cleanly, because ignorance of a shard is not evidence.
func runPartitionAct(signer crypto.Signer, logKey *ecdsa.PublicKey) {
	logDir, err := os.MkdirTemp("", "vnfguard-partition-log-")
	check(err)
	defer os.RemoveAll(logDir)
	sharedDir, err := os.MkdirTemp("", "vnfguard-partition-state-")
	check(err)
	defer os.RemoveAll(sharedDir)
	shared, err := statedir.Open(sharedDir)
	check(err)

	// The sharded durable store from act 9, now with per-shard stream
	// reads enabled so witnesses can audit one shard without paying for
	// the rest.
	const shards = 8
	cfg := translog.StoreConfig{Shards: shards, SegmentMaxBytes: 4096}
	l, err := translog.OpenDurableLog(signer, logDir, cfg)
	check(err)
	check(l.EnableShardStreams(shards))
	appendFleet := func(l *translog.Log, host string, from, to int) {
		var batch []translog.Entry
		for i := from; i < to; i++ {
			batch = append(batch, translog.Entry{
				Type: translog.EntryAttestOK, Timestamp: time.Now().UnixMilli(),
				Actor: fmt.Sprintf("fw-%s-%d", host, i), Host: host, Detail: "appraisal OK",
			})
		}
		_, err := l.AppendBatch(batch)
		check(err)
	}
	const hosts, perHost = 8, 40
	for h := 0; h < hosts; h++ {
		appendFleet(l, fmt.Sprintf("host-%d", h), 0, perHost)
	}

	// Every witness publishes its co-signing key into the shared
	// statedir; the roster (Q=3 of 8) and the cosign collector are what
	// the log server runs with -quorum 3.
	names := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	keys := make(map[string]*translog.WitnessKey, len(names))
	for _, name := range names {
		keys[name], err = translog.OpenWitnessKey(shared, name)
		check(err)
	}
	roster, err := translog.LoadWitnessRoster(shared, 3)
	check(err)
	col := translog.NewCosignCollector(logKey, roster)

	// The deployment pins ONE partition shape; every witness (and every
	// witness restart) derives the same assignment from it.
	check(translog.SavePartitionConfig(shared, translog.PartitionConfig{Shards: shards, Quorum: 3, Witnesses: names}))
	pcfg, err := translog.LoadPartitionConfig(shared)
	check(err)
	part, err := pcfg.Partition()
	check(err)

	// Serve the log with the cosign endpoints mounted, exactly as
	// cmd/log-server composes them.
	served := &servedLog{log: l}
	mux := http.NewServeMux()
	cosignH := translog.CosignHandler(col)
	mux.Handle("/translog/v1/cosign", cosignH)
	mux.Handle("/translog/v1/cosigned", cosignH)
	mux.Handle("/", served)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	go http.Serve(ln, mux)
	logURL := "http://" + ln.Addr().String()
	client := translog.NewClient(logURL, logKey)

	newPool := func(name string) *translog.GossipPool {
		w, err := translog.OpenWitnessState(shared, name, logKey)
		check(err)
		p := translog.NewGossipPool(name, w, translog.NewClient(logURL, logKey))
		check(p.EnablePartition(part, keys[name], shared))
		return p
	}
	pools := make([]*translog.GossipPool, len(names))
	for i, name := range names {
		pools[i] = newPool(name)
	}
	fmt.Printf("%d witnesses over %d shard streams, each auditing %d (e.g. %s → shards %v)\n",
		len(names), shards, len(part.AssignedShards(names[0])), names[0], part.AssignedShards(names[0]))

	// Two witnesses finishing their slices is not a quorum: relying
	// parties asking for the co-signed head are refused with a sentinel.
	check(pools[0].Exchange())
	check(pools[1].Exchange())
	if _, err := client.Cosigned(); !errors.Is(err, translog.ErrQuorumNotReached) {
		log.Fatalf("2 of 3 required co-signatures should not make a quorum: %v", err)
	}
	fmt.Println("2 witnesses co-signed: below quorum, co-signed head REFUSED ✓ (no single witness is a trust bottleneck — and no pair either)")

	for _, p := range pools[2:] {
		check(p.Exchange())
	}
	cosigned, err := client.Cosigned()
	check(err)
	check(cosigned.Verify(logKey, roster))
	total := l.Size()
	audited := uint64(0)
	for _, s := range part.AssignedShards(names[0]) {
		n, _, err := client.ShardStream(s, 0, 1)
		check(err)
		audited += n
	}
	fmt.Printf("quorum reached: head at size %d carries %d co-signatures (Q=%d), artifact verifies against the roster ✓\n",
		cosigned.STH.Size, len(cosigned.Signatures), roster.Quorum())
	fmt.Printf("  per-witness economy: %s vouched for the full head after verifying %d of %d entries — its slice, not the fleet ✓\n",
		names[0], audited, total)

	// A relying party pins the artifact like any trust anchor: accepted
	// quorum heads can only move forward, and an equal-size different
	// root is split-view evidence.
	anchor := translog.NewQuorumWitnessAnchor(shared, "relying-party", logKey, roster)
	check(anchor.Accept(cosigned))

	// The attacker's snapshot, then one host keeps working: 10 more
	// verdicts for host-3 land in exactly one shard stream.
	snap, err := snapshotFiles(logDir)
	check(err)
	victim := "host-3"
	victimShard := translog.ShardOf(victim, shards)
	appendFleet(l, victim, perHost, perHost+10)
	for _, p := range pools {
		check(p.Exchange())
	}
	grown, err := client.Cosigned()
	check(err)
	check(anchor.Accept(grown))
	fmt.Printf("%s appended 10 more verdicts (shard %d): quorum co-signed head advanced to size %d, anchor moved forward ✓\n",
		victim, victimShard, grown.STH.Size)

	// The rewind: restore the snapshot — WAL streams and signed head
	// together, a consistent state that reopens cleanly — erasing only
	// host-3's recent entries.
	check(l.Close())
	check(restoreFiles(logDir, snap))
	rolled, err := translog.OpenDurableLog(signer, logDir, cfg)
	check(err)
	defer rolled.Close()
	check(rolled.EnableShardStreams(shards))
	served.swap(rolled)
	fmt.Printf("statedir rewound to size %d and restarted: locally clean, %s's last 10 verdicts erased\n", rolled.Size(), victim)

	// Amnesiac conviction, shard edition: erase the head memory of a
	// witness assigned the victim shard, keeping ONLY its audit cursors.
	// It re-anchors on the rewritten head without complaint — and then
	// its own cursor convicts: the shard stream it audited to 50 entries
	// now serves 40.
	amnName := part.WitnessesFor(victimShard)[0]
	check(os.Remove(filepath.Join(sharedDir, fmt.Sprintf("witness-%s-head.json", amnName))))
	amnesiac := newPool(amnName)
	err = amnesiac.Exchange()
	var ce *translog.ConflictError
	if !errors.As(err, &ce) || !errors.Is(err, translog.ErrRollback) || amnesiac.Conflict() == nil {
		log.Fatalf("assigned witness failed to convict the shard rewind: %v", err)
	}
	check(ce.Verify(logKey))
	fmt.Printf("amnesiac witness %s (assigned shard %d, only its audit cursor survived): ROLLBACK convicted ✓\n", amnName, victimShard)
	fmt.Printf("  evidence: %s — signed heads verify under the CA key, the conviction is portable ✓\n", ce.Detail)

	// The false-conviction control: a witness NOT assigned the victim
	// shard, amnesia'd the same way, exchanges cleanly. Its slice is
	// intact, and under partitioning a witness ignorant of a shard is
	// never treated as evidence about it.
	cleanName := ""
	for _, name := range names {
		if !part.Covers(name, victimShard) {
			cleanName = name
			break
		}
	}
	check(os.Remove(filepath.Join(sharedDir, fmt.Sprintf("witness-%s-head.json", cleanName))))
	clean := newPool(cleanName)
	check(clean.Exchange())
	if clean.Conflict() != nil {
		log.Fatalf("witness %s is not assigned shard %d but convicted anyway: %v", cleanName, victimShard, clean.Conflict())
	}
	fmt.Printf("witness %s (NOT assigned shard %d): clean exchange, no false conviction ✓ — each witness testifies only about its slice\n",
		cleanName, victimShard)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
