// Transparency audit: the Verification Manager is the deployment's trust
// oracle — this walkthrough shows how the attestation transparency log
// removes the need to take its word. It enrolls VNFs, then audits every
// decision from the outside: signed tree heads, inclusion proofs for
// credentials, consistency proofs across log growth, rejection of a
// CA-signed-but-unlogged certificate, mid-session revocation, a witness
// catching a split-view (forked-history) log, and finally a VM
// kill-and-restart: the log is durable, so proofs issued before the
// restart still verify against post-restart tree heads — while a
// rolled-back statedir refuses to open at all.
//
//	go run ./examples/transparency-audit
package main

import (
	"crypto/ecdsa"
	"crypto/tls"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"vnfguard/internal/controller"
	"vnfguard/internal/core"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/pki"
	"vnfguard/internal/translog"
	"vnfguard/internal/vnf"
)

func main() {
	fmt.Println("vnfguard transparency audit — verifiable evidence for every trust decision")
	fmt.Println()

	// The VM's log is durable: WAL segments plus a persisted signed tree
	// head under this directory, which act 5 reopens after a "crash".
	logDir, err := os.MkdirTemp("", "vnfguard-translog-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)

	d, err := core.NewDeployment(core.Options{
		Mode:    controller.ModeTrustedHTTPS,
		Trust:   controller.TrustCA,
		TLSMode: enclaveapp.TLSKeyInEnclave,
		LogDir:  logDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	tlog := d.VM.TransparencyLog()
	logKey := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)

	// An auditor starts witnessing before anything happens: the genesis
	// tree head commits to the empty log.
	witness := translog.NewWitness(logKey)
	fetch := func(first, second uint64) ([]translog.Hash, error) {
		return tlog.ConsistencyProof(first, second)
	}
	genesis := tlog.STH()
	check(witness.Advance(genesis, fetch))
	fmt.Printf("witness anchored at genesis head (size %d)\n", genesis.Size)

	// Run the paper's workflow for two firewalls. Every attestation
	// verdict, enrollment and provisioning is committed to the log.
	for _, name := range []string{"fw-1", "fw-2"} {
		if err := d.DeployVNF(0, name, "firewall"); err != nil {
			log.Fatal(err)
		}
	}
	check(d.LearnGolden())
	if _, err := d.RunWorkflow(0, []vnf.VNF{core.StandardFirewall("fw-1"), core.StandardFirewall("fw-2")}); err != nil {
		log.Fatal(err)
	}
	check(d.VM.FlushLog())
	sth := tlog.STH()
	check(witness.Advance(sth, fetch))
	fmt.Printf("workflow logged: tree grew %d → %d entries, consistency proven\n", genesis.Size, sth.Size)
	for i, e := range tlog.Entries(0, tlog.Size()) {
		fmt.Printf("  [%d] %-12s actor=%-8s serial=%-4s %s\n", i, e.Type, e.Actor, e.Serial, e.Detail)
	}
	fmt.Println()

	// 1. Inclusion proof: anyone holding the CA certificate can verify a
	//    credential was issued by the logged workflow.
	enr, err := d.VM.Enrollment("fw-1")
	check(err)
	pb, err := d.VM.CredentialProof(enr.Serial)
	check(err)
	check(pb.Verify(logKey))
	fmt.Printf("credential %s: inclusion proven at index %d under signed head (size %d, %d-hash path)\n",
		enr.Serial, pb.Index, pb.STH.Size, len(pb.Proof))

	// 2. The controller demands that proof: a certificate minted straight
	//    from the CA key — bypassing attestation, and so the log — is
	//    rejected in trusted mode.
	rogueKey, err := pki.GenerateKey()
	check(err)
	csr, err := pki.CreateCSR("fw-rogue", rogueKey)
	check(err)
	rogueCert, err := d.VM.CA().SignClientCSR(csr, time.Hour)
	check(err)
	rogueCfg := &tls.Config{
		MinVersion: tls.VersionTLS12, RootCAs: d.VM.CA().Pool(), ServerName: core.ServerName,
		Certificates: []tls.Certificate{{Certificate: [][]byte{rogueCert.Raw}, PrivateKey: rogueKey}},
	}
	if _, err := controller.NewClient(d.ControllerURL(), rogueCfg).Summary(); err != nil {
		fmt.Println("rogue CA-signed certificate (never logged): controller rejected it ✓")
	} else {
		log.Fatal("rogue certificate accepted — transparency gate failed")
	}

	// 3. Mid-session revocation: an enrolled VNF with a live keep-alive
	//    session loses access the moment the VM revokes it.
	ce, err := d.Hosts[0].CredentialEnclave("fw-2")
	check(err)
	cfg, err := ce.ClientTLSConfig(core.ServerName)
	check(err)
	client := controller.NewClient(d.ControllerURL(), cfg)
	defer client.CloseIdle()
	if _, err := client.Summary(); err != nil {
		log.Fatal(err)
	}
	check(d.VM.RevokeVNF("fw-2"))
	if _, err := client.Summary(); err != nil {
		fmt.Println("fw-2 revoked: live session cut off on the next request ✓")
	} else {
		log.Fatal("revoked VNF kept its session")
	}
	check(witness.Advance(tlog.STH(), fetch))
	fmt.Printf("revocation logged and head advanced consistently (size %d)\n\n", tlog.STH().Size)

	// 4. Split view: a forked log signed by the same (stolen) CA key
	//    cannot fool a witness that has seen the honest history.
	forked, err := translog.NewLog(d.VM.CA().Signer())
	check(err)
	for i := 0; i < int(tlog.Size())+3; i++ {
		if _, err := forked.Append(translog.Entry{
			Type: translog.EntryEnroll, Timestamp: int64(i), Actor: "ghost", Serial: fmt.Sprint(9000 + i),
		}); err != nil {
			log.Fatal(err)
		}
	}
	forkedFetch := func(first, second uint64) ([]translog.Hash, error) {
		return forked.ConsistencyProof(first, second)
	}
	if err := witness.Advance(forked.STH(), forkedFetch); err != nil {
		fmt.Printf("forked log presented: witness rejected it ✓ (%v)\n", err)
	} else {
		log.Fatal("witness accepted a forked history")
	}
	fmt.Println()

	// 5. Kill and restart: the VM dies, then its durable log is reopened
	//    from the same statedir. Recovery replays the WAL, rebuilds the
	//    tree, and verifies the recomputed root against the persisted
	//    signed head — so a restart is provably a continuation, not the
	//    silent history wipe an in-memory log would suffer (which a
	//    witness could not tell apart from a rollback attack).
	preSTH := tlog.STH()
	check(d.VM.Close()) // the "kill": appender flushed, WAL tail fsynced
	reopened, err := translog.OpenDurableLog(d.VM.CA().Signer(), logDir, translog.StoreConfig{})
	check(err)
	defer reopened.Close()
	fmt.Printf("VM restarted: %d entries recovered, root verified against persisted signed head\n", reopened.Size())

	// The proof issued before the restart verifies untouched, and the
	// recovered log re-proves the same credential at the same index.
	check(pb.Verify(logKey))
	pb2, err := reopened.ProveSerial(enr.Serial)
	check(err)
	check(pb2.Verify(logKey))
	fmt.Printf("credential %s: pre-restart proof still verifies; re-proven at index %d post-restart ✓\n",
		enr.Serial, pb2.Index)

	// The witness that watched the pre-crash log accepts the recovered
	// head and every head after it: the restart is consistency-proven.
	reopenedFetch := func(first, second uint64) ([]translog.Hash, error) {
		return reopened.ConsistencyProof(first, second)
	}
	check(witness.Advance(reopened.STH(), reopenedFetch))
	if _, err := reopened.Append(translog.Entry{
		Type: translog.EntryAttestOK, Timestamp: time.Now().UnixMilli(), Actor: "host-0", Detail: "post-restart appraisal",
	}); err != nil {
		log.Fatal(err)
	}
	check(witness.Advance(reopened.STH(), reopenedFetch))
	fmt.Printf("witness followed the restart: head %d → %d consistency-proven across the crash ✓\n",
		preSTH.Size, reopened.STH().Size)

	// 6. Rollback refusal: restore an "older snapshot" by deleting the
	//    newest WAL segment. The open recomputes the root, sees fewer
	//    entries than the persisted signed head covers, and refuses —
	//    the witness's rollback detection, enforced locally at startup.
	check(reopened.Close())
	segs, err := filepath.Glob(filepath.Join(logDir, "seg-*.wal"))
	check(err)
	sort.Strings(segs)
	check(os.Remove(segs[len(segs)-1]))
	if _, err := translog.OpenDurableLog(d.VM.CA().Signer(), logDir, translog.StoreConfig{}); err != nil {
		fmt.Printf("rolled-back statedir: open refused ✓ (%v)\n", err)
	} else {
		log.Fatal("rolled-back statedir opened cleanly")
	}

	fmt.Println()
	fmt.Println("audit complete: every verdict provable, nothing taken on faith — not even across restarts")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
