package verifier

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"strings"
	"testing"
	"time"

	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/epid"
	"vnfguard/internal/host"
	"vnfguard/internal/ias"
	"vnfguard/internal/ima"
	"vnfguard/internal/pki"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/translog"
)

// deployment wires issuer, IAS, a host and a Manager — the full trust
// fabric minus the controller.
type deployment struct {
	issuer *epid.Issuer
	iasSvc *ias.Service
	vendor *ecdsa.PrivateKey
	h      *host.Host
	m      *Manager
	model  *simtime.CostModel
}

type deployOpts struct {
	enableTPM       bool
	requireTPM      bool
	provMode        enclaveapp.ProvisionMode
	attestationCode string
	// ca and logDir let restart tests share a CA and a durable
	// transparency log across two Manager lifetimes; logStore tunes the
	// store (per-host sharding included).
	ca       *pki.CA
	logDir   string
	logStore translog.StoreConfig
}

func newDeployment(t *testing.T, opts deployOpts) *deployment {
	t.Helper()
	issuer, err := epid.NewIssuer(500)
	if err != nil {
		t.Fatal(err)
	}
	iasSvc, err := ias.NewService(issuer.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	model := simtime.ZeroCosts()
	vendor, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	vmKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultPolicy()
	policy.RequireTPM = opts.requireTPM
	m, err := New(Config{
		Name: "vm", Key: vmKey, SPID: sgx.SPID{9},
		IAS:           &ias.DirectClient{Service: iasSvc, Model: model},
		Policy:        policy,
		ProvisionMode: opts.provMode,
		CA:            opts.ca,
		LogDir:        opts.logDir,
		LogStore:      opts.logStore,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.Config{
		Name: "host-a", Issuer: issuer, Model: model,
		VendorKey: vendor, VMPub: m.PublicKey(), SPID: sgx.SPID{9},
		EnableTPM: opts.enableTPM, AttestationCode: opts.attestationCode,
	})
	if err != nil {
		t.Fatal(err)
	}
	var aik *ecdsa.PublicKey
	if h.HasTPM() {
		aik = h.TPM().AIKPublic()
	}
	m.RegisterHost("host-a", h, aik)
	m.PinAttestationMeasurement(h.AttestationEnclaveIdentity().MRENCLAVE)
	credMR, err := enclaveapp.ExpectedCredentialMeasurement(vendor, m.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	m.PinCredentialMeasurement(credMR)
	return &deployment{issuer: issuer, iasSvc: iasSvc, vendor: vendor, h: h, m: m, model: model}
}

func vnfImage() *host.Image {
	return &host.Image{
		Name: "vnf-firewall", Tag: "1.0",
		Entrypoint: "/usr/bin/firewall",
		Layers:     []host.Layer{{Files: map[string][]byte{"/usr/bin/firewall": []byte("fw v1")}}},
	}
}

// deployAndLearn runs a container and records the resulting IML as golden.
func (d *deployment) deployAndLearn(t *testing.T, vnf string) {
	t.Helper()
	if _, err := d.h.RunContainer(vnfImage(), vnf); err != nil {
		t.Fatal(err)
	}
	if err := d.m.LearnHostGolden("host-a"); err != nil {
		t.Fatal(err)
	}
}

func TestHostAttestationTrusted(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	app, err := d.m.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if !app.Trusted {
		t.Fatalf("findings: %v", app.Findings)
	}
	if app.QuoteStatus != ias.StatusOK {
		t.Fatalf("quote status = %s", app.QuoteStatus)
	}
	if app.IMLEntries < 2 {
		t.Fatalf("IML entries = %d", app.IMLEntries)
	}
	if !d.m.HostTrusted("host-a") {
		t.Fatal("host not marked trusted")
	}
}

func TestHostAttestationDetectsTamperedBinary(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	// Compromise after the golden run.
	d.h.TamperBinary("fw-1", "/usr/bin/firewall", []byte("backdoored"))
	app, err := d.m.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if app.Trusted {
		t.Fatal("tampered host trusted")
	}
	found := false
	for _, f := range app.Findings {
		if strings.Contains(f, "not in golden database") || strings.Contains(f, "hash mismatch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings: %v", app.Findings)
	}
}

func TestHostAttestationDetectsTamperedEnclave(t *testing.T) {
	d := newDeployment(t, deployOpts{attestationCode: "evil attestation build"})
	d.deployAndLearn(t, "fw-1")
	// The manager pinned the *launched* identity in newDeployment; re-pin
	// the canonical one to model the real deployment where the golden
	// value comes from the build system, not the (compromised) host.
	canonical, err := enclaveapp.ExpectedAttestationMeasurement(d.vendor)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(Config{Name: "vm2", SPID: sgx.SPID{9},
		IAS: &ias.DirectClient{Service: d.iasSvc, Model: d.model}})
	if err != nil {
		t.Fatal(err)
	}
	m2.RegisterHost("host-a", d.h, nil)
	m2.PinAttestationMeasurement(canonical)
	m2.GoldenIMA().AllowUnknown = true
	app, err := m2.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if app.Trusted {
		t.Fatal("tampered attestation enclave trusted")
	}
}

func TestHostAttestationDetectsRevokedPlatform(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	d.iasSvc.RevokePlatformKey(d.h.Platform().EPIDMember().PseudonymSecret())
	app, err := d.m.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if app.Trusted {
		t.Fatal("revoked platform trusted")
	}
	if app.QuoteStatus != ias.StatusKeyRevoked {
		t.Fatalf("quote status = %s", app.QuoteStatus)
	}
}

func TestAttestUnknownHost(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	if _, err := d.m.AttestHost("ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("got %v", err)
	}
}

func TestTPMRequiredPolicy(t *testing.T) {
	// TPM-backed host passes; the appraisal records hardware rooting.
	d := newDeployment(t, deployOpts{enableTPM: true, requireTPM: true})
	d.deployAndLearn(t, "fw-1")
	app, err := d.m.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if !app.Trusted || !app.TPMVerified {
		t.Fatalf("app = %+v", app)
	}
}

func TestTPMDetectsIMLRewrite(t *testing.T) {
	d := newDeployment(t, deployOpts{enableTPM: true, requireTPM: true})
	d.deployAndLearn(t, "fw-1")
	// §4 adversary: root rewrites the software IML to the golden state
	// after running malware.
	d.h.TamperBinary("fw-1", "/usr/bin/firewall", []byte("malware"))
	text, _ := d.h.IMA().Snapshot()
	_ = text
	// Forge a clean list: re-learn from a fresh identical host.
	clean := newDeployment(t, deployOpts{enableTPM: true})
	clean.deployAndLearn(t, "fw-1")
	cleanText, _ := clean.h.IMA().Snapshot()
	cleanList, err := ima.ParseList(cleanText)
	if err != nil {
		t.Fatal(err)
	}
	d.h.IMA().TamperList(cleanList)

	app, err := d.m.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if app.Trusted {
		t.Fatal("IML rewrite undetected under TPM policy")
	}
	hasTPMFinding := false
	for _, f := range app.Findings {
		if strings.Contains(f, "TPM") || strings.Contains(f, "PCR") {
			hasTPMFinding = true
		}
	}
	if !hasTPMFinding {
		t.Fatalf("findings: %v", app.Findings)
	}
}

// Without a TPM the same rewrite goes unnoticed — exactly the limitation
// §4 of the paper states. This test documents the gap.
func TestSoftwareOnlyMissesIMLRewrite(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	d.h.TamperBinary("fw-1", "/usr/bin/firewall", []byte("malware"))
	clean := newDeployment(t, deployOpts{})
	clean.deployAndLearn(t, "fw-1")
	// Forge: replace the IML with the (differently-booted) clean host's
	// golden entries for the same content; rebuild it from this host's
	// own pre-tamper state instead for an exact forgery.
	pre, _ := d.h.IMA().Snapshot()
	_ = pre
	// Reconstruct the pre-tamper list textually: drop the last line.
	lines := strings.Split(strings.TrimSpace(pre), "\n")
	forged := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	forgedList, err := ima.ParseList(forged)
	if err != nil {
		t.Fatal(err)
	}
	d.h.IMA().TamperList(forgedList)
	app, err := d.m.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if !app.Trusted {
		t.Fatalf("expected the software-only gap (trusted), got findings: %v", app.Findings)
	}
}

func TestEnrollVNFHappyPath(t *testing.T) {
	for _, mode := range []enclaveapp.ProvisionMode{enclaveapp.ModeVMGenerated, enclaveapp.ModeCSR} {
		t.Run(string(mode), func(t *testing.T) {
			d := newDeployment(t, deployOpts{provMode: mode})
			d.deployAndLearn(t, "fw-1")
			if _, err := d.m.AttestHost("host-a"); err != nil {
				t.Fatal(err)
			}
			enr, err := d.m.EnrollVNF("host-a", "fw-1")
			if err != nil {
				t.Fatal(err)
			}
			if enr.Cert.Subject.CommonName != "fw-1" {
				t.Fatalf("CN = %q", enr.Cert.Subject.CommonName)
			}
			if err := d.m.CA().VerifyClient(enr.Cert); err != nil {
				t.Fatal(err)
			}
			// The enclave is provisioned and can authenticate to the VM.
			ce, err := d.h.CredentialEnclave("fw-1")
			if err != nil {
				t.Fatal(err)
			}
			mac, err := ce.HMAC([]byte("heartbeat"))
			if err != nil {
				t.Fatal(err)
			}
			if !d.m.VerifyVNFMAC("fw-1", []byte("heartbeat"), mac) {
				t.Fatal("HMAC verification failed")
			}
			if d.m.VerifyVNFMAC("fw-1", []byte("tampered"), mac) {
				t.Fatal("HMAC forgery accepted")
			}
		})
	}
}

func TestEnrollRequiresTrustedHost(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	// Never attested → not trusted.
	if _, err := d.m.EnrollVNF("host-a", "fw-1"); !errors.Is(err, ErrHostNotTrusted) {
		t.Fatalf("got %v", err)
	}
	// Attested but compromised → not trusted.
	d.h.TamperBinary("fw-1", "/usr/bin/firewall", []byte("rootkit"))
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.m.EnrollVNF("host-a", "fw-1"); !errors.Is(err, ErrHostNotTrusted) {
		t.Fatalf("got %v", err)
	}
}

func TestEnrollRejectsForeignCredentialEnclave(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	// Clear the pinned credential measurement: the enclave's identity is
	// now unexpected.
	d.m.mu.Lock()
	d.m.expectCred = map[sgx.Measurement]bool{}
	d.m.mu.Unlock()
	_, err := d.m.EnrollVNF("host-a", "fw-1")
	if err == nil || !strings.Contains(err.Error(), "unexpected enclave measurement") {
		t.Fatalf("got %v", err)
	}
}

func TestEnrollUnknownVNF(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.m.EnrollVNF("host-a", "ghost"); err == nil {
		t.Fatal("unknown VNF enrolled")
	}
}

func TestDoubleEnrollRejected(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.m.EnrollVNF("host-a", "fw-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.m.EnrollVNF("host-a", "fw-1"); !errors.Is(err, ErrAlreadyEnrolled) {
		t.Fatalf("got %v", err)
	}
}

func TestRevokeVNF(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	enr, err := d.m.EnrollVNF("host-a", "fw-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.m.RevokeVNF("fw-1"); err != nil {
		t.Fatal(err)
	}
	// Certificate revoked at the CA.
	if !d.m.CA().IsRevoked(enr.Cert.SerialNumber) {
		t.Fatal("certificate not revoked")
	}
	// Enclave wiped.
	ce, err := d.h.CredentialEnclave("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ce.Certificate(); err == nil {
		t.Fatal("enclave still holds credentials after revocation")
	}
	// Enrollment gone.
	if _, err := d.m.Enrollment("fw-1"); !errors.Is(err, ErrNotEnrolled) {
		t.Fatalf("got %v", err)
	}
	if err := d.m.RevokeVNF("fw-1"); !errors.Is(err, ErrNotEnrolled) {
		t.Fatalf("double revoke: %v", err)
	}
}

func TestAppraisalFreshness(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	d.m.policy.ReattestAfter = time.Millisecond
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if d.m.HostTrusted("host-a") {
		t.Fatal("stale appraisal still trusted")
	}
}

func TestNonceSingleUse(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	n := d.m.NewNonce()
	if !d.m.consumeNonce(n) {
		t.Fatal("fresh nonce rejected")
	}
	if d.m.consumeNonce(n) {
		t.Fatal("nonce consumed twice")
	}
}

func TestEnrollmentsListing(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	d.h.RunContainer(vnfImage(), "fw-2")
	if err := d.m.LearnHostGolden("host-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	for _, vnf := range []string{"fw-1", "fw-2"} {
		if _, err := d.m.EnrollVNF("host-a", vnf); err != nil {
			t.Fatalf("%s: %v", vnf, err)
		}
	}
	list := d.m.Enrollments()
	if len(list) != 2 || list[0].VNF != "fw-1" || list[1].VNF != "fw-2" {
		t.Fatalf("enrollments = %+v", list)
	}
	hosts := d.m.Hosts()
	if len(hosts) != 1 || !hosts[0].Trusted {
		t.Fatalf("hosts = %+v", hosts)
	}
}
