package verifier

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vnfguard/internal/ias"
	"vnfguard/internal/pki"
	"vnfguard/internal/sgx"
	"vnfguard/internal/translog"
)

// TestRestartDurableLog is the end-to-end restart guarantee at the
// Verification Manager level: enroll + attest + provision on a durable
// log, shut the VM down, open a fresh Manager over the same statedir —
// and every pre-restart credential proof still verifies, revocations
// still refuse, and the controller-side log gate still admits exactly
// the credentials it admitted before.
func TestRestartDurableLog(t *testing.T) {
	logDir := t.TempDir()
	ca, err := pki.NewCA("restart CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// First VM lifetime: the full workflow, one credential revoked.
	d := newDeployment(t, deployOpts{ca: ca, logDir: logDir})
	d.deployAndLearn(t, "fw-keep")
	d.deployAndLearn(t, "fw-revoke")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	kept, err := d.m.EnrollVNF("host-a", "fw-keep")
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := d.m.EnrollVNF("host-a", "fw-revoke")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.m.RevokeVNF("fw-revoke"); err != nil {
		t.Fatal(err)
	}
	preProof, err := d.m.CredentialProof(kept.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.m.FlushLog(); err != nil {
		t.Fatal(err)
	}
	preSTH := d.m.TransparencyLog().STH()
	if err := d.m.Close(); err != nil {
		t.Fatal(err)
	}

	// Second lifetime: same CA, same statedir, nothing else carried over
	// (enrollment state is in-memory and deliberately not reused).
	m2, err := New(Config{
		Name: "vm-restarted", SPID: sgx.SPID{9},
		IAS:    &ias.DirectClient{Service: d.iasSvc, Model: d.model},
		CA:     ca,
		LogDir: logDir,
	})
	if err != nil {
		t.Fatalf("reopening VM over durable log: %v", err)
	}
	defer m2.Close()

	log2 := m2.TransparencyLog()
	if !log2.Durable() {
		t.Fatal("restarted VM log not durable")
	}
	if log2.Size() != preSTH.Size {
		t.Fatalf("recovered %d entries, want %d", log2.Size(), preSTH.Size)
	}

	// The pre-restart proof bundle verifies as-is (stateless), and the
	// restarted VM issues a fresh proof for the same serial against its
	// recovered head.
	if err := preProof.Verify(caPub(m2)); err != nil {
		t.Fatalf("pre-restart proof: %v", err)
	}
	postProof, err := m2.CredentialProof(kept.Serial)
	if err != nil {
		t.Fatalf("pre-restart serial unprovable after restart: %v", err)
	}
	if postProof.Index != preProof.Index {
		t.Fatalf("serial index moved across restart: %d -> %d", preProof.Index, postProof.Index)
	}
	if err := postProof.Verify(caPub(m2)); err != nil {
		t.Fatal(err)
	}

	// Revocation persisted: the proof path refuses and the log flags it.
	if _, err := m2.CredentialProof(dropped.Serial); !errors.Is(err, translog.ErrLogRevoked) {
		t.Fatalf("revoked serial after restart: got %v, want ErrLogRevoked", err)
	}
	if !log2.SerialRevoked(dropped.Serial) {
		t.Fatal("revocation lost across restart")
	}

	// The controller's log gate behaves identically to before the
	// restart: logged credential admitted, revoked one refused.
	check := m2.CredentialChecker()
	if err := check(kept.Cert); err != nil {
		t.Fatalf("logged credential rejected after restart: %v", err)
	}
	if err := check(dropped.Cert); err == nil {
		t.Fatal("revoked credential admitted after restart")
	}

	// New appends chain onto the recovered history: the pre-restart head
	// is consistency-proven into the post-restart one.
	if _, err := log2.Append(translog.Entry{Type: translog.EntryAttestOK, Actor: "host-a", Detail: "post-restart"}); err != nil {
		t.Fatal(err)
	}
	postSTH := log2.STH()
	proof, err := log2.ConsistencyProof(preSTH.Size, postSTH.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := translog.VerifyConsistency(preSTH.Size, postSTH.Size, preSTH.RootHash, postSTH.RootHash, proof); err != nil {
		t.Fatalf("post-restart history not an extension of pre-restart history: %v", err)
	}
}

// TestRestartRefusesRolledBackStatedir is the flip side: if the statedir
// was rolled back between runs (here: the whole store emptied but the
// head kept — the minimal rollback), the VM must refuse to start rather
// than silently re-serve truncated history.
func TestRestartRefusesRolledBackStatedir(t *testing.T) {
	logDir := t.TempDir()
	ca, err := pki.NewCA("rollback CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	d := newDeployment(t, deployOpts{ca: ca, logDir: logDir})
	d.deployAndLearn(t, "fw-1")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.m.EnrollVNF("host-a", "fw-1"); err != nil {
		t.Fatal(err)
	}
	if err := d.m.Close(); err != nil {
		t.Fatal(err)
	}

	rollBackStore(t, logDir)

	_, err = New(Config{
		Name: "vm-restarted", SPID: sgx.SPID{9},
		IAS:    &ias.DirectClient{Service: d.iasSvc, Model: d.model},
		CA:     ca,
		LogDir: logDir,
	})
	if !errors.Is(err, translog.ErrStateRollback) {
		t.Fatalf("rolled-back statedir: got %v, want translog.ErrStateRollback", err)
	}
}

// TestRestartShardedDurableLog runs the restart guarantee over a
// per-host sharded log store: the Manager batches its audit entries
// through the sharded appender, the WAL splits into per-host segment
// streams, and a second Manager lifetime recovers the interleaved
// streams into the same history — proofs, indices and revocations
// intact. The host→shard mapping is exposed and stable across restarts.
func TestRestartShardedDurableLog(t *testing.T) {
	logDir := t.TempDir()
	store := translog.StoreConfig{Shards: 4}
	ca, err := pki.NewCA("shard CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	d := newDeployment(t, deployOpts{ca: ca, logDir: logDir, logStore: store})
	shard, ok := d.m.LogShard("host-a")
	if !ok || shard < 0 || shard >= 4 {
		t.Fatalf("LogShard(host-a) = (%d,%v), want a slot in [0,4)", shard, ok)
	}
	d.deployAndLearn(t, "fw-keep")
	d.deployAndLearn(t, "fw-revoke")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	kept, err := d.m.EnrollVNF("host-a", "fw-keep")
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := d.m.EnrollVNF("host-a", "fw-revoke")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.m.RevokeVNF("fw-revoke"); err != nil {
		t.Fatal(err)
	}
	preProof, err := d.m.CredentialProof(kept.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.m.FlushLog(); err != nil {
		t.Fatal(err)
	}
	preSTH := d.m.TransparencyLog().STH()
	if err := d.m.Close(); err != nil {
		t.Fatal(err)
	}

	// The WAL really is sharded: per-host stream files exist, legacy
	// single-stream files do not.
	shardSegs, err := filepath.Glob(filepath.Join(logDir, "seg-h*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(shardSegs) == 0 {
		t.Fatal("sharded store produced no per-host segment streams")
	}

	m2, err := New(Config{
		Name: "vm-restarted", SPID: sgx.SPID{9},
		IAS:      &ias.DirectClient{Service: d.iasSvc, Model: d.model},
		CA:       ca,
		LogDir:   logDir,
		LogStore: store,
	})
	if err != nil {
		t.Fatalf("reopening VM over sharded durable log: %v", err)
	}
	defer m2.Close()
	if got, ok := m2.LogShard("host-a"); !ok || got != shard {
		t.Fatalf("host shard moved across restart: %d -> %d (ok=%v)", shard, got, ok)
	}
	log2 := m2.TransparencyLog()
	if log2.Size() != preSTH.Size {
		t.Fatalf("recovered %d entries, want %d", log2.Size(), preSTH.Size)
	}
	if err := preProof.Verify(caPub(m2)); err != nil {
		t.Fatalf("pre-restart proof: %v", err)
	}
	postProof, err := m2.CredentialProof(kept.Serial)
	if err != nil {
		t.Fatalf("pre-restart serial unprovable after sharded restart: %v", err)
	}
	if postProof.Index != preProof.Index {
		t.Fatalf("serial index moved across sharded restart: %d -> %d", preProof.Index, postProof.Index)
	}
	if _, err := m2.CredentialProof(dropped.Serial); !errors.Is(err, translog.ErrLogRevoked) {
		t.Fatalf("revoked serial after sharded restart: got %v, want ErrLogRevoked", err)
	}
}

// rollBackStore deletes the WAL segments while keeping the persisted
// tree head — the on-disk shape of a restored-from-snapshot attack.
func rollBackStore(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments to roll back")
	}
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}
}
