package verifier

import (
	"sync"
	"time"
)

// MonitorEvent reports the outcome of one monitoring cycle for one host.
// The paper's introduction motivates exactly this: "integrity monitoring
// and integrity verification are used to detect the compromise of the OS
// virtualization layer and of VNFs deployed in containers".
type MonitorEvent struct {
	Host    string
	Trusted bool
	// RevokedVNFs lists enrollments automatically revoked because their
	// host lost trust in this cycle.
	RevokedVNFs []string
	Findings    []string
	At          time.Time
}

// Monitor periodically re-attests every registered host and revokes the
// credentials of VNFs on hosts that fail appraisal, bounding the window
// in which a compromised host can keep using provisioned credentials.
type Monitor struct {
	m        *Manager
	interval time.Duration
	events   chan MonitorEvent

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartMonitor begins continuous attestation at the given interval.
// Events are delivered on the returned Monitor's Events channel (buffered;
// overflow drops oldest-first semantics are avoided by dropping the new
// event, keeping the channel non-blocking for the attestation loop).
func (m *Manager) StartMonitor(interval time.Duration) *Monitor {
	mon := &Monitor{
		m:        m,
		interval: interval,
		events:   make(chan MonitorEvent, 64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go mon.loop()
	return mon
}

// Events delivers monitoring outcomes.
func (mon *Monitor) Events() <-chan MonitorEvent { return mon.events }

// Stop halts the monitor and waits for the loop to exit.
func (mon *Monitor) Stop() {
	mon.stopOnce.Do(func() { close(mon.stop) })
	<-mon.done
}

func (mon *Monitor) loop() {
	defer close(mon.done)
	ticker := time.NewTicker(mon.interval)
	defer ticker.Stop()
	for {
		select {
		case <-mon.stop:
			return
		case <-ticker.C:
			mon.cycle()
		}
	}
}

// cycle re-attests every host and enforces revocation on failure.
func (mon *Monitor) cycle() {
	mon.m.mu.Lock()
	names := make([]string, 0, len(mon.m.hosts))
	for name := range mon.m.hosts {
		names = append(names, name)
	}
	mon.m.mu.Unlock()

	for _, name := range names {
		app, err := mon.m.AttestHost(name)
		ev := MonitorEvent{Host: name, At: time.Now()}
		if err != nil {
			ev.Trusted = false
			ev.Findings = []string{err.Error()}
		} else {
			ev.Trusted = app.Trusted
			ev.Findings = app.Findings
		}
		if !ev.Trusted {
			ev.RevokedVNFs = mon.m.revokeHostEnrollments(name)
		}
		select {
		case mon.events <- ev:
		default: // receiver is slow; drop rather than stall attestation
		}
	}
}

// revokeHostEnrollments revokes every enrollment on a host, returning the
// affected VNF names.
func (m *Manager) revokeHostEnrollments(hostName string) []string {
	m.mu.Lock()
	var vnfs []string
	for name, enr := range m.enrollments {
		if enr.Host == hostName {
			vnfs = append(vnfs, name)
		}
	}
	m.mu.Unlock()
	for _, v := range vnfs {
		// Best-effort: the certificate is revoked even when the (now
		// untrusted) host refuses the enclave wipe.
		_ = m.RevokeVNF(v)
	}
	return vnfs
}
