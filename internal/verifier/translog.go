package verifier

import (
	"crypto/ecdsa"
	"crypto/x509"
	"strings"
	"time"

	"vnfguard/internal/sgx"
	"vnfguard/internal/translog"
)

// The Verification Manager commits every externally visible trust
// decision to its transparency log, so hosts, controllers and third-party
// auditors can verify what the trust anchor did instead of taking its
// word. Attestation verdicts ride the batched appender (the hot path
// never blocks on hashing or tree-head signing); enrollment, provisioning
// and revocation commit synchronously, because their entries must be
// provable before the credential is used — the controller's trusted mode
// rejects credentials that are not yet in the log.

// TransparencyLog returns the VM's audit log (serve it with
// translog.Handler or cmd/log-server).
func (m *Manager) TransparencyLog() *translog.Log { return m.tlog }

// CredentialProof returns the verifiable issuance proof for a credential
// serial: the log entry, its audit path and the signed tree head. This is
// what a VNF (or its host) hands to relying parties that demand logged
// evidence.
func (m *Manager) CredentialProof(serial string) (*translog.ProofBundle, error) {
	return m.tlog.ProveSerial(serial)
}

// CredentialChecker returns the controller-side hook that rejects any
// client certificate the VM never logged (or whose revocation is logged),
// verified against the CA public key. Audit paths are assembled from the
// log's tile read path (with a local expanded-tile cache) instead of
// per-handshake proof computation, so a burst of TLS handshakes never
// turns into a burst of O(log n) hashing on the sequencer's tree.
func (m *Manager) CredentialChecker() func(cert *x509.Certificate) error {
	pub := m.ca.Certificate().PublicKey.(*ecdsa.PublicKey)
	return translog.NewCredentialChecker(pub, translog.NewLogTileProofSource(m.tlog, 0))
}

// QuorumCredentialChecker is CredentialChecker for a deployment running
// partitioned witnesses: the hook additionally requires every proof's
// head to chain (by consistency proof) to a head at least Q roster
// witnesses co-signed after auditing their shard slices. cosigned names
// the quorum artifact source — an in-process collector's Cosigned or a
// remote client's.
func (m *Manager) QuorumCredentialChecker(roster *translog.WitnessRoster, cosigned translog.CosignSource) func(cert *x509.Certificate) error {
	pub := m.ca.Certificate().PublicKey.(*ecdsa.PublicKey)
	source := translog.NewLogTileProofSource(m.tlog, 0)
	return translog.NewQuorumCredentialChecker(pub, roster, source, source, cosigned)
}

// FlushLog forces any buffered attestation entries into the tree (tests
// and orderly shutdown).
func (m *Manager) FlushLog() error { return m.tlogAppender.Flush() }

// LogShard reports which per-host shard of the transparency log carries
// a host's audit entries — the mapping the sharded appender and the
// sharded WAL both use. Zero (with ok=false) when the log is unsharded.
func (m *Manager) LogShard(host string) (shard int, ok bool) {
	if m.tlogShards <= 1 {
		return 0, false
	}
	return translog.ShardOf(host, m.tlogShards), true
}

// Close releases the Manager's background resources: the appender is
// flushed and stopped, and a durable log the Manager opened itself (via
// Config.LogDir) is closed with its tail segment fsynced.
func (m *Manager) Close() error {
	err := m.tlogAppender.Close()
	if m.tlogOwned {
		if cerr := m.tlog.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// auditSync commits entries immediately, as one batch under a single
// tree-head signature.
func (m *Manager) auditSync(entries ...translog.Entry) error {
	now := time.Now().UnixMilli()
	for i := range entries {
		entries[i].Timestamp = now
	}
	_, err := m.tlog.AppendBatch(entries)
	if err == nil {
		for i := range entries {
			countVerdict(entries[i].Type)
		}
	}
	return err
}

// auditAsync buffers an entry on the batched appender.
func (m *Manager) auditAsync(e translog.Entry) {
	e.Timestamp = time.Now().UnixMilli()
	// The only failure mode is a closed appender during shutdown; verdicts
	// are still enforced locally, so dropping the audit write is safe.
	if m.tlogAppender.Append(e) == nil {
		countVerdict(e.Type)
	}
}

// auditAppraisal records a host appraisal outcome.
func (m *Manager) auditAppraisal(app *HostAppraisal) {
	e := translog.Entry{
		Type:   translog.EntryAttestOK,
		Actor:  app.Host,
		Host:   app.Host,
		Detail: string(app.QuoteStatus),
	}
	if !app.Trusted {
		e.Type = translog.EntryAttestFail
		e.Detail = strings.Join(app.Findings, "; ")
	}
	m.auditAsync(e)
}

// auditVNFAttestation records a credential-enclave attestation verdict.
func (m *Manager) auditVNFAttestation(vnf, hostName string, mr sgx.Measurement, err error) {
	e := translog.Entry{
		Type:        translog.EntryAttestOK,
		Actor:       vnf,
		Host:        hostName,
		Measurement: append([]byte(nil), mr[:]...),
		Detail:      "OK",
	}
	if err != nil {
		e.Type = translog.EntryAttestFail
		e.Measurement = nil
		e.Detail = err.Error()
	}
	m.auditAsync(e)
}
