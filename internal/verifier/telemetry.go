package verifier

import (
	"vnfguard/internal/obs"
	"vnfguard/internal/translog"
)

// Verdict telemetry: every trust decision the Verification Manager
// commits to its transparency log is also counted here, labelled by
// outcome, so an operator can watch attestation pass/fail rates and
// credential lifecycle churn without scraping the log itself. Counters
// are pre-resolved package handles — the audit paths never touch the
// registry map (see internal/translog/telemetry.go for the contract).

var (
	verdictHelp     = "Trust decisions committed to the transparency log, labelled by outcome."
	mVerdictEnroll  = obs.Default().Counter("verifier_verdicts_total", verdictHelp, "outcome", "enroll")
	mVerdictAttOK   = obs.Default().Counter("verifier_verdicts_total", verdictHelp, "outcome", "attest_ok")
	mVerdictAttFail = obs.Default().Counter("verifier_verdicts_total", verdictHelp, "outcome", "attest_fail")
	mVerdictProv    = obs.Default().Counter("verifier_verdicts_total", verdictHelp, "outcome", "provision")
	mVerdictRevoke  = obs.Default().Counter("verifier_verdicts_total", verdictHelp, "outcome", "revoke")
)

// countVerdict bumps the outcome counter for one audit entry.
func countVerdict(t translog.EntryType) {
	switch t {
	case translog.EntryEnroll:
		mVerdictEnroll.Inc()
	case translog.EntryAttestOK:
		mVerdictAttOK.Inc()
	case translog.EntryAttestFail:
		mVerdictAttFail.Inc()
	case translog.EntryProvision:
		mVerdictProv.Inc()
	case translog.EntryRevoke:
		mVerdictRevoke.Inc()
	}
}
