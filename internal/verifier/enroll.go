package verifier

import (
	"encoding/json"
	"fmt"
	"time"

	"crypto/x509"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/pki"
	"vnfguard/internal/ra"
	"vnfguard/internal/secchan"
	"vnfguard/internal/sgx"
	"vnfguard/internal/translog"
)

// EnrollVNF runs steps 3–5 for one VNF: remote attestation of its
// credential enclave (with IAS validation of the quote), then credential
// generation and provisioning over the attested secure channel. The host
// must have a current trusted appraisal (the paper: "the protocol
// continues only if the host is considered trustworthy following the
// appraisal").
func (m *Manager) EnrollVNF(hostName, vnf string) (*Enrollment, error) {
	m.mu.Lock()
	rec, ok := m.hosts[hostName]
	_, dup := m.enrollments[vnf]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, hostName)
	}
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrAlreadyEnrolled, vnf)
	}
	if !m.HostTrusted(hostName) {
		return nil, fmt.Errorf("%w: %q", ErrHostNotTrusted, hostName)
	}

	// Steps 3–4: remote attestation of the credential enclave.
	raStart := time.Now()
	m1, err := rec.conn.VNFRAMsg1(vnf)
	if err != nil {
		return nil, fmt.Errorf("verifier: RA msg1: %w", err)
	}
	sigRL, err := m.iasC.SigRL(m1.GID)
	if err != nil {
		return nil, fmt.Errorf("verifier: fetching SigRL: %w", err)
	}
	ch := ra.NewChallenger(m.spid, m.key, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, sigRL)
	if err != nil {
		return nil, err
	}
	m3, err := rec.conn.VNFRAMsg2(vnf, m2)
	if err != nil {
		return nil, fmt.Errorf("verifier: RA msg2/3: %w", err)
	}
	m4, chErr := ch.ProcessMsg3(m3, m.credentialEvidenceCheck)
	if m4 != nil {
		// Deliver the verdict to the enclave regardless of outcome.
		if err := rec.conn.VNFRAMsg4(vnf, m4); err != nil && chErr == nil {
			return nil, fmt.Errorf("verifier: RA msg4: %w", err)
		}
	}
	if chErr != nil {
		m.auditVNFAttestation(vnf, hostName, sgx.Measurement{}, chErr)
		return nil, chErr
	}
	m.auditVNFAttestation(vnf, hostName, ch.Quote().Body.MRENCLAVE, nil)
	m.trace("vnf-attestation", raStart)

	// Step 5: generate credentials and provision over the channel.
	provStart := time.Now()
	sk, err := ch.SessionKey()
	if err != nil {
		return nil, err
	}
	codec, err := secchan.NewCodec(sk, secchan.RoleInitiator)
	if err != nil {
		return nil, err
	}
	enr := &Enrollment{
		VNF:                vnf,
		Host:               hostName,
		CommonName:         vnf,
		hmacKey:            m.NewHMACKey(),
		EnclaveMeasurement: ch.Quote().Body.MRENCLAVE,
		EnrolledAt:         time.Now(),
		codec:              codec,
	}
	cert, err := m.provision(rec, enr)
	if err != nil {
		return nil, err
	}
	enr.Cert = cert
	enr.Serial = cert.SerialNumber.String()
	m.trace("provisioning", provStart)

	// Commit the issuance to the transparency log before releasing the
	// credential: a controller in trusted mode will demand the inclusion
	// proof, so the entries must exist before the certificate is usable.
	// One batch — both entries land under a single tree-head signature.
	mr := enr.EnclaveMeasurement
	if err := m.auditSync(
		translog.Entry{
			Type: translog.EntryEnroll, Actor: vnf, Host: hostName,
			Serial: enr.Serial, Measurement: append([]byte(nil), mr[:]...),
		},
		translog.Entry{
			Type: translog.EntryProvision, Actor: vnf, Host: hostName,
			Serial: enr.Serial, Detail: string(m.provMode),
		},
	); err != nil {
		return nil, fmt.Errorf("verifier: logging enrollment: %w", err)
	}

	m.mu.Lock()
	m.enrollments[vnf] = enr
	m.mu.Unlock()
	return enr, nil
}

// credentialEvidenceCheck validates a credential-enclave quote via IAS and
// pins the enclave identity.
func (m *Manager) credentialEvidenceCheck(quoteBytes []byte) (string, error) {
	avr, err := m.iasC.VerifyQuote(quoteBytes, "")
	if err != nil {
		return "IAS_ERROR", err
	}
	if !avr.Status().Trusted() {
		return string(avr.Status()), fmt.Errorf("%w: %s", ErrQuoteStatus, avr.Status())
	}
	quote, err := sgx.DecodeQuote(quoteBytes)
	if err != nil {
		return "MALFORMED", err
	}
	m.mu.Lock()
	okMR := m.expectCred[quote.Body.MRENCLAVE]
	m.mu.Unlock()
	if !okMR {
		return "MEASUREMENT_MISMATCH", fmt.Errorf("%w: credential enclave %s", ErrUnexpectedMR, quote.Body.MRENCLAVE)
	}
	if quote.Body.Attributes.Debug && !m.policy.AllowDebug {
		return "DEBUG_ENCLAVE", ErrDebugEnclave
	}
	if quote.Body.ISVSVN < m.policy.MinISVSVN {
		return "SVN_TOO_LOW", ErrSVNTooLow
	}
	return string(avr.Status()), nil
}

// provision executes the credential hand-off for the configured mode.
func (m *Manager) provision(rec *hostRecord, enr *Enrollment) (cert *x509.Certificate, err error) {
	payload := enclaveapp.ProvisionPayload{
		Mode:    m.provMode,
		CADER:   m.ca.Certificate().Raw,
		HMACKey: enr.hmacKey,
	}
	switch m.provMode {
	case enclaveapp.ModeVMGenerated:
		// The paper's design: the VM generates the key pair.
		key, err := pki.GenerateKey()
		if err != nil {
			return nil, err
		}
		csr, err := pki.CreateCSR(enr.CommonName, key)
		if err != nil {
			return nil, err
		}
		cert, err = m.ca.SignClientCSR(csr, m.certValidity)
		if err != nil {
			return nil, err
		}
		pkcs8, err := x509.MarshalPKCS8PrivateKey(key)
		if err != nil {
			return nil, err
		}
		payload.KeyPKCS8 = pkcs8
		payload.CertDER = cert.Raw
	case enclaveapp.ModeCSR:
		// Hardening mode: ask the enclave for a CSR first.
		req, err := json.Marshal(enclaveapp.CSRRequest{CommonName: enr.CommonName})
		if err != nil {
			return nil, err
		}
		respPayload, err := m.channelRound(rec, enr, secchan.TypeCSR, req, secchan.TypeCSR)
		if err != nil {
			return nil, err
		}
		var resp enclaveapp.CSRResponse
		if err := json.Unmarshal(respPayload, &resp); err != nil {
			return nil, err
		}
		cert, err = m.ca.SignClientCSR(resp.CSRDER, m.certValidity)
		if err != nil {
			return nil, err
		}
		payload.CertDER = cert.Raw
	default:
		return nil, fmt.Errorf("verifier: unknown provisioning mode %q", m.provMode)
	}

	body, err := payload.Encode()
	if err != nil {
		return nil, err
	}
	if _, err := m.channelRound(rec, enr, secchan.TypeProvision, body, secchan.TypeAck); err != nil {
		return nil, err
	}
	return cert, nil
}

// channelRound seals one record, relays it through the host, and opens the
// response, enforcing the expected response type.
func (m *Manager) channelRound(rec *hostRecord, enr *Enrollment, sendType uint8, payload []byte, wantType uint8) ([]byte, error) {
	frame, err := enr.codec.Seal(sendType, payload)
	if err != nil {
		return nil, err
	}
	respFrame, err := rec.conn.VNFFrame(enr.VNF, frame)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProvisionTimeout, err)
	}
	gotType, respPayload, err := enr.codec.Open(respFrame)
	if err != nil {
		return nil, err
	}
	if gotType == secchan.TypeError {
		return nil, fmt.Errorf("%w: enclave: %s", ErrProvisionTimeout, respPayload)
	}
	if gotType != wantType {
		return nil, fmt.Errorf("verifier: unexpected channel response type %d", gotType)
	}
	return respPayload, nil
}

// RevokeVNF revokes an enrollment: the certificate lands on the CRL and
// the enclave is ordered to wipe its credentials over the still-keyed
// secure channel ("provision or revoke authentication keys", paper §2).
func (m *Manager) RevokeVNF(vnf string) error {
	m.mu.Lock()
	enr, ok := m.enrollments[vnf]
	var rec *hostRecord
	if ok {
		rec = m.hosts[enr.Host]
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotEnrolled, vnf)
	}
	m.ca.Revoke(enr.Cert.SerialNumber)
	// The revocation is committed to the log before the enclave wipe: the
	// controller's per-request and log-backed checks must see it even when
	// the (possibly compromised) host never acknowledges.
	if err := m.auditSync(translog.Entry{
		Type: translog.EntryRevoke, Actor: vnf, Host: enr.Host, Serial: enr.Serial,
	}); err != nil {
		return fmt.Errorf("verifier: logging revocation: %w", err)
	}
	if rec != nil {
		if _, err := m.channelRound(rec, enr, secchan.TypeRevoke, nil, secchan.TypeAck); err != nil {
			// The certificate is already revoked; wiping is best-effort
			// (the host may be gone).
			m.mu.Lock()
			delete(m.enrollments, vnf)
			m.mu.Unlock()
			return fmt.Errorf("verifier: enclave wipe failed (certificate revoked anyway): %w", err)
		}
	}
	m.mu.Lock()
	delete(m.enrollments, vnf)
	m.mu.Unlock()
	return nil
}

// AttestVNF runs use case 1 in isolation: remote attestation of a VNF's
// credential enclave (steps 3–4) without provisioning. It returns the
// verified quote. The enclave is informed of the verdict via msg4 but no
// session is retained.
func (m *Manager) AttestVNF(hostName, vnf string) (*sgx.Quote, error) {
	m.mu.Lock()
	rec, ok := m.hosts[hostName]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, hostName)
	}
	m1, err := rec.conn.VNFRAMsg1(vnf)
	if err != nil {
		return nil, fmt.Errorf("verifier: RA msg1: %w", err)
	}
	sigRL, err := m.iasC.SigRL(m1.GID)
	if err != nil {
		return nil, fmt.Errorf("verifier: fetching SigRL: %w", err)
	}
	ch := ra.NewChallenger(m.spid, m.key, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, sigRL)
	if err != nil {
		return nil, err
	}
	m3, err := rec.conn.VNFRAMsg2(vnf, m2)
	if err != nil {
		return nil, fmt.Errorf("verifier: RA msg2/3: %w", err)
	}
	m4, chErr := ch.ProcessMsg3(m3, m.credentialEvidenceCheck)
	if m4 != nil {
		if err := rec.conn.VNFRAMsg4(vnf, m4); err != nil && chErr == nil {
			return nil, fmt.Errorf("verifier: RA msg4: %w", err)
		}
	}
	if chErr != nil {
		m.auditVNFAttestation(vnf, hostName, sgx.Measurement{}, chErr)
		return nil, chErr
	}
	m.auditVNFAttestation(vnf, hostName, ch.Quote().Body.MRENCLAVE, nil)
	return ch.Quote(), nil
}
