package verifier

import (
	"crypto/ecdsa"
	"errors"
	"testing"

	"vnfguard/internal/translog"
)

// caPub extracts the log verification key the way relying parties get it:
// from the CA certificate.
func caPub(m *Manager) *ecdsa.PublicKey {
	return m.CA().Certificate().PublicKey.(*ecdsa.PublicKey)
}

// TestManagerAuditsWorkflow walks the full credential lifecycle and
// checks that every trust decision landed in the transparency log with a
// verifiable proof.
func TestManagerAuditsWorkflow(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")

	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	enr, err := d.m.EnrollVNF("host-a", "fw-1")
	if err != nil {
		t.Fatal(err)
	}

	// Enrollment + provisioning are committed synchronously: the proof
	// must be available the instant the credential exists.
	pb, err := d.m.CredentialProof(enr.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Verify(caPub(d.m)); err != nil {
		t.Fatalf("credential proof does not verify: %v", err)
	}
	if pb.Entry.Actor != "fw-1" || pb.Entry.Serial != enr.Serial {
		t.Fatalf("wrong proof entry: %+v", pb.Entry)
	}

	// The host attestation verdict rode the batched appender.
	if err := d.m.FlushLog(); err != nil {
		t.Fatal(err)
	}
	log := d.m.TransparencyLog()
	var kinds []translog.EntryType
	for _, e := range log.Entries(0, log.Size()) {
		kinds = append(kinds, e.Type)
	}
	want := map[translog.EntryType]int{
		translog.EntryAttestOK:  2, // host appraisal + credential enclave
		translog.EntryEnroll:    1,
		translog.EntryProvision: 1,
	}
	got := map[translog.EntryType]int{}
	for _, k := range kinds {
		got[k]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("entry kinds %v: want %d × %v", kinds, n, k)
		}
	}

	// Revocation lands synchronously and flips the proof to refusal.
	if err := d.m.RevokeVNF("fw-1"); err != nil {
		t.Fatal(err)
	}
	if !log.SerialRevoked(enr.Serial) {
		t.Fatal("revocation not committed")
	}
	if _, err := d.m.CredentialProof(enr.Serial); !errors.Is(err, translog.ErrLogRevoked) {
		t.Fatalf("want ErrLogRevoked, got %v", err)
	}
	sth := log.STH()
	if err := sth.Verify(caPub(d.m)); err != nil {
		t.Fatal(err)
	}
	if sth.Size != log.Size() {
		t.Fatalf("tree head size %d, log size %d", sth.Size, log.Size())
	}
}

// TestManagerAuditsFailedAppraisal checks that a failed host appraisal is
// logged as EntryAttestFail with the findings.
func TestManagerAuditsFailedAppraisal(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	d.h.TamperBinary("fw-1", "/usr/bin/firewall", []byte("backdoored"))
	app, err := d.m.AttestHost("host-a")
	if err != nil {
		t.Fatal(err)
	}
	if app.Trusted {
		t.Fatal("tampered host trusted")
	}
	if err := d.m.FlushLog(); err != nil {
		t.Fatal(err)
	}
	log := d.m.TransparencyLog()
	entries := log.Entries(0, log.Size())
	var found bool
	for _, e := range entries {
		if e.Type == translog.EntryAttestFail && e.Actor == "host-a" && e.Detail != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no attest-fail entry in %+v", entries)
	}
}
