package verifier

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vnfguard/internal/epid"
	"vnfguard/internal/ias"
	"vnfguard/internal/pki"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/translog"
)

// sealFixture is the minimal trust fabric for Config.SealLog tests: an
// IAS client (required by New), a shared CA, and one SGX platform that
// plays the VM's machine across Manager lifetimes.
type sealFixture struct {
	ias      ias.QuoteVerifier
	ca       *pki.CA
	platform *sgx.Platform
	logDir   string
	// key is the VM's long-term key, stable across Manager lifetimes —
	// it signs the anchor enclave, whose MRSIGNER namespaces the
	// monotonic counter (in deployments it comes from the statedir).
	key *ecdsa.PrivateKey
}

func newSealFixture(t *testing.T) *sealFixture {
	t.Helper()
	issuer, err := epid.NewIssuer(700)
	if err != nil {
		t.Fatal(err)
	}
	iasSvc, err := ias.NewService(issuer.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	ca, err := pki.NewCA("seal CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform("vm-machine", issuer, simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &sealFixture{
		ias:      &ias.DirectClient{Service: iasSvc, Model: simtime.ZeroCosts()},
		ca:       ca,
		platform: platform,
		logDir:   t.TempDir(),
		key:      key,
	}
}

func (f *sealFixture) manager(t *testing.T) (*Manager, error) {
	t.Helper()
	return New(Config{
		Name: "vm-sealed", Key: f.key, SPID: sgx.SPID{7},
		IAS:     f.ias,
		CA:      f.ca,
		LogDir:  f.logDir,
		SealLog: f.platform,
	})
}

// TestSealLogRestartAndTotalAmnesia: a Manager with Config.SealLog
// survives a clean restart on the same platform, but a statedir rewound
// to an earlier committed snapshot — sealed blob included, i.e. nothing
// on disk is inconsistent — is refused at New with ErrSealedRollback.
func TestSealLogRestartAndTotalAmnesia(t *testing.T) {
	f := newSealFixture(t)

	m1, err := f.manager(t)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.TransparencyLog().Append(translog.Entry{
		Type: translog.EntryAttestOK, Timestamp: 1, Actor: "host-a", Detail: "OK",
	}); err != nil {
		t.Fatal(err)
	}
	snap := snapshotFiles(t, f.logDir)
	if _, err := m1.TransparencyLog().Append(translog.Entry{
		Type: translog.EntryAttestOK, Timestamp: 2, Actor: "host-a", Detail: "OK again",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean restart: same statedir, same platform — recovery passes and
	// the log resumes where it stopped.
	m2, err := f.manager(t)
	if err != nil {
		t.Fatalf("clean sealed restart refused: %v", err)
	}
	if got := m2.TransparencyLog().Size(); got < 2 {
		t.Fatalf("recovered %d entries, want ≥ 2", got)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewind: restore the whole statedir (WAL, sth.json and the
	// sealed blob together) to the one-entry snapshot. Locally
	// consistent — only the counter on the platform knows better.
	restoreFiles(t, f.logDir, snap)
	if _, err := f.manager(t); !errors.Is(err, translog.ErrSealedRollback) {
		t.Fatalf("total-amnesia rewind at New: got %v, want translog.ErrSealedRollback", err)
	}

	// Without the sealed anchor the rewound statedir opens cleanly —
	// the exact gap Config.SealLog closes.
	plain, err := New(Config{
		Name: "vm-unsealed", SPID: sgx.SPID{7},
		IAS: f.ias, CA: f.ca, LogDir: f.logDir,
	})
	if err != nil {
		t.Fatalf("rewound statedir should fool an unsealed Manager: %v", err)
	}
	plain.Close()
}

func snapshotFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = data
	}
	return snap
}

func restoreFiles(t *testing.T, dir string, snap map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range snap {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}
