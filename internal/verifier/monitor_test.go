package verifier

import (
	"testing"
	"time"
)

// waitEvent receives one event or fails after a deadline.
func waitEvent(t *testing.T, mon *Monitor) MonitorEvent {
	t.Helper()
	select {
	case ev := <-mon.Events():
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no monitor event")
		panic("unreachable")
	}
}

func TestMonitorReportsHealthyHost(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	mon := d.m.StartMonitor(20 * time.Millisecond)
	defer mon.Stop()
	ev := waitEvent(t, mon)
	if ev.Host != "host-a" || !ev.Trusted {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.RevokedVNFs) != 0 {
		t.Fatalf("healthy cycle revoked %v", ev.RevokedVNFs)
	}
}

func TestMonitorRevokesOnCompromise(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	if _, err := d.m.AttestHost("host-a"); err != nil {
		t.Fatal(err)
	}
	enr, err := d.m.EnrollVNF("host-a", "fw-1")
	if err != nil {
		t.Fatal(err)
	}

	// Compromise the host after enrollment.
	d.h.TamperBinary("fw-1", "/usr/bin/firewall", []byte("rootkit"))

	mon := d.m.StartMonitor(20 * time.Millisecond)
	defer mon.Stop()

	var ev MonitorEvent
	for {
		ev = waitEvent(t, mon)
		if !ev.Trusted {
			break
		}
	}
	if len(ev.RevokedVNFs) != 1 || ev.RevokedVNFs[0] != "fw-1" {
		t.Fatalf("revoked = %v", ev.RevokedVNFs)
	}
	// The certificate is on the CRL and the enrollment is gone.
	if !d.m.CA().IsRevoked(enr.Cert.SerialNumber) {
		t.Fatal("certificate not revoked by monitor")
	}
	if len(d.m.Enrollments()) != 0 {
		t.Fatal("enrollment survived monitor revocation")
	}
}

func TestMonitorStopTerminatesLoop(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	mon := d.m.StartMonitor(10 * time.Millisecond)
	waitEvent(t, mon)
	done := make(chan struct{})
	go func() {
		mon.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return")
	}
	// Stop is idempotent.
	mon.Stop()
}

func TestMonitorSurvivesSlowReceiver(t *testing.T) {
	d := newDeployment(t, deployOpts{})
	d.deployAndLearn(t, "fw-1")
	mon := d.m.StartMonitor(time.Millisecond)
	// Don't read events; let the buffer fill. The loop must not deadlock.
	time.Sleep(300 * time.Millisecond)
	mon.Stop()
	// Drain what's there; all events should be healthy.
	for {
		select {
		case ev := <-mon.Events():
			if !ev.Trusted {
				t.Fatalf("unexpected untrusted event: %+v", ev)
			}
		default:
			return
		}
	}
}
