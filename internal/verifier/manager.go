// Package verifier implements the Verification Manager, the central
// component of the paper's architecture: it attests container hosts
// (steps 1–2), attests VNF credential enclaves (steps 3–4), acts as the
// certificate authority, generates HMAC keys and nonces, provisions
// credentials over the attested secure channel (step 5), and revokes them
// when trust is withdrawn.
package verifier

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/ias"
	"vnfguard/internal/ima"
	"vnfguard/internal/pki"
	"vnfguard/internal/ra"
	"vnfguard/internal/secchan"
	"vnfguard/internal/sgx"
	"vnfguard/internal/tpm"
	"vnfguard/internal/translog"
)

// HostConn is the Verification Manager's view of a container host. Both
// the in-process host.Host and the HTTP host.Client satisfy it.
type HostConn interface {
	Attest(nonce []byte, useTPM bool) (*enclaveapp.HostEvidence, error)
	VNFs() ([]string, error)
	VNFRAMsg1(vnf string) (*ra.Msg1, error)
	VNFRAMsg2(vnf string, m2 *ra.Msg2) (*ra.Msg3, error)
	VNFRAMsg4(vnf string, m4 *ra.Msg4) error
	VNFFrame(vnf string, frame []byte) ([]byte, error)
}

// Errors.
var (
	ErrUnknownHost      = errors.New("verifier: unknown host")
	ErrHostNotTrusted   = errors.New("verifier: host not trusted")
	ErrNotEnrolled      = errors.New("verifier: VNF not enrolled")
	ErrAlreadyEnrolled  = errors.New("verifier: VNF already enrolled")
	ErrEvidenceBinding  = errors.New("verifier: evidence not bound to quote")
	ErrNonceMismatch    = errors.New("verifier: evidence nonce mismatch")
	ErrUnexpectedMR     = errors.New("verifier: unexpected enclave measurement")
	ErrDebugEnclave     = errors.New("verifier: debug enclave rejected by policy")
	ErrSVNTooLow        = errors.New("verifier: enclave security version below policy floor")
	ErrQuoteStatus      = errors.New("verifier: attestation service rejected quote")
	ErrTPMRequired      = errors.New("verifier: policy requires TPM-rooted measurements")
	ErrTPMMismatch      = errors.New("verifier: IML does not match TPM PCR")
	ErrProvisionTimeout = errors.New("verifier: provisioning failed")
)

// Policy is the appraisal policy applied to quotes and hosts.
type Policy struct {
	// AllowDebug accepts debug-attribute enclaves (never in production).
	AllowDebug bool
	// MinISVSVN is the lowest acceptable enclave security version.
	MinISVSVN uint16
	// RequireTPM demands hardware-rooted IML on every host attestation
	// (the paper's §4 extension).
	RequireTPM bool
	// ReattestAfter bounds how long a host appraisal remains fresh.
	ReattestAfter time.Duration
}

// DefaultPolicy is fail-closed with one-minute appraisal freshness.
func DefaultPolicy() Policy {
	return Policy{MinISVSVN: 1, ReattestAfter: time.Minute}
}

// Config assembles a Manager.
type Config struct {
	Name string
	// Key is the VM's long-term signing key (generated when nil). Its
	// public half is baked into credential enclave measurements.
	Key *ecdsa.PrivateKey
	// SPID identifies this service provider to IAS.
	SPID sgx.SPID
	// IAS is the attestation-service client.
	IAS ias.QuoteVerifier
	// Policy is the appraisal policy (DefaultPolicy when zero).
	Policy Policy
	// ProvisionMode selects VM-generated keys (the paper's design) or
	// enclave-side CSR (hardening ablation).
	ProvisionMode enclaveapp.ProvisionMode
	// CertValidity bounds issued VNF certificates.
	CertValidity time.Duration
	// CA injects a pre-existing certificate authority (multi-process
	// deployments share one CA across the init and run phases). When nil
	// a fresh CA is created.
	CA *pki.CA
	// Log injects a pre-existing transparency log (deployments that run
	// cmd/log-server in-process share it with the HTTP handler). When nil
	// a fresh log signed by the CA key is created.
	Log *translog.Log
	// LogDir, when set (and Log is nil), opens a durable transparency log
	// in that directory — typically a subdirectory of the deployment's
	// statedir. The open replays, verifies and resumes any previous
	// state, so audit history survives VM restarts; it fails with the
	// translog.ErrState* errors if the on-disk log was rolled back,
	// tampered with or damaged since the last run.
	LogDir string
	// LogStore tunes the durable store when LogDir is set. With
	// LogStore.Shards > 1 the Manager also swaps its hot-path batcher
	// for a translog.ShardedAppender: every enrolled host maps to the
	// shard translog.ShardOf picks for its name, each host's attestation
	// verdicts buffer behind that host's own lock, and a merging
	// sequencer commits all hosts' batches as one Merkle batch per cycle
	// — per-host WAL streams, one tree-head signature and one
	// trust-anchor bump per cycle, so the audit log ingests a fleet of
	// VMs without serialising them.
	LogStore translog.StoreConfig
	// SealLog, when non-nil (and the Manager opens a durable log via
	// LogDir), anchors the log's newest signed tree head in an
	// enclave-sealed, monotonic-counter-stamped blob on this SGX
	// platform — the Manager's own enclave-rooted freshness memory. A
	// statedir rewound consistently (segments, sth.json and even every
	// witness's persisted head together) then still refuses to open,
	// with translog.ErrSealedRollback, because the counter in platform
	// NV outlives the disk. The anchor enclave is signed with the VM's
	// long-term key, whose MRSIGNER namespaces the counter — supply the
	// same Key across restarts (deployments load it from the statedir).
	SealLog *sgx.Platform
}

// hostRecord tracks one registered host.
type hostRecord struct {
	name     string
	conn     HostConn
	aik      *ecdsa.PublicKey // pinned TPM AIK (nil when host has no TPM)
	trusted  bool
	lastSeen time.Time
	last     *HostAppraisal
}

// Enrollment is one provisioned VNF.
type Enrollment struct {
	VNF        string
	Host       string
	CommonName string
	Serial     string
	Cert       *x509.Certificate
	// codec continues the provisioning channel (revocation uses it).
	codec   *secchan.RecordCodec
	hmacKey []byte
	// EnclaveMeasurement is the attested credential-enclave identity.
	EnclaveMeasurement sgx.Measurement
	EnrolledAt         time.Time
}

// Manager is the Verification Manager.
type Manager struct {
	name string
	key  *ecdsa.PrivateKey
	spid sgx.SPID
	iasC ias.QuoteVerifier
	ca   *pki.CA

	policy       Policy
	provMode     enclaveapp.ProvisionMode
	certValidity time.Duration

	goldenIMA *ima.GoldenDB

	// tlog is the transparency log recording every trust decision;
	// tlogAppender batches the hot-path attestation entries — the single
	// Appender, or the per-host ShardedAppender when the log store is
	// sharded. tlogOwned marks a durable log the Manager opened itself
	// (from Config.LogDir) and must therefore close.
	tlog         *translog.Log
	tlogOwned    bool
	tlogAppender translog.EntryAppender
	tlogShards   int

	tracer func(phase string, d time.Duration)

	mu          sync.Mutex
	expectAtt   map[sgx.Measurement]bool
	expectCred  map[sgx.Measurement]bool
	hosts       map[string]*hostRecord
	enrollments map[string]*Enrollment
	nonces      map[string]bool // issued, unconsumed nonces
}

// New creates a Manager with its embedded CA.
func New(cfg Config) (*Manager, error) {
	if cfg.IAS == nil {
		return nil, errors.New("verifier: config requires an IAS client")
	}
	key := cfg.Key
	if key == nil {
		var err error
		key, err = ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("verifier: generating VM key: %w", err)
		}
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy()
	}
	if cfg.ProvisionMode == "" {
		cfg.ProvisionMode = enclaveapp.ModeVMGenerated
	}
	if cfg.CertValidity <= 0 {
		cfg.CertValidity = pki.DefaultValidity
	}
	ca := cfg.CA
	if ca == nil {
		var err error
		ca, err = pki.NewCA(cfg.Name+" CA", 10*365*24*time.Hour)
		if err != nil {
			return nil, err
		}
	}
	tlog := cfg.Log
	ownsLog := false
	if tlog == nil {
		var err error
		if cfg.LogDir != "" {
			store := cfg.LogStore
			if cfg.SealLog != nil {
				// The anchor enclave is signed with the VM's long-term
				// key; the sealed blob binds (AAD) to the CA key that
				// signs tree heads, so it can never vouch for another
				// log's freshness. The anchor rides the store's anchor
				// chain: sealed on every committed batch, checked at
				// every open, closed with the log (OpenDurableLog
				// releases it on refused opens too).
				sealed, serr := translog.NewSealedHeadAnchor(cfg.SealLog, key,
					filepath.Join(cfg.LogDir, translog.SealedHeadFileName),
					ca.Certificate().PublicKey.(*ecdsa.PublicKey))
				if serr != nil {
					return nil, fmt.Errorf("verifier: launching sealed-head anchor: %w", serr)
				}
				store.Anchors = append(append([]translog.TrustAnchor(nil), store.Anchors...), sealed)
			}
			tlog, err = translog.OpenDurableLog(ca.Signer(), cfg.LogDir, store)
			ownsLog = true
		} else {
			tlog, err = translog.NewLog(ca.Signer())
		}
		if err != nil {
			return nil, err
		}
	}
	// The effective shard count is whatever the durable store pinned at
	// creation — a store opened with a different LogStore.Shards keeps
	// its original layout, and the Manager's appender and LogShard
	// mapping must agree with the streams the records actually land in.
	logShards := cfg.LogStore.Shards
	if tlog.Durable() {
		logShards = tlog.StoreShards()
	}
	var appender translog.EntryAppender
	if logShards > 1 {
		appender = translog.NewShardedAppender(tlog, translog.ShardedAppenderConfig{Shards: logShards})
	} else {
		appender = translog.NewAppender(tlog, translog.AppenderConfig{})
	}
	return &Manager{
		name:         cfg.Name,
		key:          key,
		spid:         cfg.SPID,
		iasC:         cfg.IAS,
		ca:           ca,
		tlog:         tlog,
		tlogOwned:    ownsLog,
		tlogAppender: appender,
		tlogShards:   logShards,
		policy:       cfg.Policy,
		provMode:     cfg.ProvisionMode,
		certValidity: cfg.CertValidity,
		goldenIMA:    ima.NewGoldenDB(),
		expectAtt:    make(map[sgx.Measurement]bool),
		expectCred:   make(map[sgx.Measurement]bool),
		hosts:        make(map[string]*hostRecord),
		enrollments:  make(map[string]*Enrollment),
		nonces:       make(map[string]bool),
	}, nil
}

// SetTracer installs a phase-timing callback used by the experiment
// harness to attribute latency to the workflow steps of Figure 1. Phases:
// "host-evidence" (step 1), "host-appraisal" (step 2), "vnf-attestation"
// (steps 3–4), "provisioning" (step 5).
func (m *Manager) SetTracer(t func(phase string, d time.Duration)) { m.tracer = t }

// trace reports one phase duration when a tracer is installed.
func (m *Manager) trace(phase string, start time.Time) {
	if m.tracer != nil {
		m.tracer(phase, time.Since(start))
	}
}

// PublicKey returns the VM's long-term public key (baked into credential
// enclaves).
func (m *Manager) PublicKey() *ecdsa.PublicKey { return &m.key.PublicKey }

// CA returns the embedded certificate authority.
func (m *Manager) CA() *pki.CA { return m.ca }

// GoldenIMA returns the expected-measurement database.
func (m *Manager) GoldenIMA() *ima.GoldenDB { return m.goldenIMA }

// Policy returns the active appraisal policy.
func (m *Manager) Policy() Policy { return m.policy }

// PinAttestationMeasurement registers an acceptable integrity-attestation
// enclave identity.
func (m *Manager) PinAttestationMeasurement(mr sgx.Measurement) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expectAtt[mr] = true
}

// PinCredentialMeasurement registers an acceptable credential enclave
// identity.
func (m *Manager) PinCredentialMeasurement(mr sgx.Measurement) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expectCred[mr] = true
}

// RegisterHost adds a container host; aik pins its TPM identity (nil for
// TPM-less hosts).
func (m *Manager) RegisterHost(name string, conn HostConn, aik *ecdsa.PublicKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hosts[name] = &hostRecord{name: name, conn: conn, aik: aik}
}

// Hosts lists registered hosts with their trust state.
type HostStatus struct {
	Name     string
	Trusted  bool
	LastSeen time.Time
}

// Hosts returns registered host statuses sorted by name.
func (m *Manager) Hosts() []HostStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HostStatus, 0, len(m.hosts))
	for _, h := range m.hosts {
		out = append(out, HostStatus{Name: h.name, Trusted: h.trusted, LastSeen: h.lastSeen})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NewNonce issues a fresh attestation nonce (tracked for single use).
func (m *Manager) NewNonce() []byte {
	n := make([]byte, 16)
	if _, err := rand.Read(n); err != nil {
		panic("verifier: nonce entropy unavailable: " + err.Error())
	}
	m.mu.Lock()
	m.nonces[string(n)] = true
	m.mu.Unlock()
	return n
}

// consumeNonce validates single-use freshness.
func (m *Manager) consumeNonce(n []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.nonces[string(n)] {
		return false
	}
	delete(m.nonces, string(n))
	return true
}

// NewHMACKey generates a per-VNF message-authentication key (paper §2:
// the VM "generates the HMAC key and nonces").
func (m *Manager) NewHMACKey() []byte {
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		panic("verifier: key entropy unavailable: " + err.Error())
	}
	return k
}

// VerifyVNFMAC checks a MAC produced by an enrolled VNF's enclave with its
// provisioned HMAC key.
func (m *Manager) VerifyVNFMAC(vnf string, data, mac []byte) bool {
	m.mu.Lock()
	e, ok := m.enrollments[vnf]
	m.mu.Unlock()
	if !ok {
		return false
	}
	h := hmac.New(sha256.New, e.hmacKey)
	h.Write(data)
	return hmac.Equal(h.Sum(nil), mac)
}

// Enrollments lists enrolled VNFs sorted by name.
func (m *Manager) Enrollments() []Enrollment {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Enrollment, 0, len(m.enrollments))
	for _, e := range m.enrollments {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VNF < out[j].VNF })
	return out
}

// Enrollment returns one enrollment record.
func (m *Manager) Enrollment(vnf string) (*Enrollment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.enrollments[vnf]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotEnrolled, vnf)
	}
	cp := *e
	return &cp, nil
}

// RevocationChecker returns the hook the controller installs to reject
// revoked client certificates.
func (m *Manager) RevocationChecker() func(*x509.Certificate) error {
	return func(cert *x509.Certificate) error {
		if m.ca.IsRevoked(cert.SerialNumber) {
			return pki.ErrRevoked
		}
		return nil
	}
}

// IssueControllerCert issues the network controller's server certificate
// from the VM's CA (so VNFs can authenticate the controller with the same
// root).
func (m *Manager) IssueControllerCert(cn string, dnsNames []string, pub crypto.PublicKey) (*x509.Certificate, error) {
	return m.ca.IssueServerCert(cn, dnsNames, nil, pub, 10*365*24*time.Hour)
}

// verifyTPMEvidence checks the hardware anchor: AIK signature, nonce
// freshness, and IML-aggregate-to-PCR equality.
func verifyTPMEvidence(aik *ecdsa.PublicKey, ev *enclaveapp.HostEvidence, list *ima.List) error {
	if ev.TPMQuote == nil {
		return ErrTPMRequired
	}
	if aik == nil {
		return errors.New("verifier: host has no pinned AIK")
	}
	if err := tpm.VerifyQuote(aik, ev.TPMQuote, ev.Nonce); err != nil {
		return fmt.Errorf("verifier: TPM quote: %w", err)
	}
	if len(ev.TPMQuote.PCRValues) != 1 || list.Aggregate() != ev.TPMQuote.PCRValues[0] {
		return ErrTPMMismatch
	}
	return nil
}
