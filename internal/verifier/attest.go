package verifier

import (
	"encoding/base64"
	"fmt"
	"time"

	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/ias"
	"vnfguard/internal/ima"
	"vnfguard/internal/sgx"
)

// HostAppraisal is the outcome of steps 1–2 for one host.
type HostAppraisal struct {
	Host        string
	Trusted     bool
	QuoteStatus ias.QuoteStatus
	IMAResult   ima.AppraisalResult
	TPMVerified bool
	// Findings collects human-readable failure reasons.
	Findings []string
	// IMLEntries counts appraised measurements.
	IMLEntries int
	At         time.Time
}

// AttestHost runs the remote attestation of a container host (steps 1–2 of
// Figure 1): challenge the integrity attestation enclave, validate the
// quote with IAS, check the evidence binding and enclave identity, and
// appraise the integrity measurement list.
func (m *Manager) AttestHost(name string) (*HostAppraisal, error) {
	m.mu.Lock()
	rec, ok := m.hosts[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}

	nonce := m.NewNonce()
	useTPM := m.policy.RequireTPM || rec.aik != nil
	evStart := time.Now()
	ev, err := rec.conn.Attest(nonce, useTPM)
	if err != nil {
		return nil, fmt.Errorf("verifier: host attestation request: %w", err)
	}
	m.trace("host-evidence", evStart)
	appStart := time.Now()
	app := m.appraiseHostEvidence(rec, nonce, ev)
	m.trace("host-appraisal", appStart)
	m.auditAppraisal(app)

	m.mu.Lock()
	rec.trusted = app.Trusted
	rec.lastSeen = app.At
	rec.last = app
	m.mu.Unlock()
	return app, nil
}

// appraiseHostEvidence performs every verification step; it never returns
// early on failure so the appraisal lists all findings (operators fix root
// causes faster with the complete picture).
func (m *Manager) appraiseHostEvidence(rec *hostRecord, nonce []byte, ev *enclaveapp.HostEvidence) *HostAppraisal {
	app := &HostAppraisal{Host: rec.name, Trusted: true, At: time.Now()}
	fail := func(format string, args ...any) {
		app.Trusted = false
		app.Findings = append(app.Findings, fmt.Sprintf(format, args...))
	}

	// Freshness: the evidence must carry the nonce we issued.
	if string(ev.Nonce) != string(nonce) || !m.consumeNonce(ev.Nonce) {
		fail("nonce mismatch or replay")
	}

	// Step 2: IAS validates the quote and revocation state.
	avr, err := m.iasC.VerifyQuote(ev.Quote, base64.StdEncoding.EncodeToString(nonce)[:24])
	if err != nil {
		fail("IAS verification: %v", err)
		return app
	}
	app.QuoteStatus = avr.Status()
	if !avr.Status().Trusted() {
		fail("%v: %s", ErrQuoteStatus, avr.Status())
	}

	quote, err := sgx.DecodeQuote(ev.Quote)
	if err != nil {
		fail("quote decode: %v", err)
		return app
	}
	// Channel binding: report data must commit to IML, nonce and TPM
	// quote.
	if quote.Body.ReportData != sgx.ReportDataFromHash(ev.BindingDigest()) {
		fail("%v", ErrEvidenceBinding)
	}
	// Enclave identity.
	m.mu.Lock()
	okMR := m.expectAtt[quote.Body.MRENCLAVE]
	m.mu.Unlock()
	if !okMR {
		fail("%v: attestation enclave %s", ErrUnexpectedMR, quote.Body.MRENCLAVE)
	}
	if quote.Body.Attributes.Debug && !m.policy.AllowDebug {
		fail("%v", ErrDebugEnclave)
	}
	if quote.Body.ISVSVN < m.policy.MinISVSVN {
		fail("%v: %d < %d", ErrSVNTooLow, quote.Body.ISVSVN, m.policy.MinISVSVN)
	}

	// Appraise the integrity measurement list.
	list, err := ima.ParseList(ev.IML)
	if err != nil {
		fail("IML parse: %v", err)
		return app
	}
	app.IMLEntries = list.Len()
	app.IMAResult = m.goldenIMA.Appraise(list)
	if !app.IMAResult.Trusted {
		for _, f := range app.IMAResult.Findings {
			fail("IMA: %s", f)
		}
	}

	// Hardware root of trust (§4 extension).
	if m.policy.RequireTPM || ev.TPMQuote != nil {
		if err := verifyTPMEvidence(rec.aik, ev, list); err != nil {
			fail("%v", err)
		} else {
			app.TPMVerified = true
		}
	}
	return app
}

// HostTrusted reports whether a host's appraisal is current and trusted.
func (m *Manager) HostTrusted(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.hosts[name]
	if !ok || !rec.trusted {
		return false
	}
	if m.policy.ReattestAfter > 0 && time.Since(rec.lastSeen) > m.policy.ReattestAfter {
		return false
	}
	return true
}

// LastAppraisal returns the most recent appraisal for a host.
func (m *Manager) LastAppraisal(name string) (*HostAppraisal, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if rec.last == nil {
		return nil, fmt.Errorf("verifier: host %q never attested", name)
	}
	cp := *rec.last
	return &cp, nil
}

// LearnHostGolden attests a host in learning mode: the current IML is
// recorded as the golden baseline. Operators run this once against a
// known-good deployment.
func (m *Manager) LearnHostGolden(name string) error {
	m.mu.Lock()
	rec, ok := m.hosts[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	nonce := m.NewNonce()
	ev, err := rec.conn.Attest(nonce, false)
	if err != nil {
		return err
	}
	list, err := ima.ParseList(ev.IML)
	if err != nil {
		return err
	}
	m.goldenIMA.LearnFromList(list)
	return nil
}
