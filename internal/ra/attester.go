package ra

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"errors"
	"fmt"

	"vnfguard/internal/epid"
	"vnfguard/internal/sgx"
)

// Attester errors.
var (
	ErrMsg2MAC        = errors.New("ra: msg2 MAC invalid")
	ErrMsg2Signature  = errors.New("ra: msg2 challenger signature invalid")
	ErrMsg4MAC        = errors.New("ra: msg4 MAC invalid")
	ErrSessionState   = errors.New("ra: message out of session order")
	ErrNotTrusted     = errors.New("ra: challenger reported platform not trusted")
	ErrQuoteGenFailed = errors.New("ra: quote generation failed")
)

// QuoteFunc produces the attestation quote for the given report data. In
// the deployed system this runs EREPORT inside the attesting enclave and
// hands the report to the quoting enclave.
type QuoteFunc func(reportData sgx.ReportData) ([]byte, error)

// Attester is the enclave-side state machine. The challenger's public
// signing key is a construction parameter: in the paper's deployment it is
// baked into the credential enclave's measured code, so only the genuine
// Verification Manager can complete an exchange.
type Attester struct {
	gid      epid.GroupID
	spPub    *ecdsa.PublicKey
	priv     *ecdh.PrivateKey
	ga       []byte
	keys     sessionKeys
	haveKeys bool
	done     bool
}

// NewAttester starts a session and returns msg1.
func NewAttester(gid epid.GroupID, challengerPub *ecdsa.PublicKey) (*Attester, *Msg1, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("ra: generating ephemeral key: %w", err)
	}
	a := &Attester{
		gid:   gid,
		spPub: challengerPub,
		priv:  priv,
		ga:    priv.PublicKey().Bytes(),
	}
	return a, &Msg1{GID: gid, Ga: append([]byte(nil), a.ga...)}, nil
}

// ProcessMsg2 verifies the challenger's response, derives session keys,
// and produces msg3 containing a quote channel-bound to this exchange.
func (a *Attester) ProcessMsg2(m2 *Msg2, quote QuoteFunc) (*Msg3, error) {
	if a.haveKeys || a.done {
		return nil, ErrSessionState
	}
	gbPub, err := ecdh.P256().NewPublicKey(m2.Gb)
	if err != nil {
		return nil, fmt.Errorf("ra: msg2 Gb: %w", err)
	}
	// Verify the challenger's signature over (Gb ‖ Ga) before trusting
	// anything derived from Gb — this authenticates the exchange to the
	// provisioned Verification Manager identity.
	sigInput := append(append([]byte(nil), m2.Gb...), a.ga...)
	digest := sigDigest(sigInput)
	if !ecdsa.VerifyASN1(a.spPub, digest[:], m2.SigSP) {
		return nil, ErrMsg2Signature
	}
	shared, err := a.priv.ECDH(gbPub)
	if err != nil {
		return nil, fmt.Errorf("ra: ECDH: %w", err)
	}
	keys := deriveKeys(shared)
	if !macEqual(mac(keys.smk, m2.macInput()), m2.MAC) {
		return nil, ErrMsg2MAC
	}
	a.keys = keys
	a.haveKeys = true

	rd := sgx.ReportDataFromHash(reportDataFor(a.ga, m2.Gb, keys.vk))
	quoteBytes, err := quote(rd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrQuoteGenFailed, err)
	}
	m3 := &Msg3{Ga: append([]byte(nil), a.ga...), Quote: quoteBytes}
	m3.MAC = mac(keys.smk, m3.macInput())
	return m3, nil
}

// ProcessMsg4 authenticates the attestation result. On a trusted verdict
// the session keys become available for the secure channel.
func (a *Attester) ProcessMsg4(m4 *Msg4) error {
	if !a.haveKeys || a.done {
		return ErrSessionState
	}
	if !macEqual(mac(a.keys.mk, m4.macInput()), m4.MAC) {
		return ErrMsg4MAC
	}
	a.done = true
	if !m4.Trusted {
		return fmt.Errorf("%w: %s", ErrNotTrusted, m4.Status)
	}
	return nil
}

// SessionKey returns SK after a completed, trusted exchange.
func (a *Attester) SessionKey() ([SessionKeySize]byte, error) {
	if !a.done {
		return [SessionKeySize]byte{}, ErrSessionState
	}
	return a.keys.sk, nil
}

// MACKey returns MK after a completed, trusted exchange.
func (a *Attester) MACKey() ([32]byte, error) {
	if !a.done {
		return [32]byte{}, ErrSessionState
	}
	return a.keys.mk, nil
}
