package ra

import (
	"encoding/binary"
	"errors"

	"vnfguard/internal/epid"
)

// Message framing errors.
var ErrTruncated = errors.New("ra: truncated message")

// Msg1 opens the exchange: the attester's ephemeral ECDH public key and
// its platform's EPID group.
type Msg1 struct {
	GID epid.GroupID
	Ga  []byte // uncompressed P-256 point (65 bytes)
}

// Encode serialises msg1.
func (m *Msg1) Encode() []byte {
	out := make([]byte, 0, 4+4+len(m.Ga))
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(m.GID))
	out = append(out, u32[:]...)
	out = appendBytes(out, m.Ga)
	return out
}

// DecodeMsg1 parses msg1.
func DecodeMsg1(b []byte) (*Msg1, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	m := &Msg1{GID: epid.GroupID(binary.BigEndian.Uint32(b[:4]))}
	var err error
	if m.Ga, b, err = readBytes(b[4:]); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, errors.New("ra: trailing bytes in msg1")
	}
	return m, nil
}

// Msg2 is the challenger's response: its ephemeral key, service-provider
// ID, quote parameters, a signature binding both ephemeral keys to the
// challenger's long-term identity, an SMK MAC, and the current SigRL.
type Msg2 struct {
	Gb        []byte
	SPID      [16]byte
	QuoteType uint16 // 0 unlinkable, 1 linkable
	KDFID     uint16
	// SigSP is the challenger's ECDSA signature over (Gb ‖ Ga).
	SigSP []byte
	// MAC is SMK-keyed over the preceding fields.
	MAC [32]byte
	// SigRL is the signature revocation list for the attester's group.
	SigRL [][32]byte
}

// macInput returns the bytes covered by msg2's MAC.
func (m *Msg2) macInput() []byte {
	out := make([]byte, 0, len(m.Gb)+16+4+len(m.SigSP))
	out = append(out, m.Gb...)
	out = append(out, m.SPID[:]...)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], m.QuoteType)
	out = append(out, u16[:]...)
	binary.BigEndian.PutUint16(u16[:], m.KDFID)
	out = append(out, u16[:]...)
	out = append(out, m.SigSP...)
	return out
}

// Encode serialises msg2.
func (m *Msg2) Encode() []byte {
	out := appendBytes(nil, m.Gb)
	out = append(out, m.SPID[:]...)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], m.QuoteType)
	out = append(out, u16[:]...)
	binary.BigEndian.PutUint16(u16[:], m.KDFID)
	out = append(out, u16[:]...)
	out = appendBytes(out, m.SigSP)
	out = append(out, m.MAC[:]...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(m.SigRL)))
	out = append(out, n[:]...)
	for _, p := range m.SigRL {
		out = append(out, p[:]...)
	}
	return out
}

// DecodeMsg2 parses msg2.
func DecodeMsg2(b []byte) (*Msg2, error) {
	m := &Msg2{}
	var err error
	if m.Gb, b, err = readBytes(b); err != nil {
		return nil, err
	}
	if len(b) < 16+4 {
		return nil, ErrTruncated
	}
	copy(m.SPID[:], b[:16])
	m.QuoteType = binary.BigEndian.Uint16(b[16:18])
	m.KDFID = binary.BigEndian.Uint16(b[18:20])
	if m.SigSP, b, err = readBytes(b[20:]); err != nil {
		return nil, err
	}
	if len(b) < 32+4 {
		return nil, ErrTruncated
	}
	copy(m.MAC[:], b[:32])
	count := binary.BigEndian.Uint32(b[32:36])
	b = b[36:]
	if uint32(len(b)) != count*32 {
		return nil, ErrTruncated
	}
	m.SigRL = make([][32]byte, count)
	for i := range m.SigRL {
		copy(m.SigRL[i][:], b[i*32:(i+1)*32])
	}
	return m, nil
}

// Msg3 carries the attester's quote, channel-bound to the exchange via
// report data, and an SMK MAC over (Ga ‖ Quote).
type Msg3 struct {
	MAC   [32]byte
	Ga    []byte
	Quote []byte
}

func (m *Msg3) macInput() []byte {
	out := make([]byte, 0, len(m.Ga)+len(m.Quote))
	out = append(out, m.Ga...)
	out = append(out, m.Quote...)
	return out
}

// Encode serialises msg3.
func (m *Msg3) Encode() []byte {
	out := make([]byte, 0, 32+8+len(m.Ga)+len(m.Quote))
	out = append(out, m.MAC[:]...)
	out = appendBytes(out, m.Ga)
	out = appendBytes(out, m.Quote)
	return out
}

// DecodeMsg3 parses msg3.
func DecodeMsg3(b []byte) (*Msg3, error) {
	if len(b) < 32 {
		return nil, ErrTruncated
	}
	m := &Msg3{}
	copy(m.MAC[:], b[:32])
	var err error
	if m.Ga, b, err = readBytes(b[32:]); err != nil {
		return nil, err
	}
	if m.Quote, b, err = readBytes(b); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, errors.New("ra: trailing bytes in msg3")
	}
	return m, nil
}

// Msg4 is the attestation result delivered back to the enclave, MACed
// with MK so the enclave knows it came from the challenger it keyed with.
type Msg4 struct {
	Trusted bool
	// Status carries the IAS quote status (or appraisal failure reason).
	Status string
	MAC    [32]byte
}

func (m *Msg4) macInput() []byte {
	out := make([]byte, 0, 1+len(m.Status))
	if m.Trusted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, []byte(m.Status)...)
	return out
}

// Encode serialises msg4.
func (m *Msg4) Encode() []byte {
	out := make([]byte, 0, 1+4+len(m.Status)+32)
	if m.Trusted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendBytes(out, []byte(m.Status))
	out = append(out, m.MAC[:]...)
	return out
}

// DecodeMsg4 parses msg4.
func DecodeMsg4(b []byte) (*Msg4, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	m := &Msg4{Trusted: b[0] == 1}
	status, b, err := readBytes(b[1:])
	if err != nil {
		return nil, err
	}
	m.Status = string(status)
	if len(b) != 32 {
		return nil, ErrTruncated
	}
	copy(m.MAC[:], b)
	return m, nil
}

func appendBytes(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

func readBytes(b []byte) (val, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, ErrTruncated
	}
	return append([]byte(nil), b[:n]...), b[n:], nil
}
