package ra

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"testing"

	"vnfguard/internal/epid"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
)

// raFixture wires a platform with an enclave that can produce channel-
// bound quotes, plus the challenger's long-term key and IAS-side issuer.
type raFixture struct {
	issuer  *epid.Issuer
	plat    *sgx.Platform
	enclave *sgx.Enclave
	spKey   *ecdsa.PrivateKey
	// quoteFn produces quotes inside the enclave.
	quoteFn QuoteFunc
}

func newRAFixture(t *testing.T) *raFixture {
	t.Helper()
	issuer, err := epid.NewIssuer(200)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := sgx.NewPlatform("host", issuer, simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	spKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var lastReport *sgx.Report
	spec := sgx.EnclaveSpec{
		Name:       "cred",
		ProdID:     2,
		SVN:        1,
		Attributes: sgx.Attributes{Mode64: true},
		Modules: []sgx.CodeModule{{
			Name: "main",
			Code: []byte("credential enclave"),
			Handlers: map[string]sgx.ECallHandler{
				"report": func(ctx *sgx.Context, args []byte) ([]byte, error) {
					var rd sgx.ReportData
					copy(rd[:], args)
					lastReport = ctx.Report(plat.QE().TargetInfo(), rd)
					return nil, nil
				},
			},
		}},
	}
	signer, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sgx.SignEnclave(spec, signer)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := plat.Launch(spec, ss)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(enclave.Destroy)
	fx := &raFixture{issuer: issuer, plat: plat, enclave: enclave, spKey: spKey}
	fx.quoteFn = func(rd sgx.ReportData) ([]byte, error) {
		if _, err := enclave.ECall("report", rd[:]); err != nil {
			return nil, err
		}
		q, err := plat.QE().GetQuote(lastReport, sgx.SPID{7}, sgx.QuoteLinkable)
		if err != nil {
			return nil, err
		}
		return q.Encode(), nil
	}
	return fx
}

// runExchange performs a full msg1..msg4 round trip with the given
// evidence check, returning both parties.
func runExchange(t *testing.T, fx *raFixture, check EvidenceCheck) (*Attester, *Challenger, error) {
	t.Helper()
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := att.ProcessMsg2(m2, fx.quoteFn)
	if err != nil {
		t.Fatal(err)
	}
	m4, chErr := ch.ProcessMsg3(m3, check)
	if m4 == nil {
		return att, ch, chErr
	}
	attErr := att.ProcessMsg4(m4)
	if chErr != nil {
		return att, ch, chErr
	}
	return att, ch, attErr
}

func acceptAll(quote []byte) (string, error) { return "OK", nil }

func TestExchangeHappyPath(t *testing.T) {
	fx := newRAFixture(t)
	att, ch, err := runExchange(t, fx, acceptAll)
	if err != nil {
		t.Fatalf("exchange failed: %v", err)
	}
	skA, err := att.SessionKey()
	if err != nil {
		t.Fatal(err)
	}
	skC, err := ch.SessionKey()
	if err != nil {
		t.Fatal(err)
	}
	if skA != skC {
		t.Fatal("session keys diverge")
	}
	mkA, _ := att.MACKey()
	mkC, _ := ch.MACKey()
	if mkA != mkC {
		t.Fatal("MAC keys diverge")
	}
	if ch.Quote() == nil {
		t.Fatal("challenger kept no evidence")
	}
	if ch.Quote().Body.MRENCLAVE != fx.enclave.Identity().MRENCLAVE {
		t.Fatal("evidence identity mismatch")
	}
}

func TestDistinctSessionsDeriveDistinctKeys(t *testing.T) {
	fx := newRAFixture(t)
	att1, _, err := runExchange(t, fx, acceptAll)
	if err != nil {
		t.Fatal(err)
	}
	att2, _, err := runExchange(t, fx, acceptAll)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := att1.SessionKey()
	k2, _ := att2.SessionKey()
	if k1 == k2 {
		t.Fatal("two sessions derived the same SK")
	}
}

func TestAttesterRejectsWrongChallengerKey(t *testing.T) {
	fx := newRAFixture(t)
	rogue, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	// Rogue challenger signs msg2 with a key the enclave does not trust.
	ch := NewChallenger(sgx.SPID{7}, rogue, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := att.ProcessMsg2(m2, fx.quoteFn); !errors.Is(err, ErrMsg2Signature) {
		t.Fatalf("got %v, want ErrMsg2Signature", err)
	}
}

func TestAttesterRejectsTamperedMsg2(t *testing.T) {
	fx := newRAFixture(t)
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.QuoteType ^= 1 // covered by MAC but not by the SP signature
	if _, err := att.ProcessMsg2(m2, fx.quoteFn); !errors.Is(err, ErrMsg2MAC) {
		t.Fatalf("got %v, want ErrMsg2MAC", err)
	}
}

func TestChallengerRejectsTamperedMsg3(t *testing.T) {
	fx := newRAFixture(t)
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := att.ProcessMsg2(m2, fx.quoteFn)
	if err != nil {
		t.Fatal(err)
	}
	m3.Quote[10] ^= 0xFF
	if _, err := ch.ProcessMsg3(m3, acceptAll); !errors.Is(err, ErrMsg3MAC) {
		t.Fatalf("got %v, want ErrMsg3MAC", err)
	}
}

func TestChallengerRejectsUnboundQuote(t *testing.T) {
	fx := newRAFixture(t)
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The enclave (maliciously) quotes unrelated report data.
	evilQuote := func(rd sgx.ReportData) ([]byte, error) {
		var unrelated sgx.ReportData
		copy(unrelated[:], "unrelated binding")
		return fx.quoteFn(unrelated)
	}
	m3, err := att.ProcessMsg2(m2, evilQuote)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.ProcessMsg3(m3, acceptAll); !errors.Is(err, ErrQuoteBinding) {
		t.Fatalf("got %v, want ErrQuoteBinding", err)
	}
}

func TestEvidenceRejectionFlowsToBothSides(t *testing.T) {
	fx := newRAFixture(t)
	reject := func(quote []byte) (string, error) {
		return "GROUP_REVOKED", errors.New("platform revoked")
	}
	att, ch, err := runExchange(t, fx, reject)
	if !errors.Is(err, ErrEvidenceRejected) && !errors.Is(err, ErrNotTrusted) {
		t.Fatalf("exchange error = %v", err)
	}
	if ch.Quote() != nil {
		t.Fatal("challenger kept evidence for rejected platform")
	}
	if _, err := ch.SessionKey(); !errors.Is(err, ErrSessionState) {
		t.Fatal("challenger session key available after rejection")
	}
	_ = att
}

func TestAttesterLearnsRejectionViaMsg4(t *testing.T) {
	fx := newRAFixture(t)
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := att.ProcessMsg2(m2, fx.quoteFn)
	if err != nil {
		t.Fatal(err)
	}
	m4, _ := ch.ProcessMsg3(m3, func([]byte) (string, error) {
		return "SIGNATURE_INVALID", errors.New("nope")
	})
	if m4 == nil {
		t.Fatal("no msg4 produced on rejection")
	}
	if err := att.ProcessMsg4(m4); !errors.Is(err, ErrNotTrusted) {
		t.Fatalf("got %v, want ErrNotTrusted", err)
	}
	if _, err := att.SessionKey(); err != nil {
		// Keys exist but the exchange failed; either behaviour is
		// acceptable as long as no panic — document completion.
		t.Logf("session key after rejection: %v", err)
	}
}

func TestAttesterRejectsForgedMsg4(t *testing.T) {
	fx := newRAFixture(t)
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := att.ProcessMsg2(m2, fx.quoteFn); err != nil {
		t.Fatal(err)
	}
	forged := &Msg4{Trusted: true, Status: "OK"} // no valid MAC
	if err := att.ProcessMsg4(forged); !errors.Is(err, ErrMsg4MAC) {
		t.Fatalf("got %v, want ErrMsg4MAC", err)
	}
}

func TestSessionOrderEnforced(t *testing.T) {
	fx := newRAFixture(t)
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := att.ProcessMsg4(&Msg4{}); !errors.Is(err, ErrSessionState) {
		t.Fatal("msg4 before msg2 accepted")
	}
	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	if _, err := ch.ProcessMsg3(&Msg3{}, acceptAll); !errors.Is(err, ErrSessionState) {
		t.Fatal("msg3 before msg1 accepted")
	}
	if _, err := ch.ProcessMsg1(m1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.ProcessMsg1(m1, nil); !errors.Is(err, ErrSessionState) {
		t.Fatal("duplicate msg1 accepted")
	}
}

func TestMessageEncodingRoundTrips(t *testing.T) {
	fx := newRAFixture(t)
	att, m1, err := NewAttester(fx.issuer.GroupID(), &fx.spKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DecodeMsg1(m1.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d1.GID != m1.GID || string(d1.Ga) != string(m1.Ga) {
		t.Fatal("msg1 round trip mismatch")
	}

	ch := NewChallenger(sgx.SPID{7}, fx.spKey, sgx.QuoteLinkable)
	sigrl := [][32]byte{{1}, {2}}
	m2, err := ch.ProcessMsg1(d1, sigrl)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeMsg2(m2.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.SigRL) != 2 || d2.SigRL[0] != sigrl[0] {
		t.Fatal("msg2 sigrl round trip mismatch")
	}

	m3, err := att.ProcessMsg2(d2, fx.quoteFn)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := DecodeMsg3(m3.Encode())
	if err != nil {
		t.Fatal(err)
	}
	m4, err := ch.ProcessMsg3(d3, acceptAll)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := DecodeMsg4(m4.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := att.ProcessMsg4(d4); err != nil {
		t.Fatalf("full serialized exchange failed: %v", err)
	}
}

func TestDecodeTruncation(t *testing.T) {
	for _, n := range []int{0, 3, 7} {
		buf := make([]byte, n)
		if _, err := DecodeMsg1(buf); err == nil {
			t.Errorf("msg1 decoded from %d bytes", n)
		}
		if _, err := DecodeMsg2(buf); err == nil {
			t.Errorf("msg2 decoded from %d bytes", n)
		}
		if _, err := DecodeMsg3(buf); err == nil {
			t.Errorf("msg3 decoded from %d bytes", n)
		}
		if _, err := DecodeMsg4(buf); err == nil {
			t.Errorf("msg4 decoded from %d bytes", n)
		}
	}
}

func TestKDFDeterministicAndLabelSeparated(t *testing.T) {
	secret := []byte("shared secret bytes")
	k1 := deriveKeys(secret)
	k2 := deriveKeys(secret)
	if k1.smk != k2.smk || k1.sk != k2.sk || k1.mk != k2.mk || k1.vk != k2.vk {
		t.Fatal("KDF not deterministic")
	}
	if k1.smk == k1.mk || k1.smk == k1.vk || k1.mk == k1.vk {
		t.Fatal("subkeys collide across labels")
	}
	k3 := deriveKeys([]byte("different secret"))
	if k3.sk == k1.sk {
		t.Fatal("distinct secrets derive the same SK")
	}
}
