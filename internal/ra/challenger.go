package ra

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"vnfguard/internal/sgx"
)

// Challenger errors.
var (
	ErrMsg3MAC          = errors.New("ra: msg3 MAC invalid")
	ErrMsg3GaMismatch   = errors.New("ra: msg3 Ga differs from msg1")
	ErrQuoteBinding     = errors.New("ra: quote report data does not bind this exchange")
	ErrEvidenceRejected = errors.New("ra: attestation evidence rejected")
)

// EvidenceCheck validates the quote (IAS verification plus any appraisal
// of the quoted identity). It returns a human-readable status string used
// in msg4, and an error when the platform must not be trusted.
type EvidenceCheck func(quote []byte) (status string, err error)

// Challenger is the service-provider-side state machine (one session).
type Challenger struct {
	spid      sgx.SPID
	signKey   *ecdsa.PrivateKey
	quoteType sgx.QuoteSignType

	priv  *ecdh.PrivateKey
	ga    []byte
	gb    []byte
	keys  sessionKeys
	state int // 0 new, 1 sent msg2, 2 done
	// quote holds the verified evidence after msg3.
	quote *sgx.Quote
}

// NewChallenger creates a session for one attester.
func NewChallenger(spid sgx.SPID, signKey *ecdsa.PrivateKey, quoteType sgx.QuoteSignType) *Challenger {
	return &Challenger{spid: spid, signKey: signKey, quoteType: quoteType}
}

// sigDigest hashes signature inputs for the challenger's long-term key.
func sigDigest(input []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("ra-msg2-sig-v1"))
	h.Write(input)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ProcessMsg1 derives the shared keys and builds msg2 carrying the given
// SigRL (fetched from IAS for the attester's GID).
func (c *Challenger) ProcessMsg1(m1 *Msg1, sigRL [][32]byte) (*Msg2, error) {
	if c.state != 0 {
		return nil, ErrSessionState
	}
	gaPub, err := ecdh.P256().NewPublicKey(m1.Ga)
	if err != nil {
		return nil, fmt.Errorf("ra: msg1 Ga: %w", err)
	}
	c.priv, err = ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ra: generating ephemeral key: %w", err)
	}
	c.ga = append([]byte(nil), m1.Ga...)
	c.gb = c.priv.PublicKey().Bytes()
	shared, err := c.priv.ECDH(gaPub)
	if err != nil {
		return nil, fmt.Errorf("ra: ECDH: %w", err)
	}
	c.keys = deriveKeys(shared)

	sigInput := append(append([]byte(nil), c.gb...), c.ga...)
	digest := sigDigest(sigInput)
	sig, err := ecdsa.SignASN1(rand.Reader, c.signKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("ra: signing msg2: %w", err)
	}
	m2 := &Msg2{
		Gb:        append([]byte(nil), c.gb...),
		QuoteType: uint16(c.quoteType),
		KDFID:     1,
		SigSP:     sig,
		SigRL:     sigRL,
	}
	copy(m2.SPID[:], c.spid[:])
	m2.MAC = mac(c.keys.smk, m2.macInput())
	c.state = 1
	return m2, nil
}

// ProcessMsg3 authenticates the quote's transport MAC and channel binding,
// delegates evidence validation, and returns the MACed result message.
// The returned msg4 reflects rejection rather than suppressing it, so the
// enclave learns the outcome; the error mirrors the verdict for the
// challenger's own control flow.
func (c *Challenger) ProcessMsg3(m3 *Msg3, check EvidenceCheck) (*Msg4, error) {
	if c.state != 1 {
		return nil, ErrSessionState
	}
	c.state = 2
	if !macEqual(mac(c.keys.smk, m3.macInput()), m3.MAC) {
		return nil, ErrMsg3MAC
	}
	if !bytes.Equal(m3.Ga, c.ga) {
		return nil, ErrMsg3GaMismatch
	}
	quote, err := sgx.DecodeQuote(m3.Quote)
	if err != nil {
		return nil, fmt.Errorf("ra: msg3 quote: %w", err)
	}
	wantRD := sgx.ReportDataFromHash(reportDataFor(c.ga, c.gb, c.keys.vk))
	if quote.Body.ReportData != wantRD {
		return nil, ErrQuoteBinding
	}

	status, err := check(m3.Quote)
	m4 := &Msg4{Trusted: err == nil, Status: status}
	m4.MAC = mac(c.keys.mk, m4.macInput())
	if err != nil {
		c.quote = nil
		return m4, fmt.Errorf("%w: %v", ErrEvidenceRejected, err)
	}
	c.quote = quote
	return m4, nil
}

// Quote returns the verified quote after a successful exchange.
func (c *Challenger) Quote() *sgx.Quote { return c.quote }

// SessionKey returns SK after a successful exchange.
func (c *Challenger) SessionKey() ([SessionKeySize]byte, error) {
	if c.state != 2 || c.quote == nil {
		return [SessionKeySize]byte{}, ErrSessionState
	}
	return c.keys.sk, nil
}

// MACKey returns MK after a successful exchange.
func (c *Challenger) MACKey() ([32]byte, error) {
	if c.state != 2 || c.quote == nil {
		return [32]byte{}, ErrSessionState
	}
	return c.keys.mk, nil
}
