// Package ra implements the SGX SDK remote-attestation key exchange: the
// msg0–msg4 protocol run between an attesting enclave and a challenging
// service provider (the paper's Verification Manager). A successful run
// yields attestation evidence (an EPID quote channel-bound to the key
// exchange) and shared session keys (SK, MK) under which credentials are
// provisioned — the mbedtls-SGX secure-channel role in the paper's
// implementation is played by internal/secchan keyed from this exchange.
//
// Structure follows the SDK protocol: ECDH on P-256, a key-derivation key
// from the shared secret, and SMK/SK/MK/VK subkeys. The SDK's AES-CMAC is
// replaced by HMAC-SHA256 (noted in DESIGN.md); message layouts and
// verification order are preserved.
package ra

import (
	"crypto/hmac"
	"crypto/sha256"
)

// Key sizes.
const (
	// SessionKeySize is the size of SK and MK.
	SessionKeySize = 16
)

// sessionKeys holds every subkey derived from one key exchange.
type sessionKeys struct {
	// smk authenticates handshake messages (msg2, msg3).
	smk [32]byte
	// sk protects provisioned payloads (secure-channel encryption key).
	sk [SessionKeySize]byte
	// mk authenticates post-handshake messages (msg4).
	mk [32]byte
	// vk binds the quote to the handshake via report data.
	vk [32]byte
}

// deriveKeys computes the SDK's key ladder from the ECDH shared secret.
func deriveKeys(sharedSecret []byte) sessionKeys {
	// KDK = MAC(0^32, little-endian(gab.x)); here MAC = HMAC-SHA256.
	var zero [32]byte
	kdkMAC := hmac.New(sha256.New, zero[:])
	kdkMAC.Write(sharedSecret)
	kdk := kdkMAC.Sum(nil)

	derive := func(label string) [32]byte {
		m := hmac.New(sha256.New, kdk)
		// SDK format: 0x01 ‖ label ‖ 0x00 ‖ keylen(0x80) ‖ 0x00.
		m.Write([]byte{0x01})
		m.Write([]byte(label))
		m.Write([]byte{0x00, 0x80, 0x00})
		var out [32]byte
		copy(out[:], m.Sum(nil))
		return out
	}

	var keys sessionKeys
	keys.smk = derive("SMK")
	sk := derive("SK")
	copy(keys.sk[:], sk[:SessionKeySize])
	keys.mk = derive("MK")
	keys.vk = derive("VK")
	return keys
}

// mac computes the protocol MAC (HMAC-SHA256 in place of AES-CMAC).
func mac(key [32]byte, data []byte) [32]byte {
	m := hmac.New(sha256.New, key[:])
	m.Write(data)
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

func macEqual(a, b [32]byte) bool { return hmac.Equal(a[:], b[:]) }

// reportDataFor computes the quote's channel binding:
// SHA-256(Ga ‖ Gb ‖ VK), zero-padded to 64 bytes by the caller.
func reportDataFor(ga, gb []byte, vk [32]byte) [32]byte {
	h := sha256.New()
	h.Write(ga)
	h.Write(gb)
	h.Write(vk[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
