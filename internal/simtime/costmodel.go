// Package simtime provides the calibrated timing substrate used to model
// hardware costs (SGX transitions, quote generation, IAS round trips, TPM
// operations) that the reproduction cannot incur natively.
//
// Two mechanisms are provided:
//
//   - A CostModel holding per-operation durations. Components charge
//     operations against the model instead of hard-coding sleeps, so every
//     experiment can run under DefaultCosts (realistic shapes) or ZeroCosts
//     (pure software cost, used for ablation).
//   - A Sleeper that realises a modeled duration in wall-clock time with
//     microsecond precision: short waits busy-spin (time.Sleep cannot hit
//     µs targets reliably), long waits sleep.
//
// Default values are taken from published measurements of SGX1-era
// hardware: enclave transitions cost roughly 8k–17k cycles (HotCalls,
// Weisse et al., ISCA'17; Eleos, Orenbach et al., EuroSys'17), EPID quote
// generation tens of milliseconds, and IAS verification a WAN round trip.
package simtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Op enumerates the modeled hardware operations.
type Op int

const (
	// OpECall is a host→enclave transition (EENTER + EEXIT pair amortised
	// to the call).
	OpECall Op = iota
	// OpOCall is an enclave→host transition.
	OpOCall
	// OpEReport is local report generation (EREPORT).
	OpEReport
	// OpQuote is quote generation by the quoting enclave (EPID signature
	// over a report).
	OpQuote
	// OpSeal is sealing-key derivation plus AEAD of a small blob (EGETKEY
	// + encrypt).
	OpSeal
	// OpUnseal is the inverse of OpSeal.
	OpUnseal
	// OpIASRoundTrip is one HTTPS exchange with the Intel Attestation
	// Service over a WAN.
	OpIASRoundTrip
	// OpTPMExtend is a TPM PCR extend.
	OpTPMExtend
	// OpTPMQuote is a TPM2_Quote over selected PCRs.
	OpTPMQuote
	// OpPageIn is an EPC page fault servicing (encrypted swap-in).
	OpPageIn
	// OpIMAMeasure is one IMA file measurement (hash + list append) as
	// performed by the kernel on exec/open.
	OpIMAMeasure
	// OpCounterRead is a monotonic-counter read by an enclave.
	OpCounterRead
	// OpCounterBump is a monotonic-counter increment by an enclave. The
	// modeled cost is that of a fast replay-protected counter service
	// (ROTE-style distributed counters / SGXv2-era virtual counters),
	// not Intel's flash-backed PSE counters, whose 80–250 ms increments
	// would dominate every sealed commit; deployments that need the PSE
	// shape can Set() it explicitly.
	OpCounterBump
	numOps
)

var opNames = [numOps]string{
	"ecall", "ocall", "ereport", "quote", "seal", "unseal",
	"ias_round_trip", "tpm_extend", "tpm_quote", "page_in", "ima_measure",
	"counter_read", "counter_bump",
}

// String returns the snake_case name of the operation.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// CostModel maps each modeled operation to a duration. The zero value
// charges nothing for every operation.
type CostModel struct {
	costs [numOps]time.Duration
	// sleeper realises charges in wall time; nil means charges are
	// accounted but not realised (virtual-only mode).
	sleeper *Sleeper

	// counters track how often and how long each op was charged.
	counts [numOps]atomic.Int64
	totals [numOps]atomic.Int64 // nanoseconds
}

// DefaultCosts returns a CostModel with literature-derived SGX1/TPM/WAN
// values. All experiments in EXPERIMENTS.md run under this model unless
// stated otherwise.
func DefaultCosts() *CostModel {
	m := &CostModel{sleeper: NewSleeper()}
	m.costs[OpECall] = 4 * time.Microsecond
	m.costs[OpOCall] = 4 * time.Microsecond
	m.costs[OpEReport] = 10 * time.Microsecond
	m.costs[OpQuote] = 35 * time.Millisecond
	m.costs[OpSeal] = 20 * time.Microsecond
	m.costs[OpUnseal] = 20 * time.Microsecond
	m.costs[OpIASRoundTrip] = 150 * time.Millisecond
	m.costs[OpTPMExtend] = 5 * time.Millisecond
	m.costs[OpTPMQuote] = 300 * time.Millisecond
	m.costs[OpPageIn] = 40 * time.Microsecond
	m.costs[OpIMAMeasure] = 50 * time.Microsecond
	m.costs[OpCounterRead] = 10 * time.Microsecond
	m.costs[OpCounterBump] = 50 * time.Microsecond
	return m
}

// ZeroCosts returns a CostModel that charges nothing. Operation counters
// still accumulate, so tests can assert on how many transitions occurred
// without paying for them.
func ZeroCosts() *CostModel { return &CostModel{} }

// ScaledCosts returns DefaultCosts with every duration multiplied by
// factor. Useful to keep bench runs short while preserving ratios.
func ScaledCosts(factor float64) *CostModel {
	m := DefaultCosts()
	for i := range m.costs {
		m.costs[i] = time.Duration(float64(m.costs[i]) * factor)
	}
	return m
}

// Set overrides the duration charged for op and returns the model for
// chaining.
func (m *CostModel) Set(op Op, d time.Duration) *CostModel {
	m.costs[op] = d
	return m
}

// Cost reports the duration charged for op.
func (m *CostModel) Cost(op Op) time.Duration { return m.costs[op] }

// Charge records one occurrence of op and, when the model realises costs,
// blocks for the modeled duration.
func (m *CostModel) Charge(op Op) {
	m.ChargeN(op, 1)
}

// ChargeN records n occurrences of op as a single blocking wait of
// n × cost(op).
func (m *CostModel) ChargeN(op Op, n int) {
	if m == nil || n <= 0 {
		return
	}
	d := m.costs[op] * time.Duration(n)
	m.counts[op].Add(int64(n))
	m.totals[op].Add(int64(d))
	if m.sleeper != nil && d > 0 {
		m.sleeper.Wait(d)
	}
}

// Count reports how many times op has been charged.
func (m *CostModel) Count(op Op) int64 {
	if m == nil {
		return 0
	}
	return m.counts[op].Load()
}

// Total reports the cumulative modeled time charged to op.
func (m *CostModel) Total(op Op) time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.totals[op].Load())
}

// ResetCounters zeroes the per-op counters (costs are unchanged).
func (m *CostModel) ResetCounters() {
	for i := range m.counts {
		m.counts[i].Store(0)
		m.totals[i].Store(0)
	}
}

// Snapshot returns a copy of all per-op counts and totals keyed by op name.
func (m *CostModel) Snapshot() map[string]OpStats {
	out := make(map[string]OpStats, numOps)
	for i := Op(0); i < numOps; i++ {
		c := m.counts[i].Load()
		if c == 0 {
			continue
		}
		out[i.String()] = OpStats{Count: c, Total: time.Duration(m.totals[i].Load())}
	}
	return out
}

// OpStats aggregates charges for one operation.
type OpStats struct {
	Count int64
	Total time.Duration
}
