package simtime

import (
	"runtime"
	"time"
)

// spinThreshold is the boundary below which Wait busy-spins instead of
// sleeping. time.Sleep on Linux has ~50–100 µs wake-up jitter, which would
// swamp the 4 µs transition costs the model needs to realise.
const spinThreshold = 100 * time.Microsecond

// Sleeper realises modeled durations in wall-clock time. It is safe for
// concurrent use; it holds no state beyond configuration.
type Sleeper struct {
	threshold time.Duration
}

// NewSleeper returns a Sleeper with the default spin threshold.
func NewSleeper() *Sleeper { return &Sleeper{threshold: spinThreshold} }

// Wait blocks for approximately d: busy-spinning below the threshold for
// µs precision, sleeping above it.
func (s *Sleeper) Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	if d < s.threshold {
		spin(d)
		return
	}
	time.Sleep(d)
}

// spin busy-waits for d using the monotonic clock. Gosched is invoked
// periodically so that a spinning goroutine cannot starve the scheduler
// when GOMAXPROCS is small.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for i := 0; ; i++ {
		if !time.Now().Before(deadline) {
			return
		}
		if i%1024 == 1023 {
			runtime.Gosched()
		}
	}
}
