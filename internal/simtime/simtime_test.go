package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestZeroCostsChargesNothingButCounts(t *testing.T) {
	m := ZeroCosts()
	start := time.Now()
	m.ChargeN(OpECall, 1000)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("zero-cost charge took %v, expected ~0", elapsed)
	}
	if got := m.Count(OpECall); got != 1000 {
		t.Fatalf("Count(OpECall) = %d, want 1000", got)
	}
	if got := m.Total(OpECall); got != 0 {
		t.Fatalf("Total(OpECall) = %v, want 0", got)
	}
}

func TestDefaultCostsRealisesWait(t *testing.T) {
	m := DefaultCosts()
	start := time.Now()
	m.Charge(OpSeal) // 20 µs
	elapsed := time.Since(start)
	if elapsed < 15*time.Microsecond {
		t.Fatalf("Charge(OpSeal) returned after %v, want ≥ ~20µs", elapsed)
	}
	if got := m.Count(OpSeal); got != 1 {
		t.Fatalf("Count(OpSeal) = %d, want 1", got)
	}
	if got := m.Total(OpSeal); got != 20*time.Microsecond {
		t.Fatalf("Total(OpSeal) = %v, want 20µs", got)
	}
}

func TestChargeNAggregates(t *testing.T) {
	m := ZeroCosts().Set(OpOCall, time.Microsecond)
	m.ChargeN(OpOCall, 5)
	if got := m.Total(OpOCall); got != 5*time.Microsecond {
		t.Fatalf("Total = %v, want 5µs", got)
	}
}

func TestChargeNegativeOrZeroIsNoop(t *testing.T) {
	m := DefaultCosts()
	m.ChargeN(OpQuote, 0)
	m.ChargeN(OpQuote, -3)
	if got := m.Count(OpQuote); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
}

func TestNilModelIsSafe(t *testing.T) {
	var m *CostModel
	m.Charge(OpECall) // must not panic
	if m.Count(OpECall) != 0 || m.Total(OpECall) != 0 {
		t.Fatal("nil model should report zeros")
	}
}

func TestScaledCosts(t *testing.T) {
	m := ScaledCosts(0.5)
	if got, want := m.Cost(OpQuote), 35*time.Millisecond/2; got != want {
		t.Fatalf("scaled quote cost = %v, want %v", got, want)
	}
}

func TestResetCounters(t *testing.T) {
	m := ZeroCosts()
	m.Charge(OpECall)
	m.ResetCounters()
	if m.Count(OpECall) != 0 {
		t.Fatal("counters not reset")
	}
}

func TestSnapshotOnlyNonZero(t *testing.T) {
	m := ZeroCosts().Set(OpECall, time.Microsecond)
	m.ChargeN(OpECall, 3)
	snap := m.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d entries, want 1", len(snap))
	}
	st, ok := snap["ecall"]
	if !ok {
		t.Fatal("snapshot missing ecall")
	}
	if st.Count != 3 || st.Total != 3*time.Microsecond {
		t.Fatalf("snapshot = %+v", st)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpECall:        "ecall",
		OpIASRoundTrip: "ias_round_trip",
		OpIMAMeasure:   "ima_measure",
		Op(99):         "op(99)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestSleeperSpinPrecision(t *testing.T) {
	s := NewSleeper()
	const target = 50 * time.Microsecond
	start := time.Now()
	s.Wait(target)
	elapsed := time.Since(start)
	if elapsed < target {
		t.Fatalf("Wait returned early: %v < %v", elapsed, target)
	}
	if elapsed > 40*target {
		t.Fatalf("Wait overshot grossly: %v", elapsed)
	}
}

func TestSleeperZeroAndNegative(t *testing.T) {
	s := NewSleeper()
	start := time.Now()
	s.Wait(0)
	s.Wait(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("Wait(≤0) should return immediately")
	}
}

func TestConcurrentCharges(t *testing.T) {
	m := ZeroCosts().Set(OpECall, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Charge(OpECall)
			}
		}()
	}
	wg.Wait()
	if got := m.Count(OpECall); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}
