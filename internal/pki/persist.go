package pki

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"time"
)

// KeyPEM exports the CA private key (PKCS#8). Handle with the same care
// as any CA key; multi-process deployments pass it between the init and
// run phases of the Verification Manager.
func (ca *CA) KeyPEM() ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(ca.key)
	if err != nil {
		return nil, fmt.Errorf("pki: exporting CA key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// LoadCA reconstructs a CA from its certificate and key PEM. Serial
// numbers restart from a time-derived base so certificates issued across
// restarts do not collide.
func LoadCA(certPEM, keyPEM []byte) (*CA, error) {
	cert, err := ParseCertPEM(certPEM)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(keyPEM)
	if block == nil || block.Type != "PRIVATE KEY" {
		return nil, errors.New("pki: no private key PEM block")
	}
	keyAny, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing CA key: %w", err)
	}
	key, ok := keyAny.(*ecdsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("pki: CA key type %T unsupported", keyAny)
	}
	if !key.PublicKey.Equal(cert.PublicKey) {
		return nil, errors.New("pki: CA key does not match certificate")
	}
	return &CA{
		key:        key,
		cert:       cert,
		nextSerial: time.Now().UnixNano(),
		revoked:    make(map[string]time.Time),
	}, nil
}
