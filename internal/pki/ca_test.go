package pki

import (
	"crypto/x509"
	"errors"
	"net"
	"testing"
	"time"
)

func newCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("vnfguard test CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func issueClient(t *testing.T, ca *CA, cn string) *x509.Certificate {
	t.Helper()
	key, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	csr, err := CreateCSR(cn, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.SignClientCSR(csr, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func TestCASelfSigned(t *testing.T) {
	ca := newCA(t)
	cert := ca.Certificate()
	if !cert.IsCA {
		t.Fatal("CA cert lacks IsCA")
	}
	if err := cert.CheckSignatureFrom(cert); err != nil {
		t.Fatalf("self-signature invalid: %v", err)
	}
}

func TestIssueAndVerifyClient(t *testing.T) {
	ca := newCA(t)
	cert := issueClient(t, ca, "vnf-1")
	if err := ca.VerifyClient(cert); err != nil {
		t.Fatalf("valid client rejected: %v", err)
	}
	if cert.Subject.CommonName != "vnf-1" {
		t.Fatalf("CN = %q", cert.Subject.CommonName)
	}
}

func TestVerifyRejectsForeignCA(t *testing.T) {
	ca1, ca2 := newCA(t), newCA(t)
	cert := issueClient(t, ca2, "impostor")
	if err := ca1.VerifyClient(cert); !errors.Is(err, ErrChainInvalid) {
		t.Fatalf("got %v, want ErrChainInvalid", err)
	}
}

func TestVerifyRejectsServerCertAsClient(t *testing.T) {
	ca := newCA(t)
	key, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueServerCert("ctrl", []string{"controller"}, []net.IP{net.IPv4(127, 0, 0, 1)}, &key.PublicKey, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.VerifyClient(cert); err == nil {
		t.Fatal("server cert accepted for client auth")
	}
}

func TestRevocation(t *testing.T) {
	ca := newCA(t)
	cert := issueClient(t, ca, "vnf-1")
	if ca.IsRevoked(cert.SerialNumber) {
		t.Fatal("fresh cert already revoked")
	}
	ca.Revoke(cert.SerialNumber)
	if err := ca.VerifyClient(cert); !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v, want ErrRevoked", err)
	}
}

func TestCRL(t *testing.T) {
	ca := newCA(t)
	c1 := issueClient(t, ca, "vnf-1")
	c2 := issueClient(t, ca, "vnf-2")
	ca.Revoke(c1.SerialNumber)

	crl, der, err := ca.CRL(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(der) == 0 {
		t.Fatal("empty CRL DER")
	}
	if err := CheckAgainstCRL(c1, crl, ca.Certificate()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked cert passed CRL check: %v", err)
	}
	if err := CheckAgainstCRL(c2, crl, ca.Certificate()); err != nil {
		t.Fatalf("valid cert failed CRL check: %v", err)
	}
}

func TestCRLRejectsWrongIssuer(t *testing.T) {
	ca1, ca2 := newCA(t), newCA(t)
	cert := issueClient(t, ca1, "vnf-1")
	crl, _, err := ca1.CRL(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAgainstCRL(cert, crl, ca2.Certificate()); err == nil {
		t.Fatal("CRL accepted under wrong issuer")
	}
}

func TestCRLNumberMonotonic(t *testing.T) {
	ca := newCA(t)
	crl1, _, err := ca.CRL(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	crl2, _, err := ca.CRL(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if crl2.Number.Cmp(crl1.Number) <= 0 {
		t.Fatal("CRL number not monotonic")
	}
}

func TestSignClientCSRRejectsGarbage(t *testing.T) {
	ca := newCA(t)
	if _, err := ca.SignClientCSR([]byte("not a csr"), time.Hour); !errors.Is(err, ErrBadCSR) {
		t.Fatalf("got %v, want ErrBadCSR", err)
	}
}

func TestSerialsUniqueAndCounted(t *testing.T) {
	ca := newCA(t)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		cert := issueClient(t, ca, "vnf")
		s := cert.SerialNumber.String()
		if seen[s] {
			t.Fatalf("duplicate serial %s", s)
		}
		seen[s] = true
	}
	if ca.Issued() != 10 {
		t.Fatalf("issued = %d, want 10", ca.Issued())
	}
}

func TestCertPEMRoundTrip(t *testing.T) {
	ca := newCA(t)
	pemBytes := ca.CertPEM()
	cert, err := ParseCertPEM(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Equal(ca.Certificate()) {
		t.Fatal("PEM round trip mismatch")
	}
	if _, err := ParseCertPEM([]byte("garbage")); err == nil {
		t.Fatal("garbage PEM accepted")
	}
}

func TestIssueServerCertProperties(t *testing.T) {
	ca := newCA(t)
	key, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueServerCert("controller", []string{"sdn.local"}, []net.IP{net.IPv4(10, 0, 0, 1)}, &key.PublicKey, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.DNSNames) != 1 || cert.DNSNames[0] != "sdn.local" {
		t.Fatalf("dns names %v", cert.DNSNames)
	}
	wantEKU := false
	for _, e := range cert.ExtKeyUsage {
		if e == x509.ExtKeyUsageServerAuth {
			wantEKU = true
		}
	}
	if !wantEKU {
		t.Fatal("missing server-auth EKU")
	}
	// Default validity applied.
	if cert.NotAfter.Sub(cert.NotBefore) < 23*time.Hour {
		t.Fatalf("validity too short: %v", cert.NotAfter.Sub(cert.NotBefore))
	}
}
