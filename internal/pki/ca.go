// Package pki implements the certificate authority embedded in the
// Verification Manager. The paper (§3) solves Floodlight's keystore-
// maintenance problem by provisioning the controller with one trusted CA
// and signing every freshly generated VNF client certificate with it; the
// controller then validates signatures instead of tracking individual
// certificates. This package provides that CA: issuance of server and
// client certificates (the latter from CSRs so private keys can stay
// inside enclaves), revocation with signed CRLs, and chain verification.
package pki

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"
)

// Errors.
var (
	ErrRevoked      = errors.New("pki: certificate revoked")
	ErrBadCSR       = errors.New("pki: invalid certificate request")
	ErrNotClient    = errors.New("pki: certificate lacks client-auth usage")
	ErrChainInvalid = errors.New("pki: certificate chain does not verify")
)

// DefaultValidity is the default lifetime of issued certificates. VNF
// credentials are short-lived by design: revocation plus expiry bound the
// exposure window of a compromised enclave.
const DefaultValidity = 24 * time.Hour

// CA is an in-memory certificate authority.
type CA struct {
	key  *ecdsa.PrivateKey
	cert *x509.Certificate

	mu         sync.Mutex
	nextSerial int64
	revoked    map[string]time.Time // serial (decimal) → revocation time
	issued     int
	crlNumber  int64
}

// GenerateKey returns a fresh P-256 key, the curve used throughout the
// deployment.
func GenerateKey() (*ecdsa.PrivateKey, error) {
	return ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
}

// NewCA creates a self-signed root with the given common name.
func NewCA(commonName string, validity time.Duration) (*CA, error) {
	key, err := GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("pki: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"vnfguard"}},
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(validity),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing CA certificate: %w", err)
	}
	return &CA{
		key:        key,
		cert:       cert,
		nextSerial: 2,
		revoked:    make(map[string]time.Time),
	}, nil
}

// Certificate returns the CA certificate.
func (ca *CA) Certificate() *x509.Certificate { return ca.cert }

// Signer exposes the CA key as a crypto.Signer for non-certificate
// signatures rooted in the same trust anchor (the transparency log signs
// its tree heads with it, under a domain-separated prefix).
func (ca *CA) Signer() crypto.Signer { return ca.key }

// CertPEM returns the CA certificate PEM (what gets provisioned into the
// controller's trust store).
func (ca *CA) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.cert.Raw})
}

// Pool returns a cert pool containing only this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

// Issued reports how many certificates this CA has signed.
func (ca *CA) Issued() int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.issued
}

func (ca *CA) takeSerial() *big.Int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	s := big.NewInt(ca.nextSerial)
	ca.nextSerial++
	ca.issued++
	return s
}

// IssueServerCert issues a TLS server certificate for the given names
// (used by the network controller and the Verification Manager's own
// endpoints). pub is the server's public key; its private key never
// touches the CA.
func (ca *CA) IssueServerCert(commonName string, dnsNames []string, ips []net.IP, pub crypto.PublicKey, validity time.Duration) (*x509.Certificate, error) {
	if validity <= 0 {
		validity = DefaultValidity
	}
	tmpl := &x509.Certificate{
		SerialNumber: ca.takeSerial(),
		Subject:      pkix.Name{CommonName: commonName},
		NotBefore:    time.Now().Add(-time.Minute),
		NotAfter:     time.Now().Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     dnsNames,
		IPAddresses:  ips,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, pub, ca.key)
	if err != nil {
		return nil, fmt.Errorf("pki: issuing server certificate: %w", err)
	}
	return x509.ParseCertificate(der)
}

// SignClientCSR validates a PKCS#10 request and issues a client-auth
// certificate bound to the CSR's subject and public key. This is step 5's
// issuance path: the key pair is generated inside the credential enclave,
// only the CSR leaves it.
func (ca *CA) SignClientCSR(csrDER []byte, validity time.Duration) (*x509.Certificate, error) {
	csr, err := x509.ParseCertificateRequest(csrDER)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCSR, err)
	}
	if err := csr.CheckSignature(); err != nil {
		return nil, fmt.Errorf("%w: proof of possession failed: %v", ErrBadCSR, err)
	}
	if validity <= 0 {
		validity = DefaultValidity
	}
	tmpl := &x509.Certificate{
		SerialNumber: ca.takeSerial(),
		Subject:      csr.Subject,
		NotBefore:    time.Now().Add(-time.Minute),
		NotAfter:     time.Now().Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, csr.PublicKey, ca.key)
	if err != nil {
		return nil, fmt.Errorf("pki: issuing client certificate: %w", err)
	}
	return x509.ParseCertificate(der)
}

// Revoke marks a serial as revoked.
func (ca *CA) Revoke(serial *big.Int) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.revoked[serial.String()] = time.Now()
}

// IsRevoked reports whether a serial has been revoked.
func (ca *CA) IsRevoked(serial *big.Int) bool {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	_, ok := ca.revoked[serial.String()]
	return ok
}

// CRL returns a freshly signed certificate revocation list.
func (ca *CA) CRL(validity time.Duration) (*x509.RevocationList, []byte, error) {
	if validity <= 0 {
		validity = time.Hour
	}
	ca.mu.Lock()
	entries := make([]x509.RevocationListEntry, 0, len(ca.revoked))
	for serial, when := range ca.revoked {
		n := new(big.Int)
		n.SetString(serial, 10)
		entries = append(entries, x509.RevocationListEntry{SerialNumber: n, RevocationTime: when})
	}
	ca.crlNumber++
	num := big.NewInt(ca.crlNumber)
	ca.mu.Unlock()

	tmpl := &x509.RevocationList{
		Number:                    num,
		ThisUpdate:                time.Now(),
		NextUpdate:                time.Now().Add(validity),
		RevokedCertificateEntries: entries,
	}
	der, err := x509.CreateRevocationList(rand.Reader, tmpl, ca.cert, ca.key)
	if err != nil {
		return nil, nil, fmt.Errorf("pki: signing CRL: %w", err)
	}
	parsed, err := x509.ParseRevocationList(der)
	if err != nil {
		return nil, nil, fmt.Errorf("pki: parsing CRL: %w", err)
	}
	return parsed, der, nil
}

// VerifyClient checks that a presented client certificate chains to this
// CA, carries client-auth usage, and is not revoked. It is what the
// controller's trusted-HTTPS mode runs per connection.
func (ca *CA) VerifyClient(cert *x509.Certificate) error {
	opts := x509.VerifyOptions{
		Roots:     ca.Pool(),
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	if _, err := cert.Verify(opts); err != nil {
		return fmt.Errorf("%w: %v", ErrChainInvalid, err)
	}
	hasClient := false
	for _, eku := range cert.ExtKeyUsage {
		if eku == x509.ExtKeyUsageClientAuth {
			hasClient = true
		}
	}
	if !hasClient {
		return ErrNotClient
	}
	if ca.IsRevoked(cert.SerialNumber) {
		return ErrRevoked
	}
	return nil
}

// CheckAgainstCRL verifies a certificate's revocation status using a
// distributed CRL (for verifiers that only hold the CRL, not the CA).
func CheckAgainstCRL(cert *x509.Certificate, crl *x509.RevocationList, issuer *x509.Certificate) error {
	if err := crl.CheckSignatureFrom(issuer); err != nil {
		return fmt.Errorf("pki: CRL signature: %w", err)
	}
	for _, e := range crl.RevokedCertificateEntries {
		if e.SerialNumber.Cmp(cert.SerialNumber) == 0 {
			return ErrRevoked
		}
	}
	return nil
}

// CreateCSR builds a PKCS#10 request for the given subject using signer
// (which may be an enclave-resident key that only exposes signing).
func CreateCSR(commonName string, signer crypto.Signer) ([]byte, error) {
	tmpl := &x509.CertificateRequest{
		Subject: pkix.Name{CommonName: commonName, Organization: []string{"vnfguard-vnf"}},
	}
	der, err := x509.CreateCertificateRequest(rand.Reader, tmpl, signer)
	if err != nil {
		return nil, fmt.Errorf("pki: creating CSR: %w", err)
	}
	return der, nil
}

// EncodeCertPEM renders a certificate as PEM.
func EncodeCertPEM(cert *x509.Certificate) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw})
}

// ParseCertPEM parses the first certificate block in a PEM bundle.
func ParseCertPEM(data []byte) (*x509.Certificate, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, errors.New("pki: no certificate PEM block")
	}
	return x509.ParseCertificate(block.Bytes)
}
