// Package tpm models the subset of a TPM 2.0 needed for the paper's
// future-work extension (§4): a hardware root of trust for the IMA
// measurement list. It provides PCR banks with extend semantics, an
// attestation identity key (AIK), signed quotes over PCR selections, and
// event-log replay.
//
// The threat it addresses is exactly the one §4 states: an adversary with
// root on the container host can rewrite the software-held IML, but cannot
// rewind a PCR; a TPM quote over PCR 10 therefore authenticates the list.
package tpm

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"vnfguard/internal/simtime"
)

// NumPCRs is the number of platform configuration registers.
const NumPCRs = 24

// Errors.
var (
	ErrPCRIndex      = errors.New("tpm: PCR index out of range")
	ErrBadQuote      = errors.New("tpm: quote signature invalid")
	ErrNonceMismatch = errors.New("tpm: quote nonce mismatch")
)

// Event is one entry of the TPM event log (what was extended where).
type Event struct {
	PCR    int
	Digest [32]byte
}

// TPM is one device instance.
type TPM struct {
	mu       sync.Mutex
	pcrs     [NumPCRs][32]byte
	aik      *ecdsa.PrivateKey
	eventLog []Event
	model    *simtime.CostModel
}

// New creates a TPM with zeroed PCRs and a fresh AIK.
func New(model *simtime.CostModel) (*TPM, error) {
	aik, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tpm: generating AIK: %w", err)
	}
	return &TPM{aik: aik, model: model}, nil
}

// AIKPublic returns the attestation identity public key. In deployments
// this is certified by a privacy CA; here the Verification Manager pins it
// at host registration.
func (t *TPM) AIKPublic() *ecdsa.PublicKey { return &t.aik.PublicKey }

// Extend folds digest into the indexed PCR: pcr = SHA-256(pcr ‖ digest).
func (t *TPM) Extend(index int, digest [32]byte) error {
	if index < 0 || index >= NumPCRs {
		return ErrPCRIndex
	}
	t.model.Charge(simtime.OpTPMExtend)
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	h.Write(t.pcrs[index][:])
	h.Write(digest[:])
	copy(t.pcrs[index][:], h.Sum(nil))
	t.eventLog = append(t.eventLog, Event{PCR: index, Digest: digest})
	return nil
}

// PCR returns the current value of the indexed register.
func (t *TPM) PCR(index int) ([32]byte, error) {
	if index < 0 || index >= NumPCRs {
		return [32]byte{}, ErrPCRIndex
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[index], nil
}

// EventLog returns a copy of the event log.
func (t *TPM) EventLog() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.eventLog))
	copy(out, t.eventLog)
	return out
}

// Quote is a signed attestation over a PCR selection (TPMS_ATTEST shape).
type Quote struct {
	Nonce     []byte
	PCRs      []int
	PCRValues [][32]byte
	// PCRDigest is SHA-256 over the selected PCR values in selection order.
	PCRDigest [32]byte
	Signature []byte // ASN.1 ECDSA by the AIK over the attested digest
}

// attestedDigest binds nonce, selection and PCR digest.
func attestedDigest(nonce []byte, pcrs []int, pcrDigest [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("tpm-quote-v1"))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(nonce)))
	h.Write(n[:])
	h.Write(nonce)
	for _, idx := range pcrs {
		binary.Write(h, binary.BigEndian, uint32(idx))
	}
	h.Write(pcrDigest[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Quote produces a signed quote over the selected PCRs with the given
// freshness nonce. Charges OpTPMQuote (TPMs are slow devices).
func (t *TPM) Quote(nonce []byte, pcrs []int) (*Quote, error) {
	for _, idx := range pcrs {
		if idx < 0 || idx >= NumPCRs {
			return nil, ErrPCRIndex
		}
	}
	t.model.Charge(simtime.OpTPMQuote)
	t.mu.Lock()
	values := make([][32]byte, len(pcrs))
	h := sha256.New()
	for i, idx := range pcrs {
		values[i] = t.pcrs[idx]
		h.Write(t.pcrs[idx][:])
	}
	t.mu.Unlock()
	var pcrDigest [32]byte
	copy(pcrDigest[:], h.Sum(nil))

	digest := attestedDigest(nonce, pcrs, pcrDigest)
	sig, err := ecdsa.SignASN1(rand.Reader, t.aik, digest[:])
	if err != nil {
		return nil, fmt.Errorf("tpm: signing quote: %w", err)
	}
	return &Quote{
		Nonce:     append([]byte(nil), nonce...),
		PCRs:      append([]int(nil), pcrs...),
		PCRValues: values,
		PCRDigest: pcrDigest,
		Signature: sig,
	}, nil
}

// VerifyQuote checks a quote under the AIK public key and the expected
// nonce, and that the carried PCR values hash to the signed digest.
func VerifyQuote(pub *ecdsa.PublicKey, q *Quote, nonce []byte) error {
	if string(q.Nonce) != string(nonce) {
		return ErrNonceMismatch
	}
	h := sha256.New()
	for _, v := range q.PCRValues {
		h.Write(v[:])
	}
	var pcrDigest [32]byte
	copy(pcrDigest[:], h.Sum(nil))
	if pcrDigest != q.PCRDigest {
		return ErrBadQuote
	}
	digest := attestedDigest(q.Nonce, q.PCRs, q.PCRDigest)
	if !ecdsa.VerifyASN1(pub, digest[:], q.Signature) {
		return ErrBadQuote
	}
	return nil
}

// ReplayEventLog recomputes the final value of a PCR from an event log,
// as a verifier does to match a log against a quoted PCR.
func ReplayEventLog(events []Event, pcr int) [32]byte {
	var val [32]byte
	for _, ev := range events {
		if ev.PCR != pcr {
			continue
		}
		h := sha256.New()
		h.Write(val[:])
		h.Write(ev.Digest[:])
		copy(val[:], h.Sum(nil))
	}
	return val
}
