package tpm

import (
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"

	"vnfguard/internal/simtime"
)

func newTPM(t *testing.T) *TPM {
	t.Helper()
	d, err := New(simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExtendAndRead(t *testing.T) {
	d := newTPM(t)
	zero, err := d.PCR(10)
	if err != nil {
		t.Fatal(err)
	}
	if zero != [32]byte{} {
		t.Fatal("fresh PCR not zero")
	}
	if err := d.Extend(10, sha256.Sum256([]byte("m1"))); err != nil {
		t.Fatal(err)
	}
	v1, _ := d.PCR(10)
	if v1 == [32]byte{} {
		t.Fatal("extend did not change PCR")
	}
	if err := d.Extend(10, sha256.Sum256([]byte("m2"))); err != nil {
		t.Fatal(err)
	}
	v2, _ := d.PCR(10)
	if v2 == v1 {
		t.Fatal("second extend did not change PCR")
	}
}

func TestExtendBounds(t *testing.T) {
	d := newTPM(t)
	if err := d.Extend(-1, [32]byte{}); !errors.Is(err, ErrPCRIndex) {
		t.Fatal("negative index accepted")
	}
	if err := d.Extend(NumPCRs, [32]byte{}); !errors.Is(err, ErrPCRIndex) {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := d.PCR(NumPCRs); !errors.Is(err, ErrPCRIndex) {
		t.Fatal("out-of-range read accepted")
	}
}

func TestQuoteVerify(t *testing.T) {
	d := newTPM(t)
	d.Extend(10, sha256.Sum256([]byte("ima entry")))
	nonce := []byte("fresh nonce")
	q, err := d.Quote(nonce, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(d.AIKPublic(), q, nonce); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestQuoteRejectsWrongNonce(t *testing.T) {
	d := newTPM(t)
	q, err := d.Quote([]byte("n1"), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(d.AIKPublic(), q, []byte("n2")); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("got %v, want ErrNonceMismatch", err)
	}
}

func TestQuoteRejectsTamperedPCRValues(t *testing.T) {
	d := newTPM(t)
	d.Extend(10, sha256.Sum256([]byte("x")))
	nonce := []byte("n")
	q, err := d.Quote(nonce, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	q.PCRValues[0][0] ^= 0xFF
	if err := VerifyQuote(d.AIKPublic(), q, nonce); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("got %v, want ErrBadQuote", err)
	}
}

func TestQuoteRejectsForeignAIK(t *testing.T) {
	d1, d2 := newTPM(t), newTPM(t)
	nonce := []byte("n")
	q, err := d1.Quote(nonce, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(d2.AIKPublic(), q, nonce); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("got %v, want ErrBadQuote", err)
	}
}

func TestQuotePCRSelectionValidated(t *testing.T) {
	d := newTPM(t)
	if _, err := d.Quote(nil, []int{10, 99}); !errors.Is(err, ErrPCRIndex) {
		t.Fatal("bad selection accepted")
	}
}

func TestEventLogReplayMatchesPCR(t *testing.T) {
	d := newTPM(t)
	for i := 0; i < 5; i++ {
		d.Extend(10, sha256.Sum256([]byte{byte(i)}))
	}
	d.Extend(11, sha256.Sum256([]byte("other")))
	want, _ := d.PCR(10)
	if got := ReplayEventLog(d.EventLog(), 10); got != want {
		t.Fatal("replay does not reproduce PCR 10")
	}
	want11, _ := d.PCR(11)
	if got := ReplayEventLog(d.EventLog(), 11); got != want11 {
		t.Fatal("replay does not reproduce PCR 11")
	}
}

func TestReplayPropertyArbitrarySequences(t *testing.T) {
	f := func(digests [][32]byte) bool {
		d, err := New(simtime.ZeroCosts())
		if err != nil {
			return false
		}
		for _, dg := range digests {
			if err := d.Extend(10, dg); err != nil {
				return false
			}
		}
		want, _ := d.PCR(10)
		return ReplayEventLog(d.EventLog(), 10) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteChargesCost(t *testing.T) {
	model := simtime.ZeroCosts()
	d, err := New(model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Quote(nil, []int{0}); err != nil {
		t.Fatal(err)
	}
	if model.Count(simtime.OpTPMQuote) != 1 {
		t.Fatal("quote cost not charged")
	}
	d.Extend(0, [32]byte{1})
	if model.Count(simtime.OpTPMExtend) != 1 {
		t.Fatal("extend cost not charged")
	}
}

// TestTamperResistanceScenario encodes the §4 threat: root rewrites the
// software log, but the TPM PCR still reflects the true history.
func TestTamperResistanceScenario(t *testing.T) {
	d := newTPM(t)
	evil := sha256.Sum256([]byte("evil binary"))
	d.Extend(10, evil)

	// Adversary forges a clean log omitting the evil entry.
	forged := []Event{{PCR: 10, Digest: sha256.Sum256([]byte("innocent binary"))}}
	replayed := ReplayEventLog(forged, 10)
	actual, _ := d.PCR(10)
	if replayed == actual {
		t.Fatal("forged log replays to the quoted PCR value")
	}
}
