// Package obs is the runtime telemetry plane: a dependency-free
// registry of counters, gauges, latency histograms and "last event"
// timestamps, with Prometheus text-format exposition, an expvar-style
// JSON snapshot and the pprof mux (expose.go), plus the per-cycle trace
// record the sharded append pipeline threads through its commit path
// (trace.go).
//
// The design contract is that the *write* side is lock-cheap: every
// instrument is a handful of atomics, and the registry mutex is touched
// only when an instrument is created (setup time) or the registry is
// scraped — never on Observe/Add/Set/Mark. A scrape therefore cannot
// block a sequencer commit, and a commit holding the log lock across an
// fsync cannot block a scrape. Instruments are resolved once (package
// init in the instrumented packages) and used forever; the hot path
// never performs a map lookup.
//
// A registry can be disabled wholesale (SetEnabled), turning every
// instrument operation into one atomic load — that is the switch the
// E17 telemetry-overhead benchmark flips to compare the instrumented
// pipeline against the bare one.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the instrument families for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindStamp
	kindHistogram
)

// series is one registered instrument: a metric family name plus a
// rendered label set.
type series struct {
	name   string // family name, e.g. translog_cycle_phase_seconds
	labels string // rendered `k="v",k2="v2"`, empty for no labels
	help   string
	kind   kind
	inst   any // *Counter, *Gauge, *Stamp or *Histogram
}

// key is the unique series identity within a registry.
func (s *series) key() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// Registry holds a set of instruments. The zero value is not usable;
// call NewRegistry (or use Default).
type Registry struct {
	enabled atomic.Bool

	// mu guards the series map only: instrument creation and scrape.
	// Instrument writes never touch it — see the package contract.
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{series: make(map[string]*series)}
	r.enabled.Store(true)
	return r
}

// def is the process-wide default registry the daemons expose.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// SetEnabled turns the whole registry on or off. Disabled, every
// instrument operation reduces to one atomic load; values stop moving
// but remain readable and scrapeable.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// renderLabels turns alternating key, value pairs into the canonical
// `k="v"` form. Values are escaped per the Prometheus text format.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		v := pairs[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		b.WriteString(v)
		b.WriteString(`"`)
	}
	return b.String()
}

// lookup returns the instrument registered under (name, labels),
// creating it via make when absent. Registering the same series twice
// returns the same instrument; registering it under a different kind is
// a programming error and panics.
func (r *Registry) lookup(k kind, name, help string, labels []string, make func() any) any {
	s := &series{name: name, labels: renderLabels(labels), help: help, kind: k}
	key := s.key()
	r.mu.RLock()
	got := r.series[key]
	r.mu.RUnlock()
	if got == nil {
		r.mu.Lock()
		got = r.series[key]
		if got == nil {
			s.inst = make()
			r.series[key] = s
			got = s
		}
		r.mu.Unlock()
	}
	if got.kind != k {
		panic(fmt.Sprintf("obs: series %s registered twice with different kinds", key))
	}
	return got.inst
}

// snapshot copies the registered series under the read lock; values are
// read afterwards through their own atomics.
func (r *Registry) snapshot() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Counter is a monotonically increasing count.
type Counter struct {
	reg *Registry
	v   atomic.Uint64
}

// Counter registers (or returns) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(kindCounter, name, help, labels, func() any { return &Counter{reg: r} }).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.reg.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, peer count).
type Gauge struct {
	reg *Registry
	v   atomic.Int64
}

// Gauge registers (or returns) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(kindGauge, name, help, labels, func() any { return &Gauge{reg: r} }).(*Gauge)
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the value by delta (negative to decrease). Deltas from
// independent writers aggregate correctly where Set would fight.
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Stamp is a monotonic "last time this happened" marker, exposed as a
// gauge holding Unix seconds. Zero means "never".
type Stamp struct {
	reg *Registry
	v   atomic.Int64 // Unix nanoseconds
}

// Stamp registers (or returns) the timestamp series name{labels}. Name
// it like *_unix_seconds: the exposed value is Unix seconds.
func (r *Registry) Stamp(name, help string, labels ...string) *Stamp {
	return r.lookup(kindStamp, name, help, labels, func() any { return &Stamp{reg: r} }).(*Stamp)
}

// Mark records "now".
func (s *Stamp) Mark() { s.Set(time.Now()) }

// Set records an explicit time (tests and replay).
func (s *Stamp) Set(t time.Time) {
	if s == nil || !s.reg.enabled.Load() {
		return
	}
	s.v.Store(t.UnixNano())
}

// Time returns the recorded time; ok=false when never marked.
func (s *Stamp) Time() (time.Time, bool) {
	ns := s.v.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Histogram latency buckets: exponential powers of two from 1µs, so
// histBound(0)=1µs, histBound(1)=2µs, … histBound(23)≈8.4s, plus an
// overflow (+Inf) bucket. Fixed bounds keep Observe allocation-free and
// branch-cheap; the range covers a cache-hit shard drain through a
// pathological multi-second fsync stall.
const histBuckets = 24

// histBound returns bucket i's upper bound in nanoseconds.
func histBound(i int) int64 { return int64(1000) << uint(i) }

// bucketIndex returns the bucket for duration d: the smallest i with
// d <= histBound(i), or histBuckets for overflow.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	us := (uint64(d) + 999) / 1000 // ceil to µs
	i := bits.Len64(us - 1)
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// Histogram is a latency distribution with atomic exponential buckets.
// Unlike metrics.Histogram (the offline bench harness), it keeps no
// samples: Observe is three atomic adds, safe on the append hot path.
type Histogram struct {
	reg     *Registry
	buckets [histBuckets + 1]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// Histogram registers (or returns) the latency series name{labels}.
// Name it like *_seconds: the exposed buckets and sum are in seconds.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.lookup(kindHistogram, name, help, labels, func() any { return &Histogram{reg: r} }).(*Histogram)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || !h.reg.enabled.Load() {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile approximates the q-quantile (0 < q <= 1) as the upper bound
// of the bucket the rank lands in — good enough for a snapshot glance;
// exact percentiles belong to the offline metrics.Histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return time.Duration(histBound(i))
		}
	}
	// Overflow bucket: report one step past the largest finite bound.
	return time.Duration(histBound(histBuckets))
}
