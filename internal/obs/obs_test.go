package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWritesDuringScrape hammers every instrument type from
// many goroutines while the registry is scraped concurrently — run
// under -race this pins that the write side and the exposition side
// share no unsynchronised state.
func TestConcurrentWritesDuringScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency")
	st := r.Stamp("test_last_unix_seconds", "last")

	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			r.Snapshot()
			// Creating series during a scrape must be safe too.
			r.Counter("test_created_mid_scrape_total", "late")
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				st.Mark()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scraped

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

// TestHotPathHoldsNoRegistryLock pins the package contract that a
// scrape (or anything else holding the registry mutex — e.g. a slow
// /metrics response) can never block an instrument write: the write
// side must complete while the registry lock is held. This is the
// property that keeps a scrape from ever stalling a sequencer commit
// that observes histograms while holding the log lock across an fsync.
func TestHotPathHoldsNoRegistryLock(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("locked_ops_total", "ops")
	g := r.Gauge("locked_depth", "depth")
	h := r.Histogram("locked_latency_seconds", "latency")
	st := r.Stamp("locked_last_unix_seconds", "last")

	r.mu.Lock()
	defer r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.Inc()
		g.Set(7)
		h.Observe(time.Millisecond)
		st.Mark()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("instrument write blocked while the registry lock was held")
	}
	if c.Value() != 1 || g.Value() != 7 || h.Count() != 1 {
		t.Fatalf("writes lost under held registry lock: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

// TestDisabledRegistryRecordsNothing pins the SetEnabled(false) switch
// the E17 overhead benchmark relies on.
func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("off_total", "off")
	h := r.Histogram("off_seconds", "off")
	r.SetEnabled(false)
	c.Add(5)
	h.Observe(time.Second)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded: c=%d h=%d", c.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Add(5)
	if c.Value() != 5 {
		t.Fatalf("re-enabled registry did not record: c=%d", c.Value())
	}
}

// TestBucketIndex pins the bucket boundaries.
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{8 * time.Second, 23},
		{9 * time.Second, histBuckets},
		{time.Minute, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestQuantileApproximation sanity-checks the bucketed quantiles.
func TestQuantileApproximation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q")
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket bound 128µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond) // bucket bound ~16ms
	}
	if got := h.Quantile(0.50); got != 128*time.Microsecond {
		t.Errorf("p50 = %v, want 128µs", got)
	}
	if got := h.Quantile(0.99); got < 10*time.Millisecond {
		t.Errorf("p99 = %v, want >= 10ms", got)
	}
}

// TestSameSeriesSameInstrument pins get-or-create idempotence.
func TestSameSeriesSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "dup", "shard", "3")
	b := r.Counter("dup_total", "dup", "shard", "3")
	if a != b {
		t.Fatal("same series returned two instruments")
	}
	other := r.Counter("dup_total", "dup", "shard", "4")
	if a == other {
		t.Fatal("different labels shared an instrument")
	}
}

// TestCycleTraceString pins the slow-cycle line's structured shape.
func TestCycleTraceString(t *testing.T) {
	tr := &CycleTrace{
		Entries:  2048,
		Hosts:    []ShardContribution{{Shard: 3, Entries: 1024}, {Shard: 7, Entries: 1024}},
		Gather:   1500 * time.Microsecond,
		Marshal:  2 * time.Millisecond,
		TreeHash: 3 * time.Millisecond,
		Sign:     500 * time.Microsecond,
		WALSync:  10 * time.Millisecond,
		Anchor:   time.Millisecond,
		Total:    18 * time.Millisecond,
	}
	want := `{"total_ms":18.000,"entries":2048,"phases_ms":{"gather":1.500,"marshal":2.000,"merkle":3.000,"sign":0.500,"wal_sync":10.000,"anchor":1.000},"shards":[{"shard":3,"entries":1024},{"shard":7,"entries":1024}]}`
	if got := tr.String(); got != want {
		t.Fatalf("trace line:\n got %s\nwant %s", got, want)
	}
	tr.Reset()
	if tr.Entries != 0 || len(tr.Hosts) != 0 || tr.Total != 0 {
		t.Fatal("Reset left state behind")
	}
}
