package obs

import (
	"strconv"
	"strings"
	"time"
)

// CycleTrace is the lightweight per-cycle record the sharded append
// pipeline fills as a sequencer cycle moves through its phases: which
// shard slots fed the cycle and how long each stage took. The struct is
// embedded in the sequencer's ping-ponged cycle buffers and reset per
// cycle, so steady-state tracing allocates nothing; its one consumer is
// the slow-cycle diagnostic log (ShardedAppenderConfig.SlowCycleBudget),
// which renders it as one structured line.
type CycleTrace struct {
	// Entries is the merged batch size.
	Entries int
	// Hosts lists the shard slots that contributed, in drain order.
	Hosts []ShardContribution

	// Phase durations, in pipeline order.
	Gather   time.Duration // draining shard buffers into the merged batch
	Marshal  time.Duration // arena marshal + leaf hashing (prepareEntriesInto)
	TreeHash time.Duration // parallel Merkle interior hashing + root
	Sign     time.Duration // tree-head signature
	WALSync  time.Duration // per-stream record writes and fsyncs
	Anchor   time.Duration // trust-anchor chain commit
	// Total is the end-to-end cycle latency (gather through anchor).
	Total time.Duration
}

// ShardContribution records one shard slot's share of a cycle.
type ShardContribution struct {
	Shard   int
	Entries int
}

// Reset clears the trace for reuse, keeping the Hosts capacity.
func (t *CycleTrace) Reset() {
	hosts := t.Hosts[:0]
	*t = CycleTrace{Hosts: hosts}
}

// String renders the trace as one structured (JSON) line:
// {"total_ms":…,"entries":…,"phases_ms":{…},"shards":[{"shard":…,"entries":…},…]}
func (t *CycleTrace) String() string {
	var b strings.Builder
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	b.WriteString(`{"total_ms":`)
	b.WriteString(ms(t.Total))
	b.WriteString(`,"entries":`)
	b.WriteString(strconv.Itoa(t.Entries))
	b.WriteString(`,"phases_ms":{"gather":`)
	b.WriteString(ms(t.Gather))
	b.WriteString(`,"marshal":`)
	b.WriteString(ms(t.Marshal))
	b.WriteString(`,"merkle":`)
	b.WriteString(ms(t.TreeHash))
	b.WriteString(`,"sign":`)
	b.WriteString(ms(t.Sign))
	b.WriteString(`,"wal_sync":`)
	b.WriteString(ms(t.WALSync))
	b.WriteString(`,"anchor":`)
	b.WriteString(ms(t.Anchor))
	b.WriteString(`},"shards":[`)
	for i, h := range t.Hosts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"shard":`)
		b.WriteString(strconv.Itoa(h.Shard))
		b.WriteString(`,"entries":`)
		b.WriteString(strconv.Itoa(h.Entries))
		b.WriteByte('}')
	}
	b.WriteString(`]}`)
	return b.String()
}
