package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with one series of every kind and
// fixed observations, so its exposition is byte-for-byte deterministic.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("demo_appended_entries_total", "Entries committed into the tree.")
	c.Add(12345)
	r.Counter("demo_drained_total", "Entries drained per shard.", "shard", "0").Add(40)
	r.Counter("demo_drained_total", "Entries drained per shard.", "shard", "10").Add(2)
	r.Counter("demo_drained_total", "Entries drained per shard.", "shard", "2").Add(17)
	r.Gauge("demo_buffered_entries", "Entries waiting in shard buffers.").Set(-3)
	r.Stamp("demo_last_commit_unix_seconds", "When the last commit landed.").
		Set(time.Unix(1700000000, 250000000))
	h := r.Histogram("demo_cycle_phase_seconds", "Cycle phase latency.", "phase", "sign")
	h.Observe(500 * time.Nanosecond) // le 1e-06
	h.Observe(90 * time.Microsecond) // le 0.000128
	h.Observe(3 * time.Millisecond)  // le 0.004096
	h.Observe(3 * time.Millisecond)  // le 0.004096
	h.Observe(2 * time.Second)       // le 2.097152
	h.Observe(20 * time.Second)      // +Inf overflow
	return r
}

// TestPrometheusGolden pins the exact text exposition format against a
// golden file: ordering, HELP/TYPE lines, label rendering, histogram
// bucket bounds and the counter/gauge/timestamp value formats.
func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHandlerEndpoints drives the HTTP mux end to end: /metrics serves
// the text format, /debug/vars decodes as JSON, pprof answers.
func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(metrics, "demo_appended_entries_total 12345") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, `demo_cycle_phase_seconds_bucket{phase="sign",le="+Inf"} 6`) {
		t.Errorf("/metrics missing histogram +Inf bucket:\n%s", metrics)
	}

	vars, _ := get("/debug/vars")
	var snap map[string]any
	if err := json.Unmarshal([]byte(vars), &snap); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if snap["demo_appended_entries_total"] != float64(12345) {
		t.Errorf("/debug/vars counter = %v", snap["demo_appended_entries_total"])
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

// TestLoopbackAddr pins the bind classification behind the
// -metrics-addr warning.
func TestLoopbackAddr(t *testing.T) {
	cases := map[string]bool{
		"127.0.0.1:0":    true,
		"127.0.0.1:9090": true,
		"localhost:9090": true,
		"[::1]:9090":     true,
		"0.0.0.0:9090":   false,
		":9090":          false,
		"10.0.0.5:9090":  false,
		"example.com:80": false,
	}
	for addr, want := range cases {
		if got := LoopbackAddr(addr); got != want {
			t.Errorf("LoopbackAddr(%q) = %v, want %v", addr, got, want)
		}
	}
}
