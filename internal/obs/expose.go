package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Exposition. /metrics serves the Prometheus text format; /debug/vars
// serves an expvar-style JSON snapshot (histograms summarised with
// approximate quantiles); /debug/pprof/* is the standard pprof mux.
// Output is sorted by series name so a scrape is deterministic —
// that is what the golden-file test pins.

// fmtFloat renders a float the way the Prometheus text format expects.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// seconds converts nanoseconds to the seconds unit the exposition uses.
func seconds(ns int64) float64 { return float64(ns) / 1e9 }

// WritePrometheus writes every registered series in the Prometheus text
// exposition format, sorted by (family, labels). It holds the registry
// read lock only while copying the series list — never while reading
// values or writing to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, s := range r.snapshot() {
		if s.name != lastFamily {
			lastFamily = s.name
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, typeName(s.kind))
		}
		writeSeries(&b, s)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeName(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		// Gauges and timestamps both expose as gauge.
		return "gauge"
	}
}

// writeSeries renders one series' sample lines.
func writeSeries(b *strings.Builder, s *series) {
	withLabels := func(extra string) string {
		labels := s.labels
		if extra != "" {
			if labels != "" {
				labels += ","
			}
			labels += extra
		}
		if labels == "" {
			return ""
		}
		return "{" + labels + "}"
	}
	switch inst := s.inst.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", s.name, withLabels(""), inst.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %d\n", s.name, withLabels(""), inst.Value())
	case *Stamp:
		var v float64
		if t, ok := inst.Time(); ok {
			v = seconds(t.UnixNano())
		}
		fmt.Fprintf(b, "%s%s %s\n", s.name, withLabels(""), fmtFloat(v))
	case *Histogram:
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			cum += inst.buckets[i].Load()
			le := `le="` + fmtFloat(seconds(histBound(i))) + `"`
			fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, withLabels(le), cum)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, withLabels(`le="+Inf"`), inst.Count())
		fmt.Fprintf(b, "%s_sum%s %s\n", s.name, withLabels(""), fmtFloat(seconds(inst.sum.Load())))
		fmt.Fprintf(b, "%s_count%s %d\n", s.name, withLabels(""), inst.Count())
	}
}

// Snapshot returns an expvar-style view of every series: counters and
// gauges as numbers, timestamps as Unix seconds, histograms summarised
// with count, sum and approximate quantiles. json.Marshal sorts the map
// keys, so the JSON form is deterministic too.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, s := range r.snapshot() {
		switch inst := s.inst.(type) {
		case *Counter:
			out[s.key()] = inst.Value()
		case *Gauge:
			out[s.key()] = inst.Value()
		case *Stamp:
			var v float64
			if t, ok := inst.Time(); ok {
				v = seconds(t.UnixNano())
			}
			out[s.key()] = v
		case *Histogram:
			out[s.key()] = map[string]any{
				"count":       inst.Count(),
				"sum_seconds": seconds(inst.sum.Load()),
				"p50_seconds": inst.Quantile(0.50).Seconds(),
				"p95_seconds": inst.Quantile(0.95).Seconds(),
				"p99_seconds": inst.Quantile(0.99).Seconds(),
			}
		}
	}
	return out
}

// Handler returns the registry's HTTP mux: /metrics, /debug/vars and
// /debug/pprof/*. The mux carries no authentication — bind it to
// loopback unless something in front of it adds auth.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the registry's Handler in the background,
// returning the listener (so ":0" callers can learn the bound port).
func (r *Registry) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	go http.Serve(ln, r.Handler())
	return ln, nil
}

// LoopbackAddr reports whether addr names a loopback bind. An empty
// host (":9090") binds every interface and is not loopback.
func LoopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// Start is the daemon-side convenience behind every -metrics-addr flag:
// empty addr disables the endpoint (nil listener, nil error); a
// non-loopback addr is served but loudly flagged, because the endpoint
// is unauthenticated (see the README threat-model note). logf (log.Printf
// shaped, may be nil) receives the bound address and any warning.
func Start(addr string, logf func(format string, args ...any)) (net.Listener, error) {
	if addr == "" {
		return nil, nil
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if !LoopbackAddr(addr) {
		logf("WARNING: metrics endpoint %s is not loopback-bound; it is unauthenticated (metrics, /debug/vars, pprof) — keep it local or front it with auth", addr)
	}
	ln, err := Default().Serve(addr)
	if err != nil {
		return nil, err
	}
	logf("metrics: http://%s/metrics (JSON snapshot /debug/vars, profiles /debug/pprof/)", ln.Addr())
	return ln, nil
}
