package core

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"vnfguard/internal/vnf"
)

// Step is one timed step of the Figure-1 workflow.
type Step struct {
	Number   int
	Name     string
	Duration time.Duration
	Detail   string
}

// WorkflowResult is the outcome of one end-to-end run.
type WorkflowResult struct {
	Steps    []Step
	Total    time.Duration
	Enrolled []string
}

// String renders the trace as the Figure-1 step list.
func (r *WorkflowResult) String() string {
	var b strings.Builder
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  step %d  %-42s %12v  %s\n", s.Number, s.Name, s.Duration.Round(10*time.Microsecond), s.Detail)
	}
	fmt.Fprintf(&b, "  total   %-42s %12v\n", "", r.Total.Round(10*time.Microsecond))
	return b.String()
}

// DefaultEnv is the standard VNF placement: programming switch 00:00:01
// between the external client (port 1) and the service (port 2).
func DefaultEnv() vnf.Env {
	return vnf.Env{Switch: "00:00:01", InPort: 1, OutPort: 2}
}

// StandardFirewall is the canonical demo VNF: allow HTTPS to the service
// network, drop everything else.
func StandardFirewall(name string) *vnf.Firewall {
	return &vnf.Firewall{
		InstanceName: name,
		Rules: []vnf.FWRule{
			{Allow: true, Proto: "tcp", DstPort: 443, Dst: netip.MustParsePrefix("10.0.0.0/24")},
			{Allow: false, Proto: "tcp", DstPort: 22},
		},
	}
}

// RunWorkflow executes the six steps of Figure 1 for the named VNFs on
// one host and returns the per-step trace:
//
//  1. the Verification Manager initiates remote attestation of the
//     container host (evidence collection),
//  2. the VM verifies the quote with IAS and appraises the IML,
//  3. the VM initiates remote attestation of the VNF enclaves,
//  4. the VM verifies the enclave quotes with IAS,
//  5. the VM generates and provisions credentials,
//  6. the VNFs establish TLS sessions from their enclaves and program
//     the network through the controller.
//
// Steps 3–4 and 5 repeat per VNF; their durations are summed.
func (d *Deployment) RunWorkflow(hostIdx int, vnfs []vnf.VNF) (*WorkflowResult, error) {
	if hostIdx < 0 || hostIdx >= len(d.Hosts) {
		return nil, fmt.Errorf("core: host index %d out of range", hostIdx)
	}
	hostName := d.HostName(hostIdx)
	res := &WorkflowResult{}
	start := time.Now()

	// Capture per-phase timings from the manager.
	var mu sync.Mutex
	phases := map[string]time.Duration{}
	d.VM.SetTracer(func(phase string, dur time.Duration) {
		mu.Lock()
		phases[phase] += dur
		mu.Unlock()
	})
	defer d.VM.SetTracer(nil)

	// Steps 1–2: host attestation and appraisal.
	app, err := d.VM.AttestHost(hostName)
	if err != nil {
		return nil, fmt.Errorf("core: host attestation: %w", err)
	}
	if !app.Trusted {
		return nil, fmt.Errorf("core: host %s not trusted: %v", hostName, app.Findings)
	}
	res.Steps = append(res.Steps,
		Step{1, "remote attestation of container host", phases["host-evidence"],
			fmt.Sprintf("IML entries: %d", app.IMLEntries)},
		Step{2, "IAS verification and IML appraisal", phases["host-appraisal"],
			fmt.Sprintf("quote status: %s, TPM: %v", app.QuoteStatus, app.TPMVerified)},
	)

	// Steps 3–5 per VNF.
	for _, v := range vnfs {
		if _, err := d.VM.EnrollVNF(hostName, v.Name()); err != nil {
			return nil, fmt.Errorf("core: enrolling %s: %w", v.Name(), err)
		}
		res.Enrolled = append(res.Enrolled, v.Name())
	}
	mu.Lock()
	raDur, provDur := phases["vnf-attestation"], phases["provisioning"]
	mu.Unlock()
	res.Steps = append(res.Steps,
		Step{3, "remote attestation of VNF enclaves", raDur,
			fmt.Sprintf("%d enclave(s), RA key exchange", len(vnfs))},
		Step{4, "IAS verification of enclave quotes", 0,
			"included in step 3 (quote validated within the exchange)"},
		Step{5, "credential generation and provisioning", provDur,
			fmt.Sprintf("mode: %s", provisionModeName(d))},
	)

	// Step 6: authenticated controller sessions from the enclaves.
	step6Start := time.Now()
	env := DefaultEnv()
	pushed := 0
	for _, v := range vnfs {
		ce, err := d.Hosts[hostIdx].CredentialEnclave(v.Name())
		if err != nil {
			return nil, err
		}
		inst, err := vnf.NewInstance(v, ce, d.ControllerURL(), ServerName, env, d.Opts.TLSMode)
		if err != nil {
			return nil, fmt.Errorf("core: connecting %s: %w", v.Name(), err)
		}
		if err := inst.Activate(); err != nil {
			return nil, fmt.Errorf("core: activating %s: %w", v.Name(), err)
		}
		pushed += len(v.Flows(env))
		inst.Client().CloseIdle()
	}
	res.Steps = append(res.Steps, Step{6, "VNF ↔ controller TLS from enclave", time.Since(step6Start),
		fmt.Sprintf("%d flow(s) pushed over %s, %s", pushed, d.Opts.Mode, d.Opts.TLSMode)})

	res.Total = time.Since(start)
	return res, nil
}

func provisionModeName(d *Deployment) string {
	if d.Opts.Provision == "" {
		return "vm-generated"
	}
	return string(d.Opts.Provision)
}
