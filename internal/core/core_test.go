package core

import (
	"errors"
	"net/netip"
	"strings"
	"testing"

	"vnfguard/internal/controller"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/netsim"
	"vnfguard/internal/verifier"
	"vnfguard/internal/vnf"
)

// newTrustedDeployment builds a deployment with one firewall VNF deployed
// and the golden baseline learned.
func newTrustedDeployment(t *testing.T, opts Options) *Deployment {
	t.Helper()
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.DeployVNF(0, "fw-1", "firewall"); err != nil {
		t.Fatal(err)
	}
	if err := d.LearnGolden(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWorkflowEndToEndTrustedHTTPS(t *testing.T) {
	d := newTrustedDeployment(t, Options{
		Mode:    controller.ModeTrustedHTTPS,
		Trust:   controller.TrustCA,
		TLSMode: enclaveapp.TLSFullSession,
	})
	res, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 6 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if len(res.Enrolled) != 1 || res.Enrolled[0] != "fw-1" {
		t.Fatalf("enrolled = %v", res.Enrolled)
	}
	// The firewall's flows are installed and attributed to the VNF's
	// authenticated identity.
	flows := d.Ctrl.FlowsOn("00:00:01")
	if len(flows) != 3 {
		t.Fatalf("flows = %+v", flows)
	}
	for _, f := range flows {
		if f.PushedBy != "fw-1" {
			t.Fatalf("flow %s pushed by %q", f.Name, f.PushedBy)
		}
	}
	// Forwarding behaviour matches the firewall policy: HTTPS to the
	// service subnet passes, SSH drops.
	https := netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.1.5"), IPDst: netip.MustParseAddr("10.0.0.10"),
		Proto: netsim.ProtoTCP, DstPort: 443, Payload: []byte("hello"),
	}
	del, err := d.Network.Inject("00:00:01", 1, https)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Delivered || del.Host != "svc-server" {
		t.Fatalf("https delivery = %+v", del)
	}
	ssh := https
	ssh.DstPort = 22
	del, err = d.Network.Inject("00:00:01", 1, ssh)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Dropped {
		t.Fatalf("ssh delivery = %+v", del)
	}
}

func TestWorkflowAllModeCombinations(t *testing.T) {
	modes := []controller.SecurityMode{controller.ModeHTTP, controller.ModeHTTPS, controller.ModeTrustedHTTPS}
	tlsModes := []enclaveapp.TLSMode{enclaveapp.TLSKeyInEnclave, enclaveapp.TLSFullSession}
	provModes := []enclaveapp.ProvisionMode{enclaveapp.ModeVMGenerated, enclaveapp.ModeCSR}
	for _, mode := range modes {
		for _, tm := range tlsModes {
			for _, pm := range provModes {
				name := mode.String() + "/" + tm.String() + "/" + string(pm)
				t.Run(name, func(t *testing.T) {
					d := newTrustedDeployment(t, Options{
						Mode: mode, Trust: controller.TrustCA,
						TLSMode: tm, Provision: pm,
					})
					res, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")})
					if err != nil {
						t.Fatal(err)
					}
					if res.Total <= 0 {
						t.Fatal("no total time")
					}
				})
			}
		}
	}
}

func TestWorkflowOverHTTPTransports(t *testing.T) {
	d := newTrustedDeployment(t, Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		TLSMode:        enclaveapp.TLSKeyInEnclave,
		HTTPTransports: true,
	})
	res, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Enrolled) != 1 {
		t.Fatalf("enrolled = %v", res.Enrolled)
	}
	if d.IAS.Reports() < 2 {
		t.Fatalf("IAS reports = %d (host + enclave expected)", d.IAS.Reports())
	}
}

func TestWorkflowBlockedOnCompromisedHost(t *testing.T) {
	d := newTrustedDeployment(t, Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	d.Hosts[0].TamperBinary("fw-1", "/usr/bin/firewall", []byte("rootkit"))
	_, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")})
	if err == nil || !strings.Contains(err.Error(), "not trusted") {
		t.Fatalf("compromised host workflow: %v", err)
	}
	// No credentials were issued.
	if n := len(d.VM.Enrollments()); n != 0 {
		t.Fatalf("enrollments on untrusted host: %d", n)
	}
}

func TestUnenrolledVNFCannotProgramNetwork(t *testing.T) {
	d := newTrustedDeployment(t, Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	// The VNF container runs but never enrolls: its enclave holds no
	// credentials, so no TLS client can be built.
	ce, err := d.Hosts[0].CredentialEnclave("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vnf.NewInstance(StandardFirewall("fw-1"), ce, d.ControllerURL(), ServerName, DefaultEnv(), enclaveapp.TLSKeyInEnclave); !errors.Is(err, enclaveapp.ErrNotProvisioned) {
		t.Fatalf("unprovisioned instance: %v", err)
	}
	// A client with no certificate is rejected at the TLS layer.
	noCert := controller.NewClient(d.ControllerURL(), nil)
	if err := noCert.PushFlow(controller.FlowSpec{Name: "x", Switch: "00:00:01", Actions: "drop"}); err == nil {
		t.Fatal("credential-less flow push accepted in trusted mode")
	}
}

func TestRevocationCutsControllerAccess(t *testing.T) {
	d := newTrustedDeployment(t, Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		TLSMode: enclaveapp.TLSKeyInEnclave,
	})
	if _, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")}); err != nil {
		t.Fatal(err)
	}
	ce, err := d.Hosts[0].CredentialEnclave("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ce.ClientTLSConfig(ServerName)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VM.RevokeVNF("fw-1"); err != nil {
		t.Fatal(err)
	}
	// New sessions with the (now revoked) certificate are rejected. The
	// config was captured pre-revocation — the certificate itself is the
	// revoked artifact.
	client := controller.NewClient(d.ControllerURL(), cfg)
	if _, err := client.Health(); err == nil {
		t.Fatal("revoked certificate accepted by controller")
	}
	// And the enclave no longer holds credentials for a retry.
	if _, _, err := ce.Certificate(); !errors.Is(err, enclaveapp.ErrNotProvisioned) {
		t.Fatalf("enclave credentials after revocation: %v", err)
	}
}

func TestReplayedEnrollmentOnSecondVNF(t *testing.T) {
	d := newTrustedDeployment(t, Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	if err := d.DeployVNF(0, "ids-1", "monitor"); err != nil {
		t.Fatal(err)
	}
	if err := d.LearnGolden(); err != nil {
		t.Fatal(err)
	}
	fw := StandardFirewall("fw-1")
	ids := &vnf.Monitor{InstanceName: "ids-1", WatchPorts: []uint16{23}}
	res, err := d.RunWorkflow(0, []vnf.VNF{fw, ids})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Enrolled) != 2 {
		t.Fatalf("enrolled = %v", res.Enrolled)
	}
	// Monitor flows coexist with firewall flows at higher priority.
	telnet := netsim.Packet{
		IPSrc: netip.MustParseAddr("192.168.1.5"), IPDst: netip.MustParseAddr("10.0.0.10"),
		Proto: netsim.ProtoTCP, DstPort: 23, Payload: []byte("root"),
	}
	before := d.Ctrl.PacketIns()
	if _, err := d.Network.Inject("00:00:01", 1, telnet); err != nil {
		t.Fatal(err)
	}
	if d.Ctrl.PacketIns() != before+1 {
		t.Fatal("monitor did not punt telnet to controller")
	}
}

func TestMultiHostDeployment(t *testing.T) {
	d, err := NewDeployment(Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA, NumHosts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 3; i++ {
		if err := d.DeployVNF(i, "fw-"+string(rune('a'+i)), "firewall"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.LearnGolden(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		app, err := d.VM.AttestHost(d.HostName(i))
		if err != nil {
			t.Fatal(err)
		}
		if !app.Trusted {
			t.Fatalf("host %d untrusted: %v", i, app.Findings)
		}
		if _, err := d.VM.EnrollVNF(d.HostName(i), "fw-"+string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.VM.Enrollments()) != 3 {
		t.Fatalf("enrollments = %d", len(d.VM.Enrollments()))
	}
}

func TestKeystoreTrustAblation(t *testing.T) {
	// In keystore mode the CA-signed certificate is NOT enough: the
	// controller must be updated per certificate — the operational
	// problem §3 of the paper fixes with the CA design.
	d := newTrustedDeployment(t, Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustKeystore,
		TLSMode: enclaveapp.TLSKeyInEnclave,
	})
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		t.Fatal(err)
	}
	enr, err := d.VM.EnrollVNF(d.HostName(0), "fw-1")
	if err != nil {
		t.Fatal(err)
	}
	ce, err := d.Hosts[0].CredentialEnclave("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ce.ClientTLSConfig(ServerName)
	if err != nil {
		t.Fatal(err)
	}
	client := controller.NewClient(d.ControllerURL(), cfg)
	if _, err := client.Health(); err == nil {
		t.Fatal("unpinned certificate accepted in keystore mode")
	}
	// After the manual keystore update it works.
	d.Server.PinCertificate(enr.Cert)
	client2 := controller.NewClient(d.ControllerURL(), cfg)
	if _, err := client2.Health(); err != nil {
		t.Fatalf("pinned certificate rejected: %v", err)
	}
}

func TestEnrollBeforeAttestFails(t *testing.T) {
	d := newTrustedDeployment(t, Options{})
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-1"); !errors.Is(err, verifier.ErrHostNotTrusted) {
		t.Fatalf("got %v", err)
	}
}

func TestStandardImageDeterministic(t *testing.T) {
	a, b := StandardImage("firewall"), StandardImage("firewall")
	if a.Digest() != b.Digest() {
		t.Fatal("standard image not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkflowResultRendering(t *testing.T) {
	d := newTrustedDeployment(t, Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	res, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"step 1", "step 6", "total", "quote status: OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}
