package core

import (
	"errors"
	"strings"
	"testing"

	"vnfguard/internal/controller"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/host"
	"vnfguard/internal/verifier"
)

// TestHostAgentFailureMidWorkflow kills the host agent's HTTP endpoint
// between host attestation and enrollment; the Verification Manager must
// surface a transport error, not hang or mis-enroll.
func TestHostAgentFailureMidWorkflow(t *testing.T) {
	d := newTrustedDeployment(t, Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		HTTPTransports: true,
	})
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		t.Fatal(err)
	}
	// Kill the agent endpoints.
	for _, srv := range d.AgentServers() {
		srv.Close()
	}
	_, err := d.VM.EnrollVNF(d.HostName(0), "fw-1")
	if err == nil {
		t.Fatal("enrollment succeeded against a dead agent")
	}
	if len(d.VM.Enrollments()) != 0 {
		t.Fatal("phantom enrollment recorded")
	}
}

// TestEnclaveDestroyedMidWorkflow stops the container (destroying its
// credential enclave) after host attestation; enrollment must fail with a
// clear error.
func TestEnclaveDestroyedMidWorkflow(t *testing.T) {
	d := newTrustedDeployment(t, Options{})
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		t.Fatal(err)
	}
	containers := d.Hosts[0].Containers()
	if err := d.Hosts[0].StopContainer(containers[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-1"); err == nil {
		t.Fatal("enrolled a destroyed enclave")
	}
}

// TestTPMWorkflowOverHTTP runs the §4 extension across real sockets.
func TestTPMWorkflowOverHTTP(t *testing.T) {
	d := newTrustedDeployment(t, Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		EnableTPM: true, RequireTPM: true, HTTPTransports: true,
	})
	app, err := d.VM.AttestHost(d.HostName(0))
	if err != nil {
		t.Fatal(err)
	}
	if !app.Trusted || !app.TPMVerified {
		t.Fatalf("appraisal = %+v", app)
	}
	if _, err := d.VM.EnrollVNF(d.HostName(0), "fw-1"); err != nil {
		t.Fatal(err)
	}
}

// TestCSRProvisioningOverHTTP exercises the CSR mode across the agent's
// HTTP relay (the CSR round adds an extra secure-channel exchange).
func TestCSRProvisioningOverHTTP(t *testing.T) {
	d := newTrustedDeployment(t, Options{
		Provision: enclaveapp.ModeCSR, HTTPTransports: true,
	})
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		t.Fatal(err)
	}
	enr, err := d.VM.EnrollVNF(d.HostName(0), "fw-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VM.CA().VerifyClient(enr.Cert); err != nil {
		t.Fatal(err)
	}
}

// TestRevocationAfterHostGone revokes an enrollment whose host agent has
// disappeared: the certificate must land on the CRL even though the
// enclave wipe cannot be delivered.
func TestRevocationAfterHostGone(t *testing.T) {
	d := newTrustedDeployment(t, Options{HTTPTransports: true})
	if _, err := d.VM.AttestHost(d.HostName(0)); err != nil {
		t.Fatal(err)
	}
	enr, err := d.VM.EnrollVNF(d.HostName(0), "fw-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range d.AgentServers() {
		srv.Close()
	}
	err = d.VM.RevokeVNF("fw-1")
	if err == nil {
		t.Fatal("expected wipe-failure error")
	}
	if !strings.Contains(err.Error(), "certificate revoked anyway") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !d.VM.CA().IsRevoked(enr.Cert.SerialNumber) {
		t.Fatal("certificate not revoked despite dead host")
	}
	if _, err := d.VM.Enrollment("fw-1"); !errors.Is(err, verifier.ErrNotEnrolled) {
		t.Fatal("enrollment record survived")
	}
}

// TestStopContainerByState verifies container bookkeeping across stop.
func TestStopContainerByState(t *testing.T) {
	d := newTrustedDeployment(t, Options{})
	cs := d.Hosts[0].Containers()
	if len(cs) != 1 || cs[0].State != host.StateRunning {
		t.Fatalf("containers = %+v", cs)
	}
	if err := d.Hosts[0].StopContainer(cs[0].ID); err != nil {
		t.Fatal(err)
	}
	cs = d.Hosts[0].Containers()
	if cs[0].State != host.StateStopped {
		t.Fatalf("state = %v", cs[0].State)
	}
}
