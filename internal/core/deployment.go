// Package core wires the full system of the paper's Figure 1 — the EPID
// trust fabric, the attestation service, container hosts with SGX/IMA,
// the Verification Manager, the SDN controller with its forwarding plane,
// and VNFs — and runs the six-step credential workflow end to end. It is
// the facade the examples and the experiment harness build on.
package core

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"fmt"
	"net"
	"net/http"
	"time"

	"vnfguard/internal/controller"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/epid"
	"vnfguard/internal/host"
	"vnfguard/internal/ias"
	"vnfguard/internal/netsim"
	"vnfguard/internal/pki"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/verifier"
)

// ServerName is the controller's certificate DNS name.
const ServerName = "controller"

// Options configures a deployment. The zero value is a single in-process
// host with trusted-HTTPS (CA model), full-session enclave TLS and the
// paper's VM-generated provisioning.
type Options struct {
	// Model is the hardware cost model (nil = zero-cost).
	Model *simtime.CostModel
	// Mode is the controller REST security mode.
	Mode controller.SecurityMode
	// Trust selects CA (paper) or keystore (ablation) client validation.
	Trust controller.TrustModel
	// TLSMode places the VNF's TLS stack (paper default: full session in
	// enclave).
	TLSMode enclaveapp.TLSMode
	// Provision selects VM-generated keys (paper) or CSR mode.
	Provision enclaveapp.ProvisionMode
	// EnableTPM equips hosts with TPMs; RequireTPM makes the appraisal
	// policy demand them (§4 extension).
	EnableTPM  bool
	RequireTPM bool
	// NumHosts is the container-host count (default 1).
	NumHosts int
	// HTTPTransports runs IAS and host agents over real HTTP sockets
	// instead of in-process calls.
	HTTPTransports bool
	// LogDir persists the VM's transparency log in that directory (see
	// verifier.Config.LogDir): audit history then survives restarts. A
	// reopen must present the same CA key — the deployment generates a
	// fresh CA, so resuming the directory means reopening the log with
	// translog.OpenDurableLog under the original deployment's CA signer.
	LogDir string
}

// Deployment is a fully wired system.
type Deployment struct {
	Opts    Options
	Model   *simtime.CostModel
	Issuer  *epid.Issuer
	IAS     *ias.Service
	VM      *verifier.Manager
	Hosts   []*host.Host
	Network *netsim.Network
	Ctrl    *controller.Controller
	Server  *controller.Server

	vendor   *ecdsa.PrivateKey
	registry *host.Registry

	// http servers when HTTPTransports is set.
	iasHTTP    *http.Server
	agentHTTPs []*http.Server
}

// NewDeployment assembles and starts everything.
func NewDeployment(opts Options) (*Deployment, error) {
	if opts.NumHosts <= 0 {
		opts.NumHosts = 1
	}
	d := &Deployment{Opts: opts, Model: opts.Model, registry: host.NewRegistry()}

	var err error
	d.Issuer, err = epid.NewIssuer(1000)
	if err != nil {
		return nil, err
	}
	d.IAS, err = ias.NewService(d.Issuer.GroupPublicKey())
	if err != nil {
		return nil, err
	}
	const subKey = "vnfguard-subscription"
	d.IAS.AddSubscriptionKey(subKey)

	d.vendor, err = ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}

	// IAS client: in-process or over HTTP.
	var iasClient ias.QuoteVerifier
	if opts.HTTPTransports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		d.iasHTTP = &http.Server{Handler: d.IAS.Handler()}
		go d.iasHTTP.Serve(ln)
		iasClient, err = ias.NewClient("http://"+ln.Addr().String(), subKey, d.IAS.SigningCertPEM(), opts.Model)
		if err != nil {
			return nil, err
		}
	} else {
		iasClient = &ias.DirectClient{Service: d.IAS, Model: opts.Model}
	}

	policy := verifier.DefaultPolicy()
	policy.RequireTPM = opts.RequireTPM
	d.VM, err = verifier.New(verifier.Config{
		Name:          "verification-manager",
		SPID:          sgx.SPID{0x42},
		IAS:           iasClient,
		Policy:        policy,
		ProvisionMode: opts.Provision,
		LogDir:        opts.LogDir,
	})
	if err != nil {
		return nil, err
	}

	// Forwarding plane: one switch; port 1 = external client, port 2 =
	// protected server; further ports for scaling hosts.
	d.Network = netsim.NewNetwork()
	if _, err := d.Network.AddSwitch("00:00:01"); err != nil {
		return nil, err
	}
	if err := d.Network.AttachHost("ext-client", "00:00:01", 1); err != nil {
		return nil, err
	}
	if err := d.Network.AttachHost("svc-server", "00:00:01", 2); err != nil {
		return nil, err
	}
	d.Ctrl = controller.New("lightpath", d.Network)

	// Controller endpoint with a VM-CA-issued server certificate.
	serverKey, err := pki.GenerateKey()
	if err != nil {
		return nil, err
	}
	serverCert, err := d.VM.IssueControllerCert(ServerName, []string{ServerName}, &serverKey.PublicKey)
	if err != nil {
		return nil, err
	}
	cfg := controller.ServerConfig{
		Mode:    opts.Mode,
		Cert:    tls.Certificate{Certificate: [][]byte{serverCert.Raw}, PrivateKey: serverKey},
		Trust:   opts.Trust,
		Revoked: d.VM.RevocationChecker(),
	}
	if opts.Mode == controller.ModeTrustedHTTPS {
		// The paper's trusted mode hardened with the transparency log: a
		// client certificate is only accepted with a verifiable inclusion
		// proof that the VM logged its issuance.
		cfg.CredentialLog = d.VM.CredentialChecker()
	}
	if opts.Mode == controller.ModeTrustedHTTPS && opts.Trust == controller.TrustCA {
		cfg.ClientCAs = d.VM.CA().Pool()
	}
	d.Server, err = controller.Serve(d.Ctrl, cfg, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	// Container hosts.
	credMR, err := enclaveapp.ExpectedCredentialMeasurement(d.vendor, d.VM.PublicKey())
	if err != nil {
		return nil, err
	}
	d.VM.PinCredentialMeasurement(credMR)
	for i := 0; i < opts.NumHosts; i++ {
		name := fmt.Sprintf("host-%d", i)
		h, err := host.New(host.Config{
			Name: name, Issuer: d.Issuer, Model: opts.Model,
			VendorKey: d.vendor, VMPub: d.VM.PublicKey(), SPID: sgx.SPID{0x42},
			EnableTPM: opts.EnableTPM,
		})
		if err != nil {
			return nil, err
		}
		d.Hosts = append(d.Hosts, h)
		var aik *ecdsa.PublicKey
		if h.HasTPM() {
			aik = h.TPM().AIKPublic()
		}
		var conn verifier.HostConn = h
		if opts.HTTPTransports {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			srv := &http.Server{Handler: h.Handler()}
			d.agentHTTPs = append(d.agentHTTPs, srv)
			go srv.Serve(ln)
			conn = host.NewClient("http://" + ln.Addr().String())
		}
		d.VM.RegisterHost(name, conn, aik)
		d.VM.PinAttestationMeasurement(h.AttestationEnclaveIdentity().MRENCLAVE)
	}
	return d, nil
}

// AgentServers returns the host-agent HTTP servers when HTTPTransports is
// set (failure-injection tests close them to simulate host loss).
func (d *Deployment) AgentServers() []*http.Server { return d.agentHTTPs }

// ControllerURL returns the controller's base URL.
func (d *Deployment) ControllerURL() string { return d.Server.URL() }

// Vendor returns the ISV signing key (used by the harness to compute
// expected measurements).
func (d *Deployment) Vendor() *ecdsa.PrivateKey { return d.vendor }

// Registry returns the image registry.
func (d *Deployment) Registry() *host.Registry { return d.registry }

// StandardImage builds the canonical VNF image used by examples and
// experiments.
func StandardImage(kind string) *host.Image {
	return &host.Image{
		Name: "vnf-" + kind, Tag: "1.0",
		Entrypoint: "/usr/bin/" + kind,
		Configs:    []string{"/etc/" + kind + ".conf"},
		Layers: []host.Layer{
			{Files: map[string][]byte{"/usr/bin/" + kind: []byte(kind + " binary v1.0")}},
			{Files: map[string][]byte{"/etc/" + kind + ".conf": []byte(kind + " config")}},
		},
	}
}

// DeployVNF pulls/creates the image for kind and runs it as vnfName on
// host index hostIdx.
func (d *Deployment) DeployVNF(hostIdx int, vnfName, kind string) error {
	if hostIdx < 0 || hostIdx >= len(d.Hosts) {
		return fmt.Errorf("core: host index %d out of range", hostIdx)
	}
	im := StandardImage(kind)
	if err := d.registry.Push(im); err != nil {
		return err
	}
	_, err := d.Hosts[hostIdx].RunContainer(im, vnfName)
	return err
}

// LearnGolden records every host's current IML as the golden baseline.
func (d *Deployment) LearnGolden() error {
	for i := range d.Hosts {
		if err := d.VM.LearnHostGolden(fmt.Sprintf("host-%d", i)); err != nil {
			return err
		}
	}
	return nil
}

// HostName returns the registered name of host i.
func (d *Deployment) HostName(i int) string { return fmt.Sprintf("host-%d", i) }

// Close tears the deployment down.
func (d *Deployment) Close() {
	if d.Server != nil {
		d.Server.Close()
	}
	if d.VM != nil {
		d.VM.Close()
	}
	if d.iasHTTP != nil {
		d.iasHTTP.Close()
	}
	for _, s := range d.agentHTTPs {
		s.Close()
	}
	for _, h := range d.Hosts {
		for _, c := range h.Containers() {
			if c.State == host.StateRunning {
				h.StopContainer(c.ID)
			}
		}
	}
	// Give handlers a beat to drain before the process moves on.
	time.Sleep(time.Millisecond)
}
