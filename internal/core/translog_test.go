package core

import (
	"crypto/ecdsa"
	"crypto/tls"
	"strings"
	"testing"
	"time"

	"vnfguard/internal/controller"
	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/pki"
	"vnfguard/internal/translog"
	"vnfguard/internal/vnf"
)

// TestRogueCACertificateRejectedWithoutLogEntry is the deployment-level
// version of the tentpole's acceptance check: even a certificate signed
// with the genuine CA key is useless against the controller unless the
// Verification Manager committed its issuance to the transparency log.
func TestRogueCACertificateRejectedWithoutLogEntry(t *testing.T) {
	d := newTrustedDeployment(t, Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	if _, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")}); err != nil {
		t.Fatal(err)
	}

	// Enrolled credential: logged, accepted.
	ce, err := d.Hosts[0].CredentialEnclave("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ce.ClientTLSConfig(ServerName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := controller.NewClient(d.ControllerURL(), cfg).Summary(); err != nil {
		t.Fatalf("enrolled credential rejected: %v", err)
	}

	// Rogue credential: minted straight from the CA, bypassing the
	// attestation workflow — and therefore the log.
	rogueKey, err := pki.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	csr, err := pki.CreateCSR("fw-rogue", rogueKey)
	if err != nil {
		t.Fatal(err)
	}
	rogueCert, err := d.VM.CA().SignClientCSR(csr, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rogueCfg := cfg.Clone()
	rogueCfg.Certificates = []tls.Certificate{{Certificate: [][]byte{rogueCert.Raw}, PrivateKey: rogueKey}}
	if _, err := controller.NewClient(d.ControllerURL(), rogueCfg).Summary(); err == nil {
		t.Fatal("unlogged CA-signed certificate accepted in trusted mode")
	}

	// The auditable difference: the enrolled serial proves, the rogue one
	// does not.
	pub := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)
	enr, err := d.VM.Enrollment("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := d.VM.CredentialProof(enr.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Verify(pub); err != nil {
		t.Fatal(err)
	}
	if _, err := d.VM.CredentialProof(rogueCert.SerialNumber.String()); err == nil {
		t.Fatal("rogue serial proved")
	}
}

// TestMidSessionRevocationOverDeployment drives the revocation-
// propagation fix through the real stack: an active keep-alive session is
// cut off by VM.RevokeVNF without any new TLS handshake.
func TestMidSessionRevocationOverDeployment(t *testing.T) {
	d := newTrustedDeployment(t, Options{
		Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA,
		TLSMode: enclaveapp.TLSKeyInEnclave,
	})
	if _, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")}); err != nil {
		t.Fatal(err)
	}
	ce, err := d.Hosts[0].CredentialEnclave("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ce.ClientTLSConfig(ServerName)
	if err != nil {
		t.Fatal(err)
	}
	client := controller.NewClient(d.ControllerURL(), cfg)
	defer client.CloseIdle()
	if _, err := client.Summary(); err != nil {
		t.Fatal(err)
	}
	if err := d.VM.RevokeVNF("fw-1"); err != nil {
		t.Fatal(err)
	}
	_, err = client.Summary()
	if err == nil {
		t.Fatal("revoked VNF kept controller access over its live session")
	}
	if !strings.Contains(err.Error(), "403") {
		t.Fatalf("want per-request 403, got: %v", err)
	}
}

// TestDeploymentLogAuditTrail audits a deployment's log end to end with
// the witness, the way cmd/log-server -monitor would.
func TestDeploymentLogAuditTrail(t *testing.T) {
	d := newTrustedDeployment(t, Options{Mode: controller.ModeTrustedHTTPS, Trust: controller.TrustCA})
	log := d.VM.TransparencyLog()
	pub := d.VM.CA().Certificate().PublicKey.(*ecdsa.PublicKey)
	w := translog.NewWitness(pub)
	fetch := func(first, second uint64) ([]translog.Hash, error) {
		return log.ConsistencyProof(first, second)
	}
	if err := w.Advance(log.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunWorkflow(0, []vnf.VNF{StandardFirewall("fw-1")}); err != nil {
		t.Fatal(err)
	}
	if err := d.VM.FlushLog(); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(log.STH(), fetch); err != nil {
		t.Fatalf("honest log growth rejected: %v", err)
	}
	if err := d.VM.RevokeVNF("fw-1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(log.STH(), fetch); err != nil {
		t.Fatalf("post-revocation head rejected: %v", err)
	}
	last, _ := w.Last()
	if last.Size == 0 {
		t.Fatal("witness never advanced")
	}
}
