package enclaveapp

import (
	"crypto"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
)

// TLSMode selects how much of the TLS stack runs inside the enclave.
type TLSMode int

// TLS placement modes (experiment E5).
const (
	// TLSKeyInEnclave keeps only the private key inside: handshake
	// signatures are ECALLs, the record layer runs untrusted. This is
	// the "alternative implementation" whose performance the paper
	// leaves for future work.
	TLSKeyInEnclave TLSMode = iota
	// TLSFullSession runs the whole TLS session inside the enclave, as
	// the paper's implementation does ("the security context established
	// for each TLS session (including the session key) does not leave
	// the enclave"). Record I/O crosses the boundary as OCALLs.
	TLSFullSession
)

// String names the mode for experiment tables.
func (m TLSMode) String() string {
	switch m {
	case TLSKeyInEnclave:
		return "key-in-enclave"
	case TLSFullSession:
		return "full-session-in-enclave"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

func hmacSum(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

// ---- key-in-enclave mode ----------------------------------------------------

// Signer returns a crypto.Signer whose private operations execute inside
// the enclave (one ECALL per signature).
func (ce *CredentialEnclave) Signer() (crypto.Signer, error) {
	der, err := ce.enclave.ECall("pubkey", nil)
	if err != nil {
		return nil, err
	}
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("enclaveapp: enclave public key: %w", err)
	}
	return &enclaveSigner{ce: ce, pub: pub}, nil
}

type enclaveSigner struct {
	ce  *CredentialEnclave
	pub crypto.PublicKey
}

func (s *enclaveSigner) Public() crypto.PublicKey { return s.pub }

func (s *enclaveSigner) Sign(_ io.Reader, digest []byte, opts crypto.SignerOpts) ([]byte, error) {
	if opts != nil && opts.HashFunc() != crypto.SHA256 {
		return nil, fmt.Errorf("enclaveapp: unsupported hash %v", opts.HashFunc())
	}
	return s.ce.enclave.ECall("sign", digest)
}

// ClientTLSConfig builds a mutual-TLS client config in key-in-enclave
// mode: the certificate chain is public, the private key stays behind the
// ECALL boundary.
func (ce *CredentialEnclave) ClientTLSConfig(serverName string) (*tls.Config, error) {
	certDER, caDER, err := ce.Certificate()
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(certDER)
	if err != nil {
		return nil, err
	}
	signer, err := ce.Signer()
	if err != nil {
		return nil, err
	}
	roots := x509.NewCertPool()
	if len(caDER) > 0 {
		ca, err := x509.ParseCertificate(caDER)
		if err != nil {
			return nil, err
		}
		roots.AddCert(ca)
	}
	return &tls.Config{
		MinVersion:   tls.VersionTLS12,
		RootCAs:      roots,
		ServerName:   serverName,
		Certificates: []tls.Certificate{{Certificate: [][]byte{certDER}, PrivateKey: signer, Leaf: leaf}},
	}, nil
}

// ---- full-session mode --------------------------------------------------------

// tlsSession is an in-enclave TLS connection.
type tlsSession struct {
	raw  net.Conn
	conn *tls.Conn
}

// ocallConn models record I/O crossing the enclave boundary: every Read
// and Write is an OCALL out plus an ECALL back in.
type ocallConn struct {
	net.Conn
	model *simtime.CostModel
}

func (c *ocallConn) Read(p []byte) (int, error) {
	c.model.Charge(simtime.OpOCall)
	n, err := c.Conn.Read(p)
	c.model.Charge(simtime.OpECall)
	return n, err
}

func (c *ocallConn) Write(p []byte) (int, error) {
	c.model.Charge(simtime.OpOCall)
	n, err := c.Conn.Write(p)
	c.model.Charge(simtime.OpECall)
	return n, err
}

type tlsHandshakeArgs struct {
	ID         uint32 `json:"id"`
	ServerName string `json:"server_name"`
}

func (ce *CredentialEnclave) getSession(id uint32) (*tlsSession, error) {
	ce.tlsMu.Lock()
	defer ce.tlsMu.Unlock()
	s, ok := ce.sessions[id]
	if !ok {
		return nil, fmt.Errorf("enclaveapp: unknown TLS session %d", id)
	}
	return s, nil
}

func (ce *CredentialEnclave) handleTLSHandshake(ctx *sgx.Context, args []byte) ([]byte, error) {
	var req tlsHandshakeArgs
	if err := json.Unmarshal(args, &req); err != nil {
		return nil, err
	}
	sess, err := ce.getSession(req.ID)
	if err != nil {
		return nil, err
	}
	key, err := ce.loadKey(ctx)
	if err != nil {
		return nil, err
	}
	certDER, ok := ctx.Get(heapCert)
	if !ok {
		return nil, ErrNotProvisioned
	}
	caDER, _ := ctx.Get(heapCA)
	roots := x509.NewCertPool()
	if len(caDER) > 0 {
		ca, err := x509.ParseCertificate(caDER)
		if err != nil {
			return nil, err
		}
		roots.AddCert(ca)
	}
	cfg := &tls.Config{
		MinVersion:   tls.VersionTLS12,
		RootCAs:      roots,
		ServerName:   req.ServerName,
		Certificates: []tls.Certificate{{Certificate: [][]byte{certDER}, PrivateKey: key}},
	}
	conn := tls.Client(&ocallConn{Conn: sess.raw, model: ce.platform.Model()}, cfg)
	if err := conn.Handshake(); err != nil {
		return nil, fmt.Errorf("enclaveapp: in-enclave handshake: %w", err)
	}
	sess.conn = conn
	return []byte("ok"), nil
}

// tls_read result status bytes.
const (
	tlsReadOK  = 0
	tlsReadEOF = 1
)

func (ce *CredentialEnclave) handleTLSRead(ctx *sgx.Context, args []byte) ([]byte, error) {
	if len(args) != 8 {
		return nil, errors.New("enclaveapp: tls_read args")
	}
	id := binary.BigEndian.Uint32(args[:4])
	maxLen := binary.BigEndian.Uint32(args[4:8])
	if maxLen > 1<<20 {
		maxLen = 1 << 20
	}
	sess, err := ce.getSession(id)
	if err != nil {
		return nil, err
	}
	if sess.conn == nil {
		return nil, errors.New("enclaveapp: session not handshaken")
	}
	buf := make([]byte, maxLen+1)
	n, err := sess.conn.Read(buf[1:])
	switch {
	case err == nil || (errors.Is(err, io.EOF) && n > 0):
		buf[0] = tlsReadOK
	case errors.Is(err, io.EOF):
		buf[0] = tlsReadEOF
	default:
		return nil, err
	}
	return buf[:1+n], nil
}

func (ce *CredentialEnclave) handleTLSWrite(ctx *sgx.Context, args []byte) ([]byte, error) {
	if len(args) < 4 {
		return nil, errors.New("enclaveapp: tls_write args")
	}
	id := binary.BigEndian.Uint32(args[:4])
	sess, err := ce.getSession(id)
	if err != nil {
		return nil, err
	}
	if sess.conn == nil {
		return nil, errors.New("enclaveapp: session not handshaken")
	}
	n, err := sess.conn.Write(args[4:])
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, uint32(n))
	return out, err
}

func (ce *CredentialEnclave) handleTLSClose(ctx *sgx.Context, args []byte) ([]byte, error) {
	if len(args) != 4 {
		return nil, errors.New("enclaveapp: tls_close args")
	}
	id := binary.BigEndian.Uint32(args)
	ce.tlsMu.Lock()
	sess, ok := ce.sessions[id]
	delete(ce.sessions, id)
	ce.tlsMu.Unlock()
	if !ok {
		return nil, nil
	}
	if sess.conn != nil {
		return nil, sess.conn.Close()
	}
	return nil, sess.raw.Close()
}

// DialTLS establishes a full-session-in-enclave TLS connection over the
// given raw transport. The returned connection moves application data
// through ECALLs; TLS state never exists outside the enclave.
func (ce *CredentialEnclave) DialTLS(raw net.Conn, serverName string) (*FullSessionConn, error) {
	ce.tlsMu.Lock()
	ce.nextSess++
	id := ce.nextSess
	ce.sessions[id] = &tlsSession{raw: raw}
	ce.tlsMu.Unlock()

	args, err := json.Marshal(tlsHandshakeArgs{ID: id, ServerName: serverName})
	if err != nil {
		return nil, err
	}
	if _, err := ce.enclave.ECall("tls_handshake", args); err != nil {
		ce.tlsMu.Lock()
		delete(ce.sessions, id)
		ce.tlsMu.Unlock()
		return nil, err
	}
	return &FullSessionConn{ce: ce, id: id, raw: raw}, nil
}

// FullSessionConn is the untrusted handle to an in-enclave TLS session; it
// satisfies net.Conn so standard clients can use it.
type FullSessionConn struct {
	ce  *CredentialEnclave
	id  uint32
	raw net.Conn
}

// Read moves decrypted application data out of the enclave.
func (c *FullSessionConn) Read(p []byte) (int, error) {
	args := make([]byte, 8)
	binary.BigEndian.PutUint32(args[:4], c.id)
	binary.BigEndian.PutUint32(args[4:8], uint32(len(p)))
	out, err := c.ce.enclave.ECall("tls_read", args)
	if err != nil {
		return 0, err
	}
	if len(out) < 1 {
		return 0, errors.New("enclaveapp: malformed tls_read result")
	}
	n := copy(p, out[1:])
	if out[0] == tlsReadEOF {
		return n, io.EOF
	}
	return n, nil
}

// Write moves plaintext into the enclave for encryption and transmission.
func (c *FullSessionConn) Write(p []byte) (int, error) {
	args := make([]byte, 4+len(p))
	binary.BigEndian.PutUint32(args[:4], c.id)
	copy(args[4:], p)
	out, err := c.ce.enclave.ECall("tls_write", args)
	if err != nil {
		return 0, err
	}
	if len(out) != 4 {
		return 0, errors.New("enclaveapp: malformed tls_write result")
	}
	return int(binary.BigEndian.Uint32(out)), nil
}

// Close shuts the in-enclave session down.
func (c *FullSessionConn) Close() error {
	args := make([]byte, 4)
	binary.BigEndian.PutUint32(args, c.id)
	_, err := c.ce.enclave.ECall("tls_close", args)
	return err
}

// LocalAddr returns the transport's local address.
func (c *FullSessionConn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr returns the transport's remote address.
func (c *FullSessionConn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline sets transport deadlines.
func (c *FullSessionConn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline sets the transport read deadline.
func (c *FullSessionConn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline sets the transport write deadline.
func (c *FullSessionConn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }
