package enclaveapp

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"

	"vnfguard/internal/sgx"
	"vnfguard/internal/tpm"
)

// OCALL names served by the host runtime for the attestation enclave.
const (
	OCallReadIML  = "read_iml"
	OCallTPMQuote = "tpm_quote"
)

// attestationEnclaveVersion is measured into MRENCLAVE; bumping it (or
// tampering with it) changes the enclave identity the Verification Manager
// expects.
const attestationEnclaveVersion = "vnfguard attestation enclave v1"

// HostServices are the untrusted host facilities the attestation enclave
// reaches through OCALLs.
type HostServices struct {
	// ReadIML snapshots the host's IMA measurement list.
	ReadIML func() (string, error)
	// TPMQuote obtains a TPM quote over the IMA PCR with the given
	// freshness nonce. Nil when the host has no TPM (the paper's baseline
	// configuration; §4 notes the resulting tampering exposure).
	TPMQuote func(nonce []byte) (*tpm.Quote, error)
}

// HostEvidence is the bundle the Verification Manager appraises in step 2.
type HostEvidence struct {
	// IML is the serialized measurement list.
	IML string `json:"iml"`
	// Nonce is the challenger-chosen freshness value.
	Nonce []byte `json:"nonce"`
	// TPMQuote is the optional hardware-rooted quote over the IMA PCR.
	TPMQuote *tpm.Quote `json:"tpm_quote,omitempty"`
	// Quote is the encoded SGX quote whose report data binds all of the
	// above.
	Quote []byte `json:"quote"`
}

// BindingDigest computes the report-data binding over the evidence fields.
// Verifiers recompute it and compare against the quoted report data.
func (ev *HostEvidence) BindingDigest() [32]byte {
	h := sha256.New()
	h.Write([]byte(ev.IML))
	h.Write(ev.Nonce)
	if ev.TPMQuote != nil {
		b, _ := json.Marshal(ev.TPMQuote)
		h.Write(b)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// AttestationEnclave wraps the launched integrity-attestation enclave.
type AttestationEnclave struct {
	enclave  *sgx.Enclave
	platform *sgx.Platform
	spid     sgx.SPID
}

// AttestationEnclaveOption configures construction.
type AttestationEnclaveOption func(*attestationConfig)

type attestationConfig struct {
	codeVersion string
}

// WithAttestationCode overrides the measured code bytes — used by tests
// and the compromised-host example to model a tampered enclave build.
func WithAttestationCode(version string) AttestationEnclaveOption {
	return func(c *attestationConfig) { c.codeVersion = version }
}

// evidenceRequest is the ECALL argument.
type evidenceRequest struct {
	NonceB64 string `json:"nonce"`
	UseTPM   bool   `json:"use_tpm"`
}

// evidenceReply is the ECALL result (report still needs quoting).
type evidenceReply struct {
	IML       string     `json:"iml"`
	TPMQuote  *tpm.Quote `json:"tpm_quote,omitempty"`
	ReportB64 string     `json:"report"`
}

// NewAttestationEnclave launches the attestation enclave on a platform.
// signer is the ISV vendor key; host provides the OCALL services.
func NewAttestationEnclave(p *sgx.Platform, signer *ecdsa.PrivateKey, host HostServices, spid sgx.SPID, opts ...AttestationEnclaveOption) (*AttestationEnclave, error) {
	if host.ReadIML == nil {
		return nil, errors.New("enclaveapp: attestation enclave requires ReadIML host service")
	}
	cfg := attestationConfig{codeVersion: attestationEnclaveVersion}
	for _, o := range opts {
		o(&cfg)
	}
	spec := sgx.EnclaveSpec{
		Name:       "integrity-attestation",
		ProdID:     1,
		SVN:        1,
		Attributes: sgx.Attributes{Mode64: true},
		HeapPages:  8,
		Modules: []sgx.CodeModule{{
			Name: "attestation",
			Code: []byte(cfg.codeVersion),
			Handlers: map[string]sgx.ECallHandler{
				"host_evidence": handleHostEvidence(p),
			},
		}},
	}
	ss, err := sgx.SignEnclave(spec, signer)
	if err != nil {
		return nil, err
	}
	e, err := p.Launch(spec, ss)
	if err != nil {
		return nil, err
	}
	e.SetOCallHandler(func(name string, payload []byte) ([]byte, error) {
		switch name {
		case OCallReadIML:
			iml, err := host.ReadIML()
			if err != nil {
				return nil, err
			}
			return []byte(iml), nil
		case OCallTPMQuote:
			if host.TPMQuote == nil {
				return nil, errors.New("host has no TPM")
			}
			q, err := host.TPMQuote(payload)
			if err != nil {
				return nil, err
			}
			return json.Marshal(q)
		default:
			return nil, fmt.Errorf("enclaveapp: unknown ocall %q", name)
		}
	})
	return &AttestationEnclave{enclave: e, platform: p, spid: spid}, nil
}

// handleHostEvidence is the enclave's ECALL: gather the IML (and TPM quote
// when requested) via OCALLs, bind them into report data, and emit a local
// report targeted at the quoting enclave.
func handleHostEvidence(p *sgx.Platform) sgx.ECallHandler {
	return func(ctx *sgx.Context, args []byte) ([]byte, error) {
		var req evidenceRequest
		if err := json.Unmarshal(args, &req); err != nil {
			return nil, fmt.Errorf("enclaveapp: evidence request: %w", err)
		}
		nonce, err := base64.StdEncoding.DecodeString(req.NonceB64)
		if err != nil {
			return nil, fmt.Errorf("enclaveapp: evidence nonce: %w", err)
		}
		imlBytes, err := ctx.OCall(OCallReadIML, nil)
		if err != nil {
			return nil, fmt.Errorf("enclaveapp: reading IML: %w", err)
		}
		reply := evidenceReply{IML: string(imlBytes)}
		ev := HostEvidence{IML: reply.IML, Nonce: nonce}
		if req.UseTPM {
			raw, err := ctx.OCall(OCallTPMQuote, nonce)
			if err != nil {
				return nil, fmt.Errorf("enclaveapp: TPM quote: %w", err)
			}
			var q tpm.Quote
			if err := json.Unmarshal(raw, &q); err != nil {
				return nil, fmt.Errorf("enclaveapp: TPM quote decode: %w", err)
			}
			reply.TPMQuote = &q
			ev.TPMQuote = &q
		}
		rd := sgx.ReportDataFromHash(ev.BindingDigest())
		report := ctx.Report(p.QE().TargetInfo(), rd)
		reply.ReportB64 = base64.StdEncoding.EncodeToString(sgx.EncodeReport(report))
		return json.Marshal(reply)
	}
}

// CollectEvidence runs the full evidence flow: ECALL into the enclave,
// then quote the resulting report at the platform QE.
func (a *AttestationEnclave) CollectEvidence(nonce []byte, useTPM bool) (*HostEvidence, error) {
	args, err := json.Marshal(evidenceRequest{
		NonceB64: base64.StdEncoding.EncodeToString(nonce),
		UseTPM:   useTPM,
	})
	if err != nil {
		return nil, err
	}
	out, err := a.enclave.ECall("host_evidence", args)
	if err != nil {
		return nil, err
	}
	var reply evidenceReply
	if err := json.Unmarshal(out, &reply); err != nil {
		return nil, fmt.Errorf("enclaveapp: evidence reply: %w", err)
	}
	reportBytes, err := base64.StdEncoding.DecodeString(reply.ReportB64)
	if err != nil {
		return nil, err
	}
	report, err := sgx.DecodeReport(reportBytes)
	if err != nil {
		return nil, err
	}
	quote, err := a.platform.QE().GetQuote(report, a.spid, sgx.QuoteLinkable)
	if err != nil {
		return nil, fmt.Errorf("enclaveapp: quoting host evidence: %w", err)
	}
	return &HostEvidence{
		IML:      reply.IML,
		Nonce:    append([]byte(nil), nonce...),
		TPMQuote: reply.TPMQuote,
		Quote:    quote.Encode(),
	}, nil
}

// Identity returns the enclave's launched identity (for golden-value
// registration at the Verification Manager).
func (a *AttestationEnclave) Identity() sgx.Identity { return a.enclave.Identity() }

// Destroy tears down the enclave.
func (a *AttestationEnclave) Destroy() { a.enclave.Destroy() }

// ExpectedMeasurement computes the MRENCLAVE of the canonical attestation
// enclave build (what the Verification Manager pins).
func ExpectedAttestationMeasurement(signer *ecdsa.PrivateKey) (sgx.Measurement, error) {
	spec := sgx.EnclaveSpec{
		Name:       "integrity-attestation",
		ProdID:     1,
		SVN:        1,
		Attributes: sgx.Attributes{Mode64: true},
		HeapPages:  8,
		Modules: []sgx.CodeModule{{
			Name: "attestation",
			Code: []byte(attestationEnclaveVersion),
		}},
	}
	ss, err := sgx.SignEnclave(spec, signer)
	if err != nil {
		return sgx.Measurement{}, err
	}
	return ss.Measurement, nil
}
