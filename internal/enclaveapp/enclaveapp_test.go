package enclaveapp

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"vnfguard/internal/epid"
	"vnfguard/internal/ima"
	"vnfguard/internal/pki"
	"vnfguard/internal/ra"
	"vnfguard/internal/secchan"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/tpm"
)

// fixture assembles a host platform with IMA, optional TPM, and keys.
type fixture struct {
	issuer  *epid.Issuer
	plat    *sgx.Platform
	imaSys  *ima.System
	tpmDev  *tpm.TPM
	vendor  *ecdsa.PrivateKey // ISV signing key
	vmKey   *ecdsa.PrivateKey // Verification Manager long-term key
	model   *simtime.CostModel
	hostSvc HostServices
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	issuer, err := epid.NewIssuer(300)
	if err != nil {
		t.Fatal(err)
	}
	model := simtime.ZeroCosts()
	plat, err := sgx.NewPlatform("host-1", issuer, model)
	if err != nil {
		t.Fatal(err)
	}
	vendor, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	vmKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tpmDev, err := tpm.New(model)
	if err != nil {
		t.Fatal(err)
	}
	imaSys := ima.NewSystem(nil, model, []byte("boot"))
	// Anchor the pre-existing entries (boot_aggregate), then stream new
	// measurements into the TPM.
	text, _ := imaSys.Snapshot()
	list, err := ima.ParseList(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range list.Entries() {
		if err := tpmDev.Extend(ima.PCRIndex, e.TemplateHash); err != nil {
			t.Fatal(err)
		}
	}
	imaSys.SetPCRSink(func(th [32]byte) { tpmDev.Extend(ima.PCRIndex, th) })

	fx := &fixture{
		issuer: issuer, plat: plat, imaSys: imaSys, tpmDev: tpmDev,
		vendor: vendor, vmKey: vmKey, model: model,
	}
	fx.hostSvc = HostServices{
		ReadIML: func() (string, error) {
			text, _ := imaSys.Snapshot()
			return text, nil
		},
		TPMQuote: func(nonce []byte) (*tpm.Quote, error) {
			return tpmDev.Quote(nonce, []int{ima.PCRIndex})
		},
	}
	return fx
}

func (fx *fixture) measure(t *testing.T, path string, content []byte) {
	t.Helper()
	fx.imaSys.HandleEvent(ima.Event{Path: path, Hook: ima.HookBprmCheck, Mask: ima.MayExec, UID: 0}, content)
}

// --- attestation enclave ------------------------------------------------------

func TestAttestationEnclaveEvidence(t *testing.T) {
	fx := newFixture(t)
	fx.measure(t, "/usr/bin/vnf-firewall", []byte("firewall v1"))
	ae, err := NewAttestationEnclave(fx.plat, fx.vendor, fx.hostSvc, sgx.SPID{1})
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Destroy()

	nonce := []byte("vm-nonce-1234")
	ev, err := ae.CollectEvidence(nonce, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(ev.IML), []byte("/usr/bin/vnf-firewall")) {
		t.Fatal("IML missing measured binary")
	}
	quote, err := sgx.DecodeQuote(ev.Quote)
	if err != nil {
		t.Fatal(err)
	}
	// The quote's report data binds the IML and nonce.
	want := sgx.ReportDataFromHash(ev.BindingDigest())
	if quote.Body.ReportData != want {
		t.Fatal("quote does not bind evidence")
	}
	// The quote verifies under the group key.
	if err := sgx.VerifyQuote(quote, fx.issuer.GroupPublicKey(), nil); err != nil {
		t.Fatalf("quote invalid: %v", err)
	}
	// The quoted identity matches the canonical build.
	wantMR, err := ExpectedAttestationMeasurement(fx.vendor)
	if err != nil {
		t.Fatal(err)
	}
	if quote.Body.MRENCLAVE != wantMR {
		t.Fatal("measurement differs from canonical build")
	}
}

func TestAttestationEnclaveTPMMode(t *testing.T) {
	fx := newFixture(t)
	fx.measure(t, "/usr/bin/vnf-lb", []byte("lb v1"))
	ae, err := NewAttestationEnclave(fx.plat, fx.vendor, fx.hostSvc, sgx.SPID{1})
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Destroy()

	nonce := []byte("tpm-nonce")
	ev, err := ae.CollectEvidence(nonce, true)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TPMQuote == nil {
		t.Fatal("no TPM quote in TPM mode")
	}
	if err := tpm.VerifyQuote(fx.tpmDev.AIKPublic(), ev.TPMQuote, nonce); err != nil {
		t.Fatalf("TPM quote invalid: %v", err)
	}
	// The IML aggregate must replay to the quoted PCR value.
	list, err := ima.ParseList(ev.IML)
	if err != nil {
		t.Fatal(err)
	}
	if list.Aggregate() != ev.TPMQuote.PCRValues[0] {
		t.Fatal("IML aggregate does not match TPM PCR")
	}
}

func TestTPMModeDetectsTamperedIML(t *testing.T) {
	fx := newFixture(t)
	fx.measure(t, "/usr/bin/evil", []byte("malware"))
	ae, err := NewAttestationEnclave(fx.plat, fx.vendor, fx.hostSvc, sgx.SPID{1})
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Destroy()

	// Root adversary rewrites the software measurement list (§4 threat).
	clean := ima.NewList([]byte("boot"))
	clean.Append(sha256.Sum256([]byte("innocent")), "/usr/bin/innocent")
	fx.imaSys.TamperList(clean)

	ev, err := ae.CollectEvidence([]byte("n"), true)
	if err != nil {
		t.Fatal(err)
	}
	list, err := ima.ParseList(ev.IML)
	if err != nil {
		t.Fatal(err)
	}
	// Software-only check would pass (list is internally consistent)...
	if list.Aggregate() == [32]byte{} {
		t.Fatal("sanity: aggregate computed")
	}
	// ...but the TPM PCR still reflects the true history.
	if list.Aggregate() == ev.TPMQuote.PCRValues[0] {
		t.Fatal("tampered IML matches TPM PCR — tamper not detectable")
	}
}

func TestTamperedAttestationEnclaveMeasuresDifferently(t *testing.T) {
	fx := newFixture(t)
	ae, err := NewAttestationEnclave(fx.plat, fx.vendor, fx.hostSvc, sgx.SPID{1},
		WithAttestationCode("backdoored build"))
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Destroy()
	want, err := ExpectedAttestationMeasurement(fx.vendor)
	if err != nil {
		t.Fatal(err)
	}
	if ae.Identity().MRENCLAVE == want {
		t.Fatal("tampered build has canonical measurement")
	}
}

// --- credential enclave: RA + provisioning -------------------------------------

// vmSide drives the challenger role against a credential enclave, as the
// Verification Manager will in the verifier package.
type vmSide struct {
	ch    *ra.Challenger
	codec *secchan.RecordCodec
}

func runEnrollment(t *testing.T, fx *fixture, ce *CredentialEnclave) *vmSide {
	t.Helper()
	m1, err := ce.RAMsg1()
	if err != nil {
		t.Fatal(err)
	}
	ch := ra.NewChallenger(sgx.SPID{1}, fx.vmKey, sgx.QuoteLinkable)
	m2, err := ch.ProcessMsg1(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ce.RAProcessMsg2(m2)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := ch.ProcessMsg3(m3, func(q []byte) (string, error) { return "OK", nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.RAFinalize(m4); err != nil {
		t.Fatal(err)
	}
	sk, err := ch.SessionKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := secchan.NewCodec(sk, secchan.RoleInitiator)
	if err != nil {
		t.Fatal(err)
	}
	return &vmSide{ch: ch, codec: codec}
}

// provision pushes credentials in the given mode and returns cert + key.
func provision(t *testing.T, vm *vmSide, ce *CredentialEnclave, ca *pki.CA, cn string, mode ProvisionMode) *x509.Certificate {
	t.Helper()
	var payload ProvisionPayload
	payload.Mode = mode
	payload.CADER = ca.Certificate().Raw
	payload.HMACKey = []byte("vm-generated-hmac-key")

	switch mode {
	case ModeVMGenerated:
		key, err := pki.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		csr, err := pki.CreateCSR(cn, key)
		if err != nil {
			t.Fatal(err)
		}
		cert, err := ca.SignClientCSR(csr, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		pkcs8, err := x509.MarshalPKCS8PrivateKey(key)
		if err != nil {
			t.Fatal(err)
		}
		payload.KeyPKCS8 = pkcs8
		payload.CertDER = cert.Raw
	case ModeCSR:
		req, err := json.Marshal(CSRRequest{CommonName: cn})
		if err != nil {
			t.Fatal(err)
		}
		frame, err := vm.codec.Seal(secchan.TypeCSR, req)
		if err != nil {
			t.Fatal(err)
		}
		respFrame, err := ce.HandleFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		typ, respPayload, err := vm.codec.Open(respFrame)
		if err != nil {
			t.Fatal(err)
		}
		if typ != secchan.TypeCSR {
			t.Fatalf("CSR response type %d: %s", typ, respPayload)
		}
		var resp CSRResponse
		if err := json.Unmarshal(respPayload, &resp); err != nil {
			t.Fatal(err)
		}
		cert, err := ca.SignClientCSR(resp.CSRDER, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		payload.CertDER = cert.Raw
	}

	body, err := payload.Encode()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := vm.codec.Seal(secchan.TypeProvision, body)
	if err != nil {
		t.Fatal(err)
	}
	respFrame, err := ce.HandleFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	typ, respPayload, err := vm.codec.Open(respFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != secchan.TypeAck {
		t.Fatalf("provisioning response type %d: %s", typ, respPayload)
	}
	cert, err := x509.ParseCertificate(payload.CertDER)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func newCredEnclave(t *testing.T, fx *fixture) *CredentialEnclave {
	t.Helper()
	ce, err := NewCredentialEnclave(fx.plat, fx.vendor, &fx.vmKey.PublicKey, sgx.SPID{1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ce.Destroy)
	return ce
}

func TestEnrollAndProvisionVMGenerated(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vm := runEnrollment(t, fx, ce)
	cert := provision(t, vm, ce, ca, "vnf-1", ModeVMGenerated)

	enrolled, provisioned, err := ce.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !enrolled || !provisioned {
		t.Fatalf("status enrolled=%v provisioned=%v", enrolled, provisioned)
	}
	certDER, caDER, err := ce.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(certDER, cert.Raw) {
		t.Fatal("certificate mismatch")
	}
	if !bytes.Equal(caDER, ca.Certificate().Raw) {
		t.Fatal("CA mismatch")
	}
	// The enclave signs with the provisioned key.
	digest := sha256.Sum256([]byte("controller challenge"))
	signer, err := ce.Signer()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := signer.Sign(nil, digest[:], nil)
	if err != nil {
		t.Fatal(err)
	}
	pub := cert.PublicKey.(*ecdsa.PublicKey)
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		t.Fatal("enclave signature invalid under certificate key")
	}
}

func TestEnrollAndProvisionCSRMode(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vm := runEnrollment(t, fx, ce)
	cert := provision(t, vm, ce, ca, "vnf-csr", ModeCSR)
	if cert.Subject.CommonName != "vnf-csr" {
		t.Fatalf("CN = %q", cert.Subject.CommonName)
	}
	if err := ca.VerifyClient(cert); err != nil {
		t.Fatal(err)
	}
}

func TestCredentialsNeverVisibleInHostMemory(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vm := runEnrollment(t, fx, ce)
	provision(t, vm, ce, ca, "vnf-1", ModeCSR)

	// Extract the real private key scalar via a signature check: we know
	// it exists; confirm its encodings don't appear in the memory image.
	der, err := ce.enclave.ECall("pubkey", nil)
	if err != nil {
		t.Fatal(err)
	}
	img := ce.MemoryImage()
	if len(img) == 0 {
		t.Fatal("expected heap records")
	}
	for name, ct := range img {
		if bytes.Contains(ct, []byte("PRIVATE KEY")) {
			t.Fatalf("record %s leaks PEM text", name)
		}
		// PKCS8 ECDSA keys embed the public point; its presence would
		// imply plaintext storage.
		if len(der) > 24 && bytes.Contains(ct, der[len(der)-24:]) {
			t.Fatalf("record %s leaks key structure", name)
		}
	}
}

func TestProvisionRejectsKeyCertMismatch(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vm := runEnrollment(t, fx, ce)

	keyA, _ := pki.GenerateKey()
	keyB, _ := pki.GenerateKey()
	csr, err := pki.CreateCSR("vnf", keyA)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.SignClientCSR(csr, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pkcs8B, _ := x509.MarshalPKCS8PrivateKey(keyB)
	payload := ProvisionPayload{
		Mode: ModeVMGenerated, KeyPKCS8: pkcs8B,
		CertDER: cert.Raw, CADER: ca.Certificate().Raw,
	}
	body, _ := payload.Encode()
	frame, err := vm.codec.Seal(secchan.TypeProvision, body)
	if err != nil {
		t.Fatal(err)
	}
	respFrame, err := ce.HandleFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	typ, msg, err := vm.codec.Open(respFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != secchan.TypeError || !bytes.Contains(msg, []byte("does not match")) {
		t.Fatalf("mismatched key accepted: type=%d msg=%s", typ, msg)
	}
}

func TestRevokeWipesCredentials(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vm := runEnrollment(t, fx, ce)
	provision(t, vm, ce, ca, "vnf-1", ModeCSR)

	frame, err := vm.codec.Seal(secchan.TypeRevoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	respFrame, err := ce.HandleFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	typ, _, err := vm.codec.Open(respFrame)
	if err != nil || typ != secchan.TypeAck {
		t.Fatalf("revoke failed: type=%d err=%v", typ, err)
	}
	if _, _, err := ce.Certificate(); !errors.Is(err, ErrNotProvisioned) {
		t.Fatalf("certificate after revoke: %v", err)
	}
	if _, err := ce.Signer(); !errors.Is(err, ErrNotProvisioned) {
		t.Fatalf("signer after revoke: %v", err)
	}
}

func TestChannelFrameRequiresSession(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	if _, err := ce.HandleFrame([]byte("junk")); !errors.Is(err, ErrNoSession) {
		t.Fatalf("got %v, want ErrNoSession", err)
	}
}

func TestForgedChannelFrameRejected(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	runEnrollment(t, fx, ce)
	// A host adversary injects a frame sealed under a key it invented.
	rogue, err := secchan.NewCodec([16]byte{6, 6, 6}, secchan.RoleInitiator)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := rogue.Seal(secchan.TypeRevoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.HandleFrame(frame); !errors.Is(err, secchan.ErrAuth) {
		t.Fatalf("forged frame: %v", err)
	}
}

func TestHMACWithProvisionedKey(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vm := runEnrollment(t, fx, ce)
	provision(t, vm, ce, ca, "vnf-1", ModeCSR)
	mac, err := ce.HMAC([]byte("status report"))
	if err != nil {
		t.Fatal(err)
	}
	want := hmacSum([]byte("vm-generated-hmac-key"), []byte("status report"))
	if !bytes.Equal(mac, want) {
		t.Fatal("HMAC mismatch with VM-held key")
	}
}

// --- in-enclave TLS -------------------------------------------------------------

// startTLSServer runs a mutual-TLS echo server trusting ca for clients.
func startTLSServer(t *testing.T, ca *pki.CA) (addr string, stop func()) {
	t.Helper()
	serverKey, err := pki.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.IssueServerCert("controller", []string{"controller"}, []net.IP{net.IPv4(127, 0, 0, 1)}, &serverKey.PublicKey, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &tls.Config{
		MinVersion:   tls.VersionTLS12,
		Certificates: []tls.Certificate{{Certificate: [][]byte{serverCert.Raw}, PrivateKey: serverKey}},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    ca.Pool(),
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); <-done }
}

func provisionedEnclave(t *testing.T) (*fixture, *CredentialEnclave, *pki.CA, string, func()) {
	t.Helper()
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vm := runEnrollment(t, fx, ce)
	provision(t, vm, ce, ca, "vnf-tls", ModeCSR)
	addr, stop := startTLSServer(t, ca)
	return fx, ce, ca, addr, stop
}

func TestFullSessionTLS(t *testing.T) {
	fx, ce, _, addr, stop := provisionedEnclave(t)
	defer stop()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ce.DialTLS(raw, "controller")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("flow-mod: allow 10.0.0.0/24")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo mismatch: %q", buf)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	// Record I/O crossed the boundary: OCALLs were charged.
	if fx.model.Count(simtime.OpOCall) == 0 {
		t.Fatal("full-session mode charged no OCALLs")
	}
}

func TestKeyInEnclaveTLS(t *testing.T) {
	fx, ce, _, addr, stop := provisionedEnclave(t)
	defer stop()
	cfg, err := ce.ClientTLSConfig("controller")
	if err != nil {
		t.Fatal(err)
	}
	before := fx.model.Count(simtime.OpECall)
	conn, err := tls.Dial("tcp", addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// Handshake required at least one in-enclave signature, but far fewer
	// transitions than full-session mode.
	delta := fx.model.Count(simtime.OpECall) - before
	if delta < 1 {
		t.Fatal("no ECALL during key-in-enclave handshake")
	}
	if delta > 5 {
		t.Fatalf("key-in-enclave handshake used %d ECALLs, expected few", delta)
	}
}

func TestTLSWithoutProvisioningFails(t *testing.T) {
	fx := newFixture(t)
	ce := newCredEnclave(t, fx)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if _, err := ce.DialTLS(a, "controller"); err == nil {
		t.Fatal("unprovisioned enclave performed TLS")
	}
}

func TestCredentialMeasurementBindsVMKey(t *testing.T) {
	fx := newFixture(t)
	otherVM, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ExpectedCredentialMeasurement(fx.vendor, &fx.vmKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ExpectedCredentialMeasurement(fx.vendor, &otherVM.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("credential enclave measurement independent of VM key")
	}
	ce := newCredEnclave(t, fx)
	if ce.Identity().MRENCLAVE != m1 {
		t.Fatal("launched enclave does not match expected measurement")
	}
}
