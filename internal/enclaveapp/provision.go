// Package enclaveapp implements the two special-purpose enclaves of the
// paper's architecture (Figure 1): the integrity attestation enclave,
// which conveys the host's IMA measurement list inside SGX quotes, and the
// per-VNF credential enclave (TEE 1, TEE 2), which receives authentication
// credentials over the attested secure channel and drives TLS toward the
// network controller without key material ever leaving the enclave.
package enclaveapp

import (
	"encoding/json"
	"fmt"
)

// ProvisionMode selects how the VNF's private key comes to exist.
type ProvisionMode string

// Provisioning modes.
const (
	// ModeVMGenerated is the paper's design: "the Verification Manager
	// generates the certificate and private key and provisions them to
	// the corresponding VNFs enclaves" (§2). The key transits the
	// attested channel.
	ModeVMGenerated ProvisionMode = "vm-generated"
	// ModeCSR is the hardening extension: the key pair is born inside
	// the enclave and only a CSR leaves it. Benchmarked as an ablation.
	ModeCSR ProvisionMode = "csr"
)

// ProvisionPayload is the credential bundle carried by a TypeProvision
// record on the secure channel.
type ProvisionPayload struct {
	Mode ProvisionMode `json:"mode"`
	// KeyPKCS8 is the private key (ModeVMGenerated only).
	KeyPKCS8 []byte `json:"key_pkcs8,omitempty"`
	// CertDER is the client certificate signed by the VM's CA.
	CertDER []byte `json:"cert_der"`
	// CADER is the CA certificate (for server validation and chain
	// presentation).
	CADER []byte `json:"ca_der"`
	// HMACKey is the VM-generated key for lightweight message
	// authentication between VNF and VM (paper §2: the VM "generates the
	// HMAC key and nonces").
	HMACKey []byte `json:"hmac_key"`
}

// Encode marshals the payload.
func (p *ProvisionPayload) Encode() ([]byte, error) { return json.Marshal(p) }

// DecodeProvisionPayload parses a payload.
func DecodeProvisionPayload(b []byte) (*ProvisionPayload, error) {
	var p ProvisionPayload
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("enclaveapp: provision payload: %w", err)
	}
	return &p, nil
}

// CSRRequest asks the enclave to generate a key pair and return a CSR.
type CSRRequest struct {
	CommonName string `json:"common_name"`
}

// CSRResponse carries the resulting request.
type CSRResponse struct {
	CSRDER []byte `json:"csr_der"`
}
