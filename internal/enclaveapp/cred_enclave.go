package enclaveapp

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"vnfguard/internal/pki"
	"vnfguard/internal/ra"
	"vnfguard/internal/secchan"
	"vnfguard/internal/sgx"
)

// OCallQEQuote is served by the host runtime: it hands a local report to
// the platform quoting enclave (the AESM hand-off).
const OCallQEQuote = "qe_quote"

// credentialEnclaveVersion is measured into MRENCLAVE together with the
// Verification Manager's public key.
const credentialEnclaveVersion = "vnfguard credential enclave v1"

// Heap record names for long-lived secrets (encrypted at rest in the
// enclave page store).
const (
	heapTLSKey     = "tls_key_pkcs8"
	heapCert       = "cert_der"
	heapCA         = "ca_der"
	heapHMACKey    = "hmac_key"
	heapSessionKey = "ra_session_key"
)

// Credential enclave errors.
var (
	ErrNotProvisioned  = errors.New("enclaveapp: no credentials provisioned")
	ErrNoSession       = errors.New("enclaveapp: no attested session established")
	ErrKeyCertMismatch = errors.New("enclaveapp: provisioned key does not match certificate")
)

// CredentialEnclave wraps the launched per-VNF credential enclave (a TEE
// in Figure 1). Long-lived secrets live in the encrypted enclave heap;
// ephemeral session objects (the RA state machine, TLS connections) are
// enclave-internal code state.
type CredentialEnclave struct {
	enclave  *sgx.Enclave
	platform *sgx.Platform
	spid     sgx.SPID
	vmPub    *ecdsa.PublicKey

	mu    sync.Mutex
	att   *ra.Attester
	codec *secchan.RecordCodec

	tlsMu    sync.Mutex
	sessions map[uint32]*tlsSession
	nextSess uint32
}

// credentialCode returns the measured code bytes: the enclave version plus
// the trusted Verification Manager public key. Binding the VM key into the
// measurement means a substituted VM yields a different MRENCLAVE and
// fails appraisal.
func credentialCode(vmPub *ecdsa.PublicKey) []byte {
	return append([]byte(credentialEnclaveVersion), elliptic.Marshal(elliptic.P256(), vmPub.X, vmPub.Y)...)
}

// NewCredentialEnclave launches a credential enclave trusting vmPub as its
// challenger identity.
func NewCredentialEnclave(p *sgx.Platform, signer *ecdsa.PrivateKey, vmPub *ecdsa.PublicKey, spid sgx.SPID) (*CredentialEnclave, error) {
	ce := &CredentialEnclave{
		platform: p,
		spid:     spid,
		vmPub:    vmPub,
		sessions: make(map[uint32]*tlsSession),
	}
	spec := sgx.EnclaveSpec{
		Name:       "credential",
		ProdID:     2,
		SVN:        1,
		Attributes: sgx.Attributes{Mode64: true},
		HeapPages:  16,
		Modules: []sgx.CodeModule{{
			Name: "credential",
			Code: credentialCode(vmPub),
			Handlers: map[string]sgx.ECallHandler{
				"ra_msg1":       ce.handleRAMsg1,
				"ra_msg23":      ce.handleRAMsg23,
				"ra_msg4":       ce.handleRAMsg4,
				"channel_frame": ce.handleChannelFrame,
				"sign":          ce.handleSign,
				"pubkey":        ce.handlePubKey,
				"cert_info":     ce.handleCertInfo,
				"hmac":          ce.handleHMAC,
				"status":        ce.handleStatus,
				"tls_handshake": ce.handleTLSHandshake,
				"tls_read":      ce.handleTLSRead,
				"tls_write":     ce.handleTLSWrite,
				"tls_close":     ce.handleTLSClose,
			},
		}},
	}
	ss, err := sgx.SignEnclave(spec, signer)
	if err != nil {
		return nil, err
	}
	e, err := p.Launch(spec, ss)
	if err != nil {
		return nil, err
	}
	e.SetOCallHandler(func(name string, payload []byte) ([]byte, error) {
		switch name {
		case OCallQEQuote:
			report, err := sgx.DecodeReport(payload)
			if err != nil {
				return nil, err
			}
			q, err := p.QE().GetQuote(report, spid, sgx.QuoteLinkable)
			if err != nil {
				return nil, err
			}
			return q.Encode(), nil
		default:
			return nil, fmt.Errorf("enclaveapp: unknown ocall %q", name)
		}
	})
	ce.enclave = e
	return ce, nil
}

// ---- RA handshake ECALLs -------------------------------------------------

func (ce *CredentialEnclave) handleRAMsg1(ctx *sgx.Context, args []byte) ([]byte, error) {
	ce.mu.Lock()
	defer ce.mu.Unlock()
	att, m1, err := ra.NewAttester(ce.platform.GID(), ce.vmPub)
	if err != nil {
		return nil, err
	}
	ce.att = att
	return m1.Encode(), nil
}

func (ce *CredentialEnclave) handleRAMsg23(ctx *sgx.Context, args []byte) ([]byte, error) {
	ce.mu.Lock()
	att := ce.att
	ce.mu.Unlock()
	if att == nil {
		return nil, ErrNoSession
	}
	m2, err := ra.DecodeMsg2(args)
	if err != nil {
		return nil, err
	}
	quoteFn := func(rd sgx.ReportData) ([]byte, error) {
		report := ctx.Report(ce.platform.QE().TargetInfo(), rd)
		return ctx.OCall(OCallQEQuote, sgx.EncodeReport(report))
	}
	m3, err := att.ProcessMsg2(m2, quoteFn)
	if err != nil {
		return nil, err
	}
	return m3.Encode(), nil
}

func (ce *CredentialEnclave) handleRAMsg4(ctx *sgx.Context, args []byte) ([]byte, error) {
	ce.mu.Lock()
	att := ce.att
	ce.mu.Unlock()
	if att == nil {
		return nil, ErrNoSession
	}
	m4, err := ra.DecodeMsg4(args)
	if err != nil {
		return nil, err
	}
	if err := att.ProcessMsg4(m4); err != nil {
		return nil, err
	}
	sk, err := att.SessionKey()
	if err != nil {
		return nil, err
	}
	codec, err := secchan.NewCodec(sk, secchan.RoleResponder)
	if err != nil {
		return nil, err
	}
	if err := ctx.Put(heapSessionKey, sk[:]); err != nil {
		return nil, err
	}
	ce.mu.Lock()
	ce.codec = codec
	ce.att = nil
	ce.mu.Unlock()
	return []byte("enrolled"), nil
}

// ---- secure-channel record processing -------------------------------------

func (ce *CredentialEnclave) handleChannelFrame(ctx *sgx.Context, frame []byte) ([]byte, error) {
	ce.mu.Lock()
	codec := ce.codec
	ce.mu.Unlock()
	if codec == nil {
		return nil, ErrNoSession
	}
	msgType, payload, err := codec.Open(frame)
	if err != nil {
		return nil, err
	}
	respType, respPayload, err := ce.dispatchRecord(ctx, msgType, payload)
	if err != nil {
		respType = secchan.TypeError
		respPayload = []byte(err.Error())
	}
	return codec.Seal(respType, respPayload)
}

func (ce *CredentialEnclave) dispatchRecord(ctx *sgx.Context, msgType uint8, payload []byte) (uint8, []byte, error) {
	switch msgType {
	case secchan.TypeProvision:
		p, err := DecodeProvisionPayload(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := ce.storeCredentials(ctx, p); err != nil {
			return 0, nil, err
		}
		return secchan.TypeAck, []byte("provisioned"), nil
	case secchan.TypeCSR:
		var req CSRRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return 0, nil, err
		}
		csr, err := ce.generateKeyAndCSR(ctx, req.CommonName)
		if err != nil {
			return 0, nil, err
		}
		resp, err := json.Marshal(CSRResponse{CSRDER: csr})
		if err != nil {
			return 0, nil, err
		}
		return secchan.TypeCSR, resp, nil
	case secchan.TypeRevoke:
		ctx.Delete(heapTLSKey)
		ctx.Delete(heapCert)
		ctx.Delete(heapCA)
		ctx.Delete(heapHMACKey)
		return secchan.TypeAck, []byte("revoked"), nil
	default:
		return 0, nil, fmt.Errorf("enclaveapp: unexpected record type %d", msgType)
	}
}

// storeCredentials validates and persists a provisioning payload.
func (ce *CredentialEnclave) storeCredentials(ctx *sgx.Context, p *ProvisionPayload) error {
	cert, err := x509.ParseCertificate(p.CertDER)
	if err != nil {
		return fmt.Errorf("enclaveapp: provisioned certificate: %w", err)
	}
	certPub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return errors.New("enclaveapp: certificate key type unsupported")
	}
	switch p.Mode {
	case ModeVMGenerated:
		keyAny, err := x509.ParsePKCS8PrivateKey(p.KeyPKCS8)
		if err != nil {
			return fmt.Errorf("enclaveapp: provisioned key: %w", err)
		}
		key, ok := keyAny.(*ecdsa.PrivateKey)
		if !ok {
			return errors.New("enclaveapp: provisioned key type unsupported")
		}
		if !key.PublicKey.Equal(certPub) {
			return ErrKeyCertMismatch
		}
		if err := ctx.Put(heapTLSKey, p.KeyPKCS8); err != nil {
			return err
		}
	case ModeCSR:
		// The key must already exist from the CSR round; verify it
		// matches the issued certificate.
		key, err := ce.loadKey(ctx)
		if err != nil {
			return fmt.Errorf("enclaveapp: CSR-mode provisioning without key: %w", err)
		}
		if !key.PublicKey.Equal(certPub) {
			return ErrKeyCertMismatch
		}
	default:
		return fmt.Errorf("enclaveapp: unknown provisioning mode %q", p.Mode)
	}
	if err := ctx.Put(heapCert, p.CertDER); err != nil {
		return err
	}
	if err := ctx.Put(heapCA, p.CADER); err != nil {
		return err
	}
	if len(p.HMACKey) > 0 {
		if err := ctx.Put(heapHMACKey, p.HMACKey); err != nil {
			return err
		}
	}
	return nil
}

func (ce *CredentialEnclave) generateKeyAndCSR(ctx *sgx.Context, commonName string) ([]byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclaveapp: generating key: %w", err)
	}
	pkcs8, err := x509.MarshalPKCS8PrivateKey(key)
	if err != nil {
		return nil, err
	}
	if err := ctx.Put(heapTLSKey, pkcs8); err != nil {
		return nil, err
	}
	return pki.CreateCSR(commonName, key)
}

func (ce *CredentialEnclave) loadKey(ctx *sgx.Context) (*ecdsa.PrivateKey, error) {
	raw, ok := ctx.Get(heapTLSKey)
	if !ok {
		return nil, ErrNotProvisioned
	}
	keyAny, err := x509.ParsePKCS8PrivateKey(raw)
	if err != nil {
		return nil, fmt.Errorf("enclaveapp: stored key: %w", err)
	}
	key, ok := keyAny.(*ecdsa.PrivateKey)
	if !ok {
		return nil, errors.New("enclaveapp: stored key type unsupported")
	}
	return key, nil
}

// ---- credential-use ECALLs -------------------------------------------------

func (ce *CredentialEnclave) handleSign(ctx *sgx.Context, digest []byte) ([]byte, error) {
	key, err := ce.loadKey(ctx)
	if err != nil {
		return nil, err
	}
	return ecdsa.SignASN1(rand.Reader, key, digest)
}

func (ce *CredentialEnclave) handlePubKey(ctx *sgx.Context, args []byte) ([]byte, error) {
	key, err := ce.loadKey(ctx)
	if err != nil {
		return nil, err
	}
	return x509.MarshalPKIXPublicKey(&key.PublicKey)
}

// certInfo is the public half of the provisioned credentials.
type certInfo struct {
	CertDER []byte `json:"cert_der"`
	CADER   []byte `json:"ca_der"`
}

func (ce *CredentialEnclave) handleCertInfo(ctx *sgx.Context, args []byte) ([]byte, error) {
	cert, ok := ctx.Get(heapCert)
	if !ok {
		return nil, ErrNotProvisioned
	}
	caDER, _ := ctx.Get(heapCA)
	return json.Marshal(certInfo{CertDER: cert, CADER: caDER})
}

func (ce *CredentialEnclave) handleHMAC(ctx *sgx.Context, data []byte) ([]byte, error) {
	key, ok := ctx.Get(heapHMACKey)
	if !ok {
		return nil, ErrNotProvisioned
	}
	return hmacSum(key, data), nil
}

// enclaveStatus reports non-secret state.
type enclaveStatus struct {
	Enrolled    bool `json:"enrolled"`
	Provisioned bool `json:"provisioned"`
}

func (ce *CredentialEnclave) handleStatus(ctx *sgx.Context, args []byte) ([]byte, error) {
	_, enrolled := ctx.Get(heapSessionKey)
	_, provisioned := ctx.Get(heapCert)
	return json.Marshal(enclaveStatus{Enrolled: enrolled, Provisioned: provisioned})
}

// ---- untrusted-side wrappers ------------------------------------------------

// RAMsg1 starts the remote-attestation exchange.
func (ce *CredentialEnclave) RAMsg1() (*ra.Msg1, error) {
	out, err := ce.enclave.ECall("ra_msg1", nil)
	if err != nil {
		return nil, err
	}
	return ra.DecodeMsg1(out)
}

// RAProcessMsg2 feeds msg2 in and returns msg3.
func (ce *CredentialEnclave) RAProcessMsg2(m2 *ra.Msg2) (*ra.Msg3, error) {
	out, err := ce.enclave.ECall("ra_msg23", m2.Encode())
	if err != nil {
		return nil, err
	}
	return ra.DecodeMsg3(out)
}

// RAFinalize feeds msg4 in, completing enrollment.
func (ce *CredentialEnclave) RAFinalize(m4 *ra.Msg4) error {
	_, err := ce.enclave.ECall("ra_msg4", m4.Encode())
	return err
}

// HandleFrame passes one secure-channel frame into the enclave and returns
// the enclave's response frame.
func (ce *CredentialEnclave) HandleFrame(frame []byte) ([]byte, error) {
	return ce.enclave.ECall("channel_frame", frame)
}

// Certificate returns the provisioned certificate and CA (public data).
func (ce *CredentialEnclave) Certificate() (certDER, caDER []byte, err error) {
	out, err := ce.enclave.ECall("cert_info", nil)
	if err != nil {
		return nil, nil, err
	}
	var info certInfo
	if err := json.Unmarshal(out, &info); err != nil {
		return nil, nil, err
	}
	return info.CertDER, info.CADER, nil
}

// HMAC authenticates data under the VM-provisioned HMAC key.
func (ce *CredentialEnclave) HMAC(data []byte) ([]byte, error) {
	return ce.enclave.ECall("hmac", data)
}

// Status reports enrollment/provisioning state.
func (ce *CredentialEnclave) Status() (enrolled, provisioned bool, err error) {
	out, err := ce.enclave.ECall("status", nil)
	if err != nil {
		return false, false, err
	}
	var st enclaveStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return false, false, err
	}
	return st.Enrolled, st.Provisioned, nil
}

// Identity returns the launched enclave identity.
func (ce *CredentialEnclave) Identity() sgx.Identity { return ce.enclave.Identity() }

// MemoryImage exposes the host-visible (ciphertext) heap for
// confidentiality tests.
func (ce *CredentialEnclave) MemoryImage() map[string][]byte { return ce.enclave.MemoryImage() }

// Destroy tears the enclave down, wiping key material.
func (ce *CredentialEnclave) Destroy() { ce.enclave.Destroy() }

// ExpectedCredentialMeasurement computes the MRENCLAVE the Verification
// Manager pins for credential enclaves trusting vmPub.
func ExpectedCredentialMeasurement(signer *ecdsa.PrivateKey, vmPub *ecdsa.PublicKey) (sgx.Measurement, error) {
	spec := sgx.EnclaveSpec{
		Name:       "credential",
		ProdID:     2,
		SVN:        1,
		Attributes: sgx.Attributes{Mode64: true},
		HeapPages:  16,
		Modules: []sgx.CodeModule{{
			Name: "credential",
			Code: credentialCode(vmPub),
		}},
	}
	ss, err := sgx.SignEnclave(spec, signer)
	if err != nil {
		return sgx.Measurement{}, err
	}
	return ss.Measurement, nil
}
