// Package vnf provides the virtual network functions deployed in the
// paper's scenario and the Instance machinery that connects them to the
// network controller using enclave-resident credentials (step 6 of the
// workflow): every north-bound REST call authenticates with the
// provisioned client certificate, whose private key never leaves the
// credential enclave.
package vnf

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"strconv"

	"vnfguard/internal/controller"
	"vnfguard/internal/enclaveapp"
)

// Env describes where a VNF sits in the forwarding plane: the switch it
// programs and its inside/outside ports.
type Env struct {
	Switch  string
	InPort  int
	OutPort int
}

// VNF produces the flow entries realising a network function.
type VNF interface {
	// Name is the VNF instance name (certificate CN).
	Name() string
	// Kind is the function type (firewall, loadbalancer, monitor).
	Kind() string
	// Flows returns the entries to push for the given environment.
	Flows(env Env) []controller.FlowSpec
}

// ---- Firewall -----------------------------------------------------------------

// FWRule is one firewall rule; earlier rules take precedence.
type FWRule struct {
	Allow   bool
	Proto   string // "tcp", "udp", "" (any)
	DstPort uint16 // 0 = any
	Src     netip.Prefix
	Dst     netip.Prefix
}

// Firewall is a stateless packet filter with a default-deny tail.
type Firewall struct {
	InstanceName string
	Rules        []FWRule
}

// Name implements VNF.
func (f *Firewall) Name() string { return f.InstanceName }

// Kind implements VNF.
func (f *Firewall) Kind() string { return "firewall" }

// Flows implements VNF: one entry per rule at descending priority plus a
// default drop.
func (f *Firewall) Flows(env Env) []controller.FlowSpec {
	out := make([]controller.FlowSpec, 0, len(f.Rules)+1)
	base := 1000
	for i, r := range f.Rules {
		spec := controller.FlowSpec{
			Name:     fmt.Sprintf("%s-rule-%d", f.InstanceName, i),
			Switch:   env.Switch,
			Priority: strconv.Itoa(base - i),
			InPort:   strconv.Itoa(env.InPort),
			IPProto:  r.Proto,
		}
		if r.DstPort != 0 {
			spec.TCPDst = strconv.Itoa(int(r.DstPort))
		}
		if r.Src.IsValid() {
			spec.IPv4Src = r.Src.String()
		}
		if r.Dst.IsValid() {
			spec.IPv4Dst = r.Dst.String()
		}
		if r.Allow {
			spec.Actions = fmt.Sprintf("output=%d", env.OutPort)
		} else {
			spec.Actions = "drop"
		}
		out = append(out, spec)
	}
	out = append(out, controller.FlowSpec{
		Name:     f.InstanceName + "-default-deny",
		Switch:   env.Switch,
		Priority: "1",
		InPort:   strconv.Itoa(env.InPort),
		Actions:  "drop",
	})
	return out
}

// ---- Load balancer -------------------------------------------------------------

// Backend is one load-balancer target.
type Backend struct {
	// Clients carries the source prefix this backend serves (prefix-hash
	// distribution: the flow-level equivalent of consistent hashing
	// without header rewriting).
	Clients netip.Prefix
	// Port is the switch port toward the backend.
	Port int
}

// LoadBalancer splits traffic for a virtual IP across backends by client
// prefix.
type LoadBalancer struct {
	InstanceName string
	VIP          netip.Prefix
	Service      uint16 // TCP port of the balanced service
	Backends     []Backend
}

// Name implements VNF.
func (l *LoadBalancer) Name() string { return l.InstanceName }

// Kind implements VNF.
func (l *LoadBalancer) Kind() string { return "loadbalancer" }

// Flows implements VNF.
func (l *LoadBalancer) Flows(env Env) []controller.FlowSpec {
	out := make([]controller.FlowSpec, 0, len(l.Backends))
	for i, b := range l.Backends {
		out = append(out, controller.FlowSpec{
			Name:     fmt.Sprintf("%s-backend-%d", l.InstanceName, i),
			Switch:   env.Switch,
			Priority: "1500",
			IPv4Src:  b.Clients.String(),
			IPv4Dst:  l.VIP.String(),
			IPProto:  "tcp",
			TCPDst:   strconv.Itoa(int(l.Service)),
			Actions:  fmt.Sprintf("output=%d", b.Port),
		})
	}
	return out
}

// ---- Monitor -------------------------------------------------------------------

// Monitor mirrors suspicious traffic to the controller (an IDS tap).
type Monitor struct {
	InstanceName string
	// WatchPorts lists TCP destination ports to punt.
	WatchPorts []uint16
}

// Name implements VNF.
func (m *Monitor) Name() string { return m.InstanceName }

// Kind implements VNF.
func (m *Monitor) Kind() string { return "monitor" }

// Flows implements VNF: punted packets still forward (copy semantics are
// approximated by controller+output actions).
func (m *Monitor) Flows(env Env) []controller.FlowSpec {
	out := make([]controller.FlowSpec, 0, len(m.WatchPorts))
	for _, p := range m.WatchPorts {
		out = append(out, controller.FlowSpec{
			Name:     fmt.Sprintf("%s-watch-%d", m.InstanceName, p),
			Switch:   env.Switch,
			Priority: "2000",
			IPProto:  "tcp",
			TCPDst:   strconv.Itoa(int(p)),
			Actions:  fmt.Sprintf("controller,output=%d", env.OutPort),
		})
	}
	return out
}

// ---- Instance -------------------------------------------------------------------

// Instance is a deployed VNF bound to its credential enclave and the
// controller's north-bound API.
type Instance struct {
	vnf     VNF
	enclave *enclaveapp.CredentialEnclave
	client  *controller.Client
	env     Env
	mode    enclaveapp.TLSMode
}

// NewInstance connects a VNF to the controller using the enclave's
// provisioned credentials in the given TLS placement mode.
func NewInstance(v VNF, ce *enclaveapp.CredentialEnclave, controllerURL, serverName string, env Env, mode enclaveapp.TLSMode) (*Instance, error) {
	inst := &Instance{vnf: v, enclave: ce, env: env, mode: mode}
	switch mode {
	case enclaveapp.TLSKeyInEnclave:
		cfg, err := ce.ClientTLSConfig(serverName)
		if err != nil {
			return nil, fmt.Errorf("vnf: building TLS config: %w", err)
		}
		inst.client = controller.NewClient(controllerURL, cfg)
	case enclaveapp.TLSFullSession:
		dial := func(ctx context.Context, network, addr string) (net.Conn, error) {
			raw, err := (&net.Dialer{}).DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			conn, err := ce.DialTLS(raw, serverName)
			if err != nil {
				raw.Close()
				return nil, err
			}
			return conn, nil
		}
		inst.client = controller.NewClientWithDialer(controllerURL, dial)
	default:
		return nil, fmt.Errorf("vnf: unknown TLS mode %v", mode)
	}
	return inst, nil
}

// VNF returns the wrapped function.
func (i *Instance) VNF() VNF { return i.vnf }

// Client exposes the controller client (for health checks in examples).
func (i *Instance) Client() *controller.Client { return i.client }

// Activate pushes the VNF's flows through the authenticated north-bound
// API.
func (i *Instance) Activate() error {
	for _, spec := range i.vnf.Flows(i.env) {
		if err := i.client.PushFlow(spec); err != nil {
			return fmt.Errorf("vnf %s: pushing %s: %w", i.vnf.Name(), spec.Name, err)
		}
	}
	return nil
}

// Deactivate removes the VNF's flows.
func (i *Instance) Deactivate() error {
	var firstErr error
	for _, spec := range i.vnf.Flows(i.env) {
		if err := i.client.DeleteFlow(spec.Name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	i.client.CloseIdle()
	return firstErr
}
