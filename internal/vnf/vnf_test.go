package vnf

import (
	"net/netip"
	"strconv"
	"strings"
	"testing"

	"vnfguard/internal/controller"
	"vnfguard/internal/netsim"
)

func env() Env { return Env{Switch: "s1", InPort: 1, OutPort: 2} }

func TestFirewallFlows(t *testing.T) {
	fw := &Firewall{
		InstanceName: "fw-1",
		Rules: []FWRule{
			{Allow: true, Proto: "tcp", DstPort: 443, Dst: netip.MustParsePrefix("10.0.0.0/24")},
			{Allow: false, Proto: "tcp", DstPort: 22},
		},
	}
	flows := fw.Flows(env())
	if len(flows) != 3 {
		t.Fatalf("flow count = %d", len(flows))
	}
	if flows[0].Actions != "output=2" || flows[0].TCPDst != "443" {
		t.Fatalf("rule 0 = %+v", flows[0])
	}
	if flows[1].Actions != "drop" || flows[1].TCPDst != "22" {
		t.Fatalf("rule 1 = %+v", flows[1])
	}
	last := flows[len(flows)-1]
	if last.Actions != "drop" || last.Priority != "1" {
		t.Fatalf("default rule = %+v", last)
	}
	// Rule priorities strictly descend so earlier rules win.
	p0, err := strconv.Atoi(flows[0].Priority)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := strconv.Atoi(flows[1].Priority)
	if err != nil {
		t.Fatal(err)
	}
	if p0 <= p1 {
		t.Fatalf("priorities: %d vs %d", p0, p1)
	}
	// Every flow compiles at the controller.
	for _, f := range flows {
		if err := (controller.New("t", testNet(t))).PushFlow(f); err != nil {
			t.Fatalf("flow %s does not compile: %v", f.Name, err)
		}
	}
}

func testNet(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.NewNetwork()
	if _, err := n.AddSwitch("s1"); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost("h-in", "s1", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost("h-out", "s1", 2); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLoadBalancerFlows(t *testing.T) {
	lb := &LoadBalancer{
		InstanceName: "lb-1",
		VIP:          netip.MustParsePrefix("10.0.0.100/32"),
		Service:      80,
		Backends: []Backend{
			{Clients: netip.MustParsePrefix("192.168.0.0/17"), Port: 3},
			{Clients: netip.MustParsePrefix("192.168.128.0/17"), Port: 4},
		},
	}
	flows := lb.Flows(env())
	if len(flows) != 2 {
		t.Fatalf("flow count = %d", len(flows))
	}
	if flows[0].Actions != "output=3" || flows[1].Actions != "output=4" {
		t.Fatalf("flows = %+v", flows)
	}
	for _, f := range flows {
		if f.IPv4Dst != "10.0.0.100/32" || f.TCPDst != "80" {
			t.Fatalf("flow = %+v", f)
		}
	}
}

func TestMonitorFlows(t *testing.T) {
	m := &Monitor{InstanceName: "ids-1", WatchPorts: []uint16{22, 23}}
	flows := m.Flows(env())
	if len(flows) != 2 {
		t.Fatalf("flow count = %d", len(flows))
	}
	for _, f := range flows {
		if !strings.Contains(f.Actions, "controller") || !strings.Contains(f.Actions, "output=2") {
			t.Fatalf("monitor actions = %q", f.Actions)
		}
	}
}

func TestVNFKinds(t *testing.T) {
	cases := []struct {
		v    VNF
		kind string
	}{
		{&Firewall{InstanceName: "a"}, "firewall"},
		{&LoadBalancer{InstanceName: "b"}, "loadbalancer"},
		{&Monitor{InstanceName: "c"}, "monitor"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%T kind = %q", c.v, c.v.Kind())
		}
	}
}
