package ima

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"vnfguard/internal/simtime"
)

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy(`
# comment
dont_measure fsmagic=0x9fa0
measure func=BPRM_CHECK mask=MAY_EXEC
measure func=FILE_CHECK mask=MAY_READ uid=0 path=/etc
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if p.Rules[0].Measure || !p.Rules[0].FSMagicSet || p.Rules[0].FSMagic != 0x9fa0 {
		t.Fatalf("rule 0 = %+v", p.Rules[0])
	}
	if !p.Rules[2].UIDSet || p.Rules[2].UID != 0 || p.Rules[2].PathPrefix != "/etc" {
		t.Fatalf("rule 2 = %+v", p.Rules[2])
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []string{
		"frobnicate func=BPRM_CHECK",
		"measure func=NO_SUCH_HOOK",
		"measure mask=MAY_FLY",
		"measure uid=root",
		"measure fsmagic=zz",
		"measure oddterm",
		"measure color=red",
	}
	for _, c := range cases {
		if _, err := ParsePolicy(c); err == nil {
			t.Errorf("policy %q accepted", c)
		}
	}
}

func TestPolicyFirstMatchWins(t *testing.T) {
	p, err := ParsePolicy(`
dont_measure path=/proc
measure func=FILE_CHECK mask=MAY_READ
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.ShouldMeasure(Event{Path: "/proc/self/status", Hook: HookFileCheck, Mask: MayRead}) {
		t.Fatal("dont_measure rule not honored")
	}
	if !p.ShouldMeasure(Event{Path: "/usr/bin/vnf", Hook: HookFileCheck, Mask: MayRead}) {
		t.Fatal("measure rule not honored")
	}
}

func TestPolicyDefaultDeny(t *testing.T) {
	p := &Policy{}
	if p.ShouldMeasure(Event{Path: "/x", Hook: HookBprmCheck, Mask: MayExec}) {
		t.Fatal("empty policy measured")
	}
}

func TestDefaultPolicyMeasuresRootExec(t *testing.T) {
	p := DefaultPolicy()
	if !p.ShouldMeasure(Event{Path: "/usr/bin/vnf", Hook: HookBprmCheck, Mask: MayExec, UID: 0}) {
		t.Fatal("exec not measured")
	}
	if p.ShouldMeasure(Event{Path: "/proc/cpuinfo", Hook: HookFileCheck, Mask: MayRead, UID: 0, FSMagic: 0x9fa0}) {
		t.Fatal("procfs measured")
	}
	if !p.ShouldMeasure(Event{Path: "/etc/vnf.conf", Hook: HookFileCheck, Mask: MayRead, UID: 0}) {
		t.Fatal("/etc config read by root not measured")
	}
	if p.ShouldMeasure(Event{Path: "/home/u/notes.txt", Hook: HookFileCheck, Mask: MayRead, UID: 1000}) {
		t.Fatal("non-root read measured")
	}
}

func TestMaskRoundTrip(t *testing.T) {
	for _, s := range []string{"MAY_EXEC", "MAY_READ|MAY_WRITE", "MAY_EXEC|MAY_READ|MAY_WRITE"} {
		m, err := ParseMask(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != s {
			t.Errorf("round trip %q -> %q", s, m.String())
		}
	}
	if Mask(0).String() != "0" {
		t.Error("zero mask string")
	}
}

func TestListAppendAndAggregate(t *testing.T) {
	l := NewList([]byte("boot"))
	if l.Len() != 1 {
		t.Fatalf("new list has %d entries, want boot_aggregate only", l.Len())
	}
	agg0 := l.Aggregate()
	l.Append(sha256.Sum256([]byte("binary")), "/usr/bin/vnf")
	if l.Aggregate() == agg0 {
		t.Fatal("aggregate did not change on append")
	}
}

func TestListSerializeParseRoundTrip(t *testing.T) {
	l := NewList([]byte("boot-state"))
	for i := 0; i < 10; i++ {
		l.Append(sha256.Sum256([]byte{byte(i)}), fmt.Sprintf("/bin/tool%d", i))
	}
	parsed, err := ParseList(l.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Aggregate() != l.Aggregate() {
		t.Fatal("aggregate mismatch after round trip")
	}
	if parsed.Len() != l.Len() {
		t.Fatal("length mismatch after round trip")
	}
}

func TestParseListRejectsTamper(t *testing.T) {
	l := NewList([]byte("b"))
	l.Append(sha256.Sum256([]byte("x")), "/bin/x")
	text := l.Serialize()
	// Change the path without fixing the template hash.
	tampered := strings.Replace(text, "/bin/x", "/bin/y", 1)
	if _, err := ParseList(tampered); err == nil {
		t.Fatal("path tamper accepted")
	}
	// Malformed lines.
	for _, bad := range []string{
		"10 zz ima-ng sha256:aa /x",
		"11 " + strings.Repeat("a", 64) + " ima-ng sha256:" + strings.Repeat("b", 64) + " /x",
		"10 " + strings.Repeat("a", 64) + " ima-sig sha256:" + strings.Repeat("b", 64) + " /x",
		"10 " + strings.Repeat("a", 64) + " ima-ng md5:" + strings.Repeat("b", 64) + " /x",
		"10 short",
	} {
		if _, err := ParseList(bad); err == nil {
			t.Errorf("malformed line accepted: %q", bad)
		}
	}
}

func TestAggregateOrderSensitive(t *testing.T) {
	// Property: permuting the measurement order changes the aggregate
	// (PCR-extend is order-sensitive), while identical order reproduces it.
	f := func(a, b []byte) bool {
		h1, h2 := sha256.Sum256(a), sha256.Sum256(b)
		if h1 == h2 {
			return true
		}
		l1 := NewList(nil)
		l1.Append(h1, "/a")
		l1.Append(h2, "/b")
		l2 := NewList(nil)
		l2.Append(h2, "/b")
		l2.Append(h1, "/a")
		l3 := NewList(nil)
		l3.Append(h1, "/a")
		l3.Append(h2, "/b")
		return l1.Aggregate() != l2.Aggregate() && l1.Aggregate() == l3.Aggregate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemMeasuresOncePerContent(t *testing.T) {
	model := simtime.ZeroCosts()
	s := NewSystem(nil, model, []byte("boot"))
	ev := Event{Path: "/usr/bin/vnf", Hook: HookBprmCheck, Mask: MayExec, UID: 0}
	if !s.HandleEvent(ev, []byte("v1")) {
		t.Fatal("first exec not measured")
	}
	if s.HandleEvent(ev, []byte("v1")) {
		t.Fatal("unchanged content re-measured")
	}
	if !s.HandleEvent(ev, []byte("v2")) {
		t.Fatal("changed content not re-measured")
	}
	if got := model.Count(simtime.OpIMAMeasure); got != 2 {
		t.Fatalf("measure ops = %d, want 2", got)
	}
	if s.Len() != 3 { // boot_aggregate + v1 + v2
		t.Fatalf("list len = %d, want 3", s.Len())
	}
}

func TestSystemPCRSink(t *testing.T) {
	s := NewSystem(nil, nil, []byte("boot"))
	var extended [][32]byte
	s.SetPCRSink(func(th [32]byte) { extended = append(extended, th) })
	s.HandleEvent(Event{Path: "/usr/bin/a", Hook: HookBprmCheck, Mask: MayExec}, []byte("a"))
	s.HandleEvent(Event{Path: "/usr/bin/b", Hook: HookBprmCheck, Mask: MayExec}, []byte("b"))
	if len(extended) != 2 {
		t.Fatalf("sink received %d extends, want 2", len(extended))
	}
}

func TestSystemSnapshotConsistency(t *testing.T) {
	s := NewSystem(nil, nil, []byte("boot"))
	s.HandleEvent(Event{Path: "/usr/bin/a", Hook: HookBprmCheck, Mask: MayExec}, []byte("a"))
	text, agg := s.Snapshot()
	parsed, err := ParseList(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Aggregate() != agg {
		t.Fatal("snapshot aggregate does not match serialized list")
	}
}

func TestGoldenDBAppraisal(t *testing.T) {
	l := NewList([]byte("boot"))
	good := sha256.Sum256([]byte("good binary"))
	l.Append(good, "/usr/bin/vnf")

	db := NewGoldenDB()
	db.Allow("/usr/bin/vnf", good)
	db.Require("/usr/bin/vnf")

	res := db.Appraise(l)
	if !res.Trusted {
		t.Fatalf("good list rejected: %v", res.Findings)
	}
	if res.Appraised != 2 {
		t.Fatalf("appraised %d entries", res.Appraised)
	}
}

func TestGoldenDBDetectsModifiedFile(t *testing.T) {
	db := NewGoldenDB()
	db.Allow("/usr/bin/vnf", sha256.Sum256([]byte("good")))
	l := NewList([]byte("boot"))
	l.Append(sha256.Sum256([]byte("evil")), "/usr/bin/vnf")
	res := db.Appraise(l)
	if res.Trusted {
		t.Fatal("modified file passed appraisal")
	}
	if len(res.Findings) != 1 || !strings.Contains(res.Findings[0].Reason, "hash mismatch") {
		t.Fatalf("findings = %v", res.Findings)
	}
}

func TestGoldenDBUnknownFailClosed(t *testing.T) {
	db := NewGoldenDB()
	l := NewList([]byte("boot"))
	l.Append(sha256.Sum256([]byte("mystery")), "/usr/bin/mystery")
	if res := db.Appraise(l); res.Trusted {
		t.Fatal("unknown path trusted under fail-closed policy")
	}
	db.AllowUnknown = true
	if res := db.Appraise(l); !res.Trusted {
		t.Fatalf("unknown path rejected under AllowUnknown: %v", res.Findings)
	}
}

func TestGoldenDBMissingRequired(t *testing.T) {
	db := NewGoldenDB()
	db.Require("/usr/bin/vnf")
	l := NewList([]byte("boot"))
	res := db.Appraise(l)
	if res.Trusted {
		t.Fatal("missing required measurement trusted")
	}
	if !strings.Contains(res.Findings[0].Reason, "required measurement missing") {
		t.Fatalf("findings = %v", res.Findings)
	}
}

func TestGoldenDBLearnFromList(t *testing.T) {
	l := NewList([]byte("boot"))
	l.Append(sha256.Sum256([]byte("a")), "/a")
	l.Append(sha256.Sum256([]byte("b")), "/b")
	db := NewGoldenDB()
	db.LearnFromList(l)
	if res := db.Appraise(l); !res.Trusted {
		t.Fatalf("learned list rejected: %v", res.Findings)
	}
}

func TestTamperListSwapsEntries(t *testing.T) {
	s := NewSystem(nil, nil, []byte("boot"))
	s.HandleEvent(Event{Path: "/usr/bin/evil", Hook: HookBprmCheck, Mask: MayExec}, []byte("evil"))
	clean := NewList([]byte("boot"))
	clean.Append(sha256.Sum256([]byte("good")), "/usr/bin/good")
	s.TamperList(clean)
	text, _ := s.Snapshot()
	if strings.Contains(text, "evil") {
		t.Fatal("tampered list still shows original entries")
	}
}

func TestEntryStringFormat(t *testing.T) {
	e := NewList(nil).Entries()[0]
	str := e.String()
	if !strings.HasPrefix(str, "10 ") || !strings.Contains(str, " ima-ng sha256:") ||
		!strings.HasSuffix(str, BootAggregatePath) {
		t.Fatalf("entry format %q", str)
	}
}
