package ima

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// PCRIndex is the PCR that IMA extends (PCR 10 by convention).
const PCRIndex = 10

// Entry is one ima-ng measurement record.
type Entry struct {
	// PCR is the register extended (always PCRIndex here).
	PCR int
	// TemplateHash is SHA-256 over the template data; this is the value
	// extended into the aggregate.
	TemplateHash [32]byte
	// Template is the template name (ima-ng).
	Template string
	// FileHash is the SHA-256 of the file content.
	FileHash [32]byte
	// Path is the hint recorded with the measurement.
	Path string
}

// templateHash computes the ima-ng template digest.
func templateHash(fileHash [32]byte, path string) [32]byte {
	h := sha256.New()
	h.Write([]byte("sha256:"))
	h.Write(fileHash[:])
	h.Write([]byte{0})
	h.Write([]byte(path))
	h.Write([]byte{0})
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// String renders the entry in ascii_runtime_measurements format:
//
//	10 <template-hash> ima-ng sha256:<file-hash> <path>
func (e Entry) String() string {
	return fmt.Sprintf("%d %s %s sha256:%s %s",
		e.PCR, hex.EncodeToString(e.TemplateHash[:]), e.Template,
		hex.EncodeToString(e.FileHash[:]), e.Path)
}

// List is an append-only measurement list with its running PCR aggregate.
type List struct {
	entries   []Entry
	aggregate [32]byte
}

// BootAggregatePath is the conventional first entry of an IMA list.
const BootAggregatePath = "boot_aggregate"

// NewList creates a list seeded with the boot_aggregate entry computed
// over the supplied boot state (TPM PCRs 0–7 digest in deployments).
func NewList(bootState []byte) *List {
	l := &List{}
	l.Append(sha256.Sum256(bootState), BootAggregatePath)
	return l
}

// Append adds a measurement and extends the aggregate. It returns the
// appended entry.
func (l *List) Append(fileHash [32]byte, path string) Entry {
	e := Entry{
		PCR:          PCRIndex,
		Template:     "ima-ng",
		FileHash:     fileHash,
		Path:         path,
		TemplateHash: templateHash(fileHash, path),
	}
	l.entries = append(l.entries, e)
	l.aggregate = extend(l.aggregate, e.TemplateHash)
	return e
}

// extend computes PCR-extend semantics: new = SHA-256(old ‖ value).
func extend(old, value [32]byte) [32]byte {
	h := sha256.New()
	h.Write(old[:])
	h.Write(value[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Entries returns a copy of the list.
func (l *List) Entries() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len reports the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Aggregate returns the running PCR-10 value implied by the list.
func (l *List) Aggregate() [32]byte { return l.aggregate }

// Serialize renders the full ascii_runtime_measurements text.
func (l *List) Serialize() string {
	var b strings.Builder
	for _, e := range l.entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrMalformedList reports an unparsable serialized measurement list.
var ErrMalformedList = errors.New("ima: malformed measurement list")

// ParseList parses Serialize output and recomputes the aggregate. Template
// hashes are recomputed and checked against the recorded values, so a list
// that was textually tampered fails to parse.
func ParseList(text string) (*List, error) {
	l := &List{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 5)
		if len(fields) != 5 {
			return nil, fmt.Errorf("%w: line %d: %d fields", ErrMalformedList, lineNo, len(fields))
		}
		if fields[0] != "10" {
			return nil, fmt.Errorf("%w: line %d: pcr %q", ErrMalformedList, lineNo, fields[0])
		}
		if fields[2] != "ima-ng" {
			return nil, fmt.Errorf("%w: line %d: template %q", ErrMalformedList, lineNo, fields[2])
		}
		th, err := hex.DecodeString(fields[1])
		if err != nil || len(th) != 32 {
			return nil, fmt.Errorf("%w: line %d: template hash", ErrMalformedList, lineNo)
		}
		fhText, ok := strings.CutPrefix(fields[3], "sha256:")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: file hash algorithm", ErrMalformedList, lineNo)
		}
		fh, err := hex.DecodeString(fhText)
		if err != nil || len(fh) != 32 {
			return nil, fmt.Errorf("%w: line %d: file hash", ErrMalformedList, lineNo)
		}
		var fileHash [32]byte
		copy(fileHash[:], fh)
		e := l.Append(fileHash, fields[4])
		if hex.EncodeToString(e.TemplateHash[:]) != fields[1] {
			return nil, fmt.Errorf("%w: line %d: template hash mismatch (list tampered)", ErrMalformedList, lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ima: reading list: %w", err)
	}
	return l, nil
}
