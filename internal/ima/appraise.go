package ima

import (
	"fmt"
	"sort"
)

// GoldenDB holds the Verification Manager's expected measurement values:
// for each path, the set of acceptable file hashes. It drives appraisal of
// integrity measurement lists obtained through attestation.
type GoldenDB struct {
	allowed map[string]map[[32]byte]bool
	require map[string]bool
	// AllowUnknown, when true, tolerates measured paths absent from the
	// database (log-only appraisal). Default false: fail closed.
	AllowUnknown bool
}

// NewGoldenDB returns an empty database (fail-closed).
func NewGoldenDB() *GoldenDB {
	return &GoldenDB{
		allowed: make(map[string]map[[32]byte]bool),
		require: make(map[string]bool),
	}
}

// Allow registers an acceptable hash for a path.
func (db *GoldenDB) Allow(path string, hash [32]byte) {
	set, ok := db.allowed[path]
	if !ok {
		set = make(map[[32]byte]bool)
		db.allowed[path] = set
	}
	set[hash] = true
}

// Require marks a path that must appear in every appraised list (e.g. the
// VNF binary itself). Required paths are implicitly allowed with the
// hashes registered via Allow.
func (db *GoldenDB) Require(path string) { db.require[path] = true }

// LearnFromList registers every entry of a known-good list as allowed —
// the enrollment-time "golden run" workflow.
func (db *GoldenDB) LearnFromList(l *List) {
	for _, e := range l.Entries() {
		db.Allow(e.Path, e.FileHash)
	}
}

// Finding is one appraisal failure.
type Finding struct {
	Path   string
	Reason string
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s", f.Path, f.Reason) }

// AppraisalResult is the outcome of appraising a measurement list.
type AppraisalResult struct {
	Trusted  bool
	Findings []Finding
	// Appraised counts entries checked.
	Appraised int
}

// Appraise checks every entry of the list against the database and
// verifies that all required paths are present.
func (db *GoldenDB) Appraise(l *List) AppraisalResult {
	res := AppraisalResult{Trusted: true}
	seen := make(map[string]bool)
	for _, e := range l.Entries() {
		res.Appraised++
		seen[e.Path] = true
		set, known := db.allowed[e.Path]
		switch {
		case !known && e.Path == BootAggregatePath:
			// Boot aggregate is host-specific; unless pinned explicitly it
			// is accepted (its integrity is covered by E7's TPM mode).
		case !known:
			if !db.AllowUnknown {
				res.Trusted = false
				res.Findings = append(res.Findings, Finding{e.Path, "not in golden database"})
			}
		case !set[e.FileHash]:
			res.Trusted = false
			res.Findings = append(res.Findings, Finding{e.Path, "hash mismatch (file modified)"})
		}
	}
	var missing []string
	for path := range db.require {
		if !seen[path] {
			missing = append(missing, path)
		}
	}
	sort.Strings(missing)
	for _, path := range missing {
		res.Trusted = false
		res.Findings = append(res.Findings, Finding{path, "required measurement missing"})
	}
	return res
}
