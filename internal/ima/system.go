package ima

import (
	"crypto/sha256"
	"sync"

	"vnfguard/internal/simtime"
)

// System is the runtime measurement subsystem of one host: it applies the
// policy to access events, hashes content, deduplicates unchanged files
// (as the kernel's measurement cache does) and appends to the list.
type System struct {
	mu     sync.Mutex
	policy *Policy
	list   *List
	model  *simtime.CostModel
	// cache holds the last measured content hash per path; re-measurement
	// happens only when content changes.
	cache map[string][32]byte
	// pcrSink, when set, receives every template hash as it is extended —
	// this is the hardware-root-of-trust hook (TPM PCR 10) implemented
	// for the paper's future-work experiment (E7).
	pcrSink func(templateHash [32]byte)
}

// NewSystem creates a measurement subsystem with the given policy (nil
// means DefaultPolicy) over the given boot state.
func NewSystem(policy *Policy, model *simtime.CostModel, bootState []byte) *System {
	if policy == nil {
		policy = DefaultPolicy()
	}
	return &System{
		policy: policy,
		list:   NewList(bootState),
		model:  model,
		cache:  make(map[string][32]byte),
	}
}

// SetPCRSink installs the TPM-extend hook. Entries already in the list are
// not replayed; install before the host starts executing workloads.
func (s *System) SetPCRSink(sink func(templateHash [32]byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pcrSink = sink
}

// HandleEvent evaluates the policy for an access event and measures the
// content if required. It reports whether a new measurement was appended.
func (s *System) HandleEvent(ev Event, content []byte) bool {
	if !s.policy.ShouldMeasure(ev) {
		return false
	}
	hash := sha256.Sum256(content)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.cache[ev.Path]; ok && prev == hash {
		return false
	}
	s.model.Charge(simtime.OpIMAMeasure)
	s.cache[ev.Path] = hash
	e := s.list.Append(hash, ev.Path)
	if s.pcrSink != nil {
		s.pcrSink(e.TemplateHash)
	}
	return true
}

// Snapshot returns the serialized measurement list and its aggregate at a
// single point in time.
func (s *System) Snapshot() (text string, aggregate [32]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.list.Serialize(), s.list.Aggregate()
}

// Len reports the number of measurement entries.
func (s *System) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.list.Len()
}

// TamperList overwrites the recorded list entries *without* touching any
// PCR sink — modeling the §4 adversary: root on the host can rewrite the
// software-held measurement log but cannot rewind a TPM PCR. Used by the
// E7 experiment and tests only.
func (s *System) TamperList(replacement *List) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.list = replacement
}
