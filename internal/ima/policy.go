// Package ima models the Linux Integrity Measurement Architecture: a
// policy-driven measurement subsystem that hashes files on access events
// and accumulates them in an append-only measurement list anchored in a
// PCR aggregate. The Verification Manager appraises the list conveyed in
// attestation quotes exactly as the paper describes (§2: "the measurement
// targets are configured by the administrator in a policy file").
package ima

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Hook identifies the kernel event that triggered a measurement, mirroring
// the `func=` values of the IMA policy language.
type Hook string

// Supported hooks.
const (
	HookBprmCheck   Hook = "BPRM_CHECK"   // exec
	HookFileCheck   Hook = "FILE_CHECK"   // open
	HookMmapCheck   Hook = "MMAP_CHECK"   // mmap with exec
	HookModuleCheck Hook = "MODULE_CHECK" // kernel module load
)

// Mask bits for the `mask=` policy term.
type Mask uint8

// Access masks.
const (
	MayExec Mask = 1 << iota
	MayRead
	MayWrite
)

// ParseMask parses a MAY_EXEC|MAY_READ style mask expression.
func ParseMask(s string) (Mask, error) {
	var m Mask
	for _, part := range strings.Split(s, "|") {
		switch part {
		case "MAY_EXEC":
			m |= MayExec
		case "MAY_READ":
			m |= MayRead
		case "MAY_WRITE":
			m |= MayWrite
		default:
			return 0, fmt.Errorf("ima: unknown mask %q", part)
		}
	}
	return m, nil
}

// String renders the mask in policy syntax.
func (m Mask) String() string {
	var parts []string
	if m&MayExec != 0 {
		parts = append(parts, "MAY_EXEC")
	}
	if m&MayRead != 0 {
		parts = append(parts, "MAY_READ")
	}
	if m&MayWrite != 0 {
		parts = append(parts, "MAY_WRITE")
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, "|")
}

// Rule is one policy line. Zero-valued selectors match everything.
type Rule struct {
	// Measure is true for `measure` rules, false for `dont_measure`.
	Measure bool
	// Func restricts the rule to one hook ("" matches all).
	Func Hook
	// MaskSet indicates Mask is a constraint.
	MaskSet bool
	Mask    Mask
	// UIDSet indicates UID is a constraint.
	UIDSet bool
	UID    int
	// FSMagicSet indicates FSMagic is a constraint (used to exclude
	// pseudo-filesystems like proc/sysfs).
	FSMagicSet bool
	FSMagic    uint32
	// PathPrefix restricts to a path prefix ("" matches all). This is a
	// convenience beyond stock IMA (which selects by inode attributes);
	// the host model is path-based so prefixes are the natural selector.
	PathPrefix string
}

// Event is one access event presented to the policy.
type Event struct {
	Path    string
	Hook    Hook
	Mask    Mask
	UID     int
	FSMagic uint32
}

// matches reports whether the rule's selectors all match the event.
func (r *Rule) matches(ev Event) bool {
	if r.Func != "" && r.Func != ev.Hook {
		return false
	}
	if r.MaskSet && r.Mask&ev.Mask == 0 {
		return false
	}
	if r.UIDSet && r.UID != ev.UID {
		return false
	}
	if r.FSMagicSet && r.FSMagic != ev.FSMagic {
		return false
	}
	if r.PathPrefix != "" && !strings.HasPrefix(ev.Path, r.PathPrefix) {
		return false
	}
	return true
}

// Policy is an ordered rule list; first match wins, default is
// don't-measure (as in the kernel).
type Policy struct {
	Rules []Rule
}

// ShouldMeasure evaluates the policy for an event.
func (p *Policy) ShouldMeasure(ev Event) bool {
	for i := range p.Rules {
		if p.Rules[i].matches(ev) {
			return p.Rules[i].Measure
		}
	}
	return false
}

// ParsePolicy reads the IMA policy language: one rule per line, `measure`
// or `dont_measure` followed by key=value selectors. Blank lines and `#`
// comments are ignored.
func ParsePolicy(text string) (*Policy, error) {
	p := &Policy{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var rule Rule
		switch fields[0] {
		case "measure":
			rule.Measure = true
		case "dont_measure":
			rule.Measure = false
		default:
			return nil, fmt.Errorf("ima: line %d: unknown action %q", lineNo, fields[0])
		}
		for _, term := range fields[1:] {
			key, value, ok := strings.Cut(term, "=")
			if !ok {
				return nil, fmt.Errorf("ima: line %d: malformed term %q", lineNo, term)
			}
			switch key {
			case "func":
				switch Hook(value) {
				case HookBprmCheck, HookFileCheck, HookMmapCheck, HookModuleCheck:
					rule.Func = Hook(value)
				default:
					return nil, fmt.Errorf("ima: line %d: unknown func %q", lineNo, value)
				}
			case "mask":
				m, err := ParseMask(value)
				if err != nil {
					return nil, fmt.Errorf("ima: line %d: %w", lineNo, err)
				}
				rule.Mask, rule.MaskSet = m, true
			case "uid":
				uid, err := strconv.Atoi(value)
				if err != nil {
					return nil, fmt.Errorf("ima: line %d: bad uid %q", lineNo, value)
				}
				rule.UID, rule.UIDSet = uid, true
			case "fsmagic":
				magic, err := strconv.ParseUint(strings.TrimPrefix(value, "0x"), 16, 32)
				if err != nil {
					return nil, fmt.Errorf("ima: line %d: bad fsmagic %q", lineNo, value)
				}
				rule.FSMagic, rule.FSMagicSet = uint32(magic), true
			case "path":
				rule.PathPrefix = value
			default:
				return nil, fmt.Errorf("ima: line %d: unknown selector %q", lineNo, key)
			}
		}
		p.Rules = append(p.Rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ima: reading policy: %w", err)
	}
	return p, nil
}

// DefaultPolicy measures all root-executed binaries and module loads, and
// excludes proc (fsmagic 0x9fa0), matching the paper's deployment intent:
// measure the software running on the container host.
func DefaultPolicy() *Policy {
	p, err := ParsePolicy(`
# vnfguard default measurement policy
dont_measure fsmagic=0x9fa0
measure func=BPRM_CHECK mask=MAY_EXEC
measure func=MMAP_CHECK mask=MAY_EXEC
measure func=MODULE_CHECK
measure func=FILE_CHECK mask=MAY_READ uid=0 path=/etc
`)
	if err != nil {
		panic(err) // static policy, cannot fail
	}
	return p
}
