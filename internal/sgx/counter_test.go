package sgx

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"vnfguard/internal/epid"
	"vnfguard/internal/simtime"
)

// counterSpec builds an enclave exposing the monotonic-counter API as
// ECALLs, the way the translog sealed-head anchor uses it.
func counterSpec(name, code string) EnclaveSpec {
	s := echoSpec(name)
	s.Modules[0].Code = []byte(code)
	s.Modules[0].Handlers["bump"] = func(ctx *Context, args []byte) ([]byte, error) {
		n, err := ctx.IncrementMonotonicCounter(string(args))
		if err != nil {
			return nil, err
		}
		return []byte{byte(n)}, nil
	}
	s.Modules[0].Handlers["read"] = func(ctx *Context, args []byte) ([]byte, error) {
		n, ok := ctx.ReadMonotonicCounter(string(args))
		if !ok {
			return []byte{0xff}, nil
		}
		return []byte{byte(n)}, nil
	}
	return s
}

func TestMonotonicCounterAdvances(t *testing.T) {
	p, _ := testPlatform(t)
	e := launch(t, p, counterSpec("ctr", "counter code"), testSigner(t))
	if got, err := e.ECall("read", []byte("c1")); err != nil || got[0] != 0xff {
		t.Fatalf("fresh counter: got %v, %v", got, err)
	}
	for want := byte(1); want <= 3; want++ {
		got, err := e.ECall("bump", []byte("c1"))
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("bump %d: got %d", want, got[0])
		}
	}
	if got, _ := e.ECall("read", []byte("c1")); got[0] != 3 {
		t.Fatalf("read after bumps: got %d", got[0])
	}
	// A second named counter is independent.
	if got, _ := e.ECall("bump", []byte("c2")); got[0] != 1 {
		t.Fatalf("independent counter: got %d", got[0])
	}
}

// TestCounterNamespacedBySigner: enclaves from different vendors see
// different counters under the same name (PSE access-policy model),
// while a same-vendor upgrade (higher SVN) keeps its counters.
func TestCounterNamespacedBySigner(t *testing.T) {
	p, _ := testPlatform(t)
	vendorA, vendorB := testSigner(t), testSigner(t)
	a := launch(t, p, counterSpec("a", "shared code"), vendorA)
	if got, _ := a.ECall("bump", []byte("c")); got[0] != 1 {
		t.Fatalf("vendor A bump: got %d", got[0])
	}
	b := launch(t, p, counterSpec("b", "shared code"), vendorB)
	if got, _ := b.ECall("read", []byte("c")); got[0] != 0xff {
		t.Fatalf("vendor B sees vendor A's counter: %d", got[0])
	}
	upSpec := counterSpec("a2", "shared code v2")
	upSpec.SVN = 3
	up := launch(t, p, upSpec, vendorA)
	if got, _ := up.ECall("read", []byte("c")); got[0] != 1 {
		t.Fatalf("upgraded enclave lost its vendor counter: %d", got[0])
	}
}

// TestNVFileSurvivesPlatformRestart: two platforms opened over the same
// NV file are the same "machine" — counters persist and sealed blobs
// from the first lifetime unseal in the second.
func TestNVFileSurvivesPlatformRestart(t *testing.T) {
	nvPath := filepath.Join(t.TempDir(), "sgx-nv.json")
	issuer, err := epid.NewIssuer(7)
	if err != nil {
		t.Fatal(err)
	}
	vendor := testSigner(t)
	mkPlatform := func() *Platform {
		p, err := NewPlatform("machine", issuer, simtime.ZeroCosts(), WithNVFile(nvPath))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	spec := counterSpec("nv", "nv enclave code")
	spec.Modules[0].Handlers["seal"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.Seal(SealToMRENCLAVE, args, []byte("nv-aad"))
	}
	spec.Modules[0].Handlers["unseal"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.Unseal(args, []byte("nv-aad"))
	}

	p1 := mkPlatform()
	e1 := launch(t, p1, spec, vendor)
	if got, _ := e1.ECall("bump", []byte("c")); got[0] != 1 {
		t.Fatalf("first-life bump: got %d", got[0])
	}
	blob, err := e1.ECall("seal", []byte("survives reboot"))
	if err != nil {
		t.Fatal(err)
	}

	p2 := mkPlatform() // the "reboot"
	e2 := launch(t, p2, spec, vendor)
	if got, _ := e2.ECall("read", []byte("c")); got[0] != 1 {
		t.Fatalf("counter lost across restart: got %d", got[0])
	}
	if got, _ := e2.ECall("bump", []byte("c")); got[0] != 2 {
		t.Fatalf("post-restart bump: got %d", got[0])
	}
	pt, err := e2.ECall("unseal", blob)
	if err != nil {
		t.Fatalf("unsealing across restart: %v", err)
	}
	if !bytes.Equal(pt, []byte("survives reboot")) {
		t.Fatalf("unsealed %q", pt)
	}

	// A different NV file is a different machine: wrong sealing key.
	p3, err := NewPlatform("other-machine", issuer, simtime.ZeroCosts(),
		WithNVFile(filepath.Join(t.TempDir(), "other-nv.json")))
	if err != nil {
		t.Fatal(err)
	}
	e3 := launch(t, p3, spec, vendor)
	if _, err := e3.ECall("unseal", blob); !errors.Is(err, ErrSealWrongKey) {
		t.Fatalf("cross-machine unseal: got %v, want ErrSealWrongKey", err)
	}
}

// TestNVFileMergesConcurrentWriters: two live platforms over one NV
// file (unsupported but survivable) must not revert each other's
// increments — each bump re-merges the on-disk image, so the counter
// only ever moves forward.
func TestNVFileMergesConcurrentWriters(t *testing.T) {
	nvPath := filepath.Join(t.TempDir(), "shared-nv.json")
	issuer, err := epid.NewIssuer(8)
	if err != nil {
		t.Fatal(err)
	}
	vendor := testSigner(t)
	spec := counterSpec("shared", "shared nv code")
	mk := func() *Enclave {
		p, err := NewPlatform("machine", issuer, simtime.ZeroCosts(), WithNVFile(nvPath))
		if err != nil {
			t.Fatal(err)
		}
		return launch(t, p, spec, vendor)
	}
	a, b := mk(), mk()
	// Interleave bumps from both stale-snapshot holders; the observed
	// sequence must be strictly increasing with no lost updates.
	var last byte
	for i := 0; i < 3; i++ {
		for _, e := range []*Enclave{a, b} {
			got, err := e.ECall("bump", []byte("c"))
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != last+1 {
				t.Fatalf("bump after %d: got %d (lost update)", last, got[0])
			}
			last = got[0]
		}
	}
}

// TestSealMRENCLAVESVNMapping pins the error-mapping fix: under
// SealToMRENCLAVE an upgraded enclave (same measurement, higher SVN)
// unseals older blobs, while a blob from a newer SVN is the distinct
// ErrSealSVNRollback — not the ErrSealWrongKey that means "different
// identity or machine".
func TestSealMRENCLAVESVNMapping(t *testing.T) {
	p, _ := testPlatform(t)
	vendor := testSigner(t)
	mk := func(svn uint16) EnclaveSpec {
		s := echoSpec("svn-map")
		s.SVN = svn
		s.Modules[0].Handlers["seal"] = func(ctx *Context, args []byte) ([]byte, error) {
			return ctx.Seal(SealToMRENCLAVE, args, nil)
		}
		s.Modules[0].Handlers["unseal"] = func(ctx *Context, args []byte) ([]byte, error) {
			return ctx.Unseal(args, nil)
		}
		return s
	}
	old := launch(t, p, mk(1), vendor)
	upgraded := launch(t, p, mk(2), vendor)

	oldBlob, err := old.ECall("seal", []byte("v1 head"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := upgraded.ECall("unseal", oldBlob)
	if err != nil {
		t.Fatalf("upgraded enclave reading its old blob: %v", err)
	}
	if string(pt) != "v1 head" {
		t.Fatalf("unsealed %q", pt)
	}

	newBlob, err := upgraded.ECall("seal", []byte("v2 head"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.ECall("unseal", newBlob); !errors.Is(err, ErrSealSVNRollback) {
		t.Fatalf("downgraded enclave: got %v, want ErrSealSVNRollback", err)
	}
}

func TestSealedCounterBlobRoundTrip(t *testing.T) {
	in := SealedCounterBlob{Counter: 42, TreeSize: 1 << 20}
	copy(in.RootHash[:], bytes.Repeat([]byte{0xab}, 32))
	out, err := DecodeSealedCounterBlob(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := DecodeSealedCounterBlob(in.Encode()[:47]); err == nil {
		t.Fatal("short blob decoded")
	}
}
