package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// ReportData is the caller-chosen 64-byte field bound into reports and
// quotes; attestation protocols put channel-binding digests here.
type ReportData [64]byte

// ReportDataFromHash places a 32-byte digest in the first half of a
// ReportData, zero-padding the rest (the SGX SDK convention).
func ReportDataFromHash(sum [32]byte) ReportData {
	var rd ReportData
	copy(rd[:32], sum[:])
	return rd
}

// ReportBody carries the attested identity fields, mirroring
// sgx_report_body_t.
type ReportBody struct {
	CPUSVN     [16]byte
	Attributes Attributes
	MRENCLAVE  Measurement
	MRSIGNER   Measurement
	ISVProdID  uint16
	ISVSVN     uint16
	ReportData ReportData
}

// Encode serialises the body deterministically; this is the byte string
// MACed in reports and signed in quotes.
func (b *ReportBody) Encode() []byte {
	out := make([]byte, 0, 16+8+32+32+2+2+64)
	out = append(out, b.CPUSVN[:]...)
	var attrs [8]byte
	binary.LittleEndian.PutUint64(attrs[:], b.Attributes.encode())
	out = append(out, attrs[:]...)
	out = append(out, b.MRENCLAVE[:]...)
	out = append(out, b.MRSIGNER[:]...)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], b.ISVProdID)
	out = append(out, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], b.ISVSVN)
	out = append(out, u16[:]...)
	out = append(out, b.ReportData[:]...)
	return out
}

const reportBodyLen = 16 + 8 + 32 + 32 + 2 + 2 + 64

// decodeReportBody parses an encoded body.
func decodeReportBody(p []byte) (ReportBody, error) {
	var b ReportBody
	if len(p) < reportBodyLen {
		return b, errors.New("sgx: truncated report body")
	}
	copy(b.CPUSVN[:], p[0:16])
	b.Attributes = decodeAttributes(binary.LittleEndian.Uint64(p[16:24]))
	copy(b.MRENCLAVE[:], p[24:56])
	copy(b.MRSIGNER[:], p[56:88])
	b.ISVProdID = binary.LittleEndian.Uint16(p[88:90])
	b.ISVSVN = binary.LittleEndian.Uint16(p[90:92])
	copy(b.ReportData[:], p[92:156])
	return b, nil
}

func decodeAttributes(v uint64) Attributes {
	return Attributes{
		Debug:  v&(1<<1) != 0,
		Mode64: v&(1<<2) != 0,
		XFRM:   uint32(v >> 32),
	}
}

// TargetInfo identifies the enclave a report is destined for (EREPORT's
// TARGETINFO operand).
type TargetInfo struct {
	MRENCLAVE  Measurement
	Attributes Attributes
}

// Report is a local attestation report: a body MACed with the target
// enclave's report key. Only enclaves on the same platform can verify it.
type Report struct {
	Body ReportBody
	MAC  [32]byte
}

// Report generates a local report targeted at target, charging EREPORT.
func (c *Context) Report(target TargetInfo, data ReportData) *Report {
	c.e.platform.charge(opEReport)
	body := ReportBody{
		CPUSVN:     c.e.platform.cpusvn,
		Attributes: c.e.identity.Attributes,
		MRENCLAVE:  c.e.identity.MRENCLAVE,
		MRSIGNER:   c.e.identity.MRSIGNER,
		ISVProdID:  c.e.identity.ISVProdID,
		ISVSVN:     c.e.identity.ISVSVN,
		ReportData: data,
	}
	key := c.e.platform.reportKey(target.MRENCLAVE)
	return &Report{Body: body, MAC: reportMAC(key, &body)}
}

// VerifyReport checks a report that was targeted at the calling enclave.
func (c *Context) VerifyReport(r *Report) error {
	key := c.e.platform.reportKey(c.e.identity.MRENCLAVE)
	return verifyReportMAC(key, r)
}

func reportMAC(key [32]byte, body *ReportBody) [32]byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(body.Encode())
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// ErrReportMAC indicates a report that fails MAC verification.
var ErrReportMAC = errors.New("sgx: report MAC mismatch")

func verifyReportMAC(key [32]byte, r *Report) error {
	want := reportMAC(key, &r.Body)
	if !hmac.Equal(want[:], r.MAC[:]) {
		return ErrReportMAC
	}
	return nil
}
