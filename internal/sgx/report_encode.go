package sgx

import "errors"

// EncodeReport serialises a report for transport between an application
// enclave and the quoting enclave (the AESM hand-off in the SDK).
func EncodeReport(r *Report) []byte {
	out := make([]byte, 0, reportBodyLen+32)
	out = append(out, r.Body.Encode()...)
	out = append(out, r.MAC[:]...)
	return out
}

// DecodeReport parses EncodeReport output.
func DecodeReport(b []byte) (*Report, error) {
	if len(b) != reportBodyLen+32 {
		return nil, errors.New("sgx: report encoding length")
	}
	body, err := decodeReportBody(b[:reportBodyLen])
	if err != nil {
		return nil, err
	}
	r := &Report{Body: body}
	copy(r.MAC[:], b[reportBodyLen:])
	return r, nil
}
