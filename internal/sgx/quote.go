package sgx

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"vnfguard/internal/epid"
)

// SPID is the service-provider ID registered with the attestation service;
// linkable quotes use it as the EPID basename.
type SPID [16]byte

// QuoteSignType selects linkable or unlinkable EPID signatures.
type QuoteSignType uint16

// Quote signature types.
const (
	QuoteUnlinkable QuoteSignType = 0
	QuoteLinkable   QuoteSignType = 1
)

// QuoteVersion is the quote format version produced by this QE.
const QuoteVersion uint16 = 2

// Quote is the remotely-verifiable attestation evidence: the report body
// signed by the platform's EPID membership.
type Quote struct {
	Version  uint16
	SignType QuoteSignType
	GID      epid.GroupID
	QESVN    uint16
	PCESVN   uint16
	Basename [32]byte
	Body     ReportBody
	// Signature is the encoded EPID signature over the quote's signed
	// payload.
	Signature []byte
}

// signedPayload is the byte string covered by the EPID signature.
func (q *Quote) signedPayload() []byte {
	out := make([]byte, 0, 2+2+4+2+2+32+reportBodyLen)
	var u16 [2]byte
	var u32 [4]byte
	binary.LittleEndian.PutUint16(u16[:], q.Version)
	out = append(out, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(q.SignType))
	out = append(out, u16[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(q.GID))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint16(u16[:], q.QESVN)
	out = append(out, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], q.PCESVN)
	out = append(out, u16[:]...)
	out = append(out, q.Basename[:]...)
	out = append(out, q.Body.Encode()...)
	return out
}

// Encode serialises the quote for transport to the attestation service.
func (q *Quote) Encode() []byte {
	payload := q.signedPayload()
	out := make([]byte, 0, len(payload)+4+len(q.Signature))
	out = append(out, payload...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(q.Signature)))
	out = append(out, n[:]...)
	out = append(out, q.Signature...)
	return out
}

// quoteFixedLen is the length of the fixed (signed) prefix of an encoded
// quote.
const quoteFixedLen = 2 + 2 + 4 + 2 + 2 + 32 + reportBodyLen

// DecodeQuote parses an encoded quote.
func DecodeQuote(b []byte) (*Quote, error) {
	if len(b) < quoteFixedLen+4 {
		return nil, errors.New("sgx: truncated quote")
	}
	q := &Quote{}
	q.Version = binary.LittleEndian.Uint16(b[0:2])
	q.SignType = QuoteSignType(binary.LittleEndian.Uint16(b[2:4]))
	q.GID = epid.GroupID(binary.LittleEndian.Uint32(b[4:8]))
	q.QESVN = binary.LittleEndian.Uint16(b[8:10])
	q.PCESVN = binary.LittleEndian.Uint16(b[10:12])
	copy(q.Basename[:], b[12:44])
	body, err := decodeReportBody(b[44 : 44+reportBodyLen])
	if err != nil {
		return nil, err
	}
	q.Body = body
	rest := b[quoteFixedLen:]
	sigLen := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) != sigLen {
		return nil, errors.New("sgx: quote signature length mismatch")
	}
	q.Signature = append([]byte(nil), rest...)
	return q, nil
}

// VerifyQuote checks the quote's EPID signature under the group public key
// and revocation lists. It is the core of what IAS does server-side.
func VerifyQuote(q *Quote, gpk *epid.GroupPublicKey, rl *epid.RevocationLists) error {
	sig, err := epid.DecodeSignature(q.Signature)
	if err != nil {
		return fmt.Errorf("sgx: quote signature: %w", err)
	}
	return epid.Verify(gpk, q.signedPayload(), sig, rl)
}

// qeMeasurement is the well-known measurement of the quoting enclave code,
// identical across platforms running the same QE build.
var qeMeasurement = Measurement(sha256.Sum256([]byte("vnfguard-quoting-enclave-v1")))

// QuotingEnclave models the architectural quoting enclave: it verifies
// locally-attested reports targeted at itself and converts them into
// EPID-signed quotes.
type QuotingEnclave struct {
	platform *Platform
	member   *epid.Member
	svn      uint16
}

func newQuotingEnclave(p *Platform, m *epid.Member) *QuotingEnclave {
	return &QuotingEnclave{platform: p, member: m, svn: 1}
}

// TargetInfo returns the QE's target info; application enclaves direct
// their reports here for quoting.
func (qe *QuotingEnclave) TargetInfo() TargetInfo {
	return TargetInfo{MRENCLAVE: qeMeasurement, Attributes: Attributes{Mode64: true}}
}

// GID returns the EPID group of this QE.
func (qe *QuotingEnclave) GID() epid.GroupID { return qe.member.GroupID() }

// GetQuote verifies the local report and produces an EPID quote. Linkable
// quotes use the SPID as basename; unlinkable quotes use a fresh random
// basename. Charges OpQuote (the dominant attestation cost on hardware).
func (qe *QuotingEnclave) GetQuote(report *Report, spid SPID, signType QuoteSignType) (*Quote, error) {
	key := qe.platform.reportKey(qeMeasurement)
	if err := verifyReportMAC(key, report); err != nil {
		return nil, fmt.Errorf("sgx: quoting: %w", err)
	}
	qe.platform.charge(opQuote)

	var basename [32]byte
	switch signType {
	case QuoteLinkable:
		basename = sha256.Sum256(spid[:])
	case QuoteUnlinkable:
		if _, err := rand.Read(basename[:]); err != nil {
			return nil, fmt.Errorf("sgx: quote basename: %w", err)
		}
	default:
		return nil, fmt.Errorf("sgx: unknown quote sign type %d", signType)
	}

	q := &Quote{
		Version:  QuoteVersion,
		SignType: signType,
		GID:      qe.member.GroupID(),
		QESVN:    qe.svn,
		PCESVN:   1,
		Basename: basename,
		Body:     report.Body,
	}
	sig, err := qe.member.Sign(q.signedPayload(), basename[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: quote signing: %w", err)
	}
	q.Signature = sig.Encode()
	return q, nil
}
