package sgx

import "vnfguard/internal/simtime"

// Short aliases for the modeled operations charged by this package.
const (
	opECall   = simtime.OpECall
	opOCall   = simtime.OpOCall
	opEReport = simtime.OpEReport
	opQuote   = simtime.OpQuote
	opSeal    = simtime.OpSeal
	opUnseal  = simtime.OpUnseal
	opPageIn  = simtime.OpPageIn
	opCtrRead = simtime.OpCounterRead
	opCtrBump = simtime.OpCounterBump
)
