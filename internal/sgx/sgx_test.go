package sgx

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"vnfguard/internal/epid"
	"vnfguard/internal/simtime"
)

func testPlatform(t *testing.T) (*Platform, *epid.Issuer) {
	t.Helper()
	issuer, err := epid.NewIssuer(100)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform("host-a", issuer, simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	return p, issuer
}

func testSigner(t *testing.T) *ecdsa.PrivateKey {
	t.Helper()
	k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func echoSpec(name string) EnclaveSpec {
	return EnclaveSpec{
		Name:       name,
		ProdID:     1,
		SVN:        2,
		Attributes: Attributes{Mode64: true},
		Modules: []CodeModule{{
			Name: "main",
			Code: []byte("echo enclave code v1"),
			Handlers: map[string]ECallHandler{
				"echo": func(ctx *Context, args []byte) ([]byte, error) {
					return args, nil
				},
				"store": func(ctx *Context, args []byte) ([]byte, error) {
					return nil, ctx.Put("secret", args)
				},
				"load": func(ctx *Context, args []byte) ([]byte, error) {
					v, ok := ctx.Get("secret")
					if !ok {
						return nil, errors.New("missing")
					}
					return v, nil
				},
			},
		}},
		HeapPages: 4,
	}
}

func launch(t *testing.T, p *Platform, spec EnclaveSpec, signer *ecdsa.PrivateKey) *Enclave {
	t.Helper()
	ss, err := SignEnclave(spec, signer)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Launch(spec, ss)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Destroy)
	return e
}

func TestMeasurementDeterministic(t *testing.T) {
	spec := echoSpec("e")
	if measureSpec(spec) != measureSpec(spec) {
		t.Fatal("measurement not deterministic")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	base := measureSpec(echoSpec("e"))

	tampered := echoSpec("e")
	tampered.Modules[0].Code = []byte("echo enclave code v2")
	if measureSpec(tampered) == base {
		t.Fatal("code change did not change MRENCLAVE")
	}

	renamed := echoSpec("e")
	renamed.Modules[0].Name = "other"
	if measureSpec(renamed) == base {
		t.Fatal("module rename did not change MRENCLAVE")
	}

	debug := echoSpec("e")
	debug.Attributes.Debug = true
	if measureSpec(debug) == base {
		t.Fatal("attribute change did not change MRENCLAVE")
	}
}

func TestMeasurementModuleOrderIndependent(t *testing.T) {
	a := CodeModule{Name: "a", Code: []byte("aaa")}
	b := CodeModule{Name: "b", Code: []byte("bbb")}
	s1 := EnclaveSpec{Name: "e", Modules: []CodeModule{a, b}}
	s2 := EnclaveSpec{Name: "e", Modules: []CodeModule{b, a}}
	if measureSpec(s1) != measureSpec(s2) {
		t.Fatal("module order changed measurement")
	}
}

func TestLedgerPropertyDistinctContentsDistinctMeasurements(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		l1 := NewLedger(Attributes{}, 0)
		l1.AddRegion(0x1000, "m", PageRead, a)
		l2 := NewLedger(Attributes{}, 0)
		l2.AddRegion(0x1000, "m", PageRead, b)
		return l1.Finalize() != l2.Finalize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchAndECall(t *testing.T) {
	p, _ := testPlatform(t)
	e := launch(t, p, echoSpec("e"), testSigner(t))
	out, err := e.ECall("echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hi" {
		t.Fatalf("echo returned %q", out)
	}
}

func TestLaunchRejectsMismatchedSigStruct(t *testing.T) {
	p, _ := testPlatform(t)
	signer := testSigner(t)
	spec := echoSpec("e")
	ss, err := SignEnclave(spec, signer)
	if err != nil {
		t.Fatal(err)
	}
	spec.Modules[0].Code = []byte("tampered after signing")
	if _, err := p.Launch(spec, ss); !errors.Is(err, ErrBadSigStruct) {
		t.Fatalf("got %v, want ErrBadSigStruct", err)
	}
}

func TestLaunchRejectsForgedSignature(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("e")
	ss, err := SignEnclave(spec, testSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	ss.Signature[8] ^= 0xFF
	if _, err := p.Launch(spec, ss); !errors.Is(err, ErrBadSigStruct) {
		t.Fatalf("got %v, want ErrBadSigStruct", err)
	}
}

func TestUnknownECall(t *testing.T) {
	p, _ := testPlatform(t)
	e := launch(t, p, echoSpec("e"), testSigner(t))
	if _, err := e.ECall("nope", nil); !errors.Is(err, ErrUnknownECall) {
		t.Fatalf("got %v, want ErrUnknownECall", err)
	}
}

func TestDestroyedEnclaveRejectsCallsAndWipesMemory(t *testing.T) {
	p, _ := testPlatform(t)
	e := launch(t, p, echoSpec("e"), testSigner(t))
	if _, err := e.ECall("store", []byte("super-secret")); err != nil {
		t.Fatal(err)
	}
	e.Destroy()
	if _, err := e.ECall("echo", nil); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("got %v, want ErrDestroyed", err)
	}
	if img := e.MemoryImage(); len(img) != 0 {
		t.Fatalf("memory image after destroy has %d records", len(img))
	}
	// Destroy is idempotent.
	e.Destroy()
}

func TestHeapCiphertextHidesSecrets(t *testing.T) {
	p, _ := testPlatform(t)
	e := launch(t, p, echoSpec("e"), testSigner(t))
	secret := []byte("AKIA-this-is-a-credential-7f3a9")
	if _, err := e.ECall("store", secret); err != nil {
		t.Fatal(err)
	}
	img := e.MemoryImage()
	if len(img) != 1 {
		t.Fatalf("expected 1 heap record, got %d", len(img))
	}
	for _, ct := range img {
		if bytes.Contains(ct, secret) {
			t.Fatal("plaintext secret visible in host memory image")
		}
	}
	// The secret is still retrievable through the ECALL interface.
	out, err := e.ECall("load", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, secret) {
		t.Fatal("load did not return stored secret")
	}
}

func TestECallChargesTransitions(t *testing.T) {
	issuer, err := epid.NewIssuer(5)
	if err != nil {
		t.Fatal(err)
	}
	model := simtime.ZeroCosts()
	p, err := NewPlatform("host", issuer, model)
	if err != nil {
		t.Fatal(err)
	}
	e := launch(t, p, echoSpec("e"), testSigner(t))
	for i := 0; i < 3; i++ {
		if _, err := e.ECall("echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := model.Count(simtime.OpECall); got != 3 {
		t.Fatalf("ECall count = %d, want 3", got)
	}
}

func TestOCallRoundTrip(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("e")
	spec.Modules[0].Handlers["out"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.OCall("host-service", args)
	}
	e := launch(t, p, spec, testSigner(t))
	e.SetOCallHandler(func(name string, payload []byte) ([]byte, error) {
		if name != "host-service" {
			t.Errorf("ocall name %q", name)
		}
		return append(payload, '!'), nil
	})
	out, err := e.ECall("out", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ping!" {
		t.Fatalf("ocall result %q", out)
	}
}

func TestOCallWithoutHandler(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("e")
	spec.Modules[0].Handlers["out"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.OCall("x", nil)
	}
	e := launch(t, p, spec, testSigner(t))
	if _, err := e.ECall("out", nil); !errors.Is(err, ErrNoOCallHandler) {
		t.Fatalf("got %v, want ErrNoOCallHandler", err)
	}
}

func TestReportVerifyByTarget(t *testing.T) {
	p, _ := testPlatform(t)
	signer := testSigner(t)
	specA := echoSpec("a")
	specB := echoSpec("b")
	specB.Modules[0].Code = []byte("different code for b")

	var report *Report
	specA.Modules[0].Handlers["make-report"] = func(ctx *Context, args []byte) ([]byte, error) {
		var ti TargetInfo
		copy(ti.MRENCLAVE[:], args)
		ti.Attributes = Attributes{Mode64: true}
		var rd ReportData
		copy(rd[:], "channel binding")
		report = ctx.Report(ti, rd)
		return nil, nil
	}
	var verifyErr error
	specB.Modules[0].Handlers["check-report"] = func(ctx *Context, args []byte) ([]byte, error) {
		verifyErr = ctx.VerifyReport(report)
		return nil, nil
	}

	ea := launch(t, p, specA, signer)
	eb := launch(t, p, specB, signer)

	mrB := eb.Identity().MRENCLAVE
	if _, err := ea.ECall("make-report", mrB[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := eb.ECall("check-report", nil); err != nil {
		t.Fatal(err)
	}
	if verifyErr != nil {
		t.Fatalf("target verification failed: %v", verifyErr)
	}
	if report.Body.MRENCLAVE != ea.Identity().MRENCLAVE {
		t.Fatal("report carries wrong identity")
	}

	// A third enclave (wrong target) must fail verification.
	specC := echoSpec("c")
	specC.Modules[0].Code = []byte("different code for c")
	specC.Modules[0].Handlers["check-report"] = specB.Modules[0].Handlers["check-report"]
	ec := launch(t, p, specC, signer)
	if _, err := ec.ECall("check-report", nil); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(verifyErr, ErrReportMAC) {
		t.Fatalf("non-target verified report: %v", verifyErr)
	}
}

func TestReportTamperDetected(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("a")
	var report *Report
	spec.Modules[0].Handlers["self-report"] = func(ctx *Context, args []byte) ([]byte, error) {
		report = ctx.Report(TargetInfo{MRENCLAVE: ctx.Identity().MRENCLAVE}, ReportData{})
		return nil, nil
	}
	var verifyErr error
	spec.Modules[0].Handlers["verify"] = func(ctx *Context, args []byte) ([]byte, error) {
		verifyErr = ctx.VerifyReport(report)
		return nil, nil
	}
	e := launch(t, p, spec, testSigner(t))
	if _, err := e.ECall("self-report", nil); err != nil {
		t.Fatal(err)
	}
	report.Body.ISVSVN = 99
	if _, err := e.ECall("verify", nil); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(verifyErr, ErrReportMAC) {
		t.Fatal("tampered report accepted")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("e")
	spec.Modules[0].Handlers["seal"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.Seal(SealToMRENCLAVE, args, []byte("aad"))
	}
	spec.Modules[0].Handlers["unseal"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.Unseal(args, []byte("aad"))
	}
	e := launch(t, p, spec, testSigner(t))
	blob, err := e.ECall("seal", []byte("key material"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := e.ECall("unseal", blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "key material" {
		t.Fatalf("unsealed %q", pt)
	}
}

func TestSealBoundToMeasurement(t *testing.T) {
	p, _ := testPlatform(t)
	signer := testSigner(t)
	mk := func(name, code string) EnclaveSpec {
		s := echoSpec(name)
		s.Modules[0].Code = []byte(code)
		s.Modules[0].Handlers["seal"] = func(ctx *Context, args []byte) ([]byte, error) {
			return ctx.Seal(SealToMRENCLAVE, args, nil)
		}
		s.Modules[0].Handlers["unseal"] = func(ctx *Context, args []byte) ([]byte, error) {
			return ctx.Unseal(args, nil)
		}
		return s
	}
	e1 := launch(t, p, mk("a", "code one"), signer)
	e2 := launch(t, p, mk("b", "code two"), signer)
	blob, err := e1.ECall("seal", []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.ECall("unseal", blob); !errors.Is(err, ErrSealWrongKey) {
		t.Fatalf("cross-enclave unseal: got %v, want ErrSealWrongKey", err)
	}
}

func TestSealMRSIGNERUpgradePath(t *testing.T) {
	p, _ := testPlatform(t)
	signer := testSigner(t)
	mk := func(svn uint16, code string) EnclaveSpec {
		s := echoSpec("vnf")
		s.SVN = svn
		s.Modules[0].Code = []byte(code)
		s.Modules[0].Handlers["seal"] = func(ctx *Context, args []byte) ([]byte, error) {
			return ctx.Seal(SealToMRSIGNER, args, nil)
		}
		s.Modules[0].Handlers["unseal"] = func(ctx *Context, args []byte) ([]byte, error) {
			return ctx.Unseal(args, nil)
		}
		return s
	}
	old := launch(t, p, mk(2, "old build"), signer)
	upgraded := launch(t, p, mk(3, "new build"), signer)

	blob, err := old.ECall("seal", []byte("persisted"))
	if err != nil {
		t.Fatal(err)
	}
	// Newer SVN from same signer can read older blobs.
	pt, err := upgraded.ECall("unseal", blob)
	if err != nil {
		t.Fatalf("upgrade unseal failed: %v", err)
	}
	if string(pt) != "persisted" {
		t.Fatalf("unsealed %q", pt)
	}
	// Older SVN cannot read newer blobs (anti-rollback).
	newBlob, err := upgraded.ECall("seal", []byte("v3 data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.ECall("unseal", newBlob); !errors.Is(err, ErrSealSVNRollback) {
		t.Fatalf("rollback unseal: got %v, want ErrSealSVNRollback", err)
	}
}

func TestSealRejectsCorruptBlob(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("e")
	spec.Modules[0].Handlers["seal"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.Seal(SealToMRENCLAVE, args, nil)
	}
	spec.Modules[0].Handlers["unseal"] = func(ctx *Context, args []byte) ([]byte, error) {
		return ctx.Unseal(args, nil)
	}
	e := launch(t, p, spec, testSigner(t))
	blob, err := e.ECall("seal", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if _, err := e.ECall("unseal", blob); !errors.Is(err, ErrSealWrongKey) {
		t.Fatalf("corrupt unseal: got %v, want ErrSealWrongKey", err)
	}
	if _, err := e.ECall("unseal", []byte{1, 2}); !errors.Is(err, ErrSealWrongKey) {
		t.Fatalf("short unseal: got %v", err)
	}
}

func TestQuoteLifecycle(t *testing.T) {
	p, issuer := testPlatform(t)
	spec := echoSpec("attest")
	var report *Report
	spec.Modules[0].Handlers["report-for-qe"] = func(ctx *Context, args []byte) ([]byte, error) {
		var rd ReportData
		copy(rd[:], args)
		report = ctx.Report(p.QE().TargetInfo(), rd)
		return nil, nil
	}
	e := launch(t, p, spec, testSigner(t))
	if _, err := e.ECall("report-for-qe", []byte("nonce-binding")); err != nil {
		t.Fatal(err)
	}
	spid := SPID{1, 2, 3}
	q, err := p.QE().GetQuote(report, spid, QuoteLinkable)
	if err != nil {
		t.Fatal(err)
	}
	if q.Body.MRENCLAVE != e.Identity().MRENCLAVE {
		t.Fatal("quote body identity mismatch")
	}
	if err := VerifyQuote(q, issuer.GroupPublicKey(), nil); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}

	// Round-trip encoding.
	dec, err := DecodeQuote(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(dec, issuer.GroupPublicKey(), nil); err != nil {
		t.Fatalf("decoded quote rejected: %v", err)
	}

	// Tampering with the body invalidates the signature.
	dec.Body.ReportData[0] ^= 0xFF
	if err := VerifyQuote(dec, issuer.GroupPublicKey(), nil); err == nil {
		t.Fatal("tampered quote accepted")
	}
}

func TestQuoteRejectsForeignReport(t *testing.T) {
	p1, _ := testPlatform(t)
	issuer2, err := epid.NewIssuer(101)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlatform("host-b", issuer2, simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	spec := echoSpec("attest")
	var report *Report
	spec.Modules[0].Handlers["report-for-qe"] = func(ctx *Context, args []byte) ([]byte, error) {
		report = ctx.Report(p2.QE().TargetInfo(), ReportData{})
		return nil, nil
	}
	// Enclave on p1 produces a report "targeted" at p2's QE; p2's QE must
	// reject it because the report key derives from p2's root, not p1's.
	e := launch(t, p1, spec, testSigner(t))
	if _, err := e.ECall("report-for-qe", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.QE().GetQuote(report, SPID{}, QuoteLinkable); err == nil {
		t.Fatal("cross-platform report quoted")
	}
}

func TestQuoteLinkablePseudonymStable(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("attest")
	var report *Report
	spec.Modules[0].Handlers["r"] = func(ctx *Context, args []byte) ([]byte, error) {
		report = ctx.Report(p.QE().TargetInfo(), ReportData{})
		return nil, nil
	}
	e := launch(t, p, spec, testSigner(t))
	spid := SPID{9}
	getSig := func() [32]byte {
		t.Helper()
		if _, err := e.ECall("r", nil); err != nil {
			t.Fatal(err)
		}
		q, err := p.QE().GetQuote(report, spid, QuoteLinkable)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := epid.DecodeSignature(q.Signature)
		if err != nil {
			t.Fatal(err)
		}
		return sig.Pseudonym
	}
	if getSig() != getSig() {
		t.Fatal("linkable quotes from same platform+SPID have different pseudonyms")
	}
}

func TestEPCAccountingAndOvercommit(t *testing.T) {
	issuer, err := epid.NewIssuer(1)
	if err != nil {
		t.Fatal(err)
	}
	model := simtime.ZeroCosts()
	p, err := NewPlatform("tiny", issuer, model, WithEPCPages(8))
	if err != nil {
		t.Fatal(err)
	}
	spec := echoSpec("big")
	spec.HeapPages = 16 // module ~1 page + name page + 16 heap > 8 EPC pages
	e := launch(t, p, spec, testSigner(t))
	if p.EPCUsedPages() <= 8 {
		t.Fatalf("EPC used = %d, expected oversubscription", p.EPCUsedPages())
	}
	if _, err := e.ECall("echo", nil); err != nil {
		t.Fatal(err)
	}
	if model.Count(simtime.OpPageIn) == 0 {
		t.Fatal("oversubscribed enclave charged no page faults")
	}
	e.Destroy()
	if p.EPCUsedPages() != 0 {
		t.Fatalf("EPC not released: %d pages", p.EPCUsedPages())
	}
}

func TestConcurrentECallsBoundedByTCS(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("e")
	spec.TCSCount = 2
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	block := make(chan struct{})
	spec.Modules[0].Handlers["slow"] = func(ctx *Context, args []byte) ([]byte, error) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		<-block
		mu.Lock()
		inFlight--
		mu.Unlock()
		return nil, nil
	}
	e := launch(t, p, spec, testSigner(t))
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = e.ECall("slow", nil)
		}()
	}
	// Let goroutines pile up, then release.
	for i := 0; i < 100; i++ {
		mu.Lock()
		n := inFlight
		mu.Unlock()
		if n == 2 {
			break
		}
	}
	close(block)
	wg.Wait()
	if maxInFlight > 2 {
		t.Fatalf("max in-flight ECALLs = %d, TCS limit 2", maxInFlight)
	}
}

func TestReportDataFromHash(t *testing.T) {
	sum := [32]byte{1, 2, 3}
	rd := ReportDataFromHash(sum)
	if !bytes.Equal(rd[:32], sum[:]) {
		t.Fatal("hash not placed in first half")
	}
	for _, b := range rd[32:] {
		if b != 0 {
			t.Fatal("padding not zero")
		}
	}
}

func TestDecodeQuoteErrors(t *testing.T) {
	if _, err := DecodeQuote(nil); err == nil {
		t.Fatal("nil quote decoded")
	}
	if _, err := DecodeQuote(make([]byte, quoteFixedLen+3)); err == nil {
		t.Fatal("short quote decoded")
	}
	buf := make([]byte, quoteFixedLen+4+10)
	buf[quoteFixedLen+3] = 99 // sigLen=99 but only 10 bytes follow
	if _, err := DecodeQuote(buf); err == nil {
		t.Fatal("length-mismatched quote decoded")
	}
}
