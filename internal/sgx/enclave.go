package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Enclave lifecycle errors.
var (
	ErrNotInitialized  = errors.New("sgx: enclave not initialized")
	ErrDestroyed       = errors.New("sgx: enclave destroyed")
	ErrImmutable       = errors.New("sgx: enclave is immutable after EINIT")
	ErrUnknownECall    = errors.New("sgx: unknown ecall")
	ErrNoOCallHandler  = errors.New("sgx: no ocall handler installed")
	ErrEPCExhausted    = errors.New("sgx: EPC exhausted")
	ErrBadSigStruct    = errors.New("sgx: SIGSTRUCT signature does not match enclave")
	ErrLaunchDenied    = errors.New("sgx: launch denied")
	ErrSealWrongKey    = errors.New("sgx: unseal failed (wrong identity or corrupted blob)")
	ErrSealBadPolicy   = errors.New("sgx: unknown sealing policy")
	ErrSealSVNRollback = errors.New("sgx: sealed blob from newer SVN")
)

// ECallHandler is the entry point of one named ECALL. Handlers run "inside"
// the enclave: they receive a Context granting access to enclave-private
// memory and enclave-only operations (report, seal, ocall).
type ECallHandler func(ctx *Context, args []byte) ([]byte, error)

// OCallHandler serves OCALLs made by enclave code; it is installed by the
// untrusted host runtime.
type OCallHandler func(name string, payload []byte) ([]byte, error)

// CodeModule is a unit of enclave code: the bytes contribute to MRENCLAVE
// and the handlers become the enclave's ECALL table. Tampering with Code
// (as the compromised-host experiments do) changes the measurement.
type CodeModule struct {
	Name     string
	Code     []byte
	Handlers map[string]ECallHandler
}

// EnclaveSpec describes an enclave to be built and launched.
type EnclaveSpec struct {
	Name       string
	ProdID     uint16
	SVN        uint16
	Attributes Attributes
	Modules    []CodeModule
	// HeapPages reserves enclave-private heap (counts against EPC).
	HeapPages int
	// TCSCount bounds concurrent ECALLs (thread control structures).
	// Zero means 4.
	TCSCount int
}

type enclaveState int

const (
	stateInit enclaveState = iota
	stateReady
	stateDestroyed
)

// Identity is the attested identity of an enclave, as reflected in reports
// and quotes.
type Identity struct {
	MRENCLAVE  Measurement
	MRSIGNER   Measurement
	ISVProdID  uint16
	ISVSVN     uint16
	Attributes Attributes
}

// Enclave is a launched enclave instance. All state mutation goes through
// ECALLs; enclave-private memory is held encrypted (memory-encryption-
// engine model) and is only decrypted inside handler contexts.
type Enclave struct {
	platform *Platform
	id       uint64
	name     string
	identity Identity

	mu    sync.Mutex
	state enclaveState
	tcs   chan struct{}

	// memKey is the per-enclave memory-encryption key. Destroyed on
	// enclave teardown, rendering pages unrecoverable.
	memKey [32]byte
	aead   cipher.AEAD
	// heap maps names to ciphertext records (nonce ‖ ct). Host-visible
	// dumps expose only this ciphertext.
	heap map[string][]byte

	handlers map[string]ECallHandler
	ocall    OCallHandler

	pages          int
	overcommitted  int // pages beyond EPC fit; charged as faults per ECALL
	ecallsInFlight sync.WaitGroup
}

// SigStruct is the enclave signature structure: the vendor's signature
// binding measurement, product ID and SVN. MRSIGNER is derived from the
// embedded public key.
type SigStruct struct {
	Measurement Measurement
	ProdID      uint16
	SVN         uint16
	Attributes  Attributes
	SignerPub   []byte // uncompressed P-256
	Signature   []byte // ASN.1 ECDSA over the digest of the above
}

// SignEnclave produces the SIGSTRUCT for a spec under the vendor signing
// key. The measurement is computed exactly as Launch will recompute it.
func SignEnclave(spec EnclaveSpec, signer *ecdsa.PrivateKey) (*SigStruct, error) {
	mr := measureSpec(spec)
	pub := elliptic.Marshal(elliptic.P256(), signer.PublicKey.X, signer.PublicKey.Y)
	digest := sigStructDigest(mr, spec.ProdID, spec.SVN, spec.Attributes, pub)
	sig, err := ecdsa.SignASN1(rand.Reader, signer, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: signing enclave: %w", err)
	}
	return &SigStruct{
		Measurement: mr,
		ProdID:      spec.ProdID,
		SVN:         spec.SVN,
		Attributes:  spec.Attributes,
		SignerPub:   pub,
		Signature:   sig,
	}, nil
}

func sigStructDigest(mr Measurement, prodID, svn uint16, attrs Attributes, pub []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("sigstruct-v1"))
	h.Write(mr[:])
	h.Write([]byte{byte(prodID), byte(prodID >> 8), byte(svn), byte(svn >> 8)})
	var a [8]byte
	v := attrs.encode()
	for i := range a {
		a[i] = byte(v >> (8 * i))
	}
	h.Write(a[:])
	h.Write(pub)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// measureSpec computes MRENCLAVE for a spec: modules are measured in name
// order so that measurement is independent of slice ordering.
func measureSpec(spec EnclaveSpec) Measurement {
	mods := make([]CodeModule, len(spec.Modules))
	copy(mods, spec.Modules)
	sort.Slice(mods, func(i, j int) bool { return mods[i].Name < mods[j].Name })
	size := uint64(spec.HeapPages) * PageSize
	for _, m := range mods {
		size += uint64(len(m.Code)) + PageSize
	}
	l := NewLedger(spec.Attributes, size)
	base := uint64(0x1000)
	for _, m := range mods {
		base = l.AddRegion(base, m.Name, PageRead|PageExecute, m.Code)
	}
	return l.Finalize()
}

// Launch verifies the SIGSTRUCT against the spec, commits EPC, and
// initializes the enclave (ECREATE…EINIT collapsed). After Launch the
// enclave is immutable: its ECALL table and measurement are fixed.
func (p *Platform) Launch(spec EnclaveSpec, ss *SigStruct) (*Enclave, error) {
	if ss == nil {
		return nil, ErrLaunchDenied
	}
	mr := measureSpec(spec)
	if ss.Measurement != mr || ss.ProdID != spec.ProdID || ss.SVN != spec.SVN {
		return nil, ErrBadSigStruct
	}
	x, y := elliptic.Unmarshal(elliptic.P256(), ss.SignerPub)
	if x == nil {
		return nil, ErrBadSigStruct
	}
	pub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	digest := sigStructDigest(ss.Measurement, ss.ProdID, ss.SVN, ss.Attributes, ss.SignerPub)
	if !ecdsa.VerifyASN1(pub, digest[:], ss.Signature) {
		return nil, ErrBadSigStruct
	}

	pages := spec.HeapPages
	for _, m := range spec.Modules {
		pages += 1 + (len(m.Code)+PageSize-1)/PageSize
	}
	if pages == 0 {
		pages = 1
	}

	e := &Enclave{
		platform: p,
		name:     spec.Name,
		identity: Identity{
			MRENCLAVE:  mr,
			MRSIGNER:   sha256.Sum256(ss.SignerPub),
			ISVProdID:  spec.ProdID,
			ISVSVN:     spec.SVN,
			Attributes: spec.Attributes,
		},
		heap:     make(map[string][]byte),
		handlers: make(map[string]ECallHandler),
		pages:    pages,
	}
	tcs := spec.TCSCount
	if tcs <= 0 {
		tcs = 4
	}
	e.tcs = make(chan struct{}, tcs)
	if _, err := rand.Read(e.memKey[:]); err != nil {
		return nil, fmt.Errorf("sgx: deriving memory key: %w", err)
	}
	block, err := aes.NewCipher(e.memKey[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: memory cipher: %w", err)
	}
	e.aead, err = cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: memory AEAD: %w", err)
	}
	for _, m := range spec.Modules {
		for name, h := range m.Handlers {
			if _, dup := e.handlers[name]; dup {
				return nil, fmt.Errorf("sgx: duplicate ecall %q", name)
			}
			e.handlers[name] = h
		}
	}

	p.mu.Lock()
	p.nextEnclave++
	e.id = p.nextEnclave
	if p.epcUsedPages+pages > p.epcLimit {
		// Oversubscription: the enclave still launches, but the pages
		// beyond the budget fault (encrypted swap) on every entry.
		e.overcommitted = p.epcUsedPages + pages - p.epcLimit
	}
	p.epcUsedPages += pages
	p.enclaves[e.id] = e
	p.mu.Unlock()

	e.state = stateReady
	return e, nil
}

// Name returns the enclave's debug name.
func (e *Enclave) Name() string { return e.name }

// Identity returns the launched identity.
func (e *Enclave) Identity() Identity { return e.identity }

// Platform returns the hosting platform.
func (e *Enclave) Platform() *Platform { return e.platform }

// SetOCallHandler installs the untrusted OCALL dispatcher. It may be set
// once by the hosting runtime before use.
func (e *Enclave) SetOCallHandler(h OCallHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ocall = h
}

// ECall enters the enclave and runs the named handler. It charges the
// transition cost, enforces TCS concurrency, and charges page-fault costs
// when the enclave is EPC-oversubscribed.
func (e *Enclave) ECall(name string, args []byte) ([]byte, error) {
	e.mu.Lock()
	switch e.state {
	case stateDestroyed:
		e.mu.Unlock()
		return nil, ErrDestroyed
	case stateInit:
		e.mu.Unlock()
		return nil, ErrNotInitialized
	}
	h, ok := e.handlers[name]
	over := e.overcommitted
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownECall, name)
	}

	e.tcs <- struct{}{}
	defer func() { <-e.tcs }()

	e.platform.charge(opECall)
	if over > 0 {
		e.platform.chargeN(opPageIn, over)
	}
	e.ecallsInFlight.Add(1)
	defer e.ecallsInFlight.Done()
	return h(&Context{e: e}, args)
}

// Destroy tears the enclave down: EPC is released and the memory key is
// zeroed, making all heap ciphertext unrecoverable (EREMOVE semantics).
func (e *Enclave) Destroy() {
	e.mu.Lock()
	if e.state == stateDestroyed {
		e.mu.Unlock()
		return
	}
	e.state = stateDestroyed
	e.mu.Unlock()
	e.ecallsInFlight.Wait()

	e.mu.Lock()
	for i := range e.memKey {
		e.memKey[i] = 0
	}
	e.aead = nil
	e.heap = nil
	e.mu.Unlock()

	e.platform.mu.Lock()
	if _, ok := e.platform.enclaves[e.id]; ok {
		delete(e.platform.enclaves, e.id)
		e.platform.epcUsedPages -= e.pages
	}
	e.platform.mu.Unlock()
}

// MemoryImage returns a copy of the enclave's host-visible memory: the
// ciphertext records of the heap. Tests scan this for secret material to
// assert the confidentiality property.
func (e *Enclave) MemoryImage() map[string][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	img := make(map[string][]byte, len(e.heap))
	for k, v := range e.heap {
		img[k] = append([]byte(nil), v...)
	}
	return img
}

// Context is the view enclave code has while servicing an ECALL.
type Context struct {
	e *Enclave
}

// Identity returns the identity of the running enclave.
func (c *Context) Identity() Identity { return c.e.identity }

// PlatformCPUSVN returns the platform security version.
func (c *Context) PlatformCPUSVN() [16]byte { return c.e.platform.cpusvn }

// Put stores an enclave-private value. The plaintext exists only inside
// the call; at rest it is AEAD-encrypted under the enclave memory key with
// the record name as associated data.
func (c *Context) Put(key string, value []byte) error {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	if c.e.state == stateDestroyed {
		return ErrDestroyed
	}
	nonce := make([]byte, c.e.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("sgx: heap nonce: %w", err)
	}
	ct := c.e.aead.Seal(nonce, nonce, value, []byte(key))
	c.e.heap[key] = ct
	return nil
}

// Get retrieves an enclave-private value.
func (c *Context) Get(key string) ([]byte, bool) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	if c.e.state == stateDestroyed {
		return nil, false
	}
	rec, ok := c.e.heap[key]
	if !ok {
		return nil, false
	}
	ns := c.e.aead.NonceSize()
	if len(rec) < ns {
		return nil, false
	}
	pt, err := c.e.aead.Open(nil, rec[:ns], rec[ns:], []byte(key))
	if err != nil {
		return nil, false
	}
	return pt, true
}

// Delete removes an enclave-private value.
func (c *Context) Delete(key string) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	delete(c.e.heap, key)
}

// Keys lists stored record names in unspecified order.
func (c *Context) Keys() []string {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	out := make([]string, 0, len(c.e.heap))
	for k := range c.e.heap {
		out = append(out, k)
	}
	return out
}

// OCall exits the enclave to run an untrusted service and re-enters with
// its result, charging the transition both ways.
func (c *Context) OCall(name string, payload []byte) ([]byte, error) {
	c.e.mu.Lock()
	h := c.e.ocall
	c.e.mu.Unlock()
	if h == nil {
		return nil, ErrNoOCallHandler
	}
	c.e.platform.charge(opOCall)
	out, err := h(name, payload)
	c.e.platform.charge(opECall) // re-entry
	return out, err
}
