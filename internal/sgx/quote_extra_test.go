package sgx

import (
	"testing"
	"testing/quick"

	"vnfguard/internal/epid"
)

func TestUnlinkableQuotesHaveDistinctPseudonyms(t *testing.T) {
	p, issuer := testPlatform(t)
	spec := echoSpec("attest")
	var report *Report
	spec.Modules[0].Handlers["r"] = func(ctx *Context, args []byte) ([]byte, error) {
		report = ctx.Report(p.QE().TargetInfo(), ReportData{})
		return nil, nil
	}
	e := launch(t, p, spec, testSigner(t))
	getPseudonym := func() [32]byte {
		t.Helper()
		if _, err := e.ECall("r", nil); err != nil {
			t.Fatal(err)
		}
		q, err := p.QE().GetQuote(report, SPID{1}, QuoteUnlinkable)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyQuote(q, issuer.GroupPublicKey(), nil); err != nil {
			t.Fatal(err)
		}
		sig, err := epid.DecodeSignature(q.Signature)
		if err != nil {
			t.Fatal(err)
		}
		return sig.Pseudonym
	}
	if getPseudonym() == getPseudonym() {
		t.Fatal("unlinkable quotes share a pseudonym")
	}
}

func TestQuoteRejectsUnknownSignType(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("attest")
	var report *Report
	spec.Modules[0].Handlers["r"] = func(ctx *Context, args []byte) ([]byte, error) {
		report = ctx.Report(p.QE().TargetInfo(), ReportData{})
		return nil, nil
	}
	e := launch(t, p, spec, testSigner(t))
	if _, err := e.ECall("r", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.QE().GetQuote(report, SPID{}, QuoteSignType(7)); err == nil {
		t.Fatal("unknown sign type accepted")
	}
}

func TestAttributesEncodeDecodeProperty(t *testing.T) {
	f := func(debug, mode64 bool, xfrm uint32) bool {
		a := Attributes{Debug: debug, Mode64: mode64, XFRM: xfrm}
		return decodeAttributes(a.encode()) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReportEncodeDecodeRoundTrip(t *testing.T) {
	p, _ := testPlatform(t)
	spec := echoSpec("e")
	var report *Report
	spec.Modules[0].Handlers["r"] = func(ctx *Context, args []byte) ([]byte, error) {
		var rd ReportData
		copy(rd[:], args)
		report = ctx.Report(p.QE().TargetInfo(), rd)
		return nil, nil
	}
	e := launch(t, p, spec, testSigner(t))
	if _, err := e.ECall("r", []byte("binding-bytes")); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeReport(EncodeReport(report))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Body != report.Body || dec.MAC != report.MAC {
		t.Fatal("report round trip mismatch")
	}
	if _, err := DecodeReport([]byte("short")); err == nil {
		t.Fatal("short report decoded")
	}
}

func TestMeasurementString(t *testing.T) {
	var m Measurement
	if !m.IsZero() {
		t.Fatal("zero measurement not zero")
	}
	m[0] = 0xAB
	if m.IsZero() {
		t.Fatal("nonzero measurement reported zero")
	}
	if got := m.String(); len(got) != 64 || got[:2] != "ab" {
		t.Fatalf("String() = %q", got)
	}
}
