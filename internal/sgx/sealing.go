package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// SealPolicy selects which identity the sealing key binds to.
type SealPolicy uint8

const (
	// SealToMRENCLAVE binds sealed data to the exact enclave measurement:
	// only byte-identical enclave code can unseal.
	SealToMRENCLAVE SealPolicy = 1
	// SealToMRSIGNER binds to the signing vendor, product ID and SVN:
	// upgraded enclaves (higher SVN) from the same vendor can unseal
	// blobs sealed at lower SVN, but not vice versa.
	SealToMRSIGNER SealPolicy = 2
)

// sealed blob layout: policy(1) ‖ svn(2) ‖ nonce(12) ‖ ciphertext.
const sealHeaderLen = 1 + 2

// Seal encrypts plaintext under a key derived from the calling enclave's
// identity per policy, with aad authenticated alongside. Charges OpSeal.
func (c *Context) Seal(policy SealPolicy, plaintext, aad []byte) ([]byte, error) {
	if policy != SealToMRENCLAVE && policy != SealToMRSIGNER {
		return nil, ErrSealBadPolicy
	}
	c.e.platform.charge(opSeal)
	id := c.e.identity
	key := c.e.platform.sealKey(policy, id.MRENCLAVE, id.MRSIGNER, id.ISVProdID, id.ISVSVN)
	aead, err := newSealAEAD(key)
	if err != nil {
		return nil, err
	}
	header := make([]byte, sealHeaderLen)
	header[0] = byte(policy)
	binary.LittleEndian.PutUint16(header[1:3], id.ISVSVN)
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sgx: seal nonce: %w", err)
	}
	fullAAD := append(append([]byte(nil), header...), aad...)
	ct := aead.Seal(nil, nonce, plaintext, fullAAD)
	out := make([]byte, 0, len(header)+len(nonce)+len(ct))
	out = append(out, header...)
	out = append(out, nonce...)
	out = append(out, ct...)
	return out, nil
}

// Unseal decrypts a blob sealed by (a compatible version of) this enclave.
// Charges OpUnseal. Blobs sealed at a higher SVN than the caller's are
// rejected with ErrSealSVNRollback under either policy (anti-rollback:
// the caller is the downgraded party). Blobs sealed at a lower SVN
// unseal under both policies — MRSIGNER keys take the blob's SVN as a
// derivation input, and MRENCLAVE keys never depended on the SVN — so
// "enclave upgraded, old statedir" stays readable and distinguishable
// from "statedir copied to another machine" (ErrSealWrongKey).
func (c *Context) Unseal(blob, aad []byte) ([]byte, error) {
	c.e.platform.charge(opUnseal)
	if len(blob) < sealHeaderLen+12 {
		return nil, ErrSealWrongKey
	}
	policy := SealPolicy(blob[0])
	if policy != SealToMRENCLAVE && policy != SealToMRSIGNER {
		return nil, ErrSealBadPolicy
	}
	blobSVN := binary.LittleEndian.Uint16(blob[1:3])
	id := c.e.identity
	if blobSVN > id.ISVSVN {
		return nil, ErrSealSVNRollback
	}
	key := c.e.platform.sealKey(policy, id.MRENCLAVE, id.MRSIGNER, id.ISVProdID, blobSVN)
	aead, err := newSealAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := blob[sealHeaderLen : sealHeaderLen+aead.NonceSize()]
	ct := blob[sealHeaderLen+aead.NonceSize():]
	fullAAD := append(append([]byte(nil), blob[:sealHeaderLen]...), aad...)
	pt, err := aead.Open(nil, nonce, ct, fullAAD)
	if err != nil {
		return nil, ErrSealWrongKey
	}
	return pt, nil
}

func newSealAEAD(key [32]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal cipher: %w", err)
	}
	return cipher.NewGCM(block)
}
