package sgx

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"vnfguard/internal/epid"
	"vnfguard/internal/simtime"
)

// Platform models one SGX-capable CPU package: fused root keys, the CPU
// security version, the EPC budget, and the provisioned EPID membership
// used by its quoting enclave.
type Platform struct {
	name   string
	cpusvn [16]byte

	// rootSeal and rootReport stand in for the fused SGX root keys from
	// which EGETKEY derives sealing and report keys.
	rootSeal   [32]byte
	rootReport [32]byte

	model *simtime.CostModel

	// nv is the platform's non-volatile store: monotonic counters and,
	// when file-backed, the seed the root keys derive from (so one NV
	// file = one "machine" across process restarts).
	nv     *nvStore
	nvPath string

	qe *QuotingEnclave

	mu           sync.Mutex
	nextEnclave  uint64
	epcUsedPages int
	epcLimit     int // pages
	enclaves     map[uint64]*Enclave
}

// DefaultEPCPages is the usable EPC budget (~92 MiB as on SGX1 parts).
const DefaultEPCPages = 92 * 1024 * 1024 / PageSize

// PlatformOption configures NewPlatform.
type PlatformOption func(*Platform)

// WithEPCPages overrides the EPC budget (in pages).
func WithEPCPages(pages int) PlatformOption {
	return func(p *Platform) { p.epcLimit = pages }
}

// WithCPUSVN sets the CPU security version reported in quotes.
func WithCPUSVN(svn [16]byte) PlatformOption {
	return func(p *Platform) { p.cpusvn = svn }
}

// WithNVFile backs the platform's non-volatile state (root-key seed and
// monotonic counters) with a file, modeling one physical machine across
// process restarts: the same NV file yields the same sealing keys and
// the same counter values. The file stands in for fuses and flash — it
// must live outside any statedir a rollback attacker is assumed to
// control, or the counter's freshness guarantee collapses onto the disk
// it is supposed to audit. Like the hardware it models, an NV file
// belongs to one machine: give each concurrently running platform its
// own file (counter updates merge defensively, but the single-writer
// layout is the supported one).
func WithNVFile(path string) PlatformOption {
	return func(p *Platform) { p.nvPath = path }
}

// NewPlatform creates a platform whose quoting enclave is provisioned into
// the issuer's EPID group (the manufacture-time provisioning flow). model
// may be nil for zero-cost operation.
func NewPlatform(name string, issuer *epid.Issuer, model *simtime.CostModel, opts ...PlatformOption) (*Platform, error) {
	if issuer == nil {
		return nil, errors.New("sgx: platform requires an EPID issuer")
	}
	p := &Platform{
		name:     name,
		model:    model,
		epcLimit: DefaultEPCPages,
		enclaves: make(map[uint64]*Enclave),
	}
	if _, err := rand.Read(p.rootSeal[:]); err != nil {
		return nil, fmt.Errorf("sgx: fusing seal root: %w", err)
	}
	if _, err := rand.Read(p.rootReport[:]); err != nil {
		return nil, fmt.Errorf("sgx: fusing report root: %w", err)
	}
	p.cpusvn[0] = 2 // baseline CPUSVN
	for _, o := range opts {
		o(p)
	}
	if p.nvPath != "" {
		nv, err := openNV(p.nvPath)
		if err != nil {
			return nil, err
		}
		p.nv = nv
		// File-backed NV carries the machine identity: derive the root
		// keys from the persisted seed so sealed blobs survive process
		// restarts, exactly as fused keys survive reboots.
		p.rootSeal = deriveRoot(nv.seed, "nv-root-seal")
		p.rootReport = deriveRoot(nv.seed, "nv-root-report")
	} else {
		p.nv = newMemNV()
	}
	member, err := issuer.Join()
	if err != nil {
		return nil, fmt.Errorf("sgx: provisioning EPID membership: %w", err)
	}
	p.qe = newQuotingEnclave(p, member)
	return p, nil
}

// Name returns the platform's name (hostname of the container host).
func (p *Platform) Name() string { return p.name }

// CPUSVN returns the platform security version.
func (p *Platform) CPUSVN() [16]byte { return p.cpusvn }

// GID returns the EPID group of the platform's quoting enclave.
func (p *Platform) GID() epid.GroupID { return p.qe.member.GroupID() }

// Model returns the platform's cost model (possibly nil).
func (p *Platform) Model() *simtime.CostModel { return p.model }

// QE returns the platform's quoting enclave.
func (p *Platform) QE() *QuotingEnclave { return p.qe }

// EPIDMember exposes the quoting enclave's group membership. It exists so
// the revocation experiment (E9) can simulate the platform key leaking to
// an attacker who then lands on a PrivRL. Nothing in the trusted workflow
// reads it.
func (p *Platform) EPIDMember() *epid.Member { return p.qe.member }

// EPCUsedPages reports currently committed EPC pages.
func (p *Platform) EPCUsedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epcUsedPages
}

// deriveRoot expands the NV seed into one of the platform root keys.
func deriveRoot(seed []byte, label string) [32]byte {
	mac := hmac.New(sha256.New, seed)
	mac.Write([]byte(label))
	var k [32]byte
	copy(k[:], mac.Sum(nil))
	return k
}

// reportKey derives the report key of an enclave identified by mrenclave,
// mirroring EGETKEY(REPORT): only the platform (and thus target enclaves
// running on it) can derive it.
func (p *Platform) reportKey(target Measurement) [32]byte {
	mac := hmac.New(sha256.New, p.rootReport[:])
	mac.Write([]byte("report-key-v1"))
	mac.Write(target[:])
	var k [32]byte
	copy(k[:], mac.Sum(nil))
	return k
}

// sealKey derives a sealing key for the given policy and identity fields,
// mirroring EGETKEY(SEAL). Keys bound to ISVSVN n must be derivable by
// enclaves at SVN ≥ n (upgrade path), so the SVN is an explicit input and
// callers request the blob's recorded SVN.
func (p *Platform) sealKey(policy SealPolicy, enclave Measurement, signer Measurement, prodID uint16, svn uint16) [32]byte {
	mac := hmac.New(sha256.New, p.rootSeal[:])
	mac.Write([]byte("seal-key-v1"))
	mac.Write([]byte{byte(policy)})
	switch policy {
	case SealToMRENCLAVE:
		mac.Write(enclave[:])
	case SealToMRSIGNER:
		mac.Write(signer[:])
		var b [4]byte
		b[0] = byte(prodID)
		b[1] = byte(prodID >> 8)
		b[2] = byte(svn)
		b[3] = byte(svn >> 8)
		mac.Write(b[:])
	}
	var k [32]byte
	copy(k[:], mac.Sum(nil))
	return k
}

func (p *Platform) charge(op simtime.Op) { p.model.Charge(op) }

func (p *Platform) chargeN(op simtime.Op, n int) { p.model.ChargeN(op, n) }
