package sgx

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Monotonic counters: the simulated equivalent of the SGX Platform
// Services counters. A counter lives in the platform's non-volatile
// store — not in any enclave and not on the disk an attacker can rewind
// — and only ever moves forward, which is exactly the primitive a
// sealed blob needs to prove it is the *newest* thing the enclave ever
// sealed, not merely *a* thing it once sealed. Counters are namespaced
// by the calling enclave's signer identity (MRSIGNER + product ID),
// PSE-style, so an upgraded enclave (higher SVN, same vendor) keeps its
// counters while an unrelated enclave cannot touch them.

// Counter errors.
var (
	// ErrCounterStore reports that the platform's non-volatile store
	// could not be durably updated; the increment did not happen.
	ErrCounterStore = errors.New("sgx: monotonic counter store unavailable")
)

// nvStore models the platform's non-volatile hardware state: the fused
// root-key seed and the monotonic counters. Memory-backed by default
// (one process lifetime = one machine); file-backed via WithNVFile so
// multi-process deployments keep their "hardware" across runs. The NV
// file stands in for fuses and flash — it is not part of any statedir a
// rollback attacker is assumed to control.
type nvStore struct {
	mu       sync.Mutex
	path     string // "" = memory only
	seed     []byte // root-key seed when file-backed
	counters map[string]uint64
}

// nvImage is the NV file's JSON layout.
type nvImage struct {
	Seed     []byte            `json:"seed"`
	Counters map[string]uint64 `json:"counters"`
}

func newMemNV() *nvStore {
	return &nvStore{counters: make(map[string]uint64)}
}

// openNV loads (or initialises) the file-backed NV store.
func openNV(path string) (*nvStore, error) {
	nv := &nvStore{path: path, counters: make(map[string]uint64)}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		nv.seed = make([]byte, 32)
		if _, err := rand.Read(nv.seed); err != nil {
			return nil, fmt.Errorf("sgx: fusing NV seed: %w", err)
		}
		if err := nv.persistLocked(); err != nil {
			return nil, err
		}
		return nv, nil
	case err != nil:
		return nil, fmt.Errorf("sgx: reading NV store: %w", err)
	}
	var img nvImage
	if err := json.Unmarshal(data, &img); err != nil {
		return nil, fmt.Errorf("sgx: NV store undecodable: %w", err)
	}
	if len(img.Seed) == 0 {
		return nil, errors.New("sgx: NV store has no seed")
	}
	nv.seed = img.Seed
	if img.Counters != nil {
		nv.counters = img.Counters
	}
	return nv, nil
}

// persistLocked atomically and durably rewrites the NV file (tmp +
// fsync + rename + dir sync): hardware counters do not regress on
// power failure, so neither may their file stand-in. Callers hold
// nv.mu (or have exclusive access during construction).
func (nv *nvStore) persistLocked() error {
	if nv.path == "" {
		return nil
	}
	data, err := json.Marshal(nvImage{Seed: nv.seed, Counters: nv.counters})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	tmp := nv.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	if err := os.Rename(tmp, nv.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	d, err := os.Open(filepath.Dir(nv.path))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("%w: %v", ErrCounterStore, err)
	}
	return nil
}

// mergeDiskLocked folds the on-disk counter values into memory, keeping
// the maximum of each: a counter observed higher on disk (another
// process sharing this NV file) must never be rewritten lower by our
// stale snapshot. Callers hold nv.mu.
func (nv *nvStore) mergeDiskLocked() {
	if nv.path == "" {
		return
	}
	data, err := os.ReadFile(nv.path)
	if err != nil {
		return // persistLocked will surface real I/O trouble
	}
	var img nvImage
	if err := json.Unmarshal(data, &img); err != nil {
		return
	}
	for k, v := range img.Counters {
		if v > nv.counters[k] {
			nv.counters[k] = v
		}
	}
}

// read returns a counter's value and whether it exists.
func (nv *nvStore) read(key string) (uint64, bool) {
	nv.mu.Lock()
	defer nv.mu.Unlock()
	v, ok := nv.counters[key]
	return v, ok
}

// bump increments a counter (creating it at zero first) and durably
// persists the new value before returning it: a counter whose increment
// was acknowledged must never be observed at the old value again. The
// on-disk image is re-merged first so a concurrent process sharing the
// NV file cannot have its increments reverted by our stale snapshot —
// though an NV file, like the hardware it models, is expected to have
// one owning process at a time (see WithNVFile).
func (nv *nvStore) bump(key string) (uint64, error) {
	nv.mu.Lock()
	defer nv.mu.Unlock()
	nv.mergeDiskLocked()
	nv.counters[key]++
	if err := nv.persistLocked(); err != nil {
		nv.counters[key]--
		return 0, err
	}
	return nv.counters[key], nil
}

// counterKey namespaces a counter name under the owning enclave's
// signer identity, mirroring the PSE access policy: same-vendor
// enclaves (any SVN) share the counter, everyone else sees their own
// namespace.
func counterKey(id Identity, name string) string {
	return fmt.Sprintf("%x/%d/%s", id.MRSIGNER[:8], id.ISVProdID, name)
}

// ReadMonotonicCounter returns the named counter's current value and
// whether it has ever been incremented. Charges OpCounterRead.
func (c *Context) ReadMonotonicCounter(name string) (uint64, bool) {
	c.e.platform.charge(opCtrRead)
	return c.e.platform.nv.read(counterKey(c.e.identity, name))
}

// IncrementMonotonicCounter advances the named counter (creating it on
// first use) and returns the new value, durably persisted in platform
// NV before the call returns. Charges OpCounterBump.
func (c *Context) IncrementMonotonicCounter(name string) (uint64, error) {
	c.e.platform.charge(opCtrBump)
	return c.e.platform.nv.bump(counterKey(c.e.identity, name))
}

// SealedCounterBlob is the fixed-layout payload an enclave seals to pin
// a Merkle log's newest committed head to a monotonic counter value:
// counter(8) ‖ tree_size(8) ‖ root_hash(32), little-endian.
type SealedCounterBlob struct {
	Counter  uint64
	TreeSize uint64
	RootHash [32]byte
}

const sealedCounterBlobLen = 8 + 8 + 32

// Encode serialises the blob payload.
func (b SealedCounterBlob) Encode() []byte {
	out := make([]byte, sealedCounterBlobLen)
	binary.LittleEndian.PutUint64(out[0:8], b.Counter)
	binary.LittleEndian.PutUint64(out[8:16], b.TreeSize)
	copy(out[16:], b.RootHash[:])
	return out
}

// DecodeSealedCounterBlob parses an Encode()d payload.
func DecodeSealedCounterBlob(data []byte) (SealedCounterBlob, error) {
	var b SealedCounterBlob
	if len(data) != sealedCounterBlobLen {
		return b, fmt.Errorf("sgx: sealed counter blob is %d bytes, want %d", len(data), sealedCounterBlobLen)
	}
	b.Counter = binary.LittleEndian.Uint64(data[0:8])
	b.TreeSize = binary.LittleEndian.Uint64(data[8:16])
	copy(b.RootHash[:], data[16:])
	return b, nil
}
