// Package sgx implements a software model of Intel SGX faithful enough to
// drive the paper's attestation workflow: enclave construction with an
// ECREATE/EADD/EEXTEND measurement ledger, an immutable post-EINIT runtime
// with an ECALL/OCALL boundary, memory-encrypted enclave state, local
// attestation reports, sealing, and EPID quotes from a quoting enclave.
//
// Hardware costs (transitions, quote generation, sealing) are charged to a
// simtime.CostModel so experiments exhibit realistic shapes; see DESIGN.md
// §2 for the substitution rationale.
package sgx

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// PageSize is the SGX EPC page granularity.
const PageSize = 4096

// eextendChunk is the granularity of EEXTEND (256 bytes per instruction).
const eextendChunk = 256

// Measurement is an enclave measurement (MRENCLAVE or MRSIGNER).
type Measurement [32]byte

// String returns the hex form, as printed in attestation logs.
func (m Measurement) String() string { return hex.EncodeToString(m[:]) }

// IsZero reports whether the measurement is unset.
func (m Measurement) IsZero() bool { return m == Measurement{} }

// Ledger accumulates the enclave build measurement exactly as the SGX
// instructions do: ECREATE contributes the enclave attributes, each EADD
// contributes the page offset and security flags, and each EEXTEND
// contributes a 256-byte chunk digest. The final digest is MRENCLAVE.
type Ledger struct {
	h        hash.Hash
	finished bool
}

// NewLedger starts a measurement with the ECREATE record.
func NewLedger(attributes Attributes, sizeBytes uint64) *Ledger {
	l := &Ledger{h: sha256.New()}
	var rec [8 + 8 + 8]byte
	copy(rec[0:8], "ECREATE\x00")
	binary.LittleEndian.PutUint64(rec[8:16], attributes.encode())
	binary.LittleEndian.PutUint64(rec[16:24], sizeBytes)
	l.h.Write(rec[:])
	return l
}

// AddPage measures one EADD (page metadata) followed by the EEXTENDs over
// the page content. Short final pages are zero-padded to PageSize, as the
// loader would.
func (l *Ledger) AddPage(offset uint64, flags PageFlags, content []byte) {
	var rec [8 + 8 + 8]byte
	copy(rec[0:8], "EADD\x00\x00\x00\x00")
	binary.LittleEndian.PutUint64(rec[8:16], offset)
	binary.LittleEndian.PutUint64(rec[16:24], uint64(flags))
	l.h.Write(rec[:])

	var page [PageSize]byte
	copy(page[:], content)
	for chunk := 0; chunk < PageSize; chunk += eextendChunk {
		var ext [8 + 8]byte
		copy(ext[0:8], "EEXTEND\x00")
		binary.LittleEndian.PutUint64(ext[8:16], offset+uint64(chunk))
		l.h.Write(ext[:])
		sum := sha256.Sum256(page[chunk : chunk+eextendChunk])
		l.h.Write(sum[:])
	}
}

// AddRegion measures a named region (one EADD per page of content).
// Offsets advance from base in page increments; the region name itself is
// measured so that two enclaves with identical bytes in differently-named
// modules measure differently, mirroring distinct load layouts.
func (l *Ledger) AddRegion(base uint64, name string, flags PageFlags, content []byte) uint64 {
	nameSum := sha256.Sum256([]byte(name))
	l.AddPage(base, flags, nameSum[:])
	base += PageSize
	for off := 0; off < len(content); off += PageSize {
		end := off + PageSize
		if end > len(content) {
			end = len(content)
		}
		l.AddPage(base, flags, content[off:end])
		base += PageSize
	}
	return base
}

// Finalize returns MRENCLAVE. The ledger must not be extended afterwards.
func (l *Ledger) Finalize() Measurement {
	l.finished = true
	var m Measurement
	copy(m[:], l.h.Sum(nil))
	return m
}

// PageFlags are the EADD security attributes of a page.
type PageFlags uint64

// Page permission flags.
const (
	PageRead PageFlags = 1 << iota
	PageWrite
	PageExecute
	PageTCS
)

// Attributes are the SGX enclave attributes measured at ECREATE and
// reported in quotes.
type Attributes struct {
	// Debug marks a debug-launched enclave; production appraisal policies
	// reject quotes from debug enclaves.
	Debug bool
	// Mode64 is always true on the modeled platform.
	Mode64 bool
	// XFRM is the extended-feature request mask (opaque here).
	XFRM uint32
}

func (a Attributes) encode() uint64 {
	var v uint64
	if a.Debug {
		v |= 1 << 1
	}
	if a.Mode64 {
		v |= 1 << 2
	}
	v |= uint64(a.XFRM) << 32
	return v
}
