package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables in the style used by
// EXPERIMENTS.md. Columns are sized to the widest cell.
type Table struct {
	title     string
	headers   []string
	rows      [][]string
	footnotes []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// AddFootnote appends a note rendered under the table (String and
// Markdown both show it, prefixed "*").
func (t *Table) AddFootnote(note string) {
	t.footnotes = append(t.footnotes, note)
}

// NoteTruncation adds a footnote for every summary whose percentiles
// were computed from a truncated sample buffer (Summary.Truncated), so
// tables built over long benches disclose which rows exclude the tail.
func (t *Table) NoteTruncation(summaries ...Summary) {
	for _, s := range summaries {
		if s.Truncated() {
			t.AddFootnote(fmt.Sprintf("%s: percentiles computed from the first %d of %d observations (MaxSamples buffer)",
				s.Name, s.Sampled, s.Count))
		}
	}
}

// String renders the table with a title line, a header row, a rule and the
// data rows.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, note := range t.footnotes {
		fmt.Fprintf(&b, "* %s\n", note)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, note := range t.footnotes {
		b.WriteString("\n\\* " + note + "\n")
	}
	return b.String()
}
