// Package metrics provides latency histograms, percentile summaries and
// plain-text table rendering used by the experiment harness (cmd/benchreport)
// and the examples to report results in the shape of the paper's evaluation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records durations and computes order statistics. It keeps raw
// samples (bounded by MaxSamples via reservoir-free truncation: once full,
// it switches to bucketed accumulation for count/mean but keeps the first
// MaxSamples for percentiles, which is adequate for the deterministic
// workloads in this repo).
type Histogram struct {
	mu      sync.Mutex
	name    string
	samples []time.Duration
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// MaxSamples bounds per-histogram memory.
const MaxSamples = 1 << 16

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: math.MaxInt64}
}

// Name returns the histogram's name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < MaxSamples {
		h.samples = append(h.samples, d)
	}
}

// Time runs fn and records its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Summary computes count, mean, min, max and the requested percentiles.
type Summary struct {
	Name  string
	Count int64
	// Sampled is how many observations the percentiles are computed
	// from. Count keeps growing past MaxSamples but the sample buffer
	// does not, so Sampled < Count means P50/P95/P99 describe only the
	// first Sampled observations — the tail is silently excluded, and
	// anything rendering the summary should say so (Table footnotes,
	// Summary.String).
	Sampled int64
	Mean    time.Duration
	Min     time.Duration
	Max     time.Duration
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
}

// Truncated reports whether the percentiles exclude observations beyond
// the MaxSamples buffer.
func (s Summary) Truncated() bool { return s.Sampled < s.Count }

// Summarize returns the current summary. An empty histogram yields a zero
// summary with its name set.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Summary{Name: h.name, Count: h.count, Sampled: int64(len(h.samples))}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / time.Duration(h.count)
	s.Min = h.min
	s.Max = h.max
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted slice using
// nearest-rank. Empty input yields zero.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// String renders the summary on one line, flagging truncated
// percentiles so a long bench cannot quietly report statistics that
// exclude its tail.
func (s Summary) String() string {
	out := fmt.Sprintf("%s: n=%d mean=%v p50=%v p95=%v p99=%v min=%v max=%v",
		s.Name, s.Count, round(s.Mean), round(s.P50), round(s.P95), round(s.P99), round(s.Min), round(s.Max))
	if s.Truncated() {
		out += fmt.Sprintf(" (percentiles from first %d of %d samples)", s.Sampled, s.Count)
	}
	return out
}

// round trims durations to a readable precision (3 significant units).
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond)
	default:
		return d
	}
}
