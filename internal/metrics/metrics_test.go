package metrics

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Fatalf("p95 = %v, want 95ms", s.P95)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", s.Mean)
	}
}

func TestEmptyHistogram(t *testing.T) {
	s := NewHistogram("empty").Summarize()
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.Name != "empty" {
		t.Fatalf("name = %q", s.Name)
	}
}

func TestHistogramTime(t *testing.T) {
	h := NewHistogram("t")
	h.Time(func() { time.Sleep(time.Millisecond) })
	if h.Count() != 1 {
		t.Fatal("Time did not record")
	}
	if s := h.Summarize(); s.Min < time.Millisecond {
		t.Fatalf("recorded %v, want ≥ 1ms", s.Min)
	}
}

func TestPercentileProperties(t *testing.T) {
	// Property: for any set of observations, min ≤ p50 ≤ p95 ≤ p99 ≤ max.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram("q")
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		s := h.Summarize()
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	h := NewHistogram("one")
	h.Observe(7 * time.Millisecond)
	s := h.Summarize()
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond {
		t.Fatalf("single-sample percentiles: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram("x")
	h.Observe(time.Millisecond)
	out := h.Summarize().String()
	if !strings.Contains(out, "x:") || !strings.Contains(out, "n=1") {
		t.Fatalf("summary string %q", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E4", "mode", "p50", "p99")
	tb.AddRow("http", "1ms", "2ms")
	tb.AddRow("trusted-https", "5ms", "9ms")
	out := tb.String()
	if !strings.Contains(out, "== E4 ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Header and data rows must align on the widest cell.
	if !strings.HasPrefix(lines[3], "http         ") {
		t.Fatalf("column not padded: %q", lines[3])
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow(1, 2)
	md := tb.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRound(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{1500 * time.Millisecond, 1500 * time.Millisecond},
		{1234567 * time.Nanosecond, 1230 * time.Microsecond},
		{1234 * time.Nanosecond, 1230 * time.Nanosecond},
		{999, 999},
	}
	for _, c := range cases {
		if got := round(c.in); got != c.want {
			t.Errorf("round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSummarySampledTracksTruncation(t *testing.T) {
	h := NewHistogram("long")
	for i := 0; i < MaxSamples+100; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
	s := h.Summarize()
	if s.Count != MaxSamples+100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sampled != MaxSamples {
		t.Fatalf("sampled = %d, want %d", s.Sampled, MaxSamples)
	}
	if !s.Truncated() {
		t.Fatal("summary past MaxSamples must report truncation")
	}
	if out := s.String(); !strings.Contains(out, "percentiles from first 65536") {
		t.Fatalf("truncated summary string hides it: %q", out)
	}

	short := NewHistogram("short")
	short.Observe(time.Millisecond)
	if ss := short.Summarize(); ss.Truncated() || ss.Sampled != 1 {
		t.Fatalf("short summary: %+v", ss)
	}
}

func TestTableFootnotes(t *testing.T) {
	tb := NewTable("T", "a")
	tb.AddRow(1)
	tb.AddFootnote("plain note")
	tb.NoteTruncation(
		Summary{Name: "full", Count: 10, Sampled: 10},
		Summary{Name: "cut", Count: 100000, Sampled: 65536},
	)
	out := tb.String()
	if !strings.Contains(out, "* plain note") {
		t.Fatalf("plain footnote missing:\n%s", out)
	}
	if !strings.Contains(out, "cut: percentiles computed from the first 65536 of 100000") {
		t.Fatalf("truncation footnote missing:\n%s", out)
	}
	if strings.Contains(out, "full:") {
		t.Fatalf("untruncated summary got a footnote:\n%s", out)
	}
	if md := tb.Markdown(); !strings.Contains(md, `\* plain note`) {
		t.Fatalf("markdown footnote missing:\n%s", md)
	}
}

func TestWriteBenchJSON(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("E99", "col")
	tb.AddRow("v")
	h := NewHistogram("lat")
	h.Observe(3 * time.Millisecond)
	td := tb.Data()
	a := BenchArtifact{
		Name: "E99", Description: "demo", Ops: 42, NsPerOp: 123.5,
		Summaries: []SummaryData{h.Summarize().Data()},
		Table:     &td,
	}
	if err := WriteBenchJSON(dir, a); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/BENCH_E99.json")
	if err != nil {
		t.Fatal(err)
	}
	var back BenchArtifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "E99" || back.Ops != 42 || len(back.Summaries) != 1 || back.Table.Title != "E99" {
		t.Fatalf("artifact round-trip: %+v", back)
	}
	if back.Summaries[0].P50Ns != int64(3*time.Millisecond) {
		t.Fatalf("summary p50 = %d", back.Summaries[0].P50Ns)
	}
	if err := WriteBenchJSON(dir, BenchArtifact{Name: "../evil"}); err == nil {
		t.Fatal("path-escaping artifact name accepted")
	}
}
