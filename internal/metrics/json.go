package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// Machine-readable bench artifacts: BENCH_<name>.json files written
// next to the text tables, so the perf trajectory of the repo can be
// tracked by tooling instead of by eyeballing table diffs. Both
// cmd/benchreport (-json-dir) and the Go benchmarks (BENCH_JSON_DIR)
// emit this shape, and CI uploads the files as artifacts.

// BenchArtifact is the serialised result of one experiment or
// benchmark run.
type BenchArtifact struct {
	// Name identifies the experiment (e.g. "E16") or benchmark.
	Name string `json:"name"`
	// Description is the experiment's one-line description.
	Description string `json:"description,omitempty"`
	// Ops is the total measured operation count, when the producer
	// counts one (benchmarks report b.N here).
	Ops int64 `json:"ops,omitempty"`
	// NsPerOp is the headline per-operation cost, when meaningful.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Summaries carries the percentile summaries behind the table.
	Summaries []SummaryData `json:"summaries,omitempty"`
	// Table is the rendered result table in structured form.
	Table *TableData `json:"table,omitempty"`
	// UnixTime stamps when the run finished (Unix seconds).
	UnixTime int64 `json:"unix_time,omitempty"`
}

// SummaryData is Summary in JSON form, durations in nanoseconds.
type SummaryData struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	Sampled int64  `json:"sampled"`
	MeanNs  int64  `json:"mean_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P95Ns   int64  `json:"p95_ns"`
	P99Ns   int64  `json:"p99_ns"`
}

// Data converts a Summary for serialisation.
func (s Summary) Data() SummaryData {
	return SummaryData{
		Name: s.Name, Count: s.Count, Sampled: s.Sampled,
		MeanNs: int64(s.Mean), MinNs: int64(s.Min), MaxNs: int64(s.Max),
		P50Ns: int64(s.P50), P95Ns: int64(s.P95), P99Ns: int64(s.P99),
	}
}

// TableData is a Table's content in structured form.
type TableData struct {
	Title     string     `json:"title"`
	Headers   []string   `json:"headers"`
	Rows      [][]string `json:"rows"`
	Footnotes []string   `json:"footnotes,omitempty"`
}

// Data exports the table's content.
func (t *Table) Data() TableData {
	return TableData{Title: t.title, Headers: t.headers, Rows: t.rows, Footnotes: t.footnotes}
}

// artifactName restricts artifact file names to safe characters.
var artifactName = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// WriteBenchJSON writes the artifact as dir/BENCH_<name>.json.
func WriteBenchJSON(dir string, a BenchArtifact) error {
	if !artifactName.MatchString(a.Name) {
		return fmt.Errorf("metrics: artifact name %q unusable in a file name", a.Name)
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: encoding bench artifact: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+a.Name+".json")
	//lint:allow atomicwrite bench artifact consumed by the report tooling in the same run; not durable state
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("metrics: writing bench artifact: %w", err)
	}
	return nil
}
