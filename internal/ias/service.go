// Package ias models the Intel Attestation Service: the hosted endpoint
// that validates EPID quotes against group keys and revocation lists and
// returns signed Attestation Verification Reports (AVRs). The Verification
// Manager consults it in steps 2 and 4 of the paper's workflow, both to
// "verify the validity of the enclave key against the revocation list and
// the validity of the integrity quote".
//
// The service is faithful in interface shape (report API with subscription
// keys, signed AVR with status vocabulary, SigRL distribution) while
// running locally; the WAN round trip is charged to the client's cost
// model (simtime.OpIASRoundTrip).
package ias

import (
	"errors"
	"fmt"
	"sync"

	"vnfguard/internal/epid"
	"vnfguard/internal/sgx"
)

// QuoteStatus is the isvEnclaveQuoteStatus vocabulary of AVRs.
type QuoteStatus string

// Quote statuses returned by the service.
const (
	StatusOK               QuoteStatus = "OK"
	StatusSignatureInvalid QuoteStatus = "SIGNATURE_INVALID"
	StatusGroupRevoked     QuoteStatus = "GROUP_REVOKED"
	StatusSignatureRevoked QuoteStatus = "SIGNATURE_REVOKED"
	StatusKeyRevoked       QuoteStatus = "KEY_REVOKED"
	StatusGroupOutOfDate   QuoteStatus = "GROUP_OUT_OF_DATE"
)

// Trusted reports whether a status denotes a platform in good standing.
// GROUP_OUT_OF_DATE is advisory (the platform needs a microcode update)
// and is treated as untrusted by the fail-closed appraisal policy.
func (s QuoteStatus) Trusted() bool { return s == StatusOK }

// ErrUnknownGroup is returned for quotes from unregistered EPID groups.
var ErrUnknownGroup = errors.New("ias: unknown EPID group")

// Service is the attestation-service core: verification logic plus
// revocation state. HTTP transport lives in http.go.
type Service struct {
	mu     sync.Mutex
	groups map[epid.GroupID]*epid.GroupPublicKey
	rl     epid.RevocationLists
	// minCPUSVN is the lowest CPU security version considered up to date.
	minCPUSVN byte
	signer    *reportSigner
	// subscriptionKeys gates API access as IAS does.
	subscriptionKeys map[string]bool
	reports          int64
}

// NewService creates a service trusting the given groups. At least one
// subscription key must be registered before HTTP access succeeds.
func NewService(groups ...*epid.GroupPublicKey) (*Service, error) {
	signer, err := newReportSigner()
	if err != nil {
		return nil, err
	}
	s := &Service{
		groups:           make(map[epid.GroupID]*epid.GroupPublicKey),
		minCPUSVN:        1,
		signer:           signer,
		subscriptionKeys: make(map[string]bool),
	}
	for _, g := range groups {
		s.groups[g.GID] = g
	}
	return s, nil
}

// RegisterGroup adds an EPID group after construction.
func (s *Service) RegisterGroup(g *epid.GroupPublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groups[g.GID] = g
}

// AddSubscriptionKey registers an API key (the paper's service-provider
// registration step).
func (s *Service) AddSubscriptionKey(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subscriptionKeys[key] = true
}

func (s *Service) validKey(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.subscriptionKeys[key]
}

// SetMinCPUSVN configures the TCB floor below which quotes are reported
// GROUP_OUT_OF_DATE.
func (s *Service) SetMinCPUSVN(v byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.minCPUSVN = v
}

// RevokeGroup adds a group to the group revocation list.
func (s *Service) RevokeGroup(gid epid.GroupID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rl.Groups = append(s.rl.Groups, gid)
}

// RevokePlatformKey adds a leaked member secret to the PrivRL.
func (s *Service) RevokePlatformKey(secret [32]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rl.Priv = append(s.rl.Priv, secret)
}

// RevokeSignature adds a pseudonym to the SigRL.
func (s *Service) RevokeSignature(pseudonym [32]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rl.Sig = append(s.rl.Sig, pseudonym)
}

// SigRL returns the current signature revocation list (distributed to
// challengers for inclusion in msg2 of the RA protocol).
func (s *Service) SigRL() [][32]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][32]byte, len(s.rl.Sig))
	copy(out, s.rl.Sig)
	return out
}

// Reports returns the number of verification reports produced.
func (s *Service) Reports() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reports
}

// SigningCertPEM returns the AVR signing certificate that clients pin.
func (s *Service) SigningCertPEM() []byte { return s.signer.certPEM() }

// VerifyQuote runs the full server-side verification of an encoded quote
// and returns a signed AVR. Transport-independent; the HTTP handler and
// in-process callers share it.
func (s *Service) VerifyQuote(quoteBytes []byte, nonce string) (*AVR, error) {
	s.mu.Lock()
	s.reports++
	rl := epid.RevocationLists{
		Priv:   append([][32]byte(nil), s.rl.Priv...),
		Sig:    append([][32]byte(nil), s.rl.Sig...),
		Groups: append([]epid.GroupID(nil), s.rl.Groups...),
	}
	minSVN := s.minCPUSVN
	s.mu.Unlock()

	status := StatusOK
	var quote *sgx.Quote
	quote, err := sgx.DecodeQuote(quoteBytes)
	if err != nil {
		return nil, fmt.Errorf("ias: malformed quote: %w", err)
	}

	s.mu.Lock()
	gpk, ok := s.groups[quote.GID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: gid %d", ErrUnknownGroup, quote.GID)
	}

	switch verr := sgx.VerifyQuote(quote, gpk, &rl); {
	case verr == nil:
		if quote.Body.CPUSVN[0] < minSVN {
			status = StatusGroupOutOfDate
		}
	case errors.Is(verr, epid.ErrGroupRevoked):
		status = StatusGroupRevoked
	case errors.Is(verr, epid.ErrSignatureRevoked):
		status = StatusSignatureRevoked
	case errors.Is(verr, epid.ErrMemberRevoked):
		status = StatusKeyRevoked
	default:
		status = StatusSignatureInvalid
	}

	return s.signer.sign(status, quoteBytes, nonce)
}
