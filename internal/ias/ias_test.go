package ias

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"encoding/base64"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vnfguard/internal/epid"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
)

// quoteFixture builds a platform with one attestable enclave and returns
// an encoded quote plus the supporting actors.
type quoteFixture struct {
	issuer   *epid.Issuer
	platform *sgx.Platform
	enclave  *sgx.Enclave
	quote    []byte
}

func newQuoteFixture(t *testing.T) *quoteFixture {
	t.Helper()
	issuer, err := epid.NewIssuer(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sgx.NewPlatform("host", issuer, simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	var report *sgx.Report
	spec := sgx.EnclaveSpec{
		Name:       "attest",
		ProdID:     1,
		SVN:        1,
		Attributes: sgx.Attributes{Mode64: true},
		Modules: []sgx.CodeModule{{
			Name: "main",
			Code: []byte("attestation code"),
			Handlers: map[string]sgx.ECallHandler{
				"report": func(ctx *sgx.Context, args []byte) ([]byte, error) {
					var rd sgx.ReportData
					copy(rd[:], args)
					report = ctx.Report(p.QE().TargetInfo(), rd)
					return nil, nil
				},
			},
		}},
	}
	signer, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sgx.SignEnclave(spec, signer)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Launch(spec, ss)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Destroy)
	if _, err := e.ECall("report", []byte("binding")); err != nil {
		t.Fatal(err)
	}
	q, err := p.QE().GetQuote(report, sgx.SPID{1}, sgx.QuoteLinkable)
	if err != nil {
		t.Fatal(err)
	}
	return &quoteFixture{issuer: issuer, platform: p, enclave: e, quote: q.Encode()}
}

func newServiceAndClient(t *testing.T, fx *quoteFixture) (*Service, *Client, *httptest.Server) {
	t.Helper()
	svc, err := NewService(fx.issuer.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	svc.AddSubscriptionKey("test-key")
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	client, err := NewClient(srv.URL, "test-key", svc.SigningCertPEM(), simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	return svc, client, srv
}

func TestVerifyQuoteOK(t *testing.T) {
	fx := newQuoteFixture(t)
	_, client, _ := newServiceAndClient(t, fx)
	avr, err := client.VerifyQuote(fx.quote, "nonce-1")
	if err != nil {
		t.Fatal(err)
	}
	if avr.Status() != StatusOK {
		t.Fatalf("status = %s", avr.Status())
	}
	if !avr.Status().Trusted() {
		t.Fatal("OK not trusted")
	}
	q, err := avr.Quote()
	if err != nil {
		t.Fatal(err)
	}
	if q.Body.MRENCLAVE != fx.enclave.Identity().MRENCLAVE {
		t.Fatal("AVR echoes wrong quote body")
	}
	if avr.Nonce != "nonce-1" {
		t.Fatalf("nonce = %q", avr.Nonce)
	}
}

func TestVerifyQuoteTamperedSignature(t *testing.T) {
	fx := newQuoteFixture(t)
	_, client, _ := newServiceAndClient(t, fx)
	bad := append([]byte(nil), fx.quote...)
	bad[50] ^= 0xFF // inside the report body → EPID signature breaks
	avr, err := client.VerifyQuote(bad, "n")
	if err != nil {
		t.Fatal(err)
	}
	if avr.Status() != StatusSignatureInvalid {
		t.Fatalf("status = %s, want SIGNATURE_INVALID", avr.Status())
	}
	if avr.Status().Trusted() {
		t.Fatal("SIGNATURE_INVALID reported trusted")
	}
}

func TestRevocationStatuses(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, client, _ := newServiceAndClient(t, fx)

	svc.RevokeGroup(fx.issuer.GroupID())
	avr, err := client.VerifyQuote(fx.quote, "n")
	if err != nil {
		t.Fatal(err)
	}
	if avr.Status() != StatusGroupRevoked {
		t.Fatalf("status = %s, want GROUP_REVOKED", avr.Status())
	}
}

func TestKeyRevocation(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, client, _ := newServiceAndClient(t, fx)
	svc.RevokePlatformKey(fx.platform.EPIDMember().PseudonymSecret())
	avr, err := client.VerifyQuote(fx.quote, "n")
	if err != nil {
		t.Fatal(err)
	}
	if avr.Status() != StatusKeyRevoked {
		t.Fatalf("status = %s, want KEY_REVOKED", avr.Status())
	}
}

func TestSignatureRevocation(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, client, _ := newServiceAndClient(t, fx)
	q, err := sgx.DecodeQuote(fx.quote)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := epid.DecodeSignature(q.Signature)
	if err != nil {
		t.Fatal(err)
	}
	svc.RevokeSignature(sig.Pseudonym)
	avr, err := client.VerifyQuote(fx.quote, "n")
	if err != nil {
		t.Fatal(err)
	}
	if avr.Status() != StatusSignatureRevoked {
		t.Fatalf("status = %s, want SIGNATURE_REVOKED", avr.Status())
	}
	// And the SigRL distribution path reflects it.
	rl, err := client.SigRL(fx.issuer.GroupID())
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 1 || rl[0] != sig.Pseudonym {
		t.Fatalf("sigrl = %v", rl)
	}
}

func TestGroupOutOfDate(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, client, _ := newServiceAndClient(t, fx)
	svc.SetMinCPUSVN(99)
	avr, err := client.VerifyQuote(fx.quote, "n")
	if err != nil {
		t.Fatal(err)
	}
	if avr.Status() != StatusGroupOutOfDate {
		t.Fatalf("status = %s, want GROUP_OUT_OF_DATE", avr.Status())
	}
	if avr.Status().Trusted() {
		t.Fatal("GROUP_OUT_OF_DATE must not be trusted (fail closed)")
	}
}

func TestUnknownGroupRejected(t *testing.T) {
	fx := newQuoteFixture(t)
	otherIssuer, err := epid.NewIssuer(9999)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(otherIssuer.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	svc.AddSubscriptionKey("k")
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client, err := NewClient(srv.URL, "k", svc.SigningCertPEM(), simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.VerifyQuote(fx.quote, "n"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown group: %v", err)
	}
}

func TestSubscriptionKeyEnforced(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, _, srv := newServiceAndClient(t, fx)
	badClient, err := NewClient(srv.URL, "wrong-key", svc.SigningCertPEM(), simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := badClient.VerifyQuote(fx.quote, "n"); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("bad key: %v", err)
	}
	if _, err := badClient.SigRL(1); err == nil {
		t.Fatal("sigrl with bad key accepted")
	}
}

func TestAVRSignatureVerification(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, _, _ := newServiceAndClient(t, fx)
	avr, err := svc.VerifyQuote(fx.quote, "n")
	if err != nil {
		t.Fatal(err)
	}
	signed, err := svc.Sign(avr)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := parsePEMCert(svc.SigningCertPEM())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAVR(cert, signed); err != nil {
		t.Fatalf("valid AVR rejected: %v", err)
	}
	// Body tamper must be detected.
	tampered := &SignedAVR{
		Body:      []byte(strings.Replace(string(signed.Body), string(StatusOK), string(StatusGroupRevoked), 1)),
		Signature: signed.Signature,
	}
	if err := VerifyAVR(cert, tampered); !errors.Is(err, ErrAVRSignature) {
		t.Fatalf("tampered AVR: %v", err)
	}
}

func TestClientRejectsForgedService(t *testing.T) {
	fx := newQuoteFixture(t)
	// A man-in-the-middle IAS with its own signing key.
	mitm, err := NewService(fx.issuer.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	mitm.AddSubscriptionKey("k")
	srv := httptest.NewServer(mitm.Handler())
	defer srv.Close()
	// Client pins the *real* service's certificate.
	real, err := NewService(fx.issuer.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(srv.URL, "k", real.SigningCertPEM(), simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.VerifyQuote(fx.quote, "n"); !errors.Is(err, ErrAVRSignature) {
		t.Fatalf("MITM AVR accepted: %v", err)
	}
}

func TestClientDetectsNonceReplay(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, err := NewService(fx.issuer.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	svc.AddSubscriptionKey("k")
	// Replay proxy: always answers with a cached (nonce-A) response.
	var cachedBody []byte
	var cachedSig string
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+reportPath, func(w http.ResponseWriter, r *http.Request) {
		if cachedBody == nil {
			avr, err := svc.VerifyQuote(fx.quote, "nonce-A")
			if err != nil {
				http.Error(w, err.Error(), 500)
				return
			}
			signed, err := svc.Sign(avr)
			if err != nil {
				http.Error(w, err.Error(), 500)
				return
			}
			cachedBody = signed.Body
			cachedSig = base64.StdEncoding.EncodeToString(signed.Signature)
		}
		w.Header().Set(headerReportSignature, cachedSig)
		w.WriteHeader(200)
		w.Write(cachedBody)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client, err := NewClient(srv.URL, "k", svc.SigningCertPEM(), simtime.ZeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	// First call primes the cache with nonce-A; second call uses nonce-B
	// and must detect the replay.
	if _, err := client.VerifyQuote(fx.quote, "nonce-A"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.VerifyQuote(fx.quote, "nonce-B"); err == nil ||
		!strings.Contains(err.Error(), "nonce mismatch") {
		t.Fatalf("replayed AVR accepted: %v", err)
	}
}

func TestDirectClientMatchesHTTP(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, httpClient, _ := newServiceAndClient(t, fx)
	model := simtime.ZeroCosts()
	direct := &DirectClient{Service: svc, Model: model}

	a1, err := httpClient.VerifyQuote(fx.quote, "n")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := direct.VerifyQuote(fx.quote, "n")
	if err != nil {
		t.Fatal(err)
	}
	if a1.Status() != a2.Status() {
		t.Fatalf("status divergence: http=%s direct=%s", a1.Status(), a2.Status())
	}
	if model.Count(simtime.OpIASRoundTrip) != 1 {
		t.Fatal("direct client did not charge the WAN round trip")
	}
}

func TestHandlerRejectsMalformedRequests(t *testing.T) {
	fx := newQuoteFixture(t)
	_, _, srv := newServiceAndClient(t, fx)
	post := func(body string) int {
		req, _ := http.NewRequest("POST", srv.URL+reportPath, strings.NewReader(body))
		req.Header.Set(subscriptionHeader, "test-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", code)
	}
	if code := post(`{"isvEnclaveQuote":"!!!"}`); code != http.StatusBadRequest {
		t.Fatalf("bad base64: %d", code)
	}
	if code := post(`{"isvEnclaveQuote":"AAAA"}`); code != http.StatusBadRequest {
		t.Fatalf("truncated quote: %d", code)
	}
	longNonce := strings.Repeat("x", 40)
	if code := post(`{"isvEnclaveQuote":"AAAA","nonce":"` + longNonce + `"}`); code != http.StatusBadRequest {
		t.Fatalf("long nonce: %d", code)
	}
}

func TestReportsCounter(t *testing.T) {
	fx := newQuoteFixture(t)
	svc, client, _ := newServiceAndClient(t, fx)
	for i := 0; i < 3; i++ {
		if _, err := client.VerifyQuote(fx.quote, "n"); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Reports() != 3 {
		t.Fatalf("reports = %d", svc.Reports())
	}
}
