package ias

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/base64"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"
	"time"

	"vnfguard/internal/sgx"
)

// AVR is an Attestation Verification Report: the service's signed verdict
// on one quote. Field names follow the IAS API JSON.
type AVR struct {
	ID                    string `json:"id"`
	Timestamp             string `json:"timestamp"`
	Version               int    `json:"version"`
	ISVEnclaveQuoteStatus string `json:"isvEnclaveQuoteStatus"`
	ISVEnclaveQuoteBody   string `json:"isvEnclaveQuoteBody"` // base64 of the verified quote
	Nonce                 string `json:"nonce,omitempty"`
}

// Status returns the typed quote status.
func (a *AVR) Status() QuoteStatus { return QuoteStatus(a.ISVEnclaveQuoteStatus) }

// Quote decodes the echoed quote body.
func (a *AVR) Quote() (*sgx.Quote, error) {
	raw, err := base64.StdEncoding.DecodeString(a.ISVEnclaveQuoteBody)
	if err != nil {
		return nil, fmt.Errorf("ias: decoding AVR quote body: %w", err)
	}
	return sgx.DecodeQuote(raw)
}

// SignedAVR couples the raw report bytes with the service signature, the
// unit of evidence a challenger stores and can show to auditors.
type SignedAVR struct {
	Body      []byte // exact JSON the signature covers
	Signature []byte // ASN.1 ECDSA over SHA-256(Body)
}

// Report parses the body.
func (s *SignedAVR) Report() (*AVR, error) {
	var a AVR
	if err := json.Unmarshal(s.Body, &a); err != nil {
		return nil, fmt.Errorf("ias: parsing AVR: %w", err)
	}
	return &a, nil
}

// ErrAVRSignature reports an AVR whose signature does not verify against
// the pinned report-signing certificate.
var ErrAVRSignature = errors.New("ias: AVR signature invalid")

// VerifyAVR checks the signature over an AVR body against the signing
// certificate.
func VerifyAVR(signingCert *x509.Certificate, s *SignedAVR) error {
	pub, ok := signingCert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return errors.New("ias: signing certificate is not ECDSA")
	}
	digest := sha256.Sum256(s.Body)
	if !ecdsa.VerifyASN1(pub, digest[:], s.Signature) {
		return ErrAVRSignature
	}
	return nil
}

// reportSigner holds the service's report-signing key and certificate
// (stand-in for the Intel-rooted "SGX Attestation Report Signing" cert).
type reportSigner struct {
	key    *ecdsa.PrivateKey
	cert   *x509.Certificate
	serial atomic.Int64
}

func newReportSigner() (*reportSigner, error) {
	key, err := ecdsa.GenerateKey(ecdsaCurve, rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ias: generating signing key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "vnfguard Attestation Report Signing", Organization: []string{"vnfguard-ias"}},
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("ias: self-signing report cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &reportSigner{key: key, cert: cert}, nil
}

func (rs *reportSigner) certPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: rs.cert.Raw})
}

func (rs *reportSigner) sign(status QuoteStatus, quoteBytes []byte, nonce string) (*AVR, error) {
	id := rs.serial.Add(1)
	avr := &AVR{
		ID:                    fmt.Sprintf("%024d", id),
		Timestamp:             time.Now().UTC().Format("2006-01-02T15:04:05.999999"),
		Version:               4,
		ISVEnclaveQuoteStatus: string(status),
		ISVEnclaveQuoteBody:   base64.StdEncoding.EncodeToString(quoteBytes),
		Nonce:                 nonce,
	}
	return avr, nil
}

// Sign produces the transportable signed form of an AVR.
func (s *Service) Sign(avr *AVR) (*SignedAVR, error) {
	body, err := json.Marshal(avr)
	if err != nil {
		return nil, fmt.Errorf("ias: marshaling AVR: %w", err)
	}
	digest := sha256.Sum256(body)
	sig, err := ecdsa.SignASN1(rand.Reader, s.signer.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("ias: signing AVR: %w", err)
	}
	return &SignedAVR{Body: body, Signature: sig}, nil
}
