package ias

import (
	"bytes"
	"crypto/elliptic"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"vnfguard/internal/epid"
	"vnfguard/internal/simtime"
)

var ecdsaCurve = elliptic.P256()

// API paths, following the IAS v4 layout.
const (
	reportPath = "/attestation/v4/report"
	sigrlPath  = "/attestation/v4/sigrl/"
)

// subscriptionHeader is the API-key header IAS uses.
const subscriptionHeader = "Ocp-Apim-Subscription-Key"

// AVR response headers.
const (
	headerReportSignature = "X-IASReport-Signature"
	headerReportCert      = "X-IASReport-Signing-Certificate"
)

// reportRequest is the POST body of the report API.
type reportRequest struct {
	ISVEnclaveQuote string `json:"isvEnclaveQuote"`
	Nonce           string `json:"nonce,omitempty"`
}

// Handler returns the HTTP interface of the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+reportPath, s.handleReport)
	mux.HandleFunc("GET "+sigrlPath+"{gid}", s.handleSigRL)
	return mux
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if !s.validKey(r.Header.Get(subscriptionHeader)) {
		http.Error(w, "invalid subscription key", http.StatusUnauthorized)
		return
	}
	var req reportRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "malformed request", http.StatusBadRequest)
		return
	}
	if len(req.Nonce) > 32 {
		http.Error(w, "nonce too long", http.StatusBadRequest)
		return
	}
	quote, err := base64.StdEncoding.DecodeString(req.ISVEnclaveQuote)
	if err != nil {
		http.Error(w, "quote is not base64", http.StatusBadRequest)
		return
	}
	avr, err := s.VerifyQuote(quote, req.Nonce)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnknownGroup) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	signed, err := s.Sign(avr)
	if err != nil {
		http.Error(w, "signing failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerReportSignature, base64.StdEncoding.EncodeToString(signed.Signature))
	w.Header().Set(headerReportCert, url.QueryEscape(string(s.SigningCertPEM())))
	w.WriteHeader(http.StatusOK)
	w.Write(signed.Body)
}

func (s *Service) handleSigRL(w http.ResponseWriter, r *http.Request) {
	if !s.validKey(r.Header.Get(subscriptionHeader)) {
		http.Error(w, "invalid subscription key", http.StatusUnauthorized)
		return
	}
	gidHex := r.PathValue("gid")
	if _, err := hex.DecodeString(gidHex); err != nil || len(gidHex) != 8 {
		http.Error(w, "malformed gid", http.StatusBadRequest)
		return
	}
	sigrl := s.SigRL()
	out := make([]string, len(sigrl))
	for i, p := range sigrl {
		out[i] = base64.StdEncoding.EncodeToString(p[:])
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// QuoteVerifier is the challenger-facing interface to the attestation
// service; both the HTTP client and the in-process client implement it.
type QuoteVerifier interface {
	// VerifyQuote submits an encoded quote and returns the verified AVR.
	VerifyQuote(quote []byte, nonce string) (*AVR, error)
	// SigRL fetches the current signature revocation list for a group.
	SigRL(gid epid.GroupID) ([][32]byte, error)
}

// Client talks to the service over HTTP, verifying AVR signatures against
// the pinned report-signing certificate and charging the WAN round trip.
type Client struct {
	baseURL     string
	httpClient  *http.Client
	key         string
	signingCert *x509.Certificate
	model       *simtime.CostModel
}

// NewClient constructs a client. signingCertPEM pins the AVR signer.
func NewClient(baseURL, subscriptionKey string, signingCertPEM []byte, model *simtime.CostModel) (*Client, error) {
	block := signingCertPEM
	cert, err := parsePEMCert(block)
	if err != nil {
		return nil, fmt.Errorf("ias: pinning signing certificate: %w", err)
	}
	return &Client{
		baseURL:     strings.TrimRight(baseURL, "/"),
		httpClient:  &http.Client{},
		key:         subscriptionKey,
		signingCert: cert,
		model:       model,
	}, nil
}

func parsePEMCert(pemBytes []byte) (*x509.Certificate, error) {
	// Minimal PEM handling without importing pki (keeps ias standalone).
	const begin = "-----BEGIN CERTIFICATE-----"
	const end = "-----END CERTIFICATE-----"
	text := string(pemBytes)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 {
		return nil, errors.New("no certificate block")
	}
	b64 := strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' || r == ' ' {
			return -1
		}
		return r
	}, text[i+len(begin):j])
	der, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, err
	}
	return x509.ParseCertificate(der)
}

// VerifyQuote implements QuoteVerifier over HTTP.
func (c *Client) VerifyQuote(quote []byte, nonce string) (*AVR, error) {
	c.model.Charge(simtime.OpIASRoundTrip)
	body, err := json.Marshal(reportRequest{
		ISVEnclaveQuote: base64.StdEncoding.EncodeToString(quote),
		Nonce:           nonce,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.baseURL+reportPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(subscriptionHeader, c.key)
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("ias: report request: %w", err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("ias: reading report response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ias: report API status %d: %s", resp.StatusCode, strings.TrimSpace(string(respBody)))
	}
	sigB64 := resp.Header.Get(headerReportSignature)
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return nil, fmt.Errorf("ias: malformed report signature header: %w", err)
	}
	signed := &SignedAVR{Body: respBody, Signature: sig}
	if err := VerifyAVR(c.signingCert, signed); err != nil {
		return nil, err
	}
	avr, err := signed.Report()
	if err != nil {
		return nil, err
	}
	if avr.Nonce != nonce {
		return nil, errors.New("ias: AVR nonce mismatch (replayed report)")
	}
	return avr, nil
}

// SigRL implements QuoteVerifier over HTTP.
func (c *Client) SigRL(gid epid.GroupID) ([][32]byte, error) {
	c.model.Charge(simtime.OpIASRoundTrip)
	gidHex := fmt.Sprintf("%08x", uint32(gid))
	req, err := http.NewRequest(http.MethodGet, c.baseURL+sigrlPath+gidHex, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(subscriptionHeader, c.key)
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("ias: sigrl request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ias: sigrl API status %d", resp.StatusCode)
	}
	var entries []string
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("ias: decoding sigrl: %w", err)
	}
	out := make([][32]byte, 0, len(entries))
	for _, e := range entries {
		raw, err := base64.StdEncoding.DecodeString(e)
		if err != nil || len(raw) != 32 {
			return nil, errors.New("ias: malformed sigrl entry")
		}
		var p [32]byte
		copy(p[:], raw)
		out = append(out, p)
	}
	return out, nil
}

// DirectClient is an in-process QuoteVerifier: same verification logic and
// modeled WAN cost, without HTTP framing. Benchmarks use it to separate
// protocol cost from transport cost.
type DirectClient struct {
	Service *Service
	Model   *simtime.CostModel
}

// VerifyQuote implements QuoteVerifier.
func (d *DirectClient) VerifyQuote(quote []byte, nonce string) (*AVR, error) {
	d.Model.Charge(simtime.OpIASRoundTrip)
	return d.Service.VerifyQuote(quote, nonce)
}

// SigRL implements QuoteVerifier.
func (d *DirectClient) SigRL(gid epid.GroupID) ([][32]byte, error) {
	d.Model.Charge(simtime.OpIASRoundTrip)
	return d.Service.SigRL(), nil
}
