// Package secchan provides the authenticated-encryption record channel
// that carries credential provisioning between the Verification Manager
// and a credential enclave (step 5 of the paper's workflow). It plays the
// role mbedtls-SGX plays in the paper's implementation: the channel key is
// the SK derived by the remote-attestation key exchange, so confidentiality
// is rooted in attestation evidence rather than certificates.
//
// Records are AES-128-GCM sealed with direction-separated, strictly
// monotonic nonces; replayed, reordered or truncated records fail
// authentication.
package secchan

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxRecordSize bounds one record's plaintext.
const MaxRecordSize = 1 << 20

// Record types used by the provisioning protocol.
const (
	// TypeProvision carries credential material VM → enclave.
	TypeProvision uint8 = 1
	// TypeAck acknowledges provisioning enclave → VM.
	TypeAck uint8 = 2
	// TypeRevoke orders the enclave to wipe its credentials.
	TypeRevoke uint8 = 3
	// TypeCSR carries a certificate signing request enclave → VM.
	TypeCSR uint8 = 4
	// TypeError reports a failure in either direction.
	TypeError uint8 = 5
)

// Errors.
var (
	ErrRecordTooLarge = errors.New("secchan: record exceeds maximum size")
	ErrAuth           = errors.New("secchan: record authentication failed")
	ErrClosed         = errors.New("secchan: channel closed")
)

// Role determines nonce direction bytes; the two ends must take opposite
// roles.
type Role uint8

// Channel roles.
const (
	RoleInitiator Role = 1 // the Verification Manager side
	RoleResponder Role = 2 // the enclave side
)

// Channel is one end of an established secure channel.
type Channel struct {
	aead cipher.AEAD
	conn io.ReadWriter
	role Role

	sendMu  sync.Mutex
	sendSeq uint64
	recvMu  sync.Mutex
	recvSeq uint64
	closed  bool
}

// New builds a channel over conn using the 16-byte RA session key.
func New(sk [16]byte, conn io.ReadWriter, role Role) (*Channel, error) {
	if role != RoleInitiator && role != RoleResponder {
		return nil, fmt.Errorf("secchan: invalid role %d", role)
	}
	block, err := aes.NewCipher(sk[:])
	if err != nil {
		return nil, fmt.Errorf("secchan: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secchan: AEAD: %w", err)
	}
	return &Channel{aead: aead, conn: conn, role: role}, nil
}

// nonce builds the 12-byte record nonce: direction ‖ 0x000000 ‖ seq.
func nonce(dir Role, seq uint64) []byte {
	n := make([]byte, 12)
	n[0] = byte(dir)
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// peer returns the opposite role.
func (r Role) peer() Role {
	if r == RoleInitiator {
		return RoleResponder
	}
	return RoleInitiator
}

// Send seals one record of the given type.
func (c *Channel) Send(msgType uint8, payload []byte) error {
	if len(payload) > MaxRecordSize {
		return ErrRecordTooLarge
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	n := nonce(c.role, c.sendSeq)
	c.sendSeq++
	aad := []byte{msgType}
	ct := c.aead.Seal(nil, n, payload, aad)

	header := make([]byte, 5)
	binary.BigEndian.PutUint32(header[:4], uint32(len(ct)))
	header[4] = msgType
	if _, err := c.conn.Write(header); err != nil {
		return fmt.Errorf("secchan: writing header: %w", err)
	}
	if _, err := c.conn.Write(ct); err != nil {
		return fmt.Errorf("secchan: writing record: %w", err)
	}
	return nil
}

// Recv reads and authenticates the next record.
func (c *Channel) Recv() (msgType uint8, payload []byte, err error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.closed {
		return 0, nil, ErrClosed
	}
	header := make([]byte, 5)
	if _, err := io.ReadFull(c.conn, header); err != nil {
		return 0, nil, fmt.Errorf("secchan: reading header: %w", err)
	}
	length := binary.BigEndian.Uint32(header[:4])
	msgType = header[4]
	if length > MaxRecordSize+uint32(c.aead.Overhead()) {
		return 0, nil, ErrRecordTooLarge
	}
	ct := make([]byte, length)
	if _, err := io.ReadFull(c.conn, ct); err != nil {
		return 0, nil, fmt.Errorf("secchan: reading record: %w", err)
	}
	n := nonce(c.role.peer(), c.recvSeq)
	aad := []byte{msgType}
	pt, err := c.aead.Open(nil, n, ct, aad)
	if err != nil {
		return 0, nil, ErrAuth
	}
	c.recvSeq++
	return msgType, pt, nil
}

// Close marks the channel unusable (the underlying conn is owned by the
// caller and closed separately).
func (c *Channel) Close() {
	c.sendMu.Lock()
	c.closed = true
	c.sendMu.Unlock()
}
