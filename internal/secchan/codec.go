package secchan

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"sync"
)

// RecordCodec seals and opens records without owning a transport. The
// credential enclave uses a codec so that record decryption happens inside
// the enclave boundary while the untrusted host runtime only moves opaque
// frames; Channel composes a codec with a stream.
type RecordCodec struct {
	aead cipher.AEAD
	role Role

	mu      sync.Mutex
	sendSeq uint64
	recvSeq uint64
}

// NewCodec builds a detached codec.
func NewCodec(sk [16]byte, role Role) (*RecordCodec, error) {
	if role != RoleInitiator && role != RoleResponder {
		return nil, fmt.Errorf("secchan: invalid role %d", role)
	}
	block, err := aes.NewCipher(sk[:])
	if err != nil {
		return nil, fmt.Errorf("secchan: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secchan: AEAD: %w", err)
	}
	return &RecordCodec{aead: aead, role: role}, nil
}

// Seal produces a complete frame (header ‖ ciphertext) for one record.
func (c *RecordCodec) Seal(msgType uint8, payload []byte) ([]byte, error) {
	if len(payload) > MaxRecordSize {
		return nil, ErrRecordTooLarge
	}
	c.mu.Lock()
	seq := c.sendSeq
	c.sendSeq++
	c.mu.Unlock()
	n := nonce(c.role, seq)
	ct := c.aead.Seal(nil, n, payload, []byte{msgType})
	frame := make([]byte, 5, 5+len(ct))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(ct)))
	frame[4] = msgType
	return append(frame, ct...), nil
}

// Open authenticates and decrypts a complete frame.
func (c *RecordCodec) Open(frame []byte) (msgType uint8, payload []byte, err error) {
	if len(frame) < 5 {
		return 0, nil, ErrAuth
	}
	length := binary.BigEndian.Uint32(frame[:4])
	msgType = frame[4]
	ct := frame[5:]
	if uint32(len(ct)) != length {
		return 0, nil, ErrAuth
	}
	c.mu.Lock()
	seq := c.recvSeq
	c.mu.Unlock()
	n := nonce(c.role.peer(), seq)
	payload, err = c.aead.Open(nil, n, ct, []byte{msgType})
	if err != nil {
		return 0, nil, ErrAuth
	}
	c.mu.Lock()
	c.recvSeq++
	c.mu.Unlock()
	return msgType, payload, nil
}
