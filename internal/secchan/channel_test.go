package secchan

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"testing/quick"
)

// pair builds two channel ends over an in-memory duplex pipe.
func pair(t *testing.T) (*Channel, *Channel) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	sk := [16]byte{1, 2, 3, 4, 5}
	ci, err := New(sk, a, RoleInitiator)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := New(sk, b, RoleResponder)
	if err != nil {
		t.Fatal(err)
	}
	return ci, cr
}

func TestSendRecvRoundTrip(t *testing.T) {
	ci, cr := pair(t)
	done := make(chan error, 1)
	go func() { done <- ci.Send(TypeProvision, []byte("credential blob")) }()
	typ, payload, err := cr.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if typ != TypeProvision || string(payload) != "credential blob" {
		t.Fatalf("got type=%d payload=%q", typ, payload)
	}
}

func TestBidirectionalSequences(t *testing.T) {
	ci, cr := pair(t)
	go func() {
		for i := 0; i < 5; i++ {
			ci.Send(TypeProvision, []byte{byte(i)})
		}
	}()
	for i := 0; i < 5; i++ {
		_, p, err := cr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i) {
			t.Fatalf("out of order: got %d want %d", p[0], i)
		}
	}
	// Reverse direction on the same channel.
	go func() {
		for i := 0; i < 5; i++ {
			cr.Send(TypeAck, []byte{byte(100 + i)})
		}
	}()
	for i := 0; i < 5; i++ {
		typ, p, err := ci.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if typ != TypeAck || p[0] != byte(100+i) {
			t.Fatalf("reverse direction mismatch at %d", i)
		}
	}
}

func TestWrongKeyFailsAuth(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ci, err := New([16]byte{1}, a, RoleInitiator)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := New([16]byte{2}, b, RoleResponder)
	if err != nil {
		t.Fatal(err)
	}
	go ci.Send(TypeProvision, []byte("x"))
	if _, _, err := cr.Recv(); !errors.Is(err, ErrAuth) {
		t.Fatalf("got %v, want ErrAuth", err)
	}
}

func TestSameRoleBothEndsFailsAuth(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sk := [16]byte{9}
	c1, _ := New(sk, a, RoleInitiator)
	c2, _ := New(sk, b, RoleInitiator) // misconfigured: same role
	go c1.Send(TypeProvision, []byte("x"))
	if _, _, err := c2.Recv(); !errors.Is(err, ErrAuth) {
		t.Fatalf("got %v, want ErrAuth (direction confusion)", err)
	}
}

func TestTamperedRecordFailsAuth(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sk := [16]byte{7}
	ci, _ := New(sk, &tamperConn{ReadWriter: a}, RoleInitiator)
	cr, _ := New(sk, b, RoleResponder)
	go ci.Send(TypeProvision, []byte("sensitive"))
	if _, _, err := cr.Recv(); !errors.Is(err, ErrAuth) {
		t.Fatalf("got %v, want ErrAuth", err)
	}
}

// tamperConn flips a bit in every record body it writes (not the header).
type tamperConn struct {
	ReadWriter interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
	}
	wrote int
}

func (c *tamperConn) Read(p []byte) (int, error) { return c.ReadWriter.Read(p) }
func (c *tamperConn) Write(p []byte) (int, error) {
	c.wrote++
	if c.wrote == 2 && len(p) > 0 { // second write is the ciphertext
		q := append([]byte(nil), p...)
		q[0] ^= 0x80
		return c.ReadWriter.Write(q)
	}
	return c.ReadWriter.Write(p)
}

func TestTypeBoundToRecord(t *testing.T) {
	// Flipping the type byte in the header must break authentication
	// (type is AAD): a TypeRevoke cannot be forged from a TypeAck.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sk := [16]byte{5}
	ci, _ := New(sk, &typeFlipConn{rw: a}, RoleInitiator)
	cr, _ := New(sk, b, RoleResponder)
	go ci.Send(TypeAck, []byte("ok"))
	if _, _, err := cr.Recv(); !errors.Is(err, ErrAuth) {
		t.Fatalf("got %v, want ErrAuth for type forgery", err)
	}
}

type typeFlipConn struct {
	rw interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
	}
}

func (c *typeFlipConn) Read(p []byte) (int, error) { return c.rw.Read(p) }
func (c *typeFlipConn) Write(p []byte) (int, error) {
	if len(p) == 5 { // header write: rewrite type to TypeRevoke
		q := append([]byte(nil), p...)
		q[4] = TypeRevoke
		return c.rw.Write(q)
	}
	return c.rw.Write(p)
}

func TestReplayRejected(t *testing.T) {
	// A replaying adversary records the first ciphertext and delivers it
	// twice; the second delivery must fail (nonce sequence advanced).
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sk := [16]byte{3}
	rec := &recordingConn{rw: a}
	ci, _ := New(sk, rec, RoleInitiator)
	cr, _ := New(sk, b, RoleResponder)
	go ci.Send(TypeProvision, []byte("first"))
	if _, _, err := cr.Recv(); err != nil {
		t.Fatal(err)
	}
	// Replay the captured frames.
	go func() {
		for _, frame := range rec.frames {
			b2 := append([]byte(nil), frame...)
			a.Write(b2)
		}
	}()
	if _, _, err := cr.Recv(); !errors.Is(err, ErrAuth) {
		t.Fatalf("replayed record accepted: %v", err)
	}
}

type recordingConn struct {
	rw interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
	}
	frames [][]byte
}

func (c *recordingConn) Read(p []byte) (int, error) { return c.rw.Read(p) }
func (c *recordingConn) Write(p []byte) (int, error) {
	c.frames = append(c.frames, append([]byte(nil), p...))
	return c.rw.Write(p)
}

func TestOversizeRejected(t *testing.T) {
	ci, _ := pair(t)
	big := make([]byte, MaxRecordSize+1)
	if err := ci.Send(TypeProvision, big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("got %v, want ErrRecordTooLarge", err)
	}
}

func TestClosedChannel(t *testing.T) {
	ci, _ := pair(t)
	ci.Close()
	if err := ci.Send(TypeAck, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestInvalidRole(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	if _, err := New([16]byte{}, a, Role(9)); err == nil {
		t.Fatal("invalid role accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte, typ uint8) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		sk := [16]byte{42}
		ci, err := New(sk, a, RoleInitiator)
		if err != nil {
			return false
		}
		cr, err := New(sk, b, RoleResponder)
		if err != nil {
			return false
		}
		go ci.Send(typ, payload)
		gotType, gotPayload, err := cr.Recv()
		if err != nil {
			return false
		}
		return gotType == typ && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
