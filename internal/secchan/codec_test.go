package secchan

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

func newCodecPair(t *testing.T) (*RecordCodec, *RecordCodec) {
	t.Helper()
	var sk [16]byte
	copy(sk[:], "0123456789abcdef")
	a, err := NewCodec(sk, RoleInitiator)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCodec(sk, RoleResponder)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestCodecSealOpenRoundTrip(t *testing.T) {
	a, b := newCodecPair(t)
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1024),
		make([]byte, MaxRecordSize),
	}
	for i, payload := range payloads {
		frame, err := a.Seal(TypeProvision, payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		msgType, got, err := b.Open(frame)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if msgType != TypeProvision || !bytes.Equal(got, payload) {
			t.Fatalf("case %d: type=%d len=%d", i, msgType, len(got))
		}
	}
}

func TestCodecOversizeRejected(t *testing.T) {
	a, _ := newCodecPair(t)
	if _, err := a.Seal(TypeProvision, make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversize seal: %v", err)
	}
}

// TestCodecOpenTruncation feeds every strict prefix of a valid frame to
// Open: each must fail cleanly with ErrAuth and must not advance the
// receive sequence (a later valid frame still opens).
func TestCodecOpenTruncation(t *testing.T) {
	a, b := newCodecPair(t)
	frame, err := a.Seal(TypeProvision, []byte("credential material"))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(frame); n++ {
		if _, _, err := b.Open(frame[:n]); !errors.Is(err, ErrAuth) {
			t.Fatalf("prefix %d/%d: %v", n, len(frame), err)
		}
	}
	// The intact frame must still open: no state was corrupted.
	if _, got, err := b.Open(frame); err != nil || string(got) != "credential material" {
		t.Fatalf("after truncation attempts: %v", err)
	}
}

// TestCodecOpenMalformed covers structured corruption beyond truncation.
func TestCodecOpenMalformed(t *testing.T) {
	mutate := []struct {
		name string
		mod  func(frame []byte) []byte
	}{
		{"trailing garbage", func(f []byte) []byte { return append(append([]byte(nil), f...), 0xFF) }},
		{"length too large", func(f []byte) []byte {
			out := append([]byte(nil), f...)
			binary.BigEndian.PutUint32(out[:4], uint32(len(f)-5)+1)
			return out
		}},
		{"length zeroed", func(f []byte) []byte {
			out := append([]byte(nil), f...)
			binary.BigEndian.PutUint32(out[:4], 0)
			return out
		}},
		{"type flipped", func(f []byte) []byte {
			out := append([]byte(nil), f...)
			out[4] ^= 0xFF
			return out
		}},
		{"first ct byte flipped", func(f []byte) []byte {
			out := append([]byte(nil), f...)
			out[5] ^= 0x01
			return out
		}},
		{"last tag byte flipped", func(f []byte) []byte {
			out := append([]byte(nil), f...)
			out[len(out)-1] ^= 0x80
			return out
		}},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			a, b := newCodecPair(t)
			frame, err := a.Seal(TypeAck, []byte("payload"))
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := b.Open(tc.mod(frame)); !errors.Is(err, ErrAuth) {
				t.Fatalf("corrupted frame accepted: %v", err)
			}
		})
	}
}

// TestCodecOpenRandomGarbage fuzzes Open with deterministic pseudo-random
// junk of many lengths: never panic, never accept.
func TestCodecOpenRandomGarbage(t *testing.T) {
	_, b := newCodecPair(t)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		junk := make([]byte, rng.Intn(256))
		rng.Read(junk)
		if _, _, err := b.Open(junk); err == nil {
			t.Fatalf("garbage frame %d accepted", i)
		}
	}
}

// TestCodecSequenceBinding checks a frame cannot be replayed or
// reordered: sequence numbers are baked into the nonce.
func TestCodecSequenceBinding(t *testing.T) {
	a, b := newCodecPair(t)
	f1, err := a.Seal(TypeProvision, []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := a.Seal(TypeProvision, []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	// Out of order: frame 2 under receive sequence 0 fails.
	if _, _, err := b.Open(f2); !errors.Is(err, ErrAuth) {
		t.Fatalf("reordered frame accepted: %v", err)
	}
	if _, _, err := b.Open(f1); err != nil {
		t.Fatal(err)
	}
	// Replay of frame 1 under receive sequence 1 fails.
	if _, _, err := b.Open(f1); !errors.Is(err, ErrAuth) {
		t.Fatalf("replayed frame accepted: %v", err)
	}
	if _, _, err := b.Open(f2); err != nil {
		t.Fatal(err)
	}
}
