package epid

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports a malformed encoded signature.
var ErrTruncated = errors.New("epid: truncated signature encoding")

// Encode serialises the signature with a deterministic length-prefixed
// binary layout (the SGX quote carries this blob opaquely).
func (s *Signature) Encode() []byte {
	out := make([]byte, 0, 64+len(s.MemberPub)+len(s.Credential)+len(s.Basename)+len(s.Sig))
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], uint32(s.GID))
	out = append(out, u32[:]...)
	binary.BigEndian.PutUint64(u64[:], s.MemberID)
	out = append(out, u64[:]...)
	out = appendBytes(out, s.MemberPub)
	out = appendBytes(out, s.Credential)
	out = append(out, s.Pseudonym[:]...)
	out = appendBytes(out, s.Basename)
	out = appendBytes(out, s.Sig)
	return out
}

// DecodeSignature parses an encoded signature.
func DecodeSignature(b []byte) (*Signature, error) {
	s := &Signature{}
	if len(b) < 12 {
		return nil, ErrTruncated
	}
	s.GID = GroupID(binary.BigEndian.Uint32(b[0:4]))
	s.MemberID = binary.BigEndian.Uint64(b[4:12])
	b = b[12:]
	var err error
	if s.MemberPub, b, err = readBytes(b); err != nil {
		return nil, err
	}
	if s.Credential, b, err = readBytes(b); err != nil {
		return nil, err
	}
	if len(b) < 32 {
		return nil, ErrTruncated
	}
	copy(s.Pseudonym[:], b[:32])
	b = b[32:]
	if s.Basename, b, err = readBytes(b); err != nil {
		return nil, err
	}
	if s.Sig, b, err = readBytes(b); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("epid: %d trailing bytes in signature", len(b))
	}
	return s, nil
}

func appendBytes(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

func readBytes(b []byte) (val, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, ErrTruncated
	}
	return append([]byte(nil), b[:n]...), b[n:], nil
}
