package epid

import (
	"bytes"
	"encoding/binary"
	"errors"
	mrand "math/rand"
	"testing"
)

// testSignature builds a structurally valid signature without the cost of
// a real group join (these tests exercise only the codec).
func testSignature() *Signature {
	s := &Signature{
		GID:        GroupID(0xDEADBEEF),
		MemberID:   0x1122334455667788,
		MemberPub:  bytes.Repeat([]byte{0x02}, 65),
		Credential: bytes.Repeat([]byte{0x03}, 71),
		Basename:   []byte("service-provider-id"),
		Sig:        bytes.Repeat([]byte{0x04}, 70),
	}
	for i := range s.Pseudonym {
		s.Pseudonym[i] = byte(i)
	}
	return s
}

// TestEncodeDeterministic: the encoding is canonical — equal signatures
// encode identically (quotes carry it opaquely, verifiers hash it).
func TestEncodeDeterministic(t *testing.T) {
	a, b := testSignature().Encode(), testSignature().Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
}

// TestDecodeTruncationExhaustive rejects every strict prefix of a valid
// encoding — all field boundaries, not just sampled offsets.
func TestDecodeTruncationExhaustive(t *testing.T) {
	enc := testSignature().Encode()
	for n := 0; n < len(enc); n++ {
		sig, err := DecodeSignature(enc[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted: %+v", n, len(enc), sig)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d: unexpected error %v", n, err)
		}
	}
}

// TestDecodeLengthPrefixCorruption inflates each of the four length
// prefixes in turn: a hostile length must fail cleanly, not over-read or
// over-allocate.
func TestDecodeLengthPrefixCorruption(t *testing.T) {
	s := testSignature()
	enc := s.Encode()
	// Offsets of the variable-field length prefixes in the layout.
	offsets := []int{
		12,                    // MemberPub
		16 + len(s.MemberPub), // Credential
		20 + len(s.MemberPub) + len(s.Credential) + 32,                   // Basename
		24 + len(s.MemberPub) + len(s.Credential) + 32 + len(s.Basename), // Sig
	}
	for _, off := range offsets {
		for _, evil := range []uint32{1 << 31, 0xFFFFFFFF, uint32(len(enc))} {
			bad := append([]byte(nil), enc...)
			binary.BigEndian.PutUint32(bad[off:], evil)
			if _, err := DecodeSignature(bad); err == nil {
				t.Fatalf("length %#x at offset %d accepted", evil, off)
			}
		}
	}
}

// TestDecodeEmptyFields round-trips a signature whose variable fields are
// all empty — the degenerate but legal shape.
func TestDecodeEmptyFields(t *testing.T) {
	s := &Signature{GID: 1, MemberID: 2}
	dec, err := DecodeSignature(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.GID != 1 || dec.MemberID != 2 || len(dec.MemberPub) != 0 || len(dec.Sig) != 0 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

// TestDecodeMutationFuzz flips random bytes/windows of a valid encoding:
// decode must never panic, and when it does succeed, re-encoding must be
// stable (decode∘encode is the identity on accepted inputs).
func TestDecodeMutationFuzz(t *testing.T) {
	enc := testSignature().Encode()
	rng := mrand.New(mrand.NewSource(7))
	for i := 0; i < 5000; i++ {
		bad := append([]byte(nil), enc...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		dec, err := DecodeSignature(bad)
		if err != nil {
			continue
		}
		if !bytes.Equal(dec.Encode(), bad) {
			t.Fatalf("accepted mutation %d does not re-encode canonically", i)
		}
	}
}
