// Package epid implements a group-membership signature scheme shaped like
// Intel EPID (Enhanced Privacy ID), which SGX quoting enclaves use to sign
// quotes. The scheme reproduces the properties the attestation workflow
// depends on:
//
//   - only provisioned group members can produce signatures that verify
//     under the group public key;
//   - signatures carry a basename-scoped pseudonym, enabling
//     signature-based revocation (SigRL) without identifying the member;
//   - leaked member keys can be revoked via a private-key revocation list
//     (PrivRL);
//   - whole groups can be revoked (GroupRL).
//
// It does NOT reproduce EPID's cryptographic unlinkability across
// basenames (a zero-knowledge property irrelevant to the paper's
// workflow); the simplification is confined to this package and documented
// in DESIGN.md.
//
// Construction: the issuer holds an ECDSA P-256 group issuing key. A
// joining member generates an ECDSA member key plus a 32-byte pseudonym
// secret; the issuer signs (memberID, memberPub) producing the membership
// credential. A signature over msg with basename bsn is the member's ECDSA
// signature over H(msg ‖ bsn ‖ K) together with the credential and the
// pseudonym K = HMAC(secret, bsn).
package epid

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// GroupID identifies an EPID group (the GID field of SGX messages).
type GroupID uint32

// Errors returned by Verify.
var (
	ErrGroupRevoked     = errors.New("epid: group revoked")
	ErrMemberRevoked    = errors.New("epid: member private key revoked")
	ErrSignatureRevoked = errors.New("epid: signature pseudonym revoked")
	ErrBadCredential    = errors.New("epid: invalid membership credential")
	ErrBadSignature     = errors.New("epid: signature verification failed")
	ErrWrongGroup       = errors.New("epid: signature from different group")
)

// Issuer provisions members into a group and owns the group issuing key.
// The verifier side only needs the GroupPublicKey.
type Issuer struct {
	mu      sync.Mutex
	gid     GroupID
	key     *ecdsa.PrivateKey
	members int
}

// NewIssuer creates a group with the given ID.
func NewIssuer(gid GroupID) (*Issuer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("epid: generating group issuing key: %w", err)
	}
	return &Issuer{gid: gid, key: key}, nil
}

// GroupID returns the group's identifier.
func (is *Issuer) GroupID() GroupID { return is.gid }

// GroupPublicKey returns the verification key distributed to verifiers
// (in deployments, embedded in IAS).
func (is *Issuer) GroupPublicKey() *GroupPublicKey {
	return &GroupPublicKey{GID: is.gid, Key: &is.key.PublicKey}
}

// Join provisions a new member (in SGX, this is the provisioning enclave
// flow executed at platform manufacture/boot).
func (is *Issuer) Join() (*Member, error) {
	memberKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("epid: generating member key: %w", err)
	}
	var secret [32]byte
	if _, err := rand.Read(secret[:]); err != nil {
		return nil, fmt.Errorf("epid: generating pseudonym secret: %w", err)
	}
	is.mu.Lock()
	is.members++
	id := uint64(is.members)
	is.mu.Unlock()

	cred, err := signCredential(is.key, is.gid, id, &memberKey.PublicKey)
	if err != nil {
		return nil, err
	}
	return &Member{
		gid:        is.gid,
		id:         id,
		key:        memberKey,
		secret:     secret,
		credential: cred,
	}, nil
}

// GroupPublicKey is the public verification key of an EPID group.
type GroupPublicKey struct {
	GID GroupID
	Key *ecdsa.PublicKey
}

// Member holds a provisioned member's signing material. On a real platform
// this never leaves the quoting enclave.
type Member struct {
	gid        GroupID
	id         uint64
	key        *ecdsa.PrivateKey
	secret     [32]byte
	credential []byte
}

// GroupID returns the group the member belongs to.
func (m *Member) GroupID() GroupID { return m.gid }

// PseudonymSecret exposes the member's pseudonym secret. It exists so that
// tests and the revocation workflow can simulate a leaked platform key
// being added to a PrivRL.
func (m *Member) PseudonymSecret() [32]byte { return m.secret }

// Pseudonym computes the member's basename-scoped pseudonym.
func (m *Member) Pseudonym(basename []byte) [32]byte {
	return pseudonym(m.secret, basename)
}

func pseudonym(secret [32]byte, basename []byte) [32]byte {
	mac := hmac.New(sha256.New, secret[:])
	mac.Write(basename)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Signature is an EPID-shaped group signature.
type Signature struct {
	GID        GroupID
	MemberID   uint64
	MemberPub  []byte // uncompressed P-256 point
	Credential []byte // issuer signature over (gid, memberID, memberPub)
	Pseudonym  [32]byte
	Basename   []byte
	Sig        []byte // member ECDSA (ASN.1) over digest(msg, basename, pseudonym)
}

// Sign produces a group signature over msg scoped to basename. SGX uses
// the SPID as basename for linkable quotes; unlinkable mode passes a random
// basename.
func (m *Member) Sign(msg, basename []byte) (*Signature, error) {
	k := pseudonym(m.secret, basename)
	digest := signatureDigest(msg, basename, k)
	sig, err := ecdsa.SignASN1(rand.Reader, m.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("epid: signing: %w", err)
	}
	return &Signature{
		GID:        m.gid,
		MemberID:   m.id,
		MemberPub:  elliptic.Marshal(elliptic.P256(), m.key.PublicKey.X, m.key.PublicKey.Y),
		Credential: append([]byte(nil), m.credential...),
		Pseudonym:  k,
		Basename:   append([]byte(nil), basename...),
		Sig:        sig,
	}, nil
}

// RevocationLists carries the three EPID revocation lists consulted at
// verification time (IAS distributes the SigRL to challengers and checks
// the rest itself).
type RevocationLists struct {
	// Priv lists leaked member pseudonym secrets.
	Priv [][32]byte
	// Sig lists revoked pseudonyms (basename-scoped).
	Sig [][32]byte
	// Groups lists wholly revoked groups.
	Groups []GroupID
}

// Verify checks sig over msg under the group public key, honoring the
// revocation lists (rl may be nil).
func Verify(gpk *GroupPublicKey, msg []byte, sig *Signature, rl *RevocationLists) error {
	if sig.GID != gpk.GID {
		return ErrWrongGroup
	}
	if rl != nil {
		for _, g := range rl.Groups {
			if g == sig.GID {
				return ErrGroupRevoked
			}
		}
		for _, s := range rl.Sig {
			if s == sig.Pseudonym {
				return ErrSignatureRevoked
			}
		}
		for _, secret := range rl.Priv {
			if pseudonym(secret, sig.Basename) == sig.Pseudonym {
				return ErrMemberRevoked
			}
		}
	}
	x, y := elliptic.Unmarshal(elliptic.P256(), sig.MemberPub)
	if x == nil {
		return ErrBadCredential
	}
	memberPub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	credDigest := credentialDigest(sig.GID, sig.MemberID, sig.MemberPub)
	if !ecdsa.VerifyASN1(gpk.Key, credDigest[:], sig.Credential) {
		return ErrBadCredential
	}
	digest := signatureDigest(msg, sig.Basename, sig.Pseudonym)
	if !ecdsa.VerifyASN1(memberPub, digest[:], sig.Sig) {
		return ErrBadSignature
	}
	return nil
}

func signCredential(issuer *ecdsa.PrivateKey, gid GroupID, id uint64, pub *ecdsa.PublicKey) ([]byte, error) {
	pubBytes := elliptic.Marshal(elliptic.P256(), pub.X, pub.Y)
	digest := credentialDigest(gid, id, pubBytes)
	cred, err := ecdsa.SignASN1(rand.Reader, issuer, digest[:])
	if err != nil {
		return nil, fmt.Errorf("epid: signing credential: %w", err)
	}
	return cred, nil
}

func credentialDigest(gid GroupID, id uint64, memberPub []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("epid-credential-v1"))
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(gid))
	binary.BigEndian.PutUint64(buf[4:12], id)
	h.Write(buf[:])
	h.Write(memberPub)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func signatureDigest(msg, basename []byte, k [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("epid-signature-v1"))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(msg)))
	h.Write(n[:])
	h.Write(msg)
	binary.BigEndian.PutUint64(n[:], uint64(len(basename)))
	h.Write(n[:])
	h.Write(basename)
	h.Write(k[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
