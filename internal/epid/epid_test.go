package epid

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func newGroup(t *testing.T) (*Issuer, *Member) {
	t.Helper()
	is, err := NewIssuer(7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := is.Join()
	if err != nil {
		t.Fatal(err)
	}
	return is, m
}

func TestSignVerifyRoundTrip(t *testing.T) {
	is, m := newGroup(t)
	msg := []byte("quote body")
	bsn := []byte("spid-0001")
	sig, err := m.Sign(msg, bsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(is.GroupPublicKey(), msg, sig, nil); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	is, m := newGroup(t)
	sig, err := m.Sign([]byte("original"), []byte("bsn"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(is.GroupPublicKey(), []byte("tampered"), sig, nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsForeignGroup(t *testing.T) {
	_, m := newGroup(t)
	other, err := NewIssuer(8)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := m.Sign([]byte("m"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(other.GroupPublicKey(), []byte("m"), sig, nil); !errors.Is(err, ErrWrongGroup) {
		t.Fatalf("got %v, want ErrWrongGroup", err)
	}
}

func TestVerifyRejectsForgedCredential(t *testing.T) {
	is, _ := newGroup(t)
	// A non-member fabricates its own key and credential.
	rogue, err := NewIssuer(7) // same GID, different issuing key
	if err != nil {
		t.Fatal(err)
	}
	m, err := rogue.Join()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := m.Sign([]byte("m"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(is.GroupPublicKey(), []byte("m"), sig, nil); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("got %v, want ErrBadCredential", err)
	}
}

func TestPrivRLRevocation(t *testing.T) {
	is, m := newGroup(t)
	sig, err := m.Sign([]byte("m"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	rl := &RevocationLists{Priv: [][32]byte{m.PseudonymSecret()}}
	if err := Verify(is.GroupPublicKey(), []byte("m"), sig, rl); !errors.Is(err, ErrMemberRevoked) {
		t.Fatalf("got %v, want ErrMemberRevoked", err)
	}
	// A different member stays valid under the same RL.
	m2, err := is.Join()
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := m2.Sign([]byte("m"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(is.GroupPublicKey(), []byte("m"), sig2, rl); err != nil {
		t.Fatalf("unrevoked member rejected: %v", err)
	}
}

func TestSigRLRevocation(t *testing.T) {
	is, m := newGroup(t)
	bsn := []byte("controller-basename")
	sig, err := m.Sign([]byte("m"), bsn)
	if err != nil {
		t.Fatal(err)
	}
	rl := &RevocationLists{Sig: [][32]byte{sig.Pseudonym}}
	if err := Verify(is.GroupPublicKey(), []byte("m"), sig, rl); !errors.Is(err, ErrSignatureRevoked) {
		t.Fatalf("got %v, want ErrSignatureRevoked", err)
	}
	// Same member, different basename → different pseudonym → accepted.
	sig2, err := m.Sign([]byte("m"), []byte("other-basename"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(is.GroupPublicKey(), []byte("m"), sig2, rl); err != nil {
		t.Fatalf("different basename rejected: %v", err)
	}
}

func TestGroupRevocation(t *testing.T) {
	is, m := newGroup(t)
	sig, err := m.Sign([]byte("m"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	rl := &RevocationLists{Groups: []GroupID{7}}
	if err := Verify(is.GroupPublicKey(), []byte("m"), sig, rl); !errors.Is(err, ErrGroupRevoked) {
		t.Fatalf("got %v, want ErrGroupRevoked", err)
	}
}

func TestPseudonymStableAndBasenameScoped(t *testing.T) {
	_, m := newGroup(t)
	a1 := m.Pseudonym([]byte("a"))
	a2 := m.Pseudonym([]byte("a"))
	b := m.Pseudonym([]byte("b"))
	if a1 != a2 {
		t.Fatal("pseudonym not deterministic for same basename")
	}
	if a1 == b {
		t.Fatal("pseudonym does not depend on basename")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, m := newGroup(t)
	sig, err := m.Sign([]byte("payload"), []byte("bsn"))
	if err != nil {
		t.Fatal(err)
	}
	enc := sig.Encode()
	dec, err := DecodeSignature(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.GID != sig.GID || dec.MemberID != sig.MemberID ||
		!bytes.Equal(dec.MemberPub, sig.MemberPub) ||
		!bytes.Equal(dec.Credential, sig.Credential) ||
		dec.Pseudonym != sig.Pseudonym ||
		!bytes.Equal(dec.Basename, sig.Basename) ||
		!bytes.Equal(dec.Sig, sig.Sig) {
		t.Fatal("decode mismatch")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	_, m := newGroup(t)
	sig, err := m.Sign([]byte("payload"), []byte("bsn"))
	if err != nil {
		t.Fatal(err)
	}
	enc := sig.Encode()
	for _, n := range []int{0, 5, 11, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeSignature(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeSignature(append(enc, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeEncodePropertyRandomMessages(t *testing.T) {
	is, err := NewIssuer(42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := is.Join()
	if err != nil {
		t.Fatal(err)
	}
	gpk := is.GroupPublicKey()
	f := func(msg, bsn []byte) bool {
		sig, err := m.Sign(msg, bsn)
		if err != nil {
			return false
		}
		dec, err := DecodeSignature(sig.Encode())
		if err != nil {
			return false
		}
		return Verify(gpk, msg, dec, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSignaturesNotReplayableAcrossMessages(t *testing.T) {
	is, m := newGroup(t)
	sig, err := m.Sign([]byte("msg-A"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Forwarding A's signature for message B must fail even with a valid
	// credential and pseudonym.
	if err := Verify(is.GroupPublicKey(), []byte("msg-B"), sig, nil); err == nil {
		t.Fatal("cross-message replay accepted")
	}
}

func TestRandomGarbageDecode(t *testing.T) {
	buf := make([]byte, 256)
	for i := 0; i < 50; i++ {
		if _, err := rand.Read(buf); err != nil {
			t.Fatal(err)
		}
		// Must never panic; error or (vanishingly unlikely) success both fine.
		_, _ = DecodeSignature(buf)
	}
}
