package epid

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/json"
	"fmt"
)

// issuerState is the serialized form of an Issuer. Persisting the group
// issuing key is a simulation affordance: in deployments the issuer is
// Intel's provisioning service, and platforms are provisioned at
// manufacture. Multi-process runs of this repo need the issuer shared
// between the IAS process and the container-host process (DESIGN.md §2).
type issuerState struct {
	GID     GroupID `json:"gid"`
	KeyDER  []byte  `json:"key_der"` // PKCS#8 ECDSA
	Members int     `json:"members"`
}

// Export serialises the issuer.
func (is *Issuer) Export() ([]byte, error) {
	is.mu.Lock()
	defer is.mu.Unlock()
	der, err := x509.MarshalPKCS8PrivateKey(is.key)
	if err != nil {
		return nil, fmt.Errorf("epid: exporting issuer key: %w", err)
	}
	return json.Marshal(issuerState{GID: is.gid, KeyDER: der, Members: is.members})
}

// ImportIssuer reconstructs an issuer from Export output.
func ImportIssuer(data []byte) (*Issuer, error) {
	var st issuerState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("epid: importing issuer: %w", err)
	}
	keyAny, err := x509.ParsePKCS8PrivateKey(st.KeyDER)
	if err != nil {
		return nil, fmt.Errorf("epid: importing issuer key: %w", err)
	}
	key, ok := keyAny.(*ecdsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("epid: issuer key type %T unsupported", keyAny)
	}
	return &Issuer{gid: st.GID, key: key, members: st.Members}, nil
}
