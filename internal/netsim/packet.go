// Package netsim implements the forwarding plane of the SDN deployment: an
// OpenFlow-style network of switches with priority flow tables, links and
// attached hosts. The controller programs it through a southbound
// interface; VNFs enrolled through the paper's workflow push flows via the
// controller's north-bound REST API, and packet traces make the effect
// observable in examples and experiments.
package netsim

import (
	"fmt"
	"net/netip"
)

// Proto is the transport protocol of a packet.
type Proto uint8

// Protocols.
const (
	ProtoAny Proto = 0
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoAny:
		return "any"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Packet is a simplified L2–L4 frame.
type Packet struct {
	EthSrc  string
	EthDst  string
	IPSrc   netip.Addr
	IPDst   netip.Addr
	Proto   Proto
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// String renders a compact packet description for traces.
func (p Packet) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d/%s (%dB)", p.IPSrc, p.SrcPort, p.IPDst, p.DstPort, p.Proto, len(p.Payload))
}

// Match selects packets; zero-valued fields are wildcards.
type Match struct {
	InPort  int // 0 = any
	EthSrc  string
	EthDst  string
	IPSrc   netip.Prefix // zero = any
	IPDst   netip.Prefix
	Proto   Proto
	SrcPort uint16 // 0 = any
	DstPort uint16
}

// Matches reports whether the packet (arriving on inPort) satisfies the
// match.
func (m Match) Matches(inPort int, p Packet) bool {
	if m.InPort != 0 && m.InPort != inPort {
		return false
	}
	if m.EthSrc != "" && m.EthSrc != p.EthSrc {
		return false
	}
	if m.EthDst != "" && m.EthDst != p.EthDst {
		return false
	}
	if m.IPSrc.IsValid() && !m.IPSrc.Contains(p.IPSrc) {
		return false
	}
	if m.IPDst.IsValid() && !m.IPDst.Contains(p.IPDst) {
		return false
	}
	if m.Proto != ProtoAny && m.Proto != p.Proto {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != p.SrcPort {
		return false
	}
	if m.DstPort != 0 && m.DstPort != p.DstPort {
		return false
	}
	return true
}

// ActionType enumerates flow actions.
type ActionType uint8

// Action types.
const (
	// ActionOutput forwards out a port.
	ActionOutput ActionType = iota
	// ActionDrop discards the packet.
	ActionDrop
	// ActionController punts the packet to the controller.
	ActionController
)

// Action is one flow action.
type Action struct {
	Type ActionType
	Port int // for ActionOutput
}

// String renders the action.
func (a Action) String() string {
	switch a.Type {
	case ActionOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActionDrop:
		return "drop"
	case ActionController:
		return "controller"
	default:
		return "unknown"
	}
}

// FlowEntry is one row of a switch's flow table.
type FlowEntry struct {
	Name     string // staticflowpusher entry name (unique per switch)
	Priority int
	Match    Match
	Actions  []Action

	// Counters.
	Packets uint64
	Bytes   uint64
}
