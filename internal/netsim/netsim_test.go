package netsim

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// lineTopo builds h1 -- s1 -- s2 -- h2 with h1 on s1:1, s1:2 -- s2:2,
// h2 on s2:1.
func lineTopo(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	if _, err := n.AddSwitch("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSwitch("s2"); err != nil {
		t.Fatal(err)
	}
	if err := n.Link("s1", 2, "s2", 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost("h1", "s1", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost("h2", "s2", 1); err != nil {
		t.Fatal(err)
	}
	return n
}

func testPacket(t *testing.T) Packet {
	return Packet{
		EthSrc: "aa:aa", EthDst: "bb:bb",
		IPSrc: mustAddr(t, "10.0.0.1"), IPDst: mustAddr(t, "10.0.0.2"),
		Proto: ProtoTCP, SrcPort: 12345, DstPort: 80,
		Payload: []byte("GET /"),
	}
}

func TestDeliveryAcrossSwitches(t *testing.T) {
	n := lineTopo(t)
	n.InstallFlow("s1", FlowEntry{Name: "fwd", Priority: 10,
		Match: Match{IPDst: mustPrefix(t, "10.0.0.2/32")}, Actions: []Action{{Type: ActionOutput, Port: 2}}})
	n.InstallFlow("s2", FlowEntry{Name: "fwd", Priority: 10,
		Match: Match{IPDst: mustPrefix(t, "10.0.0.2/32")}, Actions: []Action{{Type: ActionOutput, Port: 1}}})

	d, err := n.Inject("s1", 1, testPacket(t))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delivered || d.Host != "h2" {
		t.Fatalf("delivery = %+v", d)
	}
	if len(d.Path) != 2 {
		t.Fatalf("path = %v", d.Path)
	}
	if n.DeliveredTo("h2") != 1 {
		t.Fatal("delivery counter")
	}
}

func TestTableMissPuntsToController(t *testing.T) {
	n := lineTopo(t)
	var punted []string
	n.SetPacketInHandler(func(dpid string, inPort int, pkt Packet) {
		punted = append(punted, dpid)
	})
	d, err := n.Inject("s1", 1, testPacket(t))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Dropped || !d.PuntedToController {
		t.Fatalf("delivery = %+v", d)
	}
	if len(punted) != 1 || punted[0] != "s1" {
		t.Fatalf("punted = %v", punted)
	}
}

func TestPriorityOrdering(t *testing.T) {
	n := lineTopo(t)
	// Low-priority allow-all, high-priority drop for port 22.
	n.InstallFlow("s1", FlowEntry{Name: "allow", Priority: 1,
		Match: Match{}, Actions: []Action{{Type: ActionOutput, Port: 2}}})
	n.InstallFlow("s2", FlowEntry{Name: "allow", Priority: 1,
		Match: Match{}, Actions: []Action{{Type: ActionOutput, Port: 1}}})
	n.InstallFlow("s1", FlowEntry{Name: "deny-ssh", Priority: 100,
		Match: Match{Proto: ProtoTCP, DstPort: 22}, Actions: []Action{{Type: ActionDrop}}})

	web := testPacket(t)
	d, err := n.Inject("s1", 1, web)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delivered {
		t.Fatal("web packet not delivered")
	}
	ssh := testPacket(t)
	ssh.DstPort = 22
	d, err = n.Inject("s1", 1, ssh)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Dropped || d.Delivered {
		t.Fatalf("ssh packet = %+v", d)
	}
}

func TestFlowReplaceByName(t *testing.T) {
	n := lineTopo(t)
	n.InstallFlow("s1", FlowEntry{Name: "f", Priority: 5,
		Match: Match{}, Actions: []Action{{Type: ActionDrop}}})
	n.InstallFlow("s1", FlowEntry{Name: "f", Priority: 5,
		Match: Match{}, Actions: []Action{{Type: ActionOutput, Port: 2}}})
	s, err := n.Switch("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Flows()) != 1 {
		t.Fatalf("flow count = %d", len(s.Flows()))
	}
	if s.Flows()[0].Actions[0].Type != ActionOutput {
		t.Fatal("replacement not applied")
	}
}

func TestRemoveFlow(t *testing.T) {
	n := lineTopo(t)
	n.InstallFlow("s1", FlowEntry{Name: "f", Priority: 5, Actions: []Action{{Type: ActionDrop}}})
	if err := n.RemoveFlow("s1", "f"); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveFlow("s1", "f"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if err := n.RemoveFlow("nope", "f"); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("got %v", err)
	}
}

func TestLoopDetection(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch("s1")
	n.AddSwitch("s2")
	if err := n.Link("s1", 1, "s2", 1); err != nil {
		t.Fatal(err)
	}
	// Each switch bounces everything back over the link.
	n.InstallFlow("s1", FlowEntry{Name: "bounce", Priority: 1, Actions: []Action{{Type: ActionOutput, Port: 1}}})
	n.InstallFlow("s2", FlowEntry{Name: "bounce", Priority: 1, Actions: []Action{{Type: ActionOutput, Port: 1}}})
	_, err := n.Inject("s1", 1, testPacket(t))
	if !errors.Is(err, ErrLoopDetected) {
		t.Fatalf("got %v, want ErrLoopDetected", err)
	}
}

func TestCountersAccumulate(t *testing.T) {
	n := lineTopo(t)
	n.InstallFlow("s1", FlowEntry{Name: "f", Priority: 1, Actions: []Action{{Type: ActionOutput, Port: 2}}})
	n.InstallFlow("s2", FlowEntry{Name: "f", Priority: 1, Actions: []Action{{Type: ActionOutput, Port: 1}}})
	pkt := testPacket(t)
	for i := 0; i < 3; i++ {
		if _, err := n.Inject("s1", 1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := n.Switch("s1")
	f := s.Flows()[0]
	if f.Packets != 3 || f.Bytes != uint64(3*len(pkt.Payload)) {
		t.Fatalf("counters = %d pkts %d bytes", f.Packets, f.Bytes)
	}
}

func TestLinksAndHostsEnumeration(t *testing.T) {
	n := lineTopo(t)
	links := n.Links()
	if len(links) != 1 {
		t.Fatalf("links = %v", links)
	}
	if links[0].SrcDPID != "s1" || links[0].DstDPID != "s2" {
		t.Fatalf("link = %+v", links[0])
	}
	hosts := n.Hosts()
	if len(hosts) != 2 || hosts[0] != "h1" || hosts[1] != "h2" {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestTopologyErrors(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch("s1")
	if _, err := n.AddSwitch("s1"); err == nil {
		t.Fatal("duplicate switch accepted")
	}
	if err := n.Link("s1", 1, "nope", 1); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("got %v", err)
	}
	if err := n.AttachHost("h", "s1", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost("h2", "s1", 1); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("got %v", err)
	}
	if _, err := n.Inject("ghost", 1, Packet{}); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("got %v", err)
	}
}

func TestMatchSemantics(t *testing.T) {
	p := testPacket(t)
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"wildcard", Match{}, true},
		{"in-port hit", Match{InPort: 1}, true},
		{"in-port miss", Match{InPort: 3}, false},
		{"eth hit", Match{EthSrc: "aa:aa", EthDst: "bb:bb"}, true},
		{"eth miss", Match{EthSrc: "cc:cc"}, false},
		{"ip prefix hit", Match{IPDst: mustPrefix(t, "10.0.0.0/24")}, true},
		{"ip prefix miss", Match{IPDst: mustPrefix(t, "192.168.0.0/16")}, false},
		{"proto hit", Match{Proto: ProtoTCP}, true},
		{"proto miss", Match{Proto: ProtoUDP}, false},
		{"port hit", Match{DstPort: 80}, true},
		{"port miss", Match{DstPort: 443}, false},
	}
	for _, c := range cases {
		if got := c.m.Matches(1, p); got != c.want {
			t.Errorf("%s: got %v", c.name, got)
		}
	}
}

func TestWildcardMatchProperty(t *testing.T) {
	// Property: the zero Match matches any packet on any port.
	f := func(srcPort, dstPort uint16, proto uint8, payload []byte) bool {
		p := Packet{
			IPSrc: netip.AddrFrom4([4]byte{10, 0, 0, 1}), IPDst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
			Proto: Proto(proto), SrcPort: srcPort, DstPort: dstPort, Payload: payload,
		}
		return (Match{}).Matches(int(srcPort%8), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
