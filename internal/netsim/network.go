package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors.
var (
	ErrUnknownSwitch = errors.New("netsim: unknown switch")
	ErrUnknownPort   = errors.New("netsim: unknown port")
	ErrPortInUse     = errors.New("netsim: port already connected")
	ErrLoopDetected  = errors.New("netsim: forwarding loop (TTL exhausted)")
)

// maxHops bounds a packet's path to catch forwarding loops.
const maxHops = 64

// PacketInHandler receives table-miss/punted packets (the controller's
// southbound packet-in).
type PacketInHandler func(dpid string, inPort int, pkt Packet)

// endpoint is one side of a link or an attached host.
type endpoint struct {
	dpid string // "" for host attachment
	port int
	host string // host name when dpid == ""
}

// Switch is one forwarding element.
type Switch struct {
	dpid  string
	mu    sync.Mutex
	flows []FlowEntry // kept sorted by priority desc, insertion order tiebreak
	peers map[int]endpoint
}

// DPID returns the switch's datapath ID.
func (s *Switch) DPID() string { return s.dpid }

// Flows returns a copy of the flow table (sorted by priority).
func (s *Switch) Flows() []FlowEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FlowEntry, len(s.flows))
	copy(out, s.flows)
	return out
}

// installFlow adds or replaces (by name) a flow entry.
func (s *Switch) installFlow(e FlowEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.flows {
		if s.flows[i].Name == e.Name {
			s.flows[i] = e
			s.sortLocked()
			return
		}
	}
	s.flows = append(s.flows, e)
	s.sortLocked()
}

func (s *Switch) removeFlow(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.flows {
		if s.flows[i].Name == name {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			return true
		}
	}
	return false
}

func (s *Switch) sortLocked() {
	sort.SliceStable(s.flows, func(i, j int) bool {
		return s.flows[i].Priority > s.flows[j].Priority
	})
}

// lookup returns the highest-priority matching entry, bumping counters.
func (s *Switch) lookup(inPort int, pkt Packet) (FlowEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.flows {
		if s.flows[i].Match.Matches(inPort, pkt) {
			s.flows[i].Packets++
			s.flows[i].Bytes += uint64(len(pkt.Payload))
			return s.flows[i], true
		}
	}
	return FlowEntry{}, false
}

// Hop is one step of a packet trace.
type Hop struct {
	DPID   string
	InPort int
	Action string
}

// Delivery is the outcome of injecting a packet.
type Delivery struct {
	// Delivered is true when the packet reached a host port.
	Delivered bool
	// Host is the receiving host (when delivered).
	Host string
	// Dropped is true for explicit drops and table misses.
	Dropped bool
	// PuntedToController is true if a controller action fired.
	PuntedToController bool
	// Path is the hop-by-hop trace.
	Path []Hop
}

// Network is a topology of switches, links and attached hosts.
type Network struct {
	mu       sync.Mutex
	switches map[string]*Switch
	// delivered counts packets per receiving host.
	delivered map[string]uint64
	packetIn  PacketInHandler
}

// NewNetwork creates an empty topology.
func NewNetwork() *Network {
	return &Network{
		switches:  make(map[string]*Switch),
		delivered: make(map[string]uint64),
	}
}

// SetPacketInHandler installs the controller's packet-in callback.
func (n *Network) SetPacketInHandler(h PacketInHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.packetIn = h
}

// AddSwitch creates a switch.
func (n *Network) AddSwitch(dpid string) (*Switch, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.switches[dpid]; dup {
		return nil, fmt.Errorf("netsim: duplicate switch %q", dpid)
	}
	s := &Switch{dpid: dpid, peers: make(map[int]endpoint)}
	n.switches[dpid] = s
	return s, nil
}

// Switch looks a switch up.
func (n *Network) Switch(dpid string) (*Switch, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.switches[dpid]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSwitch, dpid)
	}
	return s, nil
}

// Switches lists DPIDs in sorted order.
func (n *Network) Switches() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.switches))
	for d := range n.switches {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Link connects two switch ports bidirectionally.
func (n *Network) Link(dpidA string, portA int, dpidB string, portB int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.switches[dpidA]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSwitch, dpidA)
	}
	b, ok := n.switches[dpidB]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSwitch, dpidB)
	}
	if _, used := a.peers[portA]; used {
		return fmt.Errorf("%w: %s:%d", ErrPortInUse, dpidA, portA)
	}
	if _, used := b.peers[portB]; used {
		return fmt.Errorf("%w: %s:%d", ErrPortInUse, dpidB, portB)
	}
	a.peers[portA] = endpoint{dpid: dpidB, port: portB}
	b.peers[portB] = endpoint{dpid: dpidA, port: portA}
	return nil
}

// AttachHost binds a named host to a switch port.
func (n *Network) AttachHost(host, dpid string, port int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.switches[dpid]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSwitch, dpid)
	}
	if _, used := s.peers[port]; used {
		return fmt.Errorf("%w: %s:%d", ErrPortInUse, dpid, port)
	}
	s.peers[port] = endpoint{host: host, port: port}
	return nil
}

// LinkInfo describes one link for the topology API.
type LinkInfo struct {
	SrcDPID string `json:"src-switch"`
	SrcPort int    `json:"src-port"`
	DstDPID string `json:"dst-switch"`
	DstPort int    `json:"dst-port"`
}

// Links lists switch-to-switch links (each reported once).
func (n *Network) Links() []LinkInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []LinkInfo
	for dpid, s := range n.switches {
		for port, peer := range s.peers {
			if peer.dpid == "" {
				continue
			}
			if peer.dpid < dpid || (peer.dpid == dpid && peer.port < port) {
				continue // report each link from its lexicographically smaller end
			}
			out = append(out, LinkInfo{SrcDPID: dpid, SrcPort: port, DstDPID: peer.dpid, DstPort: peer.port})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SrcDPID != out[j].SrcDPID {
			return out[i].SrcDPID < out[j].SrcDPID
		}
		return out[i].SrcPort < out[j].SrcPort
	})
	return out
}

// Hosts lists attached host names.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for _, s := range n.switches {
		for _, peer := range s.peers {
			if peer.host != "" {
				out = append(out, peer.host)
			}
		}
	}
	sort.Strings(out)
	return out
}

// DeliveredTo reports packets delivered to a host.
func (n *Network) DeliveredTo(host string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered[host]
}

// InstallFlow programs a flow on a switch (the southbound flow-mod).
func (n *Network) InstallFlow(dpid string, e FlowEntry) error {
	s, err := n.Switch(dpid)
	if err != nil {
		return err
	}
	s.installFlow(e)
	return nil
}

// RemoveFlow deletes a named flow from a switch.
func (n *Network) RemoveFlow(dpid, name string) error {
	s, err := n.Switch(dpid)
	if err != nil {
		return err
	}
	if !s.removeFlow(name) {
		return fmt.Errorf("netsim: no flow %q on %s", name, dpid)
	}
	return nil
}

// Inject sends a packet into the network at a switch port and follows it
// until delivery, drop, or loop exhaustion.
func (n *Network) Inject(dpid string, inPort int, pkt Packet) (*Delivery, error) {
	d := &Delivery{}
	curDPID, curPort := dpid, inPort
	for hop := 0; hop < maxHops; hop++ {
		n.mu.Lock()
		s, ok := n.switches[curDPID]
		handler := n.packetIn
		n.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSwitch, curDPID)
		}
		entry, found := s.lookup(curPort, pkt)
		if !found {
			// Table miss: punt to controller if present, else drop.
			d.Path = append(d.Path, Hop{DPID: curDPID, InPort: curPort, Action: "table-miss"})
			if handler != nil {
				d.PuntedToController = true
				handler(curDPID, curPort, pkt)
			}
			d.Dropped = true
			return d, nil
		}
		advanced := false
		for _, act := range entry.Actions {
			switch act.Type {
			case ActionDrop:
				d.Path = append(d.Path, Hop{DPID: curDPID, InPort: curPort, Action: "drop"})
				d.Dropped = true
				return d, nil
			case ActionController:
				d.Path = append(d.Path, Hop{DPID: curDPID, InPort: curPort, Action: "controller"})
				d.PuntedToController = true
				if handler != nil {
					handler(curDPID, curPort, pkt)
				}
			case ActionOutput:
				d.Path = append(d.Path, Hop{DPID: curDPID, InPort: curPort, Action: fmt.Sprintf("output:%d", act.Port)})
				s.mu.Lock()
				peer, ok := s.peers[act.Port]
				s.mu.Unlock()
				if !ok {
					d.Dropped = true
					return d, fmt.Errorf("%w: %s:%d", ErrUnknownPort, curDPID, act.Port)
				}
				if peer.host != "" {
					d.Delivered = true
					d.Host = peer.host
					n.mu.Lock()
					n.delivered[peer.host]++
					n.mu.Unlock()
					return d, nil
				}
				curDPID, curPort = peer.dpid, peer.port
				advanced = true
			}
			if advanced {
				break
			}
		}
		if !advanced {
			// Actions did not forward (e.g. controller-only): stop.
			d.Dropped = !d.PuntedToController
			return d, nil
		}
	}
	return d, ErrLoopDetected
}
