package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// errtaxonomy enforces the durable-state error taxonomy. Recovery
// distinguishes exactly three ways a statedir can lie —
// ErrStateCorrupt, ErrStateRollback, ErrStateTampered — and everything
// the operators and tests do with a refused open keys off errors.Is
// against those sentinels. PR 2 introduced the taxonomy; PR 7 extended
// it to checkpoints and compaction and fixed call sites that had
// quietly dropped it. Two checks:
//
//  1. Everywhere: comparing an error against a package-level Err*
//     sentinel with == or != breaks as soon as any layer wraps the
//     error (which the open paths all do, via %w) — errors.Is is the
//     only taxonomy-safe comparison.
//  2. In the open-path files (recover.go, checkpoint.go, compact.go):
//     an error constructed with fmt.Errorf but no %w verb, or with
//     errors.New outside the package-level sentinel declarations,
//     escapes the taxonomy entirely — recovery failures must wrap a
//     sentinel or propagate the classified underlying error.

// taxonomyFiles are the open-path files whose escaping errors must stay
// inside the taxonomy.
var taxonomyFiles = map[string]bool{
	"recover.go":    true,
	"checkpoint.go": true,
	"compact.go":    true,
}

// ErrTaxonomy is the error-taxonomy analyzer.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "sentinel errors must be compared with errors.Is, and open-path errors must wrap the state taxonomy via %w",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(p *Pass) {
	for _, file := range p.Files {
		filename := filepath.Base(p.Fset.Position(file.Pos()).Filename)
		checkSentinelComparisons(p, file)
		if taxonomyFiles[filename] && !p.IsTestFile(file.Pos()) {
			checkTaxonomyEscapes(p, file)
		}
	}
}

// checkSentinelComparisons flags ==/!= against Err* sentinels.
func checkSentinelComparisons(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if name, ok := sentinelVar(p.Info, side); ok {
				p.Reportf(be.Pos(),
					"comparing an error to sentinel %s with %s; wrapped errors never match — use errors.Is",
					name, be.Op)
				return true
			}
		}
		return true
	})
}

// checkTaxonomyEscapes flags error constructions in the open-path files
// that cannot carry a sentinel.
func checkTaxonomyEscapes(p *Pass, file *ast.File) {
	// Package-level var blocks may declare the sentinels themselves with
	// errors.New; collect their ranges so those are not flagged.
	inTopLevelVar := func(pos token.Pos) bool {
		for _, d := range file.Decls {
			if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR &&
				pos >= gd.Pos() && pos <= gd.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case pkgFunc(p.Info, call, "fmt", "Errorf"):
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && !strings.Contains(lit.Value, "%w") {
				p.Reportf(call.Pos(),
					"fmt.Errorf without %%w on an open path drops the ErrStateCorrupt/Tampered/Rollback taxonomy; wrap a sentinel or the classified underlying error")
			}
		case pkgFunc(p.Info, call, "errors", "New"):
			if !inTopLevelVar(call.Pos()) {
				p.Reportf(call.Pos(),
					"errors.New on an open path creates an unclassifiable error; wrap one of the state sentinels with fmt.Errorf and %%w")
			}
		}
		return true
	})
}
