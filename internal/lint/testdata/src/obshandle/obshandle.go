// Package obshandle is golden-test input for the telemetry-handle rule.
package obshandle

import "vnfguard/internal/obs"

var reg = obs.NewRegistry()

// Package-level resolution is the blessed pattern.
var pkgCounter = reg.Counter("golden_pkg_events_total", "Resolved at package init.")

type server struct {
	hits *obs.Counter
}

// newServer resolves its handles at construction — allowed.
func newServer() *server {
	return &server{hits: reg.Counter("golden_server_hits_total", "Resolved in a constructor.")}
}

func (s *server) handle() {
	_ = reg.Counter("golden_server_hits_total", "Hot-path lookup.") // want "outside package init or a constructor"
}

func drain(n int) {
	for i := 0; i < n; i++ {
		_ = reg.Gauge("golden_queue_depth", "Lookup inside a loop.") // want "inside a loop"
	}
}

func memoised() *obs.Counter {
	//lint:allow obshandle golden-test memoised resolver, called once at construction
	return reg.Counter("golden_memoised_total", "Resolved through a memoising helper.")
}
