// Package errtaxonomy is golden-test input for the error-taxonomy rule.
// The file is named recover.go because the taxonomy-escape half of the
// rule keys off the open-path file names.
package errtaxonomy

import (
	"errors"
	"fmt"
)

// ErrStateCorrupt stands in for the real taxonomy sentinels.
var ErrStateCorrupt = errors.New("errtaxonomy: state corrupt")

func compareEq(err error) bool {
	return err == ErrStateCorrupt // want "use errors.Is"
}

func compareNeq(err error) bool {
	return ErrStateCorrupt != err // want "use errors.Is"
}

func compareIs(err error) bool {
	return errors.Is(err, ErrStateCorrupt) // the taxonomy-safe form
}

func escapePlain(n int) error {
	return fmt.Errorf("errtaxonomy: %d segments unreadable", n) // want "fmt.Errorf without"
}

func wrapSentinel(n int) error {
	return fmt.Errorf("%w: %d segments unreadable", ErrStateCorrupt, n)
}

func wrapUnderlying(err error) error {
	return fmt.Errorf("errtaxonomy: replaying segment: %w", err)
}

func escapeNew() error {
	return errors.New("errtaxonomy: unclassifiable") // want "errors.New on an open path"
}

func validateConfig(n int) error {
	//lint:allow errtaxonomy config validation for the golden test; no on-disk state is being classified
	return fmt.Errorf("errtaxonomy: %d shards unsupported", n)
}
