// Package goroutinetest is golden-test input for the test-goroutine
// discipline rule. These tests are type-checked by the golden harness,
// never executed.
package goroutinetest

import (
	"sync"
	"testing"
)

func TestFatalInGoroutine(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.Fatal("boom") // want "t.Fatal inside a goroutine"
	}()
	wg.Wait()
}

func TestFatalfNested(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		func() {
			t.Fatalf("nested %d", 1) // want "t.Fatalf inside a goroutine"
		}()
	}()
	<-done
}

func TestAddWithoutWait(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1) // want "Add()ed but never Wait()ed"
	go func() {
		defer wg.Done()
	}()
}

func TestDisciplined(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.Error("recorded, not fatal")
	}()
	wg.Wait()
}

func TestFatalOnTestGoroutine(t *testing.T) {
	t.Fatal("fine here: this is the test goroutine")
}

func TestSuppressedFatal(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		//lint:allow goroutinetest golden test exercising the failure shape itself
		t.Fatal("intentional")
	}()
	<-done
}
