// Package target is golden-test input for the unusedexport sweep: the
// user package next door consumes part of its surface.
package target

import "errors"

// Used is referenced directly by the user package.
func Used() int { return 1 }

// NewThing is referenced by the user package; its result type is only
// ever bound with :=, so the signature closure must keep Thing (and
// everything reachable from it) off the findings list.
func NewThing() *Thing { return &Thing{} }

// Thing is reachable through NewThing's result.
type Thing struct {
	// Inner is reachable through Thing's exported field.
	Inner Inner
}

// Inner is reachable through Thing.Inner.
type Inner struct{}

// Get is reachable as a method of a reachable type; its result closes
// over Leaf.
func (t *Thing) Get() Leaf { return Leaf{} }

// Leaf is reachable through Thing.Get.
type Leaf struct{}

// Dead has no user anywhere.
func Dead() {} // want "exported Dead is not used"

// DeadConst has no user anywhere.
const DeadConst = 2 // want "exported DeadConst is not used"

// ErrDead is a sentinel nothing matches against.
var ErrDead = errors.New("target: dead") // want "exported ErrDead is not used"

// ErrJustified is equally unused, but carries a written justification.
var ErrJustified = errors.New("target: justified") //lint:allow unusedexport deliberate API surface kept for the golden test

// InPackageOnly is called below, but in-package use does not count.
func InPackageOnly() {} // want "exported InPackageOnly is not used"

func usedInternally() { InPackageOnly() }

var _ = usedInternally
