// Package user consumes part of target's surface, so the unusedexport
// golden test sees genuine cross-package uses.
package user

import "vnfguard/internal/lint/testdata/src/unusedexport/target"

// Consume names Used and NewThing — and never the Thing type itself,
// which must survive the sweep through the signature closure.
func Consume() int {
	th := target.NewThing()
	_ = th.Get()
	return target.Used()
}
