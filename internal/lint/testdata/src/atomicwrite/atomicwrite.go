// Package atomicwrite is golden-test input for the durable-write
// discipline rule.
package atomicwrite

import "os"

func persistRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600) // want "raw os.WriteFile"
}

func createRaw(path string) (*os.File, error) {
	return os.Create(path) // want "raw os.Create"
}

func openCreate(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o600) // want "raw os.OpenFile"
}

func openExisting(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o600) // no O_CREATE: not a persistence call
}

func fileWriteRaw(f *os.File, data []byte) error {
	_, err := f.Write(data) // want "raw (*os.File).Write"
	return err
}

func renameBare(tmp, final string) error {
	return os.Rename(tmp, final) // want "no fsync of the renamed file before it and no parent-dir sync"
}

func renameNoDirSync(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want "not followed by a parent-directory sync"
}

func renameNoSyncBefore(dir *os.File, tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil { // want "not preceded by an fsync"
		return err
	}
	return dir.Sync()
}

// atomicReplace carries the full discipline: fsync before the rename,
// parent-dir sync after. No findings.
func atomicReplace(f *os.File, tmp, final, parent string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(parent)
}

func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// atomicWriteFile is on the approved-writer list: raw primitives are
// allowed inside it, but its rename still needs the full discipline.
func atomicWriteFile(f *os.File, path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o600); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	return syncDir(path)
}

func writeDiagnostic(path string, data []byte) error {
	//lint:allow atomicwrite diagnostic artifact for the golden test; durability deliberately not needed
	return os.WriteFile(path, data, 0o600)
}
