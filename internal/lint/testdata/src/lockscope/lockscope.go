// Package lockscope is golden-test input for the lock-discipline rule.
package lockscope

import (
	"os"
	"sync"
	"time"
)

type table struct {
	mu sync.RWMutex
}

func (t *table) readBlocking(path string) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return os.ReadFile(path) // want "os.ReadFile while holding read lock t.mu"
}

func (t *table) sleepUnder() {
	t.mu.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding read lock"
	t.mu.RUnlock()
}

func (t *table) syncUnder(f *os.File) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return f.Sync() // want "Sync() while holding read lock"
}

func (t *table) readAfterUnlock(path string) ([]byte, error) {
	t.mu.RLock()
	t.mu.RUnlock()
	return os.ReadFile(path) // region closed: clean
}

// spawnReader's literal runs when the goroutine runs, not under the
// region that spawned it — no finding.
func (t *table) spawnReader(path string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	go func() {
		_, _ = os.ReadFile(path)
	}()
}

// literalOwnRegion holds its own RLock inside the literal, so the
// blocking call is flagged there.
func (t *table) literalOwnRegion(path string) func() {
	return func() {
		t.mu.RLock()
		defer t.mu.RUnlock()
		_, _ = os.ReadFile(path) // want "os.ReadFile while holding read lock"
	}
}

func (t *table) auditedRead(path string) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	//lint:allow lockscope golden-test cold path, never concurrent with a commit
	return os.ReadFile(path)
}

type prover struct {
	mu sync.RWMutex
}

func (l *prover) InclusionProof(i uint64) uint64 {
	l.mu.Lock() // want "proof path InclusionProof acquires write lock l.mu.Lock()"
	defer l.mu.Unlock()
	return i
}

// RootAt reads under RLock — the sanctioned proof-path shape.
func (l *prover) RootAt(n uint64) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return n
}

// Lock on something other than the receiver is outside this rule.
func (l *prover) ConsistencyProof(other *sync.Mutex) {
	other.Lock()
	defer other.Unlock()
}

// Tile is a proof-path method: an immutable tile response must never be
// produced under the commit lock.
func (l *prover) Tile(level, index uint64) uint64 {
	l.mu.Lock() // want "proof path Tile acquires write lock l.mu.Lock()"
	defer l.mu.Unlock()
	return level + index
}

// TileUnderRLock is fine at tile level too: the sanctioned read shape.
func (l *prover) TileRead(level uint64) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return level
}
