package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// atomicwrite enforces the crash-safe write discipline every durable
// file in this project must follow: tmp + write + fsync + rename +
// parent-dir sync (store.go's atomicWriteFile is the canonical shape).
// PR 7 fixed recovery trims that skipped the fsync half of this
// discipline — a crash after recovery could resurrect a torn tail the
// open had already repaired — and statedir.Dir.Write shipped for six
// PRs with a rename nothing ever fsynced. Two checks:
//
//  1. Raw persistence calls (os.WriteFile, os.Create, os.OpenFile with
//     O_CREATE, (*os.File).Write) outside the approved write helpers are
//     flagged: new durable files must go through atomicWriteFile,
//     statedir.Dir.Write, or the segment/archive writers, not hand-roll
//     the sequence.
//  2. Every os.Rename — approved helpers included — must be preceded in
//     the same function by an fsync of the renamed file and followed by
//     a parent-directory sync, or the rename itself is not durable.
//
// Test files are exempt: tests stage fixture state, they do not persist
// trust-bearing files.

// approvedWriters are the functions allowed to touch the raw write
// primitives: the atomic-replace helpers themselves plus the WAL
// segment and archive writers, which follow the discipline at a larger
// granularity (segments are fsynced per batch, archives are written via
// atomicWriteFile).
var approvedWriters = map[string]bool{
	"atomicWriteFile": true, // store.go: the canonical tmp+fsync+rename+dir-sync helper
	"Write":           true, // statedir.Dir.Write: the statedir atomic-replace helper
	"persistLocked":   true, // sgx nvStore: the platform-NV image writer
	"write":           true, // stream.write: the WAL segment batch writer
	"rotate":          true, // stream.rotate: opens fresh WAL segments
	"applyTrims":      true, // recovery's deferred truncate+fsync pass
}

// AtomicWrite is the durability-discipline analyzer.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "persisted files must go through the approved atomic write helpers, and every rename needs fsync-before and dir-sync-after",
	Run:  runAtomicWrite,
}

func runAtomicWrite(p *Pass) {
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWriteDiscipline(p, fd)
		}
	}
}

// callSites collects, in source order, the positions this analyzer
// cares about within one function body.
type callSites struct {
	renames  []token.Pos
	syncs    []token.Pos // f.Sync() on any receiver
	dirSyncs []token.Pos // syncDir-style helper calls
	raw      []*ast.CallExpr
	rawWhat  []string
}

func checkWriteDiscipline(p *Pass, fd *ast.FuncDecl) {
	var sites callSites
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case pkgFunc(p.Info, call, "os", "Rename"):
			sites.renames = append(sites.renames, call.Pos())
		case pkgFunc(p.Info, call, "os", "WriteFile"):
			sites.raw = append(sites.raw, call)
			sites.rawWhat = append(sites.rawWhat, "os.WriteFile")
		case pkgFunc(p.Info, call, "os", "Create"):
			sites.raw = append(sites.raw, call)
			sites.rawWhat = append(sites.rawWhat, "os.Create")
		case pkgFunc(p.Info, call, "os", "OpenFile") && openFileCreates(call):
			sites.raw = append(sites.raw, call)
			sites.rawWhat = append(sites.rawWhat, "os.OpenFile(O_CREATE)")
		default:
			if _, ok := methodCall(call, "Sync"); ok {
				sites.syncs = append(sites.syncs, call.Pos())
				return true
			}
			if isDirSyncHelper(call) {
				sites.dirSyncs = append(sites.dirSyncs, call.Pos())
				return true
			}
			if _, ok := methodCall(call, "Write"); ok && recvTypeNamed(p.Info, call, "os", "File") {
				sites.raw = append(sites.raw, call)
				sites.rawWhat = append(sites.rawWhat, "(*os.File).Write")
			}
		}
		return true
	})

	if !approvedWriters[fd.Name.Name] {
		for i, call := range sites.raw {
			p.Reportf(call.Pos(),
				"raw %s outside the approved write helpers (atomicWriteFile, statedir.Dir.Write, segment/archive writers); persisted files must use the tmp+fsync+rename+dir-sync discipline",
				sites.rawWhat[i])
		}
	}

	for _, rename := range sites.renames {
		syncBefore := anyBefore(sites.syncs, rename)
		// The rename itself only becomes durable once the parent
		// directory is synced; either a dedicated helper (syncDir) or a
		// direct Sync on the opened directory after the rename counts.
		dirSyncAfter := anyAfter(sites.dirSyncs, rename) || anyAfter(sites.syncs, rename)
		switch {
		case !syncBefore && !dirSyncAfter:
			p.Reportf(rename, "os.Rename with no fsync of the renamed file before it and no parent-dir sync after it; a crash can lose or tear the replacement")
		case !syncBefore:
			p.Reportf(rename, "os.Rename not preceded by an fsync of the renamed file in this function; the renamed contents may not be durable")
		case !dirSyncAfter:
			p.Reportf(rename, "os.Rename not followed by a parent-directory sync in this function; the rename itself may not survive a crash")
		}
	}
}

// openFileCreates reports whether an os.OpenFile call's flag argument
// mentions O_CREATE (syntactically — the flags are always literal
// constants in this codebase).
func openFileCreates(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_CREATE" {
			found = true
		}
		return !found
	})
	return found
}

// isDirSyncHelper matches calls whose callee name contains "syncdir"
// (syncDir, SyncDir, fsyncDir…): the project's parent-directory sync
// helpers.
func isDirSyncHelper(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "syncdir")
}

func anyBefore(positions []token.Pos, ref token.Pos) bool {
	for _, p := range positions {
		if p < ref {
			return true
		}
	}
	return false
}

func anyAfter(positions []token.Pos, ref token.Pos) bool {
	for _, p := range positions {
		if p > ref {
			return true
		}
	}
	return false
}
