package lint

import (
	"go/ast"
	"strings"
)

// obshandle enforces the telemetry plane's core contract (PR 6): every
// instrument is resolved from the obs registry once — at package init
// or at construction — and the hot paths (append, commit, gossip,
// recovery) only ever touch pre-resolved handles, each a few atomics.
// A registry lookup (Counter/Gauge/Histogram/Stamp by name) takes the
// registry mutex and a map lookup; on a hot path, or worse inside a
// loop, it reintroduces exactly the contention
// TestScrapeNeverBlocksSequencerCommit exists to rule out.
//
// Lookups are therefore allowed only in package-level variable
// initialisers and in constructor-shaped functions (New*, Open*, new*,
// open*, make*, init). Anything else — and any lookup inside a loop,
// wherever it sits — is flagged. Memoised resolvers that are genuinely
// called at construction time carry a written //lint:allow. Test files
// are exempt: tests are not hot paths. The obs package itself is
// exempt: it implements the registry.

// ObsHandle is the telemetry-handle analyzer.
var ObsHandle = &Analyzer{
	Name: "obshandle",
	Doc:  "obs registry lookups belong in package init or constructors; hot paths use pre-resolved handles",
	Run:  runObsHandle,
}

// lookupMethods are the registry's by-name instrument resolvers.
var lookupMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Stamp":     true,
}

// constructorShaped reports whether a function name marks construction
// time, where registry lookups are expected.
func constructorShaped(name string) bool {
	for _, prefix := range [...]string{"New", "Open", "new", "open", "make", "init"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runObsHandle(p *Pass) {
	if p.Pkg.Name() == "obs" {
		return
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !lookupMethods[sel.Sel.Name] {
				return true
			}
			if !recvTypeNamed(p.Info, call, "internal/obs", "Registry") {
				return true
			}
			fn, fnName := enclosingFunc(stack)
			switch {
			case inLoop(stack):
				p.Reportf(call.Pos(),
					"obs registry lookup %s(%s) inside a loop; resolve the handle once at construction and reuse it",
					sel.Sel.Name, lookupName(call))
			case fn == nil:
				// Package-level var initialiser: the blessed pattern.
			case fnName != "" && constructorShaped(fnName):
				// Constructor: lookups here run once per component.
			default:
				p.Reportf(call.Pos(),
					"obs registry lookup %s(%s) outside package init or a constructor; hot paths must use a pre-resolved handle (struct field or package var)",
					sel.Sel.Name, lookupName(call))
			}
			return true
		})
	}
}

// lookupName extracts the series name argument for the message, when it
// is a literal.
func lookupName(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			return lit.Value
		}
	}
	return "…"
}
