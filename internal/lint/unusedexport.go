package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unusedexport finds exported top-level identifiers in the audited
// packages that no other package in the tree references. An export
// nobody imports is API surface that must be kept compatible, reviewed
// for invariants, and carried through refactors — for nothing. The
// sweep targets internal/translog (the package every PR grows); each
// finding is deleted, unexported, or carries a written //lint:allow.
//
// Methods, struct fields and interface members are out of scope:
// their reachability flows through interfaces and embedding, which a
// name-level sweep cannot judge safely. Uses inside the defining
// package (its own tests included) do not count — an export only its
// own tests touch should not be exported.

// unusedExportTargets are the package-path suffixes the sweep audits.
var unusedExportTargets = []string{"internal/translog"}

// UnusedExport is the dead-export analyzer.
var UnusedExport = &GlobalAnalyzer{
	Name: "unusedexport",
	Doc:  "exported identifiers in audited packages must be used by another package, or be unexported/deleted/justified",
	Run:  runUnusedExport,
}

func runUnusedExport(units []*Unit, report func(Finding)) {
	targets := map[string]*Unit{}
	for _, u := range units {
		for _, suffix := range unusedExportTargets {
			if u.PkgPath == suffix || strings.HasSuffix(u.PkgPath, "/"+suffix) {
				targets[u.Pkg.Path()] = u
			}
		}
	}
	if len(targets) == 0 {
		return
	}

	// Collect every cross-package use: objects used by a unit other
	// than the one defining them, keyed by defining-package path + name.
	// Units and the source importer hold distinct object copies of the
	// same package, so identity is by (path, name), not pointer.
	used := map[string]bool{}
	for _, u := range units {
		for _, obj := range u.Info.Uses {
			if obj == nil || obj.Pkg() == nil {
				continue
			}
			defPath := obj.Pkg().Path()
			if defPath == u.Pkg.Path() || strings.TrimSuffix(u.PkgPath, "_test") == defPath {
				continue
			}
			if _, isTarget := targets[defPath]; isTarget {
				used[defPath+"."+obj.Name()] = true
			}
		}
	}

	// Close over signatures: a type that only ever reaches callers as a
	// constructor result or a method argument is named by `:=`, never by
	// an identifier Info.Uses would record. Anything reachable through
	// the signature graph of a used export is used API, not dead API.
	for path, u := range targets {
		closeReachable(path, u.Pkg.Scope(), used)
	}

	for path, u := range targets {
		for _, file := range u.Files {
			if strings.HasSuffix(u.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				for _, id := range exportedTopLevelNames(decl) {
					if !used[path+"."+id.Name] {
						report(Finding{Pos: u.Fset.Position(id.Pos()),
							Message: "exported " + id.Name + " is not used by any other package in the tree; unexport it, delete it, or justify keeping the API surface"})
					}
				}
			}
		}
	}
}

// closeReachable marks as used every exported named type of the target
// package reachable from an already-used export: through function
// parameter and result types, through exported methods of reached
// types, through exported struct fields and through interface method
// sets. Sentinels and constants are not closed over — their static type
// (error, string) carries no signature — so they stay subject to the
// direct-use test.
func closeReachable(path string, scope *types.Scope, used map[string]bool) {
	seen := map[types.Type]bool{}
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch tt := t.(type) {
		case *types.Named:
			obj := tt.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != path {
				return // foreign type: not this sweep's surface
			}
			used[path+"."+obj.Name()] = true
			for i := 0; i < tt.NumMethods(); i++ {
				if m := tt.Method(i); m.Exported() {
					walk(m.Type())
				}
			}
			walk(tt.Underlying())
		case *types.Pointer:
			walk(tt.Elem())
		case *types.Slice:
			walk(tt.Elem())
		case *types.Array:
			walk(tt.Elem())
		case *types.Map:
			walk(tt.Key())
			walk(tt.Elem())
		case *types.Chan:
			walk(tt.Elem())
		case *types.Signature:
			walk(tt.Params())
			walk(tt.Results())
		case *types.Tuple:
			for i := 0; i < tt.Len(); i++ {
				walk(tt.At(i).Type())
			}
		case *types.Struct:
			for i := 0; i < tt.NumFields(); i++ {
				if f := tt.Field(i); f.Exported() {
					walk(f.Type())
				}
			}
		case *types.Interface:
			for i := 0; i < tt.NumExplicitMethods(); i++ {
				if m := tt.ExplicitMethod(i); m.Exported() {
					walk(m.Type())
				}
			}
			for i := 0; i < tt.NumEmbeddeds(); i++ {
				walk(tt.EmbeddedType(i))
			}
		}
	}
	for _, name := range scope.Names() {
		if used[path+"."+name] {
			if obj := scope.Lookup(name); obj != nil {
				walk(obj.Type())
			}
		}
	}
}

// exportedTopLevelNames returns the exported identifiers a top-level
// declaration introduces (functions without receivers, and const, var
// and type specs).
func exportedTopLevelNames(decl ast.Decl) []*ast.Ident {
	var out []*ast.Ident
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Recv == nil && d.Name.IsExported() {
			out = append(out, d.Name)
		}
	case *ast.GenDecl:
		if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
			return nil
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					out = append(out, s.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, name)
					}
				}
			}
		}
	}
	return out
}
