package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loading: packages come from `go list -json` (the same source the build
// uses, so build tags and module boundaries are honoured), are parsed
// with go/parser and type-checked with go/types. Imports resolve through
// go/importer's source importer — pure stdlib, no golang.org/x/tools —
// with one shared importer per Loader so each dependency is checked once
// per run.

// Loader parses and type-checks packages under one shared FileSet and
// importer.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a fresh loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's FileSet.
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

// LoadFiles parses and type-checks the named files as one package.
func (ld *Loader) LoadFiles(pkgPath string, filenames []string) (*Unit, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld.imp}
	pkg, err := conf.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Unit{PkgPath: pkgPath, Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// LoadDir loads every .go file in dir (test files included) as one
// package under pkgPath — the golden-test harness's entry point for
// testdata packages, which `go list` does not see.
func (ld *Loader) LoadDir(dir, pkgPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	return ld.LoadFiles(pkgPath, names)
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// goList enumerates the packages matching patterns, rooted at dir.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles,TestGoFiles,XTestGoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns (rooted at dir) and returns
// one Unit per compiled package: in-package test files are checked
// together with the package sources (as `go test` compiles them), and
// external _test packages become their own unit.
func Load(dir string, patterns []string) ([]*Unit, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ld := NewLoader()
	var units []*Unit
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		join := func(names []string) []string {
			out := make([]string, len(names))
			for i, n := range names {
				out[i] = filepath.Join(p.Dir, n)
			}
			return out
		}
		if len(p.GoFiles)+len(p.TestGoFiles) > 0 {
			u, err := ld.LoadFiles(p.ImportPath, append(join(p.GoFiles), join(p.TestGoFiles)...))
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		if len(p.XTestGoFiles) > 0 {
			u, err := ld.LoadFiles(p.ImportPath+"_test", join(p.XTestGoFiles))
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	return units, nil
}
