package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// lockscope enforces the project's lock discipline on read paths. The
// sequencer's commit deliberately holds the log's write lock across its
// WAL fsync — that is the durability-before-visibility contract — which
// makes the converse rules load-bearing:
//
//  1. Read-lock regions stay fast: between X.RLock() and X.RUnlock()
//     (or function end, for a deferred RUnlock), no file I/O, fsync,
//     network call or sleep. A reader that blocks under an RLock
//     extends the window in which the committing writer — and every
//     other reader — is stuck behind it.
//  2. Proof paths never take the commit lock: methods serving proofs
//     (InclusionProof, ConsistencyProof, RootAt, ProveSerial) must not
//     acquire their receiver's write lock, or every proof request
//     contends with a commit holding that lock across an fsync. PR 7
//     fixed exactly this and pinned it with
//     TestProofsDoNotBlockOnCommitLock; this check pins it statically.
//
// The region tracking is lexical (source order within one function),
// which matches how every lock region in this codebase is written.

// proofMethods are the read-path methods that must never take a write
// lock.
var proofMethods = map[string]bool{
	"InclusionProof":   true,
	"ConsistencyProof": true,
	"RootAt":           true,
	"ProveSerial":      true,
	// Tile serving is the cacheable read path: a tile response is
	// immutable and must come from committed state only — never from
	// under the commit lock, where a mid-commit tree could leak
	// uncommitted nodes into a response caches keep forever.
	"Tile": true,
}

// LockScope is the lock-discipline analyzer.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no blocking I/O under read locks, and proof paths never acquire the commit (write) lock",
	Run:  runLockScope,
}

func runLockScope(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRLockRegions(p, fd)
			if fd.Recv != nil && proofMethods[fd.Name.Name] && !p.IsTestFile(fd.Pos()) {
				checkProofLock(p, fd)
			}
		}
	}
}

// lockEvent is one lock-relevant call in source order.
type lockEvent struct {
	pos    int // byte offset for ordering
	kind   int // 0 RLock, 1 RUnlock, 2 deferred RUnlock, 3 blocking call
	lock   string
	detail string
	node   ast.Node
}

// checkRLockRegions flags blocking calls lexically inside RLock/RUnlock
// windows of one function body.
func checkRLockRegions(p *Pass, fd *ast.FuncDecl) {
	checkRLockBody(p, fd.Body)
}

// checkRLockBody runs the region check over one function body. Nested
// function literals are their own world — the locks they take run when
// they run, not where they are written — so each literal gets its own
// recursive pass and RLock state never leaks across the boundary.
func checkRLockBody(p *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkRLockBody(p, lit.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		events = appendLockEvent(p, events, call, isDeferred(stack))
		return true
	})
	reportRLockViolations(p, events)
}

func isDeferred(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

func appendLockEvent(p *Pass, events []lockEvent, call *ast.CallExpr, deferred bool) []lockEvent {
	if recv, ok := methodCall(call, "RLock"); ok {
		return append(events, lockEvent{pos: int(call.Pos()), kind: 0, lock: exprText(recv), node: call})
	}
	if recv, ok := methodCall(call, "RUnlock"); ok {
		kind := 1
		if deferred {
			kind = 2
		}
		return append(events, lockEvent{pos: int(call.Pos()), kind: kind, lock: exprText(recv), node: call})
	}
	if what, ok := blockingCall(p, call); ok {
		return append(events, lockEvent{pos: int(call.Pos()), kind: 3, detail: what, node: call})
	}
	return events
}

func reportRLockViolations(p *Pass, events []lockEvent) {
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.lock] = true
		case 1:
			delete(held, ev.lock)
		case 2:
			// Deferred RUnlock: the lock stays held to function end, so
			// leave it in the held set.
		case 3:
			if len(held) > 0 {
				locks := make([]string, 0, len(held))
				for l := range held {
					locks = append(locks, l)
				}
				sort.Strings(locks)
				p.Reportf(ev.node.Pos(),
					"%s while holding read lock %s; blocking I/O under an RLock stalls the committing writer and every other reader",
					ev.detail, strings.Join(locks, ", "))
			}
		}
	}
}

// blockingCall classifies calls that must not run under a read lock.
func blockingCall(p *Pass, call *ast.CallExpr) (string, bool) {
	for _, name := range [...]string{"Open", "OpenFile", "Create", "ReadFile", "WriteFile", "Remove", "RemoveAll", "Rename", "ReadDir", "Truncate"} {
		if pkgFunc(p.Info, call, "os", name) {
			return "os." + name, true
		}
	}
	if pkgFunc(p.Info, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	for _, name := range [...]string{"Get", "Post", "PostForm", "Head"} {
		if pkgFunc(p.Info, call, "net/http", name) {
			return "http." + name, true
		}
	}
	if _, ok := methodCall(call, "Sync"); ok {
		return "Sync()", true
	}
	for _, name := range [...]string{"Write", "Read", "ReadAt", "WriteAt"} {
		if _, ok := methodCall(call, name); ok && recvTypeNamed(p.Info, call, "os", "File") {
			return "(*os.File)." + name, true
		}
	}
	for _, name := range [...]string{"Do", "Get", "Post", "Head"} {
		if _, ok := methodCall(call, name); ok && recvTypeNamed(p.Info, call, "net/http", "Client") {
			return "(*http.Client)." + name, true
		}
	}
	return "", false
}

// checkProofLock flags write-lock acquisitions on the receiver inside
// proof-serving methods.
func checkProofLock(p *Pass, fd *ast.FuncDecl) {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := methodCall(call, "Lock")
		if !ok {
			return true
		}
		if text := exprText(recv); text == recvName || strings.HasPrefix(text, recvName+".") {
			p.Reportf(call.Pos(),
				"proof path %s acquires write lock %s.Lock(); proofs must not contend with a commit holding that lock across fsync (use the tree's own read synchronisation)",
				fd.Name.Name, text)
		}
		return true
	})
}
