package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type helpers for the analyzers.

// walkStack walks root in source order, calling fn with each node and
// the stack of its ancestors (outermost first, n excluded). Returning
// false from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Pop immediately: Inspect will not descend, so the nil
			// closing visit for this node never comes.
			stack = stack[:len(stack)-1]
		}
		return keep
	})
}

// pkgFunc matches a call to pkg.Name where pkg resolves to the package
// with the given import path (so aliased imports are still caught).
func pkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// methodCall reports whether call is a method call named name, returning
// the receiver expression.
func methodCall(call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	return sel.X, true
}

// recvTypeNamed reports whether the method call's receiver type (pointer
// stripped) is the named type pkgSuffix.typeName — e.g. ("os", "File")
// or ("internal/obs", "Registry"). pkgSuffix is matched as a path
// suffix so testdata fixtures and the real module both resolve.
func recvTypeNamed(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// sentinelVar reports whether e resolves to a package-level error
// variable whose name starts with "Err" — the shape every taxonomy
// sentinel in this codebase has.
func sentinelVar(info *types.Info, e ast.Expr) (string, bool) {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	default:
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return "", false
	}
	if !types.Implements(v.Type(), errorIface) {
		return "", false
	}
	return v.Name(), true
}

// errorIface is the built-in error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// exprText renders a (selector/ident) expression as dotted text for
// messages and lock identity: "l.mu", "s.store.mu". Non-path
// expressions render as "…".
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return exprText(x.X)
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	default:
		return "…"
	}
}

// enclosingFunc returns the innermost enclosing function declaration or
// literal from a walk stack, plus the FuncDecl name ("" inside a
// literal or at package level).
func enclosingFunc(stack []ast.Node) (ast.Node, string) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f, ""
		case *ast.FuncDecl:
			return f, f.Name.Name
		}
	}
	return nil, ""
}

// inLoop reports whether any ancestor between the innermost enclosing
// function and the node is a for/range statement.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
