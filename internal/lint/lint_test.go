package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load the packages under testdata/src (invisible to
// `go list`, so they never leak into the real lint run), run exactly one
// analyzer over them, and compare the post-suppression findings against
// `// want "substring"` annotations on the offending lines. Every
// testdata package carries positive cases, clean cases and a
// //lint:allow-suppressed case, so both halves of the contract — the
// rule fires, the written-justification escape hatch works — stay
// pinned.

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// loadTestdata loads one testdata package under its real module path,
// so module-local imports (the obs registry, the unusedexport target)
// resolve through the source importer.
func loadTestdata(t *testing.T, ld *Loader, rel string) *Unit {
	t.Helper()
	dir := filepath.Join("testdata", "src", rel)
	u, err := ld.LoadDir(dir, "vnfguard/internal/lint/testdata/src/"+rel)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return u
}

// checkGolden matches findings against the units' want annotations:
// every finding must land on a line with an unclaimed matching want,
// and every want must be claimed.
func checkGolden(t *testing.T, units []*Unit, as []*Analyzer, gs []*GlobalAnalyzer) {
	t.Helper()
	findings := RunAnalyzers(units, as, gs)

	type want struct {
		substr string
		used   bool
	}
	wants := map[string][]*want{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := u.Fset.Position(c.Pos())
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						wants[key] = append(wants[key], &want{substr: m[1]})
					}
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && strings.Contains(f.Rule+": "+f.Message, w.substr) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: expected a finding matching %q, got none", key, w.substr)
			}
		}
	}
}

func runGolden(t *testing.T, rel string, a *Analyzer) {
	t.Helper()
	ld := NewLoader()
	u := loadTestdata(t, ld, rel)
	checkGolden(t, []*Unit{u}, []*Analyzer{a}, nil)
}

func TestAtomicWriteGolden(t *testing.T)   { runGolden(t, "atomicwrite", AtomicWrite) }
func TestErrTaxonomyGolden(t *testing.T)   { runGolden(t, "errtaxonomy", ErrTaxonomy) }
func TestLockScopeGolden(t *testing.T)     { runGolden(t, "lockscope", LockScope) }
func TestObsHandleGolden(t *testing.T)     { runGolden(t, "obshandle", ObsHandle) }
func TestGoroutineTestGolden(t *testing.T) { runGolden(t, "goroutinetest", GoroutineTest) }

func TestUnusedExportGolden(t *testing.T) {
	old := unusedExportTargets
	unusedExportTargets = []string{"testdata/src/unusedexport/target"}
	defer func() { unusedExportTargets = old }()

	ld := NewLoader()
	target := loadTestdata(t, ld, "unusedexport/target")
	user := loadTestdata(t, ld, "unusedexport/user")
	checkGolden(t, []*Unit{target, user}, nil, []*GlobalAnalyzer{UnusedExport})
}

// TestAllowWithoutReason pins the reserved "lint" rule: a bare
// //lint:allow suppresses nothing and is itself reported.
func TestAllowWithoutReason(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\n//lint:allow atomicwrite\nvar x = 1\n"
	path := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	u, err := NewLoader().LoadFiles("p", []string{path})
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers([]*Unit{u}, nil, nil)
	if len(findings) != 1 || findings[0].Rule != "lint" {
		t.Fatalf("want exactly one finding under rule lint, got %v", findings)
	}
	if findings[0].Pos.Line != 3 {
		t.Fatalf("finding at line %d, want 3", findings[0].Pos.Line)
	}
}

// TestSuppressionCoversSameAndNextLine pins the allow window: the
// directive's own line (trailing comment) and the line below (standalone
// comment), nothing further.
func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "os"

func trailing(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600) //lint:allow atomicwrite trailing-comment form
}

func above(path string, b []byte) error {
	//lint:allow atomicwrite standalone-comment form
	return os.WriteFile(path, b, 0o600)
}

func tooFar(path string, b []byte) error {
	//lint:allow atomicwrite two lines up does not reach

	return os.WriteFile(path, b, 0o600)
}
`
	path := filepath.Join(dir, "allow.go")
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	u, err := NewLoader().LoadFiles("p", []string{path})
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers([]*Unit{u}, []*Analyzer{AtomicWrite}, nil)
	if len(findings) != 1 {
		t.Fatalf("want exactly the out-of-window finding, got %v", findings)
	}
	if findings[0].Rule != "atomicwrite" || findings[0].Pos.Line != 17 {
		t.Fatalf("unexpected finding %v", findings[0])
	}
}
