package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// goroutinetest enforces goroutine discipline in tests. Two bug shapes
// this repo has actually reviewed out of concurrent test code:
//
//  1. t.Fatal / t.Fatalf / t.FailNow (and Skip variants) inside a
//     goroutine: testing.T documents that FailNow must be called from
//     the test goroutine — from any other it exits that goroutine
//     without stopping the test, so the failure can be lost and
//     cleanup ordering breaks. Use t.Error/t.Errorf and return.
//  2. A sync.WaitGroup that is Add()ed but never Wait()ed in the same
//     function: the test can pass while its goroutines are still
//     running (or panicking) after the store they poke is closed —
//     the exact shape of the Flush/Close races PR 3 and PR 5 fixed and
//     stress-pinned.
//
// Only _test.go files are checked.

// GoroutineTest is the test-goroutine-discipline analyzer.
var GoroutineTest = &Analyzer{
	Name: "goroutinetest",
	Doc:  "no t.Fatal inside goroutines, and every WaitGroup Add has a Wait in the same test",
	Run:  runGoroutineTest,
}

// fatalMethods are the testing.T/B/F methods that must run on the test
// goroutine.
var fatalMethods = map[string]bool{
	"Fatal":   true,
	"Fatalf":  true,
	"FailNow": true,
	"Skip":    true,
	"Skipf":   true,
	"SkipNow": true,
}

func runGoroutineTest(p *Pass) {
	for _, file := range p.Files {
		if !p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFatalInGoroutine(p, fd)
			checkWaitGroupWaited(p, fd)
		}
	}
}

// checkFatalInGoroutine flags fatal testing calls lexically inside any
// function literal spawned by a go statement (including literals the
// goroutine's body nests).
func checkFatalInGoroutine(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !fatalMethods[sel.Sel.Name] {
				return true
			}
			if !isTestingRecv(p.Info, sel.X) {
				return true
			}
			p.Reportf(call.Pos(),
				"%s.%s inside a goroutine; FailNow only works from the test goroutine — use %s.Error and return (collect failures, then t.Fatal after Wait)",
				exprText(sel.X), sel.Sel.Name, exprText(sel.X))
			return true
		})
		return true
	})
}

// isTestingRecv reports whether e is a *testing.T, *testing.B or
// *testing.F value.
func isTestingRecv(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	s := tv.Type.String()
	return s == "*testing.T" || s == "*testing.B" || s == "*testing.F" ||
		strings.HasSuffix(s, "testing.T") || strings.HasSuffix(s, "testing.B")
}

// checkWaitGroupWaited flags WaitGroups with Add but no Wait in the
// same function (literals included — helpers often own the whole
// lifecycle).
func checkWaitGroupWaited(p *Pass, fd *ast.FuncDecl) {
	added := map[types.Object]ast.Node{}
	waited := map[types.Object]bool{}
	record := func(call *ast.CallExpr, method string) (types.Object, bool) {
		recv, ok := methodCall(call, method)
		if !ok {
			return nil, false
		}
		id, ok := recv.(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := p.Info.Uses[id]
		if obj == nil || obj.Type() == nil {
			return nil, false
		}
		if t := strings.TrimPrefix(obj.Type().String(), "*"); t != "sync.WaitGroup" {
			return nil, false
		}
		return obj, true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, ok := record(call, "Add"); ok {
			if _, seen := added[obj]; !seen {
				added[obj] = call
			}
		}
		if obj, ok := record(call, "Wait"); ok {
			waited[obj] = true
		}
		return true
	})
	for obj, site := range added {
		if !waited[obj] {
			p.Reportf(site.Pos(),
				"sync.WaitGroup %s is Add()ed but never Wait()ed in this function; the test can finish (and tear state down) while its goroutines still run",
				obj.Name())
		}
	}
}
