// Package lint is vnfguard's project-invariant analyzer suite: a
// stdlib-only static-analysis framework (go/ast + go/parser + go/types,
// with go/importer's source importer so go.mod stays dependency-free)
// plus the analyzers that machine-check the invariants this codebase's
// guarantees rest on — the tmp+fsync+rename+dir-sync write discipline,
// the ErrStateCorrupt/Tampered/Rollback error taxonomy, the "no proof
// path takes the commit lock" rule, pre-resolved telemetry handles, and
// goroutine discipline in tests. Each analyzer is derived from a bug
// class a past PR actually fixed; the suite turns those reviewer-memory
// invariants into a build-time check (cmd/vnfguard-lint).
//
// Findings are reported as `file:line: rule: message`. A finding is
// suppressed by a `//lint:allow <rule> <reason>` comment on the same
// line or the line directly above; the reason is mandatory — an allow
// without one is itself a finding, so every suppression in the tree
// carries a written justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical file:line: rule: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Unit is one loaded, type-checked package: the syntax of its compiled
// files (in-package test files included) plus the type information the
// analyzers consult.
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Pass is one analyzer's view of one Unit.
type Pass struct {
	*Unit
	rule   string
	report func(Finding)
}

// Reportf records a finding at pos under the running analyzer's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{Pos: p.Fset.Position(pos), Rule: p.rule, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file holding pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzer checks one package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// GlobalAnalyzer checks the whole loaded tree at once (cross-package
// rules like unusedexport need every package's use sites).
type GlobalAnalyzer struct {
	Name string
	Doc  string
	Run  func(units []*Unit, report func(Finding))
}

// Analyzers is the per-package suite, in reporting order.
var Analyzers = []*Analyzer{
	AtomicWrite,
	ErrTaxonomy,
	LockScope,
	ObsHandle,
	GoroutineTest,
}

// GlobalAnalyzers is the whole-tree suite.
var GlobalAnalyzers = []*GlobalAnalyzer{
	UnusedExport,
}

// allowDirective is the suppression comment prefix.
const allowDirective = "//lint:allow"

// allowSet maps rule → file:line positions where findings are allowed.
type allowSet map[string]map[string]bool

func allowKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// collectAllows scans every comment in the units for //lint:allow
// directives. A well-formed directive suppresses its rule on the
// comment's own line and the line below (so it works both as a trailing
// comment and on its own line above the finding). A directive without a
// written reason is returned as a finding under the reserved rule
// "lint" — suppressions must justify themselves.
func collectAllows(units []*Unit) (allowSet, []Finding) {
	allows := allowSet{}
	var bad []Finding
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, allowDirective)
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					pos := u.Fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Finding{Pos: pos, Rule: "lint",
							Message: "//lint:allow needs a rule name and a written reason: //lint:allow <rule> <reason>"})
						continue
					}
					rule := fields[0]
					if allows[rule] == nil {
						allows[rule] = map[string]bool{}
					}
					allows[rule][allowKey(pos)] = true
					next := pos
					next.Line++
					allows[rule][allowKey(next)] = true
				}
			}
		}
	}
	return allows, bad
}

// suppressed reports whether an allow directive covers the finding.
func (a allowSet) suppressed(f Finding) bool {
	return a[f.Rule][allowKey(f.Pos)]
}

// RunAnalyzers runs the given suites over the loaded units, applies
// //lint:allow suppression, and returns the surviving findings sorted
// by position.
func RunAnalyzers(units []*Unit, analyzers []*Analyzer, globals []*GlobalAnalyzer) []Finding {
	var all []Finding
	collect := func(f Finding) { all = append(all, f) }
	for _, u := range units {
		for _, a := range analyzers {
			a.Run(&Pass{Unit: u, rule: a.Name, report: collect})
		}
	}
	for _, g := range globals {
		rule := g.Name
		g.Run(units, func(f Finding) {
			f.Rule = rule
			collect(f)
		})
	}
	allows, bad := collectAllows(units)
	kept := bad
	for _, f := range all {
		if !allows.suppressed(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos.Filename != kept[j].Pos.Filename {
			return kept[i].Pos.Filename < kept[j].Pos.Filename
		}
		if kept[i].Pos.Line != kept[j].Pos.Line {
			return kept[i].Pos.Line < kept[j].Pos.Line
		}
		return kept[i].Rule < kept[j].Rule
	})
	return kept
}
