// Package statedir implements the file-based rendezvous the multi-process
// binaries (cmd/ias-server, cmd/controller, cmd/container-host,
// cmd/verification-manager) use to exchange public material and service
// URLs: each process writes what it owns and polls for what it needs.
package statedir

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Dir is a state directory handle.
type Dir struct{ path string }

// Open creates (if needed) and returns a state directory.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("statedir: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the absolute location of a named entry.
func (d *Dir) Path(name string) string { return filepath.Join(d.path, name) }

// Write atomically writes an entry: readers see either the old contents
// or the new, never a partial file, and a failed replacement leaves no
// stray temp file behind. The temp file is fsynced before the rename and
// the directory after it, so the replacement survives a crash — entries
// hold key material and trust-anchor heads, where a lost-after-rename
// file reads as a rollback.
func (d *Dir) Write(name string, data []byte) error {
	tmp := d.Path(name + ".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("statedir: writing %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("statedir: writing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("statedir: syncing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedir: closing %s: %w", name, err)
	}
	if err := os.Rename(tmp, d.Path(name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedir: replacing %s: %w", name, err)
	}
	return d.syncDir()
}

// syncDir flushes the directory so a just-renamed entry's name survives
// a crash.
func (d *Dir) syncDir() error {
	dir, err := os.Open(d.path)
	if err != nil {
		return fmt.Errorf("statedir: syncing dir: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("statedir: syncing dir: %w", err)
	}
	return nil
}

// Read returns an entry's contents.
func (d *Dir) Read(name string) ([]byte, error) {
	return os.ReadFile(d.Path(name))
}

// ReadString returns a trimmed entry.
func (d *Dir) ReadString(name string) (string, error) {
	b, err := d.Read(name)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// WaitFor polls until an entry exists (other process publishing it) or
// the timeout elapses.
func (d *Dir) WaitFor(name string, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		b, err := d.Read(name)
		if err == nil {
			return b, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("statedir: timed out waiting for %s", name)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Exists reports whether an entry is present.
func (d *Dir) Exists(name string) bool {
	_, err := os.Stat(d.Path(name))
	return err == nil
}

// Match returns the names of entries matching pattern (filepath.Match
// syntax), sorted — the discovery half of the rendezvous: processes that
// publish under a shared prefix (witness gossip URLs, host records) are
// found without any registry.
func (d *Dir) Match(pattern string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(d.path, pattern))
	if err != nil {
		return nil, fmt.Errorf("statedir: %w", err)
	}
	names := make([]string, 0, len(paths))
	for _, p := range paths {
		names = append(names, filepath.Base(p))
	}
	return names, nil
}

// ---- key material helpers -------------------------------------------------

// GenerateKeyPEM creates a fresh P-256 key and returns it as PKCS#8 PEM.
func GenerateKeyPEM() ([]byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	return MarshalKeyPEM(key)
}

// MarshalKeyPEM encodes a private key as PKCS#8 PEM.
func MarshalKeyPEM(key *ecdsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(key)
	if err != nil {
		return nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// ParseKeyPEM decodes a PKCS#8 PEM private key.
func ParseKeyPEM(data []byte) (*ecdsa.PrivateKey, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "PRIVATE KEY" {
		return nil, errors.New("statedir: no private key block")
	}
	keyAny, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	key, ok := keyAny.(*ecdsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("statedir: key type %T unsupported", keyAny)
	}
	return key, nil
}

// MarshalPubPEM encodes a public key as PKIX PEM.
func MarshalPubPEM(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der}), nil
}

// ParsePubPEM decodes a PKIX PEM public key.
func ParsePubPEM(data []byte) (*ecdsa.PublicKey, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "PUBLIC KEY" {
		return nil, errors.New("statedir: no public key block")
	}
	pubAny, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	pub, ok := pubAny.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("statedir: public key type %T unsupported", pubAny)
	}
	return pub, nil
}

// Well-known entry names shared by the binaries.
const (
	FileIssuer         = "epid-issuer.json"
	FileIASURL         = "ias-url"
	FileIASCert        = "ias-signing-cert.pem"
	FileVMKey          = "vm-key.pem"
	FileVMPub          = "vm-pub.pem"
	FileVendorKey      = "vendor-key.pem"
	FileCACert         = "ca-cert.pem"
	FileCAKey          = "ca-key.pem"
	FileControllerCert = "controller-cert.pem"
	FileControllerKey  = "controller-key.pem"
	FileControllerURL  = "controller-url"
	FileLogURL         = "translog-url"
)

// Well-known subdirectories: the durable transparency-log stores (WAL
// segments + persisted tree head) of the Verification Manager and the
// standalone log server. They are separate stores — two processes must
// never share one WAL — chained to the same CA key.
const (
	DirVMLog     = "translog-vm"
	DirServerLog = "translog-server"
)

// HostInfoFile returns the entry name a host agent publishes.
func HostInfoFile(name string) string { return "host-" + name + ".json" }

// WitnessURLFile returns the entry name under which a gossiping witness
// (log-server -monitor) publishes its gossip endpoint URL; peers and the
// Verification Manager discover the witness set via
// Match(WitnessURLPattern).
func WitnessURLFile(name string) string { return "witness-" + name + ".url" }

// WitnessURLPattern matches every published witness gossip URL entry.
const WitnessURLPattern = "witness-*.url"
