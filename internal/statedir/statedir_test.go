package statedir

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write("x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	s, err := d.ReadString("x")
	if err != nil || s != "hello" {
		t.Fatalf("ReadString = %q, %v", s, err)
	}
	if !d.Exists("x") || d.Exists("y") {
		t.Fatal("Exists mismatch")
	}
}

func TestWaitForTimesOut(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := d.WaitFor("never", 200*time.Millisecond); err == nil {
		t.Fatal("WaitFor succeeded on missing entry")
	}
	if time.Since(start) < 200*time.Millisecond {
		t.Fatal("WaitFor returned before timeout")
	}
}

func TestWaitForSeesLateWrite(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		d.Write("late", []byte("arrived"))
	}()
	got, err := d.WaitFor("late", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "arrived" {
		t.Fatalf("got %q", got)
	}
}

func TestKeyPEMRoundTrip(t *testing.T) {
	pemBytes, err := GenerateKeyPEM()
	if err != nil {
		t.Fatal(err)
	}
	key, err := ParseKeyPEM(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	pubPEM, err := MarshalPubPEM(&key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ParsePubPEM(pubPEM)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(&key.PublicKey) {
		t.Fatal("public key round trip mismatch")
	}
}

func TestParseKeyPEMErrors(t *testing.T) {
	if _, err := ParseKeyPEM([]byte("garbage")); err == nil {
		t.Fatal("garbage key accepted")
	}
	if _, err := ParsePubPEM([]byte("garbage")); err == nil {
		t.Fatal("garbage pub accepted")
	}
}

// TestMatch covers the discovery half of the rendezvous: patterns find
// exactly the matching entries, sorted, and a bad pattern errors
// instead of silently matching nothing.
func TestMatch(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		WitnessURLFile("w1"), WitnessURLFile("w0"), WitnessURLFile("w2"),
		"witness-w0-head.json", // head files must not match the URL pattern
		HostInfoFile("host-a"),
		"unrelated.txt",
	} {
		if err := d.Write(name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.Match(WitnessURLPattern)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"witness-w0.url", "witness-w1.url", "witness-w2.url"}
	if len(got) != len(want) {
		t.Fatalf("Match(%q) = %v, want %v", WitnessURLPattern, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Match(%q)[%d] = %q, want %q (sorted)", WitnessURLPattern, i, got[i], want[i])
		}
	}
	if none, err := d.Match("host-zzz-*.json"); err != nil || len(none) != 0 {
		t.Fatalf("non-matching pattern: got %v, %v", none, err)
	}
	if _, err := d.Match("["); err == nil {
		t.Fatal("malformed pattern accepted")
	}
}

// TestWellKnownEntryNames pins the naming helpers the rendezvous relies
// on: a witness URL file round-trips through the discovery pattern and
// never collides with the witness's persisted-head entry.
func TestWellKnownEntryNames(t *testing.T) {
	if got := WitnessURLFile("w7"); got != "witness-w7.url" {
		t.Fatalf("WitnessURLFile = %q", got)
	}
	if got := HostInfoFile("host-b"); got != "host-host-b.json" {
		t.Fatalf("HostInfoFile = %q", got)
	}
	ok, err := filepath.Match(WitnessURLPattern, WitnessURLFile("any"))
	if err != nil || !ok {
		t.Fatalf("WitnessURLFile does not match WitnessURLPattern: %v %v", ok, err)
	}
	ok, err = filepath.Match(WitnessURLPattern, "witness-any-head.json")
	if err != nil || ok {
		t.Fatal("witness head file matches the URL pattern — discovery would gossip with a head file")
	}
}

// TestWriteFailureLeavesNoTempFile forces the rename step to fail (the
// target is an existing directory) and checks the temp file is cleaned
// up: the WAL shares this directory, so stray .tmp litter must never
// accumulate across failed writes.
func TestWriteFailureLeavesNoTempFile(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(d.Path("taken"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("taken", []byte("clobber")); err == nil {
		t.Fatal("Write over a directory succeeded")
	}
	if _, err := os.Stat(d.Path("taken.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after failed Write: %v", err)
	}
}
