// Package controller implements the network controller of the paper's
// deployment: a Floodlight-like SDN controller exposing a north-bound REST
// API with Floodlight's three security modes — non-secure HTTP, HTTPS, and
// trusted HTTPS with client authentication. In trusted mode the controller
// validates client certificates against a trusted certificate authority
// (the Verification Manager's CA) instead of a per-certificate keystore,
// exactly the key-management fix §3 of the paper describes; keystore mode
// is retained as an ablation (experiment E4).
package controller

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"vnfguard/internal/netsim"
)

// Controller is the SDN controller core: the forwarding-plane handle plus
// the static-flow-pusher store and device/usage accounting.
type Controller struct {
	name    string
	network *netsim.Network
	started time.Time

	mu sync.Mutex
	// flows maps entry name → the pushed spec (Floodlight's static flow
	// pusher is name-keyed across the deployment).
	flows map[string]FlowSpec
	// packetIns counts southbound punts.
	packetIns uint64
	// requests counts REST calls served.
	requests uint64
}

// New creates a controller managing the given forwarding plane.
func New(name string, network *netsim.Network) *Controller {
	c := &Controller{
		name:    name,
		network: network,
		started: time.Now(),
		flows:   make(map[string]FlowSpec),
	}
	network.SetPacketInHandler(func(dpid string, inPort int, pkt netsim.Packet) {
		c.mu.Lock()
		c.packetIns++
		c.mu.Unlock()
	})
	return c
}

// Name returns the controller's name.
func (c *Controller) Name() string { return c.name }

// Network returns the managed forwarding plane.
func (c *Controller) Network() *netsim.Network { return c.network }

// PacketIns reports punted packets.
func (c *Controller) PacketIns() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.packetIns
}

// Requests reports REST calls served.
func (c *Controller) Requests() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests
}

func (c *Controller) countRequest() {
	c.mu.Lock()
	c.requests++
	c.mu.Unlock()
}

// FlowSpec is the static-flow-pusher JSON entry, following Floodlight's
// string-typed field conventions.
type FlowSpec struct {
	Name     string `json:"name"`
	Switch   string `json:"switch"`
	Priority string `json:"priority,omitempty"`
	InPort   string `json:"in_port,omitempty"`
	EthSrc   string `json:"eth_src,omitempty"`
	EthDst   string `json:"eth_dst,omitempty"`
	IPv4Src  string `json:"ipv4_src,omitempty"`
	IPv4Dst  string `json:"ipv4_dst,omitempty"`
	IPProto  string `json:"ip_proto,omitempty"`
	TCPSrc   string `json:"tcp_src,omitempty"`
	TCPDst   string `json:"tcp_dst,omitempty"`
	Actions  string `json:"actions"` // "output=2", "drop", "controller", comma-separated
	// PushedBy records the authenticated principal (client certificate
	// CN) in trusted mode; audit trail for enrollment experiments.
	PushedBy string `json:"pushed_by,omitempty"`
}

// compile translates the spec into a netsim flow entry.
func (s *FlowSpec) compile() (netsim.FlowEntry, error) {
	e := netsim.FlowEntry{Name: s.Name, Priority: 32768}
	if s.Name == "" {
		return e, fmt.Errorf("controller: flow entry requires a name")
	}
	if s.Switch == "" {
		return e, fmt.Errorf("controller: flow entry requires a switch")
	}
	if s.Priority != "" {
		p, err := strconv.Atoi(s.Priority)
		if err != nil {
			return e, fmt.Errorf("controller: priority %q: %w", s.Priority, err)
		}
		e.Priority = p
	}
	var m netsim.Match
	if s.InPort != "" {
		p, err := strconv.Atoi(s.InPort)
		if err != nil {
			return e, fmt.Errorf("controller: in_port %q: %w", s.InPort, err)
		}
		m.InPort = p
	}
	m.EthSrc, m.EthDst = s.EthSrc, s.EthDst
	if s.IPv4Src != "" {
		p, err := parsePrefix(s.IPv4Src)
		if err != nil {
			return e, err
		}
		m.IPSrc = p
	}
	if s.IPv4Dst != "" {
		p, err := parsePrefix(s.IPv4Dst)
		if err != nil {
			return e, err
		}
		m.IPDst = p
	}
	switch strings.ToLower(s.IPProto) {
	case "":
	case "tcp", "0x06", "6":
		m.Proto = netsim.ProtoTCP
	case "udp", "0x11", "17":
		m.Proto = netsim.ProtoUDP
	default:
		return e, fmt.Errorf("controller: ip_proto %q unsupported", s.IPProto)
	}
	if s.TCPSrc != "" {
		p, err := strconv.ParseUint(s.TCPSrc, 10, 16)
		if err != nil {
			return e, fmt.Errorf("controller: tcp_src %q: %w", s.TCPSrc, err)
		}
		m.SrcPort = uint16(p)
	}
	if s.TCPDst != "" {
		p, err := strconv.ParseUint(s.TCPDst, 10, 16)
		if err != nil {
			return e, fmt.Errorf("controller: tcp_dst %q: %w", s.TCPDst, err)
		}
		m.DstPort = uint16(p)
	}
	e.Match = m

	if s.Actions == "" {
		return e, fmt.Errorf("controller: flow entry requires actions")
	}
	for _, raw := range strings.Split(s.Actions, ",") {
		raw = strings.TrimSpace(raw)
		switch {
		case raw == "drop":
			e.Actions = append(e.Actions, netsim.Action{Type: netsim.ActionDrop})
		case raw == "controller":
			e.Actions = append(e.Actions, netsim.Action{Type: netsim.ActionController})
		case strings.HasPrefix(raw, "output="):
			p, err := strconv.Atoi(strings.TrimPrefix(raw, "output="))
			if err != nil {
				return e, fmt.Errorf("controller: action %q: %w", raw, err)
			}
			e.Actions = append(e.Actions, netsim.Action{Type: netsim.ActionOutput, Port: p})
		default:
			return e, fmt.Errorf("controller: action %q unsupported", raw)
		}
	}
	return e, nil
}

func parsePrefix(s string) (netip.Prefix, error) {
	if !strings.Contains(s, "/") {
		s += "/32"
	}
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("controller: address %q: %w", s, err)
	}
	return p, nil
}

// PushFlow validates and installs a static flow entry.
func (c *Controller) PushFlow(spec FlowSpec) error {
	entry, err := spec.compile()
	if err != nil {
		return err
	}
	if err := c.network.InstallFlow(spec.Switch, entry); err != nil {
		return err
	}
	c.mu.Lock()
	c.flows[spec.Name] = spec
	c.mu.Unlock()
	return nil
}

// DeleteFlow removes a static flow entry by name.
func (c *Controller) DeleteFlow(name string) error {
	c.mu.Lock()
	spec, ok := c.flows[name]
	if ok {
		delete(c.flows, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("controller: no static flow %q", name)
	}
	return c.network.RemoveFlow(spec.Switch, name)
}

// FlowsOn lists static flow entries for one switch.
func (c *Controller) FlowsOn(dpid string) []FlowSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []FlowSpec
	for _, spec := range c.flows {
		if spec.Switch == dpid {
			out = append(out, spec)
		}
	}
	return out
}

// Summary mirrors Floodlight's controller summary resource.
type Summary struct {
	Switches         int `json:"# Switches"`
	Hosts            int `json:"# hosts"`
	InterSwitchLinks int `json:"# inter-switch links"`
	StaticFlows      int `json:"# static flows"`
}

// Summary reports deployment counts.
func (c *Controller) Summary() Summary {
	c.mu.Lock()
	flows := len(c.flows)
	c.mu.Unlock()
	return Summary{
		Switches:         len(c.network.Switches()),
		Hosts:            len(c.network.Hosts()),
		InterSwitchLinks: len(c.network.Links()),
		StaticFlows:      flows,
	}
}

// Uptime reports time since construction.
func (c *Controller) Uptime() time.Duration { return time.Since(c.started) }
