package controller

import (
	"context"
	"crypto/x509"
	"encoding/json"
	"io"
	"net/http"
)

// Floodlight-style REST paths.
const (
	PathSummary    = "/wm/core/controller/summary/json"
	PathHealth     = "/wm/core/health/json"
	PathLinks      = "/wm/topology/links/json"
	PathDevices    = "/wm/device/"
	PathStaticFlow = "/wm/staticflowpusher/json"
	PathFlowList   = "/wm/staticflowpusher/list/"
)

// principalKey carries the authenticated client identity through request
// contexts in trusted-HTTPS mode.
type principalKey struct{}

// Principal returns the authenticated client CN, or "" for unauthenticated
// modes.
func Principal(r *http.Request) string {
	if v, ok := r.Context().Value(principalKey{}).(string); ok {
		return v
	}
	return ""
}

// withPrincipal attaches the client certificate CN when present.
func withPrincipal(r *http.Request) *http.Request {
	if r.TLS != nil && len(r.TLS.PeerCertificates) > 0 {
		cn := r.TLS.PeerCertificates[0].Subject.CommonName
		return r.WithContext(context.WithValue(r.Context(), principalKey{}, cn))
	}
	return r
}

// Handler returns the controller's north-bound REST interface.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathSummary, c.handleSummary)
	mux.HandleFunc("GET "+PathHealth, c.handleHealth)
	mux.HandleFunc("GET "+PathLinks, c.handleLinks)
	mux.HandleFunc("GET "+PathDevices, c.handleDevices)
	mux.HandleFunc("POST "+PathStaticFlow, c.handlePushFlow)
	mux.HandleFunc("DELETE "+PathStaticFlow, c.handleDeleteFlow)
	mux.HandleFunc("GET "+PathFlowList+"{dpid}/json", c.handleFlowList)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.countRequest()
		mux.ServeHTTP(w, withPrincipal(r))
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Controller) handleSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Summary())
}

func (c *Controller) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]bool{"healthy": true})
}

func (c *Controller) handleLinks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.network.Links())
}

func (c *Controller) handleDevices(w http.ResponseWriter, r *http.Request) {
	type device struct {
		Host string `json:"host"`
	}
	hosts := c.network.Hosts()
	out := make([]device, len(hosts))
	for i, h := range hosts {
		out[i] = device{Host: h}
	}
	writeJSON(w, out)
}

func (c *Controller) handlePushFlow(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	var spec FlowSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		http.Error(w, "malformed flow entry", http.StatusBadRequest)
		return
	}
	spec.PushedBy = Principal(r)
	if err := c.PushFlow(spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]string{"status": "Entry pushed"})
}

func (c *Controller) handleDeleteFlow(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		http.Error(w, "malformed delete request", http.StatusBadRequest)
		return
	}
	if err := c.DeleteFlow(req.Name); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]string{"status": "Entry " + req.Name + " deleted"})
}

func (c *Controller) handleFlowList(w http.ResponseWriter, r *http.Request) {
	dpid := r.PathValue("dpid")
	flows := c.FlowsOn(dpid)
	out := make(map[string]FlowSpec, len(flows))
	for _, f := range flows {
		out[f.Name] = f
	}
	writeJSON(w, map[string]map[string]FlowSpec{dpid: out})
}

// VerifyClientChain builds the trusted-HTTPS VerifyPeerCertificate hook:
// chain validation against the trusted CA pool plus optional per-leaf
// checks — revocation (CRL distributed by the Verification Manager) and
// transparency-log inclusion (the leaf must carry provable issuance
// evidence in the VM's audit log). Nil checks are skipped.
func VerifyClientChain(roots *x509.CertPool, checks ...func(*x509.Certificate) error) func(rawCerts [][]byte, verifiedChains [][]*x509.Certificate) error {
	return func(rawCerts [][]byte, verifiedChains [][]*x509.Certificate) error {
		if len(verifiedChains) == 0 || len(verifiedChains[0]) == 0 {
			return x509.CertificateInvalidError{Reason: x509.NotAuthorizedToSign}
		}
		leaf := verifiedChains[0][0]
		for _, check := range checks {
			if check == nil {
				continue
			}
			if err := check(leaf); err != nil {
				return err
			}
		}
		return nil
	}
}
