package controller

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"strings"
	"testing"
	"time"

	"vnfguard/internal/netsim"
	"vnfguard/internal/pki"
)

// testNet builds h1 -- s1 -- h2 (h1 on port 1, h2 on port 2).
func testNet(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.NewNetwork()
	if _, err := n.AddSwitch("00:00:01"); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost("h1", "00:00:01", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost("h2", "00:00:01", 2); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFlowSpecCompile(t *testing.T) {
	spec := FlowSpec{
		Name: "f1", Switch: "00:00:01", Priority: "100",
		InPort: "1", IPv4Dst: "10.0.0.2", IPProto: "tcp", TCPDst: "80",
		Actions: "output=2",
	}
	e, err := spec.compile()
	if err != nil {
		t.Fatal(err)
	}
	if e.Priority != 100 || e.Match.InPort != 1 || e.Match.DstPort != 80 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Match.IPDst.String() != "10.0.0.2/32" {
		t.Fatalf("ipdst = %v", e.Match.IPDst)
	}
	if len(e.Actions) != 1 || e.Actions[0].Type != netsim.ActionOutput || e.Actions[0].Port != 2 {
		t.Fatalf("actions = %v", e.Actions)
	}
}

func TestFlowSpecCompileErrors(t *testing.T) {
	cases := []FlowSpec{
		{Switch: "s", Actions: "drop"},                                  // no name
		{Name: "f", Actions: "drop"},                                    // no switch
		{Name: "f", Switch: "s"},                                        // no actions
		{Name: "f", Switch: "s", Actions: "teleport"},                   // bad action
		{Name: "f", Switch: "s", Actions: "output=x"},                   // bad port
		{Name: "f", Switch: "s", Actions: "drop", Priority: "high"},     // bad priority
		{Name: "f", Switch: "s", Actions: "drop", IPv4Src: "not-an-ip"}, // bad ip
		{Name: "f", Switch: "s", Actions: "drop", IPProto: "icmpv9"},    // bad proto
		{Name: "f", Switch: "s", Actions: "drop", TCPDst: "99999"},      // bad port range
		{Name: "f", Switch: "s", Actions: "drop", InPort: "one"},        // bad in_port
	}
	for i, spec := range cases {
		if _, err := spec.compile(); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
}

func TestPushAndDeleteFlow(t *testing.T) {
	n := testNet(t)
	c := New("ctrl", n)
	spec := FlowSpec{Name: "fwd", Switch: "00:00:01", Priority: "10", Actions: "output=2"}
	if err := c.PushFlow(spec); err != nil {
		t.Fatal(err)
	}
	d, err := n.Inject("00:00:01", 1, netsim.Packet{Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delivered || d.Host != "h2" {
		t.Fatalf("delivery = %+v", d)
	}
	if err := c.DeleteFlow("fwd"); err != nil {
		t.Fatal(err)
	}
	d, err = n.Inject("00:00:01", 1, netsim.Packet{Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if d.Delivered {
		t.Fatal("flow survived deletion")
	}
	if err := c.DeleteFlow("fwd"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestPushFlowUnknownSwitch(t *testing.T) {
	c := New("ctrl", testNet(t))
	err := c.PushFlow(FlowSpec{Name: "f", Switch: "ghost", Actions: "drop"})
	if err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestSummaryCounts(t *testing.T) {
	n := testNet(t)
	c := New("ctrl", n)
	c.PushFlow(FlowSpec{Name: "f", Switch: "00:00:01", Actions: "drop"})
	s := c.Summary()
	if s.Switches != 1 || s.Hosts != 2 || s.StaticFlows != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

// startServer spins a controller endpoint in the given mode, returning a
// ready client factory.
func startServer(t *testing.T, mode SecurityMode, trust TrustModel) (*Controller, *Server, *pki.CA) {
	t.Helper()
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	serverKey, err := pki.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.IssueServerCert("controller", []string{"controller"}, []net.IP{net.IPv4(127, 0, 0, 1)}, &serverKey.PublicKey, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := New("ctrl", testNet(t))
	cfg := ServerConfig{
		Mode:  mode,
		Cert:  tls.Certificate{Certificate: [][]byte{serverCert.Raw}, PrivateKey: serverKey},
		Trust: trust,
		Revoked: func(cert *x509.Certificate) error {
			if ca.IsRevoked(cert.SerialNumber) {
				return pki.ErrRevoked
			}
			return nil
		},
	}
	if trust == TrustCA {
		cfg.ClientCAs = ca.Pool()
	}
	srv, err := Serve(ctrl, cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return ctrl, srv, ca
}

// clientCert issues a client certificate + tls.Certificate for tests.
func clientCert(t *testing.T, ca *pki.CA, cn string) (tls.Certificate, *x509.Certificate) {
	t.Helper()
	key, err := pki.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	csr, err := pki.CreateCSR(cn, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.SignClientCSR(csr, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{cert.Raw}, PrivateKey: key}, cert
}

func TestHTTPMode(t *testing.T) {
	ctrl, srv, _ := startServer(t, ModeHTTP, TrustCA)
	client := NewClient(srv.URL(), nil)
	healthy, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !healthy {
		t.Fatal("unhealthy")
	}
	if err := client.PushFlow(FlowSpec{Name: "f", Switch: "00:00:01", Actions: "output=2"}); err != nil {
		t.Fatal(err)
	}
	if ctrl.Requests() < 2 {
		t.Fatalf("requests = %d", ctrl.Requests())
	}
}

func TestHTTPSModeRequiresServerTrust(t *testing.T) {
	_, srv, ca := startServer(t, ModeHTTPS, TrustCA)
	// Without the CA the handshake fails.
	bad := NewClient(srv.URL(), &tls.Config{ServerName: "controller"})
	if _, err := bad.Health(); err == nil {
		t.Fatal("untrusted server accepted")
	}
	good := NewClient(srv.URL(), &tls.Config{RootCAs: ca.Pool(), ServerName: "controller"})
	if _, err := good.Health(); err != nil {
		t.Fatal(err)
	}
}

func TestTrustedHTTPSRejectsNoCert(t *testing.T) {
	_, srv, ca := startServer(t, ModeTrustedHTTPS, TrustCA)
	client := NewClient(srv.URL(), &tls.Config{RootCAs: ca.Pool(), ServerName: "controller"})
	if _, err := client.Health(); err == nil {
		t.Fatal("certificate-less client accepted in trusted mode")
	}
}

func TestTrustedHTTPSAcceptsCAClient(t *testing.T) {
	ctrl, srv, ca := startServer(t, ModeTrustedHTTPS, TrustCA)
	cert, _ := clientCert(t, ca, "vnf-1")
	client := NewClient(srv.URL(), &tls.Config{
		RootCAs: ca.Pool(), ServerName: "controller", Certificates: []tls.Certificate{cert},
	})
	if err := client.PushFlow(FlowSpec{Name: "f", Switch: "00:00:01", Actions: "output=2"}); err != nil {
		t.Fatal(err)
	}
	// The flow records its authenticated pusher.
	flows := ctrl.FlowsOn("00:00:01")
	if len(flows) != 1 || flows[0].PushedBy != "vnf-1" {
		t.Fatalf("flows = %+v", flows)
	}
}

func TestTrustedHTTPSRejectsForeignCA(t *testing.T) {
	_, srv, _ := startServer(t, ModeTrustedHTTPS, TrustCA)
	otherCA, err := pki.NewCA("rogue", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cert, _ := clientCert(t, otherCA, "impostor")
	// Client trusts the right server but presents a foreign-CA cert.
	client := NewClient(srv.URL(), &tls.Config{
		InsecureSkipVerify: true, // isolate client-auth failure
		Certificates:       []tls.Certificate{cert},
	})
	if _, err := client.Health(); err == nil {
		t.Fatal("foreign-CA client accepted")
	}
}

func TestTrustedHTTPSRevocation(t *testing.T) {
	_, srv, ca := startServer(t, ModeTrustedHTTPS, TrustCA)
	cert, parsed := clientCert(t, ca, "vnf-1")
	mk := func() *Client {
		return NewClient(srv.URL(), &tls.Config{
			RootCAs: ca.Pool(), ServerName: "controller", Certificates: []tls.Certificate{cert},
		})
	}
	if _, err := mk().Health(); err != nil {
		t.Fatal(err)
	}
	ca.Revoke(parsed.SerialNumber)
	if _, err := mk().Health(); err == nil {
		t.Fatal("revoked client accepted")
	}
}

func TestKeystoreMode(t *testing.T) {
	_, srv, ca := startServer(t, ModeTrustedHTTPS, TrustKeystore)
	cert, parsed := clientCert(t, ca, "vnf-1")
	cfg := &tls.Config{RootCAs: ca.Pool(), ServerName: "controller", Certificates: []tls.Certificate{cert}}
	// Not pinned yet → rejected even though the CA signed it.
	if _, err := NewClient(srv.URL(), cfg).Health(); err == nil {
		t.Fatal("unpinned client accepted in keystore mode")
	}
	srv.PinCertificate(parsed)
	if _, err := NewClient(srv.URL(), cfg).Health(); err != nil {
		t.Fatalf("pinned client rejected: %v", err)
	}
}

func TestRESTFlowLifecycleOverHTTP(t *testing.T) {
	_, srv, _ := startServer(t, ModeHTTP, TrustCA)
	client := NewClient(srv.URL(), nil)
	spec := FlowSpec{Name: "fw-allow-web", Switch: "00:00:01", Priority: "50",
		IPProto: "tcp", TCPDst: "443", Actions: "output=2"}
	if err := client.PushFlow(spec); err != nil {
		t.Fatal(err)
	}
	flows, err := client.ListFlows("00:00:01")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := flows["fw-allow-web"]; !ok {
		t.Fatalf("flows = %v", flows)
	}
	links, err := client.Links()
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 0 {
		t.Fatalf("links = %v", links)
	}
	sum, err := client.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.StaticFlows != 1 || sum.Hosts != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if err := client.DeleteFlow("fw-allow-web"); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteFlow("fw-allow-web"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("second delete: %v", err)
	}
}

func TestRESTRejectsMalformedFlow(t *testing.T) {
	_, srv, _ := startServer(t, ModeHTTP, TrustCA)
	client := NewClient(srv.URL(), nil)
	err := client.PushFlow(FlowSpec{Name: "bad", Switch: "00:00:01", Actions: "fly"})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("malformed flow: %v", err)
	}
}
