package controller

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vnfguard/internal/netsim"
)

func TestDevicesEndpoint(t *testing.T) {
	c := New("ctrl", testNet(t))
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + PathDevices)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var devices []struct {
		Host string `json:"host"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&devices); err != nil {
		t.Fatal(err)
	}
	if len(devices) != 2 || devices[0].Host != "h1" {
		t.Fatalf("devices = %v", devices)
	}
}

func TestPrincipalEmptyWithoutTLS(t *testing.T) {
	c := New("ctrl", testNet(t))
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	body := strings.NewReader(`{"name":"f","switch":"00:00:01","actions":"output=2"}`)
	resp, err := http.Post(srv.URL+PathStaticFlow, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	flows := c.FlowsOn("00:00:01")
	if len(flows) != 1 || flows[0].PushedBy != "" {
		t.Fatalf("flows = %+v", flows)
	}
}

func TestFlowListUnknownSwitchEmpty(t *testing.T) {
	c := New("ctrl", testNet(t))
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + PathFlowList + "ghost/json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]map[string]FlowSpec
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["ghost"]) != 0 {
		t.Fatalf("out = %v", out)
	}
}

func TestDeleteFlowMalformedBody(t *testing.T) {
	c := New("ctrl", testNet(t))
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	req, err := http.NewRequest(http.MethodDelete, srv.URL+PathStaticFlow, strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPacketInCounting(t *testing.T) {
	n := testNet(t)
	c := New("ctrl", n)
	// Table miss punts to the controller via the installed handler.
	if _, err := n.Inject("00:00:01", 1, netsim.Packet{Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if c.PacketIns() != 1 {
		t.Fatalf("packet-ins = %d", c.PacketIns())
	}
}
