package controller

import (
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"
)

// SecurityMode is one of Floodlight's three REST API security modes.
type SecurityMode int

// Security modes (paper §3: "Floodlight supports three different security
// modes for the REST API, non-secure (plain HTTP), HTTPS and trusted HTTPS
// (with client authentication)").
const (
	ModeHTTP SecurityMode = iota
	ModeHTTPS
	ModeTrustedHTTPS
)

// String names the mode for experiment tables.
func (m SecurityMode) String() string {
	switch m {
	case ModeHTTP:
		return "http"
	case ModeHTTPS:
		return "https"
	case ModeTrustedHTTPS:
		return "trusted-https"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// TrustModel selects how trusted-HTTPS validates clients.
type TrustModel int

// Trust models.
const (
	// TrustCA validates client certificates against a trusted CA — the
	// paper's design: "we solve this by provisioning the controller with
	// a trusted certificate authority, rather than all client
	// certificates".
	TrustCA TrustModel = iota
	// TrustKeystore pins individual client certificates (Floodlight's
	// stock behaviour, kept as the E4 ablation: every new credential
	// requires a keystore update).
	TrustKeystore
)

// ServerConfig configures a controller REST endpoint.
type ServerConfig struct {
	Mode SecurityMode
	// Cert is the server certificate (HTTPS modes).
	Cert tls.Certificate
	// Trust selects CA or keystore validation in trusted mode.
	Trust TrustModel
	// ClientCAs is the trusted CA pool (TrustCA).
	ClientCAs *x509.CertPool
	// Keystore holds hex SHA-256 fingerprints of pinned client
	// certificates (TrustKeystore).
	Keystore map[string]bool
	// Revoked, when set, rejects revoked client certificates. It is
	// enforced at the TLS handshake and again on every request, so a
	// revocation takes effect mid-session even on kept-alive connections.
	Revoked func(*x509.Certificate) error
	// CredentialLog, when set, requires every trusted-mode client
	// certificate to carry a verifiable inclusion proof in the
	// Verification Manager's transparency log (translog.NewCredentialChecker):
	// credentials the VM never logged are rejected even when correctly
	// CA-signed.
	CredentialLog func(*x509.Certificate) error
}

// Fingerprint computes the keystore key for a certificate.
func Fingerprint(cert *x509.Certificate) string {
	sum := sha256.Sum256(cert.Raw)
	return hex.EncodeToString(sum[:])
}

// Server is a running controller REST endpoint.
type Server struct {
	cfg  ServerConfig
	ln   net.Listener
	http *http.Server

	mu       sync.Mutex
	keystore map[string]bool
}

// ErrNotPinned reports a client certificate absent from the keystore.
var ErrNotPinned = errors.New("controller: client certificate not in keystore")

// Serve starts the controller's REST endpoint on addr (e.g. 127.0.0.1:0).
func Serve(ctrl *Controller, cfg ServerConfig, addr string) (*Server, error) {
	s := &Server{cfg: cfg, keystore: cfg.Keystore}
	if s.keystore == nil {
		s.keystore = make(map[string]bool)
	}
	handler := ctrl.Handler()
	if cfg.Mode == ModeTrustedHTTPS && cfg.Revoked != nil {
		// Revocation is re-checked per request, not only per handshake:
		// without this, a client holding a keep-alive connection keeps its
		// access for the lifetime of the TLS session after the VM revoked
		// its credential.
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.TLS != nil && len(r.TLS.PeerCertificates) > 0 {
				if err := cfg.Revoked(r.TLS.PeerCertificates[0]); err != nil {
					http.Error(w, "client certificate revoked", http.StatusForbidden)
					return
				}
			}
			inner.ServeHTTP(w, r)
		})
	}
	s.http = &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// Rejected client certificates are the expected outcome of the
		// negative-path experiments; keep them off stderr.
		ErrorLog: log.New(io.Discard, "", 0),
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controller: listen: %w", err)
	}

	switch cfg.Mode {
	case ModeHTTP:
		s.ln = ln
	case ModeHTTPS:
		s.ln = tls.NewListener(ln, &tls.Config{
			MinVersion:   tls.VersionTLS12,
			Certificates: []tls.Certificate{cfg.Cert},
		})
	case ModeTrustedHTTPS:
		tcfg := &tls.Config{
			MinVersion:   tls.VersionTLS12,
			Certificates: []tls.Certificate{cfg.Cert},
		}
		switch cfg.Trust {
		case TrustCA:
			if cfg.ClientCAs == nil {
				ln.Close()
				return nil, errors.New("controller: trusted mode requires ClientCAs")
			}
			tcfg.ClientAuth = tls.RequireAndVerifyClientCert
			tcfg.ClientCAs = cfg.ClientCAs
			tcfg.VerifyPeerCertificate = VerifyClientChain(cfg.ClientCAs, cfg.Revoked, cfg.CredentialLog)
		case TrustKeystore:
			tcfg.ClientAuth = tls.RequireAnyClientCert
			tcfg.VerifyPeerCertificate = func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
				if len(rawCerts) == 0 {
					return ErrNotPinned
				}
				sum := sha256.Sum256(rawCerts[0])
				s.mu.Lock()
				ok := s.keystore[hex.EncodeToString(sum[:])]
				s.mu.Unlock()
				if !ok {
					return ErrNotPinned
				}
				if cfg.Revoked != nil || cfg.CredentialLog != nil {
					cert, err := x509.ParseCertificate(rawCerts[0])
					if err != nil {
						return err
					}
					if cfg.Revoked != nil {
						if err := cfg.Revoked(cert); err != nil {
							return err
						}
					}
					if cfg.CredentialLog != nil {
						return cfg.CredentialLog(cert)
					}
				}
				return nil
			}
		}
		s.ln = tls.NewListener(ln, tcfg)
	default:
		ln.Close()
		return nil, fmt.Errorf("controller: unknown security mode %d", cfg.Mode)
	}

	go s.http.Serve(s.ln)
	return s, nil
}

// PinCertificate adds a client certificate to the keystore (the manual
// maintenance step the paper's CA design eliminates).
func (s *Server) PinCertificate(cert *x509.Certificate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keystore[Fingerprint(cert)] = true
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the endpoint base URL.
func (s *Server) URL() string {
	if s.cfg.Mode == ModeHTTP {
		return "http://" + s.Addr()
	}
	return "https://" + s.Addr()
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.http.Close() }
