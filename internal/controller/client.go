package controller

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"vnfguard/internal/netsim"
)

// Client is a north-bound REST client (what a VNF uses to talk to the
// controller, step 6 of the workflow).
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client. tlsCfg may be nil for plain HTTP endpoints;
// for trusted-HTTPS it should come from the credential enclave
// (enclaveapp.ClientTLSConfig) so the private key stays enclave-resident.
func NewClient(baseURL string, tlsCfg *tls.Config) *Client {
	transport := &http.Transport{TLSClientConfig: tlsCfg}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Transport: transport},
	}
}

// NewClientWithDialer builds a client whose TLS connections are produced
// by dial — used for full-session-in-enclave mode, where the dialer
// returns an enclave-managed connection and the HTTP layer never sees key
// material or session state.
func NewClientWithDialer(baseURL string, dial func(ctx context.Context, network, addr string) (net.Conn, error)) *Client {
	transport := &http.Transport{
		DialTLSContext: dial,
		// The in-enclave session is established per connection; disable
		// idle pooling so transitions are attributable per request burst.
		DisableKeepAlives: false,
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Transport: transport},
	}
}

// CloseIdle releases pooled connections.
func (c *Client) CloseIdle() { c.http.CloseIdleConnections() }

func (c *Client) do(method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("controller client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("controller client: %s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("controller client: decoding %s: %w", path, err)
		}
	}
	return nil
}

// Summary fetches deployment counts.
func (c *Client) Summary() (Summary, error) {
	var s Summary
	err := c.do(http.MethodGet, PathSummary, nil, &s)
	return s, err
}

// Health checks the controller health resource.
func (c *Client) Health() (bool, error) {
	var out map[string]bool
	if err := c.do(http.MethodGet, PathHealth, nil, &out); err != nil {
		return false, err
	}
	return out["healthy"], nil
}

// Links fetches the topology links.
func (c *Client) Links() ([]netsim.LinkInfo, error) {
	var out []netsim.LinkInfo
	err := c.do(http.MethodGet, PathLinks, nil, &out)
	return out, err
}

// PushFlow installs a static flow entry.
func (c *Client) PushFlow(spec FlowSpec) error {
	return c.do(http.MethodPost, PathStaticFlow, spec, nil)
}

// DeleteFlow removes a static flow entry by name.
func (c *Client) DeleteFlow(name string) error {
	return c.do(http.MethodDelete, PathStaticFlow, map[string]string{"name": name}, nil)
}

// ListFlows fetches static flows on one switch.
func (c *Client) ListFlows(dpid string) (map[string]FlowSpec, error) {
	var out map[string]map[string]FlowSpec
	if err := c.do(http.MethodGet, PathFlowList+dpid+"/json", nil, &out); err != nil {
		return nil, err
	}
	return out[dpid], nil
}
