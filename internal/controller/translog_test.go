package controller

import (
	"crypto/ecdsa"
	"crypto/tls"
	"crypto/x509"
	"net"
	"strings"
	"testing"
	"time"

	"vnfguard/internal/pki"
	"vnfguard/internal/translog"
)

// startLoggedServer spins a trusted-HTTPS controller whose client gate
// demands transparency-log inclusion proofs, mirroring how core wires a
// deployment.
func startLoggedServer(t *testing.T) (*Server, *pki.CA, *translog.Log) {
	t.Helper()
	ca, err := pki.NewCA("vm-ca", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	log, err := translog.NewLog(ca.Signer())
	if err != nil {
		t.Fatal(err)
	}
	serverKey, err := pki.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.IssueServerCert("controller", []string{"controller"}, []net.IP{net.IPv4(127, 0, 0, 1)}, &serverKey.PublicKey, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	caPub := ca.Certificate().PublicKey.(*ecdsa.PublicKey)
	cfg := ServerConfig{
		Mode:      ModeTrustedHTTPS,
		Cert:      tls.Certificate{Certificate: [][]byte{serverCert.Raw}, PrivateKey: serverKey},
		Trust:     TrustCA,
		ClientCAs: ca.Pool(),
		Revoked: func(cert *x509.Certificate) error {
			if ca.IsRevoked(cert.SerialNumber) {
				return pki.ErrRevoked
			}
			return nil
		},
		CredentialLog: translog.NewCredentialChecker(caPub, log),
	}
	srv, err := Serve(New("ctrl", testNet(t)), cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ca, log
}

func trustedClient(t *testing.T, srv *Server, ca *pki.CA, cert tls.Certificate) *Client {
	t.Helper()
	return NewClient(srv.URL(), &tls.Config{
		MinVersion:   tls.VersionTLS12,
		RootCAs:      ca.Pool(),
		ServerName:   "controller",
		Certificates: []tls.Certificate{cert},
	})
}

// TestTrustedHTTPSRejectsUnloggedCredential is the tentpole's acceptance
// check: a certificate correctly signed by the CA but never committed to
// the transparency log must not be accepted — the enrollment workflow,
// not mere possession of a CA signature, is what grants access.
func TestTrustedHTTPSRejectsUnloggedCredential(t *testing.T) {
	srv, ca, log := startLoggedServer(t)

	loggedTLS, loggedCert := clientCert(t, ca, "fw-logged")
	if _, err := log.Append(translog.Entry{
		Type: translog.EntryEnroll, Timestamp: 1, Actor: "fw-logged",
		Serial: loggedCert.SerialNumber.String(),
	}); err != nil {
		t.Fatal(err)
	}
	rogueTLS, _ := clientCert(t, ca, "fw-rogue")

	if _, err := trustedClient(t, srv, ca, loggedTLS).Summary(); err != nil {
		t.Fatalf("logged credential rejected: %v", err)
	}
	if _, err := trustedClient(t, srv, ca, rogueTLS).Summary(); err == nil {
		t.Fatal("unlogged credential accepted")
	}
}

// TestLoggedRevocationClosesAccess checks the log-backed side of
// revocation: once an EntryRevoke lands, the proof source refuses to
// prove the credential and new sessions fail.
func TestLoggedRevocationClosesAccess(t *testing.T) {
	srv, ca, log := startLoggedServer(t)
	certTLS, cert := clientCert(t, ca, "fw-0")
	serial := cert.SerialNumber.String()
	if _, err := log.Append(translog.Entry{Type: translog.EntryEnroll, Timestamp: 1, Actor: "fw-0", Serial: serial}); err != nil {
		t.Fatal(err)
	}
	if _, err := trustedClient(t, srv, ca, certTLS).Summary(); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(translog.Entry{Type: translog.EntryRevoke, Timestamp: 2, Actor: "fw-0", Serial: serial}); err != nil {
		t.Fatal(err)
	}
	if _, err := trustedClient(t, srv, ca, certTLS).Summary(); err == nil {
		t.Fatal("revoked-in-log credential accepted for a new session")
	}
}

// TestRevocationEffectiveMidSession is the regression test for the
// propagation gap: revocation used to be checked only at the TLS
// handshake, so a client holding a keep-alive connection kept pushing
// flows after the VM revoked it. The per-request check must cut the
// session off.
func TestRevocationEffectiveMidSession(t *testing.T) {
	srv, ca, log := startLoggedServer(t)
	certTLS, cert := clientCert(t, ca, "fw-0")
	if _, err := log.Append(translog.Entry{
		Type: translog.EntryEnroll, Timestamp: 1, Actor: "fw-0",
		Serial: cert.SerialNumber.String(),
	}); err != nil {
		t.Fatal(err)
	}

	client := trustedClient(t, srv, ca, certTLS)
	defer client.CloseIdle()
	// First request establishes the TLS session and the keep-alive
	// connection.
	if _, err := client.Summary(); err != nil {
		t.Fatal(err)
	}

	ca.Revoke(cert.SerialNumber)

	// Same client, same pooled connection: no new handshake happens, so
	// only the per-request check can reject this.
	_, err := client.Summary()
	if err == nil {
		t.Fatal("revoked client kept access over its existing session")
	}
	if !strings.Contains(err.Error(), "403") {
		t.Fatalf("want a 403 rejection, got: %v", err)
	}
}
