package translog

import (
	"hash/fnv"
	stdlog "log"
	"sync"
	"time"
)

// Per-host sharding: the single Appender funnels every VM host's audit
// entries through one mutex, one batch stream and one fsync pipeline —
// fine for one host, a scaling wall for a fleet. The ShardedAppender
// gives each host its own buffer (keyed by the statedir HostInfoFile
// identity every Entry carries in its Host field) behind its own lock,
// and a background merging sequencer (sequencer.go) that drains ready
// shard batches round-robin and commits them as ONE merged Merkle batch
// per cycle: one tree-head signature, one persisted-head replacement and
// one trust-anchor bump cover every host's entries for that cycle,
// instead of each host paying them separately. On a sharded durable
// store (StoreConfig.Shards) each host's records also land in the
// host's own WAL segment stream, written and fsynced in parallel.
//
// The trust story is unchanged: global indices are assigned under the
// log lock, every cycle commits through Log.appendPrepared exactly like
// an ordinary batch, and the TrustAnchor chain sees one head per cycle.

// defaultShards is the shard count used when neither the config nor the
// log's store names one.
const defaultShards = 16

// ShardOf maps a host identity to its shard slot in [0, shards). The
// Verification Manager maps each enrolled host through this same
// function, so "which stream holds host X's records" is answerable
// without reading the log.
func ShardOf(host string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(host))
	return int(h.Sum32() % uint32(shards))
}

// EntryAppender is the batching front producers push audit entries
// through: the single Appender or the per-host ShardedAppender. Both
// honour the same contract — Append never blocks on hashing, signing or
// fsync; Flush waits out everything buffered before the call including
// in-flight commits; Close flushes, then refuses further appends with
// ErrClosedLog.
type EntryAppender interface {
	Append(Entry) error
	Flush() error
	Close() error
}

var (
	_ EntryAppender = (*Appender)(nil)
	_ EntryAppender = (*ShardedAppender)(nil)
)

// ShardedAppenderConfig tunes the sharded appender.
type ShardedAppenderConfig struct {
	// Shards is the number of per-host buffers. Defaults to the log
	// store's shard count when the log is sharded-durable, else
	// defaultShards.
	Shards int
	// MaxBatch caps how many entries one shard contributes to one
	// sequencer cycle (default 1024) — so one chatty host cannot starve
	// the others out of a cycle. The default is deliberately larger than
	// the single Appender's 256: the merged cycle is what amortises the
	// tree-head signature, the persisted-head replacement and the anchor
	// bump, and the sequencer prepares the cycle off the log lock, so a
	// bigger quantum buys throughput without stretching the lock hold
	// the way a bigger single-appender batch would.
	MaxBatch int
	// FlushInterval bounds how long a buffered entry waits for a cycle
	// (default 5ms).
	FlushInterval time.Duration
	// SlowCycleBudget, when > 0, makes the sequencer emit one
	// structured diagnostic line for any cycle whose end-to-end latency
	// (gather through anchor commit) exceeds it: the full phase
	// breakdown plus which shard slots fed the cycle and how many
	// entries each contributed (obs.CycleTrace). Zero disables the log;
	// the translog_sequencer_cycle_seconds histogram records latency
	// either way.
	SlowCycleBudget time.Duration
	// SlowCycleLog receives the slow-cycle lines (log.Printf shaped).
	// Defaults to the standard logger.
	SlowCycleLog func(format string, args ...any)
}

// hostShard is one host slot's buffer. Append touches only this lock, so
// producers on different hosts never contend. head marks how much of
// pending the sequencer has already drained — consuming by cursor keeps
// a backlogged buffer from being slid or reallocated every cycle, and
// the array is recycled (reset, capacity kept) once fully drained.
type hostShard struct {
	mu      sync.Mutex
	pending []Entry
	head    int
	closed  bool
}

// buffered returns the undrained entry count. Callers hold sh.mu.
func (sh *hostShard) buffered() int { return len(sh.pending) - sh.head }

// ShardedAppender buffers entries per host and commits them through a
// merging sequencer. See the package notes above.
type ShardedAppender struct {
	log      *Log
	shards   []*hostShard
	maxBatch int
	interval time.Duration
	workers  int
	// shardInst are the pre-resolved per-shard telemetry handles; the
	// slow-cycle diagnostic is configured alongside them.
	shardInst  []shardInstrument
	slowBudget time.Duration
	slowLog    func(format string, args ...any)

	// mu guards the commit-visible state the Flush/Close contract hangs
	// off; the idle cond broadcasts whenever a cycle finishes.
	mu         sync.Mutex
	committing bool
	closed     bool
	err        error
	idle       *sync.Cond

	// next rotates the shard the sequencer drains first each cycle, so
	// no host is structurally last. Touched only by the sequencer's
	// pipeline (one gather at a time, channel-ordered).
	next int
	// bufs are the two cycle-buffer sets the pipeline ping-pongs
	// (sequencer.go).
	bufs [2]cycleBuffers

	kick chan struct{}
	done chan struct{}
}

// NewShardedAppender starts a sharded appender for log.
func NewShardedAppender(log *Log, cfg ShardedAppenderConfig) *ShardedAppender {
	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultShards
		if log.store != nil && log.store.shardCount() > 1 {
			shards = log.store.shardCount()
		}
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.SlowCycleLog == nil {
		cfg.SlowCycleLog = stdlog.Printf
	}
	sa := &ShardedAppender{
		log:        log,
		shards:     make([]*hostShard, shards),
		maxBatch:   cfg.MaxBatch,
		interval:   cfg.FlushInterval,
		workers:    prepareWorkers(),
		shardInst:  shardInstruments(shards),
		slowBudget: cfg.SlowCycleBudget,
		slowLog:    cfg.SlowCycleLog,
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	for i := range sa.shards {
		sa.shards[i] = &hostShard{}
	}
	sa.idle = sync.NewCond(&sa.mu)
	go sa.loop()
	return sa
}

// Shards returns the appender's shard count.
func (sa *ShardedAppender) Shards() int { return len(sa.shards) }

// Append buffers one entry on its host's shard. It takes only that
// shard's lock — producers for different hosts proceed in parallel —
// and never blocks on hashing, signing or fsync.
func (sa *ShardedAppender) Append(e Entry) error {
	slot := ShardOf(e.Host, len(sa.shards))
	sh := sa.shards[slot]
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosedLog
	}
	sh.pending = append(sh.pending, e)
	full := sh.buffered() >= sa.maxBatch
	sh.mu.Unlock()
	sa.shardInst[slot].buffered.Add(1)
	if full {
		sa.wake()
	}
	return nil
}

func (sa *ShardedAppender) wake() {
	select {
	case sa.kick <- struct{}{}:
	default:
	}
}

// buffered counts entries waiting across every shard. Callers hold
// sa.mu; the shard locks nest inside it (Append never holds a shard
// lock while taking sa.mu, so the order cannot invert).
func (sa *ShardedAppender) buffered() int {
	n := 0
	for _, sh := range sa.shards {
		sh.mu.Lock()
		n += sh.buffered()
		sh.mu.Unlock()
	}
	return n
}

// Flush blocks until every entry buffered before the call is committed,
// returning the first commit error if any cycle failed. As with the
// single Appender, it waits out an in-flight cycle even when the
// appender is closing — the sequencer's final cycle drains the buffers
// and broadcasts, so this cannot hang, and returning early would let a
// Flush racing Close report nil before the last cycle (and its error)
// lands.
func (sa *ShardedAppender) Flush() error {
	sa.wake()
	sa.mu.Lock()
	defer sa.mu.Unlock()
	for sa.committing || sa.buffered() > 0 {
		sa.idle.Wait()
	}
	return sa.err
}

// Close flushes, stops the sequencer and refuses further appends.
func (sa *ShardedAppender) Close() error {
	err := sa.Flush()
	sa.mu.Lock()
	if sa.closed {
		sa.mu.Unlock()
		return err
	}
	sa.closed = true
	sa.mu.Unlock()
	for _, sh := range sa.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
	}
	close(sa.done)
	return err
}
