package translog

import (
	"testing"
)

// FuzzTileDeterminism pins the content-addressing invariant the whole
// read path depends on: a tile's encoded bytes are a pure function of
// (tree content, level, index, width) — never of how the tree got
// there. Two logs fed the same entries through fuzzer-chosen batch
// splits must emit byte-identical tiles at every coordinate, and the
// framing must round-trip exactly. If this ever breaks, "immutable,
// cache forever" becomes a lie and every front cache serves split
// views.
//
// The input script: bytes 0-1 pick the entry count (1..1400); each
// following byte carves the next batch boundary for the second log (a
// zero byte means a 1-entry batch), cycling when the script runs out.
func FuzzTileDeterminism(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{1, 0, 7})
	f.Add([]byte{2, 0, 255, 1})
	f.Add([]byte{3, 4, 100, 100, 100})
	f.Add([]byte{5, 120, 33, 0, 0, 9})
	f.Add([]byte{4, 0, 64, 64, 64, 64, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := (int(data[0])<<8|int(data[1]))%1400 + 1
		script := data[2:]
		entries := mixedEntries(n)
		key := testSigner(t)

		oneShot, err := NewLog(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := oneShot.AppendBatch(entries); err != nil {
			t.Fatal(err)
		}

		split, err := NewLog(key)
		if err != nil {
			t.Fatal(err)
		}
		for i, rest := 0, entries; len(rest) > 0; i++ {
			batch := 1
			if len(script) > 0 {
				batch = int(script[i%len(script)]) + 1
			}
			if batch > len(rest) {
				batch = len(rest)
			}
			if _, err := split.AppendBatch(rest[:batch]); err != nil {
				t.Fatal(err)
			}
			rest = rest[batch:]
		}

		size := uint64(n)
		for level := uint64(0); tileNodeCount(size, level) > 0; level++ {
			nodes := tileNodeCount(size, level)
			for index := uint64(0); index*TileWidth < nodes; index++ {
				width := TileWidth
				if rem := nodes - index*TileWidth; rem < TileWidth {
					width = int(rem)
				}
				a, err := oneShot.Tile(level, index, width)
				if err != nil {
					t.Fatalf("one-shot Tile(%d, %d, %d): %v", level, index, width, err)
				}
				b, err := split.Tile(level, index, width)
				if err != nil {
					t.Fatalf("split Tile(%d, %d, %d): %v", level, index, width, err)
				}
				encA, encB := encodeTile(a), encodeTile(b)
				if string(encA) != string(encB) {
					t.Fatalf("tile (%d, %d, %d) bytes depend on batch shape", level, index, width)
				}
				back, err := decodeTile(encA)
				if err != nil {
					t.Fatalf("tile (%d, %d, %d) does not round-trip: %v", level, index, width, err)
				}
				if string(encodeTile(back)) != string(encA) {
					t.Fatalf("tile (%d, %d, %d) re-encode diverges", level, index, width)
				}
			}
		}
	})
}
