package translog

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// FuzzWitnessPartition drives fuzzer-chosen (shards, hosts, witnesses,
// Q) shapes through the full partitioned audit plane and checks the
// three properties the trust model rests on:
//
//  1. every shard is covered by at least Q witnesses;
//  2. the assignment is deterministic across restarts — a rebuilt
//     partition and a cursor-restored witness agree with the originals;
//  3. a single-shard rewind (one host's recent entries erased, the
//     head re-served consistently smaller) is convicted by EVERY
//     witness assigned that shard via its audit cursor alone, and by
//     NO witness outside the assignment — ignorance is not evidence,
//     and coverage means ignorance never hides the attack.
//
// The input script: byte 0 picks the shard count (1..8), byte 1 the
// host count (1..8), byte 2 the witness count (1..8), byte 3 the
// quorum (clamped to the witness count), byte 4 the victim host, byte
// 5 the entries per host (1..3).
func FuzzWitnessPartition(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{7, 7, 7, 2, 3, 1})
	f.Add([]byte{3, 5, 2, 9, 1, 2})
	f.Add([]byte{5, 2, 6, 0, 200, 0xFF})
	f.Add([]byte{1, 1, 1, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		shards := int(data[0])%8 + 1
		hosts := int(data[1])%8 + 1
		nWitnesses := int(data[2])%8 + 1
		quorum := int(data[3])%nWitnesses + 1
		victim := fmt.Sprintf("host-%d", int(data[4])%hosts)
		perHost := int(data[5])%3 + 1

		names := make([]string, nWitnesses)
		for i := range names {
			names[i] = fmt.Sprintf("w%02d", i)
		}
		part, err := NewWitnessPartition(shards, names, quorum)
		if err != nil {
			t.Fatalf("valid shape refused: %v", err)
		}
		rebuilt, err := NewWitnessPartition(shards, names, quorum)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < shards; s++ {
			if got := len(part.WitnessesFor(s)); got < quorum {
				t.Fatalf("shard %d covered by %d witnesses, want >= %d", s, got, quorum)
			}
			if !reflect.DeepEqual(part.WitnessesFor(s), rebuilt.WitnessesFor(s)) {
				t.Fatalf("assignment for shard %d not deterministic", s)
			}
		}

		// The honest run: every witness audits its slice to the grown
		// head, then the victim host appends more (one shard stream
		// grows alone).
		key := testSigner(t)
		l, err := NewLog(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.EnableShardStreams(shards); err != nil {
			t.Fatal(err)
		}
		seq := 0
		mk := func(host string) Entry {
			e := Entry{
				Type: EntryAttestOK, Timestamp: int64(1700000000000 + seq),
				Actor: fmt.Sprintf("fw-%d", seq), Host: host, Detail: "OK",
			}
			seq++
			return e
		}
		var base []Entry
		for h := 0; h < hosts; h++ {
			for i := 0; i < perHost; i++ {
				base = append(base, mk(fmt.Sprintf("host-%d", h)))
			}
		}
		if _, err := l.AppendBatch(base); err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendBatch([]Entry{mk(victim), mk(victim)}); err != nil {
			t.Fatal(err)
		}
		fetch := func(a, b uint64) ([]Hash, error) { return l.ConsistencyProof(a, b) }
		grown := l.STH()
		cursors := make(map[string][]byte, len(names))
		for _, name := range names {
			w := NewWitness(&key.PublicKey)
			w.SetAssignedShards(shards, part.AssignedShards(name))
			if err := w.Advance(grown, fetch); err != nil {
				t.Fatal(err)
			}
			if err := w.AuditShards(grown, l, 0); err != nil {
				t.Fatalf("honest audit convicted: %v", err)
			}
			w.mu.Lock()
			cursors[name], err = w.snapshotCursorsLocked()
			w.mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
		}

		// The rewind: a consistent re-serving of only the base history —
		// the victim's last two entries erased, everything else intact.
		rolled, err := NewLog(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := rolled.EnableShardStreams(shards); err != nil {
			t.Fatal(err)
		}
		if _, err := rolled.AppendBatch(base); err != nil {
			t.Fatal(err)
		}
		rolledHead := rolled.STH()
		victimShard := ShardOf(victim, shards)
		convicted := 0
		for _, name := range names {
			// Restart with total head amnesia: the cursor file is the
			// witness's only surviving memory (the hardest case — any
			// witness with head memory convicts trivially).
			w := NewWitness(&key.PublicKey)
			w.SetAssignedShards(shards, part.AssignedShards(name))
			if err := w.restoreCursors(cursors[name]); err != nil {
				t.Fatal(err)
			}
			if err := w.Advance(rolledHead, func(a, b uint64) ([]Hash, error) { return rolled.ConsistencyProof(a, b) }); err != nil {
				t.Fatalf("amnesiac head adoption failed: %v", err)
			}
			err := w.AuditShards(rolledHead, rolled, 0)
			if part.Covers(name, victimShard) {
				if !errors.Is(err, ErrRollback) {
					t.Fatalf("witness %s assigned shard %d did not convict the rewind: %v", name, victimShard, err)
				}
				convicted++
			} else if err != nil {
				t.Fatalf("witness %s (not assigned shard %d) falsely convicted: %v", name, victimShard, err)
			}
		}
		if convicted < 1 || convicted < min(quorum, nWitnesses) {
			t.Fatalf("%d convictions, want every one of the %d assigned witnesses", convicted, min(quorum, nWitnesses))
		}
	})
}
