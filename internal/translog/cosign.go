// Quorum co-signing: the artifact layer on top of witness partitioning
// (partition.go). A single witness's word that a head is good was never
// the trust model — heads are log-signed and witnesses only detect
// misbehaviour — but once the audit work is partitioned, a relying
// party needs to know that *enough* partial auditors stand behind a
// head. Witnesses that verified their assigned shard streams co-sign
// the merged head with their own ECDSA keys; a CosignedHead (log-signed
// head + ≥Q distinct witness signatures verified against the pinned
// roster) is the artifact the verifier, the controller's trusted mode
// and tile-assembling clients accept. The signing digest binds the
// witness name, so one witness's signature can never be replayed as
// another's; the collector keeps per-size signature sets, so a witness
// signing two different roots at one size convicts itself with
// self-verifying EquivocationError evidence.
package translog

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"vnfguard/internal/statedir"
)

// cosignSigPrefix domain-separates witness co-signatures from tree-head
// signatures (sthSigPrefix) and every other ECDSA use in the project.
const cosignSigPrefix = "vnfguard-translog-cosign-v1"

// Co-signing errors: the adversarial surface of the quorum protocol,
// each a distinct errors.Is-able verdict.
var (
	// ErrCosignInvalid reports a witness signature that does not verify:
	// forged bytes, a signature replayed under another witness's name
	// (the name is inside the signed digest), or a signature over a
	// different head than the one it is presented with.
	ErrCosignInvalid = errors.New("translog: witness co-signature invalid") //lint:allow unusedexport cosign error contract of exported Verify/Submit paths; errors.Is target
	// ErrUnknownWitness reports a co-signature from a name outside the
	// pinned roster.
	ErrUnknownWitness = errors.New("translog: co-signature from witness outside the roster") //lint:allow unusedexport cosign error contract of exported Verify/Submit paths; errors.Is target
	// ErrDuplicateWitness reports the same witness appearing twice in
	// one signature set — Q-of-N means Q distinct witnesses.
	ErrDuplicateWitness = errors.New("translog: duplicate witness in co-signature set") //lint:allow unusedexport cosign error contract of exported Verify/Submit paths; errors.Is target
	// ErrQuorumNotReached reports a head backed by fewer than Q distinct
	// valid witness co-signatures.
	ErrQuorumNotReached = errors.New("translog: witness co-signature quorum not reached")
	// ErrWitnessEquivocation reports one witness signing two different
	// roots at one tree size; EquivocationError carries the evidence.
	ErrWitnessEquivocation = errors.New("translog: witness equivocation") //lint:allow unusedexport conviction contract: EquivocationError's Unwrap target, matched by auditors with errors.Is
)

// cosignDigest is the SHA-256 a witness co-signature covers: the domain
// prefix, the length-framed witness name, and the head's size and root.
// Binding the name makes cross-witness replay a signature failure, not
// a policy check.
func cosignDigest(witness string, size uint64, root Hash) [sha256.Size]byte {
	buf := make([]byte, 0, len(cosignSigPrefix)+8+len(witness)+8+len(root))
	buf = append(buf, cosignSigPrefix...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(len(witness)))
	buf = append(buf, u64[:]...)
	buf = append(buf, witness...)
	binary.BigEndian.PutUint64(u64[:], size)
	buf = append(buf, u64[:]...)
	buf = append(buf, root[:]...)
	return sha256.Sum256(buf)
}

// WitnessSignature is one witness's co-signature over a tree head.
type WitnessSignature struct {
	// Witness is the signing witness's roster name.
	Witness string `json:"witness"`
	// Size and RootHash name the head the signature covers.
	Size     uint64 `json:"size"`
	RootHash Hash   `json:"root_hash"`
	// Signature is the ASN.1 ECDSA signature over cosignDigest.
	Signature []byte `json:"signature"`
}

// Verify checks the co-signature against the witness's public key.
func (ws WitnessSignature) Verify(pub *ecdsa.PublicKey) error {
	digest := cosignDigest(ws.Witness, ws.Size, ws.RootHash)
	if !ecdsa.VerifyASN1(pub, digest[:], ws.Signature) {
		return fmt.Errorf("%w: signature by %q over size %d does not verify", ErrCosignInvalid, ws.Witness, ws.Size)
	}
	return nil
}

// CosignedHead is the quorum artifact: a log-signed tree head plus the
// witness signature set standing behind it. Verify is what makes it
// one — an unchecked CosignedHead is just bytes.
type CosignedHead struct {
	STH        SignedTreeHead     `json:"sth"`
	Signatures []WitnessSignature `json:"signatures"`
}

// Verify checks the whole artifact: the log signature on the head, then
// every witness signature against the roster — any forged, replayed,
// mismatched or duplicate signature fails the artifact outright — and
// finally that at least roster.Quorum() distinct witnesses signed.
func (ch *CosignedHead) Verify(logPub *ecdsa.PublicKey, roster *WitnessRoster) error {
	if err := ch.STH.Verify(logPub); err != nil {
		return err
	}
	seen := make(map[string]bool, len(ch.Signatures))
	for _, ws := range ch.Signatures {
		if ws.Size != ch.STH.Size || ws.RootHash != ch.STH.RootHash {
			return fmt.Errorf("%w: signature by %q covers a different head (size %d) than the artifact (size %d)",
				ErrCosignInvalid, ws.Witness, ws.Size, ch.STH.Size)
		}
		pub, ok := roster.Key(ws.Witness)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownWitness, ws.Witness)
		}
		if err := ws.Verify(pub); err != nil {
			return err
		}
		if seen[ws.Witness] {
			return fmt.Errorf("%w: %q", ErrDuplicateWitness, ws.Witness)
		}
		seen[ws.Witness] = true
	}
	if len(seen) < roster.Quorum() {
		return fmt.Errorf("%w: %d of %d required co-signatures on head at size %d",
			ErrQuorumNotReached, len(seen), roster.Quorum(), ch.STH.Size)
	}
	return nil
}

// CosignSource yields the newest quorum co-signed head — a
// CosignCollector's Cosigned method or a Client's, depending on whether
// the collector is in-process.
type CosignSource func() (*CosignedHead, error)

// ---- roster ---------------------------------------------------------------

// WitnessRoster pins the witness public keys and the quorum Q a
// deployment requires. Like the partition it is derived once from
// pinned state (the statedir's published witness keys), not discovered
// per verification.
type WitnessRoster struct {
	quorum int
	keys   map[string]*ecdsa.PublicKey
}

// NewWitnessRoster builds a roster requiring quorum distinct signatures
// from the named keys.
func NewWitnessRoster(quorum int, keys map[string]*ecdsa.PublicKey) (*WitnessRoster, error) { //lint:allow unusedexport relying parties pin rosters from out-of-band keys; LoadWitnessRoster is the statedir-discovery convenience over it
	if quorum < 1 || quorum > len(keys) {
		return nil, fmt.Errorf("%w: quorum %d over %d roster keys", ErrPartitionInvalid, quorum, len(keys))
	}
	m := make(map[string]*ecdsa.PublicKey, len(keys))
	for name, pub := range keys {
		if pub == nil {
			return nil, fmt.Errorf("%w: nil key for witness %q", ErrPartitionInvalid, name)
		}
		m[name] = pub
	}
	return &WitnessRoster{quorum: quorum, keys: m}, nil
}

// Quorum returns the required distinct-signature count Q.
func (r *WitnessRoster) Quorum() int { return r.quorum }

// Key returns the public key for witness name.
func (r *WitnessRoster) Key(name string) (*ecdsa.PublicKey, bool) {
	pub, ok := r.keys[name]
	return pub, ok
}

// Names returns the sorted roster names — the ring NewWitnessPartition
// is built over, so roster and partition stay derived from one set.
func (r *WitnessRoster) Names() []string {
	names := make([]string, 0, len(r.keys))
	for name := range r.keys {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ---- witness signing keys -------------------------------------------------

// WitnessKey is a witness's co-signing identity.
type WitnessKey struct {
	name string
	key  *ecdsa.PrivateKey
}

// NewWitnessKey wraps an existing key as witness name's identity.
func NewWitnessKey(name string, key *ecdsa.PrivateKey) *WitnessKey { //lint:allow unusedexport embedders bring HSM/config-held keys; OpenWitnessKey is the statedir convenience over it
	return &WitnessKey{name: name, key: key}
}

// Name returns the roster name the key signs as.
func (wk *WitnessKey) Name() string { return wk.name }

// Public returns the verification half.
func (wk *WitnessKey) Public() *ecdsa.PublicKey { return &wk.key.PublicKey }

// Cosign produces this witness's co-signature over the head.
func (wk *WitnessKey) Cosign(sth SignedTreeHead) (WitnessSignature, error) {
	digest := cosignDigest(wk.name, sth.Size, sth.RootHash)
	sig, err := ecdsa.SignASN1(rand.Reader, wk.key, digest[:])
	if err != nil {
		return WitnessSignature{}, fmt.Errorf("translog: co-signing head: %w", err)
	}
	return WitnessSignature{Witness: wk.name, Size: sth.Size, RootHash: sth.RootHash, Signature: sig}, nil
}

// witnessKeyFile / witnessPubFile are the statedir entries a witness's
// co-signing keypair lives under; the public half matches
// statedir-style discovery so the log server assembles the roster from
// published keys.
func witnessKeyFile(name string) string { return "witness-" + name + "-key.pem" }
func witnessPubFile(name string) string { return "witness-" + name + "-pub.pem" }

// witnessPubPattern matches every published witness co-signing key.
const witnessPubPattern = "witness-*-pub.pem"

// OpenWitnessKey loads witness name's co-signing key from the statedir,
// generating and persisting a fresh P-256 key on first run, and
// (re)publishes the public half for roster discovery.
func OpenWitnessKey(dir *statedir.Dir, name string) (*WitnessKey, error) {
	var key *ecdsa.PrivateKey
	data, err := dir.Read(witnessKeyFile(name))
	switch {
	case err == nil:
		key, err = statedir.ParseKeyPEM(data)
		if err != nil {
			return nil, fmt.Errorf("translog: persisted witness key: %w", err)
		}
	case errors.Is(err, os.ErrNotExist):
		pem, err := statedir.GenerateKeyPEM()
		if err != nil {
			return nil, err
		}
		if err := dir.Write(witnessKeyFile(name), pem); err != nil {
			return nil, err
		}
		key, err = statedir.ParseKeyPEM(pem)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("translog: reading witness key: %w", err)
	}
	pub, err := statedir.MarshalPubPEM(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	if err := dir.Write(witnessPubFile(name), pub); err != nil {
		return nil, err
	}
	return NewWitnessKey(name, key), nil
}

// WaitForWitnessRoster assembles the roster for a known witness set,
// waiting up to the given patience for each witness to publish its
// co-signing key — the log server's startup path, where the witness
// names come from configuration but the keys belong to the witnesses.
func WaitForWitnessRoster(dir *statedir.Dir, quorum int, names []string, wait time.Duration) (*WitnessRoster, error) {
	keys := make(map[string]*ecdsa.PublicKey, len(names))
	for _, name := range names {
		data, err := dir.WaitFor(witnessPubFile(name), wait)
		if err != nil {
			return nil, fmt.Errorf("translog: waiting for witness %q to publish its co-signing key: %w", name, err)
		}
		pub, err := statedir.ParsePubPEM(data)
		if err != nil {
			return nil, fmt.Errorf("translog: witness %q co-signing key: %w", name, err)
		}
		keys[name] = pub
	}
	return NewWitnessRoster(quorum, keys)
}

// LoadWitnessRoster assembles the roster from every witness public key
// published in the statedir.
func LoadWitnessRoster(dir *statedir.Dir, quorum int) (*WitnessRoster, error) {
	files, err := dir.Match(witnessPubPattern)
	if err != nil {
		return nil, fmt.Errorf("translog: discovering witness keys: %w", err)
	}
	keys := make(map[string]*ecdsa.PublicKey, len(files))
	for _, f := range files {
		name := strings.TrimSuffix(strings.TrimPrefix(f, "witness-"), "-pub.pem")
		data, err := dir.Read(f)
		if err != nil {
			return nil, fmt.Errorf("translog: reading witness key %s: %w", f, err)
		}
		pub, err := statedir.ParsePubPEM(data)
		if err != nil {
			return nil, fmt.Errorf("translog: witness key %s: %w", f, err)
		}
		keys[name] = pub
	}
	return NewWitnessRoster(quorum, keys)
}

// ---- equivocation evidence ------------------------------------------------

// EquivocationError is the self-verifying evidence that one witness
// co-signed two different roots at one tree size. Like ConflictError
// for the log, the pair convicts by signature alone: any third party
// holding the witness's published key re-verifies both signatures and
// needs no trust in whoever reported it — which is what lets the
// collector's HTTP 409 carry it across the wire without becoming a
// fabricated-evidence kill switch.
type EquivocationError struct {
	// Witness is the equivocating witness's roster name.
	Witness string
	// A and B are the two co-signatures: same witness, same size,
	// different roots.
	A, B WitnessSignature
}

// Error renders the verdict.
func (e *EquivocationError) Error() string {
	return fmt.Sprintf("%v: witness %q signed roots %x… and %x… at size %d",
		ErrWitnessEquivocation, e.Witness, e.A.RootHash[:4], e.B.RootHash[:4], e.A.Size)
}

// Unwrap lets errors.Is match ErrWitnessEquivocation.
func (e *EquivocationError) Unwrap() error { return ErrWitnessEquivocation }

// Verify re-checks both signatures against the witness's roster key;
// evidence that does not verify proves nothing.
func (e *EquivocationError) Verify(roster *WitnessRoster) error {
	pub, ok := roster.Key(e.Witness)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWitness, e.Witness)
	}
	for _, ws := range []WitnessSignature{e.A, e.B} {
		if ws.Witness != e.Witness {
			return fmt.Errorf("%w: evidence signature attributed to %q", ErrCosignInvalid, ws.Witness)
		}
		if err := ws.Verify(pub); err != nil {
			return fmt.Errorf("translog: equivocation evidence: %w", err)
		}
	}
	return nil
}

// SelfCertifying reports whether the pair alone proves the witness
// equivocated: two verifying signatures by one witness, one size, two
// roots.
func (e *EquivocationError) SelfCertifying(roster *WitnessRoster) bool {
	return e.A.Size == e.B.Size && e.A.RootHash != e.B.RootHash && e.Verify(roster) == nil
}

// ---- collector ------------------------------------------------------------

// maxCosignSizes bounds the per-size signature sets the collector keeps
// in flight; the oldest sub-quorum size is evicted (and counted as a
// quorum failure) when the bound is hit.
const maxCosignSizes = 16

// CosignCollector is the log-server side of the protocol: it
// accumulates witness co-signatures per head, assembles a CosignedHead
// the moment a size reaches quorum, and latches equivocation evidence.
// It is deliberately independent of the Log and its commit lock —
// submissions verify signatures and touch only the collector's own
// mutex, so cosign aggregation can never block a sequencer commit
// (pinned by the partitioned-witness race test).
type CosignCollector struct {
	logPub *ecdsa.PublicKey
	roster *WitnessRoster

	mu    sync.Mutex
	heads map[uint64]SignedTreeHead
	sigs  map[uint64]map[string]WitnessSignature
	best  *CosignedHead
	equiv []*EquivocationError
}

// NewCosignCollector builds a collector verifying heads against the log
// key and co-signatures against the pinned roster.
func NewCosignCollector(logPub *ecdsa.PublicKey, roster *WitnessRoster) *CosignCollector {
	return &CosignCollector{
		logPub: logPub,
		roster: roster,
		heads:  make(map[uint64]SignedTreeHead),
		sigs:   make(map[uint64]map[string]WitnessSignature),
	}
}

// Quorum returns the roster's required signature count.
func (c *CosignCollector) Quorum() int { return c.roster.Quorum() }

// Submit folds in one witness co-signature over a served head and
// returns the distinct-signature count now standing behind that head.
// Forged, replayed, mismatched, unknown-witness and duplicate
// submissions are rejected with their distinct sentinels and never
// touch collector state; a submission revealing two roots at one size
// returns the self-verifying evidence (*ConflictError when the log
// signed both heads, *EquivocationError when one witness signed both).
func (c *CosignCollector) Submit(sth SignedTreeHead, ws WitnessSignature) (int, error) {
	if err := sth.Verify(c.logPub); err != nil {
		return 0, err
	}
	if ws.Size != sth.Size || ws.RootHash != sth.RootHash {
		return 0, fmt.Errorf("%w: signature by %q covers size %d root %x…, submitted head is size %d root %x…",
			ErrCosignInvalid, ws.Witness, ws.Size, ws.RootHash[:4], sth.Size, sth.RootHash[:4])
	}
	pub, ok := c.roster.Key(ws.Witness)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownWitness, ws.Witness)
	}
	if err := ws.Verify(pub); err != nil {
		return 0, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.sigs[sth.Size][ws.Witness]; ok && prev.RootHash != ws.RootHash {
		// This witness already co-signed a DIFFERENT root at this size.
		// The log equivocated too (both heads carry its signature), but
		// the witness-equivocation evidence is strictly stronger — it
		// convicts the witness alongside the log — so it wins over the
		// generic split-view verdict below.
		ee := &EquivocationError{Witness: ws.Witness, A: prev, B: ws}
		c.equiv = append(c.equiv, ee)
		return len(c.sigs[sth.Size]), ee
	}
	if have, ok := c.heads[sth.Size]; ok && have.RootHash != sth.RootHash {
		// The *log* signed two heads at one size: a split view, caught
		// here for free because the collector sees every cosigned head.
		return 0, &ConflictError{Kind: ErrSplitView, Have: have, Got: sth,
			Detail: fmt.Sprintf("co-signing revealed two signed heads at size %d with different roots", sth.Size)}
	}
	if prev, ok := c.sigs[sth.Size][ws.Witness]; ok && prev.RootHash == ws.RootHash {
		return len(c.sigs[sth.Size]), fmt.Errorf("%w: %q already co-signed size %d", ErrDuplicateWitness, ws.Witness, sth.Size)
	}
	if _, ok := c.heads[sth.Size]; !ok {
		c.admitSizeLocked(sth)
	}
	set := c.sigs[sth.Size]
	set[ws.Witness] = ws
	mCosignSignatures.Inc()
	if len(set) >= c.roster.Quorum() && (c.best == nil || sth.Size > c.best.STH.Size) {
		c.best = assembleCosigned(c.heads[sth.Size], set)
		c.pruneBelowLocked(sth.Size)
	}
	return len(set), nil
}

// admitSizeLocked starts tracking a new size, evicting the oldest
// sub-quorum size when the in-flight bound is hit.
func (c *CosignCollector) admitSizeLocked(sth SignedTreeHead) {
	if len(c.heads) >= maxCosignSizes {
		oldest := uint64(0)
		first := true
		for size := range c.heads {
			if first || size < oldest {
				oldest, first = size, false
			}
		}
		delete(c.heads, oldest)
		delete(c.sigs, oldest)
		mCosignQuorumFailures.Inc()
	}
	c.heads[sth.Size] = sth
	c.sigs[sth.Size] = make(map[string]WitnessSignature, c.roster.Quorum())
}

// pruneBelowLocked drops every tracked size below the newly
// quorum-complete one; each dropped size collected signatures but was
// superseded before reaching quorum.
func (c *CosignCollector) pruneBelowLocked(size uint64) {
	for s := range c.heads {
		if s < size {
			delete(c.heads, s)
			delete(c.sigs, s)
			mCosignQuorumFailures.Inc()
		}
	}
}

// assembleCosigned freezes a signature set into the quorum artifact,
// signatures in deterministic (name) order.
func assembleCosigned(sth SignedTreeHead, set map[string]WitnessSignature) *CosignedHead {
	sigs := make([]WitnessSignature, 0, len(set))
	for _, ws := range set {
		sigs = append(sigs, ws)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Witness < sigs[j].Witness })
	return &CosignedHead{STH: sth, Signatures: sigs}
}

// Cosigned returns the newest quorum co-signed head, or an
// ErrQuorumNotReached-wrapped error when no head has reached quorum
// yet. The signature matches CosignSource.
func (c *CosignCollector) Cosigned() (*CosignedHead, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.best == nil {
		return nil, fmt.Errorf("%w: no head has collected %d co-signatures yet", ErrQuorumNotReached, c.roster.Quorum())
	}
	ch := *c.best
	ch.Signatures = append([]WitnessSignature(nil), c.best.Signatures...)
	return &ch, nil
}

// Equivocations returns the latched witness-equivocation evidence.
func (c *CosignCollector) Equivocations() []*EquivocationError {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*EquivocationError(nil), c.equiv...)
}

// ---- quorum-gated credential checking -------------------------------------

// ConsistencyProver produces RFC 6962 consistency proofs between two
// tree sizes — Client and TileAssembler both qualify, so the quorum
// checker runs equally over the consistency endpoint or tile-assembled
// proofs.
type ConsistencyProver interface {
	ConsistencyProof(first, second uint64) ([]Hash, error)
}

// NewQuorumCredentialChecker is NewCredentialChecker with the quorum
// trust model: a credential's proof bundle is accepted only when its
// head is covered by the newest quorum co-signed head — byte-equal to
// it, or consistency-proven into it. A bundle whose head is newer than
// anything Q witnesses have co-signed is refused (ErrQuorumNotReached):
// the log's own signature stopped being sufficient the moment the
// deployment pinned a roster.
func NewQuorumCredentialChecker(pub *ecdsa.PublicKey, roster *WitnessRoster, source ProofSource, proofs ConsistencyProver, cosigned CosignSource) func(*x509.Certificate) error {
	return func(cert *x509.Certificate) error {
		serial := cert.SerialNumber.String()
		pb, err := source.ProveSerial(serial)
		if err != nil {
			return fmt.Errorf("translog: credential %s: %w", serial, err)
		}
		if err := pb.Verify(pub); err != nil {
			return fmt.Errorf("translog: credential %s: %w", serial, err)
		}
		if pb.Entry.Serial != serial || (pb.Entry.Type != EntryEnroll && pb.Entry.Type != EntryProvision) {
			return fmt.Errorf("%w: proof bundle does not cover serial %s", ErrNotLogged, serial)
		}
		ch, err := cosigned()
		if err != nil {
			return err
		}
		if err := ch.Verify(pub, roster); err != nil {
			return err
		}
		switch {
		case pb.STH.Size == ch.STH.Size:
			if pb.STH.RootHash != ch.STH.RootHash {
				return &ConflictError{Kind: ErrSplitView, Have: ch.STH, Got: pb.STH,
					Detail: fmt.Sprintf("credential proof head and quorum co-signed head disagree at size %d", pb.STH.Size)}
			}
		case pb.STH.Size < ch.STH.Size:
			proof, err := proofs.ConsistencyProof(pb.STH.Size, ch.STH.Size)
			if err != nil {
				return fmt.Errorf("translog: proving credential head into co-signed head: %w", err)
			}
			if err := VerifyConsistency(pb.STH.Size, ch.STH.Size, pb.STH.RootHash, ch.STH.RootHash, proof); err != nil {
				return &ConflictError{Kind: ErrSplitView, Have: ch.STH, Got: pb.STH,
					Detail: fmt.Sprintf("credential proof head at size %d is not a prefix of the quorum co-signed head at size %d", pb.STH.Size, ch.STH.Size)}
			}
		default:
			return fmt.Errorf("%w: credential proof head at size %d is beyond the newest co-signed head at size %d",
				ErrQuorumNotReached, pb.STH.Size, ch.STH.Size)
		}
		return nil
	}
}
