package translog

import (
	"bytes"
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vnfguard/internal/statedir"
)

// testPool spins up a named witness with a gossip HTTP endpoint, watching
// the log served at logURL. Returns the pool and its own gossip URL.
func testPool(t *testing.T, name string, pub *ecdsa.PublicKey, logURL string) (*GossipPool, string) {
	t.Helper()
	w := NewWitness(pub)
	var logClient *Client
	if logURL != "" {
		logClient = NewClient(logURL, pub)
	}
	p := NewGossipPool(name, w, logClient)
	srv := httptest.NewServer(GossipHandler(p))
	t.Cleanup(srv.Close)
	return p, srv.URL
}

// TestGossipConvergence: N witnesses, only some of which saw the log
// grow, converge on the newest head through gossip exchanges alone.
func TestGossipConvergence(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	logSrv := httptest.NewServer(Handler(l))
	defer logSrv.Close()

	pools := make([]*GossipPool, 3)
	urls := make([]string, 3)
	for i := range pools {
		pools[i], urls[i] = testPool(t, fmt.Sprintf("w%d", i), &key.PublicKey, logSrv.URL)
	}
	// Ring topology: w0→w1→w2→w0. Convergence must not need a full mesh.
	for i := range pools {
		pools[i].AddPeer(NewClient(urls[(i+1)%len(urls)], &key.PublicKey))
	}

	// Everyone anchors at genesis.
	for _, p := range pools {
		if err := p.Exchange(); err != nil {
			t.Fatal(err)
		}
	}
	// The log grows; only w0 polls it (the others' view must come from
	// gossip). Detach w1/w2 from the log so adoption is gossip-driven —
	// they keep the log client for consistency proofs only.
	if _, err := l.AppendBatch([]Entry{testEntry(0), testEntry(1), testEntry(2)}); err != nil {
		t.Fatal(err)
	}
	want := l.STH()
	if err := pools[0].Witness().Advance(want, pools[0].fetchConsistency); err != nil {
		t.Fatal(err)
	}
	// w0 exchanges with w1 (pushes its head), then w1 with w2.
	for _, p := range []*GossipPool{pools[0], pools[1], pools[2]} {
		if err := p.Exchange(); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pools {
		last, seen := p.Witness().Last()
		if !seen || last.Size != want.Size || last.RootHash != want.RootHash {
			t.Fatalf("w%d did not converge: seen=%v size=%d want %d", i, seen, last.Size, want.Size)
		}
		if p.Conflict() != nil {
			t.Fatalf("w%d latched a conflict on an honest log: %v", i, p.Conflict())
		}
	}
}

// snapshotDir captures a directory's files so a test can "restore from an
// old snapshot" — the consistent local rollback the gossip network exists
// to catch.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = data
	}
	return snap
}

func restoreDir(t *testing.T, dir string, snap map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range snap {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGossipCatchesConsistentRollback is the acceptance scenario: the
// log's statedir (WAL segments *and* persisted signed head together) is
// rewound to an earlier consistent state. The open succeeds — locally
// nothing is wrong — and a witness with no memory and no peers anchors
// happily (undetected). A peer that remembers the newer head convicts
// the log with ErrRollback and both signed heads as evidence.
func TestGossipCatchesConsistentRollback(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()

	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch([]Entry{testEntry(0), testEntry(1), testEntry(2), testEntry(3), testEntry(4)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snap := snapshotDir(t, dir) // the attacker's "old snapshot" at size 5

	l, err = OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch([]Entry{testEntry(5), testEntry(6), testEntry(7)}); err != nil {
		t.Fatal(err)
	}
	grown := l.STH() // size 8, witnessed by the peer before the rewind
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewind: segments and signed head restored together, then a
	// "restart". The open succeeds — the state is self-consistent.
	restoreDir(t, dir, snap)
	rolled, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatalf("consistent rollback refused locally (should need peers): %v", err)
	}
	defer rolled.Close()
	if rolled.Size() != 5 {
		t.Fatalf("rolled-back log has %d entries, want 5", rolled.Size())
	}
	logSrv := httptest.NewServer(Handler(rolled))
	defer logSrv.Close()

	// Zero peers, no memory: the rollback is undetectable.
	amnesiac := NewGossipPool("amnesiac", NewWitness(&key.PublicKey), NewClient(logSrv.URL, &key.PublicKey))
	if err := amnesiac.Exchange(); err != nil {
		t.Fatalf("amnesiac witness with zero peers must not detect the rollback (it can't): %v", err)
	}
	if amnesiac.Conflict() != nil {
		t.Fatalf("amnesiac witness convicted without evidence: %v", amnesiac.Conflict())
	}

	// A peer that witnessed the grown head convicts via direct poll.
	remember := NewWitness(&key.PublicKey)
	if err := remember.Restore(grown); err != nil {
		t.Fatal(err)
	}
	pollErr := remember.Advance(rolled.STH(), func(a, b uint64) ([]Hash, error) {
		return rolled.ConsistencyProof(a, b)
	})
	var ce *ConflictError
	if !errors.As(pollErr, &ce) || !errors.Is(pollErr, ErrRollback) {
		t.Fatalf("remembering witness did not convict: %v", pollErr)
	}
	if ce.Have.Size != 8 || ce.Got.Size != 5 {
		t.Fatalf("evidence heads %d/%d, want 8/5", ce.Have.Size, ce.Got.Size)
	}
	if err := ce.Verify(&key.PublicKey); err != nil {
		t.Fatalf("evidence does not self-certify: %v", err)
	}

	// And the amnesiac witness convicts the moment a peer gossips the
	// remembered head to it: served(5) < peer-remembered(8).
	_, _, err = amnesiac.ReceiveHead(grown)
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("gossiped head did not convict the rolled-back log: %v", err)
	}
	if amnesiac.Conflict() == nil {
		t.Fatal("conviction not latched")
	}
	if got := amnesiac.Conflict(); got.Have.Size != 8 || got.Got.Size != 5 {
		t.Fatalf("latched evidence %d/%d, want 8/5", got.Have.Size, got.Got.Size)
	}
	if err := amnesiac.Conflict().Verify(&key.PublicKey); err != nil {
		t.Fatalf("latched evidence does not verify: %v", err)
	}
}

// TestGossipEvidenceRoundTrip: a conviction raised server-side travels
// the wire as HTTP 409 and reconstructs client-side as the same
// errors.Is-able ConflictError with both signed heads intact.
func TestGossipEvidenceRoundTrip(t *testing.T) {
	key := testSigner(t)
	honest, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := honest.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The receiving witness follows the honest log.
	logSrv := httptest.NewServer(Handler(honest))
	defer logSrv.Close()
	p, gossipURL := testPool(t, "upright", &key.PublicKey, logSrv.URL)
	if err := p.Exchange(); err != nil {
		t.Fatal(err)
	}

	// A forked log of the same size, signed by the same (stolen) key.
	forked, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 106; i++ {
		if _, err := forked.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	peer := NewClient(gossipURL, &key.PublicKey)
	_, _, err = peer.ExchangeGossip("forker", forked.STH(), true)
	var ce *ConflictError
	if !errors.As(err, &ce) || !errors.Is(err, ErrSplitView) {
		t.Fatalf("want split-view ConflictError over the wire, got %v", err)
	}
	if ce.Have.Size != 6 || ce.Got.Size != 6 || ce.Have.RootHash == ce.Got.RootHash {
		t.Fatalf("evidence heads wrong: have size=%d got size=%d", ce.Have.Size, ce.Got.Size)
	}
	if err := ce.Verify(&key.PublicKey); err != nil {
		t.Fatalf("round-tripped evidence does not verify: %v", err)
	}
	// The server latched the same conviction.
	if p.Conflict() == nil || !errors.Is(p.Conflict(), ErrSplitView) {
		t.Fatalf("server did not latch the conviction: %v", p.Conflict())
	}
}

// TestWitnessStatePersistsAcrossRestart: a witness restarted from its
// statedir remembers its last-accepted head (no amnesia) and convicts a
// log that rolled back while it was down.
func TestWitnessStatePersistsAcrossRestart(t *testing.T) {
	key := testSigner(t)
	dir, err := statedir.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWitnessState(dir, "w0", &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(a, b uint64) ([]Hash, error) { return l.ConsistencyProof(a, b) }
	if err := w.Advance(l.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(l.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	want := l.STH()

	// "Restart": a fresh witness from the same statedir holds the head.
	re, err := OpenWitnessState(dir, "w0", &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	last, seen := re.Last()
	if !seen || last.Size != want.Size || last.RootHash != want.RootHash {
		t.Fatalf("restarted witness forgot its head: seen=%v size=%d want %d", seen, last.Size, want.Size)
	}

	// A different name is a different witness: no crosstalk.
	other, err := OpenWitnessState(dir, "w1", &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, seen := other.Last(); seen {
		t.Fatal("fresh witness inherited another witness's head")
	}

	// The restarted witness convicts a log that re-serves older history.
	shrunk, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := shrunk.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	err = re.Advance(shrunk.STH(), func(a, b uint64) ([]Hash, error) { return shrunk.ConsistencyProof(a, b) })
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("restarted witness accepted a rollback: %v", err)
	}

	// A tampered persisted head must not restore.
	if err := dir.Write(witnessHeadFile("w0"), []byte(`{"size":99,"root_hash":"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=","timestamp":1,"signature":"AA=="}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWitnessState(dir, "w0", &key.PublicKey); err == nil {
		t.Fatal("tampered persisted head restored")
	}
}

// TestGossipRejectsJunkHeads: malicious peers sending garbage — malformed
// JSON, heads with invalid signatures, forged claims — are rejected with
// 4xx and never move witness state.
func TestGossipRejectsJunkHeads(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	logSrv := httptest.NewServer(Handler(l))
	defer logSrv.Close()
	p, gossipURL := testPool(t, "target", &key.PublicKey, logSrv.URL)
	if err := p.Exchange(); err != nil {
		t.Fatal(err)
	}
	before, _ := p.Witness().Last()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(gossipURL+pathGossip, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post([]byte("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// A head "signed" by a different key: forged.
	otherKey := testSigner(t)
	forgedLog, err := NewLog(otherKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := forgedLog.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	forged := forgedLog.STH()
	body, _ := marshalWireGossip(t, "evil", forged, true)
	if resp := post(body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged-signature head: status %d, want 400", resp.StatusCode)
	}

	// A syntactically fine head whose signature bytes are corrupted.
	corrupt := l.STH()
	corrupt.Signature = append([]byte(nil), corrupt.Signature...)
	corrupt.Signature[len(corrupt.Signature)/2] ^= 0xff
	body, _ = marshalWireGossip(t, "evil", corrupt, true)
	if resp := post(body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt-signature head: status %d, want 400", resp.StatusCode)
	}

	after, _ := p.Witness().Last()
	if after.Size != before.Size || after.RootHash != before.RootHash || after.Timestamp != before.Timestamp {
		t.Fatalf("junk heads moved witness state: %+v → %+v", before, after)
	}
	if p.Conflict() != nil {
		t.Fatalf("junk heads latched a conviction: %v", p.Conflict())
	}

	// Honest gossip still works after the abuse.
	if _, err := l.Append(testEntry(99)); err != nil {
		t.Fatal(err)
	}
	if err := p.Exchange(); err != nil {
		t.Fatal(err)
	}
	if last, _ := p.Witness().Last(); last.Size != 5 {
		t.Fatalf("witness stuck at %d after junk, want 5", last.Size)
	}
}

func marshalWireGossip(t *testing.T, name string, head SignedTreeHead, seen bool) ([]byte, error) {
	t.Helper()
	return json.Marshal(wireGossip{Name: name, Seen: seen, Head: head})
}

// TestGossipResistsFabricatedConvictions: a malicious peer answering
// exchanges with 409 "convictions" must not be able to kill an honest
// witness. Unverifiable evidence is dropped at the client; verifiable
// but uncorroborated claims (replayed historical heads dressed up as a
// rollback) are checked first-hand against the log and rejected; only
// self-certifying evidence (two signed heads, same size, different
// roots) latches directly.
func TestGossipResistsFabricatedConvictions(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch([]Entry{testEntry(0), testEntry(1), testEntry(2)}); err != nil {
		t.Fatal(err)
	}
	oldHead := l.STH() // a genuine historical head at size 3
	if _, err := l.AppendBatch([]Entry{testEntry(3), testEntry(4), testEntry(5)}); err != nil {
		t.Fatal(err)
	}
	newHead := l.STH() // genuine head at size 6
	logSrv := httptest.NewServer(Handler(l))
	defer logSrv.Close()

	var conflictBody []byte
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		w.Write(conflictBody)
	}))
	defer evil.Close()

	pool := NewGossipPool("honest", NewWitness(&key.PublicKey), NewClient(logSrv.URL, &key.PublicKey))
	pool.AddPeer(NewClient(evil.URL, &key.PublicKey))

	// Unverifiable evidence: garbage signatures.
	junk := oldHead
	junk.Signature = []byte{1, 2, 3}
	conflictBody, err = json.Marshal(&ConflictError{Kind: ErrRollback, Have: junk, Got: junk, Detail: "fabricated"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Exchange(); err == nil {
		t.Fatal("fabricated conviction produced a clean exchange")
	}
	if pool.Conflict() != nil {
		t.Fatalf("unverifiable evidence latched a conviction: %v", pool.Conflict())
	}
	if last, seen := pool.Witness().Last(); !seen || last.Size != 6 {
		t.Fatalf("witness did not keep following the honest log: seen=%v size=%d", seen, last.Size)
	}

	// Replayed genuine heads framed as a rollback: verifiable, but the
	// log is healthy, so first-hand corroboration clears it.
	conflictBody, err = json.Marshal(&ConflictError{Kind: ErrRollback, Have: newHead, Got: oldHead,
		Detail: "replayed history framed as rollback"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Exchange(); err == nil {
		t.Fatal("uncorroborated conviction produced a clean exchange")
	}
	if pool.Conflict() != nil {
		t.Fatalf("uncorroborated replay latched a conviction: %v", pool.Conflict())
	}

	// Self-certifying evidence: two signed heads at one size with
	// different roots can never both be honest — this latches.
	forked, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 106; i++ {
		if _, err := forked.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	conflictBody, err = json.Marshal(&ConflictError{Kind: ErrSplitView, Have: newHead, Got: forked.STH(),
		Detail: "two roots at size 6"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Exchange(); !errors.Is(err, ErrSplitView) {
		t.Fatalf("self-certifying evidence not adopted: %v", err)
	}
	if pool.Conflict() == nil {
		t.Fatal("self-certifying evidence did not latch")
	}
}

// TestWitnessMergeLaggingPeer: an old-but-consistent peer head is benign
// — no conviction, no regression of Last().
func TestWitnessMergeLaggingPeer(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(a, b uint64) ([]Hash, error) { return l.ConsistencyProof(a, b) }
	w := NewWitness(&key.PublicKey)
	if _, err := l.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	old := l.STH()
	for i := 1; i < 5; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(l.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	if err := w.Merge(old, fetch); err != nil {
		t.Fatalf("lagging consistent peer head convicted: %v", err)
	}
	if last, _ := w.Last(); last.Size != 5 {
		t.Fatalf("merge regressed Last() to %d", last.Size)
	}

	// A lagging head from a *forked* history is still a split view.
	forked, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := forked.Append(testEntry(42)); err != nil {
		t.Fatal(err)
	}
	if err := w.Merge(forked.STH(), fetch); !errors.Is(err, ErrSplitView) {
		t.Fatalf("forked lagging head accepted: %v", err)
	}
}

// TestJitterBounds pins the jitter window: [0.8d, 1.2d).
func TestJitterBounds(t *testing.T) {
	d := time.Second
	for i := 0; i < 1000; i++ {
		j := jitterFrom(d, nil)
		if j < 800*time.Millisecond || j >= 1200*time.Millisecond {
			t.Fatalf("jitter %v outside [0.8s, 1.2s)", j)
		}
	}
}

// TestJitterFromDeterministic pins the injectable source: a fixed
// sample yields an exact, reproducible interval — no randomized sleeps
// in tests that drive the loop.
func TestJitterFromDeterministic(t *testing.T) {
	d := time.Second
	for _, tc := range []struct {
		sample float64
		want   time.Duration
	}{
		{0, 800 * time.Millisecond},
		{0.5, time.Second},
		{0.999999, 1199999 * time.Microsecond},
	} {
		got := jitterFrom(d, func() float64 { return tc.sample })
		if delta := got - tc.want; delta < -time.Microsecond || delta > time.Microsecond {
			t.Fatalf("jitterFrom(%v, %v) = %v, want %v", d, tc.sample, got, tc.want)
		}
	}
	// nil source falls back to the global one, inside the window.
	if j := jitterFrom(d, nil); j < 800*time.Millisecond || j >= 1200*time.Millisecond {
		t.Fatalf("nil-source jitter %v outside window", j)
	}
}

// TestGossipLoopStops: the loop exits promptly when stop closes and
// reports each round.
func TestGossipLoopStops(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	logSrv := httptest.NewServer(Handler(l))
	defer logSrv.Close()
	p := NewGossipPool("looper", NewWitness(&key.PublicKey), NewClient(logSrv.URL, &key.PublicKey))
	// A deterministic source pins each round's sleep to exactly 0.8×
	// the interval — the loop's timing no longer depends on math/rand.
	p.SetJitterSource(func() float64 { return 0 })
	stop := make(chan struct{})
	rounds := make(chan error, 16)
	done := make(chan struct{})
	go func() {
		p.Loop(5*time.Millisecond, stop, func(err error) {
			select {
			case rounds <- err:
			default:
			}
		})
		close(done)
	}()
	if err := <-rounds; err != nil {
		t.Fatalf("first round failed: %v", err)
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("loop did not stop")
	}
	if last, seen := p.Witness().Last(); !seen || last.Size != 0 {
		t.Fatalf("loop did not anchor: seen=%v size=%d", seen, last.Size)
	}
}
