package translog

import (
	"crypto/ecdsa"
	"crypto/x509"
	"fmt"
)

// ProofSource supplies credential proof bundles: the in-process *Log or
// the HTTP *Client both qualify, so the controller can sit next to the VM
// or audit a remote log server with the same hook.
type ProofSource interface {
	ProveSerial(serial string) (*ProofBundle, error)
}

// NewCredentialChecker returns the controller-side gate for trusted-HTTPS
// mode: given a presented client certificate, it demands a verifiable
// inclusion proof that the Verification Manager logged the credential's
// issuance, and rejects certificates the VM never logged — even ones
// correctly signed by the CA. This closes the "trusted oracle" gap: a
// compromised VM (or stolen CA key) can still mint certificates, but it
// cannot use them against the controller without committing evidence to
// the append-only log.
func NewCredentialChecker(pub *ecdsa.PublicKey, source ProofSource) func(*x509.Certificate) error {
	return func(cert *x509.Certificate) error {
		serial := cert.SerialNumber.String()
		pb, err := source.ProveSerial(serial)
		if err != nil {
			return fmt.Errorf("translog: credential %s: %w", serial, err)
		}
		if err := pb.Verify(pub); err != nil {
			return fmt.Errorf("translog: credential %s: %w", serial, err)
		}
		if pb.Entry.Serial != serial || (pb.Entry.Type != EntryEnroll && pb.Entry.Type != EntryProvision) {
			return fmt.Errorf("%w: proof bundle does not cover serial %s", ErrNotLogged, serial)
		}
		return nil
	}
}
