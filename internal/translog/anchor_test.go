package translog

import (
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vnfguard/internal/epid"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/statedir"
)

// testPlatform builds an SGX platform for sealed-anchor tests.
func testPlatform(t *testing.T, opts ...sgx.PlatformOption) *sgx.Platform {
	t.Helper()
	issuer, err := epid.NewIssuer(900)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sgx.NewPlatform("anchor-host", issuer, simtime.ZeroCosts(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testStatedir(t *testing.T) *statedir.Dir {
	t.Helper()
	d, err := statedir.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAnchorConformance runs every TrustAnchor implementation through
// the shared interface contract: a fresh anchor accepts an empty state;
// committed heads are remembered; a state rewound behind — or
// contradicting — the newest committed head is refused; re-checking a
// matching state stays accepted.
func TestAnchorConformance(t *testing.T) {
	impls := []struct {
		name string
		mk   func(t *testing.T, pub *ecdsa.PublicKey) TrustAnchor
	}{
		{"statedir-sth", func(t *testing.T, pub *ecdsa.PublicKey) TrustAnchor {
			return newSTHAnchor(t.TempDir(), pub)
		}},
		{"witness-head", func(t *testing.T, pub *ecdsa.PublicKey) TrustAnchor {
			return NewWitnessAnchor(testStatedir(t), "anchor", pub)
		}},
		{"quorum-witness", func(t *testing.T, pub *ecdsa.PublicKey) TrustAnchor {
			_, roster := testWitnessKeys(t, 2, 1)
			return NewQuorumWitnessAnchor(testStatedir(t), "anchor", pub, roster)
		}},
		{"sealed-counter", func(t *testing.T, pub *ecdsa.PublicKey) TrustAnchor {
			vendor := testSigner(t)
			a, err := NewSealedHeadAnchor(testPlatform(t), vendor,
				filepath.Join(t.TempDir(), SealedHeadFileName), pub)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { a.Close() })
			return a
		}},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			key := testSigner(t)
			l, err := NewLog(key)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.AppendBatch(mixedEntries(2)); err != nil {
				t.Fatal(err)
			}
			h1 := l.STH()
			if _, err := l.AppendBatch(mixedEntries(3)); err != nil {
				t.Fatal(err)
			}
			h2 := l.STH()
			rootAt := func(n uint64) (Hash, error) { return l.RootAt(n) }
			stateAt := func(size uint64) *RecoveredState {
				return &RecoveredState{Size: size, rootAt: rootAt}
			}

			a := impl.mk(t, &key.PublicKey)
			if err := a.CheckRecovery(stateAt(0)); err != nil {
				t.Fatalf("fresh anchor refused empty state: %v", err)
			}
			if err := a.CommitHead(h1); err != nil {
				t.Fatalf("CommitHead(h1): %v", err)
			}
			if err := a.CheckRecovery(stateAt(h1.Size)); err != nil {
				t.Fatalf("state matching h1 refused: %v", err)
			}
			if err := a.CommitHead(h2); err != nil {
				t.Fatalf("CommitHead(h2): %v", err)
			}
			if err := a.CheckRecovery(stateAt(h2.Size)); err != nil {
				t.Fatalf("state matching h2 refused: %v", err)
			}
			// Newer-than-remembered state is fine (entries beyond the
			// newest head are a legitimate crash artifact).
			if _, err := l.AppendBatch(mixedEntries(1)); err != nil {
				t.Fatal(err)
			}
			if err := a.CheckRecovery(stateAt(h2.Size + 1)); err != nil {
				t.Fatalf("state beyond h2 refused: %v", err)
			}
			// The rewind: a state at h1's size after h2 was committed.
			if err := a.CheckRecovery(stateAt(h1.Size)); err == nil {
				t.Fatal("rewound state accepted")
			}
			// A state at the right size whose root contradicts the
			// remembered head.
			tampered := &RecoveredState{Size: h2.Size, rootAt: func(n uint64) (Hash, error) {
				return Hash{0xde, 0xad}, nil
			}}
			if err := a.CheckRecovery(tampered); err == nil {
				t.Fatal("tampered state accepted")
			}
			// And the matching state still passes afterwards: refusals
			// must not corrupt the anchor.
			if err := a.CheckRecovery(stateAt(h2.Size)); err != nil {
				t.Fatalf("matching state refused after refusals: %v", err)
			}
		})
	}
}

// TestAnchorConformanceShardedStore runs all three anchors over a
// sharded durable store: every anchor must behave over per-host segment
// streams exactly as over the single stream — clean restarts accepted,
// a whole-store rewind refused — because the anchors see recovered
// sizes and roots, never the WAL layout.
func TestAnchorConformanceShardedStore(t *testing.T) {
	impls := []struct {
		name    string
		mk      func(t *testing.T, dir string, pub *ecdsa.PublicKey) func() []TrustAnchor
		rewound error
	}{
		{"statedir-sth", func(t *testing.T, dir string, pub *ecdsa.PublicKey) func() []TrustAnchor {
			// The built-in anchor alone: a *consistent* rewind fools it,
			// so the conformance check uses a partial rewind (segments
			// only) it must catch.
			return func() []TrustAnchor { return nil }
		}, ErrStateRollback},
		{"witness-head", func(t *testing.T, dir string, pub *ecdsa.PublicKey) func() []TrustAnchor {
			wd := testStatedir(t)
			return func() []TrustAnchor {
				return []TrustAnchor{NewWitnessAnchor(wd, "anchor", pub)}
			}
		}, ErrStateRollback},
		{"quorum-witness", func(t *testing.T, dir string, pub *ecdsa.PublicKey) func() []TrustAnchor {
			wd := testStatedir(t)
			_, roster := testWitnessKeys(t, 2, 1)
			return func() []TrustAnchor {
				return []TrustAnchor{NewQuorumWitnessAnchor(wd, "anchor", pub, roster)}
			}
		}, ErrStateRollback},
		{"sealed-counter", func(t *testing.T, dir string, pub *ecdsa.PublicKey) func() []TrustAnchor {
			platform := testPlatform(t)
			vendor := testSigner(t)
			return func() []TrustAnchor {
				a, err := NewSealedHeadAnchor(platform, vendor,
					filepath.Join(dir, SealedHeadFileName), pub)
				if err != nil {
					t.Fatal(err)
				}
				return []TrustAnchor{a}
			}
		}, ErrSealedRollback},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			key := testSigner(t)
			dir := t.TempDir()
			mk := impl.mk(t, dir, &key.PublicKey)
			cfg := func() StoreConfig {
				return StoreConfig{Shards: 3, SegmentMaxBytes: 1024, Anchors: mk()}
			}
			l, err := OpenDurableLog(key, dir, cfg())
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, hostEntries(120, 5))
			snap := snapshotDir(t, dir)
			grownAt := l.Size()
			appendAll(t, l, hostEntries(80, 5))
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Clean restart over the interleaved streams: accepted.
			re, err := OpenDurableLog(key, dir, cfg())
			if err != nil {
				t.Fatalf("clean sharded restart refused: %v", err)
			}
			if re.Size() != 200 {
				t.Fatalf("recovered %d entries, want 200", re.Size())
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}

			// The rewind: whole statedir back to the snapshot — for the
			// plain anchor, segments only (a consistent rewind is the
			// witness/sealed anchors' job, pinned below).
			if impl.name == "statedir-sth" {
				sthData, err := os.ReadFile(filepath.Join(dir, sthFileName))
				if err != nil {
					t.Fatal(err)
				}
				restoreDir(t, dir, snap)
				if err := os.WriteFile(filepath.Join(dir, sthFileName), sthData, 0o600); err != nil {
					t.Fatal(err)
				}
			} else {
				restoreDir(t, dir, snap)
			}
			if _, err := OpenDurableLog(key, dir, cfg()); !errors.Is(err, impl.rewound) {
				t.Fatalf("sharded rewind to size %d: got %v, want %v", grownAt, err, impl.rewound)
			}
		})
	}
}

// TestSingleShardAmnesiaRewind is the sharded store's own attack: rewind
// ONE host's segment stream together with sth.json (and the witness
// state) to an earlier snapshot, leaving every other stream intact. The
// result is byte-for-byte indistinguishable from a crash mid-cycle —
// the other streams' newer records sit beyond the restored head with an
// index gap where the rewound stream's records were — so the plain
// anchor accepts it and recovery would trim the surviving history away.
// A witness anchor whose statedir outlived the rewind, and the sealed
// counter even when nothing else survived (total amnesia for that
// shard), must still convict.
func TestSingleShardAmnesiaRewind(t *testing.T) {
	key := testSigner(t)
	platform := testPlatform(t)
	vendor := testSigner(t)
	dir := t.TempDir()
	witnessDir := testStatedir(t)

	mkAnchors := func(sealed bool) []TrustAnchor {
		anchors := []TrustAnchor{NewWitnessAnchor(witnessDir, "w0", &key.PublicKey)}
		if sealed {
			a, err := NewSealedHeadAnchor(platform, vendor,
				filepath.Join(dir, SealedHeadFileName), &key.PublicKey)
			if err != nil {
				t.Fatal(err)
			}
			anchors = append(anchors, a)
		}
		return anchors
	}
	cfg := func(anchors []TrustAnchor) StoreConfig {
		return StoreConfig{Shards: 2, SegmentMaxBytes: 512, Anchors: anchors}
	}

	l, err := OpenDurableLog(key, dir, cfg(mkAnchors(true)))
	if err != nil {
		t.Fatal(err)
	}
	hostA, hostB := hostForShard(t, 2, 0), hostForShard(t, 2, 1)
	grow := func(from, to int) {
		var batch []Entry
		for i := from; i < to; i++ {
			host := hostA
			if i%2 == 1 {
				host = hostB
			}
			batch = append(batch, Entry{Type: EntryAttestOK, Timestamp: int64(i), Actor: fmt.Sprintf("fw-%d", i), Host: host, Detail: "OK"})
		}
		if _, err := l.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	grow(0, 40)
	snapLog := snapshotDir(t, dir)
	snapWitness := snapshotDir(t, witnessDir.Path(""))
	grow(40, 80)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The single-shard rewind: restore shard 0's segments, sth.json and
	// the sealed blob from the snapshot; leave shard 1's stream at its
	// grown state.
	shardZeroRewind := func(witnessToo bool) {
		for name, data := range snapLog {
			if shard, _, ok := parseShardSegmentName(name); ok && shard != 0 {
				continue
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
				t.Fatal(err)
			}
		}
		// Shard 0 segments created after the snapshot vanish in the
		// rewind.
		_, shardFirsts, err := listAllSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, first := range shardFirsts[0] {
			name := shardSegmentName(0, first)
			if _, ok := snapLog[name]; !ok {
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if witnessToo {
			restoreDir(t, witnessDir.Path(""), snapWitness)
		}
	}
	shardZeroRewind(false)

	// Sanity: with no anchors beyond the built-in head check, the rewind
	// reads as an innocent crash mid-cycle — the open succeeds at the
	// snapshot size. This is the gap the other anchors close; run it on
	// a scratch copy so the trim does not disturb the evidence.
	scratch := t.TempDir()
	for name := range snapshotDir(t, dir) {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, name), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	os.Remove(filepath.Join(scratch, SealedHeadFileName))
	blind, err := OpenDurableLog(key, scratch, StoreConfig{Shards: 2, SegmentMaxBytes: 512})
	if err != nil {
		t.Fatalf("single-shard rewind should read as a crash to the plain anchor, got: %v", err)
	}
	if blind.Size() != 40 {
		t.Fatalf("blind open recovered %d entries, want the rewound 40", blind.Size())
	}
	if err := blind.Close(); err != nil {
		t.Fatal(err)
	}

	// The witness anchor's statedir survived: rollback convicted.
	if _, err := OpenDurableLog(key, dir, cfg([]TrustAnchor{NewWitnessAnchor(witnessDir, "w0", &key.PublicKey)})); !errors.Is(err, ErrStateRollback) {
		t.Fatalf("single-shard rewind with surviving witness state: got %v, want ErrStateRollback", err)
	}

	// Total amnesia: the witness state is rewound too. Only the counter
	// in platform NV remembers — ErrSealedRollback.
	shardZeroRewind(true)
	if _, err := OpenDurableLog(key, dir, cfg(mkAnchors(true))); !errors.Is(err, ErrSealedRollback) {
		t.Fatalf("single-shard total-amnesia rewind: got %v, want ErrSealedRollback", err)
	}
}

// TestSealedAnchorTotalAmnesia is the acceptance scenario: segments,
// sth.json, the sealed blob AND every witness's persisted head are
// rewound together — the whole filesystem is self-consistent — and the
// open is still refused, because the monotonic counter in platform NV
// remembers that a newer head was sealed.
func TestSealedAnchorTotalAmnesia(t *testing.T) {
	key := testSigner(t)
	platform := testPlatform(t)
	vendor := testSigner(t)
	dir := t.TempDir()
	witnessDir := testStatedir(t)

	mkAnchors := func() []TrustAnchor {
		sealed, err := NewSealedHeadAnchor(platform, vendor,
			filepath.Join(dir, SealedHeadFileName), &key.PublicKey)
		if err != nil {
			t.Fatal(err)
		}
		return []TrustAnchor{
			NewWitnessAnchor(witnessDir, "w0", &key.PublicKey),
			sealed,
		}
	}

	l, err := OpenDurableLog(key, dir, StoreConfig{Anchors: mkAnchors()})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(5))
	snapLog := snapshotDir(t, dir)
	snapWitness := snapshotDir(t, witnessDir.Path(""))
	appendAll(t, l, mixedEntries(3))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The total rewind: log statedir and witness statedir restored to
	// the size-5 snapshot, sealed blob included.
	restoreDir(t, dir, snapLog)
	restoreDir(t, witnessDir.Path(""), snapWitness)

	// Sanity: without the sealed anchor the rewound state is perfectly
	// consistent — the plain head check and even the rewound witness
	// accept it. This is the attack the counter exists to catch.
	noSealed, err := OpenDurableLog(key, dir, StoreConfig{
		Anchors: []TrustAnchor{NewWitnessAnchor(witnessDir, "w0", &key.PublicKey)},
	})
	if err != nil {
		t.Fatalf("consistent rewind should fool every disk-rooted anchor, got: %v", err)
	}
	if noSealed.Size() != 5 {
		t.Fatalf("rewound log has %d entries, want 5", noSealed.Size())
	}
	if err := noSealed.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenDurableLog(key, dir, StoreConfig{Anchors: mkAnchors()}); !errors.Is(err, ErrSealedRollback) {
		t.Fatalf("total-amnesia rewind: got %v, want ErrSealedRollback", err)
	}
}

// TestSealedAnchorCleanRestart: closing and reopening with a fresh
// anchor enclave on the same platform is not a rollback.
func TestSealedAnchorCleanRestart(t *testing.T) {
	key := testSigner(t)
	platform := testPlatform(t)
	vendor := testSigner(t)
	dir := t.TempDir()
	path := filepath.Join(dir, SealedHeadFileName)

	mk := func() []TrustAnchor {
		a, err := NewSealedHeadAnchor(platform, vendor, path, &key.PublicKey)
		if err != nil {
			t.Fatal(err)
		}
		return []TrustAnchor{a}
	}
	l, err := OpenDurableLog(key, dir, StoreConfig{Anchors: mk()})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(64))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurableLog(key, dir, StoreConfig{Anchors: mk()})
	if err != nil {
		t.Fatalf("clean restart refused: %v", err)
	}
	if re.Size() != 64 {
		t.Fatalf("recovered %d entries, want 64", re.Size())
	}
	appendAll(t, re, mixedEntries(8))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSealedAnchorCrashHeal simulates the commit protocol's only crash
// window — blob persisted, counter increment lost — and checks recovery
// accepts the state and heals the counter instead of raising a false
// rollback verdict.
func TestSealedAnchorCrashHeal(t *testing.T) {
	key := testSigner(t)
	platform := testPlatform(t)
	vendor := testSigner(t)
	dir := t.TempDir()
	path := filepath.Join(dir, SealedHeadFileName)

	a, err := NewSealedHeadAnchor(platform, vendor, path, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mixedEntries(4)); err != nil {
		t.Fatal(err)
	}
	h1 := l.STH()
	if err := a.CommitHead(h1); err != nil {
		t.Fatal(err)
	}

	// The "crash": seal and persist the next head, skip the bump.
	if _, err := l.AppendBatch(mixedEntries(2)); err != nil {
		t.Fatal(err)
	}
	h2 := l.STH()
	raw, err := a.enclave.ECall(ecallSealedCommit, mustJSON(sealedCommitArgs{
		Counter: a.counter, TreeSize: h2.Size, RootHash: h2.RootHash, AAD: a.aad,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var rep sealedCommitReply
	mustUnmarshal(t, raw, &rep)
	if err := a.writeBlob(rep.Blob); err != nil {
		t.Fatal(err)
	}

	state := &RecoveredState{Size: h2.Size, rootAt: func(n uint64) (Hash, error) { return l.RootAt(n) }}
	if err := a.CheckRecovery(state); err != nil {
		t.Fatalf("crash window raised a false verdict: %v", err)
	}
	// Healed: a second check passes (counter now matches the blob), and
	// the next commit continues the sequence.
	if err := a.CheckRecovery(state); err != nil {
		t.Fatalf("post-heal check: %v", err)
	}
	if _, err := l.AppendBatch(mixedEntries(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.CommitHead(l.STH()); err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
	// But a rewind behind the healed head is still refused.
	if err := a.CheckRecovery(&RecoveredState{Size: h1.Size,
		rootAt: func(n uint64) (Hash, error) { return l.RootAt(n) }}); !errors.Is(err, ErrSealedRollback) {
		t.Fatalf("rewind after heal: got %v, want ErrSealedRollback", err)
	}
}

// TestSealedAnchorErrorMapping is the operator-facing error table: each
// way a sealed head can fail to open surfaces its own distinct
// sentinel, so "enclave downgraded" is never confused with "statedir
// copied to another machine" or with an actual rollback.
func TestSealedAnchorErrorMapping(t *testing.T) {
	type setup struct {
		check func(t *testing.T) error // runs CheckRecovery on a prepared scene
	}
	key := testSigner(t)
	vendor := testSigner(t)

	// seedScene commits one head with an anchor at the given SVN and
	// returns the shared pieces.
	seedScene := func(t *testing.T, platform *sgx.Platform, svn uint16) (string, *Log) {
		t.Helper()
		dir := t.TempDir()
		a, err := newSealedHeadAnchor(platform, vendor,
			filepath.Join(dir, SealedHeadFileName), &key.PublicKey, svn)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		l, err := NewLog(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendBatch(mixedEntries(3)); err != nil {
			t.Fatal(err)
		}
		if err := a.CommitHead(l.STH()); err != nil {
			t.Fatal(err)
		}
		return dir, l
	}
	checkWith := func(t *testing.T, platform *sgx.Platform, svn uint16, dir string, l *Log) error {
		t.Helper()
		a, err := newSealedHeadAnchor(platform, vendor,
			filepath.Join(dir, SealedHeadFileName), &key.PublicKey, svn)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		return a.CheckRecovery(&RecoveredState{Size: l.Size(),
			rootAt: func(n uint64) (Hash, error) { return l.RootAt(n) }})
	}

	for _, tc := range []struct {
		name string
		want error // nil = must succeed
		run  func(t *testing.T) error
	}{
		{
			// The upgrade path must stay readable: same measurement,
			// higher SVN (pins the sgx error-mapping fix).
			name: "enclave upgraded reads old blob",
			want: nil,
			run: func(t *testing.T) error {
				p := testPlatform(t)
				dir, l := seedScene(t, p, 1)
				return checkWith(t, p, 2, dir, l)
			},
		},
		{
			name: "enclave downgraded: SVN rollback",
			want: sgx.ErrSealSVNRollback,
			run: func(t *testing.T) error {
				p := testPlatform(t)
				dir, l := seedScene(t, p, 2)
				return checkWith(t, p, 1, dir, l)
			},
		},
		{
			name: "statedir copied to another machine: wrong key",
			want: sgx.ErrSealWrongKey,
			run: func(t *testing.T) error {
				dir, l := seedScene(t, testPlatform(t), 1)
				return checkWith(t, testPlatform(t), 1, dir, l)
			},
		},
		{
			name: "sealed blob corrupted: wrong key",
			want: sgx.ErrSealWrongKey,
			run: func(t *testing.T) error {
				p := testPlatform(t)
				dir, l := seedScene(t, p, 1)
				path := filepath.Join(dir, SealedHeadFileName)
				blob, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				blob[len(blob)-1] ^= 0x01
				if err := os.WriteFile(path, blob, 0o600); err != nil {
					t.Fatal(err)
				}
				return checkWith(t, p, 1, dir, l)
			},
		},
		{
			name: "sealed blob deleted: rollback",
			want: ErrSealedRollback,
			run: func(t *testing.T) error {
				p := testPlatform(t)
				dir, l := seedScene(t, p, 1)
				if err := os.Remove(filepath.Join(dir, SealedHeadFileName)); err != nil {
					t.Fatal(err)
				}
				return checkWith(t, p, 1, dir, l)
			},
		},
		{
			name: "stale blob restored: rollback",
			want: ErrSealedRollback,
			run: func(t *testing.T) error {
				p := testPlatform(t)
				dir, l := seedScene(t, p, 1)
				path := filepath.Join(dir, SealedHeadFileName)
				stale, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				// Commit a newer head, then restore the stale blob.
				a, err := newSealedHeadAnchor(p, vendor, path, &key.PublicKey, 1)
				if err != nil {
					t.Fatal(err)
				}
				defer a.Close()
				if _, err := l.AppendBatch(mixedEntries(2)); err != nil {
					t.Fatal(err)
				}
				if err := a.CommitHead(l.STH()); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, stale, 0o600); err != nil {
					t.Fatal(err)
				}
				return checkWith(t, p, 1, dir, l)
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("got %v, want success", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			// Distinctness: exactly one of the three sentinels matches.
			matches := 0
			for _, sentinel := range []error{sgx.ErrSealSVNRollback, sgx.ErrSealWrongKey, ErrSealedRollback} {
				if errors.Is(err, sentinel) {
					matches++
				}
			}
			if matches != 1 {
				t.Fatalf("error %v matches %d sentinels, want exactly 1", err, matches)
			}
		})
	}
}

// TestSealedAnchorHealsLaggingPinAtOpen: a crash between sth.json's
// persist and the sealed anchor's commit leaves the sealed pin one
// batch behind the (non-stale) persisted head. The next successful
// open must re-commit the head through the whole anchor chain, so a
// later rewind to the lagging pin's snapshot is still convicted.
func TestSealedAnchorHealsLaggingPinAtOpen(t *testing.T) {
	key := testSigner(t)
	platform := testPlatform(t)
	vendor := testSigner(t)
	dir := t.TempDir()
	mk := func() []TrustAnchor {
		a, err := NewSealedHeadAnchor(platform, vendor,
			filepath.Join(dir, SealedHeadFileName), &key.PublicKey)
		if err != nil {
			t.Fatal(err)
		}
		return []TrustAnchor{a}
	}

	l, err := OpenDurableLog(key, dir, StoreConfig{Anchors: mk()})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(4))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snap := snapshotDir(t, dir) // blob pins size 4, counter in step

	// The "crash window": segments and sth.json advance to size 6 but
	// the sealed anchor never sees the commit — exactly the on-disk
	// state a crash between the two anchors leaves behind.
	crashed, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, crashed, mixedEntries(2))
	if err := crashed.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery accepts the lagging pin (size 4 ≤ 6, roots match) and
	// must heal it to pin size 6.
	healed, err := OpenDurableLog(key, dir, StoreConfig{Anchors: mk()})
	if err != nil {
		t.Fatalf("crash-lagged pin refused an honest open: %v", err)
	}
	if err := healed.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewind to the lagging snapshot: before the heal this passed
	// every anchor (blob and counter both at the old state); now the
	// re-committed pin convicts it.
	restoreDir(t, dir, snap)
	if _, err := OpenDurableLog(key, dir, StoreConfig{Anchors: mk()}); !errors.Is(err, ErrSealedRollback) {
		t.Fatalf("rewind to crash-lagged snapshot: got %v, want ErrSealedRollback", err)
	}
}

// TestHeadlessTornStoreRefused: deleting sth.json and tearing the lone
// segment down to a partial first record leaves zero decodable entries
// — but the segment file itself proves a genesis head once existed, so
// the open must refuse as tampering rather than re-sign a fresh log.
func TestHeadlessTornStoreRefused(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(10))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, sthFileName)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, segmentName(0)), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, StoreConfig{}); !errors.Is(err, ErrStateTampered) {
		t.Fatalf("headless torn store: got %v, want ErrStateTampered", err)
	}
}

// TestWitnessAnchorConvictsConsistentRewind: rewinding the log statedir
// (segments + sth.json together) fools the built-in head check but not
// a witness anchor whose statedir survived — and the head the anchor
// persisted is exactly what a gossiping witness restores.
func TestWitnessAnchorConvictsConsistentRewind(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	witnessDir := testStatedir(t)
	anchors := func() []TrustAnchor {
		return []TrustAnchor{NewWitnessAnchor(witnessDir, "w0", &key.PublicKey)}
	}

	l, err := OpenDurableLog(key, dir, StoreConfig{Anchors: anchors()})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(5))
	snap := snapshotDir(t, dir)
	appendAll(t, l, mixedEntries(3))
	grown := l.STH()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Interop: a gossiping witness opened over the anchor's statedir
	// remembers the newest committed head without a single exchange.
	w, err := OpenWitnessState(witnessDir, "w0", &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if last, seen := w.Last(); !seen || last.Size != grown.Size {
		t.Fatalf("witness restored size %d (seen=%v), want %d", last.Size, seen, grown.Size)
	}

	restoreDir(t, dir, snap)
	if _, err := OpenDurableLog(key, dir, StoreConfig{Anchors: anchors()}); !errors.Is(err, ErrStateRollback) {
		t.Fatalf("consistent rewind with surviving witness state: got %v, want ErrStateRollback", err)
	}
	// Without the witness anchor the same rewind opens cleanly: the gap
	// the anchor closes.
	re, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatalf("rewound statedir should be locally consistent: %v", err)
	}
	re.Close()
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}
