package translog

import (
	"strconv"
	"sync"

	"vnfguard/internal/obs"
)

// Telemetry for the transparency-log stack. Every instrument is
// resolved here once, at package init (or, for per-shard and per-anchor
// series, once at appender/store construction) — the append, commit,
// recovery and gossip hot paths only ever touch pre-resolved handles,
// each a few atomics, and never the registry map or its mutex. That is
// what keeps a /metrics scrape from ever blocking a sequencer commit
// that is holding the log lock across an fsync (pinned by
// TestScrapeNeverBlocksSequencerCommit and the obs lock test).
//
// The README "Observability" section documents every series exported
// here; keep the two in sync.

var obsReg = obs.Default()

var (
	// Append pipeline.
	mAppendedEntries = obsReg.Counter("translog_appended_entries_total",
		"Entries committed into the Merkle tree, across every append path.")
	mCommits = obsReg.Counter("translog_commits_total",
		"Batch commits through the log lock (tree growth + head signature + durable append).")
	mCycles = obsReg.Counter("translog_sequencer_cycles_total",
		"Merged commit cycles run by sharded-appender sequencers.")
	mSlowCycles = obsReg.Counter("translog_sequencer_slow_cycles_total",
		"Sequencer cycles that exceeded the configured SlowCycleBudget.")
	mCycleSeconds = obsReg.Histogram("translog_sequencer_cycle_seconds",
		"End-to-end sequencer cycle latency, gather through anchor commit.")
	mLastCommit = obsReg.Stamp("translog_last_commit_unix_seconds",
		"When the last batch commit completed.")

	// Cycle phase breakdown. gather and marshal run on the sequencer
	// before the log lock; merkle, sign, wal_sync and anchor_commit run
	// inside the commit (and are also observed for single-appender
	// batches, which have no gather/marshal phase of their own).
	phaseHelp     = "Commit pipeline stage latency, labelled by phase."
	mPhaseGather  = obsReg.Histogram("translog_cycle_phase_seconds", phaseHelp, "phase", "gather")
	mPhaseMarshal = obsReg.Histogram("translog_cycle_phase_seconds", phaseHelp, "phase", "marshal")
	mPhaseMerkle  = obsReg.Histogram("translog_cycle_phase_seconds", phaseHelp, "phase", "merkle")
	mPhaseSign    = obsReg.Histogram("translog_cycle_phase_seconds", phaseHelp, "phase", "sign")
	mPhaseWALSync = obsReg.Histogram("translog_cycle_phase_seconds", phaseHelp, "phase", "wal_sync")
	mPhaseAnchor  = obsReg.Histogram("translog_cycle_phase_seconds", phaseHelp, "phase", "anchor_commit")

	// WAL.
	mWALBytes = obsReg.Counter("translog_wal_written_bytes_total",
		"Bytes of framed records written to WAL segment files.")
	mWALFsyncs = obsReg.Counter("translog_wal_fsyncs_total",
		"Segment fsyncs on the append path (tail syncs and rotation syncs).")
	mWALRolls = obsReg.Counter("translog_wal_segment_rolls_total",
		"Segment rotations (a stream retired its active segment and opened a fresh one).")

	// Recovery.
	mRecoverEntries = obsReg.Counter("translog_recovery_replayed_entries_total",
		"Entries replayed from WAL segments during store recovery.")
	mRecoverTornTails = obsReg.Counter("translog_recovery_torn_tails_total",
		"Torn tail truncations planned by recovery (crash mid-append or mid-cycle).")
	mRecoverRemovedSegs = obsReg.Counter("translog_recovery_removed_segments_total",
		"Uncommitted segments removed by recovery (beyond the contiguous prefix).")
	mRecoverSeconds = obsReg.Histogram("translog_recovery_seconds",
		"Store recovery latency: replay, tree rebuild and anchor verification.")
	mRecoverLast = obsReg.Stamp("translog_recovery_last_unix_seconds",
		"When the last successful store recovery finished.")
	mRecoverSuffixEntries = obsReg.Counter("translog_recovery_suffix_entries_total",
		"Entries replayed past the checkpoint during a checkpointed recovery (the suffix length).")

	// Checkpoints and compaction.
	mCkptLast = obsReg.Stamp("translog_checkpoint_last_unix_seconds",
		"When the last durable checkpoint was written.")
	mCkptBytes = obsReg.Gauge("translog_checkpoint_bytes",
		"Size of the newest durable checkpoint file.")
	mCompactRuns = obsReg.Counter("translog_compaction_runs_total",
		"Cold-segment compaction runs that archived at least one record.")

	// Tile read path.
	mTileCacheHits = obsReg.Counter("translog_tile_cache_hits_total",
		"Full-tile requests served straight from the statedir tile cache (no tree access).")
	mTileCacheMisses = obsReg.Counter("translog_tile_cache_misses_total",
		"Full-tile requests that missed the statedir tile cache and were extracted from the tree.")
	mTilesPublished = obsReg.Counter("translog_tile_published_total",
		"Full tiles persisted into the statedir tile cache (background publisher plus write-through).")
	mTileMark = obsReg.Gauge("translog_tile_published_mark",
		"Committed size the background tile publisher has covered.")
	mTileHTTP = obsReg.Counter("translog_tile_http_requests_total",
		"Tile endpoint requests served (full and partial).")

	// Sealed-head anchor enclave calls.
	mSealedSeal = obsReg.Histogram("translog_sealed_seal_seconds",
		"Sealed-head anchor: seal ECall latency per committed head.")
	mSealedBump = obsReg.Histogram("translog_sealed_bump_seconds",
		"Sealed-head anchor: monotonic-counter bump ECall latency per committed head.")

	// Gossip and witnessing.
	mGossipExchanges = obsReg.Counter("translog_gossip_exchanges_total",
		"Gossip rounds run (advance on the served head plus peer head swaps).")
	mGossipErrors = obsReg.Counter("translog_gossip_exchange_errors_total",
		"Gossip rounds that returned an error (transport degradation or conviction).")
	mGossipSeconds = obsReg.Histogram("translog_gossip_exchange_seconds",
		"Gossip round latency.")
	mGossipPeers = obsReg.Gauge("translog_gossip_peers",
		"Peer witnesses in the gossip pool at the last exchange.")
	mGossipHeadLag = obsReg.Gauge("translog_gossip_head_lag_entries",
		"Entries the served log head was ahead of this witness's last verified head at the last exchange.")
	mGossipLast = obsReg.Stamp("translog_gossip_last_exchange_unix_seconds",
		"When the last gossip round completed.")
	mWitnessHeadSize = obsReg.Gauge("translog_witness_head_size",
		"Tree size of the witness's last verified (adopted) head.")
	convictionHelp = "Conflict verdicts raised or corroborated, labelled by kind."
	mConvRollback  = obsReg.Counter("translog_witness_convictions_total", convictionHelp, "kind", "rollback")
	mConvSplitView = obsReg.Counter("translog_witness_convictions_total", convictionHelp, "kind", "split-view")

	// Partitioned witnessing and quorum co-signing.
	mWitnessAssignedShards = obsReg.Gauge("translog_witness_assigned_shards",
		"Shard streams this witness is assigned to audit (0: unpartitioned, auditing nothing shard-wise).")
	mCosignSeconds = obsReg.Histogram("translog_cosign_seconds",
		"Latency of one witness co-sign round: shard audit through signature submission.")
	mCosignSignatures = obsReg.Counter("translog_cosign_signatures_total",
		"Witness co-signatures the collector accepted.")
	mCosignQuorumFailures = obsReg.Counter("translog_cosign_quorum_failures_total",
		"Tree sizes abandoned without reaching the co-signature quorum (evicted or superseded).")
)

// convictionCounter picks the series for a conflict verdict.
func convictionCounter(ce *ConflictError) *obs.Counter {
	if ce.KindLabel() == "rollback" {
		return mConvRollback
	}
	return mConvSplitView
}

// shardInstrument is one shard slot's pre-resolved series.
type shardInstrument struct {
	buffered *obs.Gauge
	drained  *obs.Counter
}

var (
	shardInstMu sync.Mutex
	shardInst   []shardInstrument
)

// shardInstruments returns pre-resolved per-shard series for slots
// [0, n), growing the shared set on first use. Slots are shared across
// appenders in a process (labels aggregate), and gauges move by deltas,
// so concurrent appenders compose instead of fighting over Set.
func shardInstruments(n int) []shardInstrument {
	shardInstMu.Lock()
	defer shardInstMu.Unlock()
	for len(shardInst) < n {
		lbl := strconv.Itoa(len(shardInst))
		shardInst = append(shardInst, shardInstrument{
			//lint:allow obshandle memoised resolver: runs once per shard slot at appender construction, never on the append path
			buffered: obsReg.Gauge("translog_shard_buffered_entries",
				"Entries waiting in per-host shard buffers, labelled by shard slot.", "shard", lbl),
			//lint:allow obshandle memoised resolver: runs once per shard slot at appender construction, never on the append path
			drained: obsReg.Counter("translog_shard_drained_entries_total",
				"Entries drained from shard buffers into sequencer cycles, labelled by shard slot.", "shard", lbl),
		})
	}
	return shardInst[:n]
}

var (
	anchorHistMu sync.Mutex
	anchorHists  = map[string]*obs.Histogram{}
)

// anchorHistogram returns the per-anchor commit-latency series, keyed
// by TrustAnchor.Name (statedir-sth, witness-head, sealed-counter, …).
// Stores resolve their chain's histograms once at open.
func anchorHistogram(name string) *obs.Histogram {
	anchorHistMu.Lock()
	defer anchorHistMu.Unlock()
	h := anchorHists[name]
	if h == nil {
		//lint:allow obshandle memoised per-anchor resolver: stores call it once per anchor at open, commits reuse the handle
		h = obsReg.Histogram("translog_anchor_commit_seconds",
			"Trust-anchor CommitHead latency, labelled by anchor.", "anchor", name)
		anchorHists[name] = h
	}
	return h
}
