package translog

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
)

// Witness errors: each names the misbehaviour an auditor would report.
var (
	// ErrRollback reports a tree head older (smaller) than one already
	// observed — the log dropped committed entries.
	ErrRollback = errors.New("translog: tree head rollback")
	// ErrSplitView reports two irreconcilable tree heads — the log showed
	// different histories to different parties (or rewrote its own).
	ErrSplitView = errors.New("translog: split view detected")
)

// Witness is the monitor-side state of the gossip protocol: it remembers
// the last verified tree head and refuses to advance to any head that is
// not a signature-valid, consistency-proven extension of it.
type Witness struct {
	pub  *ecdsa.PublicKey
	last SignedTreeHead
	seen bool
}

// NewWitness creates a witness verifying heads against the log public key
// (the VM CA key).
func NewWitness(pub *ecdsa.PublicKey) *Witness {
	return &Witness{pub: pub}
}

// Last returns the most recently accepted tree head.
func (w *Witness) Last() (SignedTreeHead, bool) { return w.last, w.seen }

// Advance validates a newly observed tree head. fetchConsistency is
// called (only when needed) to obtain the proof linking the previous head
// to the new one — typically Client.ConsistencyProof. On success the
// witness adopts the new head; on failure its state is unchanged and the
// error says what the log did wrong.
func (w *Witness) Advance(sth SignedTreeHead, fetchConsistency func(first, second uint64) ([]Hash, error)) error {
	if err := sth.Verify(w.pub); err != nil {
		return err
	}
	if !w.seen {
		w.last, w.seen = sth, true
		return nil
	}
	prev := w.last
	switch {
	case sth.Size < prev.Size:
		return fmt.Errorf("%w: head regressed from %d to %d entries", ErrRollback, prev.Size, sth.Size)
	case sth.Size == prev.Size:
		if sth.RootHash != prev.RootHash {
			return fmt.Errorf("%w: two signed heads at size %d with different roots", ErrSplitView, sth.Size)
		}
		w.last = sth
		return nil
	default:
		var proof []Hash
		if prev.Size > 0 {
			var err error
			proof, err = fetchConsistency(prev.Size, sth.Size)
			if err != nil {
				return fmt.Errorf("translog: fetching consistency proof: %w", err)
			}
		}
		if err := VerifyConsistency(prev.Size, sth.Size, prev.RootHash, sth.RootHash, proof); err != nil {
			return fmt.Errorf("%w: head at size %d is not an extension of size %d", ErrSplitView, sth.Size, prev.Size)
		}
		w.last = sth
		return nil
	}
}
