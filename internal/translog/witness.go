package translog

import (
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// Witness errors: each names the misbehaviour an auditor would report.
var (
	// ErrRollback reports a tree head older (smaller) than one already
	// observed — the log dropped committed entries.
	ErrRollback = errors.New("translog: tree head rollback")
	// ErrSplitView reports two irreconcilable tree heads — the log showed
	// different histories to different parties (or rewrote its own).
	ErrSplitView = errors.New("translog: split view detected") //lint:allow unusedexport README-documented gossip outcome; reaches callers wrapped in ConflictError evidence
)

// ConflictError is the evidence form of ErrRollback/ErrSplitView: the two
// signed tree heads that cannot both describe one append-only log. Both
// heads carry valid log signatures, so the pair is self-certifying — any
// third party holding the CA certificate can re-verify the conviction
// without trusting the witness that raised it. (For a rollback the pair
// proves the log signed both heads; the claim that the smaller one was
// served *after* the larger is the observing witness's testimony, which
// is why peers corroborate received convictions against their own view
// before adopting them — see GossipPool.)
type ConflictError struct {
	// Kind is ErrRollback or ErrSplitView (errors.Is sees through it).
	Kind error
	// Have is the head the witness holds as verified history.
	Have SignedTreeHead
	// Got is the irreconcilable head that was observed.
	Got SignedTreeHead
	// Detail says how the two heads conflict.
	Detail string
}

// KindLabel names the verdict for wire and log serialisation.
func (e *ConflictError) KindLabel() string {
	if errors.Is(e.Kind, ErrRollback) {
		return "rollback"
	}
	return "split-view"
}

// MarshalJSON serialises the evidence with the verdict kind included, so
// archived convictions stay machine-readable.
func (e *ConflictError) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Kind   string         `json:"kind"`
		Detail string         `json:"detail"`
		Have   SignedTreeHead `json:"have"`
		Got    SignedTreeHead `json:"got"`
	}{e.KindLabel(), e.Detail, e.Have, e.Got})
}

// Error renders the verdict with both heads summarised.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("%v: %s (have size=%d root=%x… ts=%d; got size=%d root=%x… ts=%d)",
		e.Kind, e.Detail,
		e.Have.Size, e.Have.RootHash[:4], e.Have.Timestamp,
		e.Got.Size, e.Got.RootHash[:4], e.Got.Timestamp)
}

// Unwrap lets errors.Is match the underlying verdict kind.
func (e *ConflictError) Unwrap() error { return e.Kind }

// Verify re-checks the evidence: both heads must carry valid log
// signatures, otherwise the "conviction" proves nothing.
func (e *ConflictError) Verify(pub *ecdsa.PublicKey) error {
	if err := e.Have.Verify(pub); err != nil {
		return fmt.Errorf("translog: evidence 'have' head: %w", err)
	}
	if err := e.Got.Verify(pub); err != nil {
		return fmt.Errorf("translog: evidence 'got' head: %w", err)
	}
	return nil
}

// SelfCertifying reports whether the evidence pair alone proves log
// misbehaviour to any third party: two signature-valid heads of equal
// size with different roots can never both belong to one append-only
// log, no matter who presents them or when.
func (e *ConflictError) SelfCertifying(pub *ecdsa.PublicKey) bool {
	return e.Have.Size == e.Got.Size &&
		e.Have.RootHash != e.Got.RootHash &&
		e.Verify(pub) == nil
}

// Witness is the monitor-side state of the gossip protocol: it remembers
// the last verified tree head and refuses to advance to any head that is
// not a signature-valid, consistency-proven extension of it. All methods
// are safe for concurrent use — a witness is shared between its poll
// loop and the gossip endpoints — and no lock is held across a
// consistency-proof fetch, so a stalled log server cannot wedge the
// gossip endpoints behind a witness mutex.
type Witness struct {
	pub *ecdsa.PublicKey

	mu   sync.Mutex
	last SignedTreeHead
	seen bool
	// save, when set (OpenWitnessState), persists every newly accepted
	// head so a witness restart is not amnesia.
	save func(SignedTreeHead) error
}

// NewWitness creates a witness verifying heads against the log public key
// (the VM CA key).
func NewWitness(pub *ecdsa.PublicKey) *Witness {
	return &Witness{pub: pub}
}

// Last returns the most recently accepted tree head.
func (w *Witness) Last() (SignedTreeHead, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last, w.seen
}

// Restore seeds the witness from a previously accepted head (its own
// persisted state). The signature is still checked — a tampered state
// file must not become trusted history — but no consistency proof is
// demanded: the head was already proven when it was first accepted.
func (w *Witness) Restore(sth SignedTreeHead) error {
	if err := sth.Verify(w.pub); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seen && sth.Size < w.last.Size {
		// Never let a restore move the witness backwards.
		return nil
	}
	w.last, w.seen = sth, true
	return nil
}

// adoptLocked replaces the accepted head and persists it. Callers hold
// w.mu.
func (w *Witness) adoptLocked(sth SignedTreeHead) error {
	w.last, w.seen = sth, true
	mWitnessHeadSize.Set(int64(sth.Size))
	if w.save == nil {
		return nil
	}
	if err := w.save(sth); err != nil {
		// The in-memory adoption stands — monitoring must not stall on a
		// full disk — but the caller learns persistence is degraded.
		return fmt.Errorf("translog: persisting witness head: %w", err)
	}
	return nil
}

// proveExtension fetches (outside any lock) and verifies the consistency
// proof that prev extends to next.
func proveExtension(prev, next SignedTreeHead, fetch func(first, second uint64) ([]Hash, error)) error {
	var proof []Hash
	if prev.Size > 0 {
		var err error
		proof, err = fetch(prev.Size, next.Size)
		if err != nil {
			return fmt.Errorf("translog: fetching consistency proof: %w", err)
		}
	}
	if err := VerifyConsistency(prev.Size, next.Size, prev.RootHash, next.RootHash, proof); err != nil {
		return ErrProofInvalid
	}
	return nil
}

// Advance validates a head served by the log under watch. fetchConsistency
// is called (only when needed, and never under the witness lock) to obtain
// the proof linking the previous head to the new one — typically
// Client.ConsistencyProof. On success the witness adopts the new head; on
// failure its state is unchanged and the error says what the log did
// wrong: a *ConflictError carrying both signed heads for
// ErrRollback/ErrSplitView verdicts.
func (w *Witness) Advance(sth SignedTreeHead, fetchConsistency func(first, second uint64) ([]Hash, error)) error {
	if err := sth.Verify(w.pub); err != nil {
		return err
	}
	for {
		w.mu.Lock()
		if !w.seen {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		prev := w.last
		switch {
		case sth.Size < prev.Size:
			w.mu.Unlock()
			return &ConflictError{Kind: ErrRollback, Have: prev, Got: sth,
				Detail: fmt.Sprintf("served head regressed from %d to %d entries", prev.Size, sth.Size)}
		case sth.Size == prev.Size:
			defer w.mu.Unlock()
			if sth.RootHash != prev.RootHash {
				return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
					Detail: fmt.Sprintf("two signed heads at size %d with different roots", sth.Size)}
			}
			// Same size, same root: keep whichever head is newest.
			// Adopting a regressed timestamp would silently move Last()
			// backwards in time, aging the freshness signal the witness
			// reports.
			if sth.Timestamp <= prev.Timestamp {
				return nil
			}
			return w.adoptLocked(sth)
		}
		// Extension: prove it without holding the lock, then re-check the
		// state did not move while the proof was in flight.
		w.mu.Unlock()
		switch err := proveExtension(prev, sth, fetchConsistency); {
		case errors.Is(err, ErrProofInvalid):
			return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
				Detail: fmt.Sprintf("head at size %d is not an extension of size %d", sth.Size, prev.Size)}
		case err != nil:
			return err
		}
		w.mu.Lock()
		moved := w.last.Size != prev.Size || w.last.RootHash != prev.RootHash
		if !moved {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		w.mu.Unlock()
		// Someone else adopted a different head meanwhile: re-evaluate
		// sth against the new state from scratch.
	}
}

// Merge folds in a head remembered by a gossip peer. Unlike Advance, a
// smaller head is not a rollback verdict — a lagging peer legitimately
// remembers old history — but it must still be consistency-provable into
// ours, and an equal-size head must share our root: two signed heads that
// cannot be reconciled are a split view whoever holds them. A larger
// consistent head is adopted, so gossip spreads the newest view through
// the witness set. fetchConsistency asks the log under watch for proofs.
func (w *Witness) Merge(sth SignedTreeHead, fetchConsistency func(first, second uint64) ([]Hash, error)) error {
	if err := sth.Verify(w.pub); err != nil {
		return err
	}
	return w.mergeVerified(sth, fetchConsistency)
}

// mergeVerified is Merge for a head whose signature the caller already
// checked (GossipPool verifies once at its trust boundary).
func (w *Witness) mergeVerified(sth SignedTreeHead, fetchConsistency func(first, second uint64) ([]Hash, error)) error {
	for {
		w.mu.Lock()
		if !w.seen {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		prev := w.last
		if sth.Size == prev.Size {
			defer w.mu.Unlock()
			if sth.RootHash != prev.RootHash {
				return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
					Detail: fmt.Sprintf("peer holds a different root at size %d", sth.Size)}
			}
			if sth.Timestamp <= prev.Timestamp {
				return nil
			}
			return w.adoptLocked(sth)
		}
		w.mu.Unlock()

		if sth.Size < prev.Size {
			// The peer lags; prove its old head is a prefix of ours. No
			// adoption happens, so a concurrent state change is harmless.
			switch err := proveExtension(sth, prev, fetchConsistency); {
			case errors.Is(err, ErrProofInvalid):
				return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
					Detail: fmt.Sprintf("peer head at size %d is not a prefix of size %d", sth.Size, prev.Size)}
			default:
				return err
			}
		}
		switch err := proveExtension(prev, sth, fetchConsistency); {
		case errors.Is(err, ErrProofInvalid):
			return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
				Detail: fmt.Sprintf("peer head at size %d is not an extension of size %d", sth.Size, prev.Size)}
		case err != nil:
			return err
		}
		w.mu.Lock()
		moved := w.last.Size != prev.Size || w.last.RootHash != prev.RootHash
		if !moved {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		w.mu.Unlock()
	}
}
