package translog

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Witness errors: each names the misbehaviour an auditor would report.
var (
	// ErrRollback reports a tree head older (smaller) than one already
	// observed — the log dropped committed entries.
	ErrRollback = errors.New("translog: tree head rollback")
	// ErrSplitView reports two irreconcilable tree heads — the log showed
	// different histories to different parties (or rewrote its own).
	ErrSplitView = errors.New("translog: split view detected") //lint:allow unusedexport README-documented gossip outcome; reaches callers wrapped in ConflictError evidence
)

// ConflictError is the evidence form of ErrRollback/ErrSplitView: the two
// signed tree heads that cannot both describe one append-only log. Both
// heads carry valid log signatures, so the pair is self-certifying — any
// third party holding the CA certificate can re-verify the conviction
// without trusting the witness that raised it. (For a rollback the pair
// proves the log signed both heads; the claim that the smaller one was
// served *after* the larger is the observing witness's testimony, which
// is why peers corroborate received convictions against their own view
// before adopting them — see GossipPool.)
type ConflictError struct {
	// Kind is ErrRollback or ErrSplitView (errors.Is sees through it).
	Kind error
	// Have is the head the witness holds as verified history.
	Have SignedTreeHead
	// Got is the irreconcilable head that was observed.
	Got SignedTreeHead
	// Detail says how the two heads conflict.
	Detail string
}

// KindLabel names the verdict for wire and log serialisation.
func (e *ConflictError) KindLabel() string {
	if errors.Is(e.Kind, ErrRollback) {
		return "rollback"
	}
	return "split-view"
}

// MarshalJSON serialises the evidence with the verdict kind included, so
// archived convictions stay machine-readable.
func (e *ConflictError) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Kind   string         `json:"kind"`
		Detail string         `json:"detail"`
		Have   SignedTreeHead `json:"have"`
		Got    SignedTreeHead `json:"got"`
	}{e.KindLabel(), e.Detail, e.Have, e.Got})
}

// Error renders the verdict with both heads summarised.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("%v: %s (have size=%d root=%x… ts=%d; got size=%d root=%x… ts=%d)",
		e.Kind, e.Detail,
		e.Have.Size, e.Have.RootHash[:4], e.Have.Timestamp,
		e.Got.Size, e.Got.RootHash[:4], e.Got.Timestamp)
}

// Unwrap lets errors.Is match the underlying verdict kind.
func (e *ConflictError) Unwrap() error { return e.Kind }

// Verify re-checks the evidence: both heads must carry valid log
// signatures, otherwise the "conviction" proves nothing.
func (e *ConflictError) Verify(pub *ecdsa.PublicKey) error {
	if err := e.Have.Verify(pub); err != nil {
		return fmt.Errorf("translog: evidence 'have' head: %w", err)
	}
	if err := e.Got.Verify(pub); err != nil {
		return fmt.Errorf("translog: evidence 'got' head: %w", err)
	}
	return nil
}

// SelfCertifying reports whether the evidence pair alone proves log
// misbehaviour to any third party: two signature-valid heads of equal
// size with different roots can never both belong to one append-only
// log, no matter who presents them or when.
func (e *ConflictError) SelfCertifying(pub *ecdsa.PublicKey) bool {
	return e.Have.Size == e.Got.Size &&
		e.Have.RootHash != e.Got.RootHash &&
		e.Verify(pub) == nil
}

// Witness is the monitor-side state of the gossip protocol: it remembers
// the last verified tree head and refuses to advance to any head that is
// not a signature-valid, consistency-proven extension of it. All methods
// are safe for concurrent use — a witness is shared between its poll
// loop and the gossip endpoints — and no lock is held across a
// consistency-proof fetch, so a stalled log server cannot wedge the
// gossip endpoints behind a witness mutex.
type Witness struct {
	pub *ecdsa.PublicKey

	mu   sync.Mutex
	last SignedTreeHead
	seen bool
	// save, when set (OpenWitnessState), persists every newly accepted
	// head so a witness restart is not amnesia.
	save func(SignedTreeHead) error

	// Partitioned-audit state (SetAssignedShards): the shard slice this
	// witness verifies entry-by-entry, and a chained-hash cursor per
	// assigned shard recording exactly which stream prefix it audited
	// under which head. Cursors are what turn a single-shard rewind —
	// invisible in head size alone once the log regrows — into a
	// conviction by an assigned witness, and what two overlapping
	// witnesses compare during gossip to catch per-shard split views.
	shards      int
	assigned    []int
	assignedSet map[int]bool
	cursors     map[int]*shardCursor
	// saveCursors, when set, persists the marshalled cursor state so a
	// witness restart is not shard-audit amnesia.
	saveCursors func([]byte) error
}

// shardCursor is one assigned shard's audit progress: how many stream
// entries were verified, the chained mark over them (position, global
// index and leaf hash all folded in), and the served head they were
// last verified against — the "have" side of any shard-level evidence.
type shardCursor struct {
	Count uint64         `json:"count"`
	Mark  Hash           `json:"mark"`
	Head  SignedTreeHead `json:"head"`
}

// NewWitness creates a witness verifying heads against the log public key
// (the VM CA key).
func NewWitness(pub *ecdsa.PublicKey) *Witness {
	return &Witness{pub: pub}
}

// Last returns the most recently accepted tree head.
func (w *Witness) Last() (SignedTreeHead, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last, w.seen
}

// Restore seeds the witness from a previously accepted head (its own
// persisted state). The signature is still checked — a tampered state
// file must not become trusted history — but no consistency proof is
// demanded: the head was already proven when it was first accepted.
func (w *Witness) Restore(sth SignedTreeHead) error {
	if err := sth.Verify(w.pub); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seen && sth.Size < w.last.Size {
		// Never let a restore move the witness backwards.
		return nil
	}
	w.last, w.seen = sth, true
	return nil
}

// adoptLocked replaces the accepted head and persists it. Callers hold
// w.mu.
func (w *Witness) adoptLocked(sth SignedTreeHead) error {
	w.last, w.seen = sth, true
	mWitnessHeadSize.Set(int64(sth.Size))
	if w.save == nil {
		return nil
	}
	if err := w.save(sth); err != nil {
		// The in-memory adoption stands — monitoring must not stall on a
		// full disk — but the caller learns persistence is degraded.
		return fmt.Errorf("translog: persisting witness head: %w", err)
	}
	return nil
}

// proveExtension fetches (outside any lock) and verifies the consistency
// proof that prev extends to next.
func proveExtension(prev, next SignedTreeHead, fetch func(first, second uint64) ([]Hash, error)) error {
	var proof []Hash
	if prev.Size > 0 {
		var err error
		proof, err = fetch(prev.Size, next.Size)
		if err != nil {
			return fmt.Errorf("translog: fetching consistency proof: %w", err)
		}
	}
	if err := VerifyConsistency(prev.Size, next.Size, prev.RootHash, next.RootHash, proof); err != nil {
		return ErrProofInvalid
	}
	return nil
}

// Advance validates a head served by the log under watch. fetchConsistency
// is called (only when needed, and never under the witness lock) to obtain
// the proof linking the previous head to the new one — typically
// Client.ConsistencyProof. On success the witness adopts the new head; on
// failure its state is unchanged and the error says what the log did
// wrong: a *ConflictError carrying both signed heads for
// ErrRollback/ErrSplitView verdicts.
func (w *Witness) Advance(sth SignedTreeHead, fetchConsistency func(first, second uint64) ([]Hash, error)) error {
	if err := sth.Verify(w.pub); err != nil {
		return err
	}
	for {
		w.mu.Lock()
		if !w.seen {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		prev := w.last
		switch {
		case sth.Size < prev.Size:
			w.mu.Unlock()
			return &ConflictError{Kind: ErrRollback, Have: prev, Got: sth,
				Detail: fmt.Sprintf("served head regressed from %d to %d entries", prev.Size, sth.Size)}
		case sth.Size == prev.Size:
			defer w.mu.Unlock()
			if sth.RootHash != prev.RootHash {
				return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
					Detail: fmt.Sprintf("two signed heads at size %d with different roots", sth.Size)}
			}
			// Same size, same root: keep whichever head is newest.
			// Adopting a regressed timestamp would silently move Last()
			// backwards in time, aging the freshness signal the witness
			// reports.
			if sth.Timestamp <= prev.Timestamp {
				return nil
			}
			return w.adoptLocked(sth)
		}
		// Extension: prove it without holding the lock, then re-check the
		// state did not move while the proof was in flight.
		w.mu.Unlock()
		switch err := proveExtension(prev, sth, fetchConsistency); {
		case errors.Is(err, ErrProofInvalid):
			return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
				Detail: fmt.Sprintf("head at size %d is not an extension of size %d", sth.Size, prev.Size)}
		case err != nil:
			return err
		}
		w.mu.Lock()
		moved := w.last.Size != prev.Size || w.last.RootHash != prev.RootHash
		if !moved {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		w.mu.Unlock()
		// Someone else adopted a different head meanwhile: re-evaluate
		// sth against the new state from scratch.
	}
}

// Merge folds in a head remembered by a gossip peer. Unlike Advance, a
// smaller head is not a rollback verdict — a lagging peer legitimately
// remembers old history — but it must still be consistency-provable into
// ours, and an equal-size head must share our root: two signed heads that
// cannot be reconciled are a split view whoever holds them. A larger
// consistent head is adopted, so gossip spreads the newest view through
// the witness set. fetchConsistency asks the log under watch for proofs.
func (w *Witness) Merge(sth SignedTreeHead, fetchConsistency func(first, second uint64) ([]Hash, error)) error {
	if err := sth.Verify(w.pub); err != nil {
		return err
	}
	return w.mergeVerified(sth, fetchConsistency)
}

// mergeVerified is Merge for a head whose signature the caller already
// checked (GossipPool verifies once at its trust boundary).
func (w *Witness) mergeVerified(sth SignedTreeHead, fetchConsistency func(first, second uint64) ([]Hash, error)) error {
	for {
		w.mu.Lock()
		if !w.seen {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		prev := w.last
		if sth.Size == prev.Size {
			defer w.mu.Unlock()
			if sth.RootHash != prev.RootHash {
				return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
					Detail: fmt.Sprintf("peer holds a different root at size %d", sth.Size)}
			}
			if sth.Timestamp <= prev.Timestamp {
				return nil
			}
			return w.adoptLocked(sth)
		}
		w.mu.Unlock()

		if sth.Size < prev.Size {
			// The peer lags; prove its old head is a prefix of ours. No
			// adoption happens, so a concurrent state change is harmless.
			switch err := proveExtension(sth, prev, fetchConsistency); {
			case errors.Is(err, ErrProofInvalid):
				return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
					Detail: fmt.Sprintf("peer head at size %d is not a prefix of size %d", sth.Size, prev.Size)}
			default:
				return err
			}
		}
		switch err := proveExtension(prev, sth, fetchConsistency); {
		case errors.Is(err, ErrProofInvalid):
			return &ConflictError{Kind: ErrSplitView, Have: prev, Got: sth,
				Detail: fmt.Sprintf("peer head at size %d is not an extension of size %d", sth.Size, prev.Size)}
		case err != nil:
			return err
		}
		w.mu.Lock()
		moved := w.last.Size != prev.Size || w.last.RootHash != prev.RootHash
		if !moved {
			defer w.mu.Unlock()
			return w.adoptLocked(sth)
		}
		w.mu.Unlock()
	}
}

// ---- partitioned shard audit ----------------------------------------------

// shardMarkPrefix domain-separates the audit-cursor chain hash.
const shardMarkPrefix = "vnfguard-translog-shardmark-v1"

// chainMark extends a shard cursor's chained hash with one verified
// stream element: the position pins ordering, the global index pins the
// stream-to-tree mapping, and the leaf hash pins the entry bytes. Two
// witnesses that audited the same prefix of the same served stream hold
// the same mark; any substitution, reordering or divergent serving
// forks the chains forever.
func chainMark(prev Hash, pos, index uint64, leaf Hash) Hash {
	h := sha256.New()
	h.Write([]byte(shardMarkPrefix))
	h.Write(prev[:])
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], pos)
	h.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], index)
	h.Write(u64[:])
	h.Write(leaf[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// SetAssignedShards configures the witness's slice of the partition:
// the total shard count and the sorted shard list this witness audits.
// Cursors for shards no longer assigned are kept — reassignment must
// not amnesia away audited history — but only assigned shards are
// audited and judged from now on.
func (w *Witness) SetAssignedShards(total int, assigned []int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.shards = total
	w.assigned = append([]int(nil), assigned...)
	sort.Ints(w.assigned)
	w.assignedSet = make(map[int]bool, len(assigned))
	for _, s := range w.assigned {
		w.assignedSet[s] = true
	}
	if w.cursors == nil {
		w.cursors = make(map[int]*shardCursor, len(assigned))
	}
	mWitnessAssignedShards.Set(int64(len(w.assigned)))
}

// AssignedShards returns the sorted shard list this witness audits
// (nil: partitioning off, the witness follows the whole fleet).
func (w *Witness) AssignedShards() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int(nil), w.assigned...)
}

// snapshotCursorsLocked marshals the cursor state for persistence.
func (w *Witness) snapshotCursorsLocked() ([]byte, error) {
	out := make(map[string]*shardCursor, len(w.cursors))
	for s, cur := range w.cursors {
		out[strconv.Itoa(s)] = cur
	}
	return json.Marshal(out)
}

// restoreCursors seeds the audit cursors from persisted state. Each
// cursor's head is signature-checked — a tampered cursor file must not
// plant false audit history — and a cursor never moves backwards.
func (w *Witness) restoreCursors(data []byte) error {
	var in map[string]*shardCursor
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("translog: persisted shard cursors undecodable: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cursors == nil {
		w.cursors = make(map[int]*shardCursor, len(in))
	}
	for key, cur := range in {
		s, err := strconv.Atoi(key)
		if err != nil || cur == nil {
			return fmt.Errorf("translog: persisted shard cursors undecodable: bad shard key %q", key)
		}
		if cur.Count > 0 {
			if err := cur.Head.Verify(w.pub); err != nil {
				return fmt.Errorf("translog: persisted cursor for shard %d: %w", s, err)
			}
		}
		if have := w.cursors[s]; have == nil || cur.Count > have.Count {
			w.cursors[s] = cur
		}
	}
	return nil
}

// persistCursors snapshots and saves the cursor state (no-op without a
// persistence hook). The snapshot is taken under the lock; the write
// happens outside it, so a slow disk never blocks the audit path.
func (w *Witness) persistCursors() error {
	w.mu.Lock()
	save := w.saveCursors
	if save == nil {
		w.mu.Unlock()
		return nil
	}
	data, err := w.snapshotCursorsLocked()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := save(data); err != nil {
		return fmt.Errorf("translog: persisting shard cursors: %w", err)
	}
	return nil
}

// AuditShards verifies the witness's assigned shard streams against the
// served head: every not-yet-audited stream element (up to maxPerShard
// per shard per call, 0 for unlimited) is fetched, leaf-hashed and
// inclusion-proven into the served head, then folded into the shard's
// chained cursor. A stream that regressed below an audited cursor is a
// rollback conviction; an element that fails inclusion is a split-view
// conviction — in both cases the evidence pairs the cursor's recorded
// head with the served one. This is the whole per-witness audit cost,
// proportional to the assigned slice, not the fleet (BenchmarkE20).
func (w *Witness) AuditShards(served SignedTreeHead, src ShardAuditSource, maxPerShard uint64) error {
	if err := served.Verify(w.pub); err != nil {
		return err
	}
	w.mu.Lock()
	assigned := append([]int(nil), w.assigned...)
	w.mu.Unlock()
	var errs []error
	changed := false
	for _, s := range assigned {
		adv, err := w.auditShard(s, served, src, maxPerShard)
		changed = changed || adv
		if err != nil {
			errs = append(errs, err)
		}
	}
	if changed {
		if err := w.persistCursors(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// auditShard advances one shard's cursor against the served head,
// reporting whether the cursor moved.
func (w *Witness) auditShard(shard int, served SignedTreeHead, src ShardAuditSource, maxPerShard uint64) (bool, error) {
	w.mu.Lock()
	cur := w.cursors[shard]
	if cur == nil {
		cur = &shardCursor{}
		w.cursors[shard] = cur
	}
	start, mark, lastHead := cur.Count, cur.Mark, cur.Head
	w.mu.Unlock()
	if maxPerShard == 0 {
		maxPerShard = ^uint64(0) - start
	}
	total, ents, err := src.ShardStream(shard, start, maxPerShard)
	if err != nil {
		return false, fmt.Errorf("translog: reading shard %d stream: %w", shard, err)
	}
	if total < start {
		have := lastHead
		if start == 0 {
			have = served
		}
		return false, &ConflictError{Kind: ErrRollback, Have: have, Got: served,
			Detail: fmt.Sprintf("shard %d stream regressed from %d audited to %d served entries", shard, start, total)}
	}
	pos := start
	for _, ie := range ents {
		if ie.Index >= served.Size {
			// Beyond the head we verified: audit it next round, once a
			// head covering it has been advanced to.
			break
		}
		leaf := LeafHash(ie.Canonical)
		proof, err := src.InclusionProof(ie.Index, served.Size)
		if err != nil {
			// Transport degradation: the cursor stays where it is and the
			// next round retries from the same position.
			return pos > start, fmt.Errorf("translog: proving shard %d stream position %d: %w", shard, pos, err)
		}
		if err := VerifyInclusion(leaf, ie.Index, served.Size, proof, served.RootHash); err != nil {
			have := lastHead
			if start == 0 {
				have = served
			}
			return pos > start, &ConflictError{Kind: ErrSplitView, Have: have, Got: served,
				Detail: fmt.Sprintf("shard %d stream position %d (index %d) fails inclusion against the served head at size %d",
					shard, pos, ie.Index, served.Size)}
		}
		mark = chainMark(mark, pos, ie.Index, leaf)
		pos++
	}
	if pos == start {
		return false, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if cur.Count != start {
		// A concurrent audit advanced this shard meanwhile; its chain is
		// as valid as ours and already recorded — keep it.
		return false, nil
	}
	cur.Count, cur.Mark, cur.Head = pos, mark, served
	return true, nil
}

// shardMarks snapshots the audited cursors for the gossip wire: only
// shards actually audited (count > 0) travel — an empty cursor says
// nothing and must not be mistaken for testimony.
func (w *Witness) shardMarks() []wireShardMark {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]wireShardMark, 0, len(w.cursors))
	for s, cur := range w.cursors {
		if cur.Count > 0 {
			out = append(out, wireShardMark{Shard: s, Count: cur.Count, Mark: cur.Mark})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// mergeShardMarks compares a peer witness's audit cursors with ours —
// the partition-aware half of gossip. Only shards both witnesses
// audited to the same depth are comparable: a peer with no mark for a
// shard is legitimately ignorant of it (it is not assigned the shard,
// or has not audited it yet), and a peer at a different count is merely
// ahead or behind — neither is evidence of anything. Equal count with a
// different mark is: both witnesses verified the same stream prefix
// element-by-element against log-signed heads and ended with different
// chains, so the log served diverging shard streams — a split view
// scoped to one shard, invisible to head comparison alone.
func (w *Witness) mergeShardMarks(peerName string, peerHead SignedTreeHead, marks []wireShardMark) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, m := range marks {
		if !w.assignedSet[m.Shard] {
			continue // outside our slice: we hold no first-hand chain to judge with
		}
		cur := w.cursors[m.Shard]
		if cur == nil || cur.Count == 0 || m.Count == 0 {
			continue // one side is ignorant, not conflicting
		}
		if m.Count != cur.Count {
			continue // different audit depth: chains are not comparable
		}
		if m.Mark != cur.Mark {
			return &ConflictError{Kind: ErrSplitView, Have: cur.Head, Got: peerHead,
				Detail: fmt.Sprintf("witness %q audited shard %d to %d entries with a different stream digest than ours",
					peerName, m.Shard, m.Count)}
		}
	}
	return nil
}
