package translog

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http/httptest"
	"testing"
	"time"
)

func testSigner(t *testing.T) *ecdsa.PrivateKey {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func testEntry(i int) Entry {
	return Entry{
		Type:      EntryType(i%5 + 1),
		Timestamp: int64(1700000000000 + i),
		Actor:     fmt.Sprintf("vnf-%d", i),
		Host:      "host-0",
		Serial:    fmt.Sprintf("%d", 100+i),
		Detail:    "OK",
	}
}

func TestEntryMarshalRoundTrip(t *testing.T) {
	cases := []Entry{
		{Type: EntryEnroll, Timestamp: 42, Actor: "fw-0", Host: "host-0", Serial: "7", Detail: "OK"},
		{Type: EntryRevoke, Timestamp: -1, Actor: "fw-0", Serial: "7"},
		{Type: EntryAttestFail, Timestamp: 0, Actor: "host-1", Detail: "nonce mismatch"},
		{Type: EntryProvision, Timestamp: 1, Actor: "fw", Measurement: []byte{1, 2, 3}},
	}
	for _, want := range cases {
		got, err := unmarshalEntry(want.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestEntryUnmarshalRejectsMalformed(t *testing.T) {
	full := testEntry(3).Marshal()
	// Every strict prefix must be rejected, never panic.
	for n := 0; n < len(full); n++ {
		if _, err := unmarshalEntry(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := unmarshalEntry(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), full...)
	bad[1] = 99 // unknown type
	if _, err := unmarshalEntry(bad); err == nil {
		t.Fatal("unknown type accepted")
	}
	bad = append([]byte(nil), full...)
	bad[0] = 2 // unknown version
	if _, err := unmarshalEntry(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Huge length prefix must not allocate or crash.
	huge := append([]byte{entryVersion, byte(EntryEnroll)}, make([]byte, 8)...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff)
	if _, err := unmarshalEntry(huge); err == nil {
		t.Fatal("huge length prefix accepted")
	}
}

// TestInclusionProofsExhaustive checks every leaf at every historical tree
// size up to 65 entries — covering perfect, one-past-perfect and ragged
// tree shapes.
func TestInclusionProofsExhaustive(t *testing.T) {
	tr := newTree()
	var leaves []Hash
	for i := 0; i < 65; i++ {
		leaves = append(leaves, LeafHash(testEntry(i).Marshal()))
		tr.append(leaves[i])
		n := uint64(i + 1)
		root, err := tr.rootAt(n)
		if err != nil {
			t.Fatal(err)
		}
		for m := uint64(0); m < n; m++ {
			proof, err := tr.inclusionProof(m, n)
			if err != nil {
				t.Fatalf("proof(%d,%d): %v", m, n, err)
			}
			if err := VerifyInclusion(leaves[m], m, n, proof, root); err != nil {
				t.Fatalf("verify(%d,%d): %v", m, n, err)
			}
			// The proof must not verify for a different leaf or index.
			if m > 0 {
				if VerifyInclusion(leaves[m-1], m, n, proof, root) == nil {
					t.Fatalf("wrong leaf accepted at (%d,%d)", m, n)
				}
				if n > 1 && VerifyInclusion(leaves[m], m-1, n, proof, root) == nil {
					t.Fatalf("wrong index accepted at (%d,%d)", m, n)
				}
			}
		}
	}
}

// TestConsistencyProofsExhaustive checks every (first, second) size pair
// up to 65 entries.
func TestConsistencyProofsExhaustive(t *testing.T) {
	tr := newTree()
	var roots []Hash
	roots = append(roots, emptyRoot())
	for i := 0; i < 65; i++ {
		tr.append(LeafHash(testEntry(i).Marshal()))
		root, err := tr.rootAt(uint64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, root)
	}
	for first := uint64(1); first <= 65; first++ {
		for second := first; second <= 65; second++ {
			proof, err := tr.consistencyProof(first, second)
			if err != nil {
				t.Fatalf("proof(%d,%d): %v", first, second, err)
			}
			if err := VerifyConsistency(first, second, roots[first], roots[second], proof); err != nil {
				t.Fatalf("verify(%d,%d): %v", first, second, err)
			}
			// A forked history must not verify.
			if first < second {
				if VerifyConsistency(first, second, roots[first-1], roots[second], proof) == nil {
					t.Fatalf("forged old root accepted at (%d,%d)", first, second)
				}
				if VerifyConsistency(first, second, roots[first], roots[second-1], proof) == nil {
					t.Fatalf("forged new root accepted at (%d,%d)", first, second)
				}
			}
		}
	}
}

func TestVerifyConsistencyEmptyPrefix(t *testing.T) {
	tr := newTree()
	tr.append(LeafHash([]byte("a")), LeafHash([]byte("b")))
	root, _ := tr.rootAt(2)
	if err := VerifyConsistency(0, 2, emptyRoot(), root, nil); err != nil {
		t.Fatalf("empty prefix: %v", err)
	}
	if VerifyConsistency(0, 2, root, root, nil) == nil {
		t.Fatal("non-empty root accepted for size 0")
	}
}

func TestSignedTreeHead(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	sth := l.STH()
	if sth.Size != 0 || sth.RootHash != emptyRoot() {
		t.Fatalf("bad genesis head: %+v", sth)
	}
	if err := sth.Verify(&key.PublicKey); err != nil {
		t.Fatal(err)
	}
	other := testSigner(t)
	if sth.Verify(&other.PublicKey) == nil {
		t.Fatal("foreign key accepted")
	}
	if _, err := l.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	sth2 := l.STH()
	if sth2.Size != 1 {
		t.Fatalf("size %d after one append", sth2.Size)
	}
	if err := sth2.Verify(&key.PublicKey); err != nil {
		t.Fatal(err)
	}
	// Tampered fields must break the signature.
	tampered := sth2
	tampered.Size = 2
	if tampered.Verify(&key.PublicKey) == nil {
		t.Fatal("tampered size accepted")
	}
}

func TestLogProveSerial(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	enroll := Entry{Type: EntryEnroll, Timestamp: 5, Actor: "fw-x", Host: "host-0", Serial: "4242"}
	if _, err := l.Append(enroll); err != nil {
		t.Fatal(err)
	}
	pb, err := l.ProveSerial("4242")
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Verify(&key.PublicKey); err != nil {
		t.Fatal(err)
	}
	if pb.Entry.Actor != "fw-x" {
		t.Fatalf("wrong entry: %+v", pb.Entry)
	}
	if _, err := l.ProveSerial("no-such"); err == nil {
		t.Fatal("unknown serial proved")
	}
	// Revocation flips the lookup to ErrLogRevoked.
	if _, err := l.Append(Entry{Type: EntryRevoke, Timestamp: 6, Actor: "fw-x", Serial: "4242"}); err != nil {
		t.Fatal(err)
	}
	if !l.SerialRevoked("4242") {
		t.Fatal("revocation not recorded")
	}
	if _, err := l.ProveSerial("4242"); !errors.Is(err, ErrLogRevoked) {
		t.Fatalf("want ErrLogRevoked, got %v", err)
	}
}

func TestAppenderBatchesAndFlushes(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(l, AppenderConfig{MaxBatch: 16, FlushInterval: time.Hour})
	defer a.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != n {
		t.Fatalf("size %d after flush, want %d", got, n)
	}
	// Entries retain submission order.
	for i := 0; i < n; i++ {
		e, err := l.Entry(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if e.Actor != fmt.Sprintf("vnf-%d", i) {
			t.Fatalf("entry %d out of order: %+v", i, e)
		}
	}
	sth := l.STH()
	if err := sth.Verify(&key.PublicKey); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(testEntry(0)); !errors.Is(err, ErrClosedLog) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestHTTPServerAndClient(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()
	c := NewClient(srv.URL, &key.PublicKey)

	// Remote append, then audit everything back.
	var batch []Entry
	for i := 0; i < 10; i++ {
		batch = append(batch, testEntry(i))
	}
	if err := c.Append(batch); err != nil {
		t.Fatal(err)
	}
	sth, err := c.STH()
	if err != nil {
		t.Fatal(err)
	}
	if sth.Size != 10 {
		t.Fatalf("remote size %d", sth.Size)
	}
	entries, err := c.Entries(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 || entries[3].Actor != "vnf-3" {
		t.Fatalf("entries fetch wrong: %d", len(entries))
	}
	proof, err := c.InclusionProof(3, sth.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInclusion(LeafHash(entries[3].Marshal()), 3, sth.Size, proof, sth.RootHash); err != nil {
		t.Fatal(err)
	}
	pb, err := c.ProveSerial("103")
	if err != nil {
		t.Fatal(err)
	}
	if pb.Entry.Actor != "vnf-3" {
		t.Fatalf("lookup wrong entry: %+v", pb.Entry)
	}
	if _, err := c.ProveSerial("99999"); err == nil {
		t.Fatal("unknown serial proved remotely")
	}
	// Revoked classification travels as protocol (410), not prose.
	if err := c.Append([]Entry{{Type: EntryRevoke, Timestamp: 99, Actor: "vnf-3", Serial: "103"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProveSerial("103"); !errors.Is(err, ErrLogRevoked) {
		t.Fatalf("want ErrLogRevoked over HTTP, got %v", err)
	}
	cons, err := c.ConsistencyProof(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	r4, _ := l.RootAt(4)
	if err := VerifyConsistency(4, 10, r4, sth.RootHash, cons); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessDetectsSplitViewAndRollback(t *testing.T) {
	key := testSigner(t)
	honest, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWitness(&key.PublicKey)
	fetch := func(first, second uint64) ([]Hash, error) { return honest.ConsistencyProof(first, second) }

	if err := w.Advance(honest.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := honest.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(honest.STH(), fetch); err != nil {
		t.Fatalf("honest growth rejected: %v", err)
	}

	// Split view: a second log, same signer, different history, same size.
	evil, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 109; i++ {
		if _, err := evil.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	evilFetch := func(first, second uint64) ([]Hash, error) { return evil.ConsistencyProof(first, second) }
	if err := w.Advance(evil.STH(), evilFetch); err == nil {
		t.Fatal("split view at equal size accepted")
	}
	// Split view at larger size: proofs come from the forked tree and
	// cannot connect to the witnessed root.
	for i := 109; i < 120; i++ {
		if _, err := evil.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(evil.STH(), evilFetch); err == nil {
		t.Fatal("split view at larger size accepted")
	}

	// Rollback: a signed head smaller than the witnessed one.
	old := honest.STH()
	for i := 9; i < 12; i++ {
		if _, err := honest.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(honest.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(old, fetch); err == nil {
		t.Fatal("rollback accepted")
	}

	// The witness state survived every attack: honest growth still works.
	for i := 12; i < 20; i++ {
		if _, err := honest.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Advance(honest.STH(), fetch); err != nil {
		t.Fatalf("honest growth after attacks rejected: %v", err)
	}
}

// TestEntriesCountOverflow: a hostile count must clamp, not wrap the
// slice bounds (reachable from the unauthenticated HTTP read endpoint).
func TestEntriesCountOverflow(t *testing.T) {
	l, err := NewLog(testSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Entries(1, ^uint64(0)); len(got) != 2 {
		t.Fatalf("overflowing count returned %d entries", len(got))
	}
	if got := l.Entries(^uint64(0), 1); got != nil {
		t.Fatalf("out-of-range start returned %d entries", len(got))
	}
}

// failingSigner errors after a set number of signatures.
type failingSigner struct {
	*ecdsa.PrivateKey
	remaining int
}

func (f *failingSigner) Sign(rand io.Reader, digest []byte, opts crypto.SignerOpts) ([]byte, error) {
	if f.remaining <= 0 {
		return nil, fmt.Errorf("signer unavailable")
	}
	f.remaining--
	return f.PrivateKey.Sign(rand, digest, opts)
}

// TestAppendBatchRollsBackOnSignFailure: a failed commit must leave no
// trace — no entries, no tree growth, and later appends still verify.
func TestAppendBatchRollsBackOnSignFailure(t *testing.T) {
	key := testSigner(t)
	fs := &failingSigner{PrivateKey: key, remaining: 3} // genesis + 2 commits
	l, err := NewLog(fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testEntry(1)); err != nil {
		t.Fatal(err)
	}
	sthBefore := l.STH()
	if _, err := l.AppendBatch([]Entry{testEntry(2), testEntry(3)}); err == nil {
		t.Fatal("append with dead signer succeeded")
	}
	after := l.STH()
	if l.Size() != 2 || after.Size != sthBefore.Size || after.RootHash != sthBefore.RootHash {
		t.Fatalf("failed commit left state: size=%d head=%d", l.Size(), after.Size)
	}
	// Signer recovers; the log must continue consistently.
	fs.remaining = 10
	if _, err := l.Append(Entry{Type: EntryEnroll, Timestamp: 9, Actor: "fw-r", Serial: "777"}); err != nil {
		t.Fatal(err)
	}
	sth := l.STH()
	if sth.Size != 3 {
		t.Fatalf("size %d after recovery", sth.Size)
	}
	proof, err := l.ConsistencyProof(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsistency(2, 3, sthBefore.RootHash, sth.RootHash, proof); err != nil {
		t.Fatalf("post-rollback history inconsistent: %v", err)
	}
	pb, err := l.ProveSerial("777")
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Verify(&key.PublicKey); err != nil {
		t.Fatal(err)
	}
}

// certWithSerial builds the minimal certificate shape the checker reads.
func certWithSerial(n int64) *x509.Certificate {
	return &x509.Certificate{SerialNumber: big.NewInt(n)}
}

func TestCredentialChecker(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Type: EntryEnroll, Timestamp: 1, Actor: "fw-0", Serial: "77"}); err != nil {
		t.Fatal(err)
	}
	check := NewCredentialChecker(&key.PublicKey, l)
	if err := check(certWithSerial(77)); err != nil {
		t.Fatalf("logged credential rejected: %v", err)
	}
	if err := check(certWithSerial(78)); err == nil {
		t.Fatal("unlogged credential accepted")
	}
	if _, err := l.Append(Entry{Type: EntryRevoke, Timestamp: 2, Actor: "fw-0", Serial: "77"}); err != nil {
		t.Fatal(err)
	}
	if err := check(certWithSerial(77)); err == nil {
		t.Fatal("revoked credential accepted")
	}
}
