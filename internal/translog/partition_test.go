package translog

import (
	"crypto/ecdsa"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vnfguard/internal/obs"
)

// TestWitnessPartitionDeterminism pins the property every component
// leans on: the assignment is a pure function of (shards, witness set,
// quorum). Input order, duplicates and rebuilds must not move a single
// shard.
func TestWitnessPartitionDeterminism(t *testing.T) {
	base := []string{"w3", "w0", "w2", "w1", "w4"}
	shuffled := []string{"w1", "w4", "w0", "w0", "w3", "w2", "w2"}
	a, err := NewWitnessPartition(16, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWitnessPartition(16, shuffled, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names() {
		if !reflect.DeepEqual(a.AssignedShards(name), b.AssignedShards(name)) {
			t.Fatalf("assignment for %q depends on input order: %v vs %v",
				name, a.AssignedShards(name), b.AssignedShards(name))
		}
	}
	// A restart derives the same partition through the pinned config.
	dir := testStatedir(t)
	cfg := PartitionConfig{Shards: 16, Quorum: 3, Witnesses: shuffled}
	if err := SavePartitionConfig(dir, cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPartitionConfig(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := loaded.Partition()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names() {
		if !reflect.DeepEqual(a.AssignedShards(name), c.AssignedShards(name)) {
			t.Fatalf("pinned-config restart diverged for %q", name)
		}
	}
}

// TestWitnessPartitionCoverage: every shard must be audited by exactly
// Q distinct witnesses, the two assignment views must agree, and the
// load must stay balanced — no witness audits more than Q shards beyond
// the lightest one.
func TestWitnessPartitionCoverage(t *testing.T) {
	cases := []struct{ shards, witnesses, quorum int }{
		{1, 1, 1}, {8, 8, 3}, {8, 3, 2}, {16, 8, 3}, {64, 8, 8}, {5, 12, 4}, {256, 16, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("s%d_n%d_q%d", tc.shards, tc.witnesses, tc.quorum), func(t *testing.T) {
			names := make([]string, tc.witnesses)
			for i := range names {
				names[i] = fmt.Sprintf("w%02d", i)
			}
			p, err := NewWitnessPartition(tc.shards, names, tc.quorum)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < tc.shards; s++ {
				who := p.WitnessesFor(s)
				seen := make(map[string]bool, len(who))
				for _, name := range who {
					if seen[name] {
						t.Fatalf("shard %d assigned twice to %q", s, name)
					}
					seen[name] = true
					if !p.Covers(name, s) {
						t.Fatalf("WitnessesFor(%d) includes %q but Covers disagrees", s, name)
					}
				}
				if len(who) != tc.quorum {
					t.Fatalf("shard %d covered by %d witnesses, want %d", s, len(who), tc.quorum)
				}
			}
			minLoad, maxLoad := tc.shards*tc.quorum, 0
			total := 0
			for _, name := range p.Names() {
				n := len(p.AssignedShards(name))
				total += n
				if n < minLoad {
					minLoad = n
				}
				if n > maxLoad {
					maxLoad = n
				}
			}
			if total != tc.shards*tc.quorum {
				t.Fatalf("total assignments %d, want shards*quorum = %d", total, tc.shards*tc.quorum)
			}
			if maxLoad-minLoad > tc.quorum {
				t.Fatalf("unbalanced assignment: loads span %d..%d", minLoad, maxLoad)
			}
		})
	}
}

// TestWitnessPartitionErrors: every unsatisfiable shape is refused with
// the errors.Is-able sentinel, never a panic or a silent partial
// partition.
func TestWitnessPartitionErrors(t *testing.T) {
	cases := []struct {
		name      string
		shards    int
		witnesses []string
		quorum    int
	}{
		{"zero-shards", 0, []string{"w0"}, 1},
		{"negative-shards", -4, []string{"w0"}, 1},
		{"no-witnesses", 8, nil, 1},
		{"zero-quorum", 8, []string{"w0", "w1"}, 0},
		{"quorum-exceeds-set", 8, []string{"w0", "w1"}, 3},
		{"quorum-exceeds-deduped-set", 8, []string{"w0", "w0", "w0"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewWitnessPartition(tc.shards, tc.witnesses, tc.quorum); !errors.Is(err, ErrPartitionInvalid) {
				t.Fatalf("got %v, want ErrPartitionInvalid", err)
			}
		})
	}
}

// TestWitnessPartitionCoversHost ties the audit-plane assignment to the
// write-plane mapping: CoversHost must agree with ShardOf exactly.
func TestWitnessPartitionCoversHost(t *testing.T) {
	names := []string{"w0", "w1", "w2", "w3"}
	p, err := NewWitnessPartition(8, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		host := fmt.Sprintf("host-%d", i)
		shard := ShardOf(host, 8)
		for _, name := range names {
			if got, want := p.CoversHost(name, host), p.Covers(name, shard); got != want {
				t.Fatalf("CoversHost(%q, %q)=%v but Covers(%q, %d)=%v", name, host, got, name, shard, want)
			}
		}
	}
}

// TestPartitionConfigRoundTrip pins the statedir contract: a missing
// pin reads as os.ErrNotExist (an unpartitioned deployment), junk is
// ErrPartitionInvalid, and an unsatisfiable shape is refused at save
// time so a broken pin can never be written.
func TestPartitionConfigRoundTrip(t *testing.T) {
	dir := testStatedir(t)
	if _, err := LoadPartitionConfig(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing pin: got %v, want os.ErrNotExist", err)
	}
	if err := SavePartitionConfig(dir, PartitionConfig{Shards: 8, Quorum: 9, Witnesses: []string{"w0"}}); !errors.Is(err, ErrPartitionInvalid) {
		t.Fatalf("unsatisfiable pin saved: %v", err)
	}
	if err := dir.Write("witness-partition.json", []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPartitionConfig(dir); !errors.Is(err, ErrPartitionInvalid) {
		t.Fatalf("junk pin: got %v, want ErrPartitionInvalid", err)
	}
	want := PartitionConfig{Shards: 8, Quorum: 3, Witnesses: []string{"w0", "w1", "w2", "w3"}}
	if err := SavePartitionConfig(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPartitionConfig(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the pin: %+v != %+v", got, want)
	}
}

// auditedWitness builds a partitioned witness that has advanced on the
// log's head and fully audited its assigned shards.
func auditedWitness(t *testing.T, l *Log, pub *ecdsa.PublicKey, total int, assigned []int) *Witness {
	t.Helper()
	w := NewWitness(pub)
	w.SetAssignedShards(total, assigned)
	fetch := func(a, b uint64) ([]Hash, error) { return l.ConsistencyProof(a, b) }
	if err := w.Advance(l.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	if err := w.AuditShards(l.STH(), l, 0); err != nil {
		t.Fatal(err)
	}
	return w
}

// shardedTestLog builds an in-memory log with shard streams over
// hosts*perHost entries.
func shardedTestLog(t *testing.T, shards, hosts, perHost int) (*Log, *ecdsa.PrivateKey) {
	t.Helper()
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.EnableShardStreams(shards); err != nil {
		t.Fatal(err)
	}
	var batch []Entry
	for h := 0; h < hosts; h++ {
		for i := 0; i < perHost; i++ {
			batch = append(batch, Entry{
				Type: EntryAttestOK, Timestamp: int64(1700000000000 + h*perHost + i),
				Actor: fmt.Sprintf("fw-%d-%d", h, i), Host: fmt.Sprintf("host-%d", h), Detail: "OK",
			})
		}
	}
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	return l, key
}

// TestShardMarksIgnoranceIsNotEvidence is the satellite false-conviction
// regression: under partitioning a peer that holds no mark for a shard
// — or a mark at a different audit depth — is legitimately ignorant or
// merely behind, never split-view evidence. Only an equal-depth chain
// divergence on a shard WE audit first-hand may convict.
func TestShardMarksIgnoranceIsNotEvidence(t *testing.T) {
	l, key := shardedTestLog(t, 4, 8, 5)
	w := auditedWitness(t, l, &key.PublicKey, 4, []int{0, 1})
	head, _ := w.Last()
	ours := w.shardMarks()
	if len(ours) == 0 {
		t.Fatal("audited witness gossips no marks")
	}

	// A peer with NO marks at all (a freshly started witness, or one
	// assigned a disjoint slice): nothing to judge.
	if err := w.mergeShardMarks("peer", head, nil); err != nil {
		t.Fatalf("markless peer convicted: %v", err)
	}
	// A peer reporting only a shard outside our assignment, with a mark
	// we could never have computed: outside our slice we hold no
	// first-hand chain, so it is not evidence either way.
	foreign := []wireShardMark{{Shard: 3, Count: ours[0].Count, Mark: Hash{0xde, 0xad}}}
	if err := w.mergeShardMarks("peer", head, foreign); err != nil {
		t.Fatalf("foreign-shard mark convicted: %v", err)
	}
	// A peer behind us on our own shard, mark bytes diverging from our
	// cursor's current value — chains at different depths are simply not
	// comparable.
	lagging := []wireShardMark{{Shard: ours[0].Shard, Count: ours[0].Count - 1, Mark: Hash{0xbe, 0xef}}}
	if err := w.mergeShardMarks("peer", head, lagging); err != nil {
		t.Fatalf("lagging peer convicted: %v", err)
	}
	// A zero-count mark must read as ignorance even if a buggy or
	// malicious peer ships one explicitly.
	empty := []wireShardMark{{Shard: ours[0].Shard, Count: 0, Mark: Hash{0x01}}}
	if err := w.mergeShardMarks("peer", head, empty); err != nil {
		t.Fatalf("zero-count mark convicted: %v", err)
	}
	// An honest peer that audited the same slice agrees chain-for-chain.
	if err := w.mergeShardMarks("peer", head, ours); err != nil {
		t.Fatalf("identical marks convicted: %v", err)
	}

	// The one case that IS evidence: same shard, same depth, different
	// chain — the log served the two witnesses diverging stream content.
	diverged := []wireShardMark{{Shard: ours[0].Shard, Count: ours[0].Count, Mark: Hash{0x66}}}
	err := w.mergeShardMarks("peer", head, diverged)
	var ce *ConflictError
	if !errors.As(err, &ce) || !errors.Is(err, ErrSplitView) {
		t.Fatalf("equal-depth divergent chains not convicted: %v", err)
	}
	if ce.Have.Size != head.Size {
		t.Fatalf("conviction evidence lost the audited head: %+v", ce)
	}
}

// TestMergeEqualHeadTiebreakKeepsAuditState is the other half of the
// satellite fix: the equal-size tiebreak (newest timestamp wins) is a
// freshness refinement, not a history change — adopting a re-signed
// equal head must never disturb the shard audit cursors a partitioned
// witness has built, and a stale re-served head must not be treated as
// an attack.
func TestMergeEqualHeadTiebreakKeepsAuditState(t *testing.T) {
	l, key := shardedTestLog(t, 4, 8, 5)
	w := auditedWitness(t, l, &key.PublicKey, 4, []int{0, 1})
	head, _ := w.Last()
	marksBefore := w.shardMarks()
	fetch := func(a, b uint64) ([]Hash, error) { return l.ConsistencyProof(a, b) }

	resign := func(ts int64) SignedTreeHead {
		t.Helper()
		sth := SignedTreeHead{Size: head.Size, RootHash: head.RootHash, Timestamp: ts}
		digest := sth.signingDigest()
		sig, err := ecdsa.SignASN1(rand.Reader, key, digest[:])
		if err != nil {
			t.Fatal(err)
		}
		sth.Signature = sig
		return sth
	}

	// Stale re-serving: benign, not adopted, no conviction.
	if err := w.Merge(resign(head.Timestamp-60_000), fetch); err != nil {
		t.Fatalf("stale equal head treated as an attack: %v", err)
	}
	if got, _ := w.Last(); got.Timestamp != head.Timestamp {
		t.Fatalf("stale head adopted: %d → %d", head.Timestamp, got.Timestamp)
	}
	// Fresher signature over the identical tree: adopted — and the audit
	// chains survive untouched, because nothing about history changed.
	newer := resign(head.Timestamp + 60_000)
	if err := w.Merge(newer, fetch); err != nil {
		t.Fatalf("fresh equal head refused: %v", err)
	}
	if got, _ := w.Last(); got.Timestamp != newer.Timestamp {
		t.Fatalf("fresh head not adopted: %d, want %d", got.Timestamp, newer.Timestamp)
	}
	if !reflect.DeepEqual(w.shardMarks(), marksBefore) {
		t.Fatal("equal-head adoption disturbed the shard audit cursors")
	}
	// And auditing against the re-signed head finds nothing new to do.
	if err := w.AuditShards(newer, l, 0); err != nil {
		t.Fatalf("audit against re-signed head: %v", err)
	}
	if !reflect.DeepEqual(w.shardMarks(), marksBefore) {
		t.Fatal("re-audit after tiebreak adoption moved the cursors")
	}
}

// TestGossipPartitionedPeersNoFalseConviction runs the pool-level
// regression: two partitioned witnesses with disjoint slices — each
// fully audited on its own — exchange views in both directions and must
// not convict an honest log, while a third witness sharing a slice
// corroborates chains instead of conflicting.
func TestGossipPartitionedPeersNoFalseConviction(t *testing.T) {
	l, key := shardedTestLog(t, 4, 8, 5)
	logSrv := httptest.NewServer(Handler(l))
	defer logSrv.Close()
	part, err := NewWitnessPartition(4, []string{"wa", "wb"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) (*GossipPool, string) {
		p, url := testPool(t, name, &key.PublicKey, logSrv.URL)
		if err := p.EnablePartition(part, nil, nil); err != nil {
			t.Fatal(err)
		}
		return p, url
	}
	pa, ua := mk("wa")
	pb, ub := mk("wb")
	pa.AddPeer(NewClient(ub, &key.PublicKey))
	pb.AddPeer(NewClient(ua, &key.PublicKey))
	if got := append(part.AssignedShards("wa"), part.AssignedShards("wb")...); len(got) != 4 {
		t.Fatalf("Q=1 over 2 witnesses should split 4 shards disjointly, got %v", got)
	}
	for round := 0; round < 2; round++ {
		for _, p := range []*GossipPool{pa, pb} {
			if err := p.Exchange(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if pa.Conflict() != nil || pb.Conflict() != nil {
		t.Fatalf("disjoint-slice witnesses convicted an honest log: %v / %v", pa.Conflict(), pb.Conflict())
	}

	// A third witness sharing wa's slice: equal-depth marks agree.
	part3, err := NewWitnessPartition(4, []string{"wa", "wb", "wc"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := testPool(t, "wc", &key.PublicKey, logSrv.URL)
	if err := pc.EnablePartition(part3, nil, nil); err != nil {
		t.Fatal(err)
	}
	pc.AddPeer(NewClient(ua, &key.PublicKey))
	for round := 0; round < 2; round++ {
		if err := pc.Exchange(); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Conflict() != nil || pa.Conflict() != nil {
		t.Fatalf("overlapping honest witnesses convicted each other: %v / %v", pc.Conflict(), pa.Conflict())
	}
}

// TestCosignAggregationNeverBlocksSequencerCommit extends the scrape
// stress test to the partitioned audit plane: 8 partitioned witnesses
// gossip (auditing their slices and co-signing) while the sharded
// sequencer commits and a Prometheus scrape loop runs. The collector is
// deliberately independent of the log's commit lock — pinned directly
// by holding l.mu while Submit and Cosigned complete — and the whole
// workload must end with a quorum co-signed head and zero convictions.
func TestCosignAggregationNeverBlocksSequencerCommit(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{Shards: 8, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.EnableShardStreams(8); err != nil {
		t.Fatal(err)
	}

	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	part, err := NewWitnessPartition(8, names, 3)
	if err != nil {
		t.Fatal(err)
	}
	wd := testStatedir(t)
	keys := make(map[string]*WitnessKey, len(names))
	for _, name := range names {
		if keys[name], err = OpenWitnessKey(wd, name); err != nil {
			t.Fatal(err)
		}
	}
	roster, err := LoadWitnessRoster(wd, 3)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCosignCollector(&key.PublicKey, roster)
	mux := http.NewServeMux()
	cosignH := CosignHandler(col)
	mux.Handle("/translog/v1/cosign", cosignH)
	mux.Handle("/translog/v1/cosigned", cosignH)
	mux.Handle("/", Handler(l))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	pools := make([]*GossipPool, len(names))
	for i, name := range names {
		w := NewWitness(&key.PublicKey)
		pools[i] = NewGossipPool(name, w, NewClient(srv.URL, &key.PublicKey))
		if err := pools[i].EnablePartition(part, keys[name], nil); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var exchanges, scrapes atomic.Int64
	for _, p := range pools {
		wg.Add(1)
		go func(p *GossipPool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Transport races with commits are expected mid-storm;
				// convictions are checked at the end.
				_ = p.Exchange()
				exchanges.Add(1)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := obs.Default().WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			scrapes.Add(1)
		}
	}()

	sa := NewShardedAppender(l, ShardedAppenderConfig{Shards: 8, FlushInterval: time.Millisecond})
	const entries = 256
	for i := 0; i < entries; i++ {
		e := Entry{Type: EntryAttestOK, Actor: "vnf", Host: fmt.Sprintf("host-%d", i%8), Detail: "OK"}
		if err := sa.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}

	// The direct pin: cosign aggregation must not touch the commit lock.
	// With l.mu held exclusively, a submission and a quorum read must
	// still complete.
	l.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		head := l.sth // commit lock is held by us; direct read is safe
		ws, err := keys[names[0]].Cosign(head)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := col.Submit(head, ws); err != nil && !errors.Is(err, ErrDuplicateWitness) {
			t.Error(err)
		}
		if _, err := col.Cosigned(); err != nil && !errors.Is(err, ErrQuorumNotReached) {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cosign aggregation blocked behind the commit lock")
	}
	l.mu.Unlock()

	close(stop)
	wg.Wait()
	if scrapes.Load() == 0 || exchanges.Load() == 0 {
		t.Fatalf("storm did not overlap: %d scrapes, %d exchanges", scrapes.Load(), exchanges.Load())
	}
	for i, p := range pools {
		if p.Conflict() != nil {
			t.Fatalf("witness %d convicted an honest log mid-storm: %v", i, p.Conflict())
		}
	}
	// Quiesced: one final round audits everyone up to the final head and
	// the collector must assemble a quorum artifact for it.
	final := l.STH()
	for _, p := range pools {
		if err := p.Exchange(); err != nil {
			t.Fatal(err)
		}
	}
	ch, err := col.Cosigned()
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Verify(&key.PublicKey, roster); err != nil {
		t.Fatal(err)
	}
	if ch.STH.Size != final.Size {
		t.Fatalf("quorum artifact at size %d, want final size %d", ch.STH.Size, final.Size)
	}
}
