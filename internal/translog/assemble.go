package translog

import (
	"container/list"
	"fmt"
	"sync"
)

// Client-side proof assembly: instead of asking the server to compute
// every audit path, an auditor fetches immutable tiles — each cacheable
// forever, by any HTTP front end and by the assembler's own LRU — and
// folds proofs locally with the same RFC 6962 recursions the server
// uses (merkle.go, parameterized over a nodeFunc). Tiles carry no
// authority: an assembled proof is only believed once it verifies
// against a signed tree head, so a cache, a CDN or a hostile mirror can
// serve tiles without joining the trust base — at worst a bad tile
// makes verification fail, never succeed wrongly.

// TileSource supplies Merkle tiles: the in-process *Log or the HTTP
// *Client both qualify, so the assembler can sit inside the
// Verification Manager or on a remote auditor with the same code.
type TileSource interface { //lint:allow unusedexport the assembler's pluggable fetch seam; external auditors implement it over mirrors/CDNs
	Tile(level, index uint64, width int) (*Tile, error)
}

// tileKey addresses one cached tile. Width participates because a
// partial tile's content is pinned by its explicit width (the level's
// right edge grows, but the named prefix never changes).
type tileKey struct {
	level, index uint64
	width        int
}

// cachedTile is one LRU entry: the tile's hashes expanded into every
// within-tile level, so a node lookup is an array read instead of a
// hash fold. lvl[r][j] is the root over tile hashes [j·2^r, (j+1)·2^r)
// — tree level L·TileHeight+r — computed once per cached tile; the ≤255
// interior hashes per tile amortise across every proof that touches it,
// which is what makes warm assembly beat a server round-trip by an
// order of magnitude.
type cachedTile struct {
	key tileKey
	lvl [][]Hash
}

// expandTile folds a tile's interior levels. Only complete pairs fold:
// a partial tile exposes exactly the complete subtrees its width
// covers, which is all the proof recursions ever ask for.
func expandTile(t *Tile) *cachedTile {
	ct := &cachedTile{lvl: make([][]Hash, 0, TileHeight+1)}
	ct.lvl = append(ct.lvl, t.Hashes)
	for r := 1; r <= TileHeight; r++ {
		below := ct.lvl[r-1]
		if len(below) < 2 {
			break
		}
		up := make([]Hash, len(below)/2)
		for j := range up {
			up[j] = nodeHash(below[2*j], below[2*j+1])
		}
		ct.lvl = append(ct.lvl, up)
	}
	return ct
}

// TileAssembler computes inclusion proofs, consistency proofs and roots
// from tiles, with an LRU cache of expanded tiles. Safe for concurrent
// use.
type TileAssembler struct { //lint:allow unusedexport README-documented offline-auditor building block; the proof-source wrappers below are its in-tree users
	src TileSource

	mu           sync.Mutex
	cap          int
	cache        map[tileKey]*list.Element
	order        *list.List // front = most recently used; values are *cachedTile
	hits, misses uint64
}

// defaultTileCache bounds the LRU when the caller passes no capacity:
// 256 expanded tiles ≈ 4 MiB of hashes, covering a 2^16-entry working
// set at level 0 alone.
const defaultTileCache = 256

// NewTileAssembler builds an assembler over src caching up to
// cacheTiles expanded tiles (≤ 0 picks the default).
func NewTileAssembler(src TileSource, cacheTiles int) *TileAssembler { //lint:allow unusedexport README-documented offline-auditor entry point (examples/transparency-audit drives it)
	if cacheTiles <= 0 {
		cacheTiles = defaultTileCache
	}
	return &TileAssembler{
		src:   src,
		cap:   cacheTiles,
		cache: make(map[tileKey]*list.Element),
		order: list.New(),
	}
}

// Stats reports cache hits and misses since construction (the bench's
// cache-hit-ratio column).
func (a *TileAssembler) Stats() (hits, misses uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hits, a.misses
}

// tile returns the expanded tile for key, fetching through the source
// on a miss.
func (a *TileAssembler) tile(key tileKey) (*cachedTile, error) {
	a.mu.Lock()
	if el, ok := a.cache[key]; ok {
		a.hits++
		a.order.MoveToFront(el)
		ct := el.Value.(*cachedTile)
		a.mu.Unlock()
		return ct, nil
	}
	a.misses++
	a.mu.Unlock()
	// Fetch outside the lock: a slow source must not serialise every
	// other proof behind it. A racing duplicate fetch is harmless — the
	// tiles are byte-identical.
	t, err := a.src.Tile(key.level, key.index, key.width)
	if err != nil {
		return nil, err
	}
	if t.Level != key.level || t.Index != key.index || t.Width() != key.width {
		return nil, fmt.Errorf("translog: tile source returned (%d, %d) width %d for (%d, %d) width %d",
			t.Level, t.Index, t.Width(), key.level, key.index, key.width)
	}
	ct := expandTile(t)
	ct.key = key
	a.mu.Lock()
	defer a.mu.Unlock()
	if el, ok := a.cache[key]; ok {
		a.order.MoveToFront(el)
		return el.Value.(*cachedTile), nil
	}
	a.cache[key] = a.order.PushFront(ct)
	for a.order.Len() > a.cap {
		el := a.order.Back()
		a.order.Remove(el)
		delete(a.cache, el.Value.(*cachedTile).key)
	}
	return ct, nil
}

// node returns the nodeFunc resolving complete-subtree hashes for a
// tree of size n from tiles. The recursions only ever ask for complete
// subtrees, and a complete subtree at tree level k folds from ≤
// TileWidth aligned hashes inside exactly one tile at tile level
// k/TileHeight — pre-folded by expandTile, so the lookup is O(1).
func (a *TileAssembler) node(n uint64) nodeFunc {
	return func(k int, idx uint64) (Hash, error) {
		level := uint64(k) / TileHeight
		r := uint64(k) % TileHeight
		nodes := tileNodeCount(n, level)
		index := (idx << r) / TileWidth
		width := TileWidth
		if rem := nodes - index*TileWidth; rem < TileWidth {
			width = int(rem)
		}
		ct, err := a.tile(tileKey{level: level, index: index, width: width})
		if err != nil {
			return Hash{}, err
		}
		j := idx - (index << (TileHeight - r))
		if int(r) >= len(ct.lvl) || j >= uint64(len(ct.lvl[r])) {
			return Hash{}, fmt.Errorf("%w: node (%d, %d) for size %d", ErrTileRange, k, idx, n)
		}
		return ct.lvl[r][j], nil
	}
}

// InclusionProof assembles the RFC 6962 audit path PATH(index, D[size])
// from tiles.
func (a *TileAssembler) InclusionProof(index, size uint64) ([]Hash, error) {
	if index >= size {
		return nil, fmt.Errorf("%w: index %d at size %d", ErrTileRange, index, size)
	}
	return merklePath(index, 0, size, a.node(size))
}

// ConsistencyProof assembles PROOF(first, D[second]) from tiles,
// mirroring Log.ConsistencyProof's contract (first == 0 needs no
// proof).
func (a *TileAssembler) ConsistencyProof(first, second uint64) ([]Hash, error) {
	if first > second {
		return nil, fmt.Errorf("%w: consistency %d → %d", ErrTileRange, first, second)
	}
	if first == 0 || first == second {
		return nil, nil
	}
	return merkleSubproof(first, 0, second, true, a.node(second))
}

// RootAt recomputes MTH(D[0:size]) from tiles — what an offline auditor
// checks a signed head's root against.
func (a *TileAssembler) RootAt(size uint64) (Hash, error) {
	if size == 0 {
		return emptyRoot(), nil
	}
	return merkleSubtree(0, size, a.node(size))
}

// TileProofSource is a ProofSource that assembles inclusion proofs from
// tiles instead of asking the server to compute them: the lookup
// endpoint resolves serial → (index, entry, head) with ?proof=0, and
// the audit path folds locally from the LRU — giving the controller a
// local proof cache keyed by tile, with zero proof computation on the
// sequencer's side.
type TileProofSource struct {
	lookup func(serial string) (*ProofBundle, error)
	asm    *TileAssembler
}

// NewTileProofSource builds a tile-assembling ProofSource over a remote
// log server. cacheTiles bounds the assembler LRU (≤ 0: default).
func NewTileProofSource(c *Client, cacheTiles int) *TileProofSource {
	return &TileProofSource{lookup: c.lookupBundle, asm: NewTileAssembler(c, cacheTiles)}
}

// NewLogTileProofSource builds a tile-assembling ProofSource over an
// in-process log — the Verification Manager's own controller hook goes
// through the same assembler as a remote auditor, so its proof reads
// ride the tile cache instead of per-request audit-path computation.
func NewLogTileProofSource(l *Log, cacheTiles int) *TileProofSource {
	return &TileProofSource{lookup: l.lookupBundle, asm: NewTileAssembler(l, cacheTiles)}
}

// ProveSerial implements ProofSource: resolve the serial, then assemble
// the audit path from tiles. The caller (NewCredentialChecker) verifies
// the finished bundle against the log key, so a stale or hostile tile
// source can only cause a verification failure, never a false pass.
func (ts *TileProofSource) ProveSerial(serial string) (*ProofBundle, error) {
	pb, err := ts.lookup(serial)
	if err != nil {
		return nil, err
	}
	proof, err := ts.asm.InclusionProof(pb.Index, pb.STH.Size)
	if err != nil {
		return nil, err
	}
	pb.Proof = proof
	return pb, nil
}

// ConsistencyProof assembles the proof that size first is a prefix of
// size second from tiles (a ConsistencyProver) — what the quorum
// credential checker uses to bridge a proof bundle's head to the quorum
// co-signed head without another server-computed proof.
func (ts *TileProofSource) ConsistencyProof(first, second uint64) ([]Hash, error) {
	return ts.asm.ConsistencyProof(first, second)
}

// Stats reports the underlying assembler's tile-cache hits and misses.
func (ts *TileProofSource) Stats() (hits, misses uint64) { return ts.asm.Stats() }
