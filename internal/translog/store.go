package translog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Durable-state errors. Recovery distinguishes the three ways a statedir
// can disagree with its own signed tree head, because operators react
// differently to each: corruption wants a restore from backup, rollback
// and tamper want an incident response — a restart must never quietly
// re-serve a rewritten history (that would be exactly the attack the
// witness exists to catch, executed locally).
var (
	// ErrStateCorrupt reports a damaged record: a checksum mismatch or an
	// impossible frame somewhere other than a cleanly torn tail.
	ErrStateCorrupt = errors.New("translog: on-disk log state corrupt")
	// ErrStateRollback reports fewer durable entries than the persisted
	// signed tree head covers — committed history was deleted.
	ErrStateRollback = errors.New("translog: on-disk log state rolled back")
	// ErrStateTampered reports durable entries whose recomputed Merkle
	// root contradicts the persisted signed tree head — history was
	// rewritten in place.
	ErrStateTampered = errors.New("translog: on-disk log state tampered")
)

// Append-path errors the HTTP layer maps to status codes, so a producer
// can tell "this batch is unacceptable" (drop it) from "the store is
// down" (retry later).
var (
	// ErrEntryTooLarge reports an entry whose encoding exceeds the WAL
	// record frame limit; it is refused before any byte is written and
	// the store stays healthy.
	ErrEntryTooLarge = errors.New("translog: entry exceeds record size limit")
	// ErrStoreFailed reports a latched durable-store failure (or a closed
	// store): every append fails until the store is reopened.
	ErrStoreFailed = errors.New("translog: durable store unavailable")
)

// sthFileName holds the latest durably persisted signed tree head.
const sthFileName = "sth.json"

// StoreConfig tunes the durable store.
type StoreConfig struct {
	// SegmentMaxBytes rotates to a fresh segment file once the active one
	// reaches this size (default 1 MiB).
	SegmentMaxBytes int64
	// NoSync skips fsync on the append path. Only for tests and
	// benchmarks that measure the non-durability costs; a production log
	// without fsync can lose acknowledged entries on power failure.
	NoSync bool
	// Anchors are additional trust anchors layered over the built-in
	// persisted-head check (anchor.go): each is verified against the
	// recovered state at open and notified of every committed head, in
	// order. Anchors that implement io.Closer are closed with the store.
	Anchors []TrustAnchor
}

// Store is the write-ahead, append-only on-disk half of a durable Log:
// length-prefixed checksummed records in size-capped segment files plus
// an atomically replaced latest signed tree head. All writes arrive
// pre-batched from Log.AppendBatch, so one store call — and therefore
// one fsync of the active segment and one of the tree head — covers a
// whole appender batch.
type Store struct {
	dir string
	cfg StoreConfig
	// anchors is the full trust-anchor chain, the built-in STHAnchor
	// first: every committed head flows through each of them.
	anchors []TrustAnchor

	mu sync.Mutex
	// active is the open tail segment (nil until the first append or
	// when the last recovery ended exactly on a rotation boundary).
	active     *os.File
	activeSize int64
	// size is the number of durably framed entries.
	size uint64
	// failed latches the first write error: after a partial batch write
	// the in-memory log and the disk may disagree, so the store refuses
	// further appends instead of compounding the divergence.
	failed error
}

// openStoreDir creates the store directory and returns a Store positioned
// at the given recovered size, resuming the segment at tailFirst (whose
// intact length is tailClean) when one exists. anchors is the verified
// trust-anchor chain (built-in STHAnchor first).
func openStoreDir(dir string, cfg StoreConfig, anchors []TrustAnchor, size uint64, tailFirst uint64, tailClean int64, hasTail bool) (*Store, error) {
	if cfg.SegmentMaxBytes <= 0 {
		cfg.SegmentMaxBytes = defaultSegmentMaxBytes
	}
	s := &Store{dir: dir, cfg: cfg, anchors: anchors, size: size}
	if hasTail {
		path := filepath.Join(dir, segmentName(tailFirst))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return nil, fmt.Errorf("translog: reopening tail segment: %w", err)
		}
		s.active, s.activeSize = f, tailClean
	}
	return s, nil
}

// appendBatch durably frames the batch payloads and then commits sth to
// every trust anchor. Ordering matters for crash consistency: records
// first (fsynced), tree head second — a crash in between leaves extra
// durable entries beyond the head, which recovery accepts and re-signs;
// the reverse order could leave a head signing entries that were never
// written. The anchor chain runs under the same lock, so a batch is
// acknowledged only once every anchor (persisted head, witness head,
// sealed counter) has recorded it.
func (s *Store) appendBatch(payloads [][]byte, sth SignedTreeHead) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	// Enforce the recovery-side frame bound before anything is written:
	// an oversized record would commit durably but then fail every future
	// open with ErrStateCorrupt — a log that bricks itself. Refusing here
	// keeps the in-memory and on-disk state consistent (the caller rolls
	// the batch back) without latching the store failed.
	for _, p := range payloads {
		if len(p) > maxRecordBytes {
			return fmt.Errorf("%w: encoding is %d bytes, record limit %d", ErrEntryTooLarge, len(p), maxRecordBytes)
		}
	}
	if err := s.writeRecords(payloads); err != nil {
		s.failed = fmt.Errorf("%w: %w", ErrStoreFailed, err)
		return s.failed
	}
	if err := s.commitHeadLocked(sth); err != nil {
		s.failed = fmt.Errorf("%w: %w", ErrStoreFailed, err)
		return s.failed
	}
	s.size += uint64(len(payloads))
	return nil
}

// commitHead runs the anchor chain for a head committed outside a batch
// append (the open-time re-sign of a stale head).
func (s *Store) commitHead(sth SignedTreeHead) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitHeadLocked(sth)
}

// commitHeadLocked records sth with every trust anchor, in order.
// Callers hold s.mu.
func (s *Store) commitHeadLocked(sth SignedTreeHead) error {
	for _, a := range s.anchors {
		if err := a.CommitHead(sth); err != nil {
			return fmt.Errorf("translog: %s anchor: %w", a.Name(), err)
		}
	}
	return nil
}

// writeRecords appends framed payloads to the active segment, rotating
// at the size cap. Every touched segment is fsynced before the batch is
// acknowledged: rotation syncs the segment it retires, and the tail sync
// below covers the one left active.
func (s *Store) writeRecords(payloads [][]byte) error {
	pending := make([]byte, 0, 4096)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if _, err := s.active.Write(pending); err != nil {
			return fmt.Errorf("translog: writing segment: %w", err)
		}
		s.activeSize += int64(len(pending))
		pending = pending[:0]
		return nil
	}
	next := s.size
	for _, p := range payloads {
		if s.active == nil || s.activeSize+int64(len(pending)) >= s.cfg.SegmentMaxBytes {
			if err := flush(); err != nil {
				return err
			}
			if err := s.rotate(next); err != nil {
				return err
			}
		}
		pending = appendRecord(pending, p)
		next++
	}
	if err := flush(); err != nil {
		return err
	}
	if !s.cfg.NoSync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("translog: fsync segment: %w", err)
		}
	}
	return nil
}

// rotate closes the active segment and opens a fresh one whose first
// entry will be index first.
func (s *Store) rotate(first uint64) error {
	if s.active != nil {
		if !s.cfg.NoSync {
			if err := s.active.Sync(); err != nil {
				return fmt.Errorf("translog: fsync segment: %w", err)
			}
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("translog: closing segment: %w", err)
		}
		s.active = nil
	}
	path := filepath.Join(s.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("translog: creating segment: %w", err)
	}
	s.active, s.activeSize = f, 0
	if !s.cfg.NoSync {
		if err := syncDir(s.dir); err != nil {
			f.Close()
			s.active = nil
			return err
		}
	}
	return nil
}

// persistSTHFile atomically replaces the durable tree head. It is the
// STHAnchor's persistence primitive.
func persistSTHFile(dir string, sth SignedTreeHead, noSync bool) error {
	data, err := json.Marshal(sth)
	if err != nil {
		return fmt.Errorf("translog: encoding tree head: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, sthFileName), data, !noSync)
}

// atomicWriteFile replaces path with data using the crash-safe write
// discipline shared by every durable file in a store (tmp + write +
// fsync + rename + dir sync, statedir.Dir.Write plus durability):
// readers see either the old contents or the new, a crash never
// surfaces a partial file, and with sync the replacement itself is
// durable before the call returns.
func atomicWriteFile(path string, data []byte, sync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("translog: writing %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("translog: writing %s: %w", filepath.Base(path), err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("translog: fsync %s: %w", filepath.Base(path), err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("translog: closing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("translog: replacing %s: %w", filepath.Base(path), err)
	}
	if sync {
		return syncDir(filepath.Dir(path))
	}
	return nil
}

// loadSTH reads the persisted tree head; ok=false when none exists yet
// (a store that has never been opened).
func loadSTH(dir string) (SignedTreeHead, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, sthFileName))
	if errors.Is(err, os.ErrNotExist) {
		return SignedTreeHead{}, false, nil
	}
	if err != nil {
		return SignedTreeHead{}, false, fmt.Errorf("translog: reading tree head: %w", err)
	}
	var sth SignedTreeHead
	if err := json.Unmarshal(data, &sth); err != nil {
		return SignedTreeHead{}, false, fmt.Errorf("%w: tree head undecodable: %v", ErrStateCorrupt, err)
	}
	return sth, true, nil
}

// Size returns the durably persisted entry count.
func (s *Store) Size() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close fsyncs and closes the active segment and releases any anchors
// holding resources. A closed store latches failed, so a stray later
// append errors instead of silently forking a new segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed == nil {
		s.failed = fmt.Errorf("%w: store closed", ErrStoreFailed)
	}
	var err error
	for _, a := range s.anchors {
		if c, ok := a.(io.Closer); ok {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	if s.active == nil {
		return err
	}
	f := s.active
	s.active = nil
	if !s.cfg.NoSync {
		if serr := f.Sync(); serr != nil {
			f.Close()
			return fmt.Errorf("translog: fsync segment: %w", serr)
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("translog: opening store dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("translog: fsync store dir: %w", err)
	}
	return nil
}
