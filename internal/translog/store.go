package translog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Durable-state errors. Recovery distinguishes the three ways a statedir
// can disagree with its own signed tree head, because operators react
// differently to each: corruption wants a restore from backup, rollback
// and tamper want an incident response — a restart must never quietly
// re-serve a rewritten history (that would be exactly the attack the
// witness exists to catch, executed locally).
var (
	// ErrStateCorrupt reports a damaged record: a checksum mismatch or an
	// impossible frame somewhere other than a cleanly torn tail.
	ErrStateCorrupt = errors.New("translog: on-disk log state corrupt")
	// ErrStateRollback reports fewer durable entries than the persisted
	// signed tree head covers — committed history was deleted.
	ErrStateRollback = errors.New("translog: on-disk log state rolled back")
	// ErrStateTampered reports durable entries whose recomputed Merkle
	// root contradicts the persisted signed tree head — history was
	// rewritten in place.
	ErrStateTampered = errors.New("translog: on-disk log state tampered")
)

// Append-path errors the HTTP layer maps to status codes, so a producer
// can tell "this batch is unacceptable" (drop it) from "the store is
// down" (retry later).
var (
	// ErrEntryTooLarge reports an entry whose encoding exceeds the WAL
	// record frame limit; it is refused before any byte is written and
	// the store stays healthy.
	ErrEntryTooLarge = errors.New("translog: entry exceeds record size limit")
	// ErrStoreFailed reports a latched durable-store failure (or a closed
	// store): every append fails until the store is reopened.
	ErrStoreFailed = errors.New("translog: durable store unavailable")
)

// sthFileName holds the latest durably persisted signed tree head.
const sthFileName = "sth.json"

// StoreConfig tunes the durable store.
type StoreConfig struct {
	// SegmentMaxBytes rotates to a fresh segment file once the active one
	// reaches this size (default 1 MiB).
	SegmentMaxBytes int64
	// NoSync skips fsync on the append path. Only for tests and
	// benchmarks that measure the non-durability costs; a production log
	// without fsync can lose acknowledged entries on power failure.
	NoSync bool
}

// Store is the write-ahead, append-only on-disk half of a durable Log:
// length-prefixed checksummed records in size-capped segment files plus
// an atomically replaced latest signed tree head. All writes arrive
// pre-batched from Log.AppendBatch, so one store call — and therefore
// one fsync of the active segment and one of the tree head — covers a
// whole appender batch.
type Store struct {
	dir string
	cfg StoreConfig

	mu sync.Mutex
	// active is the open tail segment (nil until the first append or
	// when the last recovery ended exactly on a rotation boundary).
	active     *os.File
	activeSize int64
	// size is the number of durably framed entries.
	size uint64
	// failed latches the first write error: after a partial batch write
	// the in-memory log and the disk may disagree, so the store refuses
	// further appends instead of compounding the divergence.
	failed error
}

// openStoreDir creates the store directory and returns a Store positioned
// at the given recovered size, resuming the segment at tailFirst (whose
// intact length is tailClean) when one exists.
func openStoreDir(dir string, cfg StoreConfig, size uint64, tailFirst uint64, tailClean int64, hasTail bool) (*Store, error) {
	if cfg.SegmentMaxBytes <= 0 {
		cfg.SegmentMaxBytes = defaultSegmentMaxBytes
	}
	s := &Store{dir: dir, cfg: cfg, size: size}
	if hasTail {
		path := filepath.Join(dir, segmentName(tailFirst))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return nil, fmt.Errorf("translog: reopening tail segment: %w", err)
		}
		s.active, s.activeSize = f, tailClean
	}
	return s, nil
}

// appendBatch durably frames the batch payloads and then persists sth.
// Ordering matters for crash consistency: records first (fsynced), tree
// head second — a crash in between leaves extra durable entries beyond
// the head, which recovery accepts and re-signs; the reverse order could
// leave a head signing entries that were never written.
func (s *Store) appendBatch(payloads [][]byte, sth SignedTreeHead) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	// Enforce the recovery-side frame bound before anything is written:
	// an oversized record would commit durably but then fail every future
	// open with ErrStateCorrupt — a log that bricks itself. Refusing here
	// keeps the in-memory and on-disk state consistent (the caller rolls
	// the batch back) without latching the store failed.
	for _, p := range payloads {
		if len(p) > maxRecordBytes {
			return fmt.Errorf("%w: encoding is %d bytes, record limit %d", ErrEntryTooLarge, len(p), maxRecordBytes)
		}
	}
	if err := s.writeRecords(payloads); err != nil {
		s.failed = fmt.Errorf("%w: %w", ErrStoreFailed, err)
		return s.failed
	}
	if err := s.persistSTH(sth); err != nil {
		s.failed = fmt.Errorf("%w: %w", ErrStoreFailed, err)
		return s.failed
	}
	s.size += uint64(len(payloads))
	return nil
}

// writeRecords appends framed payloads to the active segment, rotating
// at the size cap. Every touched segment is fsynced before the batch is
// acknowledged: rotation syncs the segment it retires, and the tail sync
// below covers the one left active.
func (s *Store) writeRecords(payloads [][]byte) error {
	pending := make([]byte, 0, 4096)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if _, err := s.active.Write(pending); err != nil {
			return fmt.Errorf("translog: writing segment: %w", err)
		}
		s.activeSize += int64(len(pending))
		pending = pending[:0]
		return nil
	}
	next := s.size
	for _, p := range payloads {
		if s.active == nil || s.activeSize+int64(len(pending)) >= s.cfg.SegmentMaxBytes {
			if err := flush(); err != nil {
				return err
			}
			if err := s.rotate(next); err != nil {
				return err
			}
		}
		pending = appendRecord(pending, p)
		next++
	}
	if err := flush(); err != nil {
		return err
	}
	if !s.cfg.NoSync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("translog: fsync segment: %w", err)
		}
	}
	return nil
}

// rotate closes the active segment and opens a fresh one whose first
// entry will be index first.
func (s *Store) rotate(first uint64) error {
	if s.active != nil {
		if !s.cfg.NoSync {
			if err := s.active.Sync(); err != nil {
				return fmt.Errorf("translog: fsync segment: %w", err)
			}
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("translog: closing segment: %w", err)
		}
		s.active = nil
	}
	path := filepath.Join(s.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("translog: creating segment: %w", err)
	}
	s.active, s.activeSize = f, 0
	if !s.cfg.NoSync {
		if err := syncDir(s.dir); err != nil {
			f.Close()
			s.active = nil
			return err
		}
	}
	return nil
}

// persistSTH atomically replaces the durable tree head (tmp + fsync +
// rename, the same discipline as statedir.Dir.Write plus durability).
func (s *Store) persistSTH(sth SignedTreeHead) error {
	data, err := json.Marshal(sth)
	if err != nil {
		return fmt.Errorf("translog: encoding tree head: %w", err)
	}
	path := filepath.Join(s.dir, sthFileName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("translog: writing tree head: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("translog: writing tree head: %w", err)
	}
	if !s.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("translog: fsync tree head: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("translog: closing tree head: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("translog: replacing tree head: %w", err)
	}
	if !s.cfg.NoSync {
		return syncDir(s.dir)
	}
	return nil
}

// loadSTH reads the persisted tree head; ok=false when none exists yet
// (a store that has never been opened).
func loadSTH(dir string) (SignedTreeHead, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, sthFileName))
	if errors.Is(err, os.ErrNotExist) {
		return SignedTreeHead{}, false, nil
	}
	if err != nil {
		return SignedTreeHead{}, false, fmt.Errorf("translog: reading tree head: %w", err)
	}
	var sth SignedTreeHead
	if err := json.Unmarshal(data, &sth); err != nil {
		return SignedTreeHead{}, false, fmt.Errorf("%w: tree head undecodable: %v", ErrStateCorrupt, err)
	}
	return sth, true, nil
}

// Size returns the durably persisted entry count.
func (s *Store) Size() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close fsyncs and closes the active segment. A closed store latches
// failed, so a stray later append errors instead of silently forking a
// new segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed == nil {
		s.failed = fmt.Errorf("%w: store closed", ErrStoreFailed)
	}
	if s.active == nil {
		return nil
	}
	f := s.active
	s.active = nil
	if !s.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("translog: fsync segment: %w", err)
		}
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("translog: opening store dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("translog: fsync store dir: %w", err)
	}
	return nil
}
